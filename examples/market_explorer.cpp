// Market explorer: a standalone tour of the selection machinery. Generates a
// region of spot markets, prints each pool's statistics at the on-demand bid,
// then shows what every policy would pick for a canonical job and the
// expected cost/variance of the interactive policy's market mix.
//
//   ./build/examples/market_explorer [seed]

#include <cstdio>
#include <cstdlib>

#include "src/checkpoint/checkpoint_policy.h"
#include "src/market/marketplace.h"
#include "src/select/selection.h"
#include "src/trace/market_catalog.h"

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  const double on_demand = 0.35;
  flint::Marketplace marketplace(flint::RegionMarkets(16, seed), on_demand, seed);
  flint::ServerSelector selector(&marketplace, flint::SelectionConfig{});
  flint::JobProfile job;  // delta = rd = 2 model-minutes

  const flint::SimTime now = flint::Hours(24.0 * 30);
  std::printf("16 spot pools, on-demand reference $%.2f/h (seed %llu)\n\n", on_demand,
              static_cast<unsigned long long>(seed));
  std::printf("%-12s %12s %12s %14s %16s\n", "market", "avg $/h", "MTTF (h)", "E[T]/T",
              "E[unit cost]");
  for (const auto& ev : selector.EvaluateMarkets(now, job)) {
    std::printf("%-12s %12.4f %12.1f %14.4f %16.4f\n",
                ev.id == flint::kOnDemandMarket ? "on-demand"
                                                : marketplace.market(ev.id).name().c_str(),
                ev.avg_price, ev.mttf_hours, ev.expected_factor, ev.expected_unit_cost);
  }

  std::printf("\npolicy picks:\n");
  if (auto batch = selector.SelectBatch(now, job); batch.ok()) {
    std::printf("  Flint-batch        -> %s (expected unit cost %.4f, %.0f%% below on-demand)\n",
                batch->id == flint::kOnDemandMarket
                    ? "on-demand"
                    : marketplace.market(batch->id).name().c_str(),
                batch->expected_unit_cost,
                (1.0 - batch->expected_unit_cost / on_demand) * 100.0);
  }
  if (auto cheap = selector.SelectCheapest(now, job); cheap.ok()) {
    std::printf("  SpotFleet-cheapest -> %s ($%.4f/h, MTTF %.0f h)\n",
                marketplace.market(cheap->id).name().c_str(), cheap->avg_price,
                cheap->mttf_hours);
  }
  if (auto stable = selector.SelectLeastVolatile(now, job); stable.ok()) {
    std::printf("  SpotFleet-stable   -> %s ($%.4f/h, MTTF %.0f h)\n",
                marketplace.market(stable->id).name().c_str(), stable->avg_price,
                stable->mttf_hours);
  }
  if (auto mix = selector.SelectInteractive(now, job); mix.ok()) {
    std::printf("  Flint-interactive  -> %zu markets {", mix->markets.size());
    for (flint::MarketId m : mix->markets) {
      std::printf(" %d", m);
    }
    std::printf(" }: aggregate MTTF %.1f h, E[T]/T %.4f, stddev/T %.4f\n",
                mix->aggregate_mttf_hours, mix->expected_factor,
                std::sqrt(mix->runtime_variance));
    // Show the variance-vs-m tradeoff the greedy search walks.
    std::printf("\n  diversification sweep (same candidate order):\n");
    for (size_t m = 1; m <= mix->markets.size(); ++m) {
      std::vector<flint::MarketId> prefix(mix->markets.begin(),
                                          mix->markets.begin() + static_cast<ptrdiff_t>(m));
      const auto e = selector.EvaluateMix(prefix, now, job);
      std::printf("    m=%zu: E[T]/T %.4f  unit cost %.4f  stddev/T %.4f\n", m,
                  e.expected_factor, e.expected_unit_cost, std::sqrt(e.runtime_variance));
    }
  }
  return 0;
}
