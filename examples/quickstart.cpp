// Quickstart: bring up a Flint managed cluster on simulated spot markets,
// run a wordcount-style job through the typed RDD API, and print what it
// cost compared to on-demand servers.
//
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/flint_cluster.h"
#include "src/engine/typed_rdd.h"

namespace {

// A toy corpus generator: documents of space-separated tokens drawn from a
// small vocabulary with a skewed distribution.
std::vector<int> MakeTokens(int part, int tokens_per_part) {
  flint::Rng rng(1234 + static_cast<uint64_t>(part));
  std::vector<int> tokens;
  tokens.reserve(static_cast<size_t>(tokens_per_part));
  for (int i = 0; i < tokens_per_part; ++i) {
    // min-of-two skews toward low token ids, like natural-language word ranks.
    const int a = static_cast<int>(rng.UniformInt(1000));
    const int b = static_cast<int>(rng.UniformInt(1000));
    tokens.push_back(std::min(a, b));
  }
  return tokens;
}

}  // namespace

int main() {
  // 1. Configure the managed service: ten transient servers, Flint's batch
  //    selection policy, automated checkpointing.
  flint::FlintOptions options;
  options.nodes.cluster_size = 10;
  options.nodes.policy = flint::SelectionPolicyKind::kFlintBatch;
  options.checkpoint.policy = flint::CheckpointPolicyKind::kFlint;

  flint::FlintCluster flint_cluster(options);
  if (flint::Status st = flint_cluster.Start(); !st.ok()) {
    std::fprintf(stderr, "start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("cluster up: %zu nodes, markets in use:", flint_cluster.cluster().NumLiveNodes());
  for (flint::MarketId m : flint_cluster.nodes().ActiveMarkets()) {
    std::printf(" %s", m == flint::kOnDemandMarket
                           ? "on-demand"
                           : flint_cluster.marketplace().market(m).name().c_str());
  }
  std::printf("\n");

  // 2. Run a wordcount through the typed RDD API, measured end to end.
  flint::JobReport report = flint_cluster.RunMeasured([](flint::FlintContext& ctx) {
    auto tokens = flint::Generate(
        &ctx, /*num_partitions=*/20, [](int part) { return MakeTokens(part, 200000); },
        "tokens");
    tokens.Cache();
    auto counts = flint::ReduceByKey(
        tokens.Map([](const int& t) { return std::make_pair(t, 1); }, "pairs"),
        /*num_reduce=*/10, [](int a, int b) { return a + b; }, "wordcount");
    auto top = counts.Collect();
    if (!top.ok()) {
      return top.status();
    }
    std::sort(top->begin(), top->end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    std::printf("distinct tokens: %zu; top-3:", top->size());
    for (size_t i = 0; i < 3 && i < top->size(); ++i) {
      std::printf("  #%d x%d", (*top)[i].first, (*top)[i].second);
    }
    std::printf("\n");
    return flint::Status::Ok();
  });

  // 3. Report cost and performance.
  if (!report.status.ok()) {
    std::fprintf(stderr, "job failed: %s\n", report.status.ToString().c_str());
    return 1;
  }
  std::printf("job: %.2fs wall, %llu tasks, %llu checkpoint writes\n", report.wall_seconds,
              static_cast<unsigned long long>(report.tasks_run),
              static_cast<unsigned long long>(report.checkpoint_writes));
  // Hourly billing makes per-job deltas coarse for short jobs; report the
  // cluster's total bill since provisioning instead.
  const double spot_cost = flint_cluster.nodes().TotalCost();
  const double od_cost = flint_cluster.nodes().OnDemandEquivalentCost();
  std::printf("cluster bill so far: $%.4f on spot vs $%.4f on-demand (%.0f%% saved)\n",
              spot_cost, od_cost, od_cost > 0.0 ? (1.0 - spot_cost / od_cost) * 100.0 : 0.0);
  return 0;
}
