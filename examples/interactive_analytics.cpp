// Interactive scenario: Spark-as-a-database (the paper's TPC-H workload) on
// a market-diversified cluster. A user session issues a stream of ad-hoc
// queries while one market's servers are revoked; thanks to the interactive
// policy (uncorrelated markets, partial revocations) and advance
// checkpointing, latency stays consistent.
//
//   ./build/examples/interactive_analytics

#include <cstdio>
#include <thread>

#include "src/core/flint_cluster.h"
#include "src/workloads/tpch.h"

int main() {
  flint::FlintOptions options;
  options.nodes.cluster_size = 10;
  options.nodes.policy = flint::SelectionPolicyKind::kFlintInteractive;
  options.checkpoint.policy = flint::CheckpointPolicyKind::kFlint;
  options.checkpoint.mttf_hours = 10.0;

  flint::FlintCluster cluster(options);
  if (flint::Status st = cluster.Start(); !st.ok()) {
    std::fprintf(stderr, "start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const auto markets = cluster.nodes().ActiveMarkets();
  std::printf("interactive cluster spans %zu markets (uncorrelated pools)\n", markets.size());

  flint::TpchParams params;
  params.num_customers = 2000;
  params.num_orders = 60000;
  params.partitions = 20;
  auto db = flint::TpchDatabase::Load(cluster.ctx(), params);
  if (!db.ok()) {
    std::fprintf(stderr, "load failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("database loaded: %llu lineitems cached in cluster memory\n",
              static_cast<unsigned long long>(db->num_lineitems()));

  // One market spikes during the session: only its share of servers is lost.
  std::thread chaos([&cluster, &markets] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    if (!markets.empty()) {
      std::printf(">>> market %d spiking; its servers are being revoked\n", markets.front());
      cluster.cluster().RevokeMarket(markets.front(), /*with_warning=*/true);
    }
  });

  // The user's ad-hoc session: alternating pricing reports (Q1), revenue
  // forecasts (Q6), and shipping-priority drilldowns (Q3).
  for (int round = 0; round < 6; ++round) {
    // User think time between queries; the revocation lands mid-session.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    const auto t0 = flint::WallClock::now();
    const char* what = "";
    flint::Status status;
    switch (round % 3) {
      case 0: {
        what = "Q1 pricing summary";
        auto rows = db->RunQ1();
        status = rows.status();
        break;
      }
      case 1: {
        what = "Q6 revenue forecast";
        auto revenue = db->RunQ6();
        status = revenue.status();
        break;
      }
      default: {
        what = "Q3 shipping priority";
        auto rows = db->RunQ3();
        status = rows.status();
        break;
      }
    }
    const double latency = flint::WallDuration(flint::WallClock::now() - t0).count();
    if (!status.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
      chaos.join();
      return 1;
    }
    std::printf("  [%d] %-22s %6.0f ms\n", round, what, latency * 1000.0);
  }
  chaos.join();
  std::printf("session complete: every query answered, latencies stayed interactive\n");
  return 0;
}
