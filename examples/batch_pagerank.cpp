// Batch scenario: PageRank over a power-law web graph on transient servers,
// with a scripted whole-market revocation mid-run — the batch policy's worst
// case. Flint's advance checkpoints bound the recomputation; the node
// manager replaces the cluster and the job finishes with the same answer.
//
//   ./build/examples/batch_pagerank

#include <cstdio>
#include <thread>

#include "src/core/flint_cluster.h"
#include "src/workloads/pagerank.h"

int main() {
  flint::FlintOptions options;
  options.nodes.cluster_size = 10;
  options.nodes.policy = flint::SelectionPolicyKind::kFlintBatch;
  options.checkpoint.policy = flint::CheckpointPolicyKind::kFlint;
  options.checkpoint.mttf_hours = 5.0;  // volatile pool: checkpoint eagerly

  flint::FlintCluster cluster(options);
  if (flint::Status st = cluster.Start(); !st.ok()) {
    std::fprintf(stderr, "start failed: %s\n", st.ToString().c_str());
    return 1;
  }

  flint::PageRankParams params;
  params.num_vertices = 50000;
  params.edges_per_vertex = 15;
  params.partitions = 20;
  params.iterations = 5;

  // Mid-run, the spot market hosting the whole cluster spikes: every node
  // gets the two-minute warning, then dies. The node manager observes the
  // warnings and provisions replacements from the next-best market.
  std::thread chaos([&cluster] {
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    auto live = cluster.cluster().LiveNodes();
    if (!live.empty()) {
      std::printf(">>> price spike: revoking all %zu nodes of market %d\n", live.size(),
                  live.front().market);
      cluster.cluster().RevokeMarket(live.front().market, /*with_warning=*/true);
    }
  });

  flint::JobReport report = cluster.RunMeasured([&params](flint::FlintContext& ctx) {
    auto result = flint::RunPageRank(ctx, params, /*top_n=*/5);
    if (!result.ok()) {
      return result.status();
    }
    std::printf("top-5 pages:");
    for (const auto& [v, r] : result->top) {
      std::printf("  v%d=%.3f", v, r);
    }
    std::printf("\n");
    return flint::Status::Ok();
  });
  chaos.join();

  if (!report.status.ok()) {
    std::fprintf(stderr, "job failed: %s\n", report.status.ToString().c_str());
    return 1;
  }
  std::printf(
      "finished in %.2fs despite the revocation: %llu partitions recomputed,\n"
      "%llu task failures absorbed, %.2fs stalled waiting for replacement servers\n",
      report.wall_seconds, static_cast<unsigned long long>(report.partitions_recomputed),
      static_cast<unsigned long long>(report.task_failures), report.acquisition_wait_seconds);
  std::printf("cost: $%.4f on spot vs $%.4f on-demand\n", report.cost_dollars,
              report.on_demand_cost_dollars);
  return 0;
}
