#!/usr/bin/env python3
"""Golden-file self-tests for tools/analyze/flint-lint.

Default mode runs the linter over every fixture in tests/lint/fixtures/ and
compares its stdout (the findings, exactly as printed) against the golden
file of the same stem in tests/lint/expected/. The exit code is also
checked: 1 when the golden expects findings, 0 when it is empty. Stderr
(summary line, unused-suppression notes) is intentionally not compared — it
carries counts that drift harmlessly as fixtures grow.

    run_lint_tests.py             compare fixtures against goldens
    run_lint_tests.py --update    regenerate the goldens (then review the diff)
    run_lint_tests.py --src-clean assert the live src/ tree lints clean

Stdlib only; exits 0 on success, 1 on any mismatch.
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.normpath(os.path.join(HERE, "..", ".."))
LINT = os.path.join(ROOT, "tools", "analyze", "flint-lint")
FIXTURES = os.path.join(HERE, "fixtures")
EXPECTED = os.path.join(HERE, "expected")


def run_lint(args):
    return subprocess.run(
        [sys.executable, LINT, "--root", ROOT] + args,
        capture_output=True, text=True)


def golden_tests(update):
    failures = 0
    fixtures = sorted(f for f in os.listdir(FIXTURES) if f.endswith(".cc"))
    if not fixtures:
        print("run_lint_tests: no fixtures found in %s" % FIXTURES)
        return 1
    for fixture in fixtures:
        rel = os.path.relpath(os.path.join(FIXTURES, fixture), ROOT)
        proc = run_lint([rel])
        if proc.returncode not in (0, 1):
            print("FAIL %s: linter exited %d\n%s"
                  % (fixture, proc.returncode, proc.stderr))
            failures += 1
            continue
        golden_path = os.path.join(EXPECTED, os.path.splitext(fixture)[0] + ".txt")
        if update:
            with open(golden_path, "w") as f:
                f.write(proc.stdout)
            print("updated %s" % os.path.relpath(golden_path, ROOT))
            continue
        try:
            with open(golden_path) as f:
                want = f.read()
        except OSError:
            print("FAIL %s: missing golden %s (run with --update, then review)"
                  % (fixture, os.path.relpath(golden_path, ROOT)))
            failures += 1
            continue
        if proc.stdout != want:
            print("FAIL %s: findings differ from %s"
                  % (fixture, os.path.relpath(golden_path, ROOT)))
            print("--- expected ---\n%s--- got ---\n%s---" % (want, proc.stdout))
            failures += 1
            continue
        want_exit = 1 if want.strip() else 0
        if proc.returncode != want_exit:
            print("FAIL %s: exit %d, expected %d"
                  % (fixture, proc.returncode, want_exit))
            failures += 1
            continue
        print("ok   %s (%d finding line(s))"
              % (fixture, len([l for l in want.splitlines() if l.strip()])))
    if failures:
        print("run_lint_tests: %d fixture(s) failed" % failures)
        return 1
    print("run_lint_tests: all %d fixture(s) match" % len(fixtures))
    return 0


def src_clean():
    proc = run_lint(["src"])
    if proc.returncode != 0:
        print("FAIL: live src/ tree is not lint-clean (exit %d)" % proc.returncode)
        sys.stdout.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        return 1
    # The summary line ("N finding(s), M suppressed") lands on stderr.
    sys.stderr.write(proc.stderr)
    print("ok: src/ lints clean")
    return 0


def main(argv):
    if "--src-clean" in argv:
        return src_clean()
    return golden_tests(update="--update" in argv)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
