// Observability-convention fixture: metric names must be
// flint_<subsystem>_* with a subsystem flint-lint knows (obs-metric-name),
// and trace event names must exist in tools/flint-report's
// KNOWN_EVENT_NAMES (obs-trace-name). Never compiled.

namespace flint {

void RegisterMetrics(MetricsRegistry& reg) {
  reg.GetCounter("tasks_total");                 // finding: no flint_ prefix
  reg.GetCounter("flint_engine_tasks_total");    // clean
  reg.GetGauge("flint_bogus_queue_depth");       // finding: unknown subsystem
  reg.GetHistogram("flint_Engine_task_seconds")  // finding: not lower-case
      ->Observe(1.0);
}

void EmitTraces(Tracer& tracer) {
  tracer.RecordInstant("task");           // clean: known event
  tracer.RecordInstant("mystery_event");  // finding: unknown to flint-report
  TraceSpan span("shuffle_stage");        // clean: known event
  TraceSpan bad("not_an_event");          // finding: unknown to flint-report
}

}  // namespace flint
