// Status-hygiene fixture: (void)-discarded calls need an adjacent
// justification comment (status-discarded), and Result<T>::value() must be
// dominated by ok() in the same function (status-unchecked-value). Never
// compiled.

namespace flint {

Status Touch();
Result<int> Fetch();

void DropWithoutComment() {
  (void)Touch();
}

void DropWithLeadingComment() {
  // Best-effort cache warm; a failure only costs a later cache miss.
  (void)Touch();
}

void DropWithTrailingComment() {
  (void)Touch();  // predicate loop re-checks; spurious wakeup is harmless
}

int UncheckedValue() {
  Result<int> bare = Fetch();
  return bare.value();  // finding: no bare.ok() dominates this
}

int CheckedValue() {
  Result<int> checked = Fetch();
  if (!checked.ok()) {
    return -1;
  }
  return checked.value();  // clean
}

int UncheckedMoveValue() {
  Result<int> moved = Fetch();
  int v = std::move(moved).value();  // finding: move-unwrap, still unchecked
  return v;
}

}  // namespace flint
