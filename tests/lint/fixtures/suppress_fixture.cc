// Suppression-machinery fixture: a reasoned allow() silences a finding (and
// is counted), a reason-less or unknown-check allow() is itself a
// lint-suppression finding and suppresses nothing, and an allow() that
// matches no finding is reported as unused (stderr note). Never compiled.
// flint-lint: pretend-path(src/engine/suppress_fixture.cc)

namespace flint {

void ReasonedSuppression() {
  // flint-lint: allow(det-wallclock) fixture demonstrates a reasoned suppression
  auto t0 = WallClock::now();  // suppressed: not printed as a finding
}

void MissingReason() {
  // flint-lint: allow(det-wallclock)
  auto t1 = WallClock::now();  // finding: the reason-less allow is inert
}

void UnknownCheck() {
  // flint-lint: allow(not-a-check) sounded plausible at the time
  int x = 0;
}

void Typo() {
  // flint-lint: allw(det-wallclock) typo in the directive verb
  int y = 0;
}

void UnusedSuppression() {
  // flint-lint: allow(det-raw-random) nothing random actually happens here
  int z = 0;
}

}  // namespace flint
