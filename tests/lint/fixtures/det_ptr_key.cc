// det-pointer-key fixture: ordered containers keyed by pointers iterate in
// address order, which differs run to run. Never compiled.
// flint-lint: pretend-path(src/engine/det_ptr_key_fixture.cc)

#include <map>
#include <set>

namespace flint {

struct Worker;
struct Block;

class Registry {
 private:
  std::map<Worker*, int> slots_by_worker_;   // finding: pointer key
  std::set<const Block*> resident_;          // finding: pointer element
  std::map<int, Worker*> worker_by_id_;      // clean: pointer is the value
  std::set<int> ids_;                        // clean: value key
};

}  // namespace flint
