// Lock-discipline fixture: blocking operations lexically under a MutexLock
// (lock-blocking-call) and mutable value members of a Mutex-owning class
// without GUARDED_BY (lock-missing-guard). The deferred-lambda body and the
// annotated/atomic/const members are the clean cases. Never compiled.

#include <string>
#include <vector>

namespace flint {

class Poller {
 public:
  void SleepUnderLock() {
    MutexLock lock(&mutex_);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));  // finding
  }

  void IoUnderLock() {
    MutexLock lock(&mutex_);
    std::ifstream in("state.txt");  // finding: file I/O in critical section
  }

  void DfsUnderLock() {
    MutexLock lock(&mutex_);
    dfs_->Put("path", payload_);  // finding: modeled-latency DFS call
  }

  void JoinExecutorUnderLock() {
    MutexLock lock(&mutex_);
    pool_.Submit(task_).get();  // finding: waits on an executor under lock
  }

  void CrossWaitUnderLock() {
    MutexLock lock(&mutex_);
    cv_.WaitUntil(&other_mutex_, deadline_);  // finding: waits on other mutex
  }

  void DeferredSleepIsFine() {
    MutexLock lock(&mutex_);
    callback_ = [] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));  // clean
    };
  }

 private:
  Mutex mutex_;
  Mutex other_mutex_;
  CondVar cv_;
  ThreadPool pool_;
  Dfs* dfs_;
  std::function<void()> task_;
  std::function<void()> callback_;
  long deadline_ GUARDED_BY(mutex_);        // clean: annotated
  int epoch_ GUARDED_BY(mutex_);            // clean: annotated
  std::atomic<bool> stopping_{false};       // clean: atomic
  const int capacity_ = 8;                  // clean: const
  std::vector<int> pending_;                // finding: unguarded value state
  std::string payload_;                     // finding: unguarded value state
};

}  // namespace flint
