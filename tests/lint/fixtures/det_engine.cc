// Determinism-check fixture: exercises det-unordered-iter (both the
// append-in-hash-order and float-accumulation forms, plus the sorted-after
// clean case), det-raw-random, and det-wallclock. Never compiled; scanned by
// run_lint_tests.py against expected/det_engine.txt.
// flint-lint: pretend-path(src/engine/det_engine_fixture.cc)

#include <unordered_map>
#include <vector>

namespace flint {

class PartitionIndex {
 public:
  std::vector<int> IdsInHashOrder() const {
    std::vector<int> out;
    for (const auto& kv : blocks_) {
      out.push_back(kv.first);  // finding: out never sorted afterwards
    }
    return out;
  }

  std::vector<int> IdsSorted() const {
    std::vector<int> out;
    for (const auto& kv : blocks_) {
      out.push_back(kv.first);
    }
    std::sort(out.begin(), out.end());  // clean: order re-established
    return out;
  }

  double TotalWeight() const {
    double total = 0.0;
    for (const auto& kv : blocks_) {
      total += kv.second;  // finding: float fold in hash order
    }
    return total;
  }

 private:
  std::unordered_map<int, double> blocks_;
};

int JitterMs() {
  return rand() % 100;  // finding: unseeded randomness
}

double ElapsedSeconds() {
  const auto t0 = WallClock::now();  // finding: wall clock on engine path
  return WallDuration(WallClock::now() - t0).count();  // finding (second read)
}

long EpochSeconds() {
  return time(nullptr);  // finding: time() on engine path
}

}  // namespace flint
