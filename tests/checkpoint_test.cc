// Tests for the checkpoint policy math (Sec 3.1 closed forms) and the
// fault-tolerance manager's frontier tracking, marking, delta adaptation,
// and garbage collection.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <thread>

#include "src/checkpoint/checkpoint_policy.h"
#include "src/common/stats.h"
#include "src/checkpoint/ft_manager.h"
#include "src/engine/typed_rdd.h"
#include "tests/test_util.h"

namespace flint {
namespace {

using testing::EngineHarness;

// --- closed forms ---

TEST(CheckpointPolicyMath, DalyIntervalMatchesFormula) {
  EXPECT_DOUBLE_EQ(OptimalCheckpointInterval(0.5, 100.0), std::sqrt(2.0 * 0.5 * 100.0));
  EXPECT_DOUBLE_EQ(OptimalCheckpointInterval(0.02, 50.0), std::sqrt(2.0));
}

TEST(CheckpointPolicyMath, InfiniteMttfNeverCheckpoints) {
  EXPECT_TRUE(std::isinf(OptimalCheckpointInterval(0.5, std::numeric_limits<double>::infinity())));
  EXPECT_DOUBLE_EQ(ExpectedRuntimeFactor(0.5, 0.03, std::numeric_limits<double>::infinity()), 1.0);
}

TEST(CheckpointPolicyMath, FactorDecreasesWithMttf) {
  const double delta = 0.033;
  const double rd = 0.033;
  double prev = std::numeric_limits<double>::infinity();
  for (double mttf : {1.0, 5.0, 20.0, 50.0, 200.0, 700.0}) {
    const double f = ExpectedRuntimeFactor(delta, rd, mttf);
    EXPECT_LT(f, prev) << "mttf=" << mttf;
    EXPECT_GT(f, 1.0);
    prev = f;
  }
}

TEST(CheckpointPolicyMath, DalyIntervalMinimizesExpectedFactor) {
  // The factor computed at tau_opt must beat a grid of other intervals.
  const double delta = 0.05;
  const double mttf = 40.0;
  const double rd = 0.0;
  auto factor_at = [&](double tau) { return 1.0 + delta / tau + (tau / 2.0 + rd) / mttf; };
  const double opt = OptimalCheckpointInterval(delta, mttf);
  for (double tau = opt / 8.0; tau < opt * 8.0; tau *= 1.3) {
    EXPECT_LE(factor_at(opt), factor_at(tau) + 1e-12);
  }
}

TEST(CheckpointPolicyMath, AggregateMttfIsHarmonicForm) {
  EXPECT_DOUBLE_EQ(AggregateMttf({100.0, 100.0}), 50.0);
  EXPECT_DOUBLE_EQ(AggregateMttf({50.0, 100.0}), 1.0 / (1.0 / 50.0 + 1.0 / 100.0));
  EXPECT_TRUE(std::isinf(AggregateMttf({})));
}

TEST(CheckpointPolicyMath, VarianceDecreasesWithMoreMarkets) {
  // Equal-MTTF markets: aggregate MTTF scales 1/m while per-event loss
  // scales 1/m -> variance must fall as m grows (the Sec 3.2 motivation).
  const double delta = 0.033;
  const double rd = 0.033;
  const double per_market_mttf = 100.0;
  double prev = std::numeric_limits<double>::infinity();
  for (int m = 1; m <= 8; m *= 2) {
    std::vector<double> mttfs(static_cast<size_t>(m), per_market_mttf);
    const double agg = AggregateMttf(mttfs);
    const double var = RuntimeVariancePerUnitTime(delta, rd, agg, m);
    EXPECT_LT(var, prev) << "m=" << m;
    prev = var;
  }
}

// --- FT manager on the engine ---

CheckpointConfig FastFlintConfig() {
  CheckpointConfig cfg;
  cfg.policy = CheckpointPolicyKind::kFlint;
  cfg.mttf_hours = 1.0;
  cfg.time.seconds_per_model_hour = 0.5;  // tau lands in the tens of ms
  cfg.initial_delta_seconds = 0.001;
  return cfg;
}

TEST(FtManagerTest, ManualCheckpointSavesAndTruncatesLineage) {
  EngineHarness h;
  FaultToleranceManager ft(&h.ctx(), FastFlintConfig());
  std::vector<int> data(500);
  std::iota(data.begin(), data.end(), 0);
  auto rdd = Parallelize(&h.ctx(), data, 4).Map([](const int& x) { return x + 1; });
  rdd.Cache();
  ASSERT_TRUE(rdd.Materialize().ok());

  ft.CheckpointRddNow(rdd.raw());
  // Writes run on executor pools; wait for them by polling the state.
  for (int i = 0; i < 200 && rdd.raw()->checkpoint_state() != CheckpointState::kSaved; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(rdd.raw()->checkpoint_state(), CheckpointState::kSaved);
  // 4 partition objects plus the commit manifest (written last).
  EXPECT_EQ(h.dfs().List(rdd.raw()->CheckpointDir()).size(), 5u);
  EXPECT_TRUE(h.dfs().Exists(rdd.raw()->ManifestPath()));

  // Kill the whole cluster: recomputation must come from the checkpoint, not
  // the origin (which we can tell because results still match).
  h.RevokeNodes(4);
  h.AddNode();
  auto out = rdd.Collect();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->front(), 1);
  EXPECT_GT(h.ctx().counters().checkpoint_reads.load(), 0u);
}

TEST(FtManagerTest, PeriodicSignalCheckpointsFrontier) {
  EngineHarness h;
  FaultToleranceManager ft(&h.ctx(), FastFlintConfig());
  ft.Start();
  std::vector<int> data(2000);
  std::iota(data.begin(), data.end(), 0);
  auto a = Parallelize(&h.ctx(), data, 4);
  a.Cache();
  ASSERT_TRUE(a.Materialize().ok());
  // Give the signal thread a few periods to mark and write.
  bool saved = false;
  for (int i = 0; i < 400 && !saved; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    saved = a.raw()->checkpoint_state() == CheckpointState::kSaved;
  }
  ft.Stop();
  EXPECT_TRUE(saved);
  EXPECT_GT(ft.GetStats().signals_fired, 0u);
}

TEST(FtManagerTest, GcDeletesAncestorCheckpoints) {
  EngineHarness h;
  FaultToleranceManager ft(&h.ctx(), FastFlintConfig());
  std::vector<int> data(200);
  std::iota(data.begin(), data.end(), 0);
  // Parent deliberately NOT cached: cached RDDs are pinned against GC.
  auto parent = Parallelize(&h.ctx(), data, 2).Map([](const int& x) { return x * 2; });
  ASSERT_TRUE(parent.Materialize().ok());
  ft.CheckpointRddNow(parent.raw());
  for (int i = 0; i < 200 && parent.raw()->checkpoint_state() != CheckpointState::kSaved; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(parent.raw()->checkpoint_state(), CheckpointState::kSaved);

  auto child = parent.Map([](const int& x) { return x + 1; });
  child.Cache();
  ASSERT_TRUE(child.Materialize().ok());
  ft.CheckpointRddNow(child.raw());
  for (int i = 0; i < 200 && child.raw()->checkpoint_state() != CheckpointState::kSaved; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(child.raw()->checkpoint_state(), CheckpointState::kSaved);

  // The child checkpoint terminates the lineage; the parent's checkpoint is
  // unreachable and must have been garbage-collected.
  EXPECT_TRUE(h.dfs().List(parent.raw()->CheckpointDir()).empty());
  // 2 partition objects plus the commit manifest.
  EXPECT_EQ(h.dfs().List(child.raw()->CheckpointDir()).size(), 3u);
  EXPECT_GE(ft.GetStats().gc_deleted_rdds, 1u);
}

TEST(FtManagerTest, DeltaEstimateAdaptsToMeasuredWrites) {
  EngineHarness h;
  CheckpointConfig cfg = FastFlintConfig();
  cfg.initial_delta_seconds = 5.0;  // absurdly conservative initial estimate
  FaultToleranceManager ft(&h.ctx(), cfg);
  std::vector<int> data(500);
  std::iota(data.begin(), data.end(), 0);
  auto rdd = Parallelize(&h.ctx(), data, 4);
  rdd.Cache();
  ASSERT_TRUE(rdd.Materialize().ok());
  ft.CheckpointRddNow(rdd.raw());
  for (int i = 0; i < 200 && rdd.raw()->checkpoint_state() != CheckpointState::kSaved; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // The measured write round is milliseconds; the EWMA must have pulled the
  // estimate far below the initial 5 s.
  EXPECT_LT(ft.CurrentDeltaSeconds(), 3.0);
}

TEST(FtManagerTest, NonePolicyNeverWrites) {
  EngineHarness h;
  CheckpointConfig cfg = FastFlintConfig();
  cfg.policy = CheckpointPolicyKind::kNone;
  FaultToleranceManager ft(&h.ctx(), cfg);
  ft.Start();
  std::vector<int> data(500);
  std::iota(data.begin(), data.end(), 0);
  auto rdd = Parallelize(&h.ctx(), data, 4);
  rdd.Cache();
  ASSERT_TRUE(rdd.Materialize().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ft.Stop();
  EXPECT_EQ(h.ctx().counters().checkpoint_writes.load(), 0u);
}

TEST(FtManagerTest, SystemsLevelSnapshotsWholeCache) {
  EngineHarness h;
  CheckpointConfig cfg = FastFlintConfig();
  cfg.policy = CheckpointPolicyKind::kSystemsLevel;
  FaultToleranceManager ft(&h.ctx(), cfg);
  std::vector<int> data(2000);
  std::iota(data.begin(), data.end(), 0);
  auto a = Parallelize(&h.ctx(), data, 4);
  a.Cache();
  auto b = a.Map([](const int& x) { return x * 3; });
  b.Cache();
  ASSERT_TRUE(b.Materialize().ok());
  ft.Start();
  // Wait for at least one systems-level epoch to land in the DFS.
  bool snapshotted = false;
  for (int i = 0; i < 400 && !snapshotted; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    snapshotted = !h.dfs().List("sys/").empty();
  }
  ft.Stop();
  EXPECT_TRUE(snapshotted);
  // Both cached RDDs' partitions appear in the snapshot (8 blocks).
  EXPECT_GE(h.dfs().List("sys/").size(), 8u);
}

// The periodic signal must not be bankable: an unconsumed signal expires
// after signal_expiry_factor * tau instead of marking whatever RDD happens
// to be generated much later (possibly doubling that interval's checkpoints).
TEST(FtManagerTest, StaleCheckpointSignalExpiresInsteadOfMarking) {
  EngineHarness h;
  CheckpointConfig cfg;
  cfg.policy = CheckpointPolicyKind::kFixedInterval;
  cfg.fixed_interval_seconds = 0.05;  // expiry window = 50 ms
  FaultToleranceManager ft(&h.ctx(), cfg);  // no Start(): rounds fired by hand

  std::vector<int> data(100);
  std::iota(data.begin(), data.end(), 0);
  auto source = Parallelize(&h.ctx(), data, 2);

  // Fresh signal: the next dependent RDD is marked.
  ft.FireCheckpointRound();
  auto fresh = source.Map([](const int& x) { return x + 1; });
  EXPECT_EQ(fresh.raw()->checkpoint_state(), CheckpointState::kMarked);
  EXPECT_EQ(ft.GetStats().signals_expired, 0u);

  // Stale signal: fired, then nothing generated for > the expiry window.
  ft.FireCheckpointRound();
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  auto stale = source.Map([](const int& x) { return x + 2; });
  EXPECT_EQ(stale.raw()->checkpoint_state(), CheckpointState::kNone);
  EXPECT_EQ(ft.GetStats().signals_expired, 1u);

  // An unconsumed signal surviving to the next round also counts as expired
  // (it is re-armed with a fresh window, not silently carried over).
  ft.FireCheckpointRound();
  ft.FireCheckpointRound();
  EXPECT_EQ(ft.GetStats().signals_expired, 2u);
  auto consumed = source.Map([](const int& x) { return x + 3; });
  EXPECT_EQ(consumed.raw()->checkpoint_state(), CheckpointState::kMarked);
}

}  // namespace
}  // namespace flint
