// Health-informed placement + execution-start deadlines (ISSUE 8
// satellites): PickNode weights its smooth weighted round-robin by the EWMA
// health score pushed from the NodeManager, so a degraded-but-unbenched node
// draws proportionally less work; and attempt deadlines/service times run
// from the executor's own execution-start stamp, so queue wait on a busy
// node neither inflates the runtime quantiles nor counts against deadlines.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "src/engine/context.h"
#include "src/engine/dag_scheduler.h"
#include "src/engine/typed_rdd.h"
#include "src/engine/typed_rdd_ops.h"
#include "tests/test_util.h"

// Sanitizers stretch compute unpredictably; keep structural assertions, drop
// wall-clock ratio assertions (same policy as straggler_test.cc).
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define FLINT_TIMING_ASSERTS 0
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define FLINT_TIMING_ASSERTS 0
#else
#define FLINT_TIMING_ASSERTS 1
#endif
#else
#define FLINT_TIMING_ASSERTS 1
#endif

namespace flint {
namespace {

using testing::EngineHarness;
using testing::EngineHarnessOptions;

// --- SwrrPick unit behaviour ---

TEST(SwrrPickTest, EqualWeightsDegenerateToRoundRobin) {
  const std::vector<double> weights{1.0, 1.0, 1.0};
  std::vector<double> credits(3, 0.0);
  std::vector<size_t> picks;
  for (int i = 0; i < 9; ++i) {
    picks.push_back(SwrrPick(weights, credits));
  }
  const std::vector<size_t> expect{0, 1, 2, 0, 1, 2, 0, 1, 2};
  EXPECT_EQ(picks, expect);
}

TEST(SwrrPickTest, ProportionalAndInterleavedAtHalfWeight) {
  // Index 0 at weight 0.5 against two full-weight peers: exactly 50 of 250
  // picks (0.5 / 2.5), and never starved for long stretches.
  const std::vector<double> weights{0.5, 1.0, 1.0};
  std::vector<double> credits(3, 0.0);
  std::vector<int> counts(3, 0);
  int longest_drought = 0;
  int since_zero = 0;
  for (int i = 0; i < 250; ++i) {
    const size_t pick = SwrrPick(weights, credits);
    ++counts[pick];
    since_zero = pick == 0 ? 0 : since_zero + 1;
    longest_drought = std::max(longest_drought, since_zero);
  }
  EXPECT_EQ(counts[0], 50);
  EXPECT_EQ(counts[1], 100);
  EXPECT_EQ(counts[2], 100);
  // Smoothness: the weighted node appears roughly every 1/share picks, not
  // in a burst at the end.
  EXPECT_LE(longest_drought, 10);
}

TEST(SwrrPickTest, DeterministicAcrossRuns) {
  const std::vector<double> weights{0.3, 1.0, 0.7, 1.0};
  std::vector<double> credits_a(4, 0.0);
  std::vector<double> credits_b(4, 0.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(SwrrPick(weights, credits_a), SwrrPick(weights, credits_b)) << "step " << i;
  }
  EXPECT_EQ(credits_a, credits_b);
}

// --- health-weighted placement through the scheduler ---

TEST(HealthPlacementTest, DegradedNodeReceivesProportionallyLessWork) {
  EngineHarnessOptions options;
  options.num_nodes = 3;
  EngineHarness h(options);
  const NodeId degraded = h.node_ids()[0];
  // The regression scenario from ROADMAP: one node at score 0.5, unbenched.
  h.ctx().SetNodeHealthScore(degraded, 0.5);

  std::vector<int> data(60);
  std::iota(data.begin(), data.end(), 0);
  auto rdd = Parallelize(&h.ctx(), data, /*partitions=*/60).Map([](const int& x) {
    return x + 1;
  });
  auto out = rdd.Collect();
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  // 60 uncached partitions all route through the weighted round-robin:
  // weights 0.5/1/1 => shares 12/24/24. The scheduler thread is the only
  // picker and candidate vectors are id-sorted, so the split is exact.
  std::vector<uint64_t> picked;
  for (NodeId id : h.node_ids()) {
    picked.push_back(h.ctx().GetNodeState(id)->tasks_picked.load());
  }
  EXPECT_EQ(picked[0], 12u) << "degraded node should draw a half share";
  EXPECT_EQ(picked[1], 24u);
  EXPECT_EQ(picked[2], 24u);
}

TEST(HealthPlacementTest, UniformHealthSplitsEvenly) {
  EngineHarnessOptions options;
  options.num_nodes = 3;
  EngineHarness h(options);

  std::vector<int> data(60);
  std::iota(data.begin(), data.end(), 0);
  auto rdd = Parallelize(&h.ctx(), data, /*partitions=*/60).Map([](const int& x) {
    return x * 2;
  });
  ASSERT_TRUE(rdd.Collect().ok());

  for (NodeId id : h.node_ids()) {
    EXPECT_EQ(h.ctx().GetNodeState(id)->tasks_picked.load(), 20u)
        << "equal weights must keep the exact round-robin split (node " << id << ")";
  }
}

TEST(HealthPlacementTest, ScoreRecoveryRestoresFullShare) {
  EngineHarnessOptions options;
  options.num_nodes = 2;
  EngineHarness h(options);
  const NodeId degraded = h.node_ids()[0];
  h.ctx().SetNodeHealthScore(degraded, 0.25);
  h.ctx().SetNodeHealthScore(degraded, 1.0);  // scorer saw it recover

  std::vector<int> data(40);
  std::iota(data.begin(), data.end(), 0);
  auto rdd = Parallelize(&h.ctx(), data, /*partitions=*/40).Map([](const int& x) {
    return x - 1;
  });
  ASSERT_TRUE(rdd.Collect().ok());

  const uint64_t a = h.ctx().GetNodeState(h.node_ids()[0])->tasks_picked.load();
  const uint64_t b = h.ctx().GetNodeState(h.node_ids()[1])->tasks_picked.load();
  EXPECT_EQ(a, 20u);
  EXPECT_EQ(b, 20u);
}

// --- execution-start deadlines ---

// Records the service-time samples the scheduler reports to observers; with
// execution-start stamping these must exclude executor-queue wait.
class ServiceTimeRecorder : public EngineObserver {
 public:
  void OnTaskAttemptFinished(NodeId node, double seconds, bool success) override {
    (void)node;
    if (success) {
      MutexLock lock(&mutex_);
      samples_.push_back(seconds);
    }
  }

  std::vector<double> samples() const {
    MutexLock lock(&mutex_);
    return samples_;
  }

 private:
  mutable Mutex mutex_{"ServiceTimeRecorder::mutex_"};
  std::vector<double> samples_ GUARDED_BY(mutex_);
};

TEST(ExecStartDeadlineTest, ServiceTimesExcludeQueueWait) {
  // One single-threaded node, eight 20 ms tasks: the last task waits ~140 ms
  // in queue but occupies the executor for only ~20 ms. Stamped service
  // times must reflect the 20, not the 160.
  EngineHarnessOptions options;
  options.num_nodes = 1;
  EngineHarness h(options);
  ServiceTimeRecorder recorder;
  h.ctx().AddObserver(&recorder);

  constexpr int kTasks = 8;
  constexpr int kTaskMs = 20;
  std::vector<int> data(kTasks);
  std::iota(data.begin(), data.end(), 0);
  auto rdd = Parallelize(&h.ctx(), data, kTasks).Map([kTaskMs](const int& x) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kTaskMs));
    return x;
  });
  ASSERT_TRUE(rdd.Collect().ok());
  h.ctx().DrainExecutors();
  h.ctx().RemoveObserver(&recorder);

  const std::vector<double> samples = recorder.samples();
  ASSERT_EQ(samples.size(), static_cast<size_t>(kTasks));
#if FLINT_TIMING_ASSERTS
  // Every sample ~= one task's compute. Without the stamp the fallback
  // already bounds this via node-progress, but the stamp must not regress
  // it; 3x leaves slack for scheduling noise.
  for (double s : samples) {
    EXPECT_LT(s, 3.0 * kTaskMs / 1000.0) << "service time includes queue wait";
    EXPECT_GT(s, 0.0);
  }
#endif
  // The queue-wait the stamp subtracted is now accounted explicitly. With 8
  // serialized tasks the waits sum to ~(1+2+...+7)*20 ms; any positive value
  // proves the stamp (not inference) supplied the start times.
  EXPECT_GT(h.ctx().counters().task_queue_wait_nanos.load(), int64_t{0});
}

TEST(ExecStartDeadlineTest, QueuedTasksAreNotSpeculatedOnAHealthyNode) {
  // Deep queue on a healthy (but busy) 2-node cluster with tight deadlines:
  // execution-start measurement means queue depth alone must not trigger
  // deadline misses or speculative duplicates.
  EngineHarnessOptions options;
  options.num_nodes = 2;
  options.speculation.enabled = true;
  options.speculation.quorum = 3;
  options.speculation.spec_multiplier = 3.0;
  options.speculation.min_deadline_seconds = 0.05;
  EngineHarness h(options);

  constexpr int kTasks = 24;
  std::vector<int> data(kTasks);
  std::iota(data.begin(), data.end(), 0);
  auto rdd = Parallelize(&h.ctx(), data, kTasks).Map([](const int& x) {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    return x;
  });
  ASSERT_TRUE(rdd.Collect().ok());

  // 12 queued tasks per node at 15 ms each: total queue wait far exceeds the
  // 50 ms deadline floor, yet no attempt may look expired while queued.
  EXPECT_EQ(h.ctx().counters().task_deadline_misses.load(), 0u);
  EXPECT_EQ(h.ctx().counters().tasks_speculated.load(), 0u);
}

}  // namespace
}  // namespace flint
