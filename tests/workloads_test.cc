// Correctness tests for the four paper workloads, including equivalence of
// results with and without mid-run revocations — the core promise of
// lineage-based recomputation.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "src/workloads/als.h"
#include "src/workloads/kmeans.h"
#include "src/workloads/pagerank.h"
#include "src/workloads/tpch.h"
#include "tests/test_util.h"

namespace flint {
namespace {

using testing::EngineHarness;

// --- PageRank ---

PageRankParams SmallPageRank() {
  PageRankParams p;
  p.num_vertices = 300;
  p.edges_per_vertex = 6;
  p.partitions = 4;
  p.iterations = 3;
  return p;
}

TEST(PageRankTest, RanksArePositiveAndDeterministic) {
  EngineHarness h1;
  EngineHarness h2;
  auto r1 = RunPageRank(h1.ctx(), SmallPageRank());
  auto r2 = RunPageRank(h2.ctx(), SmallPageRank());
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok());
  EXPECT_GT(r1->rank_sum, 0.0);
  ASSERT_EQ(r1->top.size(), r2->top.size());
  for (size_t i = 0; i < r1->top.size(); ++i) {
    EXPECT_EQ(r1->top[i].first, r2->top[i].first);
    EXPECT_DOUBLE_EQ(r1->top[i].second, r2->top[i].second);
  }
}

TEST(PageRankTest, PowerLawGraphConcentratesRankOnLowIds) {
  EngineHarness h;
  auto r = RunPageRank(h.ctx(), SmallPageRank(), 10);
  ASSERT_TRUE(r.ok());
  // The generator skews in-edges toward low vertex ids, so the top-ranked
  // vertices should be low-numbered.
  int low_id_hits = 0;
  for (const auto& [v, rank] : r->top) {
    if (v < 100) {
      ++low_id_hits;
    }
  }
  EXPECT_GE(low_id_hits, 7);
}

TEST(PageRankTest, SurvivesRevocationsWithIdenticalResult) {
  EngineHarness h_ref;
  auto ref = RunPageRank(h_ref.ctx(), SmallPageRank());
  ASSERT_TRUE(ref.ok());

  EngineHarness h;
  std::thread chaos([&h] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    h.RevokeNodes(2);
    h.AddNode();
    h.AddNode();
  });
  auto r = RunPageRank(h.ctx(), SmallPageRank());
  chaos.join();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NEAR(r->rank_sum, ref->rank_sum, 1e-9);
  ASSERT_EQ(r->top.size(), ref->top.size());
  for (size_t i = 0; i < r->top.size(); ++i) {
    EXPECT_EQ(r->top[i].first, ref->top[i].first);
  }
}

// --- KMeans ---

KMeansParams SmallKMeans() {
  KMeansParams p;
  p.num_points = 2000;
  p.k = 4;
  p.partitions = 4;
  p.iterations = 4;
  return p;
}

TEST(KMeansTest, InertiaDecreasesAcrossIterations) {
  EngineHarness h;
  KMeansParams p1 = SmallKMeans();
  p1.iterations = 1;
  KMeansParams p5 = SmallKMeans();
  p5.iterations = 5;
  auto r1 = RunKMeans(h.ctx(), p1);
  EngineHarness h2;
  auto r5 = RunKMeans(h2.ctx(), p5);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r5.ok());
  EXPECT_LE(r5->inertia, r1->inertia * 1.0001);
}

TEST(KMeansTest, CentroidCountMatchesK) {
  EngineHarness h;
  auto r = RunKMeans(h.ctx(), SmallKMeans());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->centroids.size(), 4u);
  EXPECT_GT(r->inertia, 0.0);
}

TEST(KMeansTest, DeterministicAcrossRuns) {
  EngineHarness h1;
  EngineHarness h2;
  auto r1 = RunKMeans(h1.ctx(), SmallKMeans());
  auto r2 = RunKMeans(h2.ctx(), SmallKMeans());
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_DOUBLE_EQ(r1->inertia, r2->inertia);
}

// --- ALS ---

AlsParams SmallAls() {
  AlsParams p;
  p.num_users = 80;
  p.num_items = 40;
  p.ratings_per_user = 10;
  p.rank = 4;
  p.iterations = 3;
  p.partitions = 4;
  return p;
}

TEST(AlsTest, RecoversLowRankStructure) {
  EngineHarness h;
  auto r = RunAls(h.ctx(), SmallAls());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Data is low-rank + noise(0.02); ALS should fit to a small fraction of
  // the rating scale (ratings are dot products of unit-ish factors, ~O(1)).
  EXPECT_LT(r->rmse, 0.15);
  EXPECT_GT(r->rmse, 0.0);
}

TEST(AlsTest, MoreIterationsDoNotHurt) {
  EngineHarness h1;
  EngineHarness h2;
  AlsParams p1 = SmallAls();
  p1.iterations = 1;
  AlsParams p3 = SmallAls();
  p3.iterations = 3;
  auto r1 = RunAls(h1.ctx(), p1);
  auto r3 = RunAls(h2.ctx(), p3);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r3.ok());
  EXPECT_LE(r3->rmse, r1->rmse * 1.05);
}

// --- TPC-H ---

TpchParams SmallTpch() {
  TpchParams p;
  p.num_customers = 100;
  p.num_orders = 500;
  p.max_lines_per_order = 4;
  p.partitions = 4;
  return p;
}

TEST(TpchTest, LoadMaterializesTables) {
  EngineHarness h;
  auto db = TpchDatabase::Load(h.ctx(), SmallTpch());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_GT(db->num_lineitems(), 500u);
}

TEST(TpchTest, Q1MatchesDriverSideReference) {
  EngineHarness h;
  auto db = TpchDatabase::Load(h.ctx(), SmallTpch());
  ASSERT_TRUE(db.ok());
  const int cutoff = kTpchMaxDate - 90;
  auto q1 = db->RunQ1(cutoff);
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();

  // Reference from the raw rows.
  auto lines = db->lineitem().Collect();
  ASSERT_TRUE(lines.ok());
  std::map<int, Q1Row> expect;
  for (const auto& l : *lines) {
    if (l.ship_date > cutoff) {
      continue;
    }
    Q1Row& agg = expect[l.return_flag * 2 + l.line_status];
    agg.return_flag = l.return_flag;
    agg.line_status = l.line_status;
    agg.sum_qty += l.quantity;
    agg.sum_base_price += l.extended_price;
    agg.sum_disc_price += l.extended_price * (1.0 - l.discount);
    agg.sum_charge += l.extended_price * (1.0 - l.discount) * (1.0 + l.tax);
    agg.count += 1;
  }
  ASSERT_EQ(q1->size(), expect.size());
  size_t i = 0;
  for (const auto& [key, ref] : expect) {
    EXPECT_EQ((*q1)[i].count, ref.count);
    EXPECT_NEAR((*q1)[i].sum_qty, ref.sum_qty, 1e-6);
    EXPECT_NEAR((*q1)[i].sum_disc_price, ref.sum_disc_price, 1e-4);
    ++i;
  }
}

TEST(TpchTest, Q3ReturnsDescendingRevenue) {
  EngineHarness h;
  auto db = TpchDatabase::Load(h.ctx(), SmallTpch());
  ASSERT_TRUE(db.ok());
  auto q3 = db->RunQ3(/*segment=*/1, /*date=*/kTpchMaxDate / 2, /*top_n=*/5);
  ASSERT_TRUE(q3.ok()) << q3.status().ToString();
  for (size_t i = 1; i < q3->size(); ++i) {
    EXPECT_GE((*q3)[i - 1].revenue, (*q3)[i].revenue);
  }
}

TEST(TpchTest, Q6MatchesDriverSideReference) {
  EngineHarness h;
  auto db = TpchDatabase::Load(h.ctx(), SmallTpch());
  ASSERT_TRUE(db.ok());
  auto q6 = db->RunQ6(0, 365, 0.05, 24.0);
  ASSERT_TRUE(q6.ok());
  auto lines = db->lineitem().Collect();
  ASSERT_TRUE(lines.ok());
  double expect = 0.0;
  for (const auto& l : *lines) {
    if (l.ship_date >= 0 && l.ship_date < 365 && l.discount >= 0.039 && l.discount <= 0.061 &&
        l.quantity < 24.0) {
      expect += l.extended_price * l.discount;
    }
  }
  EXPECT_NEAR(*q6, expect, 1e-6 * std::max(1.0, expect));
}

TEST(TpchTest, QueriesSurviveRevocationWithSameAnswer) {
  EngineHarness h;
  auto db = TpchDatabase::Load(h.ctx(), SmallTpch());
  ASSERT_TRUE(db.ok());
  auto before = db->RunQ1();
  ASSERT_TRUE(before.ok());
  h.RevokeNodes(2);
  h.AddNode();
  h.AddNode();
  auto after = db->RunQ1();
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_EQ(before->size(), after->size());
  for (size_t i = 0; i < before->size(); ++i) {
    EXPECT_EQ((*before)[i].count, (*after)[i].count);
    EXPECT_NEAR((*before)[i].sum_charge, (*after)[i].sum_charge, 1e-6);
  }
}

}  // namespace
}  // namespace flint
