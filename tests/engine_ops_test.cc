// Tests for the extended operator surface (typed_rdd_ops.h): Union,
// Distinct, Sample, SortBy, CoGroup, LeftOuterJoin, Take/First, Keys/Values —
// including behaviour across revocations.

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "src/engine/typed_rdd_ops.h"
#include "tests/test_util.h"

namespace flint {
namespace {

using testing::EngineHarness;

TEST(EngineOpsTest, UnionConcatenatesBothSides) {
  EngineHarness h;
  auto a = Parallelize(&h.ctx(), std::vector<int>{1, 2, 3}, 2);
  auto b = Parallelize(&h.ctx(), std::vector<int>{4, 5}, 1);
  auto u = Union(a, b);
  EXPECT_EQ(u.num_partitions(), 3);
  auto out = u.Collect();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(EngineOpsTest, UnionOfEmptyIsEmpty) {
  EngineHarness h;
  auto a = Parallelize(&h.ctx(), std::vector<int>{}, 1);
  auto b = Parallelize(&h.ctx(), std::vector<int>{}, 1);
  auto count = Union(a, b).Count();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
}

TEST(EngineOpsTest, DistinctRemovesDuplicates) {
  EngineHarness h;
  std::vector<int> data;
  for (int i = 0; i < 300; ++i) {
    data.push_back(i % 17);
  }
  auto out = Distinct(Parallelize(&h.ctx(), data, 4), 3).Collect();
  ASSERT_TRUE(out.ok());
  std::set<int> got(out->begin(), out->end());
  EXPECT_EQ(out->size(), got.size());  // no dupes survive
  EXPECT_EQ(got.size(), 17u);
}

TEST(EngineOpsTest, SampleIsDeterministicAndApproximate) {
  EngineHarness h;
  std::vector<int> data(10000);
  std::iota(data.begin(), data.end(), 0);
  auto base = Parallelize(&h.ctx(), data, 8);
  auto s1 = Sample(base, 0.25, /*seed=*/9).Collect();
  auto s2 = Sample(base, 0.25, /*seed=*/9).Collect();
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s1, *s2);
  EXPECT_NEAR(static_cast<double>(s1->size()), 2500.0, 200.0);
}

TEST(EngineOpsTest, SortByOrdersGlobally) {
  EngineHarness h;
  Rng rng(4);
  std::vector<int> data;
  for (int i = 0; i < 500; ++i) {
    data.push_back(static_cast<int>(rng.UniformInt(100000)));
  }
  auto sorted = SortBy(Parallelize(&h.ctx(), data, 6), [](const int& x) { return x; }).Collect();
  ASSERT_TRUE(sorted.ok());
  ASSERT_EQ(sorted->size(), data.size());
  EXPECT_TRUE(std::is_sorted(sorted->begin(), sorted->end()));
}

TEST(EngineOpsTest, CoGroupCollectsBothSides) {
  EngineHarness h;
  std::vector<std::pair<int, int>> left = {{1, 10}, {1, 11}, {2, 20}};
  std::vector<std::pair<int, double>> right = {{1, 0.5}, {3, 0.25}};
  auto cg = CoGroup(Parallelize(&h.ctx(), left, 2), Parallelize(&h.ctx(), right, 2), 2);
  auto out = cg.Collect();
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);  // keys 1, 2, 3
  for (const auto& [k, vw] : *out) {
    if (k == 1) {
      EXPECT_EQ(vw.first.size(), 2u);
      EXPECT_EQ(vw.second.size(), 1u);
    } else if (k == 2) {
      EXPECT_EQ(vw.first.size(), 1u);
      EXPECT_TRUE(vw.second.empty());
    } else {
      EXPECT_TRUE(vw.first.empty());
      EXPECT_EQ(vw.second.size(), 1u);
    }
  }
}

TEST(EngineOpsTest, LeftOuterJoinKeepsUnmatchedLeftRows) {
  EngineHarness h;
  std::vector<std::pair<int, int>> left = {{1, 10}, {2, 20}};
  std::vector<std::pair<int, double>> right = {{1, 0.5}};
  auto j = LeftOuterJoin(Parallelize(&h.ctx(), left, 1), Parallelize(&h.ctx(), right, 1), 2);
  auto out = j.Collect();
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  for (const auto& [k, vw] : *out) {
    if (k == 1) {
      ASSERT_TRUE(vw.second.has_value());
      EXPECT_DOUBLE_EQ(*vw.second, 0.5);
    } else {
      EXPECT_FALSE(vw.second.has_value());
    }
  }
}

TEST(EngineOpsTest, TakeAndFirst) {
  EngineHarness h;
  std::vector<int> data(100);
  std::iota(data.begin(), data.end(), 0);
  auto rdd = Parallelize(&h.ctx(), data, 4);
  auto taken = Take(rdd, 5);
  ASSERT_TRUE(taken.ok());
  EXPECT_EQ(*taken, (std::vector<int>{0, 1, 2, 3, 4}));
  auto first = First(rdd);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 0);
  auto empty = Parallelize(&h.ctx(), std::vector<int>{}, 1);
  EXPECT_EQ(First(empty).status().code(), StatusCode::kFailedPrecondition);
}

TEST(EngineOpsTest, KeysValuesProject) {
  EngineHarness h;
  std::vector<std::pair<int, double>> data = {{1, 0.5}, {2, 0.25}};
  auto rdd = Parallelize(&h.ctx(), data, 1);
  auto keys = Keys(rdd).Collect();
  auto values = Values(rdd).Collect();
  ASSERT_TRUE(keys.ok());
  ASSERT_TRUE(values.ok());
  EXPECT_EQ(*keys, (std::vector<int>{1, 2}));
  EXPECT_EQ(*values, (std::vector<double>{0.5, 0.25}));
}

TEST(EngineOpsTest, DistinctSurvivesRevocation) {
  EngineHarness h;
  std::vector<int> data;
  for (int i = 0; i < 2000; ++i) {
    data.push_back(i % 97);
  }
  auto base = Parallelize(&h.ctx(), data, 8);
  base.Cache();
  auto d = Distinct(base, 4);
  auto before = d.Count();
  ASSERT_TRUE(before.ok());
  h.RevokeNodes(2);
  auto after = Distinct(base, 4).Count();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *before);
  EXPECT_EQ(*after, 97u);
}

}  // namespace
}  // namespace flint
