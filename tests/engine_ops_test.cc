// Tests for the extended operator surface (typed_rdd_ops.h): Union,
// Distinct, Sample, SortBy, CoGroup, LeftOuterJoin, Take/First, Keys/Values —
// including behaviour across revocations — plus the narrow-chain operator
// fusion rules (fusion.h): fused results are bit-identical to unfused, and
// fusion breaks at cache, checkpoint, shuffle, and shared-consumer
// boundaries.

#include <gtest/gtest.h>

#include <numeric>
#include <optional>
#include <set>

#include "src/engine/typed_rdd_ops.h"
#include "tests/test_util.h"

namespace flint {
namespace {

using testing::EngineHarness;
using testing::EngineHarnessOptions;

TEST(EngineOpsTest, UnionConcatenatesBothSides) {
  EngineHarness h;
  auto a = Parallelize(&h.ctx(), std::vector<int>{1, 2, 3}, 2);
  auto b = Parallelize(&h.ctx(), std::vector<int>{4, 5}, 1);
  auto u = Union(a, b);
  EXPECT_EQ(u.num_partitions(), 3);
  auto out = u.Collect();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(EngineOpsTest, UnionOfEmptyIsEmpty) {
  EngineHarness h;
  auto a = Parallelize(&h.ctx(), std::vector<int>{}, 1);
  auto b = Parallelize(&h.ctx(), std::vector<int>{}, 1);
  auto count = Union(a, b).Count();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
}

TEST(EngineOpsTest, DistinctRemovesDuplicates) {
  EngineHarness h;
  std::vector<int> data;
  for (int i = 0; i < 300; ++i) {
    data.push_back(i % 17);
  }
  auto out = Distinct(Parallelize(&h.ctx(), data, 4), 3).Collect();
  ASSERT_TRUE(out.ok());
  std::set<int> got(out->begin(), out->end());
  EXPECT_EQ(out->size(), got.size());  // no dupes survive
  EXPECT_EQ(got.size(), 17u);
}

TEST(EngineOpsTest, SampleIsDeterministicAndApproximate) {
  EngineHarness h;
  std::vector<int> data(10000);
  std::iota(data.begin(), data.end(), 0);
  auto base = Parallelize(&h.ctx(), data, 8);
  auto s1 = Sample(base, 0.25, /*seed=*/9).Collect();
  auto s2 = Sample(base, 0.25, /*seed=*/9).Collect();
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s1, *s2);
  EXPECT_NEAR(static_cast<double>(s1->size()), 2500.0, 200.0);
}

TEST(EngineOpsTest, SortByOrdersGlobally) {
  EngineHarness h;
  Rng rng(4);
  std::vector<int> data;
  for (int i = 0; i < 500; ++i) {
    data.push_back(static_cast<int>(rng.UniformInt(100000)));
  }
  auto sorted = SortBy(Parallelize(&h.ctx(), data, 6), [](const int& x) { return x; }).Collect();
  ASSERT_TRUE(sorted.ok());
  ASSERT_EQ(sorted->size(), data.size());
  EXPECT_TRUE(std::is_sorted(sorted->begin(), sorted->end()));
}

TEST(EngineOpsTest, CoGroupCollectsBothSides) {
  EngineHarness h;
  std::vector<std::pair<int, int>> left = {{1, 10}, {1, 11}, {2, 20}};
  std::vector<std::pair<int, double>> right = {{1, 0.5}, {3, 0.25}};
  auto cg = CoGroup(Parallelize(&h.ctx(), left, 2), Parallelize(&h.ctx(), right, 2), 2);
  auto out = cg.Collect();
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);  // keys 1, 2, 3
  for (const auto& [k, vw] : *out) {
    if (k == 1) {
      EXPECT_EQ(vw.first.size(), 2u);
      EXPECT_EQ(vw.second.size(), 1u);
    } else if (k == 2) {
      EXPECT_EQ(vw.first.size(), 1u);
      EXPECT_TRUE(vw.second.empty());
    } else {
      EXPECT_TRUE(vw.first.empty());
      EXPECT_EQ(vw.second.size(), 1u);
    }
  }
}

TEST(EngineOpsTest, LeftOuterJoinKeepsUnmatchedLeftRows) {
  EngineHarness h;
  std::vector<std::pair<int, int>> left = {{1, 10}, {2, 20}};
  std::vector<std::pair<int, double>> right = {{1, 0.5}};
  auto j = LeftOuterJoin(Parallelize(&h.ctx(), left, 1), Parallelize(&h.ctx(), right, 1), 2);
  auto out = j.Collect();
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  for (const auto& [k, vw] : *out) {
    if (k == 1) {
      ASSERT_TRUE(vw.second.has_value());
      EXPECT_DOUBLE_EQ(*vw.second, 0.5);
    } else {
      EXPECT_FALSE(vw.second.has_value());
    }
  }
}

TEST(EngineOpsTest, TakeAndFirst) {
  EngineHarness h;
  std::vector<int> data(100);
  std::iota(data.begin(), data.end(), 0);
  auto rdd = Parallelize(&h.ctx(), data, 4);
  auto taken = Take(rdd, 5);
  ASSERT_TRUE(taken.ok());
  EXPECT_EQ(*taken, (std::vector<int>{0, 1, 2, 3, 4}));
  auto first = First(rdd);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 0);
  auto empty = Parallelize(&h.ctx(), std::vector<int>{}, 1);
  EXPECT_EQ(First(empty).status().code(), StatusCode::kFailedPrecondition);
}

TEST(EngineOpsTest, KeysValuesProject) {
  EngineHarness h;
  std::vector<std::pair<int, double>> data = {{1, 0.5}, {2, 0.25}};
  auto rdd = Parallelize(&h.ctx(), data, 1);
  auto keys = Keys(rdd).Collect();
  auto values = Values(rdd).Collect();
  ASSERT_TRUE(keys.ok());
  ASSERT_TRUE(values.ok());
  EXPECT_EQ(*keys, (std::vector<int>{1, 2}));
  EXPECT_EQ(*values, (std::vector<double>{0.5, 0.25}));
}

// --- narrow-chain operator fusion (fusion.h) ---

TEST(FusionTest, FusedChainMatchesUnfusedBitForBit) {
  EngineHarness fused;
  EngineHarness plain{EngineHarnessOptions{.operator_fusion = false}};
  std::vector<int> data(5000);
  std::iota(data.begin(), data.end(), -2500);
  auto run = [&data](EngineHarness& h) {
    return Parallelize(&h.ctx(), data, 4)
        .Map([](const int& x) { return x * 3 + 1; })
        .Map([](const int& x) { return x ^ (x >> 2); })
        .Filter([](const int& x) { return x % 7 != 0; })
        .Collect();
  };
  auto a = run(fused);
  auto b = run(plain);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  // One fused task per partition, two intermediate partitions elided each.
  EXPECT_EQ(fused.ctx().counters().fused_chains.load(), 4u);
  EXPECT_EQ(fused.ctx().counters().fused_operators_elided.load(), 8u);
  EXPECT_EQ(plain.ctx().counters().fused_chains.load(), 0u);
  // The fused run computed only the chain bottoms and the sources.
  EXPECT_LT(fused.ctx().counters().partitions_computed.load(),
            plain.ctx().counters().partitions_computed.load());
}

TEST(FusionTest, FlatMapAndSampleFuseDeterministically) {
  EngineHarness fused;
  EngineHarness plain{EngineHarnessOptions{.operator_fusion = false}};
  std::vector<int> data(2000);
  std::iota(data.begin(), data.end(), 0);
  auto run = [&data](EngineHarness& h) {
    auto exploded = Parallelize(&h.ctx(), data, 5).FlatMap([](const int& x) {
      return std::vector<int>{x, x + 100000};
    });
    return Sample(exploded, 0.5, /*seed=*/11)
        .Map([](const int& x) { return x * 2; })
        .Collect();
  };
  auto a = run(fused);
  auto b = run(plain);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);  // includes the per-partition sampling RNG streams
  EXPECT_EQ(fused.ctx().counters().fused_chains.load(), 5u);
  EXPECT_EQ(fused.ctx().counters().fused_operators_elided.load(), 10u);
}

TEST(FusionTest, CacheBoundaryBreaksFusionAndPopulatesCache) {
  EngineHarness h;
  std::vector<int> data(900);
  std::iota(data.begin(), data.end(), 0);
  auto mid = Parallelize(&h.ctx(), data, 3).Map([](const int& x) { return x + 1; });
  mid.Cache();
  auto out = mid.Map([](const int& x) { return x * 2; })
                 .Filter([](const int& x) { return x > 10; })
                 .Collect();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->front(), 12);
  EXPECT_EQ(out->size(), 895u);
  // Only the two ops below the cache fused; mid itself was materialized.
  EXPECT_EQ(h.ctx().counters().fused_chains.load(), 3u);
  EXPECT_EQ(h.ctx().counters().fused_operators_elided.load(), 3u);
  // A second action over mid is served from cache, proving the fused task
  // did not stream through the cache point.
  const uint64_t hits_before = h.ctx().counters().cache_hits.load();
  auto again = mid.Collect();
  ASSERT_TRUE(again.ok());
  EXPECT_GE(h.ctx().counters().cache_hits.load() - hits_before, 3u);
}

TEST(FusionTest, CheckpointMarkBreaksFusion) {
  EngineHarness h;
  std::vector<int> data(600);
  std::iota(data.begin(), data.end(), 0);
  auto mid = Parallelize(&h.ctx(), data, 3).Map([](const int& x) { return x + 5; });
  ASSERT_TRUE(mid.raw()->MarkForCheckpoint());
  auto out = mid.Map([](const int& x) { return x - 5; }).Collect();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, data);
  // The marked RDD is a fusion barrier: the single op above it forms a
  // one-element chain, which executes unfused.
  EXPECT_EQ(h.ctx().counters().fused_chains.load(), 0u);
}

TEST(FusionTest, SharedIntermediateIsNotFusedThrough) {
  EngineHarness h;
  std::vector<int> data(600);
  std::iota(data.begin(), data.end(), 0);
  auto mid = Parallelize(&h.ctx(), data, 3).Map([](const int& x) { return x + 1; });
  auto doubled = mid.Map([](const int& x) { return x * 2; });
  auto evens = mid.Filter([](const int& x) { return x % 2 == 0; });
  // mid now has two live consumers; streaming through it would compute it
  // twice, so neither chain may fuse across it.
  auto a = doubled.Collect();
  auto b = evens.Collect();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->front(), 2);
  EXPECT_EQ(a->size(), 600u);
  EXPECT_EQ(b->size(), 300u);
  EXPECT_EQ(h.ctx().counters().fused_chains.load(), 0u);
}

TEST(FusionTest, FusionRestartsAfterShuffleBoundary) {
  EngineHarness fused;
  EngineHarness plain{EngineHarnessOptions{.operator_fusion = false}};
  std::vector<std::pair<int, int>> data;
  for (int i = 0; i < 1200; ++i) {
    data.emplace_back(i % 23, 1);
  }
  auto run = [&data](EngineHarness& h) {
    auto counts = ReduceByKey(Parallelize(&h.ctx(), data, 4), 3,
                              [](int a, int b) { return a + b; });
    auto out = counts.Map([](const std::pair<int, int>& kv) { return kv.second; })
                   .Filter([](const int& c) { return c > 0; })
                   .Collect();
    if (out.ok()) {
      std::sort(out->begin(), out->end());
    }
    return out;
  };
  auto a = run(fused);
  auto b = run(plain);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  // The Map->Filter pair above the shuffle output fused (one chain per
  // reduce partition); the shuffle itself never streams.
  EXPECT_EQ(fused.ctx().counters().fused_chains.load(), 3u);
}

TEST(FusionTest, ReducePartialsFuseIntoTheChain) {
  EngineHarness fused;
  EngineHarness plain{EngineHarnessOptions{.operator_fusion = false}};
  std::vector<int> data(4000);
  std::iota(data.begin(), data.end(), 1);
  auto run = [&data](EngineHarness& h) {
    return Parallelize(&h.ctx(), data, 6)
        .Map([](const int& x) { return x * 2; })
        .Reduce([](int a, int b) { return a + b; });
  };
  auto a = run(fused);
  auto b = run(plain);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(*a, 4000 * 4001);
  // The per-partition fold sank into the map chain: map + partial fuse.
  EXPECT_EQ(fused.ctx().counters().fused_chains.load(), 6u);
  EXPECT_EQ(fused.ctx().counters().fused_operators_elided.load(), 6u);
}

TEST(FusionTest, ReduceIsDeterministicForNonCommutativeOps) {
  EngineHarness h{EngineHarnessOptions{.executor_threads = 2}};
  std::vector<std::string> tokens;
  std::string expect;
  for (int i = 0; i < 40; ++i) {
    tokens.push_back(std::string(1, static_cast<char>('a' + i % 26)));
    expect += tokens.back();
  }
  // Concatenation is associative but not commutative: the driver must fold
  // per-partition partials in partition order.
  auto got = Parallelize(&h.ctx(), tokens, 8).Reduce([](const std::string& a,
                                                        const std::string& b) { return a + b; });
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, expect);
}

TEST(EngineOpsTest, SortByDeterministicAcrossPartitionCounts) {
  EngineHarness h{EngineHarnessOptions{.executor_threads = 2}};
  Rng rng(7);
  std::vector<std::pair<int, int>> data;  // many duplicate keys, distinct payloads
  for (int i = 0; i < 3000; ++i) {
    data.emplace_back(static_cast<int>(rng.UniformInt(50)), i);
  }
  auto base = Parallelize(&h.ctx(), data, 6);
  auto key = [](const std::pair<int, int>& p) { return p.first; };
  std::optional<std::vector<std::pair<int, int>>> reference;
  for (int parts : {1, 2, 4, 8}) {
    auto out = SortBy(base, key, parts).Collect();
    ASSERT_TRUE(out.ok()) << "num_output=" << parts;
    ASSERT_EQ(out->size(), data.size());
    EXPECT_TRUE(std::is_sorted(out->begin(), out->end(),
                               [&](const auto& a, const auto& b) { return key(a) < key(b); }));
    if (!reference.has_value()) {
      reference = *out;
    } else {
      // Equal keys keep their arrival order (stable sort + range partitioning
      // that never splits a key), so every partition count yields the exact
      // same sequence.
      EXPECT_EQ(*out, *reference) << "num_output=" << parts;
    }
  }
}

TEST(EngineOpsTest, TakeMaterializesOnlyNeededPartitions) {
  EngineHarness h;
  std::vector<int> data(400);
  std::iota(data.begin(), data.end(), 0);
  auto rdd = Parallelize(&h.ctx(), data, 8).Map([](const int& x) { return x + 1; });
  const uint64_t before = h.ctx().counters().partitions_computed.load();
  auto out = Take(rdd, 10);
  ASSERT_TRUE(out.ok());
  std::vector<int> expect(10);
  std::iota(expect.begin(), expect.end(), 1);
  EXPECT_EQ(*out, expect);
  // Partition 0 (50 rows) covers n=10: only the first chain bottom and its
  // source were computed, not all 8 partitions.
  EXPECT_LE(h.ctx().counters().partitions_computed.load() - before, 2u);

  // A larger n spans partitions but keeps the global prefix order.
  auto more = Take(rdd, 120);
  ASSERT_TRUE(more.ok());
  std::vector<int> expect_more(120);
  std::iota(expect_more.begin(), expect_more.end(), 1);
  EXPECT_EQ(*more, expect_more);

  // n beyond the dataset returns everything.
  auto all = Take(rdd, 1000);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 400u);
}

TEST(EngineOpsTest, DistinctSurvivesRevocation) {
  EngineHarness h;
  std::vector<int> data;
  for (int i = 0; i < 2000; ++i) {
    data.push_back(i % 97);
  }
  auto base = Parallelize(&h.ctx(), data, 8);
  base.Cache();
  auto d = Distinct(base, 4);
  auto before = d.Count();
  ASSERT_TRUE(before.ok());
  h.RevokeNodes(2);
  auto after = Distinct(base, 4).Count();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *before);
  EXPECT_EQ(*after, 97u);
}

}  // namespace
}  // namespace flint
