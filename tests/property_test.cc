// Property-style parameterized suites (TEST_P) over randomized inputs:
// engine shuffle correctness against driver-side references, block-manager
// invariants under random workloads, billing invariants over random traces,
// statistics invariants, and the Daly-optimality property on a grid.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "src/checkpoint/checkpoint_policy.h"
#include "src/common/stats.h"
#include "src/engine/block_manager.h"
#include "src/engine/typed_rdd.h"
#include "src/market/spot_market.h"
#include "tests/test_util.h"

namespace flint {
namespace {

// --- ReduceByKey equivalence over (size, partitions, reducers, seed) ---

struct ShuffleCase {
  int records;
  int partitions;
  int reducers;
  uint64_t seed;
};

class ShuffleProperty : public ::testing::TestWithParam<ShuffleCase> {};

TEST_P(ShuffleProperty, ReduceByKeyMatchesReference) {
  const ShuffleCase c = GetParam();
  testing::EngineHarness h;
  Rng rng(c.seed);
  std::vector<std::pair<int, int64_t>> data;
  data.reserve(static_cast<size_t>(c.records));
  for (int i = 0; i < c.records; ++i) {
    data.emplace_back(static_cast<int>(rng.UniformInt(37)),
                      static_cast<int64_t>(rng.UniformInt(1000)));
  }
  std::map<int, int64_t> expect;
  for (const auto& [k, v] : data) {
    expect[k] += v;
  }
  auto out = ReduceByKey(Parallelize(&h.ctx(), data, c.partitions), c.reducers,
                         [](int64_t a, int64_t b) { return a + b; })
                 .Collect();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  std::map<int, int64_t> got(out->begin(), out->end());
  EXPECT_EQ(got, expect);
}

TEST_P(ShuffleProperty, GroupByKeyPreservesEveryValue) {
  const ShuffleCase c = GetParam();
  testing::EngineHarness h;
  Rng rng(c.seed ^ 0xf00dULL);
  std::vector<std::pair<int, int64_t>> data;
  for (int i = 0; i < c.records; ++i) {
    data.emplace_back(static_cast<int>(rng.UniformInt(11)), i);
  }
  auto out = GroupByKey(Parallelize(&h.ctx(), data, c.partitions), c.reducers).Collect();
  ASSERT_TRUE(out.ok());
  size_t total = 0;
  for (const auto& [k, vs] : *out) {
    total += vs.size();
  }
  EXPECT_EQ(total, data.size());
}

TEST_P(ShuffleProperty, ResultsIdenticalAfterMidJobRevocation) {
  const ShuffleCase c = GetParam();
  testing::EngineHarness reference;
  testing::EngineHarness chaos_cluster;
  Rng rng(c.seed ^ 0xbeefULL);
  std::vector<std::pair<int, int64_t>> data;
  for (int i = 0; i < c.records; ++i) {
    data.emplace_back(static_cast<int>(rng.UniformInt(23)), i % 101);
  }
  auto run = [&](testing::EngineHarness& h) {
    auto base = Parallelize(&h.ctx(), data, c.partitions);
    base.Cache();
    return ReduceByKey(base, c.reducers, [](int64_t a, int64_t b) { return a + b; }).Collect();
  };
  auto expect = run(reference);
  ASSERT_TRUE(expect.ok());
  std::thread chaos([&chaos_cluster] {
    chaos_cluster.RevokeNodes(2);
    chaos_cluster.AddNode();
  });
  auto got = run(chaos_cluster);
  chaos.join();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, *expect);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShuffleProperty,
                         ::testing::Values(ShuffleCase{100, 1, 1, 1}, ShuffleCase{100, 4, 2, 2},
                                           ShuffleCase{1000, 8, 3, 3}, ShuffleCase{1000, 3, 8, 4},
                                           ShuffleCase{5000, 16, 5, 5},
                                           ShuffleCase{513, 7, 7, 6}));

// --- block manager invariants under random put/get sequences ---

class BlockManagerProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BlockManagerProperty, MemoryNeverExceedsBudgetAndGetsAreConsistent) {
  BlockManagerConfig config;
  config.memory_budget_bytes = 64 * kKiB;
  config.eviction = GetParam() % 2 == 0 ? EvictionMode::kDrop : EvictionMode::kSpill;
  config.model_latency = false;
  BlockManager bm(config);
  Rng rng(GetParam());
  std::map<int, uint64_t> sizes;  // partition -> record count written
  for (int step = 0; step < 500; ++step) {
    const int part = static_cast<int>(rng.UniformInt(64));
    if (rng.Bernoulli(0.6)) {
      std::vector<int64_t> rows(32 + rng.UniformInt(256));
      sizes[part] = rows.size();
      bool stored = false;
      bm.Put(BlockKey{1, part}, MakePartition(std::move(rows)), &stored);
    } else {
      PartitionPtr got = bm.Get(BlockKey{1, part});
      if (got != nullptr) {
        // Whatever comes back must be the last write for that partition.
        ASSERT_TRUE(sizes.count(part) > 0);
        EXPECT_EQ(got->NumRecords(), sizes[part]);
      }
    }
    EXPECT_LE(bm.memory_used(), config.memory_budget_bytes);
  }
  if (config.eviction == EvictionMode::kDrop) {
    EXPECT_EQ(bm.num_spill_blocks(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockManagerProperty, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- lock-striped shards: eviction accounting is exact per shard ---

TEST(BlockManagerShardTest, EvictionAccountingIsExactAcrossShardCounts) {
  for (int shards : {1, 4}) {
    BlockManagerConfig config;
    config.memory_budget_bytes = 64 * kKiB;
    config.eviction = EvictionMode::kDrop;
    config.model_latency = false;
    config.num_shards = shards;
    BlockManager bm(config);
    ASSERT_EQ(bm.num_shards(), static_cast<size_t>(shards));
    size_t stored_count = 0;
    size_t evicted = 0;
    for (int p = 0; p < 64; ++p) {
      std::vector<int64_t> rows(256);  // ~2 KiB: 64 blocks overflow the budget
      bool stored = false;
      evicted += bm.Put(BlockKey{7, p}, MakePartition(std::move(rows)), &stored).size();
      stored_count += stored ? 1 : 0;
      EXPECT_LE(bm.memory_used(), config.memory_budget_bytes);
    }
    // Keys are distinct, so every eviction removed exactly one resident block.
    EXPECT_EQ(bm.num_memory_blocks(), stored_count - evicted);
    EXPECT_GT(evicted, 0u);
    for (int p = 0; p < 64; ++p) {
      bm.Erase(BlockKey{7, p});
    }
    EXPECT_EQ(bm.memory_used(), 0u);
    EXPECT_EQ(bm.num_memory_blocks(), 0u);
  }
}

TEST(BlockManagerShardTest, SpilledBlocksStayReachableAcrossShards) {
  BlockManagerConfig config;
  config.memory_budget_bytes = 16 * kKiB;
  config.eviction = EvictionMode::kSpill;
  config.model_latency = false;
  config.num_shards = 4;
  BlockManager bm(config);
  for (int p = 0; p < 32; ++p) {
    std::vector<int64_t> rows(128, p);  // ~1 KiB each, 32 KiB total
    bm.Put(BlockKey{3, p}, MakePartition(std::move(rows)), nullptr);
  }
  EXPECT_LE(bm.memory_used(), config.memory_budget_bytes);
  EXPECT_GT(bm.num_spill_blocks(), 0u);
  // Every block remains reachable and promotes back with correct contents;
  // promotion may cascade further per-shard evictions without losing data.
  for (int p = 0; p < 32; ++p) {
    PartitionPtr got = bm.Get(BlockKey{3, p});
    ASSERT_NE(got, nullptr) << "partition " << p;
    EXPECT_EQ(Rows<int64_t>(*got).front(), p);
  }
  EXPECT_LE(bm.memory_used(), config.memory_budget_bytes);
  bm.Clear();
  EXPECT_EQ(bm.memory_used() + bm.spill_used(), 0u);
  EXPECT_EQ(bm.num_memory_blocks() + bm.num_spill_blocks(), 0u);
}

// --- billing invariants over random synthetic traces ---

class BillingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BillingProperty, CostsAreMonotoneNonNegativeAndBounded) {
  SyntheticTraceParams params;
  params.duration = Hours(24.0 * 20);
  params.spikes_per_hour = 1.0 / 15.0;
  params.seed = GetParam();
  MarketDesc desc;
  desc.name = "p";
  desc.on_demand_price = params.on_demand_price;
  desc.trace = GenerateSyntheticTrace(params);
  SpotMarket market(std::move(desc));
  Rng rng(GetParam() ^ 0x1234ULL);
  for (int trial = 0; trial < 50; ++trial) {
    const double start = rng.Uniform(0.0, 24.0 * 15);
    const double d1 = rng.Uniform(0.0, 20.0);
    const double d2 = d1 + rng.Uniform(0.0, 20.0);
    const double c1 = market.BillServer(start, start + d1, false);
    const double c2 = market.BillServer(start, start + d2, false);
    EXPECT_GE(c1, 0.0);
    EXPECT_LE(c1, c2 + 1e-12);  // longer holds never cost less
    // Hourly billing at held prices <= bid-capped max price * hours.
    EXPECT_LE(c2, 10.0 * params.on_demand_price * (std::ceil(d2) + 1.0));
    // Provider revocation never costs more than user termination.
    EXPECT_LE(market.BillServer(start, start + d1, true), c1 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BillingProperty, ::testing::Values(11, 12, 13, 14, 15));

// --- statistics invariants ---

class StatsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StatsProperty, EcdfIsMonotoneEndingAtOne) {
  Rng rng(GetParam());
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) {
    xs.push_back(rng.Normal(10.0, 3.0));
  }
  const auto ecdf = Ecdf(xs);
  ASSERT_FALSE(ecdf.empty());
  for (size_t i = 1; i < ecdf.size(); ++i) {
    EXPECT_GT(ecdf[i].first, ecdf[i - 1].first);
    EXPECT_GE(ecdf[i].second, ecdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(ecdf.back().second, 1.0);
}

TEST_P(StatsProperty, PercentileIsMonotoneAndBounded) {
  Rng rng(GetParam() ^ 0x77ULL);
  std::vector<double> xs;
  for (int i = 0; i < 151; ++i) {
    xs.push_back(rng.Uniform(-5.0, 5.0));
  }
  double prev = Percentile(xs, 0.0);
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const double v = Percentile(xs, p);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), *std::max_element(xs.begin(), xs.end()));
}

TEST_P(StatsProperty, RunningStatsMatchesBatchFormulas) {
  Rng rng(GetParam() ^ 0x99ULL);
  RunningStats rs;
  std::vector<double> xs;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.Exponential(2.0);
    rs.Add(x);
    xs.push_back(x);
  }
  EXPECT_NEAR(rs.mean(), Mean(xs), 1e-9);
  EXPECT_NEAR(rs.variance(), SampleVariance(xs), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsProperty, ::testing::Values(21, 22, 23, 24, 25, 26));

// --- Daly optimality over a (delta, mttf) grid ---

struct DalyCase {
  double delta;
  double mttf;
};

class DalyProperty : public ::testing::TestWithParam<DalyCase> {};

TEST_P(DalyProperty, TauOptMinimizesTheFactor) {
  const auto [delta, mttf] = GetParam();
  const double opt = OptimalCheckpointInterval(delta, mttf);
  auto factor = [&](double tau) { return 1.0 + delta / tau + tau / (2.0 * mttf); };
  for (double scale = 0.2; scale <= 5.0; scale *= 1.25) {
    EXPECT_LE(factor(opt), factor(opt * scale) + 1e-12)
        << "delta=" << delta << " mttf=" << mttf << " scale=" << scale;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, DalyProperty,
                         ::testing::Values(DalyCase{0.01, 1.0}, DalyCase{0.01, 100.0},
                                           DalyCase{0.05, 20.0}, DalyCase{0.2, 20.0},
                                           DalyCase{0.033, 700.0}, DalyCase{1.0, 50.0}));

// --- RNG sanity over seeds ---

class RngProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngProperty, UniformMomentsAndDeterminism) {
  Rng a(GetParam());
  Rng b(GetParam());
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    const double x = a.NextDouble();
    EXPECT_EQ(x, b.NextDouble());  // same seed, same stream
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    stats.Add(x);
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.01);
}

TEST_P(RngProperty, ExponentialMeanMatches) {
  Rng rng(GetParam() ^ 0xabcULL);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(rng.Exponential(7.0));
  }
  EXPECT_NEAR(stats.mean(), 7.0, 0.35);
}

TEST_P(RngProperty, ForkedStreamsDiffer) {
  Rng rng(GetParam());
  Rng forked = rng.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (rng.NextU64() == forked.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngProperty, ::testing::Values(1, 7, 42, 1234, 99999));

}  // namespace
}  // namespace flint
