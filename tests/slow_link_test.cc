// Network-plane scenarios (ISSUE 10): scripted kSlowLink injections exercise
// the per-node bandwidth model, the hardened shuffle-fetch path (per-fetch
// timeout -> bounded retry -> recompute fallback), link-driven node-health
// quarantine, and the process-wide health ledger. The acceptance case pins
// the paper-style bound: with one of eight nodes serving its shuffle output
// over a 4x-degraded link, job latency stays within 1.6x fault-free and the
// results match the clean run bit for bit.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <numeric>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/node_manager.h"
#include "src/engine/partition.h"
#include "src/engine/shuffle_manager.h"
#include "src/engine/typed_rdd.h"
#include "src/engine/typed_rdd_ops.h"
#include "src/inject/fault_injector.h"
#include "src/market/marketplace.h"
#include "tests/test_util.h"

// Sanitizers stretch compute (but not sleeps) unpredictably, which breaks
// wall-clock ratio assertions; keep correctness and counters, drop timing.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define FLINT_TIMING_ASSERTS 0
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define FLINT_TIMING_ASSERTS 0
#else
#define FLINT_TIMING_ASSERTS 1
#endif
#else
#define FLINT_TIMING_ASSERTS 1
#endif

namespace flint {
namespace {

using testing::EngineHarness;
using testing::EngineHarnessOptions;

// Installs the injector as the context's probe for the guard's lifetime and
// settles all injected activity before the injector or harness dies (same
// contract as straggler_test.cc).
class ProbeGuard {
 public:
  ProbeGuard(FlintContext* ctx, FaultInjector* injector) : ctx_(ctx), injector_(injector) {
    ctx_->SetProbe(injector_);
  }
  ~ProbeGuard() {
    ctx_->SetProbe(nullptr);
    injector_->Drain();
    ctx_->DrainExecutors();
  }

  ProbeGuard(const ProbeGuard&) = delete;
  ProbeGuard& operator=(const ProbeGuard&) = delete;

 private:
  FlintContext* ctx_;
  FaultInjector* injector_;
};

// Slow-link scenarios double as a lock-order regression net: the fetch path
// adds link-EWMA updates and health-ledger write-throughs on top of the
// engine/injector/node-manager locking.
class SlowLinkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Node ids restart at 0 per harness, so the process-wide health ledger
    // would otherwise leak scores from earlier tests into this one.
    NodeHealthLedger::Global().Reset();
    was_enabled_ = SetMutexDebug(true);
    violations_before_ = GetLockOrderViolations().size();
  }
  void TearDown() override {
    const auto violations = GetLockOrderViolations();
    EXPECT_EQ(violations.size(), violations_before_)
        << "lock-order cycle detected: "
        << (violations.empty() ? "" : violations.back().description);
    SetMutexDebug(was_enabled_);
  }

 private:
  bool was_enabled_ = false;
  size_t violations_before_ = 0;
};

SpeculationConfig FastSpec(bool enabled = true) {
  SpeculationConfig spec;
  spec.enabled = enabled;
  spec.quorum = 3;
  spec.spec_multiplier = 3.0;
  spec.min_deadline_seconds = 0.05;
  spec.max_attempts_per_task = 6;
  spec.retry_backoff_seconds = 0.02;
  return spec;
}

double MeasureMs(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

// A wide shuffle whose reduce side must pull a bucket from every map node:
// `pairs` records over `keys` distinct keys, `maps` map and `reduces` reduce
// partitions, sorted so runs compare independent of reduce completion order.
// Timeout-path tests use keys == pairs: map-side combine then cannot shrink
// the buckets, so transfers are big enough to blow a pinned fetch timeout.
std::vector<std::pair<int, int>> WideCounts(FlintContext* ctx, int pairs, int keys, int maps,
                                            int reduces, Status* status_out = nullptr) {
  std::vector<std::pair<int, int>> data;
  data.reserve(static_cast<size_t>(pairs));
  for (int i = 0; i < pairs; ++i) {
    data.emplace_back(i % keys, 1);
  }
  auto counts = ReduceByKey(Parallelize(ctx, data, maps), reduces,
                            [](int a, int b) { return a + b; });
  auto out = counts.Collect();
  if (status_out != nullptr) {
    *status_out = out.status();
  }
  std::vector<std::pair<int, int>> got = out.ok() ? *out : std::vector<std::pair<int, int>>{};
  std::sort(got.begin(), got.end());
  return got;
}

// The acceptance scenario: one of eight nodes serves its shuffle output over
// a 4x-degraded link (the node computes fine, its NIC is sick). Transfers
// are modelled against a 1 MiB/s fleet so a healthy pull takes single-digit
// milliseconds and a degraded pull stays under the fetch-timeout floor: the
// job absorbs the slow link as latency, stays within 1.6x fault-free, and
// produces bit-identical results. Healthy-but-degraded pulls report their
// throughput ratio into node health, and the link-driven samples quarantine
// the victim within a few jobs.
TEST_F(SlowLinkTest, DegradedLinkLatencyBoundedAndQuarantined) {
  constexpr int kPairs = 24000;
  constexpr int kMaps = 8;
  constexpr int kReduces = 8;
  const EngineHarnessOptions base{.num_nodes = 8,
                                  .model_latency = true,
                                  .speculation = FastSpec(true),
                                  .link_bandwidth_bytes_per_s = 1.0 * kMiB};

  // Timing bounds are re-measured up to 3 times: the suite runs under ctest
  // -j alongside CPU-heavy tests, and one contended iteration must not fail
  // the gate. Correctness and counter assertions stay strict every pass.
  double fault_free_ms = 0.0, degraded_ms = 0.0;
  for (int tries = 0; tries < 3; ++tries) {
    std::vector<std::pair<int, int>> reference;
    {
      EngineHarness h{base};
      fault_free_ms =
          MeasureMs([&] { reference = WideCounts(&h.ctx(), kPairs, kPairs, kMaps, kReduces); });
      ASSERT_EQ(reference.size(), static_cast<size_t>(kPairs));
      ASSERT_GT(h.ctx().counters().net_fetches.load(), 0u);
      ASSERT_GT(h.ctx().counters().net_fetch_bytes.load(), 0u);
    }

    EngineHarness h{base};
    Marketplace market({testing::MakeSpikyMarket("m0", 1.0, 0.2, 0.2, 24, 0, 0)},
                       /*on_demand_price=*/1.0, /*seed=*/7);
    NodeManagerConfig nm_cfg;
    nm_cfg.health.ewma_alpha = 0.5;
    nm_cfg.health.min_samples = 2;
    nm_cfg.health.quarantine_threshold = 0.5;
    // Fast ticks + tiny rate: the quarantine persists seconds (so the
    // assertions below see it) while ~NodeManager's timer drain still
    // finishes promptly once the score recovers.
    nm_cfg.health.decay_interval_seconds = 0.02;
    nm_cfg.health.decay_rate = 0.01;
    NodeManager nm(&h.ctx(), &market, /*ft=*/nullptr, nm_cfg);
    const NodeId victim = h.node_ids().front();

    FaultPlan plan;
    plan.events.push_back(SlowLinkAt(EnginePoint::kSchedulerRound, /*after_hits=*/0,
                                     /*node_ordinal=*/0, /*slow_factor=*/4.0,
                                     /*duration_seconds=*/30.0));
    FaultInjector injector(&h.cluster(), plan);
    ProbeGuard guard(&h.ctx(), &injector);

    std::vector<std::pair<int, int>> degraded;
    degraded_ms =
        MeasureMs([&] { degraded = WideCounts(&h.ctx(), kPairs, kPairs, kMaps, kReduces); });
    EXPECT_EQ(degraded, reference);
    EXPECT_TRUE(injector.AllEventsFired());
    EXPECT_GT(injector.GetStats().fetches_slowed, 0u);

    // Link samples alone must sink the victim's health: loop a few more jobs
    // if the first one's samples were not enough.
    for (int job = 0; job < 5 && !nm.Quarantined(victim); ++job) {
      WideCounts(&h.ctx(), kPairs / 4, kPairs / 4, kMaps, kReduces);
    }
    EXPECT_TRUE(nm.Quarantined(victim))
        << "link-driven health samples never quarantined the victim, score "
        << nm.HealthScore(victim);
    EXPECT_LT(nm.HealthScore(victim), 1.0);

    if (degraded_ms <= 1.6 * fault_free_ms) {
      break;  // bound met; no need to burn another iteration
    }
  }

#if FLINT_TIMING_ASSERTS
  EXPECT_LE(degraded_ms, 1.6 * fault_free_ms)
      << "fault-free " << fault_free_ms << " ms, degraded link " << degraded_ms << " ms";
#else
  (void)fault_free_ms;
  (void)degraded_ms;
#endif
}

// The timeout/retry half of the hardened fetch path: a 64x-degraded link
// pushes a pull past the fetch timeout, the consumer abandons it, backs
// off, and the retry succeeds once the fault window lapses. No recompute is
// needed and the result matches the clean run.
TEST_F(SlowLinkTest, FetchTimeoutRetriesThenSucceedsWhenWindowLapses) {
  constexpr int kPairs = 12000;
  constexpr int kMaps = 8;
  constexpr int kReduces = 4;
  SpeculationConfig spec = FastSpec(true);
  // Keep quantiles published (a published stage P95 is what arms the
  // timeout) but raise the deadline floor so millisecond tasks are never
  // speculated — this test isolates the fetch path's own retry, not
  // task-level duplication.
  spec.min_deadline_seconds = 0.5;
  // Pin the timeout at the 30 ms floor: with modelled block/DFS latencies
  // the map stage's P95 is itself tens of milliseconds, and the default
  // 4 x P95 term would swallow the degraded transfer. A healthy ~3 KB pull
  // at 1 MiB/s takes ~3 ms (never trips); the 64x-degraded one takes
  // ~190 ms (always trips).
  const EngineHarnessOptions opts{.num_nodes = 4,
                                  .model_latency = true,
                                  .speculation = spec,
                                  .link_bandwidth_bytes_per_s = 1.0 * kMiB,
                                  .fetch_timeout_multiplier = 0.001,
                                  .fetch_timeout_min_seconds = 0.03,
                                  .fetch_retry_limit = 5,
                                  .fetch_retry_backoff_seconds = 0.02};

  std::vector<std::pair<int, int>> reference;
  {
    EngineHarness clean{opts};
    reference = WideCounts(&clean.ctx(), kPairs, kPairs, kMaps, kReduces);
    ASSERT_EQ(reference.size(), static_cast<size_t>(kPairs));
  }

  EngineHarness h{opts};
  FaultPlan plan;
  // Armed at kShuffleFetch: the window opens on the first pull and that same
  // pull is already degraded (the injector applies the directive after
  // arming). 120 ms outlives the first timed-out pull plus one backoff, and
  // lapses before the retry budget runs out.
  plan.events.push_back(SlowLinkAt(EnginePoint::kShuffleFetch, /*after_hits=*/0,
                                   /*node_ordinal=*/0, /*slow_factor=*/64.0,
                                   /*duration_seconds=*/0.12));
  FaultInjector injector(&h.cluster(), plan);
  ProbeGuard guard(&h.ctx(), &injector);

  Status status;
  std::vector<std::pair<int, int>> got = WideCounts(&h.ctx(), kPairs, kPairs, kMaps, kReduces, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(got, reference);
  EXPECT_TRUE(injector.AllEventsFired());
  EXPECT_GE(injector.GetStats().fetches_slowed, 1u);
  EXPECT_GE(h.ctx().counters().net_fetches_slow.load(), 1u);
  EXPECT_GE(h.ctx().counters().net_fetch_retries.load(), 1u);
  EXPECT_EQ(h.ctx().counters().net_fetch_recomputes.load(), 0u);
}

// The recompute half: the slow-link window never lapses, the retry budget
// (one retry) exhausts, and the consumer drops the victim's outputs to force
// the scheduler's kDataLoss recompute fallback. Timed-out pulls classify the
// producer link-slow (zero health samples), the node manager quarantines it,
// and the recomputed map outputs land on healthy nodes so the job completes
// with clean-run results.
TEST_F(SlowLinkTest, PersistentSlowLinkFallsBackToRecompute) {
  constexpr int kPairs = 12000;
  constexpr int kMaps = 4;
  constexpr int kReduces = 4;
  SpeculationConfig spec = FastSpec(true);
  spec.min_deadline_seconds = 0.5;  // as above: no task-level speculation
  const EngineHarnessOptions opts{.num_nodes = 4,
                                  .model_latency = true,
                                  .speculation = spec,
                                  .link_bandwidth_bytes_per_s = 1.0 * kMiB,
                                  .fetch_timeout_multiplier = 0.001,  // as above: 30 ms pin
                                  .fetch_timeout_min_seconds = 0.03,
                                  .fetch_retry_limit = 1,
                                  .fetch_retry_backoff_seconds = 0.01};

  std::vector<std::pair<int, int>> reference;
  {
    EngineHarness clean{opts};
    reference = WideCounts(&clean.ctx(), kPairs, kPairs, kMaps, kReduces);
    ASSERT_EQ(reference.size(), static_cast<size_t>(kPairs));
  }

  EngineHarness h{opts};
  Marketplace market({testing::MakeSpikyMarket("m0", 1.0, 0.2, 0.2, 24, 0, 0)},
                     /*on_demand_price=*/1.0, /*seed=*/7);
  NodeManagerConfig nm_cfg;
  nm_cfg.health.ewma_alpha = 0.5;
  nm_cfg.health.min_samples = 2;
  nm_cfg.health.quarantine_threshold = 0.5;
  nm_cfg.health.decay_interval_seconds = 0.02;  // see the acceptance test
  nm_cfg.health.decay_rate = 0.01;
  NodeManager nm(&h.ctx(), &market, /*ft=*/nullptr, nm_cfg);
  const NodeId victim = h.node_ids().front();

  FaultPlan plan;
  plan.events.push_back(SlowLinkAt(EnginePoint::kSchedulerRound, /*after_hits=*/0,
                                   /*node_ordinal=*/0, /*slow_factor=*/64.0,
                                   /*duration_seconds=*/30.0));
  FaultInjector injector(&h.cluster(), plan);
  Status status;
  std::vector<std::pair<int, int>> got;
  {
    ProbeGuard guard(&h.ctx(), &injector);
    got = WideCounts(&h.ctx(), kPairs, kPairs, kMaps, kReduces, &status);
  }
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(got, reference);
  EXPECT_GE(h.ctx().counters().net_fetches_slow.load(), 2u);
  EXPECT_GE(h.ctx().counters().net_fetch_recomputes.load(), 1u);
  EXPECT_GE(injector.GetStats().fetches_slowed, 2u);
  EXPECT_TRUE(nm.Quarantined(victim))
      << "timed-out pulls never quarantined the slow producer, score "
      << nm.HealthScore(victim);
}

// Composition: the slow link stays correct when a whole-cluster revocation
// storm lands mid shuffle-map stage on top of it. The stage re-dispatches
// onto replacements (whose links are healthy — the window pins the original
// victim) and the result matches a clean cluster's bit for bit.
TEST_F(SlowLinkTest, SlowLinkComposesWithRevocationStorm) {
  auto workload = [](FlintContext* ctx, Status* status_out = nullptr) {
    return WideCounts(ctx, 400, /*keys=*/64, /*maps=*/8, /*reduces=*/4, status_out);
  };

  std::vector<std::pair<int, int>> reference;
  {
    EngineHarness clean;
    reference = workload(&clean.ctx());
    ASSERT_EQ(reference.size(), 64u);
  }

  EngineHarness h{EngineHarnessOptions{.speculation = FastSpec(true)}};
  FaultPlan plan;
  plan.events.push_back(SlowLinkAt(EnginePoint::kSchedulerRound, /*after_hits=*/0,
                                   /*node_ordinal=*/0, /*slow_factor=*/4.0,
                                   /*duration_seconds=*/30.0));
  plan.events.push_back(RevokeAllAt(EnginePoint::kShuffleMapTaskRun, /*after_hits=*/2,
                                    /*with_warning=*/false, /*replacements=*/4,
                                    /*delay_seconds=*/0.05));
  FaultInjector injector(&h.cluster(), plan);
  ProbeGuard guard(&h.ctx(), &injector);

  Status status;
  std::vector<std::pair<int, int>> got = workload(&h.ctx(), &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(got, reference);
  EXPECT_TRUE(injector.AllEventsFired());
}

// Replayability across the shuffle configuration grid: the same plan + seed
// must make identical injection decisions and produce identical output on
// two runs of every (shuffle_fusion, shuffle_merge_reduce) cell, and all
// four cells must agree on the (sorted) result. Injector stats are compared
// field by field EXCEPT points_observed: the kSchedulerRound probe fires
// once per scheduler retry round, and the number of rounds a stage needs is
// timing-dependent even when every injection decision is identical.
TEST_F(SlowLinkTest, SeedDeterminismAcrossFusionGrid) {
  constexpr int kPairs = 2000;
  constexpr int kMaps = 8;
  constexpr int kReduces = 4;

  auto run_cell = [&](bool fusion, bool merge_reduce, FaultInjector::Stats* stats_out) {
    EngineHarness h{EngineHarnessOptions{.shuffle_fusion = fusion,
                                         .shuffle_merge_reduce = merge_reduce}};
    FaultPlan plan;  // seed = 42 (FaultPlan default)
    plan.events.push_back(SlowLinkAt(EnginePoint::kSchedulerRound, /*after_hits=*/0,
                                     /*node_ordinal=*/0, /*slow_factor=*/4.0,
                                     /*duration_seconds=*/30.0));
    FaultInjector injector(&h.cluster(), plan);
    Status status;
    std::vector<std::pair<int, int>> got;
    {
      ProbeGuard guard(&h.ctx(), &injector);
      got = WideCounts(&h.ctx(), kPairs, /*keys=*/64, kMaps, kReduces, &status);
    }
    EXPECT_TRUE(status.ok()) << status.ToString();
    if (stats_out != nullptr) {
      *stats_out = injector.GetStats();
    }
    return got;
  };

  std::vector<std::pair<int, int>> grid_reference;
  for (bool fusion : {false, true}) {
    for (bool merge_reduce : {false, true}) {
      FaultInjector::Stats a{}, b{};
      std::vector<std::pair<int, int>> first = run_cell(fusion, merge_reduce, &a);
      std::vector<std::pair<int, int>> second = run_cell(fusion, merge_reduce, &b);
      EXPECT_EQ(first, second) << "fusion=" << fusion << " merge=" << merge_reduce;
      EXPECT_EQ(a.events_fired, b.events_fired);
      EXPECT_EQ(a.nodes_revoked, b.nodes_revoked);
      EXPECT_EQ(a.replacements_scheduled, b.replacements_scheduled);
      EXPECT_EQ(a.writes_failed_injected, b.writes_failed_injected);
      EXPECT_EQ(a.reads_failed_injected, b.reads_failed_injected);
      EXPECT_EQ(a.objects_corrupted, b.objects_corrupted);
      EXPECT_EQ(a.ops_slowed, b.ops_slowed);
      EXPECT_EQ(a.tasks_slowed, b.tasks_slowed);
      EXPECT_EQ(a.tasks_hung_injected, b.tasks_hung_injected);
      EXPECT_EQ(a.tasks_failed_injected, b.tasks_failed_injected);
      EXPECT_EQ(a.fetches_slowed, b.fetches_slowed)
          << "fusion=" << fusion << " merge=" << merge_reduce;
      EXPECT_GT(a.fetches_slowed, 0u) << "fusion=" << fusion << " merge=" << merge_reduce;
      if (grid_reference.empty()) {
        grid_reference = first;
      } else {
        EXPECT_EQ(first, grid_reference)
            << "fusion=" << fusion << " merge=" << merge_reduce;
      }
    }
  }
  ASSERT_EQ(grid_reference.size(), 64u);
}

// The health ledger must outlive any one NodeManager: a node quarantined for
// flaking stays suspect after it is revoked and its manager torn down, so a
// rebuilt manager re-seeing the same node id starts from the parked history
// instead of a perfect score. Pre-ledger, revocation (and manager teardown)
// erased the history.
TEST_F(SlowLinkTest, QuarantinePersistsAcrossNodeManagerRebuilds) {
  EngineHarness h{EngineHarnessOptions{.speculation = FastSpec(true)}};
  Marketplace market({testing::MakeSpikyMarket("m0", 1.0, 0.2, 0.2, 24, 0, 0)},
                     /*on_demand_price=*/1.0, /*seed=*/7);
  NodeManagerConfig nm_cfg;
  nm_cfg.health.min_samples = 3;
  nm_cfg.health.decay_interval_seconds = 0.02;  // see the acceptance test
  nm_cfg.health.decay_rate = 0.01;
  const NodeId victim = h.node_ids().front();

  {
    NodeManager nm_a(&h.ctx(), &market, /*ft=*/nullptr, nm_cfg);
    FaultPlan plan;
    plan.events.push_back(FlakyNodeAt(EnginePoint::kTaskRun, /*after_hits=*/0,
                                      /*node_ordinal=*/0, /*probability=*/1.0,
                                      /*duration_seconds=*/0.25));
    FaultInjector injector(&h.cluster(), plan);
    {
      ProbeGuard guard(&h.ctx(), &injector);
      std::vector<int> data(16);
      std::iota(data.begin(), data.end(), 0);
      auto out = Parallelize(&h.ctx(), data, 16)
                     .Map([](const int& x) {
                       std::this_thread::sleep_for(std::chrono::milliseconds(5));
                       return x + 1;
                     })
                     .Collect();
      ASSERT_TRUE(out.ok()) << out.status().ToString();
      EXPECT_GT(injector.GetStats().tasks_failed_injected, 0u);
    }
    ASSERT_TRUE(nm_a.Quarantined(victim)) << "score " << nm_a.HealthScore(victim);

    // Revocation parks (not erases) the final health in the ledger and ends
    // the victim's decay chain, so nm_a tears down promptly.
    h.cluster().Revoke({victim}, /*with_warning=*/false);
    h.cluster().DrainEvents();
    NodeHealth parked;
    ASSERT_TRUE(NodeHealthLedger::Global().Lookup(victim, &parked));
    EXPECT_TRUE(parked.quarantined);
    EXPECT_LT(parked.score, nm_cfg.health.quarantine_threshold);
  }  // nm_a destroyed; only the ledger remembers the victim now

  // A rebuilt manager has no local samples for the victim, but its accessors
  // fall back to the ledger: the node is still quarantined, still suspect.
  NodeManager nm_b(&h.ctx(), &market, /*ft=*/nullptr, nm_cfg);
  EXPECT_TRUE(nm_b.Quarantined(victim));
  EXPECT_LT(nm_b.HealthScore(victim), nm_cfg.health.quarantine_threshold);

  // Forgetting the node restores the clean-slate default.
  NodeHealthLedger::Global().Forget(victim);
  EXPECT_FALSE(nm_b.Quarantined(victim));
  EXPECT_EQ(nm_b.HealthScore(victim), 1.0);
}

// Concurrency hammer over the shuffle map-output tracker: registrations,
// detailed fetches, node revocations, and targeted output drops race while
// readers poll the aggregate views. Every kDataLoss the fetchers observe
// must be accounted in FetchWaits() — no lost increments, no phantom waits.
// (Runs under TSan via the sanitizer test filter.)
TEST(ShuffleConcTest, ConcurrentFetchDropRevokeAccounting) {
  constexpr int kShuffle = 1;
  constexpr int kNumMaps = 8;
  constexpr int kNumReduces = 4;
  constexpr int kRounds = 200;

  ShuffleManager sm;
  sm.RegisterShuffle(kShuffle, kNumMaps, kNumReduces);
  auto make_buckets = [] {
    std::vector<PartitionPtr> buckets;
    for (int r = 0; r < kNumReduces; ++r) {
      buckets.push_back(MakePartition(std::vector<int>{r, r + 1, r + 2}));
    }
    return buckets;
  };
  auto register_all = [&] {
    for (int m = 0; m < kNumMaps; ++m) {
      sm.RegisterMapOutput(kShuffle, m, /*node=*/m % 4, make_buckets());
    }
  };
  register_all();

  std::atomic<uint64_t> data_losses{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;

  // Fetchers: alternate plain and detailed fetches over valid reduce
  // indices, tallying every kDataLoss (each one bumped fetch_waits_).
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRounds; ++i) {
        const int reduce = (t + i) % kNumReduces;
        if ((i & 1) == 0) {
          auto r = sm.Fetch(kShuffle, reduce);
          if (!r.ok() && r.status().code() == StatusCode::kDataLoss) {
            data_losses.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          auto r = sm.FetchDetailed(kShuffle, reduce);
          if (!r.ok() && r.status().code() == StatusCode::kDataLoss) {
            data_losses.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  // Chaos: revoke / drop a node's outputs, then re-register everything so
  // fetchers keep seeing both complete and torn states.
  threads.emplace_back([&] {
    for (int i = 0; i < kRounds / 4; ++i) {
      if ((i & 1) == 0) {
        sm.OnNodeRevoked(/*node=*/i % 4);
      } else {
        sm.DropNodeOutputs(kShuffle, /*node=*/i % 4);
      }
      register_all();
    }
  });
  // Readers: aggregate views must never crash or deadlock mid-race.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)sm.MissingMaps(kShuffle);
      (void)sm.IsComplete(kShuffle);
      (void)sm.TotalBytes();
      (void)sm.RecentShuffleBytes(2);
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });

  for (size_t t = 0; t + 1 < threads.size(); ++t) {
    threads[t].join();
  }
  stop.store(true, std::memory_order_release);
  threads.back().join();

  EXPECT_EQ(sm.FetchWaits(), data_losses.load());
  // Settle to a complete state and prove the tracker recovered.
  register_all();
  EXPECT_TRUE(sm.IsComplete(kShuffle));
  EXPECT_TRUE(sm.MissingMaps(kShuffle).empty());
  auto final_fetch = sm.FetchDetailed(kShuffle, 0);
  ASSERT_TRUE(final_fetch.ok());
  EXPECT_EQ(final_fetch->size(), static_cast<size_t>(kNumMaps));
}

// The market-selection fold: observed link throughput reported through
// RecordObservedThroughput penalizes a market's expected unit cost, flipping
// a near-tie, and the EWMA recovers as healthy samples arrive.
TEST(SelectorLinkTest, ObservedThroughputPenalizesMarket) {
  std::vector<MarketDesc> markets;
  markets.push_back(testing::MakeSpikyMarket("a", 1.0, 0.10, 0.10, 24 * 40, 0, 0));
  markets.push_back(testing::MakeSpikyMarket("b", 1.0, 0.11, 0.11, 24 * 40, 0, 0));
  Marketplace mp(std::move(markets), /*on_demand_price=*/1.0, /*seed=*/1);
  ServerSelector selector(&mp, SelectionConfig{});
  JobProfile job;
  job.delta_hours = Minutes(1);
  job.rd_hours = Minutes(2);

  auto cost_of = [&](MarketId id) {
    auto evs = selector.EvaluateMarkets(Hours(24.0 * 7), job);
    for (const auto& ev : evs) {
      if (ev.id == id) {
        return ev.expected_unit_cost;
      }
    }
    ADD_FAILURE() << "market " << id << " missing from evaluation";
    return 0.0;
  };

  // Pristine: the marginally cheaper market wins.
  EXPECT_LT(cost_of(0), cost_of(1));
  EXPECT_DOUBLE_EQ(selector.ObservedThroughput(0), 1.0);

  // Market 0's nodes serve shuffle pulls at a quarter speed: its effective
  // cost must now exceed market 1's.
  for (int i = 0; i < 8; ++i) {
    selector.RecordObservedThroughput(0, 0.25);
  }
  EXPECT_LT(selector.ObservedThroughput(0), 0.35);
  EXPECT_GT(cost_of(0), cost_of(1));

  // Healthy samples fold the EWMA back toward 1.0 and the order recovers.
  for (int i = 0; i < 32; ++i) {
    selector.RecordObservedThroughput(0, 1.0);
  }
  EXPECT_GT(selector.ObservedThroughput(0), 0.95);
  EXPECT_LT(cost_of(0), cost_of(1));
}

}  // namespace
}  // namespace flint
