// Tests for flint::Mutex: the runtime lock-order (deadlock-potential)
// detector, the scoped guards, CondVar wiring, and the per-lock stats
// counters. The ABBA test is deterministic: the two threads run
// *sequentially* (joined one after the other), so the inconsistent order is
// recorded without any real deadlock risk.

#include "src/common/mutex.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/thread_annotations.h"

namespace flint {
namespace {

class MutexDetectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = MutexDebugEnabled();
    SetMutexDebug(true);
    ResetLockOrderTrackingForTest();
  }
  void TearDown() override {
    ResetLockOrderTrackingForTest();
    SetMutexDebug(was_enabled_);
  }

  bool was_enabled_ = false;
};

bool AnyViolationMentions(const std::vector<LockOrderViolation>& violations,
                          const std::string& a, const std::string& b) {
  for (const auto& v : violations) {
    const bool mentions_a = v.description.find(a) != std::string::npos;
    const bool mentions_b = v.description.find(b) != std::string::npos;
    if (mentions_a && mentions_b) {
      return true;
    }
  }
  return false;
}

TEST_F(MutexDetectorTest, AbbaAcrossTwoThreadsIsReported) {
  Mutex a{"AbbaTest::a"};
  Mutex b{"AbbaTest::b"};

  // Thread 1 establishes the order a -> b. Joined before thread 2 starts, so
  // the test cannot actually deadlock; the detector works off the recorded
  // edge graph, not off a live contention.
  std::thread t1([&] {
    MutexLock la(&a);
    MutexLock lb(&b);
  });
  t1.join();

  std::thread t2([&] {
    MutexLock lb(&b);
    MutexLock la(&a);  // closes the cycle: b -> a while a -> b exists
  });
  t2.join();

  const auto violations = GetLockOrderViolations();
  ASSERT_FALSE(violations.empty()) << "ABBA order went undetected";
  EXPECT_TRUE(AnyViolationMentions(violations, "AbbaTest::a", "AbbaTest::b"))
      << "report does not name both locks: " << violations[0].description;
  // The report carries both acquisition contexts (what was held where).
  EXPECT_NE(violations[0].description.find("holding"), std::string::npos)
      << violations[0].description;
  EXPECT_NE(violations[0].description.find("reverse order"), std::string::npos)
      << violations[0].description;
}

TEST_F(MutexDetectorTest, ConsistentOrderIsClean) {
  Mutex a{"ConsistentTest::a"};
  Mutex b{"ConsistentTest::b"};

  for (int round = 0; round < 3; ++round) {
    std::thread t([&] {
      MutexLock la(&a);
      MutexLock lb(&b);
    });
    t.join();
    {
      MutexLock la(&a);
      MutexLock lb(&b);
    }
  }
  EXPECT_TRUE(GetLockOrderViolations().empty());
}

TEST_F(MutexDetectorTest, CycleThroughThreeLocksIsReported) {
  Mutex a{"ChainTest::a"};
  Mutex b{"ChainTest::b"};
  Mutex c{"ChainTest::c"};

  {
    MutexLock la(&a);
    MutexLock lb(&b);
  }
  {
    MutexLock lb(&b);
    MutexLock lc(&c);
  }
  ASSERT_TRUE(GetLockOrderViolations().empty());
  {
    MutexLock lc(&c);
    MutexLock la(&a);  // a -> b -> c -> a
  }
  const auto violations = GetLockOrderViolations();
  ASSERT_FALSE(violations.empty());
  EXPECT_TRUE(AnyViolationMentions(violations, "ChainTest::c", "ChainTest::a"));
}

TEST_F(MutexDetectorTest, ReentrantAcquisitionIsReported) {
  // flint::Mutex is non-reentrant; a self-deadlock would hang, so exercise
  // the detector's re-entrancy check through TryLock (which still runs
  // CheckAcquire but cannot block).
  Mutex a{"ReentrantTest::a"};
  a.Lock();
  EXPECT_FALSE(a.TryLock());
  const auto violations = GetLockOrderViolations();
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].description.find("ReentrantTest::a"), std::string::npos);
  a.Unlock();
}

TEST_F(MutexDetectorTest, DuplicatePairReportedOnce) {
  Mutex a{"DupTest::a"};
  Mutex b{"DupTest::b"};
  for (int i = 0; i < 4; ++i) {
    {
      MutexLock la(&a);
      MutexLock lb(&b);
    }
    {
      MutexLock lb(&b);
      MutexLock la(&a);
    }
  }
  EXPECT_EQ(GetLockOrderViolations().size(), 1u);
}

TEST_F(MutexDetectorTest, DestroyedMutexDropsFromGraph) {
  Mutex a{"LifetimeTest::a"};
  {
    Mutex temp{"LifetimeTest::temp"};
    MutexLock la(&a);
    MutexLock lt(&temp);
  }
  // temp is gone; a fresh lock (possibly reusing the freed address) must not
  // inherit temp's edges. Reverse order against the *new* lock is a genuine
  // new pair and gets its own verdict — but no stale-edge false positive
  // from the destroyed node.
  Mutex fresh{"LifetimeTest::fresh"};
  {
    MutexLock lf(&fresh);
    MutexLock la(&a);
  }
  {
    MutexLock lf(&fresh);
    MutexLock la(&a);
  }
  EXPECT_TRUE(AnyViolationMentions(GetLockOrderViolations(), "LifetimeTest::fresh",
                                   "LifetimeTest::temp") == false);
}

TEST_F(MutexDetectorTest, ReaderLocksParticipateInOrdering) {
  Mutex a{"ReaderTest::a"};
  Mutex b{"ReaderTest::b"};
  {
    ReaderMutexLock la(&a);
    MutexLock lb(&b);
  }
  {
    MutexLock lb(&b);
    ReaderMutexLock la(&a);
  }
  EXPECT_FALSE(GetLockOrderViolations().empty())
      << "reader/writer ABBA should still be flagged";
}

// Enables lock debugging for one test body, restoring the prior setting.
class ScopedMutexDebug {
 public:
  ScopedMutexDebug() : was_(SetMutexDebug(true)) {}
  ~ScopedMutexDebug() { SetMutexDebug(was_); }

 private:
  const bool was_;
};

TEST(MutexStatsTest, CountersAccumulate) {
  ScopedMutexDebug debug;
  Mutex m{"StatsTest::m"};
  for (int i = 0; i < 10; ++i) {
    MutexLock lock(&m);
  }
  bool found = false;
  for (const auto& stat : GetMutexStats()) {
    if (stat.name == std::string("StatsTest::m")) {
      found = true;
      EXPECT_GE(stat.acquisitions, 10u);
      EXPECT_GE(stat.max_hold_nanos, 0u);
    }
  }
  EXPECT_TRUE(found) << "StatsTest::m missing from GetMutexStats()";
  // Large row cap: other live locks in this process may out-rank m on hold
  // time, and the table is sorted by it.
  const std::string table = FormatMutexStats(/*max_rows=*/10000);
  EXPECT_NE(table.find("StatsTest::m"), std::string::npos);
}

TEST(MutexStatsTest, ContentionIsCounted) {
  ScopedMutexDebug debug;
  Mutex m{"ContentionTest::m"};
  std::atomic<bool> locked{false};
  std::atomic<bool> release{false};
  std::thread holder([&] {
    MutexLock lock(&m);
    locked.store(true);
    while (!release.load()) {
      std::this_thread::yield();
    }
  });
  while (!locked.load()) {
    std::this_thread::yield();
  }
  std::thread contender([&] {
    MutexLock lock(&m);  // must block: holder owns m
  });
  // Give the contender time to hit the slow path, then release.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.store(true);
  holder.join();
  contender.join();

  for (const auto& stat : GetMutexStats()) {
    if (stat.name == std::string("ContentionTest::m")) {
      EXPECT_GE(stat.contentions, 1u);
      return;
    }
  }
  FAIL() << "ContentionTest::m missing from GetMutexStats()";
}

TEST(MutexCondVarTest, WaitWakesOnNotify) {
  Mutex m{"CondVarTest::m"};
  CondVar cv;
  bool ready = false;
  std::thread waker([&] {
    MutexLock lock(&m);
    ready = true;
    cv.NotifyAll();
  });
  {
    MutexLock lock(&m);
    while (!ready) {
      cv.Wait(m);
    }
  }
  waker.join();
}

TEST(MutexCondVarTest, WaitForTimesOut) {
  Mutex m{"CondVarTimeoutTest::m"};
  CondVar cv;
  MutexLock lock(&m);
  // Nobody notifies: must report timeout.
  EXPECT_EQ(cv.WaitFor(m, WallDuration(0.005)), std::cv_status::timeout);
}

TEST(MutexGuardTest, EarlyReleaseIsBalanced) {
  Mutex m{"GuardTest::m"};
  MutexLock lock(&m);
  lock.Release();
  EXPECT_TRUE(m.TryLock());  // released above, so this succeeds
  m.Unlock();
}

}  // namespace
}  // namespace flint
