// Tests for the unified observability layer (ISSUE 6): the metrics registry
// under thread contention, the tracer's bounded ring semantics, Chrome
// trace_event JSON validity (checked with a real parser, not substring
// matching), and an end-to-end storm run whose trace must agree event-for-
// event with the engine's own counters.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <map>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "src/checkpoint/ft_manager.h"
#include "src/engine/typed_rdd.h"
#include "src/engine/typed_rdd_ops.h"
#include "src/inject/fault_injector.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "tests/test_util.h"

namespace flint {
namespace {

using testing::EngineHarness;
using testing::EngineHarnessOptions;

// ---------------------------------------------------------------------------
// A minimal JSON value + recursive-descent parser, enough to *actually parse*
// the tracer's export instead of grepping for substrings. Strict on
// structure: unexpected characters fail the whole parse.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) {
      return false;
    }
    SkipWs();
    return pos_ == text_.size();  // trailing garbage is a failure
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) {
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') {
      return ParseObject(out);
    }
    if (c == '[') {
      return ParseArray(out);
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::Kind::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    return ParseNumber(out);
  }
  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    if (!Consume('{')) {
      return false;
    }
    SkipWs();
    if (Consume('}')) {
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWs();
      if (!Consume(':')) {
        return false;
      }
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->object.emplace(std::move(key), std::move(value));
      SkipWs();
      if (Consume(',')) {
        continue;
      }
      return Consume('}');
    }
  }
  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    if (!Consume('[')) {
      return false;
    }
    SkipWs();
    if (Consume(']')) {
      return true;
    }
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->array.push_back(std::move(value));
      SkipWs();
      if (Consume(',')) {
        continue;
      }
      return Consume(']');
    }
  }
  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return false;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // unescaped control character: invalid JSON
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        return false;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return false;
          }
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return false;
            }
          }
          out->push_back('?');  // fidelity not needed, validity is
          pos_ += 4;
          break;
        }
        default:
          return false;
      }
    }
    return false;
  }
  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return false;
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Registry instruments under contention.

TEST(ObsMetricsTest, CounterSumsStripesAcrossEightThreads) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter.Increment();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(ObsMetricsTest, HistogramBucketsAndSumSurviveContention) {
  // Bounds 1, 2, 4: observing v in {0.5, 1.5, 3, 100} lands one observation
  // in each bucket (including overflow) per round.
  Histogram hist({1.0, 2.0, 4.0});
  constexpr int kThreads = 8;
  constexpr int kRounds = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist] {
      for (int i = 0; i < kRounds; ++i) {
        hist.Observe(0.5);
        hist.Observe(1.5);
        hist.Observe(3.0);
        hist.Observe(100.0);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  const uint64_t per_bucket = static_cast<uint64_t>(kThreads) * kRounds;
  const std::vector<uint64_t> counts = hist.Counts();
  ASSERT_EQ(counts.size(), 4u);
  for (const uint64_t c : counts) {
    EXPECT_EQ(c, per_bucket);
  }
  EXPECT_EQ(hist.TotalCount(), 4 * per_bucket);
  EXPECT_NEAR(hist.Sum(), static_cast<double>(per_bucket) * (0.5 + 1.5 + 3.0 + 100.0),
              1e-6 * static_cast<double>(per_bucket));
}

TEST(ObsMetricsTest, RegistryReturnsStablePointersAndResetKeepsThem) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("flint_test_counter");
  Counter* b = registry.GetCounter("flint_test_counter");
  EXPECT_EQ(a, b);
  a->Increment(5);
  registry.ResetForTest();
  // Pointers stay valid after reset; values are zeroed.
  EXPECT_EQ(b->Value(), 0u);
  b->Increment();
  EXPECT_EQ(registry.Snapshot().Value("flint_test_counter"), 1.0);
}

TEST(ObsMetricsTest, ScopedCollectorUnhooksOnDestruction) {
  MetricsRegistry registry;
  {
    ScopedCollector collector(&registry, [](std::vector<MetricSample>& out) {
      out.push_back({"flint_test_collected", MetricType::kGauge, 42.0});
    });
    const MetricsSnapshot snap = registry.Snapshot();
    EXPECT_TRUE(snap.Has("flint_test_collected"));
    EXPECT_DOUBLE_EQ(snap.Value("flint_test_collected"), 42.0);
  }
  EXPECT_FALSE(registry.Snapshot().Has("flint_test_collected"));
}

TEST(ObsMetricsTest, PrometheusTextHasTypedFamiliesAndCumulativeBuckets) {
  MetricsRegistry registry;
  registry.GetCounter("flint_test_events")->Increment(3);
  registry.GetGauge("flint_test_level")->Set(1.5);
  Histogram* hist = registry.GetHistogram("flint_test_latency", {0.1, 1.0});
  hist->Observe(0.05);
  hist->Observe(0.5);
  hist->Observe(10.0);
  const std::string text = registry.FormatPrometheusText();
  EXPECT_NE(text.find("# TYPE flint_test_events counter"), std::string::npos);
  EXPECT_NE(text.find("flint_test_events 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE flint_test_level gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE flint_test_latency histogram"), std::string::npos);
  // Buckets are cumulative; +Inf carries the total.
  EXPECT_NE(text.find("flint_test_latency_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("flint_test_latency_count 3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracer ring semantics.

TEST(ObsTraceTest, DisabledTracerRecordsNothing) {
  Tracer tracer(64);
  tracer.RecordInstant("ignored", "test");
  const Tracer::Stats stats = tracer.GetStats();
  EXPECT_EQ(stats.recorded, 0u);
  EXPECT_EQ(stats.buffered, 0u);
}

TEST(ObsTraceTest, RingWrapsAndCountsDropped) {
  // 16 total slots across 8 stripes = 2 per stripe; a single thread maps to
  // one stripe, so at most 2 of its events are retained.
  Tracer tracer(16);
  tracer.SetEnabled(true);
  constexpr uint64_t kEvents = 100;
  for (uint64_t i = 0; i < kEvents; ++i) {
    tracer.RecordInstant("evt", "test", {{"i", static_cast<double>(i)}});
  }
  const Tracer::Stats stats = tracer.GetStats();
  EXPECT_EQ(stats.recorded, kEvents);
  EXPECT_LE(stats.buffered, 16u);
  EXPECT_EQ(stats.dropped, stats.recorded - stats.buffered);
  // The retained events are the newest ones, in order.
  const std::vector<TraceEvent> events = tracer.Drain();
  ASSERT_EQ(events.size(), stats.buffered);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].seq, events[i - 1].seq);
  }
  EXPECT_EQ(events.back().args[0].value, static_cast<double>(kEvents - 1));
}

TEST(ObsTraceTest, ConcurrentRecordingKeepsEveryEventWithCapacityToSpare) {
  Tracer tracer(1 << 14);
  tracer.SetEnabled(true);
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        tracer.RecordInstant("concurrent", "test", {{"i", static_cast<double>(i)}});
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  const Tracer::Stats stats = tracer.GetStats();
  EXPECT_EQ(stats.recorded, kThreads * kPerThread);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(tracer.CountEvents("concurrent"), kThreads * kPerThread);
}

TEST(ObsTraceTest, ExportJsonParsesWithHostileDetailStrings) {
  Tracer tracer(256);
  tracer.SetEnabled(true);
  tracer.RecordInstant("instant", "test", {{"x", 1.5}, {"nan", std::nan("")}},
                       "quotes \" backslash \\ newline \n tab \t control \x01 end");
  const uint64_t start = tracer.NowNs();
  tracer.RecordComplete("span", "test", start, 1000, {{"y", 2.0}});
  const std::string json = tracer.ExportJson();

  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json;
  ASSERT_TRUE(root.is_object());
  const JsonValue* display = root.Find("displayTimeUnit");
  ASSERT_NE(display, nullptr);
  EXPECT_EQ(display->str, "ms");
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 2u);

  for (const JsonValue& event : events->array) {
    ASSERT_TRUE(event.is_object());
    ASSERT_NE(event.Find("name"), nullptr);
    ASSERT_NE(event.Find("ph"), nullptr);
    ASSERT_NE(event.Find("ts"), nullptr);
    ASSERT_NE(event.Find("pid"), nullptr);
    ASSERT_NE(event.Find("tid"), nullptr);
  }
  const JsonValue& instant = events->array[0];
  EXPECT_EQ(instant.Find("name")->str, "instant");
  EXPECT_EQ(instant.Find("ph")->str, "i");
  const JsonValue* args = instant.Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_DOUBLE_EQ(args->Find("x")->number, 1.5);
  // Non-finite numeric args must be stringified, not emitted as bare NaN
  // (which is invalid JSON) — the parse above would have failed otherwise.
  EXPECT_EQ(args->Find("nan")->kind, JsonValue::Kind::kString);
  ASSERT_NE(args->Find("detail"), nullptr);
  const JsonValue& span = events->array[1];
  EXPECT_EQ(span.Find("ph")->str, "X");
  ASSERT_NE(span.Find("dur"), nullptr);
  EXPECT_GT(span.Find("dur")->number, 0.0);
}

TEST(ObsTraceTest, TraceSpanRecordsCompleteEventWithArgs) {
  Tracer& tracer = Tracer::Global();
  tracer.Configure(ObsConfig{.tracing = true, .trace_capacity = 1024});
  {
    TraceSpan span("obs_test_span", "test");
    span.AddArg("k", 7.0);
    span.SetDetail("hello");
  }
  EXPECT_EQ(tracer.CountEvents("obs_test_span"), 1u);
  const std::vector<TraceEvent> events = tracer.Drain();
  const TraceEvent* found = nullptr;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == "obs_test_span") {
      found = &e;
    }
  }
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->phase, TracePhase::kComplete);
  ASSERT_EQ(found->num_args, 1);
  EXPECT_DOUBLE_EQ(found->args[0].value, 7.0);
  EXPECT_EQ(found->detail, "hello");
  tracer.Configure(ObsConfig{});  // disable + clear for any later test
}

// ---------------------------------------------------------------------------
// End-to-end: a storm run's trace must agree with the engine's counters.

class ObsEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().ResetForTest();
    Tracer::Global().Configure(ObsConfig{.tracing = true, .trace_capacity = 1 << 16});
  }
  void TearDown() override { Tracer::Global().Configure(ObsConfig{}); }
};

// Installs the injector as the context's probe for the guard's lifetime (same
// contract as fault_injection_test.cc).
class ProbeGuard {
 public:
  ProbeGuard(FlintContext* ctx, FaultInjector* injector) : ctx_(ctx), injector_(injector) {
    ctx_->SetProbe(injector_);
  }
  ~ProbeGuard() {
    ctx_->SetProbe(nullptr);
    injector_->Drain();
    ctx_->DrainExecutors();
  }
  ProbeGuard(const ProbeGuard&) = delete;
  ProbeGuard& operator=(const ProbeGuard&) = delete;

 private:
  FlintContext* ctx_;
  FaultInjector* injector_;
};

std::vector<std::pair<int, int>> KeyedRecords(int records, int keys) {
  std::vector<std::pair<int, int>> data;
  data.reserve(static_cast<size_t>(records));
  for (int i = 0; i < records; ++i) {
    data.emplace_back(i % keys, 1);
  }
  return data;
}

TEST_F(ObsEndToEndTest, StormRunTraceMatchesEngineCounters) {
  uint64_t revocations = 0;
  uint64_t recomputes = 0;
  {
    EngineHarness h;
    CheckpointConfig cfg;
    cfg.policy = CheckpointPolicyKind::kFlint;
    cfg.mttf_hours = 1.0;
    cfg.time.seconds_per_model_hour = 0.05;
    cfg.initial_delta_seconds = 0.001;
    FaultToleranceManager ft(&h.ctx(), cfg);

    FaultPlan plan;
    plan.events.push_back(RevokeAllAt(EnginePoint::kShuffleMapTaskRun, /*after_hits=*/0,
                                      /*with_warning=*/false, /*replacements=*/4,
                                      /*delay_seconds=*/0.05));
    FaultInjector injector(&h.cluster(), plan);
    ProbeGuard guard(&h.ctx(), &injector);

    auto input = Parallelize(&h.ctx(), KeyedRecords(600, 17), 5);
    input.Cache();
    ft.CheckpointRddNow(input.raw());
    auto counts = ReduceByKey(input, 4, [](int a, int b) { return a + b; });
    auto out = counts.Collect();
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    for (int i = 0; i < 400 && input.raw()->checkpoint_state() != CheckpointState::kSaved;
         ++i) {
      ft.FireCheckpointRound();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_EQ(input.raw()->checkpoint_state(), CheckpointState::kSaved);
    EXPECT_TRUE(injector.AllEventsFired());

    revocations = injector.GetStats().nodes_revoked;
    recomputes = h.ctx().counters().partitions_recomputed.load();
    ASSERT_EQ(revocations, 4u);

    // While the context is alive its collector feeds the registry: every
    // silo must surface under the unified namespace.
    const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
    for (const char* name :
         {"flint_engine_tasks_run", "flint_engine_partitions_computed",
          "flint_engine_partitions_recomputed", "flint_block_hits", "flint_block_misses",
          "flint_shuffle_fetch_waits", "flint_ft_rdds_checkpointed",
          "flint_ft_partitions_written", "flint_ft_delta_seconds", "flint_ft_tau_seconds"}) {
      EXPECT_TRUE(snap.Has(name)) << name;
    }
    EXPECT_GT(snap.Value("flint_engine_tasks_run"), 0.0);
    EXPECT_GT(snap.Value("flint_ft_partitions_written"), 0.0);
    EXPECT_EQ(snap.Value("flint_engine_partitions_recomputed"),
              static_cast<double>(recomputes));
  }

  Tracer& tracer = Tracer::Global();
  // One revocation instant per revoked node; one recompute instant per
  // recomputed partition — the trace and the counters tell the same story.
  EXPECT_EQ(tracer.CountEvents("revocation"), revocations);
  EXPECT_EQ(tracer.CountEvents("recompute"), recomputes);
  EXPECT_GE(tracer.CountEvents("shuffle_stage"), 1u);
  EXPECT_GE(tracer.CountEvents("checkpoint"), 1u);

  // The checkpoint instant carries the measured delta sample and the tau the
  // EWMA produced (the paper's two governing quantities).
  bool found_checkpoint = false;
  for (const TraceEvent& e : tracer.Drain()) {
    if (std::string(e.name) != "checkpoint") {
      continue;
    }
    found_checkpoint = true;
    bool has_delta = false;
    bool has_tau = false;
    for (int i = 0; i < e.num_args; ++i) {
      if (std::string(e.args[i].key) == "delta_sample_s") {
        has_delta = true;
      }
      if (std::string(e.args[i].key) == "tau_s") {
        has_tau = true;
      }
    }
    EXPECT_TRUE(has_delta);
    EXPECT_TRUE(has_tau);
  }
  EXPECT_TRUE(found_checkpoint);

  // And the whole thing still exports as valid Chrome trace JSON.
  JsonValue root;
  ASSERT_TRUE(JsonParser(tracer.ExportJson()).Parse(&root));
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_GE(events->array.size(), revocations + recomputes);
}

TEST_F(ObsEndToEndTest, TracingOffRecordsNoEventsDuringARun) {
  Tracer::Global().Configure(ObsConfig{});  // off
  EngineHarness h;
  std::vector<int> data(500);
  std::iota(data.begin(), data.end(), 0);
  auto sum = Parallelize(&h.ctx(), data, 4)
                 .Map([](const int& x) { return x + 1; })
                 .Reduce([](int a, int b) { return a + b; });
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(Tracer::Global().GetStats().recorded, 0u);
}

}  // namespace
}  // namespace flint
