// Wide-stage hot-path tests (ISSUE 9): the fused map-side bucketing and the
// merge-based reduce must be pure performance changes — every path produces
// bit-identical partitions. Covers:
//   - FlatHashMap unit behaviour (growth, collision storms, insertion-order
//     iteration, Reserve contract);
//   - fused vs unfused bucketing bit-identity for ReduceByKey / GroupByKey /
//     Join, including a non-commutative-looking string combine;
//   - merge-reduce vs hash-rebuild bit-identity;
//   - determinism across num_reduce choices;
//   - fused bucket chains recomputing bit-identically through a whole-cluster
//     revocation storm.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "src/common/flat_hash.h"
#include "src/engine/typed_rdd_ops.h"
#include "src/inject/fault_injector.h"
#include "tests/test_util.h"

namespace flint {
namespace {

using testing::EngineHarness;
using testing::EngineHarnessOptions;

// --- FlatHashMap units ---

struct IdentityHash {
  size_t operator()(int k) const { return static_cast<size_t>(k); }
};

// Worst case for open addressing: every key lands in the same slot, so the
// probe chain is the whole table.
struct ConstantHash {
  size_t operator()(int) const { return 7; }
};

TEST(FlatHashTest, InsertsFindsAndGrows) {
  FlatHashMap<int, int, IdentityHash> m;
  EXPECT_TRUE(m.empty());
  for (int i = 0; i < 1000; ++i) {
    auto [slot, inserted] = m.FindOrEmplace(i, i * 2);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(*slot, i * 2);
  }
  EXPECT_EQ(m.size(), 1000u);
  EXPECT_GE(m.capacity(), 1024u);  // grew past the minimum table
  for (int i = 0; i < 1000; ++i) {
    const int* v = m.Find(i);
    ASSERT_NE(v, nullptr) << "key " << i;
    EXPECT_EQ(*v, i * 2);
  }
  EXPECT_EQ(m.Find(1000), nullptr);
  EXPECT_EQ(m.Find(-1), nullptr);
}

TEST(FlatHashTest, CollisionStormProbesLinearly) {
  FlatHashMap<int, int, ConstantHash> m;
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(m.FindOrEmplace(i, i).second);
  }
  // Second pass hits every existing key through the full probe chain and
  // updates in place.
  for (int i = 0; i < 200; ++i) {
    auto [slot, inserted] = m.FindOrEmplace(i, -1);
    EXPECT_FALSE(inserted);
    EXPECT_EQ(*slot, i);
    *slot += 1000;
  }
  EXPECT_EQ(m.size(), 200u);
  for (int i = 0; i < 200; ++i) {
    const int* v = m.Find(i);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, i + 1000);
  }
  EXPECT_EQ(m.Find(777), nullptr);  // absent key terminates the probe
}

TEST(FlatHashTest, IterationFollowsInsertionOrder) {
  FlatHashMap<int, int, IdentityHash> m;
  // Insertion order deliberately differs from both key order and hash order.
  const std::vector<int> keys = {42, 7, 1000, 3, 99, 0, 512};
  for (size_t i = 0; i < keys.size(); ++i) {
    m[keys[i]] = static_cast<int>(i);
  }
  ASSERT_EQ(m.entries().size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(m.entries()[i].first, keys[i]);
    EXPECT_EQ(m.entries()[i].second, static_cast<int>(i));
  }
  std::vector<std::pair<int, int>> taken = m.TakeEntries();
  ASSERT_EQ(taken.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(taken[i].first, keys[i]);
  }
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Find(42), nullptr);
}

TEST(FlatHashTest, ReservePreventsRehash) {
  FlatHashMap<int, int, IdentityHash> m;
  m.Reserve(1000);
  const size_t cap = m.capacity();
  for (int i = 0; i < 1000; ++i) {
    m.FindOrEmplace(i, i);
  }
  EXPECT_EQ(m.capacity(), cap) << "Reserve(1000) must cover 1000 inserts";
}

TEST(FlatHashTest, BracketDefaultInsertsAndAppends) {
  FlatHashMap<int, std::vector<int>, IdentityHash> m;
  m[5].push_back(1);
  m[5].push_back(2);
  m[9].push_back(3);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(*m.Find(5), (std::vector<int>{1, 2}));
  EXPECT_EQ(*m.Find(9), (std::vector<int>{3}));
}

// --- fused vs unfused / merge vs hash bit-identity ---

EngineHarnessOptions Opts(bool shuffle_fusion, bool merge_reduce) {
  EngineHarnessOptions o;
  o.shuffle_fusion = shuffle_fusion;
  o.shuffle_merge_reduce = merge_reduce;
  return o;
}

// Skewed keyed data: key frequencies differ and values depend on position,
// so any reordering anywhere in the shuffle shows up in the output.
std::vector<std::pair<int, int>> SkewedPairs(int rows, int keys) {
  std::vector<std::pair<int, int>> data;
  data.reserve(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    data.emplace_back((i * i + i / 3) % keys, i);
  }
  return data;
}

// Each workload returns the raw Collect — partitions concatenated in order,
// so the comparison is full bit-identity, not just set equality.

std::vector<std::pair<int, int>> RunReduceByKey(FlintContext* ctx, int num_reduce) {
  // The Map between the source and the shuffle is the narrow chain the fused
  // path elides; the combine is associative but NOT commutative-looking
  // (order-sensitive mixing), so any change in fold order breaks equality.
  auto mapped = Parallelize(ctx, SkewedPairs(6000, 37), 5)
                    .Map([](const std::pair<int, int>& kv) {
                      return std::make_pair(kv.first, kv.second * 2 + 1);
                    });
  auto out = ReduceByKey(mapped, num_reduce,
                         [](int a, int b) { return a * 31 + b; })
                 .Collect();
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return out.ok() ? *out : std::vector<std::pair<int, int>>{};
}

std::vector<std::pair<int, std::string>> RunStringConcat(FlintContext* ctx) {
  // String concatenation: associative, visibly non-commutative. The fold
  // order (map partition, row index) must survive fusion and the merge.
  auto mapped = Parallelize(ctx, SkewedPairs(2000, 23), 4)
                    .Map([](const std::pair<int, int>& kv) {
                      return std::make_pair(kv.first, std::to_string(kv.second));
                    });
  auto out = ReduceByKey(mapped, 3,
                         [](const std::string& a, const std::string& b) {
                           return a + "," + b;
                         })
                 .Collect();
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return out.ok() ? *out : std::vector<std::pair<int, std::string>>{};
}

std::vector<std::pair<int, std::vector<int>>> RunGroupByKey(FlintContext* ctx) {
  auto mapped = Parallelize(ctx, SkewedPairs(4000, 29), 6)
                    .Map([](const std::pair<int, int>& kv) {
                      return std::make_pair(kv.first, kv.second ^ 5);
                    });
  auto out = GroupByKey(mapped, 4).Collect();
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return out.ok() ? *out : std::vector<std::pair<int, std::vector<int>>>{};
}

std::vector<std::pair<int, std::pair<int, int>>> RunJoin(FlintContext* ctx) {
  // Duplicate keys on both sides so the per-key cross product's row order is
  // exercised, with narrow Maps above both shuffles.
  auto left = Parallelize(ctx, SkewedPairs(1500, 19), 4)
                  .Map([](const std::pair<int, int>& kv) {
                    return std::make_pair(kv.first, kv.second + 100000);
                  });
  auto right = Parallelize(ctx, SkewedPairs(900, 19), 3)
                   .Map([](const std::pair<int, int>& kv) {
                     return std::make_pair(kv.first, -kv.second);
                   });
  auto out = Join(left, right, 3).Collect();
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return out.ok() ? *out : std::vector<std::pair<int, std::pair<int, int>>>{};
}

TEST(ShufflePathTest, ReduceByKeyFusedMatchesUnfused) {
  std::vector<std::pair<int, int>> fused, unfused;
  {
    EngineHarness h{Opts(/*shuffle_fusion=*/true, /*merge_reduce=*/true)};
    fused = RunReduceByKey(&h.ctx(), 4);
    EXPECT_GT(h.ctx().counters().shuffle_fused_bucket_chains.load(), 0u);
    EXPECT_GT(h.ctx().counters().shuffle_rows_bucketed_fused.load(), 0u);
    EXPECT_EQ(h.ctx().counters().shuffle_rows_bucketed_unfused.load(), 0u);
    EXPECT_GT(h.ctx().counters().shuffle_combine_hits.load(), 0u);
  }
  {
    EngineHarness h{Opts(/*shuffle_fusion=*/false, /*merge_reduce=*/true)};
    unfused = RunReduceByKey(&h.ctx(), 4);
    EXPECT_EQ(h.ctx().counters().shuffle_fused_bucket_chains.load(), 0u);
    EXPECT_GT(h.ctx().counters().shuffle_rows_bucketed_unfused.load(), 0u);
  }
  ASSERT_FALSE(fused.empty());
  EXPECT_EQ(fused, unfused);
}

TEST(ShufflePathTest, MergeReduceMatchesHashRebuild) {
  std::vector<std::pair<int, int>> merged, hashed;
  {
    EngineHarness h{Opts(true, /*merge_reduce=*/true)};
    merged = RunReduceByKey(&h.ctx(), 4);
    EXPECT_GT(h.ctx().counters().shuffle_merge_reduces.load(), 0u);
    EXPECT_EQ(h.ctx().counters().shuffle_hash_reduces.load(), 0u);
  }
  {
    EngineHarness h{Opts(true, /*merge_reduce=*/false)};
    hashed = RunReduceByKey(&h.ctx(), 4);
    EXPECT_EQ(h.ctx().counters().shuffle_merge_reduces.load(), 0u);
    EXPECT_GT(h.ctx().counters().shuffle_hash_reduces.load(), 0u);
  }
  ASSERT_FALSE(merged.empty());
  EXPECT_EQ(merged, hashed);
}

TEST(ShufflePathTest, NonCommutativeCombineIdenticalOnAllPaths) {
  std::vector<std::pair<int, std::string>> reference;
  {
    EngineHarness h{Opts(true, true)};
    reference = RunStringConcat(&h.ctx());
    ASSERT_FALSE(reference.empty());
  }
  for (bool fusion : {true, false}) {
    for (bool merge : {true, false}) {
      EngineHarness h{Opts(fusion, merge)};
      EXPECT_EQ(RunStringConcat(&h.ctx()), reference)
          << "fusion=" << fusion << " merge=" << merge;
    }
  }
}

TEST(ShufflePathTest, GroupByKeyIdenticalOnAllPaths) {
  std::vector<std::pair<int, std::vector<int>>> reference;
  {
    EngineHarness h{Opts(true, true)};
    reference = RunGroupByKey(&h.ctx());
    ASSERT_FALSE(reference.empty());
  }
  for (bool fusion : {true, false}) {
    for (bool merge : {true, false}) {
      EngineHarness h{Opts(fusion, merge)};
      EXPECT_EQ(RunGroupByKey(&h.ctx()), reference)
          << "fusion=" << fusion << " merge=" << merge;
    }
  }
}

TEST(ShufflePathTest, JoinIdenticalOnAllPaths) {
  std::vector<std::pair<int, std::pair<int, int>>> reference;
  {
    EngineHarness h{Opts(true, true)};
    reference = RunJoin(&h.ctx());
    ASSERT_FALSE(reference.empty());
  }
  for (bool fusion : {true, false}) {
    for (bool merge : {true, false}) {
      EngineHarness h{Opts(fusion, merge)};
      EXPECT_EQ(RunJoin(&h.ctx()), reference)
          << "fusion=" << fusion << " merge=" << merge;
    }
  }
}

// The reduce output read key-sorted must not depend on how many reduce
// partitions the shuffle used (the per-key fold order is partition-count
// invariant: map-side row order, then bucket-index order).
TEST(ShufflePathTest, ReduceByKeyDeterministicAcrossNumReduce) {
  auto sorted = [](std::vector<std::pair<int, int>> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  std::vector<std::pair<int, int>> reference;
  {
    EngineHarness h;
    reference = sorted(RunReduceByKey(&h.ctx(), 1));
    ASSERT_FALSE(reference.empty());
  }
  for (int num_reduce : {2, 3, 7}) {
    EngineHarness h;
    EXPECT_EQ(sorted(RunReduceByKey(&h.ctx(), num_reduce)), reference)
        << "num_reduce=" << num_reduce;
  }
}

// A whole-cluster hard revocation mid-stage forces the fused bucket chains
// to recompute from source on replacement nodes; the result must match an
// untouched cluster's byte for byte.
TEST(ShufflePathTest, FusedBucketChainSurvivesRevokeAllStorm) {
  std::vector<std::pair<int, std::string>> reference;
  {
    EngineHarness clean;
    reference = RunStringConcat(&clean.ctx());
    ASSERT_FALSE(reference.empty());
    ASSERT_GT(clean.ctx().counters().shuffle_fused_bucket_chains.load(), 0u);
  }

  EngineHarness h;
  FaultPlan plan;
  plan.events.push_back(RevokeAllAt(EnginePoint::kShuffleMapTaskRun, /*after_hits=*/0,
                                    /*with_warning=*/false, /*replacements=*/4,
                                    /*delay_seconds=*/0.05));
  FaultInjector injector(&h.cluster(), plan);
  h.ctx().SetProbe(&injector);
  auto out = RunStringConcat(&h.ctx());
  h.ctx().SetProbe(nullptr);
  injector.Drain();
  h.ctx().DrainExecutors();

  EXPECT_EQ(out, reference);
  EXPECT_TRUE(injector.AllEventsFired());
  EXPECT_GT(h.ctx().counters().shuffle_fused_bucket_chains.load(), 0u);
}

}  // namespace
}  // namespace flint
