// Deterministic revocation-storm scenarios (ISSUE 1): scripted FaultPlans
// replay the paper's whole-cluster and k-of-m revocations at precise engine
// points and assert the scheduler parks, recovers, and converges instead of
// hot-spinning to "shuffle stage failed to converge" (the pre-fix stall).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <thread>
#include <vector>

#include "src/checkpoint/ft_manager.h"
#include "src/engine/typed_rdd.h"
#include "src/engine/typed_rdd_ops.h"
#include "src/inject/fault_injector.h"
#include "tests/test_util.h"

namespace flint {
namespace {

using testing::EngineHarness;
using testing::EngineHarnessOptions;

// Installs the injector as the context's probe for the guard's lifetime and
// settles all injected activity (replacement timers, executor pools) before
// the injector or harness can be destroyed.
class ProbeGuard {
 public:
  ProbeGuard(FlintContext* ctx, FaultInjector* injector) : ctx_(ctx), injector_(injector) {
    ctx_->SetProbe(injector_);
  }
  ~ProbeGuard() {
    ctx_->SetProbe(nullptr);
    injector_->Drain();
    ctx_->DrainExecutors();
  }

  ProbeGuard(const ProbeGuard&) = delete;
  ProbeGuard& operator=(const ProbeGuard&) = delete;

 private:
  FlintContext* ctx_;
  FaultInjector* injector_;
};

// Every storm scenario runs with the runtime lock-order detector enabled:
// the suite doubles as a deadlock-potential regression net over the engine,
// checkpoint, cluster, and injector locking (see src/common/mutex.h). The
// fixture snapshots the violation count so a cycle introduced by any lock
// taken during the storm fails the test that provoked it.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = SetMutexDebug(true);
    violations_before_ = GetLockOrderViolations().size();
  }
  void TearDown() override {
    const auto violations = GetLockOrderViolations();
    EXPECT_EQ(violations.size(), violations_before_)
        << "lock-order cycle detected during the storm: "
        << (violations.empty() ? "" : violations.back().description);
    SetMutexDebug(was_enabled_);
  }

 private:
  bool was_enabled_ = false;
  size_t violations_before_ = 0;
};

// (key, count) pairs with every key appearing `records / keys` times.
std::vector<std::pair<int, int>> KeyedRecords(int records, int keys) {
  std::vector<std::pair<int, int>> data;
  data.reserve(static_cast<size_t>(records));
  for (int i = 0; i < records; ++i) {
    data.emplace_back(i % keys, 1);
  }
  return data;
}

std::vector<std::pair<int, int>> Sorted(std::vector<std::pair<int, int>> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(FaultInjectorTest, FiresOncePerEventAtTheScriptedHit) {
  ClusterManager cluster{TimeConfig{}};
  FaultPlan plan;
  FaultEvent add;
  add.at = EnginePoint::kSchedulerRound;
  add.after_hits = 2;
  add.action = FaultActionKind::kAddNodes;
  add.count = 2;
  plan.events.push_back(add);
  FaultInjector injector(&cluster, plan);

  injector.AtPoint(EnginePoint::kSchedulerRound);
  injector.AtPoint(EnginePoint::kSchedulerRound);
  EXPECT_EQ(cluster.NumLiveNodes(), 0u);
  EXPECT_FALSE(injector.AllEventsFired());
  injector.AtPoint(EnginePoint::kSchedulerRound);  // third arrival: fires
  EXPECT_EQ(cluster.NumLiveNodes(), 2u);
  EXPECT_TRUE(injector.AllEventsFired());
  injector.AtPoint(EnginePoint::kSchedulerRound);  // one-shot: no re-fire
  EXPECT_EQ(cluster.NumLiveNodes(), 2u);
  EXPECT_EQ(injector.HitCount(EnginePoint::kSchedulerRound), 4);
  EXPECT_EQ(injector.GetStats().events_fired, 1u);
}

// The acceptance scenario: a warning-storm empties the cluster at the exact
// moment the shuffle map stage dispatches (every pool starts draining, so
// every Submit is rejected); replacements join only after the revocations
// land. Pre-fix, RunShuffleStage hot-spun through its attempt budget and
// returned Internal("shuffle stage failed to converge"); now it parks on
// WaitForLiveNode and completes with correct results.
TEST_F(FaultInjectionTest, WarningStormAtShuffleDispatchParksAndCompletes) {
  // Real scale so the warning window (2 model minutes -> 100 ms) dwarfs any
  // retry loop: a busy-looping scheduler would burn its attempt budget long
  // before the replacements arrive.
  EngineHarness h{EngineHarnessOptions{.num_nodes = 4, .seconds_per_model_hour = 3.0}};
  FaultPlan plan;
  plan.events.push_back(RevokeAllAt(EnginePoint::kBeforeShuffleMapDispatch, /*after_hits=*/0,
                                    /*with_warning=*/true, /*replacements=*/4,
                                    /*delay_seconds=*/0.3));
  FaultInjector injector(&h.cluster(), plan);
  ProbeGuard guard(&h.ctx(), &injector);

  auto counts = ReduceByKey(Parallelize(&h.ctx(), KeyedRecords(400, 10), 4), 3,
                            [](int a, int b) { return a + b; });
  auto out = counts.Collect();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  std::vector<std::pair<int, int>> expect;
  for (int k = 0; k < 10; ++k) {
    expect.emplace_back(k, 40);
  }
  EXPECT_EQ(Sorted(*out), expect);

  EXPECT_TRUE(injector.AllEventsFired());
  EXPECT_EQ(injector.GetStats().nodes_revoked, 4u);
  // The storm was survived by parking, not spinning.
  EXPECT_GE(h.ctx().counters().stage_parks.load(), 1u);
  EXPECT_GT(h.ctx().counters().acquisition_wait_nanos.load(), 0);
}

// Regression for the satellite requirement: Materialize over a shuffle
// completes (not Internal) when every node is hard-revoked mid-map-stage and
// replacements arrive later — and the answer is bit-identical to an
// untouched cluster's.
TEST_F(FaultInjectionTest, MaterializeOverShuffleSurvivesHardKillMidMapStage) {
  std::vector<std::pair<int, int>> reference;
  {
    EngineHarness clean;
    auto counts = ReduceByKey(Parallelize(&clean.ctx(), KeyedRecords(600, 17), 5), 4,
                              [](int a, int b) { return a + b; });
    auto out = counts.Collect();
    ASSERT_TRUE(out.ok());
    reference = Sorted(*out);
  }

  EngineHarness h;
  FaultPlan plan;
  plan.events.push_back(RevokeAllAt(EnginePoint::kShuffleMapTaskRun, /*after_hits=*/0,
                                    /*with_warning=*/false, /*replacements=*/4,
                                    /*delay_seconds=*/0.05));
  FaultInjector injector(&h.cluster(), plan);
  ProbeGuard guard(&h.ctx(), &injector);

  auto counts = ReduceByKey(Parallelize(&h.ctx(), KeyedRecords(600, 17), 5), 4,
                            [](int a, int b) { return a + b; });
  auto out = counts.Collect();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(Sorted(*out), reference);
  EXPECT_TRUE(injector.AllEventsFired());
  EXPECT_GT(h.ctx().counters().task_failures.load(), 0u);
}

// Fused narrow chains (fusion.h) must recompute bit-identically when a hard
// storm wipes every node mid-stage: the fused task re-streams from its
// barrier input on a replacement node, and the result — including the
// per-partition sampling RNG stream — matches an untouched cluster's byte
// for byte.
TEST_F(FaultInjectionTest, FusedChainRecomputesBitIdenticalUnderHardStorm) {
  std::vector<int> data(4000);
  std::iota(data.begin(), data.end(), 0);
  auto run = [&data](EngineHarness& h) {
    auto mapped = Parallelize(&h.ctx(), data, 4)
                      .Map([](const int& x) { return x * 31 + 7; })
                      .Map([](const int& x) { return x ^ (x >> 3); });
    return Sample(mapped, 0.5, /*seed=*/13)
        .Filter([](const int& x) { return (x & 1) == 0; })
        .Collect();
  };

  std::vector<int> reference;
  {
    EngineHarness clean;
    auto out = run(clean);
    ASSERT_TRUE(out.ok());
    reference = *out;
    ASSERT_GT(clean.ctx().counters().fused_chains.load(), 0u);
  }

  EngineHarness h;
  FaultPlan plan;
  plan.events.push_back(RevokeAllAt(EnginePoint::kSchedulerRound, /*after_hits=*/0,
                                    /*with_warning=*/false, /*replacements=*/4,
                                    /*delay_seconds=*/0.05));
  FaultInjector injector(&h.cluster(), plan);
  ProbeGuard guard(&h.ctx(), &injector);

  auto out = run(h);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, reference);
  EXPECT_TRUE(injector.AllEventsFired());
  EXPECT_GT(h.ctx().counters().fused_chains.load(), 0u);
}

// The unified loop protects the result stage the same way: a warning storm
// at the first scheduler round of a shuffle-free job drains every pool
// before dispatch, and the stage must park rather than spin.
TEST_F(FaultInjectionTest, ResultStageParksUnderWarningStorm) {
  EngineHarness h{EngineHarnessOptions{.num_nodes = 3, .seconds_per_model_hour = 3.0}};
  FaultPlan plan;
  plan.events.push_back(RevokeAllAt(EnginePoint::kSchedulerRound, /*after_hits=*/0,
                                    /*with_warning=*/true, /*replacements=*/3,
                                    /*delay_seconds=*/0.3));
  FaultInjector injector(&h.cluster(), plan);
  ProbeGuard guard(&h.ctx(), &injector);

  std::vector<int> data(300);
  std::iota(data.begin(), data.end(), 0);
  auto sum = Parallelize(&h.ctx(), data, 3)
                 .Map([](const int& x) { return x * 2; })
                 .Reduce([](int a, int b) { return a + b; });
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();
  EXPECT_EQ(*sum, 299 * 300);
  EXPECT_GE(h.ctx().counters().stage_parks.load(), 1u);
}

// k-of-m storm with warning during checkpoint writes: the surviving nodes
// finish the round, the checkpoint lands durably, and reads come back from
// the DFS after the victims are gone.
TEST_F(FaultInjectionTest, RevokeKofMWithWarningDuringCheckpointWrite) {
  EngineHarness h{EngineHarnessOptions{.num_nodes = 4, .seconds_per_model_hour = 3.0}};
  CheckpointConfig cfg;
  cfg.policy = CheckpointPolicyKind::kFlint;
  cfg.mttf_hours = 1.0;
  cfg.time.seconds_per_model_hour = 3.0;
  cfg.initial_delta_seconds = 0.001;
  FaultToleranceManager ft(&h.ctx(), cfg);

  FaultPlan plan;
  plan.events.push_back(RevokeCountAt(EnginePoint::kCheckpointWrite, /*after_hits=*/0,
                                      /*count=*/2, /*with_warning=*/true,
                                      /*delay_seconds=*/0.3));
  FaultInjector injector(&h.cluster(), plan);
  ProbeGuard guard(&h.ctx(), &injector);

  std::vector<int> data(800);
  std::iota(data.begin(), data.end(), 0);
  auto rdd = Parallelize(&h.ctx(), data, 4).Map([](const int& x) { return x + 7; });
  rdd.Cache();
  ASSERT_TRUE(rdd.Materialize().ok());

  ft.CheckpointRddNow(rdd.raw());
  for (int i = 0; i < 400 && rdd.raw()->checkpoint_state() != CheckpointState::kSaved; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(rdd.raw()->checkpoint_state(), CheckpointState::kSaved);
  EXPECT_EQ(injector.GetStats().nodes_revoked, 2u);

  // Let the storm finish (revocations + replacements), then re-read.
  injector.Drain();
  h.cluster().DrainEvents();
  auto out = rdd.Collect();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->front(), 7);
  EXPECT_EQ(out->back(), 806);
}

// Composed storm (ISSUE 2): every node hard-revoked mid-map-stage while the
// checkpoint store rides out an unavailability window. The node-fault
// machinery replaces the cluster, the retry layer carries the checkpoint
// writes across the outage (write_retries), the pending sweep re-enqueues
// anything whose writer died with its node, and the job result is
// bit-identical to a fault-free run.
TEST_F(FaultInjectionTest, CheckpointSurvivesRevokeAllComposedWithDfsOutage) {
  std::vector<std::pair<int, int>> reference;
  {
    EngineHarness clean;
    auto counts = ReduceByKey(Parallelize(&clean.ctx(), KeyedRecords(600, 17), 5), 4,
                              [](int a, int b) { return a + b; });
    auto out = counts.Collect();
    ASSERT_TRUE(out.ok());
    reference = Sorted(*out);
  }

  EngineHarnessOptions opts;
  opts.checkpoint_retry.max_attempts = 10;
  opts.checkpoint_retry.initial_backoff_seconds = 0.01;
  opts.checkpoint_retry.deadline_seconds = 5.0;
  EngineHarness h{opts};
  CheckpointConfig cfg;
  cfg.policy = CheckpointPolicyKind::kFlint;
  cfg.mttf_hours = 1.0;
  cfg.time.seconds_per_model_hour = 0.05;
  cfg.initial_delta_seconds = 0.001;
  cfg.pending_retry_seconds = 0.05;
  cfg.pending_max_retries = 50;
  FaultToleranceManager ft(&h.ctx(), cfg);

  FaultPlan plan;
  plan.events.push_back(RevokeAllAt(EnginePoint::kShuffleMapTaskRun, /*after_hits=*/0,
                                    /*with_warning=*/false, /*replacements=*/4,
                                    /*delay_seconds=*/0.05));
  plan.events.push_back(DfsOutageAt(EnginePoint::kCheckpointWrite, /*after_hits=*/0, "ckpt/",
                                    /*duration_seconds=*/0.04));
  FaultInjector injector(&h.cluster(), plan, &h.dfs());
  ProbeGuard guard(&h.ctx(), &injector);

  auto input = Parallelize(&h.ctx(), KeyedRecords(600, 17), 5);
  input.Cache();
  ft.CheckpointRddNow(input.raw());  // writes race both the storm and the outage
  auto counts = ReduceByKey(input, 4, [](int a, int b) { return a + b; });
  auto out = counts.Collect();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(Sorted(*out), reference);

  // The checkpoint itself must also land: rounds drive the pending sweep so
  // writes whose nodes died get re-enqueued on the replacements.
  for (int i = 0; i < 600 && input.raw()->checkpoint_state() != CheckpointState::kSaved; ++i) {
    ft.FireCheckpointRound();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(input.raw()->checkpoint_state(), CheckpointState::kSaved);
  EXPECT_TRUE(h.dfs().Exists(input.raw()->ManifestPath()));
  EXPECT_GE(h.ctx().counters().write_retries.load(), 1u);
  EXPECT_TRUE(injector.AllEventsFired());
}

// Property-style bound: repeated hard storms across a nested-shuffle job
// never drive the stage loops into a busy-spin — the total number of
// dispatch rounds stays far below the convergence budget and the job still
// produces the exact reference answer.
TEST_F(FaultInjectionTest, StageLoopsNeverBusyLoopUnderRepeatedStorms) {
  std::vector<std::pair<int, int>> reference;
  {
    EngineHarness clean;
    auto counts = ReduceByKey(Parallelize(&clean.ctx(), KeyedRecords(500, 25), 5), 4,
                              [](int a, int b) { return a + b; });
    auto histogram = ReduceByKey(
        counts.Map([](const std::pair<int, int>& kv) { return std::make_pair(kv.second, 1); }),
        3, [](int a, int b) { return a + b; });
    auto out = histogram.Collect();
    ASSERT_TRUE(out.ok());
    reference = Sorted(*out);
  }

  EngineHarness h;
  FaultPlan plan;
  for (int hit : {0, 3, 6}) {
    plan.events.push_back(RevokeAllAt(EnginePoint::kShuffleMapTaskDone, hit,
                                      /*with_warning=*/false, /*replacements=*/4,
                                      /*delay_seconds=*/0.02));
  }
  FaultInjector injector(&h.cluster(), plan);
  ProbeGuard guard(&h.ctx(), &injector);

  auto counts = ReduceByKey(Parallelize(&h.ctx(), KeyedRecords(500, 25), 5), 4,
                            [](int a, int b) { return a + b; });
  auto histogram = ReduceByKey(
      counts.Map([](const std::pair<int, int>& kv) { return std::make_pair(kv.second, 1); }),
      3, [](int a, int b) { return a + b; });
  auto out = histogram.Collect();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(Sorted(*out), reference);

  EXPECT_GE(injector.GetStats().events_fired, 1u);
  // The pre-fix loop burned >256 rounds per storm; the unified loop parks,
  // so the whole 3-storm job stays well inside the budget.
  EXPECT_LT(h.ctx().counters().stage_rounds.load(), 200u);
}

}  // namespace
}  // namespace flint
