// Storage-fault matrix (ISSUE 2): scripted DFS faults — failed writes/reads,
// outage windows, slow I/O, silent corruption — driven through the FaultInjector's
// DfsFaultHook, exercised against the atomic checkpoint commit protocol
// (partition objects + CRC32, manifest written last), the retry/backoff
// layer, the FT manager's degraded mode and pending sweep, and verified
// restores that fall back to lineage instead of trusting bad bytes.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "src/checkpoint/ft_manager.h"
#include "src/common/crc32.h"
#include "src/dfs/manifest.h"
#include "src/dfs/retry.h"
#include "src/engine/typed_rdd.h"
#include "src/inject/fault_injector.h"
#include "tests/test_util.h"

namespace flint {
namespace {

using testing::EngineHarness;
using testing::EngineHarnessOptions;

// Installs the injector as the context's engine probe for the guard's
// lifetime (the DFS hook is installed by the injector's own constructor) and
// settles all injected activity before the injector or harness can die.
class ProbeGuard {
 public:
  ProbeGuard(FlintContext* ctx, FaultInjector* injector) : ctx_(ctx), injector_(injector) {
    ctx_->SetProbe(injector_);
  }
  ~ProbeGuard() {
    ctx_->SetProbe(nullptr);
    injector_->Drain();
    ctx_->DrainExecutors();
  }

  ProbeGuard(const ProbeGuard&) = delete;
  ProbeGuard& operator=(const ProbeGuard&) = delete;

 private:
  FlintContext* ctx_;
  FaultInjector* injector_;
};

DfsObject BytesObject(uint64_t size) {
  DfsObject obj;
  obj.size_bytes = size;
  obj.data = std::shared_ptr<const void>(new uint8_t[size],
                                         [](const void* p) { delete[] static_cast<const uint8_t*>(p); });
  return obj;
}

CheckpointConfig ManualFtConfig() {
  CheckpointConfig cfg;
  cfg.policy = CheckpointPolicyKind::kFlint;
  cfg.mttf_hours = 1.0;
  cfg.time.seconds_per_model_hour = 0.5;
  cfg.initial_delta_seconds = 0.001;
  return cfg;
}

// Retry budget that exhausts in microseconds: every failed Put is abandoned
// on its first attempt, which makes degraded-mode entry deterministic.
DfsRetryPolicy OneShotRetry() {
  DfsRetryPolicy policy;
  policy.max_attempts = 1;
  return policy;
}

void WaitForState(const RddPtr& rdd, CheckpointState want, int rounds = 600) {
  for (int i = 0; i < rounds && rdd->checkpoint_state() != want; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

// Every non-empty checkpoint directory must contain its manifest: a
// partition object without a committed manifest is a torn (partial)
// checkpoint and must never be left behind.
void ExpectNoPartialCheckpointDirs(Dfs& dfs) {
  for (const std::string& path : dfs.List("ckpt/rdd_")) {
    const size_t dir_end = path.find('/', std::string("ckpt/").size());
    ASSERT_NE(dir_end, std::string::npos) << path;
    const std::string dir = path.substr(0, dir_end + 1);
    EXPECT_TRUE(dfs.Exists(ManifestPathFor(dir)))
        << "partial checkpoint directory (no manifest): " << dir;
  }
}

TEST(DfsFaultCrc32Test, MatchesKnownVectorAndDetectsChange) {
  const char msg[] = "123456789";
  EXPECT_EQ(Crc32(msg, 9), 0xCBF43926u);  // canonical CRC-32 check value
  char tampered[] = "123456788";
  EXPECT_NE(Crc32(tampered, 9), Crc32(msg, 9));
}

// --- injector storage actions, driven directly against a Dfs ---

TEST(DfsFaultInjectorTest, FailsTheNextNWritesMatchingPrefix) {
  ClusterManager cluster{TimeConfig{}};
  Dfs dfs{DfsConfig{}};
  dfs.set_model_latency(false);
  FaultPlan plan;
  plan.events.push_back(FailWritesAt(EnginePoint::kDfsPut, /*after_hits=*/0, "ckpt/", 2));
  FaultInjector injector(&cluster, plan, &dfs);

  // The arming write itself is the first victim.
  Status first = dfs.Put("ckpt/a", BytesObject(8));
  EXPECT_EQ(first.code(), StatusCode::kUnavailable);
  EXPECT_EQ(dfs.Put("ckpt/b", BytesObject(8)).code(), StatusCode::kUnavailable);
  // Budget exhausted: matching writes succeed again.
  EXPECT_TRUE(dfs.Put("ckpt/c", BytesObject(8)).ok());
  // Non-matching paths were never at risk.
  EXPECT_TRUE(dfs.Put("data/x", BytesObject(8)).ok());
  EXPECT_EQ(injector.GetStats().writes_failed_injected, 2u);
  EXPECT_EQ(injector.HitCount(EnginePoint::kDfsPut), 4);
}

TEST(DfsFaultInjectorTest, FailsReadsByPrefixWithoutTouchingWrites) {
  ClusterManager cluster{TimeConfig{}};
  Dfs dfs{DfsConfig{}};
  dfs.set_model_latency(false);
  ASSERT_TRUE(dfs.Put("ckpt/a", BytesObject(8)).ok());
  FaultPlan plan;
  plan.events.push_back(FailReadsAt(EnginePoint::kDfsGet, /*after_hits=*/0, "ckpt/", 1));
  FaultInjector injector(&cluster, plan, &dfs);

  EXPECT_EQ(dfs.Get("ckpt/a").status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(dfs.Get("ckpt/a").ok());  // budget spent
  EXPECT_TRUE(dfs.Put("ckpt/b", BytesObject(8)).ok());
  EXPECT_EQ(injector.GetStats().reads_failed_injected, 1u);
}

TEST(DfsFaultInjectorTest, OutageWindowFailsMatchingOpsUntilItExpires) {
  ClusterManager cluster{TimeConfig{}};
  Dfs dfs{DfsConfig{}};
  dfs.set_model_latency(false);
  ASSERT_TRUE(dfs.Put("ckpt/existing", BytesObject(8)).ok());
  FaultPlan plan;
  plan.events.push_back(DfsOutageAt(EnginePoint::kDfsPut, /*after_hits=*/1, "ckpt/",
                                    /*duration_seconds=*/0.05));
  FaultInjector injector(&cluster, plan, &dfs);

  // Hit 0 passes; hit 1 arms the outage and is swallowed by it.
  EXPECT_TRUE(dfs.Put("ckpt/w0", BytesObject(8)).ok());
  EXPECT_EQ(dfs.Put("ckpt/w1", BytesObject(8)).code(), StatusCode::kUnavailable);
  EXPECT_EQ(dfs.Get("ckpt/existing").status().code(), StatusCode::kUnavailable);
  // Unmatched prefixes stay available during the outage.
  EXPECT_TRUE(dfs.Put("data/y", BytesObject(8)).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(80));  // one-sided: > window
  EXPECT_TRUE(dfs.Put("ckpt/w2", BytesObject(8)).ok());
  EXPECT_TRUE(dfs.Get("ckpt/existing").ok());
}

TEST(DfsFaultInjectorTest, SlowWindowMultipliesTransferTimeWithoutFailing) {
  ClusterManager cluster{TimeConfig{}};
  Dfs dfs{DfsConfig{}};
  dfs.set_model_latency(false);  // value-based: assert the verdict, not the wall clock
  FaultPlan plan;
  plan.events.push_back(DfsSlowAt(EnginePoint::kDfsPut, /*after_hits=*/0, "",
                                  /*duration_seconds=*/30.0, /*slow_factor=*/4.0));
  FaultInjector injector(&cluster, plan, &dfs);

  EXPECT_TRUE(dfs.Put("ckpt/slow", BytesObject(64)).ok());
  EXPECT_TRUE(dfs.Get("ckpt/slow").ok());
  EXPECT_GE(injector.GetStats().ops_slowed, 2u);
  EXPECT_EQ(injector.GetStats().writes_failed_injected, 0u);
}

// --- retry/backoff layer ---

TEST(DfsFaultRetryTest, PutRetriesTransientFailuresUntilSuccess) {
  ClusterManager cluster{TimeConfig{}};
  Dfs dfs{DfsConfig{}};
  dfs.set_model_latency(false);
  FaultPlan plan;
  plan.events.push_back(FailWritesAt(EnginePoint::kDfsPut, /*after_hits=*/0, "", 2));
  FaultInjector injector(&cluster, plan, &dfs);

  DfsRetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_seconds = 0.0005;
  DfsRetryStats stats;
  ASSERT_TRUE(PutWithRetry(dfs, "ckpt/p", BytesObject(16), policy, &stats).ok());
  EXPECT_EQ(stats.attempts, 3);  // two injected failures, then success
  EXPECT_TRUE(dfs.Exists("ckpt/p"));
}

TEST(DfsFaultRetryTest, PutSurfacesUnavailableAfterExhaustedAttempts) {
  ClusterManager cluster{TimeConfig{}};
  Dfs dfs{DfsConfig{}};
  dfs.set_model_latency(false);
  FaultPlan plan;
  plan.events.push_back(FailWritesAt(EnginePoint::kDfsPut, /*after_hits=*/0, "", 100));
  FaultInjector injector(&cluster, plan, &dfs);

  DfsRetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_seconds = 0.0005;
  DfsRetryStats stats;
  Status st = PutWithRetry(dfs, "ckpt/p", BytesObject(16), policy, &stats);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_FALSE(dfs.Exists("ckpt/p"));
}

TEST(DfsFaultRetryTest, GetDoesNotRetryNotFound) {
  Dfs dfs{DfsConfig{}};
  dfs.set_model_latency(false);
  DfsRetryStats stats;
  auto r = GetWithRetry(dfs, "ckpt/missing", DfsRetryPolicy{}, &stats);
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(stats.attempts, 1);  // a missing object will not appear by waiting
}

// --- manifest commit record ---

TEST(DfsFaultManifestTest, MissingManifestReadsAsNotFoundAndCorruptAsDataLoss) {
  Dfs dfs{DfsConfig{}};
  dfs.set_model_latency(false);
  // Torn checkpoint: partition objects present, manifest never written.
  ASSERT_TRUE(dfs.Put("ckpt/rdd_7/part_0", BytesObject(8)).ok());
  auto torn = ReadManifest(dfs, ManifestPathFor("ckpt/rdd_7/"), DfsRetryPolicy{});
  EXPECT_EQ(torn.status().code(), StatusCode::kNotFound);

  auto manifest = std::make_shared<CheckpointManifest>();
  manifest->rdd_id = 7;
  manifest->partitions.push_back(CheckpointPartitionMeta{8, 1234});
  ASSERT_TRUE(dfs.Put(ManifestPathFor("ckpt/rdd_7/"), MakeManifestObject(manifest)).ok());
  auto good = ReadManifest(dfs, ManifestPathFor("ckpt/rdd_7/"), DfsRetryPolicy{});
  ASSERT_TRUE(good.ok());
  EXPECT_EQ((*good)->rdd_id, 7);
  ASSERT_EQ((*good)->partitions.size(), 1u);
  EXPECT_EQ((*good)->partitions[0].crc32, 1234u);

  // Silent bit rot scrambles the stored checksum; the read must refuse.
  ASSERT_EQ(dfs.CorruptMatching(ManifestPathFor("ckpt/rdd_7/")), 1u);
  auto corrupt = ReadManifest(dfs, ManifestPathFor("ckpt/rdd_7/"), DfsRetryPolicy{});
  EXPECT_EQ(corrupt.status().code(), StatusCode::kDataLoss);
}

// --- engine-level matrix ---

// A transient write failure on the first checkpoint Put: the retry layer
// absorbs it, the checkpoint commits (manifest last), and after losing the
// whole cluster the data comes back from the DFS bit-identical.
TEST(DfsFaultTest, FailedWriteRetriesAndCheckpointLands) {
  EngineHarness h;
  FaultToleranceManager ft(&h.ctx(), ManualFtConfig());
  FaultPlan plan;
  plan.events.push_back(FailWritesAt(EnginePoint::kDfsPut, /*after_hits=*/0, "ckpt/", 1));
  FaultInjector injector(&h.cluster(), plan, &h.dfs());
  ProbeGuard guard(&h.ctx(), &injector);

  std::vector<int> data(400);
  std::iota(data.begin(), data.end(), 0);
  auto rdd = Parallelize(&h.ctx(), data, 4).Map([](const int& x) { return x + 3; });
  rdd.Cache();
  ASSERT_TRUE(rdd.Materialize().ok());
  ft.CheckpointRddNow(rdd.raw());
  WaitForState(rdd.raw(), CheckpointState::kSaved);
  ASSERT_EQ(rdd.raw()->checkpoint_state(), CheckpointState::kSaved);

  EXPECT_GE(h.ctx().counters().write_retries.load(), 1u);
  EXPECT_EQ(h.ctx().counters().writes_abandoned.load(), 0u);
  EXPECT_EQ(injector.GetStats().writes_failed_injected, 1u);
  EXPECT_TRUE(h.dfs().Exists(rdd.raw()->ManifestPath()));
  ExpectNoPartialCheckpointDirs(h.dfs());

  h.RevokeNodes(4);
  h.AddNode();
  auto out = rdd.Collect();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->front(), 3);
  EXPECT_EQ(out->back(), 402);
  EXPECT_GE(h.ctx().counters().checkpoint_reads.load(), 1u);
}

// A store outage long enough to outlive the whole test: every write is
// abandoned, the FT manager enters degraded mode, and signal rounds are
// suspended (probed, not fired) instead of queueing more doomed work.
TEST(DfsFaultTest, ExhaustedRetriesEnterDegradedModeAndSuspendSignals) {
  EngineHarnessOptions opts;
  // One single-threaded node serializes the four writes, so the outage armed
  // by the first write deterministically swallows all of them.
  opts.num_nodes = 1;
  opts.checkpoint_retry = OneShotRetry();
  EngineHarness h{opts};
  CheckpointConfig cfg = ManualFtConfig();
  cfg.degraded_after_failures = 1;
  cfg.pending_retry_seconds = 1e6;  // keep the sweep out of this test
  FaultToleranceManager ft(&h.ctx(), cfg);
  FaultPlan plan;
  plan.events.push_back(DfsOutageAt(EnginePoint::kDfsPut, /*after_hits=*/0, "ckpt/",
                                    /*duration_seconds=*/300.0));
  FaultInjector injector(&h.cluster(), plan, &h.dfs());
  ProbeGuard guard(&h.ctx(), &injector);

  std::vector<int> data(200);
  std::iota(data.begin(), data.end(), 0);
  auto rdd = Parallelize(&h.ctx(), data, 4).Map([](const int& x) { return x * 2; });
  rdd.Cache();
  ASSERT_TRUE(rdd.Materialize().ok());
  ft.CheckpointRddNow(rdd.raw());
  h.ctx().DrainExecutors();  // all four writes have been abandoned

  EXPECT_GE(h.ctx().counters().writes_abandoned.load(), 1u);
  EXPECT_TRUE(ft.degraded());
  auto stats = ft.GetStats();
  EXPECT_GE(stats.writes_failed, 1u);
  EXPECT_EQ(stats.degraded_entered, 1u);

  ft.FireCheckpointRound();  // probe fails against the outage; round skipped
  stats = ft.GetStats();
  EXPECT_GE(stats.signals_suspended, 1u);
  EXPECT_TRUE(ft.degraded());
  EXPECT_NE(rdd.raw()->checkpoint_state(), CheckpointState::kSaved);
  // The torn directory holds nothing: no partition object ever landed.
  EXPECT_TRUE(h.dfs().List(rdd.raw()->CheckpointDir()).empty());
}

// Degraded mode ends when the store heals: the next round's probe succeeds,
// the pending sweep re-enqueues the stalled partitions, and the checkpoint
// finally commits.
TEST(DfsFaultTest, DegradedModeRecoversAndPendingSweepFinishesTheCheckpoint) {
  EngineHarnessOptions opts;
  opts.num_nodes = 1;  // serialize writes behind the outage-arming one
  opts.checkpoint_retry = OneShotRetry();
  EngineHarness h{opts};
  CheckpointConfig cfg = ManualFtConfig();
  cfg.degraded_after_failures = 1;
  cfg.pending_retry_seconds = 0.02;
  cfg.pending_max_retries = 50;
  FaultToleranceManager ft(&h.ctx(), cfg);
  FaultPlan plan;
  plan.events.push_back(DfsOutageAt(EnginePoint::kDfsPut, /*after_hits=*/0, "ckpt/",
                                    /*duration_seconds=*/0.3));
  FaultInjector injector(&h.cluster(), plan, &h.dfs());
  ProbeGuard guard(&h.ctx(), &injector);

  std::vector<int> data(200);
  std::iota(data.begin(), data.end(), 0);
  auto rdd = Parallelize(&h.ctx(), data, 4).Map([](const int& x) { return x + 9; });
  rdd.Cache();
  ASSERT_TRUE(rdd.Materialize().ok());
  ft.CheckpointRddNow(rdd.raw());
  h.ctx().DrainExecutors();
  // The outage-arming write was abandoned inside the window, so degraded
  // mode is entered deterministically even if later writes slip past it.
  EXPECT_TRUE(ft.degraded());

  std::this_thread::sleep_for(std::chrono::milliseconds(350));  // one-sided: outage over
  // Re-fire rounds until the probe lands and the sweep re-enqueues what the
  // abandoned writers left behind.
  for (int i = 0; i < 600 && rdd.raw()->checkpoint_state() != CheckpointState::kSaved; ++i) {
    ft.FireCheckpointRound();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(rdd.raw()->checkpoint_state(), CheckpointState::kSaved);
  EXPECT_FALSE(ft.degraded());
  auto stats = ft.GetStats();
  EXPECT_GE(stats.degraded_entered, 1u);
  EXPECT_GE(stats.degraded_recovered, 1u);
  EXPECT_GE(stats.pending_requeued, 1u);
  EXPECT_TRUE(h.dfs().Exists(rdd.raw()->ManifestPath()));
  ExpectNoPartialCheckpointDirs(h.dfs());
}

// Silent corruption of one stored partition: the verified restore refuses
// the bytes, quarantines the checkpoint directory, and lineage recomputation
// produces a bit-identical answer.
TEST(DfsFaultTest, CorruptPartitionFallsBackToLineageBitIdentical) {
  std::vector<int> reference;
  {
    EngineHarness clean;
    std::vector<int> data(400);
    std::iota(data.begin(), data.end(), 0);
    auto rdd = Parallelize(&clean.ctx(), data, 4).Map([](const int& x) { return x * 5 + 1; });
    auto out = rdd.Collect();
    ASSERT_TRUE(out.ok());
    reference = *out;
  }

  EngineHarness h;
  FaultToleranceManager ft(&h.ctx(), ManualFtConfig());
  std::vector<int> data(400);
  std::iota(data.begin(), data.end(), 0);
  auto rdd = Parallelize(&h.ctx(), data, 4).Map([](const int& x) { return x * 5 + 1; });
  rdd.Cache();
  ASSERT_TRUE(rdd.Materialize().ok());
  ft.CheckpointRddNow(rdd.raw());
  WaitForState(rdd.raw(), CheckpointState::kSaved);
  ASSERT_EQ(rdd.raw()->checkpoint_state(), CheckpointState::kSaved);

  // Rot one stored partition, then lose the cache so the next read must go
  // through the checkpoint.
  ASSERT_EQ(h.dfs().CorruptMatching(rdd.raw()->CheckpointPath(1)), 1u);
  h.RevokeNodes(4);
  h.AddNode();

  auto out = rdd.Collect();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, reference);
  EXPECT_GE(h.ctx().counters().restores_fallen_back.load(), 1u);
  EXPECT_GE(h.ctx().counters().checkpoints_quarantined.load(), 1u);
  EXPECT_EQ(rdd.raw()->checkpoint_state(), CheckpointState::kNone);
  EXPECT_TRUE(h.dfs().List(rdd.raw()->CheckpointDir()).empty());
}

// A manifest that can never land: every partition write succeeds but the
// commit Put is rejected until the retry budget dies. The checkpoint must
// never become visible (kSaved) and the torn directory must be quarantined.
TEST(DfsFaultTest, TornManifestIsInvisibleAndQuarantined) {
  EngineHarness h;
  FaultToleranceManager ft(&h.ctx(), ManualFtConfig());
  std::vector<int> data(300);
  std::iota(data.begin(), data.end(), 0);
  auto rdd = Parallelize(&h.ctx(), data, 3).Map([](const int& x) { return x - 1; });
  rdd.Cache();
  ASSERT_TRUE(rdd.Materialize().ok());

  FaultPlan plan;
  plan.events.push_back(
      FailWritesAt(EnginePoint::kDfsPut, /*after_hits=*/0, rdd.raw()->ManifestPath(), 1000));
  FaultInjector injector(&h.cluster(), plan, &h.dfs());
  ProbeGuard guard(&h.ctx(), &injector);

  ft.CheckpointRddNow(rdd.raw());
  for (int i = 0; i < 600 && h.ctx().counters().checkpoints_quarantined.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(h.ctx().counters().checkpoints_quarantined.load(), 1u);
  EXPECT_GE(h.ctx().counters().writes_abandoned.load(), 1u);
  EXPECT_NE(rdd.raw()->checkpoint_state(), CheckpointState::kSaved);
  EXPECT_TRUE(h.dfs().List(rdd.raw()->CheckpointDir()).empty());
  // The cached data is untouched; results still come from the cluster.
  auto out = rdd.Collect();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->front(), -1);
}

// Deletes the checkpoint directory the instant a restore fetches its first
// partition object — the GC-races-restore interleaving. The reader must see
// a clean NotFound (manifest already validated, object gone), demote the
// RDD, and recompute from lineage; it must never serve a partial read.
class DeleteDirOnFirstPartitionRead : public DfsFaultHook {
 public:
  DeleteDirOnFirstPartitionRead(Dfs* dfs, std::string dir) : dfs_(dfs), dir_(std::move(dir)) {}

  DfsFaultVerdict OnPut(const std::string&) override { return DfsFaultVerdict{}; }
  DfsFaultVerdict OnGet(const std::string& path) override {
    if (path.rfind(dir_ + "part_", 0) == 0 && !fired_.exchange(true)) {
      dfs_->DeletePrefix(dir_);  // the hook runs outside the store's lock
    }
    return DfsFaultVerdict{};
  }

 private:
  Dfs* dfs_;
  std::string dir_;
  std::atomic<bool> fired_{false};
};

TEST(DfsFaultTest, DeletePrefixRacingRestoreFallsBackCleanly) {
  std::vector<int> reference;
  {
    EngineHarness clean;
    std::vector<int> data(400);
    std::iota(data.begin(), data.end(), 0);
    auto rdd = Parallelize(&clean.ctx(), data, 4).Map([](const int& x) { return x ^ 21; });
    auto out = rdd.Collect();
    ASSERT_TRUE(out.ok());
    reference = *out;
  }

  EngineHarness h;
  FaultToleranceManager ft(&h.ctx(), ManualFtConfig());
  std::vector<int> data(400);
  std::iota(data.begin(), data.end(), 0);
  auto rdd = Parallelize(&h.ctx(), data, 4).Map([](const int& x) { return x ^ 21; });
  rdd.Cache();
  ASSERT_TRUE(rdd.Materialize().ok());
  ft.CheckpointRddNow(rdd.raw());
  WaitForState(rdd.raw(), CheckpointState::kSaved);
  ASSERT_EQ(rdd.raw()->checkpoint_state(), CheckpointState::kSaved);

  h.RevokeNodes(4);
  h.AddNode();
  DeleteDirOnFirstPartitionRead racer(&h.dfs(), rdd.raw()->CheckpointDir());
  h.dfs().SetFaultHook(&racer);
  auto out = rdd.Collect();
  h.ctx().DrainExecutors();
  h.dfs().SetFaultHook(nullptr);

  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, reference);
  EXPECT_GE(h.ctx().counters().restores_fallen_back.load(), 1u);
  // A GC race is a clean miss, not corruption: nothing to quarantine.
  EXPECT_EQ(h.ctx().counters().checkpoints_quarantined.load(), 0u);
  EXPECT_EQ(rdd.raw()->checkpoint_state(), CheckpointState::kNone);
  EXPECT_TRUE(h.dfs().List(rdd.raw()->CheckpointDir()).empty());
}

// The acceptance scenario: a scripted run where ~20% of checkpoint writes
// fail transiently and one mid-job corruption lands right before the restore
// reads begin. The job must finish bit-identical to a fault-free run, having
// retried writes and fallen back to lineage, leaving no partial checkpoint
// directory behind.
TEST(DfsFaultTest, AcceptanceTwentyPercentWriteFailuresPlusMidJobCorruption) {
  std::vector<int> reference;
  {
    EngineHarness clean;
    std::vector<int> data(500);
    std::iota(data.begin(), data.end(), 0);
    auto a = Parallelize(&clean.ctx(), data, 4).Map([](const int& x) { return x * 3; });
    auto b = a.Map([](const int& x) { return x + 11; });
    auto out = b.Collect();
    ASSERT_TRUE(out.ok());
    reference = *out;
  }

  EngineHarness h;
  FaultToleranceManager ft(&h.ctx(), ManualFtConfig());
  FaultPlan plan;
  // Every 5th checkpoint write fails transiently (the arming Put included).
  for (int hit : {0, 5, 10, 15, 20}) {
    plan.events.push_back(FailWritesAt(EnginePoint::kDfsPut, hit, "ckpt/", 1));
  }
  // One silent corruption of everything checkpointed, sprung by the first
  // restore read of the recovery phase.
  plan.events.push_back(CorruptObjectAt(EnginePoint::kDfsGet, /*after_hits=*/0, "ckpt/"));
  FaultInjector injector(&h.cluster(), plan, &h.dfs());
  ProbeGuard guard(&h.ctx(), &injector);

  std::vector<int> data(500);
  std::iota(data.begin(), data.end(), 0);
  auto a = Parallelize(&h.ctx(), data, 4).Map([](const int& x) { return x * 3; });
  a.Cache();
  ASSERT_TRUE(a.Materialize().ok());
  ft.CheckpointRddNow(a.raw());
  WaitForState(a.raw(), CheckpointState::kSaved);
  ASSERT_EQ(a.raw()->checkpoint_state(), CheckpointState::kSaved);

  // Lose the cluster; the downstream job must restore — and, finding rot,
  // recompute.
  h.RevokeNodes(4);
  h.AddNode();
  auto b = a.Map([](const int& x) { return x + 11; });
  auto out = b.Collect();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, reference);

  EXPECT_GE(h.ctx().counters().write_retries.load(), 1u);
  EXPECT_GE(h.ctx().counters().restores_fallen_back.load(), 1u);
  EXPECT_GE(h.ctx().counters().checkpoints_quarantined.load(), 1u);
  EXPECT_GE(injector.GetStats().objects_corrupted, 1u);
  ExpectNoPartialCheckpointDirs(h.dfs());
}

}  // namespace
}  // namespace flint
