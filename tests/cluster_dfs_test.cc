// Tests for the cluster-lifecycle substrate (timer queue, node manager
// mechanics) and the DFS checkpoint store.

#include <gtest/gtest.h>

#include <atomic>

#include "src/cluster/cluster_manager.h"
#include "src/cluster/timer_queue.h"
#include "src/dfs/dfs.h"
#include "tests/test_util.h"

namespace flint {
namespace {

// --- TimerQueue ---

TEST(TimerQueueTest, FiresInDeadlineOrder) {
  TimerQueue timers;
  std::mutex mu;
  std::vector<int> order;
  timers.ScheduleAfter(WallDuration(0.05), [&] {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(2);
  });
  timers.ScheduleAfter(WallDuration(0.01), [&] {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(1);
  });
  timers.Drain();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(TimerQueueTest, CancelPreventsFiring) {
  TimerQueue timers;
  std::atomic<int> fired{0};
  const uint64_t id = timers.ScheduleAfter(WallDuration(0.2), [&] { fired.fetch_add(1); });
  EXPECT_TRUE(timers.Cancel(id));
  EXPECT_FALSE(timers.Cancel(id));  // already gone
  timers.Drain();
  EXPECT_EQ(fired.load(), 0);
}

TEST(TimerQueueTest, DrainWaitsForCallbacks) {
  TimerQueue timers;
  std::atomic<bool> done{false};
  timers.ScheduleAfter(WallDuration(0.02), [&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    done.store(true);
  });
  timers.Drain();
  EXPECT_TRUE(done.load());
}

// --- ClusterManager ---

class RecordingListener : public ClusterListener {
 public:
  void OnNodeAdded(const NodeInfo& node) override {
    std::lock_guard<std::mutex> lock(mu_);
    added_.push_back(node.node_id);
  }
  void OnNodeWarning(const NodeInfo& node) override {
    std::lock_guard<std::mutex> lock(mu_);
    warned_.push_back(node.node_id);
  }
  void OnNodeRevoked(const NodeInfo& node) override {
    std::lock_guard<std::mutex> lock(mu_);
    revoked_.push_back(node.node_id);
  }
  std::vector<NodeId> added() {
    std::lock_guard<std::mutex> lock(mu_);
    return added_;
  }
  std::vector<NodeId> warned() {
    std::lock_guard<std::mutex> lock(mu_);
    return warned_;
  }
  std::vector<NodeId> revoked() {
    std::lock_guard<std::mutex> lock(mu_);
    return revoked_;
  }

 private:
  std::mutex mu_;
  std::vector<NodeId> added_;
  std::vector<NodeId> warned_;
  std::vector<NodeId> revoked_;
};

TimeConfig FastTime() {
  TimeConfig tc;
  tc.seconds_per_model_hour = 0.05;  // warning/acquisition in milliseconds
  return tc;
}

TEST(ClusterManagerTest, WarningPrecedesRevocation) {
  ClusterManager cluster(FastTime());
  RecordingListener listener;
  cluster.SetListener(&listener);
  const NodeId id = cluster.AddNode(0, 1 * kMiB);
  EXPECT_TRUE(cluster.IsLive(id));
  cluster.Revoke({id}, /*with_warning=*/true);
  // Warning is synchronous; the node is still live during the notice period.
  EXPECT_EQ(listener.warned(), (std::vector<NodeId>{id}));
  EXPECT_TRUE(cluster.IsLive(id));
  cluster.DrainEvents();
  EXPECT_FALSE(cluster.IsLive(id));
  EXPECT_EQ(listener.revoked(), (std::vector<NodeId>{id}));
}

TEST(ClusterManagerTest, HardRevocationSkipsWarning) {
  ClusterManager cluster(FastTime());
  RecordingListener listener;
  cluster.SetListener(&listener);
  const NodeId id = cluster.AddNode(0, 1 * kMiB);
  cluster.Revoke({id}, /*with_warning=*/false);
  EXPECT_TRUE(listener.warned().empty());
  EXPECT_EQ(listener.revoked(), (std::vector<NodeId>{id}));
}

TEST(ClusterManagerTest, RevokeMarketHitsOnlyThatMarket) {
  ClusterManager cluster(FastTime());
  RecordingListener listener;
  cluster.SetListener(&listener);
  cluster.AddNode(/*market=*/0, 1 * kMiB);
  cluster.AddNode(/*market=*/1, 1 * kMiB);
  cluster.AddNode(/*market=*/0, 1 * kMiB);
  cluster.RevokeMarket(0, /*with_warning=*/false);
  cluster.DrainEvents();
  EXPECT_EQ(cluster.NumLiveNodes(), 1u);
  EXPECT_EQ(cluster.LiveNodes().front().market, 1);
}

TEST(ClusterManagerTest, DelayedAddHonorsAcquisitionDelay) {
  ClusterManager cluster(FastTime());
  RecordingListener listener;
  cluster.SetListener(&listener);
  const NodeId pending = cluster.AddNodeAfterDelay(2, 1 * kMiB);
  EXPECT_FALSE(cluster.IsLive(pending));
  cluster.DrainEvents();
  EXPECT_TRUE(cluster.IsLive(pending));
  EXPECT_EQ(cluster.LiveNodes().front().market, 2);
}

TEST(ClusterManagerTest, RevokingUnknownNodeIsANoop) {
  ClusterManager cluster(FastTime());
  cluster.Revoke({12345}, true);
  cluster.DrainEvents();
  EXPECT_EQ(cluster.NumLiveNodes(), 0u);
}

// --- Dfs ---

std::unique_ptr<Dfs> FastDfs() {
  auto dfs = std::make_unique<Dfs>(DfsConfig{});
  dfs->set_model_latency(false);
  return dfs;
}

DfsObject BytesObject(size_t n) {
  auto vec = std::make_shared<const std::vector<uint8_t>>(n, 0xab);
  return MakeDfsObject(vec);
}

TEST(DfsTest, PutGetRoundTrips) {
  auto dfs_ptr = FastDfs();
  Dfs& dfs = *dfs_ptr;
  ASSERT_TRUE(dfs.Put("a/b", BytesObject(100)).ok());
  auto got = dfs.Get("a/b");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size_bytes, 100u);
  EXPECT_TRUE(dfs.Exists("a/b"));
  EXPECT_FALSE(dfs.Exists("a/c"));
}

TEST(DfsTest, GetMissingIsNotFound) {
  auto dfs_ptr = FastDfs();
  Dfs& dfs = *dfs_ptr;
  EXPECT_EQ(dfs.Get("nope").status().code(), StatusCode::kNotFound);
}

TEST(DfsTest, OverwriteReplacesAccounting) {
  auto dfs_ptr = FastDfs();
  Dfs& dfs = *dfs_ptr;
  ASSERT_TRUE(dfs.Put("x", BytesObject(100)).ok());
  ASSERT_TRUE(dfs.Put("x", BytesObject(40)).ok());
  EXPECT_EQ(dfs.TotalBytes(), 40u);
  EXPECT_EQ(dfs.PeakBytes(), 100u);
  EXPECT_EQ(dfs.NumObjects(), 1u);
}

TEST(DfsTest, DeletePrefixRemovesSubtree) {
  auto dfs_ptr = FastDfs();
  Dfs& dfs = *dfs_ptr;
  ASSERT_TRUE(dfs.Put("ckpt/rdd_1/p0", BytesObject(10)).ok());
  ASSERT_TRUE(dfs.Put("ckpt/rdd_1/p1", BytesObject(10)).ok());
  ASSERT_TRUE(dfs.Put("ckpt/rdd_2/p0", BytesObject(10)).ok());
  EXPECT_EQ(dfs.DeletePrefix("ckpt/rdd_1/"), 2u);
  EXPECT_EQ(dfs.NumObjects(), 1u);
  EXPECT_EQ(dfs.TotalBytes(), 10u);
  EXPECT_EQ(dfs.List("ckpt/").size(), 1u);
}

TEST(DfsTest, EmptyPathRejected) {
  auto dfs_ptr = FastDfs();
  Dfs& dfs = *dfs_ptr;
  EXPECT_EQ(dfs.Put("", BytesObject(1)).code(), StatusCode::kInvalidArgument);
}

TEST(DfsTest, StorageCostUsesPeakAndReplication) {
  DfsConfig config;
  config.replication = 3;
  config.storage_price_gb_month = 0.10;
  Dfs dfs(config);
  dfs.set_model_latency(false);
  ASSERT_TRUE(dfs.Put("x", BytesObject(512 * 1024 * 1024)).ok());  // 0.5 GB
  EXPECT_NEAR(dfs.MonthlyStorageCost(), 0.5 * 3 * 0.10, 1e-9);
}

TEST(DfsTest, TrafficCountersAccumulate) {
  auto dfs_ptr = FastDfs();
  Dfs& dfs = *dfs_ptr;
  ASSERT_TRUE(dfs.Put("x", BytesObject(100)).ok());
  (void)dfs.Get("x");
  (void)dfs.Get("x");
  EXPECT_EQ(dfs.BytesWritten(), 100u);
  EXPECT_EQ(dfs.BytesRead(), 200u);
}

}  // namespace
}  // namespace flint
