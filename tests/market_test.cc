// Tests for the spot-market simulator: price replay, revocation prediction,
// EC2-style billing, acquisition semantics, and the marketplace aggregates.

#include <gtest/gtest.h>

#include <cmath>

#include "src/market/marketplace.h"
#include "tests/test_util.h"

namespace flint {
namespace {

using testing::MakeSpikyMarket;

SpotMarket SpikyMarket() {
  // Base 0.1, spike to 5.0 during hours [10, 12), 48 hours total.
  return SpotMarket(MakeSpikyMarket("m", /*on_demand=*/1.0, /*base=*/0.1, /*spike=*/5.0,
                                    /*hours=*/48, /*spike_begin=*/10, /*spike_end=*/12));
}

TEST(SpotMarketTest, NextRevocationFindsTheSpike) {
  SpotMarket market = SpikyMarket();
  Rng rng(1);
  EXPECT_DOUBLE_EQ(market.NextRevocation(0.0, 1.0, rng), 10.0);
  EXPECT_DOUBLE_EQ(market.NextRevocation(5.5, 1.0, rng), 10.0);
  // During the spike, revocation is immediate.
  EXPECT_DOUBLE_EQ(market.NextRevocation(10.5, 1.0, rng), 10.5);
  // After the spike, the trace wraps: next crossing is 48 + 10.
  EXPECT_DOUBLE_EQ(market.NextRevocation(13.0, 1.0, rng), 58.0);
}

TEST(SpotMarketTest, HighBidSurvivesTheSpike) {
  SpotMarket market = SpikyMarket();
  Rng rng(1);
  EXPECT_TRUE(std::isinf(market.NextRevocation(0.0, 6.0, rng)));
}

TEST(SpotMarketTest, NextAvailabilitySkipsTheSpike) {
  SpotMarket market = SpikyMarket();
  EXPECT_DOUBLE_EQ(market.NextAvailability(10.5, 1.0), 12.0);
  EXPECT_DOUBLE_EQ(market.NextAvailability(3.0, 1.0), 3.0);
}

TEST(SpotMarketTest, BillingChargesHourlyAtStartPrice) {
  SpotMarket market = SpikyMarket();
  // Hold [0, 3): three hours at 0.1 each.
  EXPECT_NEAR(market.BillServer(0.0, 3.0, /*revoked=*/false), 0.3, 1e-12);
  // Partial final hour is billed when the user terminates...
  EXPECT_NEAR(market.BillServer(0.0, 2.5, /*revoked=*/false), 0.3, 1e-12);
  // ...but free when the provider revokes (EC2 policy).
  EXPECT_NEAR(market.BillServer(0.0, 2.5, /*revoked=*/true), 0.2, 1e-12);
  EXPECT_DOUBLE_EQ(market.BillServer(5.0, 5.0, false), 0.0);
}

TEST(SpotMarketTest, GceFixedPricePoolsSampleLifetimes) {
  MarketDesc desc;
  desc.name = "preemptible";
  desc.on_demand_price = 0.05;
  desc.fixed_price = true;
  desc.fixed_price_value = 0.015;
  desc.fixed_mttf_hours = 21.0;
  desc.max_lifetime_hours = 24.0;
  SpotMarket market(std::move(desc));
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const SimTime rev = market.NextRevocation(100.0, 0.0, rng);
    EXPECT_GT(rev, 100.0);
    EXPECT_LE(rev, 124.0);  // 24h cap
  }
  EXPECT_DOUBLE_EQ(market.PriceAt(55.0), 0.015);
  const BidStats stats = market.StatsAtBid(1.0);
  EXPECT_DOUBLE_EQ(stats.mttf_hours, 21.0);
}

TEST(MarketplaceTest, AcquireOnDemandNeverRevokes) {
  Marketplace mp({}, 0.35, 1);
  auto lease = mp.Acquire(kOnDemandMarket, 0.35, 5.0);
  ASSERT_TRUE(lease.ok());
  EXPECT_TRUE(std::isinf(lease->revocation));
  // Two full hours on demand.
  EXPECT_NEAR(mp.Cost(*lease, 6.5), 2 * 0.35, 1e-12);
}

TEST(MarketplaceTest, AcquireRespectsBidCap) {
  std::vector<MarketDesc> markets = {MakeSpikyMarket("m", 1.0, 0.1, 5.0, 48, 10, 12)};
  Marketplace mp(std::move(markets), 1.0, 1);
  EXPECT_EQ(mp.Acquire(0, 11.0, 0.0).status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(mp.Acquire(0, 10.0, 0.0).ok());
}

TEST(MarketplaceTest, AcquireDuringSpikeIsUnavailable) {
  std::vector<MarketDesc> markets = {MakeSpikyMarket("m", 1.0, 0.1, 5.0, 48, 10, 12)};
  Marketplace mp(std::move(markets), 1.0, 1);
  EXPECT_EQ(mp.Acquire(0, 1.0, 10.5).status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(mp.Acquire(0, 1.0, 13.0).ok());
}

TEST(MarketplaceTest, RevokedLeaseFinalPartialHourIsFree) {
  std::vector<MarketDesc> markets = {MakeSpikyMarket("m", 1.0, 0.1, 5.0, 48, 10, 12)};
  Marketplace mp(std::move(markets), 1.0, 1);
  auto lease = mp.Acquire(0, 1.0, 8.0);
  ASSERT_TRUE(lease.ok());
  EXPECT_DOUBLE_EQ(lease->revocation, 10.0);
  // Held [8, 10): 2 full hours billed; billing caps at the revocation even if
  // the caller passes a later end.
  EXPECT_NEAR(mp.Cost(*lease, 11.0), 0.2, 1e-12);
}

TEST(MarketplaceTest, WindowStatsSeeOnlyRecentHistory) {
  // Spike early in the trace; a window that excludes it sees infinite MTTF.
  std::vector<MarketDesc> markets = {MakeSpikyMarket("m", 1.0, 0.1, 5.0, 200, 5, 7)};
  Marketplace mp(std::move(markets), 1.0, 1);
  const BidStats recent = mp.WindowStats(0, /*now=*/150.0, /*window=*/50.0, 1.0);
  EXPECT_TRUE(std::isinf(recent.mttf_hours));
  const BidStats full = mp.Stats(0, 1.0);
  EXPECT_FALSE(std::isinf(full.mttf_hours));
}

TEST(MarketplaceTest, PriceNearAverageFlagsSpikes) {
  std::vector<MarketDesc> markets = {MakeSpikyMarket("m", 1.0, 0.1, 5.0, 48, 10, 12)};
  Marketplace mp(std::move(markets), 1.0, 1);
  EXPECT_TRUE(mp.PriceNearAverage(0, /*now=*/5.0, Hours(48), 0.10));
  EXPECT_FALSE(mp.PriceNearAverage(0, /*now=*/10.5, Hours(48), 0.10));
}

TEST(MarketplaceTest, CorrelationMatrixIsSymmetricWithUnitDiagonal) {
  Marketplace mp(RegionMarkets(6, 9), 0.35, 9);
  const auto corr = mp.CorrelationMatrix();
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(corr[i][i], 1.0);
    for (size_t j = 0; j < 6; ++j) {
      EXPECT_DOUBLE_EQ(corr[i][j], corr[j][i]);
      EXPECT_LE(std::fabs(corr[i][j]), 1.0 + 1e-9);
    }
  }
}

}  // namespace
}  // namespace flint
