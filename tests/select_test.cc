// Tests for the server-selection policies (Sec 3.1.2 / 3.2.2) against
// hand-crafted market sets where the optimal answer is known.

#include <gtest/gtest.h>

#include <cmath>

#include "src/select/selection.h"
#include "src/trace/market_catalog.h"
#include "tests/test_util.h"

namespace flint {
namespace {

using testing::MakeSpikyMarket;

// Three markets:
//   0 "cheap-volatile": base 0.05, spikes every ~20h.
//   1 "mid-stable":     base 0.10, no spikes.
//   2 "pricey-stable":  base 0.20, no spikes.
Marketplace TestMarketplace() {
  std::vector<MarketDesc> markets;
  {
    std::vector<double> prices(24 * 40, 0.05);
    for (size_t i = 0; i < prices.size(); i += 20) {
      prices[i] = 5.0;  // short spike every 20 hours
    }
    MarketDesc m;
    m.name = "cheap-volatile";
    m.on_demand_price = 1.0;
    m.trace = testing::MakeTrace(std::move(prices));
    markets.push_back(std::move(m));
  }
  markets.push_back(MakeSpikyMarket("mid-stable", 1.0, 0.10, 0.10, 24 * 40, 0, 0));
  markets.push_back(MakeSpikyMarket("pricey-stable", 1.0, 0.20, 0.20, 24 * 40, 0, 0));
  return Marketplace(std::move(markets), /*on_demand_price=*/1.0, /*seed=*/1);
}

JobProfile CheapCheckpointJob() {
  JobProfile job;
  job.delta_hours = Minutes(1);
  job.rd_hours = Minutes(2);
  return job;
}

TEST(SelectorTest, BatchPicksMinimumExpectedCost) {
  Marketplace mp = TestMarketplace();
  ServerSelector selector(&mp, SelectionConfig{});
  // With a cheap checkpoint, the volatile market's price advantage wins:
  // E[C] ~ 0.05 * small factor < 0.10.
  // Probe off-spike (the spike sits on exact 20h multiples).
  auto best = selector.SelectBatch(Hours(24.0 * 20) + 10.5, CheapCheckpointJob());
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->id, 0);
  EXPECT_LT(best->expected_unit_cost, 0.10);
}

TEST(SelectorTest, ExpensiveRecoveryFlipsTheChoice) {
  Marketplace mp = TestMarketplace();
  ServerSelector selector(&mp, SelectionConfig{});
  JobProfile heavy;
  heavy.delta_hours = Hours(2.0);  // checkpointing is brutal
  heavy.rd_hours = Hours(1.0);
  auto best = selector.SelectBatch(Hours(24.0 * 20), heavy);
  ASSERT_TRUE(best.ok());
  // The volatile market's Eq.1 factor explodes; a stable market wins.
  EXPECT_EQ(best->id, 1);
}

TEST(SelectorTest, OnDemandWinsWhenEverySpotMarketIsWorse) {
  // One market that is almost always spiking.
  std::vector<MarketDesc> markets = {
      MakeSpikyMarket("awful", 1.0, 0.9, 5.0, 100, 1, 99)};
  Marketplace mp(std::move(markets), 1.0, 1);
  ServerSelector selector(&mp, SelectionConfig{});
  auto best = selector.SelectBatch(Hours(50), CheapCheckpointJob());
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->id, kOnDemandMarket);
}

TEST(SelectorTest, EvaluationsSortedByExpectedCost) {
  Marketplace mp = TestMarketplace();
  ServerSelector selector(&mp, SelectionConfig{});
  auto evs = selector.EvaluateMarkets(Hours(24.0 * 20), CheapCheckpointJob());
  ASSERT_GE(evs.size(), 3u);
  for (size_t i = 1; i < evs.size(); ++i) {
    EXPECT_LE(evs[i - 1].expected_unit_cost, evs[i].expected_unit_cost);
  }
  // The on-demand pool is always present, with factor exactly 1.
  bool saw_on_demand = false;
  for (const auto& ev : evs) {
    if (ev.id == kOnDemandMarket) {
      saw_on_demand = true;
      EXPECT_DOUBLE_EQ(ev.expected_factor, 1.0);
    }
  }
  EXPECT_TRUE(saw_on_demand);
}

TEST(SelectorTest, DegenerateWindowMarketRanksLastNotFirst) {
  // "mirage": the price just dropped below the bid at `now`, but every sample
  // in the history window (which ends at `now`, exclusive) is above it. The
  // market passes admission (available now, and PriceNearAverage compares at
  // MaxBid), yet WindowStats at the actual bid sees zero held time:
  // avg_price = 0, mttf = 0, so expected_unit_cost = 1.0 * 0 = 0 — a "free"
  // market that pre-sanitization won the ranking outright.
  std::vector<double> prices(24 * 40, 5.0);
  const size_t now_hour = 24 * 20;
  prices[now_hour] = 0.5;
  std::vector<MarketDesc> markets;
  MarketDesc mirage;
  mirage.name = "mirage";
  mirage.on_demand_price = 1.0;
  mirage.trace = testing::MakeTrace(std::move(prices));
  markets.push_back(std::move(mirage));
  markets.push_back(MakeSpikyMarket("honest", 1.0, 0.20, 0.20, 24 * 40, 0, 0));
  Marketplace mp(std::move(markets), 1.0, 1);
  ServerSelector selector(&mp, SelectionConfig{});
  const SimTime now = Hours(static_cast<double>(now_hour)) + 0.5;

  auto evs = selector.EvaluateMarkets(now, CheapCheckpointJob());
  ASSERT_EQ(evs.size(), 3u);  // mirage, honest, on-demand
  EXPECT_EQ(evs.front().id, 1);              // honest wins
  EXPECT_EQ(evs.back().id, 0);               // mirage ranks last, not first
  EXPECT_EQ(evs[1].id, kOnDemandMarket);     // even on-demand beats it

  auto best = selector.SelectBatch(now, CheapCheckpointJob());
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->id, 1);
}

TEST(SelectorTest, ManyDegenerateEvaluationsSortSafely) {
  // Several degenerate markets at once: pre-fix each contributed a 0 (or
  // NaN, via factor * price arithmetic on an empty window) to std::sort's
  // comparator. NaN breaks strict weak ordering — UB — so the regression is
  // "ranking is deterministic and on-demand still wins".
  std::vector<MarketDesc> markets;
  for (int i = 0; i < 4; ++i) {
    std::vector<double> prices(24 * 40, 5.0);
    prices[24 * 20] = 0.5;  // below-bid only at the probe hour
    MarketDesc m;
    m.name = "mirage-" + std::to_string(i);
    m.on_demand_price = 1.0;
    m.trace = testing::MakeTrace(std::move(prices));
    markets.push_back(std::move(m));
  }
  Marketplace mp(std::move(markets), 1.0, 1);
  ServerSelector selector(&mp, SelectionConfig{});
  const SimTime now = Hours(24.0 * 20) + 0.5;
  auto evs = selector.EvaluateMarkets(now, CheapCheckpointJob());
  ASSERT_EQ(evs.size(), 5u);
  EXPECT_EQ(evs.front().id, kOnDemandMarket);
  // Degenerate entries keep a deterministic id order in the tail.
  for (size_t i = 2; i < evs.size(); ++i) {
    EXPECT_LT(evs[i - 1].id, evs[i].id);
  }
  auto best = selector.SelectBatch(now, CheapCheckpointJob());
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->id, kOnDemandMarket);
}

TEST(SelectorTest, SpotFleetBaselinesIgnoreRevocationCost) {
  Marketplace mp = TestMarketplace();
  ServerSelector selector(&mp, SelectionConfig{});
  auto cheapest = selector.SelectCheapest(Hours(24.0 * 20) + 10.5, CheapCheckpointJob());
  ASSERT_TRUE(cheapest.ok());
  EXPECT_EQ(cheapest->id, 0);  // lowest $/h, volatility be damned
  auto stable = selector.SelectLeastVolatile(Hours(24.0 * 20) + 10.5, CheapCheckpointJob());
  ASSERT_TRUE(stable.ok());
  EXPECT_NE(stable->id, 0);  // any never-revoking market beats the volatile one
  EXPECT_TRUE(std::isinf(stable->mttf_hours));
}

TEST(SelectorTest, ReplacementExcludesTheRevokedMarket) {
  Marketplace mp = TestMarketplace();
  ServerSelector selector(&mp, SelectionConfig{});
  auto repl = selector.SelectReplacement(SelectionPolicyKind::kFlintBatch, Hours(24.0 * 20),
                                         CheapCheckpointJob(), {0});
  ASSERT_TRUE(repl.ok());
  EXPECT_NE(repl->id, 0);
}

TEST(SelectorTest, BidPolicyDefaultsToOnDemandPrice) {
  Marketplace mp = TestMarketplace();
  ServerSelector selector(&mp, SelectionConfig{});
  EXPECT_DOUBLE_EQ(selector.BidFor(0), 1.0);
  SelectionConfig doubled;
  doubled.bid_multiple = 2.0;
  ServerSelector aggressive(&mp, doubled);
  EXPECT_DOUBLE_EQ(aggressive.BidFor(0), 2.0);
}

TEST(SelectorTest, UncorrelatedSetAvoidsCorrelatedPairs) {
  SyntheticTraceParams params;
  params.duration = Hours(24.0 * 60);
  params.spikes_per_hour = 1.0 / 25.0;
  params.seed = 31;
  // Markets 0 and 1 share a spike process; 2..5 are independent.
  auto traces = GenerateMarketTraces(params, 6, {{0, 1}});
  std::vector<MarketDesc> markets;
  for (size_t i = 0; i < traces.size(); ++i) {
    MarketDesc m;
    m.name = "m" + std::to_string(i);
    m.on_demand_price = 0.35;
    m.trace = std::move(traces[i]);
    markets.push_back(std::move(m));
  }
  Marketplace mp(std::move(markets), 0.35, 31);
  SelectionConfig config;
  config.max_candidate_set = 5;
  ServerSelector selector(&mp, config);
  const std::vector<MarketId> set = selector.UncorrelatedSet(5);
  int linked = 0;
  for (MarketId id : set) {
    if (id == 0 || id == 1) {
      ++linked;
    }
  }
  // At most one of the correlated pair may appear.
  EXPECT_LE(linked, 1);
}

TEST(SelectorTest, InteractiveMixReducesVariance) {
  // All-volatile region: every pool has a finite MTTF, so diversification
  // has variance to remove (a calm pool with infinite MTTF would already
  // have zero variance and the greedy search would rightly stop at m=1).
  SyntheticTraceParams params;
  params.duration = Hours(24.0 * 90);
  params.spikes_per_hour = 1.0 / 30.0;
  params.seed = 41;
  auto traces = GenerateMarketTraces(params, 8);
  std::vector<MarketDesc> descs;
  for (size_t i = 0; i < traces.size(); ++i) {
    MarketDesc m;
    m.name = "v" + std::to_string(i);
    m.on_demand_price = 0.35;
    m.trace = std::move(traces[i]);
    descs.push_back(std::move(m));
  }
  Marketplace mp(std::move(descs), 0.35, 5);
  ServerSelector selector(&mp, SelectionConfig{});
  const SimTime now = Hours(24.0 * 30);
  auto mix = selector.SelectInteractive(now, CheapCheckpointJob());
  ASSERT_TRUE(mix.ok());
  ASSERT_GE(mix->markets.size(), 2u);
  // The chosen mix must beat its own first market alone on variance and stay
  // below the on-demand cost.
  const MixEvaluation solo = selector.EvaluateMix({mix->markets.front()}, now,
                                                  CheapCheckpointJob());
  EXPECT_LT(mix->runtime_variance, solo.runtime_variance);
  EXPECT_LT(mix->expected_unit_cost, mp.on_demand_price());
}

TEST(SelectorTest, MixEvaluationUsesHarmonicMttf) {
  Marketplace mp = TestMarketplace();
  ServerSelector selector(&mp, SelectionConfig{});
  const auto mix = selector.EvaluateMix({1, 2}, Hours(24.0 * 20), CheapCheckpointJob());
  // Both markets never revoke in-trace -> aggregate MTTF infinite, factor 1.
  EXPECT_TRUE(std::isinf(mix.aggregate_mttf_hours));
  EXPECT_DOUBLE_EQ(mix.expected_factor, 1.0);
  EXPECT_NEAR(mix.expected_unit_cost, (0.10 + 0.20) / 2.0, 1e-6);
}

}  // namespace
}  // namespace flint
