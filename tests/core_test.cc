// End-to-end tests for the managed-service layer: FlintCluster wiring, node
// manager provisioning/restoration, billing, and full jobs under policy
// control with market revocations.

#include <gtest/gtest.h>

#include <numeric>
#include <thread>

#include "src/core/flint_cluster.h"
#include "src/engine/typed_rdd.h"
#include "src/workloads/kmeans.h"
#include "tests/test_util.h"

namespace flint {
namespace {

FlintOptions FastOptions(SelectionPolicyKind policy) {
  FlintOptions options;
  options.seed = 77;
  options.time.seconds_per_model_hour = 0.05;  // fast lifecycle events
  options.engine.model_latency = false;
  options.engine.block_defaults.model_latency = false;
  options.dfs.write_bandwidth_bytes_per_s = 0.0;  // disable modelled sleeps
  options.dfs.read_bandwidth_bytes_per_s = 0.0;
  options.nodes.cluster_size = 6;
  options.nodes.policy = policy;
  options.checkpoint.policy = CheckpointPolicyKind::kFlint;
  options.checkpoint.mttf_hours = 50.0;
  return options;
}

TEST(FlintClusterTest, StartProvisionsRequestedClusterSize) {
  FlintCluster cluster(FastOptions(SelectionPolicyKind::kFlintBatch));
  ASSERT_TRUE(cluster.Start().ok());
  EXPECT_EQ(cluster.cluster().NumLiveNodes(), 6u);
  // Batch policy: homogeneous cluster (one market).
  EXPECT_EQ(cluster.nodes().ActiveMarkets().size(), 1u);
}

TEST(FlintClusterTest, InteractivePolicySpansMarkets) {
  FlintCluster cluster(FastOptions(SelectionPolicyKind::kFlintInteractive));
  ASSERT_TRUE(cluster.Start().ok());
  EXPECT_EQ(cluster.cluster().NumLiveNodes(), 6u);
  EXPECT_GE(cluster.nodes().ActiveMarkets().size(), 2u);
}

TEST(FlintClusterTest, DoubleStartFails) {
  FlintCluster cluster(FastOptions(SelectionPolicyKind::kFlintBatch));
  ASSERT_TRUE(cluster.Start().ok());
  EXPECT_EQ(cluster.nodes().Start().code(), StatusCode::kFailedPrecondition);
}

TEST(FlintClusterTest, RevocationTriggersReplacement) {
  FlintCluster cluster(FastOptions(SelectionPolicyKind::kFlintBatch));
  ASSERT_TRUE(cluster.Start().ok());
  const auto before = cluster.nodes().ActiveMarkets();
  ASSERT_EQ(before.size(), 1u);
  cluster.cluster().RevokeMarket(before.front(), /*with_warning=*/true);
  cluster.cluster().DrainEvents();
  // Replacements restore the cluster to size N from a different market.
  EXPECT_EQ(cluster.cluster().NumLiveNodes(), 6u);
  const auto after = cluster.nodes().ActiveMarkets();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_NE(after.front(), before.front());
}

TEST(FlintClusterTest, CostsAccrueAndSpotBeatsOnDemand) {
  FlintCluster cluster(FastOptions(SelectionPolicyKind::kFlintBatch));
  ASSERT_TRUE(cluster.Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(60));  // > 1 model hour
  const double spot = cluster.nodes().TotalCost();
  const double od = cluster.nodes().OnDemandEquivalentCost();
  EXPECT_GT(spot, 0.0);
  EXPECT_GT(od, 0.0);
  EXPECT_LT(spot, od);  // the whole point of the system
}

TEST(FlintClusterTest, RunMeasuredReportsJobDeltas) {
  FlintCluster cluster(FastOptions(SelectionPolicyKind::kFlintBatch));
  ASSERT_TRUE(cluster.Start().ok());
  JobReport report = cluster.RunMeasured([](FlintContext& ctx) {
    std::vector<int> data(5000);
    std::iota(data.begin(), data.end(), 0);
    auto count = Parallelize(&ctx, data, 6)
                     .Filter([](const int& x) { return x % 2 == 0; })
                     .Count();
    if (!count.ok()) {
      return count.status();
    }
    return *count == 2500 ? Status::Ok() : Internal("wrong count");
  });
  EXPECT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_GT(report.tasks_run, 0u);
  EXPECT_GT(report.wall_seconds, 0.0);
}

TEST(FlintClusterTest, JobSurvivesWholeClusterRevocationUnderManagement) {
  FlintCluster cluster(FastOptions(SelectionPolicyKind::kFlintBatch));
  ASSERT_TRUE(cluster.Start().ok());
  KMeansParams params;
  params.num_points = 5000;
  params.k = 3;
  params.partitions = 6;
  params.iterations = 3;

  // Reference answer on an untouched cluster.
  double expect_inertia = 0.0;
  {
    FlintCluster reference(FastOptions(SelectionPolicyKind::kFlintBatch));
    ASSERT_TRUE(reference.Start().ok());
    auto r = RunKMeans(reference.ctx(), params);
    ASSERT_TRUE(r.ok());
    expect_inertia = r->inertia;
  }

  std::thread chaos([&cluster] {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    auto markets = cluster.nodes().ActiveMarkets();
    if (!markets.empty()) {
      cluster.cluster().RevokeMarket(markets.front(), /*with_warning=*/true);
    }
  });
  auto result = RunKMeans(cluster.ctx(), params);
  chaos.join();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_DOUBLE_EQ(result->inertia, expect_inertia);
  // Replacements can join before the originals' revocation timers fire, so
  // settle the lifecycle queue before counting.
  cluster.cluster().DrainEvents();
  EXPECT_EQ(cluster.cluster().NumLiveNodes(), 6u);
}

TEST(FlintClusterTest, MarketDrivenRevocationsReplaceNodesAutomatically) {
  FlintOptions options = FastOptions(SelectionPolicyKind::kFlintBatch);
  options.nodes.market_driven_revocations = true;
  // Volatile single-market region so revocations happen within the test.
  SyntheticTraceParams params;
  params.duration = Hours(24.0 * 30);
  params.spikes_per_hour = 1.0 / 2.0;  // every ~2 model hours = 0.1 s here
  params.seed = 5;
  MarketDesc desc;
  desc.name = "volatile";
  desc.on_demand_price = 0.35;
  desc.trace = GenerateSyntheticTrace(params);
  options.markets = {desc};
  FlintCluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  cluster.cluster().DrainEvents();
  // Nodes were revoked by the market and replaced; the cluster holds at N.
  EXPECT_EQ(cluster.cluster().NumLiveNodes(), 6u);
}

// Restoration exclusion is per-market: an unrelated node joining must not
// re-admit a market whose own replacement is still pending (the old code
// cleared the entire exclusion set on any join).
TEST(FlintClusterTest, ExclusionClearsPerMarketNotGlobally) {
  FlintOptions options = FastOptions(SelectionPolicyKind::kFlintBatch);
  options.time.seconds_per_model_hour = 10.0;  // replacements stay pending during the test
  FlintCluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  auto live = cluster.cluster().LiveNodes();
  ASSERT_FALSE(live.empty());
  const NodeInfo victim = live.front();
  ASSERT_NE(victim.market, kOnDemandMarket);

  cluster.nodes().OnNodeWarning(victim);
  EXPECT_EQ(cluster.nodes().ExcludedMarkets(), std::vector<MarketId>{victim.market});

  NodeInfo unrelated;
  unrelated.node_id = 424242;  // no pending replacement maps to this node
  unrelated.market = victim.market + 1;
  cluster.nodes().OnNodeAdded(unrelated);
  EXPECT_EQ(cluster.nodes().ExcludedMarkets(), std::vector<MarketId>{victim.market});
}

// The exclusion also lapses after the configured cooldown even if the
// market's replacement never lands (e.g. it fell back to on-demand).
TEST(FlintClusterTest, ExclusionLapsesAfterCooldown) {
  FlintOptions options = FastOptions(SelectionPolicyKind::kFlintBatch);
  options.time.seconds_per_model_hour = 10.0;
  options.nodes.revocation_exclusion_cooldown = Hours(0.0002);  // 20 ms wall
  FlintCluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  auto live = cluster.cluster().LiveNodes();
  ASSERT_FALSE(live.empty());
  const NodeInfo victim = live.front();

  cluster.nodes().OnNodeWarning(victim);
  ASSERT_EQ(cluster.nodes().ExcludedMarkets().size(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  NodeInfo unrelated;
  unrelated.node_id = 424243;
  unrelated.market = victim.market;
  cluster.nodes().OnNodeAdded(unrelated);  // triggers lazy pruning
  EXPECT_TRUE(cluster.nodes().ExcludedMarkets().empty());
}

}  // namespace
}  // namespace flint
