// Edge cases and stress shapes for the engine: degenerate sizes, deep
// lineage, nested shuffles, unpersist interplay with checkpoints, single-node
// clusters, and parameterized workload sweeps.

#include <gtest/gtest.h>

#include <numeric>

#include "src/checkpoint/ft_manager.h"
#include "src/engine/shuffle_manager.h"
#include "src/engine/typed_rdd_ops.h"
#include "src/obs/metrics.h"
#include "src/workloads/kmeans.h"
#include "src/workloads/pagerank.h"
#include "tests/test_util.h"

namespace flint {
namespace {

using testing::EngineHarness;

// Regression for the registration-sentinel bug: RegisterShuffle used
// outputs.empty() as "not yet registered", so a zero-map shuffle (whose
// outputs vector is legitimately empty forever) was re-initialized on every
// call, and a repeat registration with a different shape silently clobbered
// num_reduces under live map outputs.
TEST(ShuffleRegistryTest, ZeroMapShuffleIsCompleteAndFetchable) {
  ShuffleManager sm;
  sm.RegisterShuffle(7, /*num_maps=*/0, /*num_reduces=*/3);
  EXPECT_TRUE(sm.IsComplete(7));
  EXPECT_TRUE(sm.MissingMaps(7).empty());
  auto buckets = sm.Fetch(7, 0);
  ASSERT_TRUE(buckets.ok()) << buckets.status().ToString();
  EXPECT_TRUE(buckets->empty());
  // Identical repeat registrations are idempotent, not re-initializations.
  sm.RegisterShuffle(7, 0, 3);
  sm.RegisterShuffle(7, 0, 3);
  EXPECT_EQ(sm.NumShuffles(), 1u);
  EXPECT_TRUE(sm.IsComplete(7));
}

TEST(ShuffleRegistryTest, ConflictingReregistrationKeepsFirstShape) {
  MetricsRegistry::Global().ResetForTest();
  Counter* reregistered =
      MetricsRegistry::Global().GetCounter("flint_shuffle_reregistered");
  ShuffleManager sm;
  sm.RegisterShuffle(1, /*num_maps=*/2, /*num_reduces=*/2);
  sm.RegisterShuffle(1, /*num_maps=*/5, /*num_reduces=*/9);  // differing duplicate
  EXPECT_EQ(reregistered->Value(), 1u);
  // First registration wins: still 2 map slots, not 5.
  EXPECT_EQ(sm.MissingMaps(1).size(), 2u);
  sm.RegisterShuffle(1, 2, 2);  // identical duplicate: clean no-op
  EXPECT_EQ(reregistered->Value(), 1u);
}

TEST(ShuffleRegistryTest, UnknownShuffleFetchIsDataLossAndCounted) {
  ShuffleManager sm;
  EXPECT_FALSE(sm.IsComplete(99));
  auto buckets = sm.Fetch(99, 0);
  EXPECT_FALSE(buckets.ok());
  EXPECT_EQ(sm.FetchWaits(), 1u);
}

TEST(EngineEdgeTest, EmptyRddThroughFullPipeline) {
  EngineHarness h;
  auto empty = Parallelize(&h.ctx(), std::vector<std::pair<int, int>>{}, 3);
  auto reduced = ReduceByKey(empty, 2, [](int a, int b) { return a + b; });
  auto out = reduced.Collect();
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
  auto joined = Join(empty, empty, 2);
  auto count = joined.Count();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
}

TEST(EngineEdgeTest, SinglePartitionSingleNode) {
  EngineHarness h{testing::EngineHarnessOptions{.num_nodes = 1}};
  std::vector<int> data(50);
  std::iota(data.begin(), data.end(), 1);
  auto sum = Parallelize(&h.ctx(), data, 1).Reduce([](int a, int b) { return a + b; });
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 50 * 51 / 2);
}

TEST(EngineEdgeTest, MorePartitionsThanRecords) {
  EngineHarness h;
  auto rdd = Parallelize(&h.ctx(), std::vector<int>{1, 2, 3}, 10);
  auto out = rdd.Collect();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, (std::vector<int>{1, 2, 3}));
}

TEST(EngineEdgeTest, DeepNarrowLineageRecomputesCorrectly) {
  EngineHarness h;
  std::vector<int64_t> data(200);
  std::iota(data.begin(), data.end(), 0);
  auto rdd = Parallelize(&h.ctx(), data, 4);
  // 30 chained maps; nothing cached, so every action replays the chain.
  for (int i = 0; i < 30; ++i) {
    rdd = rdd.Map([](const int64_t& x) { return x + 1; });
  }
  auto out = rdd.Collect();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->front(), 30);
  EXPECT_EQ(out->back(), 229);
  // Survives a revocation too (pure recomputation, no cache).
  h.RevokeNodes(2);
  auto again = rdd.Collect();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *out);
}

TEST(EngineEdgeTest, NestedShufflesThreeDeep) {
  EngineHarness h;
  std::vector<std::pair<int, int>> data;
  for (int i = 0; i < 600; ++i) {
    data.emplace_back(i % 30, 1);
  }
  // counts by key -> re-key by count -> histogram of counts -> distinct.
  auto counts = ReduceByKey(Parallelize(&h.ctx(), data, 6), 4,
                            [](int a, int b) { return a + b; });
  auto histogram = ReduceByKey(
      counts.Map([](const std::pair<int, int>& kv) { return std::make_pair(kv.second, 1); }), 3,
      [](int a, int b) { return a + b; });
  auto out = histogram.Collect();
  ASSERT_TRUE(out.ok());
  // Every key appears exactly 600/30 = 20 times, so one histogram bucket.
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->front().first, 20);
  EXPECT_EQ(out->front().second, 30);
}

TEST(EngineEdgeTest, UnpersistThenCheckpointedReadStillWorks) {
  EngineHarness h;
  CheckpointConfig cfg;
  cfg.policy = CheckpointPolicyKind::kFlint;
  cfg.mttf_hours = 1.0;
  cfg.time.seconds_per_model_hour = 0.5;
  cfg.initial_delta_seconds = 0.001;
  FaultToleranceManager ft(&h.ctx(), cfg);
  std::vector<int> data(400);
  std::iota(data.begin(), data.end(), 0);
  auto rdd = Parallelize(&h.ctx(), data, 4).Map([](const int& x) { return x * 2; });
  rdd.Cache();
  ASSERT_TRUE(rdd.Materialize().ok());
  ft.CheckpointRddNow(rdd.raw());
  for (int i = 0; i < 200 && rdd.raw()->checkpoint_state() != CheckpointState::kSaved; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(rdd.raw()->checkpoint_state(), CheckpointState::kSaved);
  // Unpersist drops the cache; reads must come from the checkpoint.
  rdd.Unpersist();
  const uint64_t reads_before = h.ctx().counters().checkpoint_reads.load();
  auto out = rdd.Collect();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->back(), 798);
  EXPECT_GT(h.ctx().counters().checkpoint_reads.load(), reads_before);
}

TEST(EngineEdgeTest, CacheHitCountersMoveOnSecondAction) {
  EngineHarness h;
  std::vector<int> data(100);
  std::iota(data.begin(), data.end(), 0);
  auto rdd = Parallelize(&h.ctx(), data, 4);
  rdd.Cache();
  ASSERT_TRUE(rdd.Materialize().ok());
  const uint64_t hits_before = h.ctx().counters().cache_hits.load();
  ASSERT_TRUE(rdd.Count().ok());
  EXPECT_GT(h.ctx().counters().cache_hits.load(), hits_before);
}

TEST(EngineEdgeTest, OutOfRangePartitionIsRejected) {
  EngineHarness h;
  auto rdd = Parallelize(&h.ctx(), std::vector<int>{1}, 1);
  ASSERT_TRUE(rdd.Materialize().ok());
  // Reach into the task layer directly.
  auto nodes = h.ctx().LiveNodeStates();
  ASSERT_FALSE(nodes.empty());
  TaskContext tc(&h.ctx(), nodes.front());
  EXPECT_EQ(tc.GetPartition(rdd.raw(), 7).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(tc.GetPartition(rdd.raw(), -1).status().code(), StatusCode::kInvalidArgument);
}

// --- parameterized workload sweeps ---

struct WorkloadCase {
  int scale;
  int partitions;
  uint64_t seed;
};

class WorkloadSweep : public ::testing::TestWithParam<WorkloadCase> {};

TEST_P(WorkloadSweep, PageRankRankSumIsStableAcrossPartitioning) {
  const WorkloadCase c = GetParam();
  PageRankParams base;
  base.num_vertices = 200 * c.scale;
  base.edges_per_vertex = 5;
  base.iterations = 2;
  base.seed = c.seed;
  base.partitions = 2;
  PageRankParams repartitioned = base;
  repartitioned.partitions = c.partitions;
  EngineHarness h1;
  EngineHarness h2;
  auto a = RunPageRank(h1.ctx(), base);
  auto b = RunPageRank(h2.ctx(), repartitioned);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Same graph statistics regardless of partitioning is NOT guaranteed (the
  // generator is partition-seeded), but rank mass must be positive and
  // finite, and top ranks sorted.
  EXPECT_GT(a->rank_sum, 0.0);
  EXPECT_GT(b->rank_sum, 0.0);
  for (size_t i = 1; i < b->top.size(); ++i) {
    EXPECT_GE(b->top[i - 1].second, b->top[i].second);
  }
}

TEST_P(WorkloadSweep, KMeansConvergesForAllShapes) {
  const WorkloadCase c = GetParam();
  KMeansParams p;
  p.num_points = 500 * c.scale;
  p.k = 3;
  p.partitions = c.partitions;
  p.iterations = 3;
  p.seed = c.seed;
  EngineHarness h;
  auto r = RunKMeans(h.ctx(), p);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->centroids.size(), 3u);
  EXPECT_GT(r->inertia, 0.0);
  EXPECT_TRUE(std::isfinite(r->inertia));
}

INSTANTIATE_TEST_SUITE_P(Shapes, WorkloadSweep,
                         ::testing::Values(WorkloadCase{1, 1, 1}, WorkloadCase{1, 7, 2},
                                           WorkloadCase{3, 4, 3}, WorkloadCase{5, 12, 4}));

}  // namespace
}  // namespace flint
