// End-to-end smoke tests for the engine: typed pipelines, shuffles, caching,
// and recomputation across revocations. These gate everything else — if they
// fail, module-level failures are secondary.

#include <gtest/gtest.h>

#include <numeric>

#include "src/engine/typed_rdd.h"
#include "tests/test_util.h"

namespace flint {
namespace {

using testing::EngineHarness;

TEST(EngineSmoke, ParallelizeCollectRoundTrips) {
  EngineHarness h;
  std::vector<int> data(100);
  std::iota(data.begin(), data.end(), 0);
  auto rdd = Parallelize(&h.ctx(), data, 4);
  auto out = rdd.Collect();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, data);
}

TEST(EngineSmoke, MapFilterCount) {
  EngineHarness h;
  std::vector<int> data(1000);
  std::iota(data.begin(), data.end(), 0);
  auto rdd = Parallelize(&h.ctx(), data, 8)
                 .Map([](const int& x) { return x * 2; })
                 .Filter([](const int& x) { return x % 4 == 0; });
  auto count = rdd.Count();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 500u);
}

TEST(EngineSmoke, ReduceByKeyMatchesReference) {
  EngineHarness h;
  std::vector<std::pair<int, int>> data;
  for (int i = 0; i < 500; ++i) {
    data.emplace_back(i % 7, i);
  }
  auto rdd = ReduceByKey(Parallelize(&h.ctx(), data, 5), 3,
                         [](int a, int b) { return a + b; });
  auto out = rdd.Collect();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  std::map<int, int> expect;
  for (const auto& [k, v] : data) {
    expect[k] += v;
  }
  std::map<int, int> got(out->begin(), out->end());
  EXPECT_EQ(got, expect);
}

TEST(EngineSmoke, JoinInner) {
  EngineHarness h;
  std::vector<std::pair<int, int>> left = {{1, 10}, {2, 20}, {3, 30}};
  std::vector<std::pair<int, double>> right = {{2, 0.5}, {3, 0.25}, {4, 0.125}};
  auto joined = Join(Parallelize(&h.ctx(), left, 2), Parallelize(&h.ctx(), right, 2), 2);
  auto out = joined.Collect();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 2u);
  std::map<int, std::pair<int, double>> got;
  for (const auto& [k, vw] : *out) {
    got[k] = vw;
  }
  EXPECT_EQ(got[2], std::make_pair(20, 0.5));
  EXPECT_EQ(got[3], std::make_pair(30, 0.25));
}

TEST(EngineSmoke, RevocationMidLineageRecomputes) {
  EngineHarness h;
  std::vector<int> data(2000);
  std::iota(data.begin(), data.end(), 0);
  auto base = Parallelize(&h.ctx(), data, 8);
  base.Cache();
  auto squared = base.Map([](const int& x) { return static_cast<int64_t>(x) * x; });
  auto sum1 = squared.Reduce([](int64_t a, int64_t b) { return a + b; });
  ASSERT_TRUE(sum1.ok());

  // Kill half the cluster: cached partitions on those nodes are gone.
  h.RevokeNodes(2);
  ASSERT_EQ(h.cluster().NumLiveNodes(), 2u);

  auto sum2 = squared.Reduce([](int64_t a, int64_t b) { return a + b; });
  ASSERT_TRUE(sum2.ok()) << sum2.status().ToString();
  EXPECT_EQ(*sum1, *sum2);
  EXPECT_GT(h.ctx().counters().partitions_recomputed.load(), 0u);
}

TEST(EngineSmoke, ShuffleOutputLossTriggersStageRerun) {
  EngineHarness h;
  std::vector<std::pair<int, int>> data;
  for (int i = 0; i < 1000; ++i) {
    data.emplace_back(i % 13, 1);
  }
  auto counts = ReduceByKey(Parallelize(&h.ctx(), data, 6), 4,
                            [](int a, int b) { return a + b; });
  counts.Cache();
  ASSERT_TRUE(counts.Materialize().ok());

  // Lose shuffle outputs and cached results on two nodes, then re-derive a
  // child RDD: fetch failures must re-run the map stage transparently.
  h.RevokeNodes(2);
  auto total = counts.Map([](const std::pair<int, int>& kv) { return kv.second; })
                   .Reduce([](int a, int b) { return a + b; });
  ASSERT_TRUE(total.ok()) << total.status().ToString();
  EXPECT_EQ(*total, 1000);
}

TEST(EngineSmoke, WholeClusterRevocationParksUntilReplacement) {
  EngineHarness h;
  std::vector<int> data(100);
  std::iota(data.begin(), data.end(), 0);
  auto rdd = Parallelize(&h.ctx(), data, 4).Map([](const int& x) { return x + 1; });

  // Revoke everything, then add a replacement shortly after from another
  // thread; the job must stall and then complete.
  h.RevokeNodes(4);
  ASSERT_EQ(h.cluster().NumLiveNodes(), 0u);
  std::thread rescuer([&h] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    h.AddNode();
  });
  auto count = rdd.Count();
  rescuer.join();
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, 100u);
  EXPECT_GT(h.ctx().counters().acquisition_wait_nanos.load(), 0);
}

}  // namespace
}  // namespace flint
