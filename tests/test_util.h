// Shared helpers for Flint tests: a self-contained engine harness (cluster +
// DFS + context) with latency modelling off by default so unit tests run
// fast, plus small factories for crafted traces and markets.

#ifndef TESTS_TEST_UTIL_H_
#define TESTS_TEST_UTIL_H_

#include <memory>
#include <vector>

#include "src/cluster/cluster_manager.h"
#include "src/dfs/dfs.h"
#include "src/dfs/retry.h"
#include "src/engine/context.h"
#include "src/engine/typed_rdd.h"
#include "src/trace/price_trace.h"

namespace flint {
namespace testing {

struct EngineHarnessOptions {
  int num_nodes = 4;
  uint64_t node_memory = 64 * kMiB;
  int executor_threads = 1;
  bool model_latency = false;
  EvictionMode eviction = EvictionMode::kDrop;
  // Narrow-chain operator fusion; differential tests and the unfused
  // benchmark baselines switch it off.
  bool operator_fusion = true;
  // Wide-stage pipelining: fused map-side bucketing and merge-based reduce
  // (see EngineConfig). Differential tests toggle these to prove the fused
  // and hash paths bit-identical.
  bool shuffle_fusion = true;
  bool shuffle_merge_reduce = true;
  // Lock shards per node's BlockManager (see BlockManagerConfig::num_shards).
  int block_shards = 8;
  // Fast time scale so warnings/acquisitions take milliseconds in tests.
  double seconds_per_model_hour = 0.05;
  // Retry/backoff applied to checkpoint writes and verified restores; DFS
  // fault tests shrink the budget so exhaustion paths run in milliseconds.
  DfsRetryPolicy checkpoint_retry{};
  // Straggler mitigation knobs (deadlines, speculative attempts, watchdog);
  // straggler tests tighten the deadlines so scenarios run in milliseconds.
  SpeculationConfig speculation{};
  // Network plane (slow-link tests): modelled per-node NIC capacity plus the
  // hardened fetch path's timeout/retry knobs. Negative values keep the
  // EngineConfig defaults.
  double link_bandwidth_bytes_per_s = -1.0;
  double fetch_timeout_multiplier = -1.0;
  double fetch_timeout_min_seconds = -1.0;
  int fetch_retry_limit = -1;
  double fetch_retry_backoff_seconds = -1.0;
};

// Owns a full engine-plane stack. Nodes are added synchronously at
// construction from pseudo-market 0.
class EngineHarness {
 public:
  explicit EngineHarness(EngineHarnessOptions options = {}) : options_(options) {
    TimeConfig tc;
    tc.seconds_per_model_hour = options.seconds_per_model_hour;
    cluster_ = std::make_unique<ClusterManager>(tc);
    DfsConfig dfs_config;
    dfs_ = std::make_unique<Dfs>(dfs_config);
    dfs_->set_model_latency(options.model_latency);
    EngineConfig engine;
    engine.model_latency = options.model_latency;
    engine.operator_fusion = options.operator_fusion;
    engine.shuffle_fusion = options.shuffle_fusion;
    engine.shuffle_merge_reduce = options.shuffle_merge_reduce;
    engine.block_defaults.model_latency = options.model_latency;
    engine.block_defaults.eviction = options.eviction;
    engine.block_defaults.num_shards = options.block_shards;
    engine.checkpoint_retry = options.checkpoint_retry;
    engine.speculation = options.speculation;
    if (options.link_bandwidth_bytes_per_s >= 0.0) {
      engine.default_link_bandwidth_bytes_per_s = options.link_bandwidth_bytes_per_s;
    }
    if (options.fetch_timeout_multiplier >= 0.0) {
      engine.fetch_timeout_multiplier = options.fetch_timeout_multiplier;
    }
    if (options.fetch_timeout_min_seconds >= 0.0) {
      engine.fetch_timeout_min_seconds = options.fetch_timeout_min_seconds;
    }
    if (options.fetch_retry_limit >= 0) {
      engine.fetch_retry_limit = options.fetch_retry_limit;
    }
    if (options.fetch_retry_backoff_seconds >= 0.0) {
      engine.fetch_retry_backoff_seconds = options.fetch_retry_backoff_seconds;
    }
    ctx_ = std::make_unique<FlintContext>(cluster_.get(), dfs_.get(), engine);
    for (int i = 0; i < options.num_nodes; ++i) {
      node_ids_.push_back(cluster_->AddNode(0, options.node_memory, options.executor_threads));
    }
  }

  FlintContext& ctx() { return *ctx_; }
  ClusterManager& cluster() { return *cluster_; }
  Dfs& dfs() { return *dfs_; }
  const std::vector<NodeId>& node_ids() const { return node_ids_; }

  // Hard-revokes `count` nodes (no warning) and waits for delivery.
  void RevokeNodes(int count, bool with_warning = false) {
    std::vector<NodeId> victims;
    auto live = cluster_->LiveNodes();
    for (int i = 0; i < count && i < static_cast<int>(live.size()); ++i) {
      victims.push_back(live[static_cast<size_t>(i)].node_id);
    }
    cluster_->Revoke(victims, with_warning);
    cluster_->DrainEvents();
  }

  NodeId AddNode() {
    NodeId id = cluster_->AddNode(0, options_.node_memory, options_.executor_threads);
    node_ids_.push_back(id);
    return id;
  }

 private:
  EngineHarnessOptions options_;
  std::unique_ptr<ClusterManager> cluster_;
  std::unique_ptr<Dfs> dfs_;
  std::unique_ptr<FlintContext> ctx_;
  std::vector<NodeId> node_ids_;
};

// A trace with explicit prices, step = 1 hour by default.
inline PriceTrace MakeTrace(std::vector<double> prices, SimDuration step = Hours(1)) {
  return PriceTrace(step, std::move(prices));
}

// A market whose price is `base` except `spike` during [spike_begin,
// spike_end) hour indices.
inline MarketDesc MakeSpikyMarket(const std::string& name, double on_demand, double base,
                                  double spike, size_t hours, size_t spike_begin,
                                  size_t spike_end) {
  std::vector<double> prices(hours, base);
  for (size_t i = spike_begin; i < spike_end && i < hours; ++i) {
    prices[i] = spike;
  }
  MarketDesc desc;
  desc.name = name;
  desc.on_demand_price = on_demand;
  desc.trace = MakeTrace(std::move(prices));
  return desc;
}

}  // namespace testing
}  // namespace flint

#endif  // TESTS_TEST_UTIL_H_
