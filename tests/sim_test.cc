// Tests for the long-horizon simulators: Monte-Carlo agreement with the
// closed forms, baseline orderings, and trace-driven strategy results.

#include <gtest/gtest.h>

#include <cmath>

#include "src/checkpoint/checkpoint_policy.h"
#include "src/sim/monte_carlo.h"
#include "src/sim/trace_sim.h"
#include "src/trace/market_catalog.h"

namespace flint {
namespace {

TEST(MonteCarloTest, NoFailuresMeansFactorNearOne) {
  CanonicalJob job;
  McConfig cfg;
  cfg.mttf_hours = std::numeric_limits<double>::infinity();
  cfg.trials = 100;
  const McResult r = SimulateCanonicalJob(job, cfg);
  EXPECT_DOUBLE_EQ(r.mean_factor, 1.0);
  EXPECT_DOUBLE_EQ(r.mean_revocations, 0.0);
}

TEST(MonteCarloTest, AgreesWithEq1WithinTolerance) {
  CanonicalJob job;
  for (double mttf : {5.0, 20.0, 80.0}) {
    McConfig cfg;
    cfg.mttf_hours = mttf;
    cfg.trials = 8000;
    cfg.seed = 42;
    const McResult mc = SimulateCanonicalJob(job, cfg);
    const double analytic = ExpectedRuntimeFactor(job.delta_hours(), job.rd_hours, mttf, 1);
    EXPECT_NEAR(mc.mean_factor, analytic, 0.05 * analytic) << "mttf=" << mttf;
  }
}

TEST(MonteCarloTest, RecomputeOnlyIsNeverCheaper) {
  CanonicalJob job;
  for (double mttf : {5.0, 20.0, 80.0}) {
    McConfig with;
    with.mttf_hours = mttf;
    with.trials = 4000;
    with.seed = 7;
    McConfig without = with;
    without.checkpointing = false;
    const McResult a = SimulateCanonicalJob(job, with);
    const McResult b = SimulateCanonicalJob(job, without);
    EXPECT_LE(a.mean_factor, b.mean_factor * 1.02) << "mttf=" << mttf;
  }
}

TEST(MonteCarloTest, FactorShrinksWithMttf) {
  CanonicalJob job;
  double prev = std::numeric_limits<double>::infinity();
  for (double mttf : {2.0, 8.0, 32.0, 128.0}) {
    McConfig cfg;
    cfg.mttf_hours = mttf;
    cfg.trials = 4000;
    cfg.seed = 9;
    const double f = SimulateCanonicalJob(job, cfg).mean_factor;
    EXPECT_LT(f, prev);
    prev = f;
  }
}

TEST(MonteCarloTest, MoreMarketsReduceSpread) {
  CanonicalJob job;
  McConfig one;
  one.mttf_hours = 10.0;
  one.num_markets = 1;
  one.trials = 6000;
  one.seed = 5;
  McConfig four = one;
  four.num_markets = 4;
  four.mttf_hours = 10.0 / 4.0;  // same per-market MTTF, harmonic aggregate
  const McResult m1 = SimulateCanonicalJob(job, one);
  const McResult m4 = SimulateCanonicalJob(job, four);
  EXPECT_LT(m4.factor_stddev, m1.factor_stddev);
}

TEST(MonteCarloTest, HorizonTruncationIsCountedNotAveraged) {
  // Recompute-only with MTTF far below the revocation cost: every revocation
  // wipes all progress (recompute_multiplier 2 doubles the redo), so no
  // trial can finish and all of them hit the 200x safety horizon. Pre-fix
  // these were recorded as "completed in 200x", silently deflating
  // mean_factor in exactly the regimes where it should diverge.
  CanonicalJob job;
  McConfig cfg;
  cfg.checkpointing = false;
  cfg.mttf_hours = 0.5;
  cfg.trials = 40;
  cfg.seed = 3;
  const McResult r = SimulateCanonicalJob(job, cfg);
  EXPECT_EQ(r.truncated_trials, cfg.trials);
  EXPECT_EQ(r.completed_trials, 0);
  // With no completed trials the factor stats are empty, not fabricated.
  EXPECT_EQ(r.mean_factor, 0.0);
  EXPECT_EQ(r.p95_factor, 0.0);
}

TEST(MonteCarloTest, MixedRegimeSeparatesTruncatedFromCompleted) {
  // MTTF chosen so a recompute-only job completes sometimes but usually
  // exhausts the horizon: both populations must be visible and the factor
  // stats must come from completed trials alone (every one of which finished
  // strictly inside the horizon).
  CanonicalJob job;
  McConfig cfg;
  cfg.checkpointing = false;
  cfg.mttf_hours = 1.4;
  cfg.trials = 60;
  cfg.seed = 17;
  const McResult r = SimulateCanonicalJob(job, cfg);
  EXPECT_EQ(r.truncated_trials + r.completed_trials, cfg.trials);
  EXPECT_GT(r.truncated_trials, 0);
  EXPECT_GT(r.completed_trials, 0);
  EXPECT_GT(r.mean_factor, 1.0);
  EXPECT_LT(r.p95_factor, 200.0);
}

TEST(MonteCarloTest, NoTruncationInHealthyRegimes) {
  CanonicalJob job;
  McConfig cfg;
  cfg.mttf_hours = 20.0;
  cfg.trials = 2000;
  cfg.seed = 4;
  const McResult r = SimulateCanonicalJob(job, cfg);
  EXPECT_EQ(r.truncated_trials, 0);
  EXPECT_EQ(r.completed_trials, cfg.trials);
}

TEST(MonteCarloTest, ForcedIntervalIsWorseThanDaly) {
  CanonicalJob job;
  McConfig opt;
  opt.mttf_hours = 10.0;
  opt.trials = 6000;
  opt.seed = 21;
  const double tau_opt = OptimalCheckpointInterval(job.delta_hours(), 10.0);
  const double at_opt = SimulateCanonicalJob(job, opt).mean_factor;
  for (double scale : {0.1, 8.0}) {
    McConfig forced = opt;
    forced.forced_tau_hours = tau_opt * scale;
    EXPECT_GT(SimulateCanonicalJob(job, forced).mean_factor, at_opt) << "scale " << scale;
  }
}

class TraceSimTest : public ::testing::Test {
 protected:
  TraceSimTest() : marketplace_(RegionMarkets(12, 13), 0.35, 13), sim_(&marketplace_) {}

  StrategyResult Run(SelectionPolicyKind policy, bool checkpointing, double fee = 0.0) {
    StrategyConfig cfg;
    cfg.policy = policy;
    cfg.checkpointing = checkpointing;
    cfg.fee_fraction_of_on_demand = fee;
    cfg.trials = 60;
    cfg.seed = 99;
    return sim_.Run(CanonicalJob{}, cfg);
  }

  Marketplace marketplace_;
  TraceSimulator sim_;
};

TEST_F(TraceSimTest, OnDemandIsTheUnitReference) {
  const StrategyResult r = Run(SelectionPolicyKind::kOnDemand, false);
  EXPECT_NEAR(r.normalized_unit_cost, 1.0, 1e-6);
  EXPECT_NEAR(r.mean_factor, 1.0, 1e-6);
  EXPECT_DOUBLE_EQ(r.mean_revocation_events, 0.0);
}

TEST_F(TraceSimTest, FlintBatchSavesMostOfTheOnDemandCost) {
  const StrategyResult r = Run(SelectionPolicyKind::kFlintBatch, true);
  EXPECT_LT(r.normalized_unit_cost, 0.35);  // >= 65% savings
  EXPECT_LT(r.mean_factor, 1.25);
}

TEST_F(TraceSimTest, EmrFeeRaisesCostOverPlainSpot) {
  const StrategyResult plain = Run(SelectionPolicyKind::kSpotFleetCheapest, false);
  const StrategyResult emr = Run(SelectionPolicyKind::kSpotFleetCheapest, false, 0.25);
  EXPECT_GT(emr.normalized_unit_cost, plain.normalized_unit_cost + 0.2);
}

TEST_F(TraceSimTest, InteractiveUsesMultipleMarkets) {
  const StrategyResult r = Run(SelectionPolicyKind::kFlintInteractive, true);
  EXPECT_GT(r.mean_markets_used, 1.5);
  EXPECT_LT(r.normalized_unit_cost, 1.0);
}

TEST_F(TraceSimTest, CheckpointingBeatsRecomputeOnVolatilePools) {
  const StrategyResult with = Run(SelectionPolicyKind::kSpotFleetCheapest, true);
  const StrategyResult without = Run(SelectionPolicyKind::kSpotFleetCheapest, false);
  EXPECT_LE(with.mean_factor, without.mean_factor + 0.02);
}

}  // namespace
}  // namespace flint
