// Tests for the extended TPC-H queries (Q10, Q12, Q18) against driver-side
// references computed directly from the generated rows.

#include <gtest/gtest.h>

#include <map>

#include "src/workloads/tpch.h"
#include "tests/test_util.h"

namespace flint {
namespace {

using testing::EngineHarness;

TpchParams SmallDb() {
  TpchParams p;
  p.num_customers = 150;
  p.num_orders = 800;
  p.max_lines_per_order = 4;
  p.partitions = 4;
  return p;
}

class TpchExtendedTest : public ::testing::Test {
 protected:
  TpchExtendedTest() : db_(InvalidArgument("unloaded")) {
    db_ = TpchDatabase::Load(h_.ctx(), SmallDb());
  }

  EngineHarness h_;
  Result<TpchDatabase> db_;
};

TEST_F(TpchExtendedTest, Q10MatchesReference) {
  ASSERT_TRUE(db_.ok());
  const int date_start = kTpchMaxDate / 3;
  auto q10 = db_->RunQ10(date_start, /*top_n=*/10);
  ASSERT_TRUE(q10.ok()) << q10.status().ToString();

  auto lines = db_->lineitem().Collect();
  auto orders = db_->orders().Collect();
  ASSERT_TRUE(lines.ok());
  ASSERT_TRUE(orders.ok());
  std::map<int, int> order_to_cust;
  for (const auto& o : *orders) {
    order_to_cust[o.order_key] = o.cust_key;
  }
  std::map<int, double> revenue;
  for (const auto& l : *lines) {
    if (l.return_flag == 1 && l.ship_date >= date_start && l.ship_date < date_start + 90) {
      revenue[order_to_cust[l.order_key]] += l.extended_price * (1.0 - l.discount);
    }
  }
  ASSERT_FALSE(q10->empty());
  // Top row must be the true max-revenue customer.
  const auto top = std::max_element(revenue.begin(), revenue.end(),
                                    [](const auto& a, const auto& b) {
                                      return a.second < b.second;
                                    });
  EXPECT_EQ(q10->front().cust_key, top->first);
  EXPECT_NEAR(q10->front().revenue, top->second, 1e-6);
  // Rows sorted by revenue descending.
  for (size_t i = 1; i < q10->size(); ++i) {
    EXPECT_GE((*q10)[i - 1].revenue, (*q10)[i].revenue);
  }
}

TEST_F(TpchExtendedTest, Q12CountsMatchReference) {
  ASSERT_TRUE(db_.ok());
  auto q12 = db_->RunQ12(0);
  ASSERT_TRUE(q12.ok()) << q12.status().ToString();

  auto lines = db_->lineitem().Collect();
  auto orders = db_->orders().Collect();
  ASSERT_TRUE(lines.ok());
  ASSERT_TRUE(orders.ok());
  std::map<int, int> order_prio;
  for (const auto& o : *orders) {
    order_prio[o.order_key] = o.ship_priority;
  }
  std::map<int, std::pair<int64_t, int64_t>> expect;  // prio -> (high, low)
  for (const auto& l : *lines) {
    if (l.ship_date >= 0 && l.ship_date < 365) {
      auto& [high, low] = expect[order_prio[l.order_key]];
      if (l.line_status == 1) {
        ++high;
      } else {
        ++low;
      }
    }
  }
  ASSERT_EQ(q12->size(), expect.size());
  for (const auto& row : *q12) {
    const auto& [high, low] = expect[row.ship_priority];
    EXPECT_EQ(row.high_line_count, high);
    EXPECT_EQ(row.low_line_count, low);
  }
}

TEST_F(TpchExtendedTest, Q18FindsOnlyLargeOrders) {
  ASSERT_TRUE(db_.ok());
  const double threshold = 60.0;
  auto q18 = db_->RunQ18(threshold, /*top_n=*/50);
  ASSERT_TRUE(q18.ok()) << q18.status().ToString();

  auto lines = db_->lineitem().Collect();
  ASSERT_TRUE(lines.ok());
  std::map<int, double> qty;
  for (const auto& l : *lines) {
    qty[l.order_key] += l.quantity;
  }
  size_t expect_count = 0;
  for (const auto& [order, q] : qty) {
    if (q > threshold) {
      ++expect_count;
    }
  }
  EXPECT_EQ(q18->size(), std::min<size_t>(expect_count, 50));
  for (const auto& row : *q18) {
    EXPECT_GT(row.sum_quantity, threshold);
    EXPECT_NEAR(row.sum_quantity, qty[row.order_key], 1e-9);
  }
  // Sorted by total price descending.
  for (size_t i = 1; i < q18->size(); ++i) {
    EXPECT_GE((*q18)[i - 1].total_price, (*q18)[i].total_price);
  }
}

TEST_F(TpchExtendedTest, ExtendedQueriesSurviveRevocation) {
  ASSERT_TRUE(db_.ok());
  auto before = db_->RunQ12(0);
  ASSERT_TRUE(before.ok());
  h_.RevokeNodes(2);
  h_.AddNode();
  h_.AddNode();
  auto after = db_->RunQ12(0);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_EQ(before->size(), after->size());
  for (size_t i = 0; i < before->size(); ++i) {
    EXPECT_EQ((*before)[i].high_line_count, (*after)[i].high_line_count);
    EXPECT_EQ((*before)[i].low_line_count, (*after)[i].low_line_count);
  }
}

}  // namespace
}  // namespace flint
