// Tests for the price-trace substrate: trace arithmetic, bid statistics,
// the synthetic generator's calibration, catalog presets, and persistence.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "src/common/stats.h"
#include "src/trace/market_catalog.h"
#include "src/trace/price_trace.h"
#include "tests/test_util.h"

namespace flint {
namespace {

TEST(PriceTraceTest, PriceAtWrapsAround) {
  PriceTrace trace = testing::MakeTrace({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(trace.PriceAt(0.5), 1.0);
  EXPECT_DOUBLE_EQ(trace.PriceAt(1.5), 2.0);
  EXPECT_DOUBLE_EQ(trace.PriceAt(2.5), 3.0);
  EXPECT_DOUBLE_EQ(trace.PriceAt(3.5), 1.0);  // wrapped
  EXPECT_DOUBLE_EQ(trace.PriceAt(7.5), 2.0);
}

TEST(PriceTraceTest, EmptyTraceIsSafe) {
  PriceTrace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_DOUBLE_EQ(trace.PriceAt(12.0), 0.0);
  const BidStats stats = ComputeBidStats(trace, 1.0);
  EXPECT_DOUBLE_EQ(stats.mttf_hours, 0.0);
}

TEST(BidStatsTest, HandComputedRuns) {
  // 1h steps: held, held, spike, held, held, held, spike, held.
  PriceTrace trace = testing::MakeTrace({0.1, 0.1, 5.0, 0.1, 0.1, 0.1, 5.0, 0.1});
  const BidStats stats = ComputeBidStats(trace, 1.0);
  ASSERT_EQ(stats.run_lengths_hours.size(), 3u);
  EXPECT_DOUBLE_EQ(stats.run_lengths_hours[0], 2.0);
  EXPECT_DOUBLE_EQ(stats.run_lengths_hours[1], 3.0);
  EXPECT_DOUBLE_EQ(stats.run_lengths_hours[2], 1.0);
  EXPECT_DOUBLE_EQ(stats.mttf_hours, 2.0);
  EXPECT_DOUBLE_EQ(stats.avg_price, 0.1);
  EXPECT_DOUBLE_EQ(stats.availability, 6.0 / 8.0);
}

TEST(BidStatsTest, NeverRevokedIsInfiniteMttf) {
  PriceTrace trace = testing::MakeTrace(std::vector<double>(100, 0.2));
  const BidStats stats = ComputeBidStats(trace, 1.0);
  EXPECT_TRUE(std::isinf(stats.mttf_hours));
  EXPECT_DOUBLE_EQ(stats.availability, 1.0);
}

TEST(BidStatsTest, BidBelowFloorNeverRuns) {
  PriceTrace trace = testing::MakeTrace(std::vector<double>(100, 0.2));
  const BidStats stats = ComputeBidStats(trace, 0.1);
  EXPECT_DOUBLE_EQ(stats.availability, 0.0);
  EXPECT_DOUBLE_EQ(stats.mttf_hours, 0.0);
}

TEST(BidStatsTest, HigherBidNeverLowersMttf) {
  SyntheticTraceParams params;
  params.duration = Hours(24.0 * 60);
  params.seed = 5;
  const PriceTrace trace = GenerateSyntheticTrace(params);
  double prev_mttf = 0.0;
  for (double bid_multiple : {0.5, 1.0, 2.0, 5.0, 10.0}) {
    const BidStats s = ComputeBidStats(trace, bid_multiple * params.on_demand_price);
    EXPECT_GE(s.mttf_hours, prev_mttf) << "bid x" << bid_multiple;
    if (!std::isinf(s.mttf_hours)) {
      prev_mttf = s.mttf_hours;
    }
  }
}

TEST(SyntheticTraceTest, DeterministicInSeed) {
  SyntheticTraceParams params;
  params.duration = Hours(24.0 * 10);
  params.seed = 99;
  const PriceTrace a = GenerateSyntheticTrace(params);
  const PriceTrace b = GenerateSyntheticTrace(params);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.prices(), b.prices());
}

TEST(SyntheticTraceTest, SpikesCappedAtTenTimesOnDemand) {
  SyntheticTraceParams params;
  params.duration = Hours(24.0 * 30);
  params.spikes_per_hour = 0.2;  // lots of spikes
  params.seed = 3;
  const PriceTrace trace = GenerateSyntheticTrace(params);
  for (double p : trace.prices()) {
    EXPECT_LE(p, 10.0 * params.on_demand_price + 1e-9);
    EXPECT_GT(p, 0.0);
  }
}

TEST(SyntheticTraceTest, BasePriceTracksFraction) {
  SyntheticTraceParams params;
  params.duration = Hours(24.0 * 10);
  params.spikes_per_hour = 0.0;  // no spikes: pure base process
  params.seed = 8;
  const PriceTrace trace = GenerateSyntheticTrace(params);
  const BidStats stats = ComputeBidStats(trace, params.on_demand_price);
  EXPECT_NEAR(stats.avg_price, params.base_price_fraction * params.on_demand_price,
              0.05 * params.on_demand_price);
}

TEST(SyntheticTraceTest, CorrelatedPairsCorrelateMore) {
  SyntheticTraceParams params;
  params.duration = Hours(24.0 * 90);
  params.spikes_per_hour = 1.0 / 30.0;
  params.seed = 17;
  auto traces = GenerateMarketTraces(params, 4, {{0, 1}});
  const double corr_linked = TraceCorrelation(traces[0], traces[1]);
  const double corr_free = TraceCorrelation(traces[2], traces[3]);
  EXPECT_GT(corr_linked, 0.3);
  EXPECT_LT(std::fabs(corr_free), 0.2);
}

TEST(TraceCsvTest, RoundTrips) {
  SyntheticTraceParams params;
  params.duration = Hours(48);
  params.seed = 4;
  const PriceTrace trace = GenerateSyntheticTrace(params);
  const std::string path = ::testing::TempDir() + "/flint_trace_test.csv";
  ASSERT_TRUE(SaveTraceCsv(trace, path).ok());
  auto loaded = LoadTraceCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_DOUBLE_EQ(loaded->step(), trace.step());
  ASSERT_EQ(loaded->size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_NEAR(loaded->prices()[i], trace.prices()[i], 1e-9);
  }
  std::remove(path.c_str());
}

TEST(TraceCsvTest, MissingFileIsNotFound) {
  auto loaded = LoadTraceCsv("/nonexistent/definitely_missing.csv");
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(MarketCatalogTest, Fig2SpotMttfsSpanThePaperRange) {
  auto markets = Fig2SpotMarkets(1);
  ASSERT_EQ(markets.size(), 3u);
  const double calm = ComputeBidStats(markets[0].trace, markets[0].on_demand_price).mttf_hours;
  const double mid = ComputeBidStats(markets[1].trace, markets[1].on_demand_price).mttf_hours;
  const double volatile_mttf =
      ComputeBidStats(markets[2].trace, markets[2].on_demand_price).mttf_hours;
  EXPECT_GT(calm, mid);
  EXPECT_GT(mid, volatile_mttf);
  EXPECT_GT(calm, 200.0);          // us-west-2c-like
  EXPECT_LT(volatile_mttf, 40.0);  // sa-east-1a-like
}

TEST(MarketCatalogTest, GceLifetimesRespectTheCap) {
  Rng rng(2);
  RunningStats stats;
  for (int i = 0; i < 2000; ++i) {
    const double ttf = SampleGceLifetime(rng, 21.5);
    EXPECT_GT(ttf, 0.0);
    EXPECT_LE(ttf, 24.0);
    stats.Add(ttf);
  }
  EXPECT_NEAR(stats.mean(), 21.5, 1.0);
}

TEST(MarketCatalogTest, VolatilityLowersBasePrice) {
  // Volatile pools are cheaper at steady state (that is why Flint's tradeoff
  // exists at all).
  const auto calm = ParamsForVolatility(MarketVolatility::kCalm, 0.35, 1);
  const auto volat = ParamsForVolatility(MarketVolatility::kVolatile, 0.35, 1);
  EXPECT_LT(volat.base_price_fraction, calm.base_price_fraction);
  EXPECT_GT(volat.spikes_per_hour, calm.spikes_per_hour);
}

TEST(MarketCatalogTest, RegionMarketsShareOnDemandPrice) {
  const auto markets = RegionMarkets(8, 3);
  ASSERT_EQ(markets.size(), 8u);
  for (const auto& m : markets) {
    EXPECT_DOUBLE_EQ(m.on_demand_price, markets[0].on_demand_price);
    EXPECT_FALSE(m.trace.empty());
  }
}

}  // namespace
}  // namespace flint
