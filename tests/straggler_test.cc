// Straggler-mitigation scenarios (ISSUE 7): scripted kSlowNode / kHangTask /
// kFlakyNode injections exercise task deadlines, speculative execution, the
// stage watchdog, and node-health quarantine. The acceptance case pins the
// paper-style bound: with one of four nodes computing 8x slow, speculation
// keeps stage latency within 1.5x of fault-free while the no-speculation
// control degrades to >= 4x.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "src/core/node_manager.h"
#include "src/engine/typed_rdd.h"
#include "src/engine/typed_rdd_ops.h"
#include "src/inject/fault_injector.h"
#include "src/market/marketplace.h"
#include "tests/test_util.h"

// Sanitizers stretch compute (but not sleeps) unpredictably, which breaks
// wall-clock ratio assertions; keep correctness and counters, drop timing.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define FLINT_TIMING_ASSERTS 0
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define FLINT_TIMING_ASSERTS 0
#else
#define FLINT_TIMING_ASSERTS 1
#endif
#else
#define FLINT_TIMING_ASSERTS 1
#endif

namespace flint {
namespace {

using testing::EngineHarness;
using testing::EngineHarnessOptions;

// Installs the injector as the context's probe for the guard's lifetime and
// settles all injected activity before the injector or harness dies (same
// contract as fault_injection_test.cc).
class ProbeGuard {
 public:
  ProbeGuard(FlintContext* ctx, FaultInjector* injector) : ctx_(ctx), injector_(injector) {
    ctx_->SetProbe(injector_);
  }
  ~ProbeGuard() {
    ctx_->SetProbe(nullptr);
    injector_->Drain();
    ctx_->DrainExecutors();
  }

  ProbeGuard(const ProbeGuard&) = delete;
  ProbeGuard& operator=(const ProbeGuard&) = delete;

 private:
  FlintContext* ctx_;
  FaultInjector* injector_;
};

// Straggler scenarios double as a lock-order regression net, like the storm
// suite: speculation adds cancellation tokens and deadline scans on top of
// the engine/injector locking.
class StragglerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Node ids restart at 0 per harness, so the process-wide health ledger
    // would otherwise leak scores from earlier tests into this one.
    NodeHealthLedger::Global().Reset();
    was_enabled_ = SetMutexDebug(true);
    violations_before_ = GetLockOrderViolations().size();
  }
  void TearDown() override {
    const auto violations = GetLockOrderViolations();
    EXPECT_EQ(violations.size(), violations_before_)
        << "lock-order cycle detected: "
        << (violations.empty() ? "" : violations.back().description);
    SetMutexDebug(was_enabled_);
  }

 private:
  bool was_enabled_ = false;
  size_t violations_before_ = 0;
};

// One record per partition; each task sleeps `task_ms` so per-task runtime is
// controlled and kSlowNode's stretch is measurable.
std::vector<int> SleepyCollect(FlintContext* ctx, int partitions, int task_ms,
                               Status* status_out = nullptr) {
  std::vector<int> data(static_cast<size_t>(partitions));
  std::iota(data.begin(), data.end(), 0);
  auto rdd = Parallelize(ctx, data, partitions).Map([task_ms](const int& x) {
    std::this_thread::sleep_for(std::chrono::milliseconds(task_ms));
    return x * 3 + 1;
  });
  auto out = rdd.Collect();
  if (status_out != nullptr) {
    *status_out = out.status();
  }
  return out.ok() ? *out : std::vector<int>{};
}

double MeasureMs(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

SpeculationConfig FastSpec(bool enabled = true) {
  SpeculationConfig spec;
  spec.enabled = enabled;
  spec.quorum = 3;
  spec.spec_multiplier = 3.0;
  spec.min_deadline_seconds = 0.05;
  spec.max_attempts_per_task = 6;
  spec.retry_backoff_seconds = 0.02;
  return spec;
}

// The acceptance scenario: node 0 of 4 computes 8x slow for the whole run.
// With speculation, every task stranded behind the slow node is duplicated
// onto a fast one once its deadline (3x the stage's streaming P50) expires,
// and stage latency stays within 1.5x fault-free. With speculation disabled
// the slow node serializes its whole queue at 8x and latency degrades >= 4x.
// Results are bit-identical in all three runs.
TEST_F(StragglerTest, SlowNodeLatencyBoundedBySpeculation) {
  constexpr int kParts = 24;
  constexpr int kTaskMs = 40;

  // Timing bounds are re-measured up to 3 times: the suite runs under ctest
  // -j alongside CPU-heavy tests, and one contended iteration must not fail
  // the gate. Correctness and counter assertions stay strict every pass.
  double fault_free_ms = 0.0, with_spec_ms = 0.0, without_spec_ms = 0.0;
  for (int tries = 0; tries < 3; ++tries) {
    std::vector<int> reference;
    {
      EngineHarness h{EngineHarnessOptions{.speculation = FastSpec(true)}};
      fault_free_ms =
          MeasureMs([&] { reference = SleepyCollect(&h.ctx(), kParts, kTaskMs); });
      ASSERT_EQ(reference.size(), static_cast<size_t>(kParts));
    }

    std::vector<int> with_spec;
    {
      EngineHarness h{EngineHarnessOptions{.speculation = FastSpec(true)}};
      FaultPlan plan;
      plan.events.push_back(SlowNodeAt(EnginePoint::kTaskRun, /*after_hits=*/0,
                                       /*node_ordinal=*/0, /*slow_factor=*/8.0,
                                       /*duration_seconds=*/30.0));
      FaultInjector injector(&h.cluster(), plan);
      ProbeGuard guard(&h.ctx(), &injector);
      with_spec_ms =
          MeasureMs([&] { with_spec = SleepyCollect(&h.ctx(), kParts, kTaskMs); });
      EXPECT_TRUE(injector.AllEventsFired());
      EXPECT_GT(injector.GetStats().tasks_slowed, 0u);
      EXPECT_GT(h.ctx().counters().tasks_speculated.load(), 0u);
      EXPECT_GT(h.ctx().counters().speculative_wins.load(), 0u);
      EXPECT_GT(h.ctx().counters().tasks_cancelled.load(), 0u);
      EXPECT_GT(h.ctx().counters().task_deadline_misses.load(), 0u);
    }
    EXPECT_EQ(with_spec, reference);

    std::vector<int> without_spec;
    {
      EngineHarness h{EngineHarnessOptions{.speculation = FastSpec(false)}};
      FaultPlan plan;
      plan.events.push_back(SlowNodeAt(EnginePoint::kTaskRun, /*after_hits=*/0,
                                       /*node_ordinal=*/0, /*slow_factor=*/8.0,
                                       /*duration_seconds=*/30.0));
      FaultInjector injector(&h.cluster(), plan);
      ProbeGuard guard(&h.ctx(), &injector);
      without_spec_ms =
          MeasureMs([&] { without_spec = SleepyCollect(&h.ctx(), kParts, kTaskMs); });
      EXPECT_EQ(h.ctx().counters().tasks_speculated.load(), 0u);
    }
    EXPECT_EQ(without_spec, reference);

    if (with_spec_ms <= 1.5 * fault_free_ms && without_spec_ms >= 4.0 * fault_free_ms) {
      break;  // bounds met; no need to burn another iteration
    }
  }

#if FLINT_TIMING_ASSERTS
  EXPECT_LE(with_spec_ms, 1.5 * fault_free_ms)
      << "fault-free " << fault_free_ms << " ms, with speculation " << with_spec_ms << " ms";
  EXPECT_GE(without_spec_ms, 4.0 * fault_free_ms)
      << "fault-free " << fault_free_ms << " ms, without speculation " << without_spec_ms
      << " ms";
  EXPECT_LT(with_spec_ms, without_spec_ms);
#else
  (void)fault_free_ms;
  (void)with_spec_ms;
  (void)without_spec_ms;
#endif
}

// A task that hangs forever is rescued by speculation: its deadline expires,
// a duplicate lands on another node and wins, and the hung attempt is
// cancelled cooperatively (it unblocks from its hang poll and reports itself
// cancelled, which the scheduler ignores).
TEST_F(StragglerTest, HungTaskCancelledAndRescuedBySpeculation) {
  EngineHarness h{EngineHarnessOptions{.speculation = FastSpec(true)}};
  FaultPlan plan;
  plan.events.push_back(
      HangTaskAt(EnginePoint::kTaskRun, /*after_hits=*/0, /*node_ordinal=*/0, /*count=*/1));
  FaultInjector injector(&h.cluster(), plan);
  ProbeGuard guard(&h.ctx(), &injector);

  Status status;
  std::vector<int> out = SleepyCollect(&h.ctx(), 12, /*task_ms=*/10, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  std::vector<int> expect;
  for (int x = 0; x < 12; ++x) {
    expect.push_back(x * 3 + 1);
  }
  EXPECT_EQ(out, expect);
  EXPECT_EQ(injector.GetStats().tasks_hung_injected, 1u);
  EXPECT_GE(h.ctx().counters().tasks_speculated.load(), 1u);
  EXPECT_GE(h.ctx().counters().speculative_wins.load(), 1u);
  EXPECT_GE(h.ctx().counters().tasks_cancelled.load(), 1u);
}

// With speculation off, the stage watchdog is the backstop: a hung task
// surfaces as kDeadlineExceeded naming the stage, task, and node instead of
// wedging the run forever.
TEST_F(StragglerTest, HungTaskSurfacesAsWatchdogTimeout) {
  SpeculationConfig spec = FastSpec(false);
  spec.stage_watchdog_seconds = 0.3;
  EngineHarness h{EngineHarnessOptions{.speculation = spec}};
  FaultPlan plan;
  plan.events.push_back(
      HangTaskAt(EnginePoint::kTaskRun, /*after_hits=*/0, /*node_ordinal=*/0, /*count=*/1));
  FaultInjector injector(&h.cluster(), plan);
  ProbeGuard guard(&h.ctx(), &injector);

  Status status;
  SleepyCollect(&h.ctx(), 8, /*task_ms=*/5, &status);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded) << status.ToString();
  EXPECT_NE(status.message().find("exceeded its watchdog"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("task"), std::string::npos) << status.ToString();
  EXPECT_NE(status.message().find("node"), std::string::npos) << status.ToString();
  EXPECT_EQ(h.ctx().counters().stage_watchdog_timeouts.load(), 1u);
}

// A node whose every attempt fails is quarantined by the health scorer after
// a handful of zero samples (EWMA sinks below threshold), the job completes
// on the remaining nodes, and timer-driven decay lifts the quarantine once
// the score recovers.
TEST_F(StragglerTest, FlakyNodeQuarantinedThenRecovered) {
  EngineHarness h{EngineHarnessOptions{.speculation = FastSpec(true)}};
  Marketplace market({testing::MakeSpikyMarket("m0", 1.0, 0.2, 0.2, 24, 0, 0)},
                     /*on_demand_price=*/1.0, /*seed=*/7);
  NodeManagerConfig nm_cfg;
  nm_cfg.health.min_samples = 3;
  nm_cfg.health.decay_interval_seconds = 0.02;
  nm_cfg.health.decay_rate = 0.5;
  NodeManager nm(&h.ctx(), &market, /*ft=*/nullptr, nm_cfg);

  const NodeId victim = h.node_ids().front();
  FaultPlan plan;
  plan.events.push_back(FlakyNodeAt(EnginePoint::kTaskRun, /*after_hits=*/0,
                                    /*node_ordinal=*/0, /*probability=*/1.0,
                                    /*duration_seconds=*/0.25));
  FaultInjector injector(&h.cluster(), plan);
  {
    ProbeGuard guard(&h.ctx(), &injector);
    Status status;
    std::vector<int> out = SleepyCollect(&h.ctx(), 16, /*task_ms=*/5, &status);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(out.size(), 16u);
    EXPECT_GT(injector.GetStats().tasks_failed_injected, 0u);
    EXPECT_GT(h.ctx().counters().task_retries.load(), 0u);
  }
  EXPECT_LT(nm.HealthScore(victim), 1.0);

  // The quarantine must lift by decay within a generous bound (ticks are
  // 20 ms; recovery needs two).
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool was_quarantined = nm.Quarantined(victim);
  while (nm.Quarantined(victim) && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(was_quarantined) << "health scorer never quarantined the flaky node";
  EXPECT_FALSE(nm.Quarantined(victim));
}

// Composition: speculation stays correct when a whole-cluster revocation
// storm lands mid shuffle-map stage on top of a slow node. The stage
// re-dispatches onto replacements and the shuffle result matches a clean
// cluster's bit for bit.
TEST_F(StragglerTest, SpeculationComposesWithRevocationStorm) {
  auto workload = [](FlintContext* ctx) {
    std::vector<std::pair<int, int>> data;
    for (int i = 0; i < 400; ++i) {
      data.emplace_back(i % 10, 1);
    }
    auto counts = ReduceByKey(Parallelize(ctx, data, 8).Map([](const std::pair<int, int>& kv) {
                                std::this_thread::sleep_for(std::chrono::microseconds(50));
                                return kv;
                              }),
                              4, [](int a, int b) { return a + b; });
    return counts.Collect();
  };

  std::vector<std::pair<int, int>> reference;
  {
    EngineHarness clean;
    auto out = workload(&clean.ctx());
    ASSERT_TRUE(out.ok());
    reference = *out;
    std::sort(reference.begin(), reference.end());
  }

  EngineHarness h{EngineHarnessOptions{.speculation = FastSpec(true)}};
  FaultPlan plan;
  plan.events.push_back(SlowNodeAt(EnginePoint::kTaskRun, /*after_hits=*/0,
                                   /*node_ordinal=*/0, /*slow_factor=*/8.0,
                                   /*duration_seconds=*/30.0));
  plan.events.push_back(RevokeAllAt(EnginePoint::kShuffleMapTaskRun, /*after_hits=*/2,
                                    /*with_warning=*/false, /*replacements=*/4,
                                    /*delay_seconds=*/0.05));
  FaultInjector injector(&h.cluster(), plan);
  ProbeGuard guard(&h.ctx(), &injector);

  auto out = workload(&h.ctx());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  std::vector<std::pair<int, int>> got = *out;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, reference);
  EXPECT_TRUE(injector.AllEventsFired());
}

// Bit-identity over a fused narrow chain: a slow node forces speculative
// re-execution of fused tasks (including the per-partition sampling RNG
// stream) and the output matches a clean, speculation-off run byte for byte.
TEST_F(StragglerTest, FusedChainBitIdenticalUnderSpeculation) {
  std::vector<int> data(8000);
  std::iota(data.begin(), data.end(), 0);
  auto run = [&data](EngineHarness& h) {
    auto mapped = Parallelize(&h.ctx(), data, 8)
                      .Map([](const int& x) {
                        std::this_thread::sleep_for(std::chrono::microseconds(20));
                        return x * 31 + 7;
                      })
                      .Map([](const int& x) { return x ^ (x >> 3); });
    return Sample(mapped, 0.5, /*seed=*/13)
        .Filter([](const int& x) { return (x & 1) == 0; })
        .Collect();
  };

  std::vector<int> reference;
  {
    EngineHarness clean{EngineHarnessOptions{.speculation = FastSpec(false)}};
    auto out = run(clean);
    ASSERT_TRUE(out.ok());
    reference = *out;
    ASSERT_GT(clean.ctx().counters().fused_chains.load(), 0u);
  }

  EngineHarness h{EngineHarnessOptions{.speculation = FastSpec(true)}};
  FaultPlan plan;
  plan.events.push_back(SlowNodeAt(EnginePoint::kTaskRun, /*after_hits=*/0,
                                   /*node_ordinal=*/0, /*slow_factor=*/8.0,
                                   /*duration_seconds=*/30.0));
  FaultInjector injector(&h.cluster(), plan);
  ProbeGuard guard(&h.ctx(), &injector);

  auto out = run(h);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, reference);
  EXPECT_GT(h.ctx().counters().fused_chains.load(), 0u);
}

// Cross-stage quantile carry-over (SpeculationConfig::seed_from_previous_
// stage): a stage with fewer tasks than the quorum can never arm deadlines
// from its own samples, so it arms from the previous stage's carried P50.
// The counter proves the seeded arming happened; the off-switch control
// proves it is attributable to the carry-over.
TEST_F(StragglerTest, CarriedQuantileArmsSubQuorumStage) {
  {
    SpeculationConfig spec = FastSpec(true);  // quorum = 3
    EngineHarness h{EngineHarnessOptions{.speculation = spec}};
    // First job: 12 tasks >= quorum populate the carried distribution. No
    // carried state exists yet, so nothing is seeded.
    ASSERT_EQ(SleepyCollect(&h.ctx(), 12, /*task_ms=*/5).size(), 12u);
    EXPECT_EQ(h.ctx().counters().stage_quantile_seeded.load(), 0u);
    // Second job: 2 tasks < quorum — deadlines arm from the carried P50.
    ASSERT_EQ(SleepyCollect(&h.ctx(), 2, /*task_ms=*/5).size(), 2u);
    EXPECT_GE(h.ctx().counters().stage_quantile_seeded.load(), 1u);
  }
  {
    SpeculationConfig spec = FastSpec(true);
    spec.seed_from_previous_stage = false;
    EngineHarness h{EngineHarnessOptions{.speculation = spec}};
    ASSERT_EQ(SleepyCollect(&h.ctx(), 12, /*task_ms=*/5).size(), 12u);
    ASSERT_EQ(SleepyCollect(&h.ctx(), 2, /*task_ms=*/5).size(), 2u);
    EXPECT_EQ(h.ctx().counters().stage_quantile_seeded.load(), 0u);
  }
}

// The behavioural half: a hang on a 2-task stage (sub-quorum) is only
// rescuable because the carried estimate armed the deadline — the live
// quantile can never reach quorum with one of two tasks wedged. Pre-fix
// this scenario sat until the stage watchdog killed the job.
TEST_F(StragglerTest, CarriedQuantileRescuesHangOnSubQuorumStage) {
  EngineHarness h{EngineHarnessOptions{.speculation = FastSpec(true)}};
  // Establish the carried distribution before any fault is scripted.
  ASSERT_EQ(SleepyCollect(&h.ctx(), 12, /*task_ms=*/10).size(), 12u);

  FaultPlan plan;
  plan.events.push_back(
      HangTaskAt(EnginePoint::kTaskRun, /*after_hits=*/0, /*node_ordinal=*/-1, /*count=*/1));
  FaultInjector injector(&h.cluster(), plan);
  ProbeGuard guard(&h.ctx(), &injector);

  Status status;
  std::vector<int> out = SleepyCollect(&h.ctx(), 2, /*task_ms=*/10, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(out, (std::vector<int>{1, 4}));
  EXPECT_EQ(injector.GetStats().tasks_hung_injected, 1u);
  EXPECT_GE(h.ctx().counters().stage_quantile_seeded.load(), 1u);
  EXPECT_GE(h.ctx().counters().tasks_speculated.load(), 1u);
  EXPECT_GE(h.ctx().counters().speculative_wins.load(), 1u);
  EXPECT_GE(h.ctx().counters().tasks_cancelled.load(), 1u);
}

}  // namespace
}  // namespace flint
