// Trace-driven cost/performance simulator (Fig 11a, text results of Sec 5.5):
// runs the canonical job at many random offsets into months of market traces
// under a full provisioning strategy — server selection policy, restoration
// on revocation, checkpointing discipline, billing (hourly at the spot
// price), and managed-service fees (Spark-EMR's +25% of on-demand).

#ifndef SRC_SIM_TRACE_SIM_H_
#define SRC_SIM_TRACE_SIM_H_

#include <cstdint>

#include "src/market/marketplace.h"
#include "src/select/selection.h"
#include "src/sim/canonical_job.h"

namespace flint {

struct StrategyConfig {
  SelectionPolicyKind policy = SelectionPolicyKind::kFlintBatch;
  SelectionConfig selection;
  bool checkpointing = true;  // false: unmodified Spark (recompute-only)
  // Managed-service fee as a fraction of the on-demand price per node-hour
  // (Spark-EMR charges 25% of on-demand on top of the spot price).
  double fee_fraction_of_on_demand = 0.0;
  int cluster_size = 10;
  int trials = 200;
  uint64_t seed = 3;
};

struct StrategyResult {
  double mean_factor = 1.0;         // runtime / base runtime
  double factor_stddev = 0.0;
  double mean_cost = 0.0;           // $ per job
  double normalized_unit_cost = 1.0;  // cost / (same job on on-demand)
  double mean_revocation_events = 0.0;
  double mean_markets_used = 1.0;
};

class TraceSimulator {
 public:
  explicit TraceSimulator(Marketplace* marketplace) : marketplace_(marketplace) {}

  StrategyResult Run(const CanonicalJob& job, const StrategyConfig& config) const;

 private:
  // Acquire mutates the marketplace's internal RNG (lifetime sampling for
  // fixed-price pools), hence the non-const pointer.
  Marketplace* marketplace_;
};

}  // namespace flint

#endif  // SRC_SIM_TRACE_SIM_H_
