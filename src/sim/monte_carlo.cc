#include "src/sim/monte_carlo.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/checkpoint/checkpoint_policy.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/obs/metrics.h"

namespace flint {

McResult SimulateCanonicalJob(const CanonicalJob& job, const McConfig& config) {
  Rng rng(config.seed);
  const double delta = job.delta_hours();
  const double mttf = config.mttf_hours;
  const double m = static_cast<double>(std::max(1, config.num_markets));
  const double tau = config.forced_tau_hours > 0.0 ? config.forced_tau_hours
                                                   : OptimalCheckpointInterval(delta, mttf);
  // Checkpointing slows useful progress by delta every tau of work.
  const double work_rate =
      config.checkpointing && std::isfinite(tau) ? 1.0 / (1.0 + delta / tau) : 1.0;

  RunningStats factor_stats;
  RunningStats revocation_stats;
  std::vector<double> factors;
  factors.reserve(static_cast<size_t>(config.trials));
  int truncated = 0;

  for (int trial = 0; trial < config.trials; ++trial) {
    double elapsed = 0.0;
    double done = 0.0;             // useful work completed (hours of T)
    double done_at_ckpt = 0.0;     // durable progress
    double next_ckpt = config.checkpointing ? std::min(tau, job.base_hours) : job.base_hours * 2;
    int revocations = 0;

    double next_failure = (std::isfinite(mttf) && mttf > 0.0) ? rng.Exponential(mttf)
                                                              : std::numeric_limits<double>::infinity();
    // Safety valve: with recompute-only and tiny MTTFs the job may never
    // finish; cap at 200x base time.
    const double horizon = 200.0 * job.base_hours;
    while (done < job.base_hours && elapsed < horizon) {
      // Time until the job would finish or hit the next checkpoint.
      const double target_work = config.checkpointing
                                     ? std::min(job.base_hours, done_at_ckpt + next_ckpt)
                                     : job.base_hours;
      const double work_needed = std::max(0.0, target_work - done);
      const double t_work = work_needed / work_rate;
      if (elapsed + t_work <= next_failure) {
        elapsed += t_work;
        done = target_work;
        if (config.checkpointing && done < job.base_hours) {
          done_at_ckpt = done;  // checkpoint completes
        }
        continue;
      }
      // Revocation strikes mid-interval.
      const double t_avail = next_failure - elapsed;
      elapsed = next_failure;
      done += t_avail * work_rate;
      ++revocations;
      // With checkpointing the redo is bounded by the interval and restarts
      // from the DFS; without it, lost partitions recompute through the full
      // lineage from origin data, which is slower than the original pass
      // (recompute_multiplier).
      const double lost_base = config.checkpointing
                                   ? (done - done_at_ckpt)
                                   : done * job.recompute_multiplier;
      done -= lost_base / m;  // only 1/m of the cluster (and its work) is lost
      done = std::max(done, config.checkpointing ? done_at_ckpt : 0.0);
      elapsed += job.rd_hours;  // replacement acquisition
      next_failure = elapsed + ((std::isfinite(mttf) && mttf > 0.0)
                                    ? rng.Exponential(mttf)
                                    : std::numeric_limits<double>::infinity());
    }
    revocation_stats.Add(static_cast<double>(revocations));
    if (done < job.base_hours) {
      // Hit the safety horizon without finishing. Folding `elapsed /
      // base_hours` into the stats would record the trial as "completed in
      // 200x", deflating mean_factor exactly in the regimes where it should
      // explode; count it separately instead.
      ++truncated;
      continue;
    }
    const double factor = elapsed / job.base_hours;
    factor_stats.Add(factor);
    factors.push_back(factor);
  }
  if (truncated > 0) {
    MetricsRegistry::Global()
        .GetCounter("flint_mc_truncated_trials")
        ->Increment(static_cast<uint64_t>(truncated));
  }

  McResult result;
  result.mean_runtime_hours = factor_stats.mean() * job.base_hours;
  result.mean_factor = factor_stats.mean();
  result.factor_stddev = factor_stats.stddev();
  result.p95_factor = Percentile(factors, 95.0);
  result.mean_revocations = revocation_stats.mean();
  result.truncated_trials = truncated;
  result.completed_trials = config.trials - truncated;
  return result;
}

}  // namespace flint
