// Fixed-MTTF Monte-Carlo simulation of the canonical job: revocations arrive
// as a Poisson process; with checkpointing, work since the last checkpoint is
// lost (scaled by the fraction of servers revoked); without, all in-memory
// progress is lost and must be recomputed from source data. Used for Fig 10
// (runtime increase vs MTTF; Flint vs unmodified Spark) and as a verification
// target for the closed-form Eq. 1/4 quantities.

#ifndef SRC_SIM_MONTE_CARLO_H_
#define SRC_SIM_MONTE_CARLO_H_

#include <cstdint>

#include "src/sim/canonical_job.h"

namespace flint {

struct McConfig {
  double mttf_hours = 50.0;  // aggregate cluster MTTF
  int num_markets = 1;       // m: a revocation loses 1/m of the cluster
  bool checkpointing = true; // false = unmodified-Spark recompute-only
  // > 0 forces the checkpoint interval instead of Daly's tau_opt (for the
  // interval-sweep ablation); the per-checkpoint cost stays job.delta.
  double forced_tau_hours = 0.0;
  int trials = 2000;
  uint64_t seed = 1;
};

struct McResult {
  double mean_runtime_hours = 0.0;
  double mean_factor = 1.0;       // mean runtime / base runtime (completed trials only)
  double factor_stddev = 0.0;
  double p95_factor = 1.0;
  double mean_revocations = 0.0;
  // Trials that hit the 200x-base safety horizon before finishing. They are
  // excluded from the factor statistics above (counting them as "finished at
  // 200x" would deflate mean_factor for regimes that effectively never
  // finish); a nonzero count means the factor stats are right-censored.
  int truncated_trials = 0;
  int completed_trials = 0;
};

McResult SimulateCanonicalJob(const CanonicalJob& job, const McConfig& config);

}  // namespace flint

#endif  // SRC_SIM_MONTE_CARLO_H_
