// The canonical job model of Sec 5.5: a long-running data-parallel program
// that "checkpoints 4 GB RDD partitions every interval", simulated over
// months of market traces. Used by the Fig 10 / Fig 11 benches, which — like
// the paper's own cost-performance section — are simulation rather than
// engine-plane experiments.

#ifndef SRC_SIM_CANONICAL_JOB_H_
#define SRC_SIM_CANONICAL_JOB_H_

#include <cstdint>

#include "src/common/units.h"

namespace flint {

struct CanonicalJob {
  double base_hours = 10.0;  // T: running time with no revocations, no checkpointing
  // Checkpoint payload per interval and the DFS bandwidth that turns it into
  // delta. 4 GiB at ~500 MiB/s effective parallel write ~= 8 s... scaled to
  // the paper's minutes-order delta via per-node fan-in contention.
  double checkpoint_gib = 4.0;
  double dfs_write_gib_per_hour = 120.0;  // ~34 MiB/s effective -> delta ~= 2 min
  double rd_hours = Minutes(2);           // replacement acquisition delay
  // Redoing lost work without checkpoints is slower than the original pass:
  // inputs are re-fetched from the origin store (S3) and re-deserialized —
  // the same effect that drives Fig 9's 400-500 s recompute latencies.
  double recompute_multiplier = 2.0;

  double delta_hours() const { return checkpoint_gib / dfs_write_gib_per_hour; }
};

}  // namespace flint

#endif  // SRC_SIM_CANONICAL_JOB_H_
