#include "src/sim/trace_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <unordered_set>

#include "src/checkpoint/checkpoint_policy.h"
#include "src/common/rng.h"
#include "src/common/stats.h"

namespace flint {

namespace {

// Picks the initial per-node market assignment for a strategy.
Result<std::vector<MarketId>> InitialAssignment(const ServerSelector& selector, SimTime now,
                                                const JobProfile& profile,
                                                const StrategyConfig& config) {
  std::vector<MarketId> per_node(static_cast<size_t>(config.cluster_size), kOnDemandMarket);
  switch (config.policy) {
    case SelectionPolicyKind::kFlintBatch: {
      FLINT_ASSIGN_OR_RETURN(MarketEvaluation ev, selector.SelectBatch(now, profile));
      std::fill(per_node.begin(), per_node.end(), ev.id);
      return per_node;
    }
    case SelectionPolicyKind::kFlintInteractive: {
      FLINT_ASSIGN_OR_RETURN(MixEvaluation mix, selector.SelectInteractive(now, profile));
      for (size_t i = 0; i < per_node.size(); ++i) {
        per_node[i] = mix.markets[i % mix.markets.size()];
      }
      return per_node;
    }
    case SelectionPolicyKind::kSpotFleetCheapest: {
      FLINT_ASSIGN_OR_RETURN(MarketEvaluation ev, selector.SelectCheapest(now, profile));
      std::fill(per_node.begin(), per_node.end(), ev.id);
      return per_node;
    }
    case SelectionPolicyKind::kSpotFleetLeastVolatile: {
      FLINT_ASSIGN_OR_RETURN(MarketEvaluation ev, selector.SelectLeastVolatile(now, profile));
      std::fill(per_node.begin(), per_node.end(), ev.id);
      return per_node;
    }
    case SelectionPolicyKind::kOnDemand:
      return per_node;
  }
  return Internal("unknown policy");
}

}  // namespace

StrategyResult TraceSimulator::Run(const CanonicalJob& job, const StrategyConfig& config) const {
  Rng rng(config.seed);
  ServerSelector selector(marketplace_, config.selection);
  JobProfile profile;
  profile.delta_hours = job.delta_hours();
  profile.rd_hours = job.rd_hours;

  RunningStats factor_stats;
  RunningStats cost_stats;
  RunningStats revocation_stats;
  RunningStats market_stats;

  // Random offsets well inside the trace so the "recent window" exists.
  const double window = config.selection.history_window;
  const double trace_hours = 24.0 * 180.0;

  for (int trial = 0; trial < config.trials; ++trial) {
    const SimTime start = window + rng.NextDouble() * (trace_hours - 2.0 * window);
    Result<std::vector<MarketId>> assignment = InitialAssignment(selector, start, profile, config);
    if (!assignment.ok()) {
      continue;
    }
    // Group nodes per market; all nodes of one market revoke together.
    std::map<MarketId, int> market_nodes;
    for (MarketId id : *assignment) {
      market_nodes[id] += 1;
    }
    market_stats.Add(static_cast<double>(market_nodes.size()));

    // Aggregate MTTF drives tau.
    auto aggregate_mttf = [&](SimTime now) {
      std::vector<double> mttfs;
      for (const auto& [id, n] : market_nodes) {
        mttfs.push_back(
            marketplace_->WindowStats(id, now, window, selector.BidFor(id)).mttf_hours);
      }
      return AggregateMttf(mttfs);
    };

    // Per-market leases (a market's nodes share one revocation time).
    std::map<MarketId, Lease> leases;
    double cost = 0.0;
    auto open_lease = [&](MarketId id, SimTime t) {
      Result<Lease> lease = marketplace_->Acquire(id, selector.BidFor(id), t);
      if (!lease.ok()) {
        lease = marketplace_->Acquire(kOnDemandMarket, marketplace_->on_demand_price(), t);
      }
      leases[id] = *lease;
    };
    for (const auto& [id, n] : market_nodes) {
      open_lease(id, start);
    }

    double elapsed = 0.0;        // hours since start
    double done = 0.0;           // useful work
    double done_at_ckpt = 0.0;
    int revocations = 0;
    const double horizon = 200.0 * job.base_hours;
    std::unordered_set<MarketId> revoked_recently;

    while (done < job.base_hours && elapsed < horizon) {
      const SimTime now = start + elapsed;
      const double mttf = aggregate_mttf(now);
      const double tau = OptimalCheckpointInterval(profile.delta_hours, mttf);
      const double work_rate = (config.checkpointing && std::isfinite(tau))
                                   ? 1.0 / (1.0 + profile.delta_hours / tau)
                                   : 1.0;
      // Next market revocation among live leases.
      SimTime next_rev = kInfiniteTime;
      MarketId victim = kOnDemandMarket;
      for (const auto& [id, lease] : leases) {
        if (lease.revocation < next_rev) {
          next_rev = lease.revocation;
          victim = id;
        }
      }
      const double target_work = (config.checkpointing && std::isfinite(tau))
                                     ? std::min(job.base_hours, done_at_ckpt + tau)
                                     : job.base_hours;
      const double t_work = std::max(0.0, target_work - done) / work_rate;
      if (now + t_work <= next_rev) {
        elapsed += t_work;
        done = target_work;
        if (config.checkpointing && done < job.base_hours) {
          done_at_ckpt = done;
        }
        continue;
      }
      // Revocation of `victim` market.
      const double t_avail = std::max(0.0, next_rev - now);
      elapsed += t_avail;
      done = std::min(target_work, done + t_avail * work_rate);
      ++revocations;
      const int total_nodes = config.cluster_size;
      const int lost_nodes = market_nodes[victim];
      const double frac = static_cast<double>(lost_nodes) / static_cast<double>(total_nodes);
      // Without checkpoints, lost partitions recompute through the whole
      // lineage from origin data — slower than the first pass.
      const double lost_work =
          (config.checkpointing ? (done - done_at_ckpt)
                                : done * job.recompute_multiplier) *
          frac;
      done = std::max(config.checkpointing ? done_at_ckpt : 0.0, done - lost_work);

      // Bill and close the revoked lease; restore from the next-best market.
      cost += static_cast<double>(lost_nodes) *
              marketplace_->Cost(leases[victim], leases[victim].revocation);
      leases.erase(victim);
      market_nodes.erase(victim);
      revoked_recently.insert(victim);

      std::unordered_set<MarketId> exclude = revoked_recently;
      for (const auto& [id, n] : market_nodes) {
        exclude.insert(id);  // interactive keeps markets distinct
      }
      const SimTime t_restore = start + elapsed;
      Result<MarketEvaluation> repl =
          selector.SelectReplacement(config.policy, t_restore, profile,
                                     config.policy == SelectionPolicyKind::kFlintInteractive
                                         ? exclude
                                         : revoked_recently);
      const MarketId new_market = repl.ok() ? repl->id : kOnDemandMarket;
      elapsed += job.rd_hours;
      market_nodes[new_market] += lost_nodes;
      if (leases.count(new_market) == 0) {
        open_lease(new_market, start + elapsed);
      }
      revoked_recently.clear();
      revoked_recently.insert(victim);
    }

    // Close remaining leases.
    const SimTime end = start + elapsed;
    for (const auto& [id, lease] : leases) {
      cost += static_cast<double>(market_nodes[id]) * marketplace_->Cost(lease, end);
    }
    // Managed-service fee (per node-hour, fraction of on-demand).
    cost += config.fee_fraction_of_on_demand * marketplace_->on_demand_price() *
            static_cast<double>(config.cluster_size) * elapsed;

    const double factor = elapsed / job.base_hours;
    factor_stats.Add(factor);
    cost_stats.Add(cost);
    revocation_stats.Add(static_cast<double>(revocations));
  }

  StrategyResult result;
  result.mean_factor = factor_stats.mean();
  result.factor_stddev = factor_stats.stddev();
  result.mean_cost = cost_stats.mean();
  const double on_demand_cost = std::ceil(job.base_hours - 1e-9) *
                                marketplace_->on_demand_price() *
                                static_cast<double>(config.cluster_size);
  result.normalized_unit_cost = on_demand_cost > 0.0 ? cost_stats.mean() / on_demand_cost : 0.0;
  result.mean_revocation_events = revocation_stats.mean();
  result.mean_markets_used = market_stats.mean();
  return result;
}

}  // namespace flint
