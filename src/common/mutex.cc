#include "src/common/mutex.h"

#include <algorithm>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "src/common/log.h"

namespace flint {

// Counter access for the stats export; befriended by Mutex so the tracker
// (anonymous namespace, not nameable in the header) stays decoupled.
struct MutexCounterAccess {
  static MutexStat Snapshot(const Mutex& mu) {
    MutexStat s;
    s.name = mu.name();
    s.id = mu.id();
    s.acquisitions = mu.acquisitions_.load(std::memory_order_relaxed);
    s.contentions = mu.contentions_.load(std::memory_order_relaxed);
    s.total_hold_nanos = mu.total_hold_nanos_.load(std::memory_order_relaxed);
    s.max_hold_nanos = mu.max_hold_nanos_.load(std::memory_order_relaxed);
    return s;
  }
};

namespace {

// Default for the runtime switch: on in Debug / sanitizer builds (CMake
// defines FLINT_MUTEX_DEBUG there), off in release.
#ifdef FLINT_MUTEX_DEBUG
constexpr bool kMutexDebugDefault = true;
#else
constexpr bool kMutexDebugDefault = false;
#endif

std::atomic<bool> g_mutex_debug{kMutexDebugDefault};

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(WallClock::now().time_since_epoch())
          .count());
}

// One lock currently held by this thread.
struct HeldEntry {
  const Mutex* mu = nullptr;
  uint64_t id = 0;
  uint64_t acquired_nanos = 0;
  bool shared = false;
};

// Thread-local held-lock stack. Function-local static so it is safe to use
// from global constructors/destructors.
std::vector<HeldEntry>& HeldStack() {
  static thread_local std::vector<HeldEntry> stack;
  return stack;
}

std::string DescribeStack(const std::vector<HeldEntry>& stack) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < stack.size(); ++i) {
    os << (i > 0 ? ", " : "") << stack[i].mu->name() << (stack[i].shared ? " (shared)" : "");
  }
  os << "]";
  return os.str();
}

// Process-wide lock-order graph, held-lock registry, and violation log.
// Internally synchronized by a raw std::mutex so its own locking never
// re-enters the tracking machinery. Leaky singleton: Mutexes with static
// storage duration may be destroyed arbitrarily late.
class LockTracker {
 public:
  static LockTracker& Instance() {
    static LockTracker* tracker = new LockTracker();
    return *tracker;
  }

  uint64_t NextId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }

  void OnMutexCreated(Mutex* mu) {
    std::lock_guard<std::mutex> lock(mu_);
    live_.insert(mu);
  }

  void OnMutexDestroyed(Mutex* mu) {
    std::lock_guard<std::mutex> lock(mu_);
    live_.erase(mu);
    nodes_.erase(mu->id());
    for (auto& [id, node] : nodes_) {
      node.out.erase(mu->id());
    }
  }

  // Called with the thread's current held stack, *before* blocking on
  // `acquiring`. Records held->acquiring edges and reports any edge that
  // closes a cycle (once per unordered lock pair). With try_only, performs
  // only the re-entrancy check: a try-lock never blocks, so it cannot
  // deadlock and must not add ordering edges (which would flag legitimate
  // try-and-back-off patterns), but re-entrant try_lock on std::shared_mutex
  // is still UB worth reporting.
  void CheckAcquire(const Mutex* acquiring, const std::vector<HeldEntry>& held, bool try_only) {
    std::lock_guard<std::mutex> lock(mu_);
    Node& acq_node = nodes_[acquiring->id()];
    acq_node.name = acquiring->name();
    for (const HeldEntry& h : held) {
      if (h.id == acquiring->id()) {
        // Re-entrant acquisition: std::shared_mutex self-deadlocks (or is UB)
        // here; report it as a one-lock cycle.
        Report(acquiring->name(), h.mu->name(),
               "re-entrant acquisition of '" + std::string(acquiring->name()) +
                   "' on the same thread; held stack " + DescribeStack(held),
               acquiring->id(), h.id);
        continue;
      }
      if (try_only) {
        continue;
      }
      Node& held_node = nodes_[h.id];
      held_node.name = h.mu->name();
      auto edge = held_node.out.find(acquiring->id());
      if (edge != held_node.out.end()) {
        continue;  // known-consistent ordering
      }
      // Adding held -> acquiring. If acquiring can already reach held, the
      // new edge closes a cycle: some other thread acquired these locks in
      // the opposite order.
      std::vector<uint64_t> path;
      if (FindPathLocked(acquiring->id(), h.id, &path)) {
        std::ostringstream os;
        os << "lock-order cycle: this thread " << std::this_thread::get_id() << " holding "
           << DescribeStack(held) << " acquires '" << acquiring->name()
           << "', but the reverse order was already established: ";
        for (size_t i = 0; i + 1 < path.size(); ++i) {
          const Node& from = nodes_[path[i]];
          os << "'" << from.name << "' -> '" << nodes_[path[i + 1]].name << "' (recorded "
             << from.out.at(path[i + 1]).context << "); ";
        }
        Report(acquiring->name(), h.mu->name(), os.str(), acquiring->id(), h.id);
      }
      std::ostringstream ctx;
      ctx << "by thread " << std::this_thread::get_id() << " holding " << DescribeStack(held);
      held_node.out.emplace(acquiring->id(), EdgeInfo{ctx.str()});
    }
  }

  std::vector<LockOrderViolation> Violations() {
    std::lock_guard<std::mutex> lock(mu_);
    return violations_;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    nodes_.clear();
    violations_.clear();
    reported_pairs_.clear();
  }

  std::vector<MutexStat> Stats() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<MutexStat> out;
    out.reserve(live_.size());
    for (const Mutex* mu : live_) {
      out.push_back(MutexCounterAccess::Snapshot(*mu));
    }
    std::sort(out.begin(), out.end(), [](const MutexStat& a, const MutexStat& b) {
      return a.total_hold_nanos > b.total_hold_nanos;
    });
    return out;
  }

 private:
  struct EdgeInfo {
    std::string context;  // who recorded held->acquired, and holding what
  };
  struct Node {
    std::string name;
    std::unordered_map<uint64_t, EdgeInfo> out;
  };

  LockTracker() = default;

  // DFS: is `to` reachable from `from` in the edge graph? Fills `path` with
  // the node ids from `from` to `to` inclusive. Graphs here are tiny (one
  // node per live Mutex that ever nested), so recursion depth is bounded.
  bool FindPathLocked(uint64_t from, uint64_t to, std::vector<uint64_t>* path) {
    std::unordered_set<uint64_t> visited;
    path->clear();
    path->push_back(from);
    return DfsLocked(from, to, &visited, path);
  }

  bool DfsLocked(uint64_t cur, uint64_t to, std::unordered_set<uint64_t>* visited,
                 std::vector<uint64_t>* path) {
    if (cur == to) {
      return true;
    }
    if (!visited->insert(cur).second) {
      return false;
    }
    auto it = nodes_.find(cur);
    if (it == nodes_.end()) {
      return false;
    }
    for (const auto& [next, info] : it->second.out) {
      path->push_back(next);
      if (DfsLocked(next, to, visited, path)) {
        return true;
      }
      path->pop_back();
    }
    return false;
  }

  // Caller holds mu_.
  void Report(const char* acquired, const char* held, std::string description, uint64_t acq_id,
              uint64_t held_id) {
    const auto pair = std::make_pair(std::min(acq_id, held_id), std::max(acq_id, held_id));
    if (!reported_pairs_.insert(static_cast<uint64_t>(pair.first) << 32 | pair.second).second) {
      return;  // this lock pair was already reported
    }
    LockOrderViolation v;
    v.acquired = acquired;
    v.held = held;
    v.description = std::move(description);
    FLINT_ELOG() << "POTENTIAL DEADLOCK between '" << v.acquired << "' and '" << v.held
                 << "': " << v.description;
    violations_.push_back(std::move(v));
  }

  std::atomic<uint64_t> next_id_{1};
  std::mutex mu_;  // raw: must never feed back into lock tracking
  std::unordered_set<const Mutex*> live_;
  std::unordered_map<uint64_t, Node> nodes_;
  std::vector<LockOrderViolation> violations_;
  std::unordered_set<uint64_t> reported_pairs_;
};

void PushHeld(const Mutex* mu, uint64_t id, bool shared) {
  HeldEntry e;
  e.mu = mu;
  e.id = id;
  e.acquired_nanos = NowNanos();
  e.shared = shared;
  HeldStack().push_back(e);
}

// Pops `mu` from the held stack (locks may be released out of order) and
// returns the hold duration, or 0 if the entry is absent — e.g. debugging was
// switched on after this lock was acquired.
uint64_t PopHeld(const Mutex* mu) {
  std::vector<HeldEntry>& stack = HeldStack();
  for (size_t i = stack.size(); i > 0; --i) {
    if (stack[i - 1].mu == mu) {
      const uint64_t held_for = NowNanos() - stack[i - 1].acquired_nanos;
      stack.erase(stack.begin() + static_cast<ptrdiff_t>(i - 1));
      return held_for;
    }
  }
  return 0;
}

void UpdateMax(std::atomic<uint64_t>& max_field, uint64_t value) {
  uint64_t cur = max_field.load(std::memory_order_relaxed);
  while (value > cur && !max_field.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

Mutex::Mutex(const char* name) : name_(name), id_(LockTracker::Instance().NextId()) {
  LockTracker::Instance().OnMutexCreated(this);
}

Mutex::~Mutex() { LockTracker::Instance().OnMutexDestroyed(this); }

void Mutex::Lock() {
  if (!g_mutex_debug.load(std::memory_order_relaxed)) {
    mu_.lock();
    return;
  }
  if (!HeldStack().empty()) {
    LockTracker::Instance().CheckAcquire(this, HeldStack(), /*try_only=*/false);
  }
  if (!mu_.try_lock()) {
    contentions_.fetch_add(1, std::memory_order_relaxed);
    mu_.lock();
  }
  acquisitions_.fetch_add(1, std::memory_order_relaxed);
  PushHeld(this, id_, /*shared=*/false);
}

void Mutex::Unlock() {
  if (g_mutex_debug.load(std::memory_order_relaxed)) {
    const uint64_t held_for = PopHeld(this);
    if (held_for > 0) {
      total_hold_nanos_.fetch_add(held_for, std::memory_order_relaxed);
      UpdateMax(max_hold_nanos_, held_for);
    }
  }
  mu_.unlock();
}

bool Mutex::TryLock() {
  if (g_mutex_debug.load(std::memory_order_relaxed) && !HeldStack().empty()) {
    LockTracker::Instance().CheckAcquire(this, HeldStack(), /*try_only=*/true);
  }
  if (!mu_.try_lock()) {
    return false;
  }
  if (g_mutex_debug.load(std::memory_order_relaxed)) {
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
    PushHeld(this, id_, /*shared=*/false);
  }
  return true;
}

void Mutex::ReaderLock() {
  if (!g_mutex_debug.load(std::memory_order_relaxed)) {
    mu_.lock_shared();
    return;
  }
  if (!HeldStack().empty()) {
    LockTracker::Instance().CheckAcquire(this, HeldStack(), /*try_only=*/false);
  }
  if (!mu_.try_lock_shared()) {
    contentions_.fetch_add(1, std::memory_order_relaxed);
    mu_.lock_shared();
  }
  acquisitions_.fetch_add(1, std::memory_order_relaxed);
  PushHeld(this, id_, /*shared=*/true);
}

void Mutex::ReaderUnlock() {
  if (g_mutex_debug.load(std::memory_order_relaxed)) {
    const uint64_t held_for = PopHeld(this);
    if (held_for > 0) {
      total_hold_nanos_.fetch_add(held_for, std::memory_order_relaxed);
      UpdateMax(max_hold_nanos_, held_for);
    }
  }
  mu_.unlock_shared();
}

bool SetMutexDebug(bool enabled) { return g_mutex_debug.exchange(enabled); }

bool MutexDebugEnabled() { return g_mutex_debug.load(std::memory_order_relaxed); }

std::vector<LockOrderViolation> GetLockOrderViolations() {
  return LockTracker::Instance().Violations();
}

void ResetLockOrderTrackingForTest() { LockTracker::Instance().Reset(); }

std::vector<MutexStat> GetMutexStats() { return LockTracker::Instance().Stats(); }

std::string FormatMutexStats(size_t max_rows) {
  std::vector<MutexStat> stats = GetMutexStats();
  std::ostringstream os;
  os << "lock                                     acq        cont       hold_ms    max_hold_us\n";
  size_t rows = 0;
  for (const MutexStat& s : stats) {
    if (rows++ >= max_rows) {
      break;
    }
    std::string name = s.name;
    if (name.size() > 40) {
      name.resize(40);
    }
    os << name << std::string(41 - name.size(), ' ');
    std::string acq = std::to_string(s.acquisitions);
    std::string cont = std::to_string(s.contentions);
    std::string hold = std::to_string(s.total_hold_nanos / 1000000);
    std::string max_hold = std::to_string(s.max_hold_nanos / 1000);
    os << acq << std::string(acq.size() < 11 ? 11 - acq.size() : 1, ' ');
    os << cont << std::string(cont.size() < 11 ? 11 - cont.size() : 1, ' ');
    os << hold << std::string(hold.size() < 11 ? 11 - hold.size() : 1, ' ');
    os << max_hold << "\n";
  }
  return os.str();
}

}  // namespace flint
