// Fixed-size worker pool used by the engine's executors and by benchmark
// harnesses for parallel trials. Tasks are arbitrary std::function<void()>;
// the pool drains and joins in the destructor.

#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace flint {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Never blocks. Returns false if the pool is closed or
  // shutting down.
  bool Submit(std::function<void()> task);

  // Stops accepting new tasks. Tasks already queued or running still finish;
  // Wait() and the destructor behave as before. Used when a node receives a
  // revocation warning: it keeps executing but must not take new work.
  void Close();

  // Blocks until every submitted task has finished executing.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

// Runs fn(i) for i in [0, n) across `num_threads` workers and waits.
void ParallelFor(size_t n, size_t num_threads, const std::function<void(size_t)>& fn);

}  // namespace flint

#endif  // SRC_COMMON_THREAD_POOL_H_
