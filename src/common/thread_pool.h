// Fixed-size worker pool used by the engine's executors and by benchmark
// harnesses for parallel trials. Tasks are arbitrary std::function<void()>;
// the pool drains and joins in the destructor.

#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace flint {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Never blocks. Returns false if the pool is closed or
  // shutting down — callers that cannot tolerate a dropped task must check.
  [[nodiscard]] bool Submit(std::function<void()> task);

  // Stops accepting new tasks. Tasks already queued or running still finish;
  // Wait() and the destructor behave as before. Used when a node receives a
  // revocation warning: it keeps executing but must not take new work.
  void Close();

  // Blocks until every submitted task has finished executing.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  Mutex mutex_{"ThreadPool::mutex_"};
  CondVar work_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
  // flint-lint: allow(lock-missing-guard) filled in the constructor, joined in the destructor; immutable while workers run
  std::vector<std::thread> threads_;
  size_t in_flight_ GUARDED_BY(mutex_) = 0;
  bool shutdown_ GUARDED_BY(mutex_) = false;
};

// Runs fn(i) for i in [0, n) across `num_threads` workers and waits.
void ParallelFor(size_t n, size_t num_threads, const std::function<void(size_t)>& fn);

}  // namespace flint

#endif  // SRC_COMMON_THREAD_POOL_H_
