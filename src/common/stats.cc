#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace flint {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

P2Quantile::P2Quantile(double q) : q_(q) {
  desired_[0] = 1.0;
  desired_[1] = 1.0 + 2.0 * q;
  desired_[2] = 1.0 + 4.0 * q;
  desired_[3] = 3.0 + 2.0 * q;
  desired_[4] = 5.0;
  increments_[0] = 0.0;
  increments_[1] = q / 2.0;
  increments_[2] = q;
  increments_[3] = (1.0 + q) / 2.0;
  increments_[4] = 1.0;
}

double P2Quantile::Parabolic(int i, double d) const {
  return heights_[i] +
         d / (positions_[i + 1] - positions_[i - 1]) *
             ((positions_[i] - positions_[i - 1] + d) * (heights_[i + 1] - heights_[i]) /
                  (positions_[i + 1] - positions_[i]) +
              (positions_[i + 1] - positions_[i] - d) * (heights_[i] - heights_[i - 1]) /
                  (positions_[i] - positions_[i - 1]));
}

double P2Quantile::Linear(int i, double d) const {
  const int j = i + static_cast<int>(d);
  return heights_[i] + d * (heights_[j] - heights_[i]) / (positions_[j] - positions_[i]);
}

void P2Quantile::Add(double x) {
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) {
      std::sort(heights_, heights_ + 5);
      for (int i = 0; i < 5; ++i) {
        positions_[i] = static_cast<double>(i + 1);
      }
    }
    return;
  }
  int cell;
  if (x < heights_[0]) {
    heights_[0] = x;
    cell = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    cell = 3;
  } else {
    cell = 0;
    while (cell < 3 && x >= heights_[cell + 1]) {
      ++cell;
    }
  }
  ++count_;
  for (int i = cell + 1; i < 5; ++i) {
    positions_[i] += 1.0;
  }
  for (int i = 0; i < 5; ++i) {
    desired_[i] += increments_[i];
  }
  // Adjust the three interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    if ((d >= 1.0 && positions_[i + 1] - positions_[i] > 1.0) ||
        (d <= -1.0 && positions_[i - 1] - positions_[i] < -1.0)) {
      const double step = d >= 0.0 ? 1.0 : -1.0;
      double h = Parabolic(i, step);
      if (h <= heights_[i - 1] || h >= heights_[i + 1]) {
        h = Linear(i, step);
      }
      heights_[i] = h;
      positions_[i] += step;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) {
    return 0.0;
  }
  if (count_ < 5) {
    // Exact small-sample quantile over the (unsorted) first observations.
    std::vector<double> sorted(heights_, heights_ + count_);
    return Percentile(std::move(sorted), q_ * 100.0);
  }
  return heights_[2];
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  if (p <= 0.0) {
    return samples.front();
  }
  if (p >= 100.0) {
    return samples.back();
  }
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) {
    return samples.back();
  }
  return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
}

std::vector<std::pair<double, double>> Ecdf(std::vector<double> samples) {
  std::vector<std::pair<double, double>> out;
  if (samples.empty()) {
    return out;
  }
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    // Collapse runs of equal values to the final (highest) CDF value.
    if (i + 1 < samples.size() && samples[i + 1] == samples[i]) {
      continue;
    }
    out.emplace_back(samples[i], static_cast<double>(i + 1) / n);
  }
  return out;
}

double PearsonCorrelation(const std::vector<double>& a, const std::vector<double>& b) {
  const size_t n = std::min(a.size(), b.size());
  if (n < 2) {
    return 0.0;
  }
  double mean_a = 0.0;
  double mean_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0.0 || var_b <= 0.0) {
    return 0.0;
  }
  return cov / std::sqrt(var_a * var_b);
}

double AggregateMttf(const std::vector<double>& mttfs) {
  double rate = 0.0;
  for (double m : mttfs) {
    if (m > 0.0 && std::isfinite(m)) {
      rate += 1.0 / m;
    }
  }
  if (rate <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return 1.0 / rate;
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double s = 0.0;
  for (double x : xs) {
    s += x;
  }
  return s / static_cast<double>(xs.size());
}

double SampleVariance(const std::vector<double>& xs) {
  if (xs.size() < 2) {
    return 0.0;
  }
  const double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) {
    s += (x - m) * (x - m);
  }
  return s / static_cast<double>(xs.size() - 1);
}

}  // namespace flint
