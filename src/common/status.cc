#include "src/common/status.h"

namespace flint {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace flint
