// FlatHashMap: a minimal open-addressing hash map for the engine's
// aggregation hot paths (map-side combiners, reduce-side builds).
//
// Layout: entries live densely in one std::vector<std::pair<K, V>> in
// insertion order; a separate power-of-two index table of uint32_t slots
// (linear probing, empty = 0xFFFFFFFF) maps hashes to entry positions. This
// buys three things over std::unordered_map on the shuffle path:
//   - one contiguous allocation for the payload instead of a node per key,
//     so the combine loop walks cache lines, not pointers;
//   - iteration in insertion order, which is deterministic — downstream
//     sorts stay correct and flint-lint's unordered-iteration checks never
//     apply (no hash-order traversal exists);
//   - TakeEntries() moves the payload straight into a partition vector with
//     zero copies.
//
// Deliberately erase-less: the shuffle path only inserts and updates, so
// there are no tombstones and probe chains never contain deleted slots.
// Growth doubles the index and re-points it at the (unmoved) entries.

#ifndef SRC_COMMON_FLAT_HASH_H_
#define SRC_COMMON_FLAT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace flint {

template <typename K, typename V, typename Hash>
class FlatHashMap {
 public:
  using Entry = std::pair<K, V>;

  FlatHashMap() = default;
  explicit FlatHashMap(Hash hash) : hash_(std::move(hash)) {}

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  // Pre-sizes for `n` keys: one entries reservation plus an index large
  // enough that inserting n keys never rehashes.
  void Reserve(size_t n) {
    entries_.reserve(n);
    size_t cap = kMinCapacity;
    while (n + 1 > cap - cap / 8) {  // same load bound as Grow()
      cap *= 2;
    }
    if (cap > slots_.size()) {
      Rehash(cap);
    }
  }

  // Inserts (key, value) if the key is absent. Returns the value slot and
  // whether an insert happened (false = key existed; the caller combines).
  // The pointer is invalidated by the next insert.
  std::pair<V*, bool> FindOrEmplace(const K& key, const V& value) {
    return FindOrEmplaceHashed(hash_(key), key, value);
  }

  // Same, with the caller supplying hash_(key) — the shuffle sinks already
  // hash every key once to pick its bucket and must not pay for it twice.
  std::pair<V*, bool> FindOrEmplaceHashed(size_t hash, const K& key, const V& value) {
    if (entries_.size() + 1 > slots_.size() - slots_.size() / 8) {
      Grow();
    }
    const size_t mask = slots_.size() - 1;
    size_t idx = hash & mask;
    while (slots_[idx] != kEmpty) {
      Entry& e = entries_[slots_[idx]];
      if (e.first == key) {
        return {&e.second, false};
      }
      idx = (idx + 1) & mask;
    }
    slots_[idx] = static_cast<uint32_t>(entries_.size());
    entries_.emplace_back(key, value);
    return {&entries_.back().second, true};
  }

  // Value slot for `key`, default-inserting V{} if absent.
  V& operator[](const K& key) { return *FindOrEmplace(key, V{}).first; }

  // Read-only lookup; nullptr if absent.
  const V* Find(const K& key) const {
    if (slots_.empty()) {
      return nullptr;
    }
    const size_t mask = slots_.size() - 1;
    size_t idx = hash_(key) & mask;
    while (slots_[idx] != kEmpty) {
      const Entry& e = entries_[slots_[idx]];
      if (e.first == key) {
        return &e.second;
      }
      idx = (idx + 1) & mask;
    }
    return nullptr;
  }

  // Entries in insertion order.
  const std::vector<Entry>& entries() const { return entries_; }

  // Moves the payload out (insertion order); the map is empty afterwards.
  std::vector<Entry> TakeEntries() {
    std::vector<Entry> out = std::move(entries_);
    entries_.clear();
    slots_.clear();
    return out;
  }

  size_t capacity() const { return slots_.size(); }  // index slots (for tests)

 private:
  static constexpr uint32_t kEmpty = 0xFFFFFFFFu;
  static constexpr size_t kMinCapacity = 16;

  void Grow() { Rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2); }

  void Rehash(size_t new_cap) {
    slots_.assign(new_cap, kEmpty);
    const size_t mask = new_cap - 1;
    for (size_t i = 0; i < entries_.size(); ++i) {
      size_t idx = hash_(entries_[i].first) & mask;
      while (slots_[idx] != kEmpty) {
        idx = (idx + 1) & mask;
      }
      slots_[idx] = static_cast<uint32_t>(i);
    }
  }

  Hash hash_;
  std::vector<Entry> entries_;
  std::vector<uint32_t> slots_;  // positions into entries_, kEmpty when free
};

}  // namespace flint

#endif  // SRC_COMMON_FLAT_HASH_H_
