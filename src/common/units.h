// Units used throughout Flint.
//
// Simulated time is a double count of *hours* (SimTime/SimDuration) because
// the paper's market quantities (MTTF, billing) are hourly. Engine-plane time
// (real execution) uses std::chrono. Byte quantities are uint64_t with named
// helpers.

#ifndef SRC_COMMON_UNITS_H_
#define SRC_COMMON_UNITS_H_

#include <chrono>
#include <cstdint>

namespace flint {

// --- Simulation-plane time (hours as double) ---
using SimTime = double;      // absolute simulated time, in hours since epoch 0
using SimDuration = double;  // simulated duration, in hours

constexpr SimDuration Hours(double h) { return h; }
constexpr SimDuration Minutes(double m) { return m / 60.0; }
constexpr SimDuration Seconds(double s) { return s / 3600.0; }

constexpr double ToSeconds(SimDuration d) { return d * 3600.0; }
constexpr double ToMinutes(SimDuration d) { return d * 60.0; }

// --- Engine-plane (real) time ---
using WallClock = std::chrono::steady_clock;
using WallTime = WallClock::time_point;
using WallDuration = std::chrono::duration<double>;  // seconds

// --- Bytes ---
constexpr uint64_t kKiB = 1024ULL;
constexpr uint64_t kMiB = 1024ULL * kKiB;
constexpr uint64_t kGiB = 1024ULL * kMiB;

constexpr uint64_t KiB(uint64_t n) { return n * kKiB; }
constexpr uint64_t MiB(uint64_t n) { return n * kMiB; }
constexpr uint64_t GiB(uint64_t n) { return n * kGiB; }

}  // namespace flint

#endif  // SRC_COMMON_UNITS_H_
