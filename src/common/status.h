// Lightweight error-handling primitives used across all Flint libraries.
//
// Flint avoids exceptions on hot paths (scheduler, block manager, market
// simulator). Fallible operations return Status, or Result<T> when they also
// produce a value.

#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace flint {

// Error categories. Kept deliberately small; the message carries detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kUnavailable,   // transient: e.g. node revoked mid-operation
  kDataLoss,      // e.g. cached partition evicted and origin unavailable
  kCancelled,
  kDeadlineExceeded,  // a bounded wait expired, e.g. the stage watchdog
  kInternal,
};

std::string_view StatusCodeName(StatusCode code);

// Value-semantic status: either OK or (code, message). [[nodiscard]] at class
// level: every function returning a Status is fallible, and silently dropping
// one hides the failure. Intentional drops go through MustSucceed() (fatal on
// error) or an explicit (void) cast with a comment saying why.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk && "use Status::Ok() for success");
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable "CODE: message" form for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
inline Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status Unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status DataLoss(std::string msg) { return Status(StatusCode::kDataLoss, std::move(msg)); }
inline Status Cancelled(std::string msg) { return Status(StatusCode::kCancelled, std::move(msg)); }
inline Status DeadlineExceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
inline Status Internal(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }

// Result<T>: either a value or a non-OK Status. [[nodiscard]] for the same
// reason as Status: discarding one discards both the value and the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : value_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(value_).ok() && "Result built from OK status carries no value");
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) {
      return kOkStatus;
    }
    return std::get<Status>(value_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(value_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    if (ok()) {
      return std::get<T>(value_);
    }
    return fallback;
  }

 private:
  std::variant<T, Status> value_;
};

// Explicitly consumes a Status that must be OK; terminates (via assert in
// debug, log-and-abort semantics are unnecessary for a must-succeed internal
// invariant) if it is not. Use at call sites where failure is impossible by
// construction and a dropped return would otherwise be silent.
inline void MustSucceed(const Status& status) {
  assert(status.ok() && "MustSucceed: operation failed");
  (void)status;
}

// Propagates a non-OK status out of the current function.
#define FLINT_RETURN_IF_ERROR(expr)        \
  do {                                     \
    ::flint::Status _st = (expr);          \
    if (!_st.ok()) {                       \
      return _st;                          \
    }                                      \
  } while (false)

// Assigns the value of a Result expression to `lhs`, or propagates the error.
#define FLINT_ASSIGN_OR_RETURN(lhs, expr)  \
  auto FLINT_CONCAT_(_res, __LINE__) = (expr);                       \
  if (!FLINT_CONCAT_(_res, __LINE__).ok()) {                         \
    return FLINT_CONCAT_(_res, __LINE__).status();                   \
  }                                                                  \
  lhs = std::move(FLINT_CONCAT_(_res, __LINE__)).value()

#define FLINT_CONCAT_INNER_(a, b) a##b
#define FLINT_CONCAT_(a, b) FLINT_CONCAT_INNER_(a, b)

}  // namespace flint

#endif  // SRC_COMMON_STATUS_H_
