// Annotated mutex for all Flint locking.
//
// flint::Mutex wraps std::shared_mutex with the Clang capability annotations
// from thread_annotations.h, so a clang build with -Wthread-safety proves
// every GUARDED_BY / REQUIRES contract at compile time. On top of that, when
// runtime lock debugging is enabled (the default in Debug and sanitizer
// builds, see FLINT_MUTEX_DEBUG in CMakeLists.txt), every Mutex maintains:
//
//   - a per-process lock-order graph: each acquisition made while other locks
//     are held records held->acquired edges; an acquisition that closes a
//     cycle (a potential ABBA deadlock) is reported once per lock pair with
//     both lock names and a summary of both acquisition contexts, without
//     blocking. TSan only sees interleavings that execute; the order graph
//     flags the deadlock the moment the *second* ordering is ever used, even
//     if the two threads never actually interleave.
//   - per-lock contention and hold-time counters, exported through
//     GetMutexStats() for dashboards and tests.
//
// In release builds with debugging off, Lock()/Unlock() compile down to the
// bare std::shared_mutex operations plus one relaxed atomic load.
//
// Waiting uses flint::CondVar. It deliberately has no predicate overloads:
// predicates would run inside an unanalyzed lambda, hiding guarded-field
// reads from -Wthread-safety. Callers write the standard explicit loop
//
//   MutexLock lock(&mutex_);
//   while (!condition_)  // guarded read, visibly under the lock
//     cv_.Wait(mutex_);
//
// which the analysis checks end to end.

#ifndef SRC_COMMON_MUTEX_H_
#define SRC_COMMON_MUTEX_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/common/units.h"

namespace flint {

class CAPABILITY("mutex") Mutex {
 public:
  // `name` must outlive the Mutex (string literals only, by convention
  // "Class::member_"). Named locks are what make lock-order reports and the
  // stats export readable; see DESIGN.md "Concurrency discipline".
  explicit Mutex(const char* name);
  Mutex() : Mutex("unnamed") {}
  ~Mutex();

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE();
  void Unlock() RELEASE();
  bool TryLock() TRY_ACQUIRE(true);

  // Shared (reader) side. Readers participate in lock-order tracking exactly
  // like writers: a shared acquisition can deadlock against a writer just as
  // an exclusive one can.
  void ReaderLock() ACQUIRE_SHARED();
  void ReaderUnlock() RELEASE_SHARED();

  const char* name() const { return name_; }
  uint64_t id() const { return id_; }

  // BasicLockable interface so flint::CondVar (condition_variable_any) can
  // release/reacquire through the same tracking. Not for direct use.
  void lock() ACQUIRE() { Lock(); }
  void unlock() RELEASE() { Unlock(); }

 private:
  // Snapshots the counters for GetMutexStats() (defined in mutex.cc).
  friend struct MutexCounterAccess;

  std::shared_mutex mu_;
  const char* name_;
  const uint64_t id_;  // process-unique, never reused

  // Contention/hold-time counters, updated only while lock debugging is on.
  std::atomic<uint64_t> acquisitions_{0};
  std::atomic<uint64_t> contentions_{0};
  std::atomic<uint64_t> total_hold_nanos_{0};
  std::atomic<uint64_t> max_hold_nanos_{0};
};

// RAII exclusive lock.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() {
    if (!released_) {
      mu_->Unlock();
    }
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // Early release (absl::ReleasableMutexLock-style); the destructor then
  // does nothing.
  void Release() RELEASE() {
    released_ = true;
    mu_->Unlock();
  }

 private:
  Mutex* const mu_;
  bool released_ = false;
};

// RAII shared (reader) lock.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(Mutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) { mu_->ReaderLock(); }
  ~ReaderMutexLock() RELEASE() { mu_->ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// Condition variable bound to flint::Mutex. Release/reacquire inside Wait*
// flows through Mutex::unlock()/lock(), so held-lock tracking stays accurate
// across waits.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  // Returns cv_status::timeout when the deadline passed without a notify.
  std::cv_status WaitFor(Mutex& mu, WallDuration timeout) REQUIRES(mu) {
    return cv_.wait_for(mu, timeout);
  }
  std::cv_status WaitUntil(Mutex& mu, WallTime deadline) REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

// --- lock debugging: runtime switch, reports, and the stats export ---

// Turns the lock-order detector and per-lock counters on/off process-wide.
// Defaults to on when built with FLINT_MUTEX_DEBUG (Debug / sanitizer
// builds), off otherwise. Returns the previous value.
bool SetMutexDebug(bool enabled);
bool MutexDebugEnabled();

// One detected potential deadlock: acquiring `acquired` while holding `held`
// closed a cycle in the lock-order graph. Each lock pair is reported once.
struct LockOrderViolation {
  std::string acquired;     // name of the lock whose acquisition closed the cycle
  std::string held;         // name of the already-held lock it cycles with
  std::string description;  // both acquisition contexts, human-readable
};

// Violations recorded since process start (or the last reset). Thread-safe.
std::vector<LockOrderViolation> GetLockOrderViolations();

// Test hook: clears recorded violations AND the accumulated lock-order graph
// so tests seeding intentional ABBA cycles cannot contaminate later tests.
void ResetLockOrderTrackingForTest();

// Snapshot of one live Mutex's counters (see Mutex; only meaningful while
// mutex debugging is enabled).
struct MutexStat {
  std::string name;
  uint64_t id = 0;
  uint64_t acquisitions = 0;
  uint64_t contentions = 0;
  uint64_t total_hold_nanos = 0;
  uint64_t max_hold_nanos = 0;
};

// Per-instance counters of every live Mutex, sorted by descending
// total_hold_nanos. The registry outlives individual locks' usefulness
// windows; destroyed Mutexes drop out.
std::vector<MutexStat> GetMutexStats();

// Human-readable table of GetMutexStats() (top `max_rows` rows), for
// dashboards and FLINT_ILOG dumps.
std::string FormatMutexStats(size_t max_rows = 20);

}  // namespace flint

#endif  // SRC_COMMON_MUTEX_H_
