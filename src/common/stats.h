// Small statistics toolkit: running moments, streaming quantiles, percentiles,
// ECDF, Pearson correlation, and mean aggregations. Used by the trace analyzer
// (MTTF, correlation heatmaps), the selection policies (variance of running
// time), the scheduler's straggler deadlines (streaming P50/P95 of task
// runtimes), and the benchmark harnesses (reporting).

#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace flint {

// Welford-style running mean/variance.
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Streaming quantile estimator (Jain & Chlamtac's P² algorithm): tracks one
// quantile in O(1) memory without storing the sample. Exact until five
// observations have arrived (it interpolates over the stored sorted five),
// then maintains five markers whose heights approximate the quantile. Used by
// the DAG scheduler to derive per-task speculation deadlines from the running
// P50/P95 of attempt runtimes within a stage.
class P2Quantile {
 public:
  // `q` in (0, 1), e.g. 0.5 for the median, 0.95 for the tail.
  explicit P2Quantile(double q);

  void Add(double x);
  size_t count() const { return count_; }
  // Current estimate; 0 before the first observation.
  double value() const;

 private:
  double Parabolic(int i, double d) const;
  double Linear(int i, double d) const;

  double q_;
  size_t count_ = 0;
  double heights_[5] = {};   // marker heights (ascending once initialized)
  double positions_[5] = {}; // actual marker positions (1-based)
  double desired_[5] = {};   // desired marker positions
  double increments_[5] = {};
};

// Percentile of a sample (linear interpolation between order statistics).
// `p` in [0, 100]. Returns 0 for an empty sample.
double Percentile(std::vector<double> samples, double p);

// Empirical CDF evaluated at sorted breakpoints: returns (x, F(x)) pairs for
// each distinct sample value. Used to reproduce Fig 2's availability ECDFs.
std::vector<std::pair<double, double>> Ecdf(std::vector<double> samples);

// Pearson correlation coefficient of two equal-length series. Returns 0 if
// either series has zero variance or the series are shorter than 2.
double PearsonCorrelation(const std::vector<double>& a, const std::vector<double>& b);

// Harmonic-mean-style MTTF aggregation for an m-market mix (paper Eq. 3):
// MTTF = 1 / (1/MTTF_1 + ... + 1/MTTF_m). Infinite inputs contribute 0 rate.
double AggregateMttf(const std::vector<double>& mttfs);

double Mean(const std::vector<double>& xs);
double SampleVariance(const std::vector<double>& xs);

}  // namespace flint

#endif  // SRC_COMMON_STATS_H_
