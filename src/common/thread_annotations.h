// Clang -Wthread-safety capability annotations, following the attribute set
// Abseil and LevelDB ship with. On Clang every macro expands to the
// corresponding attribute and the capability analysis proves lock/state
// invariants at compile time; on GCC (which has no such analysis) they all
// expand to nothing, so annotated code stays portable.
//
// Conventions used across Flint (see DESIGN.md "Concurrency discipline"):
//   - every mutex-guarded field carries GUARDED_BY(mutex_);
//   - every helper that expects its caller to hold a lock is suffixed
//     *Locked() and annotated REQUIRES(mutex_);
//   - scoped lockers (MutexLock / ReaderMutexLock in src/common/mutex.h) are
//     the only way locks are normally taken; bare Lock()/Unlock() appears
//     only in hand-over-hand loops (TimerQueue::Loop) and stays balanced on
//     every path so the analysis can follow it.

#ifndef SRC_COMMON_THREAD_ANNOTATIONS_H_
#define SRC_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define FLINT_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define FLINT_THREAD_ANNOTATION_(x)  // no-op
#endif

// Class attribute: the type is a lockable capability ("mutex").
#define CAPABILITY(x) FLINT_THREAD_ANNOTATION_(capability(x))

// Class attribute: RAII object that acquires a capability at construction
// and releases it at destruction.
#define SCOPED_CAPABILITY FLINT_THREAD_ANNOTATION_(scoped_lockable)

// Data member is protected by the given capability.
#define GUARDED_BY(x) FLINT_THREAD_ANNOTATION_(guarded_by(x))

// Pointer member whose *pointee* is protected by the given capability.
#define PT_GUARDED_BY(x) FLINT_THREAD_ANNOTATION_(pt_guarded_by(x))

// Lock-ordering hints (checked by -Wthread-safety-beta).
#define ACQUIRED_BEFORE(...) FLINT_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) FLINT_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

// Function requires the capability to be held (exclusively / shared) on entry
// and does not release it.
#define REQUIRES(...) FLINT_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) FLINT_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// Function acquires the capability (exclusively / shared) and holds it on
// return.
#define ACQUIRE(...) FLINT_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) FLINT_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

// Function releases the capability.
#define RELEASE(...) FLINT_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) FLINT_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) FLINT_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

// Function attempts to acquire the capability and returns `success` on
// success.
#define TRY_ACQUIRE(...) FLINT_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) FLINT_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

// Caller must NOT hold the capability (non-reentrant locks).
#define EXCLUDES(...) FLINT_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Runtime assertion that the capability is held; teaches the analysis the
// fact without acquiring.
#define ASSERT_CAPABILITY(x) FLINT_THREAD_ANNOTATION_(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) FLINT_THREAD_ANNOTATION_(assert_shared_capability(x))

// Function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) FLINT_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch. Policy (enforced by review and tools/check.sh --static): this
// may appear only inside src/common/mutex.* — anywhere else it needs an
// inline comment justifying why the analysis cannot express the invariant.
#define NO_THREAD_SAFETY_ANALYSIS FLINT_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // SRC_COMMON_THREAD_ANNOTATIONS_H_
