// CRC32 (IEEE 802.3 polynomial, reflected) used to fingerprint checkpoint
// objects stored in the DFS. The checkpoint layer records a CRC per partition
// object and in the per-RDD manifest; verified restores compare the two to
// detect corrupted or torn checkpoints before trusting them.

#ifndef SRC_COMMON_CRC32_H_
#define SRC_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace flint {

// CRC32 of `len` bytes starting at `data`. Chainable: pass a previous result
// as `seed` to extend the checksum over discontiguous buffers.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

}  // namespace flint

#endif  // SRC_COMMON_CRC32_H_
