#include "src/common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace flint {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace log_internal {

void Emit(LogLevel level, const std::string& message) {
  if (level < GetLogLevel() || message.empty()) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[flint %s] %s\n", LevelTag(level), message.c_str());
}

}  // namespace log_internal
}  // namespace flint
