// Deterministic random number generation for simulations and workload
// generators. Every source of randomness in Flint flows from a seeded Rng so
// that experiments are exactly reproducible.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <limits>

namespace flint {

// SplitMix64-seeded xoshiro256**. Small, fast, and high-quality enough for
// Monte-Carlo simulation; not for cryptographic use.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Uniform integer in [0, n). Unbiased via rejection.
  uint64_t UniformInt(uint64_t n) {
    if (n == 0) {
      return 0;
    }
    const uint64_t threshold = (0 - n) % n;
    for (;;) {
      uint64_t r = NextU64();
      if (r >= threshold) {
        return r % n;
      }
    }
  }

  // Exponential with the given mean (= 1/rate). Used for revocation
  // inter-arrival times given an MTTF.
  double Exponential(double mean) {
    double u = NextDouble();
    // Avoid log(0).
    if (u <= 0.0) {
      u = std::numeric_limits<double>::min();
    }
    return -mean * std::log(1.0 - u);
  }

  // Standard normal via Box-Muller (cached second value).
  double Normal(double mean = 0.0, double stddev = 1.0) {
    if (has_cached_normal_) {
      has_cached_normal_ = false;
      return mean + stddev * cached_normal_;
    }
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 <= 0.0) {
      u1 = std::numeric_limits<double>::min();
    }
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return mean + stddev * r * std::cos(theta);
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

  // Pareto with scale x_m and shape alpha; heavy-tailed, used for "peaky"
  // spot-price spike magnitudes.
  double Pareto(double x_m, double alpha) {
    double u = NextDouble();
    if (u <= 0.0) {
      u = std::numeric_limits<double>::min();
    }
    return x_m / std::pow(1.0 - u, 1.0 / alpha);
  }

  // Forks an independent stream; used to give each market / partition its own
  // generator so ordering of draws cannot leak between components.
  Rng Fork() { return Rng(NextU64() ^ 0xa5a5a5a55a5a5a5aULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4] = {};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace flint

#endif  // SRC_COMMON_RNG_H_
