// Minimal leveled logger. Thread-safe, writes to stderr. Benchmarks lower the
// level to kWarn so harness output stays clean.

#ifndef SRC_COMMON_LOG_H_
#define SRC_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace flint {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace log_internal {

void Emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Emit(level_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (level_ >= GetLogLevel()) {
      stream_ << v;
    }
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_internal

#define FLINT_LOG(level) ::flint::log_internal::LogLine(::flint::LogLevel::level)
#define FLINT_DLOG() FLINT_LOG(kDebug)
#define FLINT_ILOG() FLINT_LOG(kInfo)
#define FLINT_WLOG() FLINT_LOG(kWarn)
#define FLINT_ELOG() FLINT_LOG(kError)

}  // namespace flint

#endif  // SRC_COMMON_LOG_H_
