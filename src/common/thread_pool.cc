#include "src/common/thread_pool.h"

#include <atomic>
#include <utility>

namespace flint {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = 1;
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mutex_);
    shutdown_ = true;
  }
  work_available_.NotifyAll();
  for (auto& t : threads_) {
    t.join();
  }
}

void ThreadPool::Close() {
  {
    MutexLock lock(&mutex_);
    shutdown_ = true;
  }
  // Workers drain the remaining queue before exiting, so every task accepted
  // before Close still runs (and pushes its outcome) exactly once.
  work_available_.NotifyAll();
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mutex_);
    if (shutdown_) {
      return false;
    }
    queue_.push_back(std::move(task));
  }
  work_available_.NotifyOne();
  return true;
}

void ThreadPool::Wait() {
  MutexLock lock(&mutex_);
  while (!(queue_.empty() && in_flight_ == 0)) {
    all_done_.Wait(mutex_);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mutex_);
      while (!shutdown_ && queue_.empty()) {
        work_available_.Wait(mutex_);
      }
      if (queue_.empty()) {
        // shutdown_ is set and nothing left to run.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    // Destroy the task (and everything it captured) BEFORE reporting
    // completion: a caller unblocked by Wait() may immediately release its
    // references to objects the closure co-owns — including, transitively,
    // this very pool — and the last release must not happen on a worker
    // thread (a pool destroying itself from its own worker would self-join).
    task = nullptr;
    {
      MutexLock lock(&mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) {
        all_done_.NotifyAll();
      }
    }
  }
}

void ParallelFor(size_t n, size_t num_threads, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (num_threads <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  std::atomic<size_t> next{0};
  ThreadPool pool(std::min(num_threads, n));
  for (size_t t = 0; t < pool.num_threads(); ++t) {
    // The pool is freshly constructed and nothing calls Close() on it, so
    // Submit cannot refuse; the (void) marks the drop as intentional.
    (void)pool.Submit([&] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) {
          return;
        }
        fn(i);
      }
    });
  }
  pool.Wait();
}

}  // namespace flint
