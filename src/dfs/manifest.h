// Per-RDD checkpoint manifest: the commit record of the atomic checkpoint
// protocol. Partition objects are written first (each carrying its own
// CRC32); the manifest — partition list, sizes, checksums — is written LAST,
// so a checkpoint is visible to recovery only once every partition is
// durably stored and verified. A directory without a manifest is torn and
// must be treated as nonexistent; a manifest entry that disagrees with the
// stored object (size or checksum) marks the checkpoint corrupt.

#ifndef SRC_DFS_MANIFEST_H_
#define SRC_DFS_MANIFEST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/dfs/dfs.h"
#include "src/dfs/retry.h"

namespace flint {

struct CheckpointPartitionMeta {
  uint64_t size_bytes = 0;
  uint64_t crc32 = 0;
};

struct CheckpointManifest {
  int rdd_id = -1;
  std::vector<CheckpointPartitionMeta> partitions;
};

using ManifestPtr = std::shared_ptr<const CheckpointManifest>;

// Manifest file name inside a checkpoint directory ("ckpt/rdd_N/").
inline std::string ManifestPathFor(const std::string& checkpoint_dir) {
  return checkpoint_dir + "manifest";
}

// Content checksum binding the manifest to its RDD and entries; stored as the
// manifest object's crc32 so injected corruption of the stored object is
// detected on read.
uint64_t ManifestCrc(const CheckpointManifest& manifest);

// Wraps `manifest` as a checksummed DfsObject ready for Put.
DfsObject MakeManifestObject(ManifestPtr manifest);

// Reads and verifies the manifest at `path`: NotFound if missing (torn or
// GC'd checkpoint), kDataLoss if the stored checksum disagrees with the
// recomputed content checksum (corrupt manifest). Transient read failures
// are retried per `policy`.
Result<ManifestPtr> ReadManifest(const Dfs& dfs, const std::string& path,
                                 const DfsRetryPolicy& policy, DfsRetryStats* stats = nullptr);

}  // namespace flint

#endif  // SRC_DFS_MANIFEST_H_
