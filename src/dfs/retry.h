// Retry with exponential backoff, jitter, and a per-operation deadline for
// transient DFS failures (kUnavailable: injected write failures, outage
// windows, a degraded store). Any other error code is surfaced immediately —
// retrying an InvalidArgument or NotFound cannot help.
//
// Jitter is deterministic per path (seeded from the path hash) so fault
// tests replay identically while concurrent writers still decorrelate.

#ifndef SRC_DFS_RETRY_H_
#define SRC_DFS_RETRY_H_

#include <string>

#include "src/common/status.h"
#include "src/dfs/dfs.h"

namespace flint {

struct DfsRetryPolicy {
  // Total attempts including the first; <= 1 disables retries.
  int max_attempts = 4;
  double initial_backoff_seconds = 0.002;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.1;
  // Backoff is scaled by a uniform draw from [1-j, 1+j].
  double jitter_fraction = 0.25;
  // Total elapsed budget across attempts and backoffs; once exceeded the
  // last failure is returned. <= 0 disables the deadline.
  double deadline_seconds = 1.0;
  uint64_t jitter_seed = 0x9E3779B97F4A7C15ULL;
};

struct DfsRetryStats {
  int attempts = 0;
  double elapsed_seconds = 0.0;
};

// Stores `object` at `path`, retrying transient failures per `policy`.
Status PutWithRetry(Dfs& dfs, const std::string& path, const DfsObject& object,
                    const DfsRetryPolicy& policy, DfsRetryStats* stats = nullptr);

// Fetches `path`, retrying transient failures per `policy`. NotFound is
// returned immediately (a missing object will not appear by waiting).
Result<DfsObject> GetWithRetry(const Dfs& dfs, const std::string& path,
                               const DfsRetryPolicy& policy, DfsRetryStats* stats = nullptr);

}  // namespace flint

#endif  // SRC_DFS_RETRY_H_
