#include "src/dfs/manifest.h"

#include <utility>

#include "src/common/crc32.h"

namespace flint {

uint64_t ManifestCrc(const CheckpointManifest& manifest) {
  uint32_t crc = 0;
  const uint64_t header[2] = {static_cast<uint64_t>(manifest.rdd_id),
                              manifest.partitions.size()};
  crc = Crc32(header, sizeof(header), crc);
  if (!manifest.partitions.empty()) {
    crc = Crc32(manifest.partitions.data(),
                manifest.partitions.size() * sizeof(CheckpointPartitionMeta), crc);
  }
  return crc;
}

DfsObject MakeManifestObject(ManifestPtr manifest) {
  DfsObject obj;
  obj.size_bytes =
      sizeof(CheckpointManifest) + manifest->partitions.size() * sizeof(CheckpointPartitionMeta);
  obj.crc32 = ManifestCrc(*manifest);
  obj.data = std::shared_ptr<const void>(manifest, manifest.get());
  return obj;
}

Result<ManifestPtr> ReadManifest(const Dfs& dfs, const std::string& path,
                                 const DfsRetryPolicy& policy, DfsRetryStats* stats) {
  FLINT_ASSIGN_OR_RETURN(DfsObject obj, GetWithRetry(dfs, path, policy, stats));
  auto manifest = std::static_pointer_cast<const CheckpointManifest>(obj.data);
  if (manifest == nullptr) {
    return DataLoss("empty checkpoint manifest at " + path);
  }
  if (obj.crc32 != ManifestCrc(*manifest)) {
    return DataLoss("corrupt checkpoint manifest at " + path);
  }
  return ManifestPtr(std::move(manifest));
}

}  // namespace flint
