#include "src/dfs/dfs.h"

#include <algorithm>
#include <thread>

namespace flint {

namespace {

// XOR mask applied to a stored checksum by CorruptMatching. Nonzero so even
// an unchecksummed object (crc32 == 0) visibly changes.
constexpr uint64_t kCorruptionMask = 0x5A5A5A5AC3C3C3C3ULL;

}  // namespace

void Dfs::ChargeWrite(uint64_t bytes, double slow_factor) const {
  bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
  if (!model_latency_ || config_.write_bandwidth_bytes_per_s <= 0.0) {
    return;
  }
  // write_bandwidth is effective per-writer throughput in logical bytes,
  // i.e. replication fan-out is already folded in; replication does show up
  // in MonthlyStorageCost.
  const double seconds =
      slow_factor * static_cast<double>(bytes) / config_.write_bandwidth_bytes_per_s;
  std::this_thread::sleep_for(WallDuration(seconds));
}

void Dfs::ChargeRead(uint64_t bytes, double slow_factor) const {
  bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
  if (!model_latency_ || config_.read_bandwidth_bytes_per_s <= 0.0) {
    return;
  }
  const double seconds =
      slow_factor * static_cast<double>(bytes) / config_.read_bandwidth_bytes_per_s;
  std::this_thread::sleep_for(WallDuration(seconds));
}

Status Dfs::Put(const std::string& path, DfsObject object) {
  if (path.empty()) {
    return InvalidArgument("empty DFS path");
  }
  if (object.data == nullptr && object.size_bytes != 0) {
    return InvalidArgument("null data with nonzero size");
  }
  double slow_factor = 1.0;
  if (DfsFaultHook* hook = fault_hook_.load(std::memory_order_acquire)) {
    DfsFaultVerdict verdict = hook->OnPut(path);
    if (!verdict.status.ok()) {
      return verdict.status;
    }
    slow_factor = verdict.slow_factor;
  }
  ChargeWrite(object.size_bytes, slow_factor);
  MutexLock lock(&mutex_);
  auto it = objects_.find(path);
  if (it != objects_.end()) {
    total_bytes_ -= it->second.size_bytes;
  }
  total_bytes_ += object.size_bytes;
  peak_bytes_ = std::max(peak_bytes_, total_bytes_);
  objects_[path] = std::move(object);
  return Status::Ok();
}

Result<DfsObject> Dfs::Get(const std::string& path) const {
  double slow_factor = 1.0;
  if (DfsFaultHook* hook = fault_hook_.load(std::memory_order_acquire)) {
    DfsFaultVerdict verdict = hook->OnGet(path);
    if (!verdict.status.ok()) {
      return verdict.status;
    }
    slow_factor = verdict.slow_factor;
  }
  DfsObject obj;
  {
    ReaderMutexLock lock(&mutex_);
    auto it = objects_.find(path);
    if (it == objects_.end()) {
      return NotFound("DFS object " + path);
    }
    obj = it->second;
  }
  ChargeRead(obj.size_bytes, slow_factor);
  return obj;
}

Result<DfsObjectStat> Dfs::Stat(const std::string& path) const {
  ReaderMutexLock lock(&mutex_);
  auto it = objects_.find(path);
  if (it == objects_.end()) {
    return NotFound("DFS object " + path);
  }
  return DfsObjectStat{it->second.size_bytes, it->second.crc32};
}

bool Dfs::Exists(const std::string& path) const {
  ReaderMutexLock lock(&mutex_);
  return objects_.count(path) > 0;
}

Status Dfs::Delete(const std::string& path) {
  MutexLock lock(&mutex_);
  auto it = objects_.find(path);
  if (it == objects_.end()) {
    return NotFound("DFS object " + path);
  }
  total_bytes_ -= it->second.size_bytes;
  objects_.erase(it);
  return Status::Ok();
}

size_t Dfs::DeletePrefix(const std::string& prefix) {
  MutexLock lock(&mutex_);
  size_t removed = 0;
  for (auto it = objects_.begin(); it != objects_.end();) {
    if (it->first.rfind(prefix, 0) == 0) {
      total_bytes_ -= it->second.size_bytes;
      it = objects_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<std::string> Dfs::List(const std::string& prefix) const {
  ReaderMutexLock lock(&mutex_);
  std::vector<std::string> out;
  for (const auto& [path, obj] : objects_) {
    if (path.rfind(prefix, 0) == 0) {
      out.push_back(path);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t Dfs::CorruptMatching(const std::string& prefix) {
  MutexLock lock(&mutex_);
  size_t corrupted = 0;
  for (auto& [path, obj] : objects_) {
    if (path.rfind(prefix, 0) == 0) {
      obj.crc32 ^= kCorruptionMask;
      ++corrupted;
    }
  }
  return corrupted;
}

uint64_t Dfs::TotalBytes() const {
  ReaderMutexLock lock(&mutex_);
  return total_bytes_;
}

uint64_t Dfs::PeakBytes() const {
  ReaderMutexLock lock(&mutex_);
  return peak_bytes_;
}

uint64_t Dfs::NumObjects() const {
  ReaderMutexLock lock(&mutex_);
  return objects_.size();
}

double Dfs::MonthlyStorageCost() const {
  const double gb =
      static_cast<double>(PeakBytes()) * std::max(1, config_.replication) / (1024.0 * 1024.0 * 1024.0);
  return gb * config_.storage_price_gb_month;
}

}  // namespace flint
