#include "src/dfs/retry.h"

#include <algorithm>
#include <functional>
#include <thread>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace flint {

namespace {

bool Retryable(const Status& status) { return status.code() == StatusCode::kUnavailable; }

// Shared attempt loop: `op` returns the status of one attempt. `kind` labels
// telemetry ("put"/"get"); retries are cold, so per-retry registry lookups
// are fine.
Status RetryLoop(const std::string& path, const char* kind, const DfsRetryPolicy& policy,
                 const std::function<Status()>& op, DfsRetryStats* stats) {
  Rng jitter(std::hash<std::string>{}(path) ^ policy.jitter_seed);
  const auto t0 = WallClock::now();
  const int max_attempts = std::max(1, policy.max_attempts);
  double backoff = policy.initial_backoff_seconds;
  Status last = Status::Ok();
  int attempts = 0;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    ++attempts;
    last = op();
    if (last.ok() || !Retryable(last)) {
      break;
    }
    if (attempt + 1 >= max_attempts) {
      break;
    }
    double sleep_s = backoff;
    if (policy.jitter_fraction > 0.0) {
      sleep_s *= jitter.Uniform(1.0 - policy.jitter_fraction, 1.0 + policy.jitter_fraction);
    }
    if (policy.deadline_seconds > 0.0) {
      const double elapsed = WallDuration(WallClock::now() - t0).count();
      if (elapsed + sleep_s >= policy.deadline_seconds) {
        break;  // the next attempt would land past the deadline
      }
    }
    MetricsRegistry::Global().GetCounter("flint_dfs_retry_attempts")->Increment();
    if (TracingEnabled()) {
      Tracer::Global().RecordInstant("dfs_retry", "dfs",
                                     {{"attempt", static_cast<double>(attempt + 1)},
                                      {"backoff_s", sleep_s}},
                                     std::string(kind) + " " + path);
    }
    std::this_thread::sleep_for(WallDuration(sleep_s));
    backoff = std::min(backoff * policy.backoff_multiplier, policy.max_backoff_seconds);
  }
  if (!last.ok() && Retryable(last)) {
    // Budget exhausted on a transient error: the caller will abandon the op.
    MetricsRegistry::Global().GetCounter("flint_dfs_retry_exhausted")->Increment();
  }
  if (stats != nullptr) {
    stats->attempts = attempts;
    stats->elapsed_seconds = WallDuration(WallClock::now() - t0).count();
  }
  return last;
}

}  // namespace

Status PutWithRetry(Dfs& dfs, const std::string& path, const DfsObject& object,
                    const DfsRetryPolicy& policy, DfsRetryStats* stats) {
  return RetryLoop(path, "put", policy, [&] { return dfs.Put(path, object); }, stats);
}

Result<DfsObject> GetWithRetry(const Dfs& dfs, const std::string& path,
                               const DfsRetryPolicy& policy, DfsRetryStats* stats) {
  Result<DfsObject> result = NotFound("DFS object " + path);
  Status st = RetryLoop(
      path, "get", policy,
      [&] {
        result = dfs.Get(path);
        return result.status();
      },
      stats);
  if (!st.ok()) {
    return st;
  }
  return result;
}

}  // namespace flint
