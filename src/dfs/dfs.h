// Distributed-file-system substrate for checkpoint storage.
//
// Models the paper's HDFS-on-EBS deployment: a replicated object store whose
// contents survive node revocations (EBS volumes are durable network disks),
// with bandwidth-modelled writes and reads. Writers pay `bytes /
// write_bandwidth` of wall time and readers `bytes / read_bandwidth`; the
// replication factor multiplies write traffic. Objects are type-erased
// (shared_ptr<const void> + size) so the engine can store partition objects
// without a serialization layer, while raw-byte files are also supported for
// workload inputs.

#ifndef SRC_DFS_DFS_H_
#define SRC_DFS_DFS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"

namespace flint {

struct DfsConfig {
  int replication = 3;
  // Effective per-writer bandwidths, in bytes of logical data per second.
  // Replication traffic is charged on top of these.
  double write_bandwidth_bytes_per_s = 256.0 * kMiB;
  double read_bandwidth_bytes_per_s = 512.0 * kMiB;
  // EBS-style storage price, $/GB/month (Sec 4: $0.10/GB/month SSD EBS).
  double storage_price_gb_month = 0.10;
};

// One stored object.
struct DfsObject {
  std::shared_ptr<const void> data;
  uint64_t size_bytes = 0;
};

class Dfs {
 public:
  explicit Dfs(DfsConfig config) : config_(config) {}

  const DfsConfig& config() const { return config_; }

  // Stores (or overwrites) `path`. Sleeps to model replicated write cost.
  Status Put(const std::string& path, DfsObject object);

  // Fetches `path`, sleeping to model the read. NotFound if missing.
  Result<DfsObject> Get(const std::string& path) const;

  bool Exists(const std::string& path) const;
  Status Delete(const std::string& path);

  // Deletes every object whose path starts with `prefix`; returns the count.
  size_t DeletePrefix(const std::string& prefix);

  std::vector<std::string> List(const std::string& prefix) const;

  // Current logical bytes stored (before replication).
  uint64_t TotalBytes() const;
  // Peak logical bytes ever stored; drives the storage-cost model.
  uint64_t PeakBytes() const;
  uint64_t NumObjects() const;

  // Aggregate bytes pushed through Put / pulled through Get since creation.
  uint64_t BytesWritten() const { return bytes_written_.load(); }
  uint64_t BytesRead() const { return bytes_read_.load(); }

  // Monthly storage cost at peak occupancy, including replication.
  double MonthlyStorageCost() const;

  // Test hook: disable the modelled sleeps (unit tests shouldn't wait).
  void set_model_latency(bool enabled) { model_latency_ = enabled; }

 private:
  void ChargeWrite(uint64_t bytes) const;
  void ChargeRead(uint64_t bytes) const;

  DfsConfig config_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, DfsObject> objects_;
  uint64_t total_bytes_ = 0;
  uint64_t peak_bytes_ = 0;
  mutable std::atomic<uint64_t> bytes_written_{0};
  mutable std::atomic<uint64_t> bytes_read_{0};
  bool model_latency_ = true;
};

// Helper to wrap a vector<T> as a DfsObject (shares ownership).
template <typename T>
DfsObject MakeDfsObject(std::shared_ptr<const std::vector<T>> vec) {
  DfsObject obj;
  obj.size_bytes = vec->size() * sizeof(T);
  obj.data = std::shared_ptr<const void>(vec, vec.get());
  return obj;
}

}  // namespace flint

#endif  // SRC_DFS_DFS_H_
