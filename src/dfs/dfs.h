// Distributed-file-system substrate for checkpoint storage.
//
// Models the paper's HDFS-on-EBS deployment: a replicated object store whose
// contents survive node revocations (EBS volumes are durable network disks),
// with bandwidth-modelled writes and reads. Writers pay `bytes /
// write_bandwidth` of wall time and readers `bytes / read_bandwidth`; the
// replication factor multiplies write traffic. Objects are type-erased
// (shared_ptr<const void> + size) so the engine can store partition objects
// without a serialization layer, while raw-byte files are also supported for
// workload inputs.
//
// Real HDFS-on-EBS degrades and fails; an optional DfsFaultHook is consulted
// before every Put/Get so the fault-injection layer (src/inject) can script
// failed writes, unreadable objects, unavailability windows, and slow I/O.
// Each stored object carries a writer-supplied CRC32; injected corruption
// scrambles the stored checksum, which is how verified readers detect it.

#ifndef SRC_DFS_DFS_H_
#define SRC_DFS_DFS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/common/units.h"

namespace flint {

struct DfsConfig {
  int replication = 3;
  // Effective per-writer bandwidths, in bytes of logical data per second.
  // Replication traffic is charged on top of these.
  double write_bandwidth_bytes_per_s = 256.0 * kMiB;
  double read_bandwidth_bytes_per_s = 512.0 * kMiB;
  // EBS-style storage price, $/GB/month (Sec 4: $0.10/GB/month SSD EBS).
  double storage_price_gb_month = 0.10;
};

// One stored object. `crc32` is a writer-supplied content checksum (0 when
// the writer does not checksum); verified readers compare it against the
// checkpoint manifest to detect corruption and torn writes.
struct DfsObject {
  std::shared_ptr<const void> data;
  uint64_t size_bytes = 0;
  uint64_t crc32 = 0;
};

// Metadata-only view of a stored object (no bandwidth charge).
struct DfsObjectStat {
  uint64_t size_bytes = 0;
  uint64_t crc32 = 0;
};

// Verdict a fault hook returns before a Put/Get executes. A non-OK status
// fails the operation with that status (nothing is stored/read and no
// bandwidth is charged); slow_factor multiplies the modelled transfer time.
struct DfsFaultVerdict {
  Status status = Status::Ok();
  double slow_factor = 1.0;
};

// Implemented by the fault injector. Consulted synchronously on the thread
// performing the operation; must be thread-safe and must not call back into
// the Dfs (cluster-level operations are fine).
class DfsFaultHook {
 public:
  virtual ~DfsFaultHook() = default;
  virtual DfsFaultVerdict OnPut(const std::string& path) = 0;
  virtual DfsFaultVerdict OnGet(const std::string& path) = 0;
};

class Dfs {
 public:
  explicit Dfs(DfsConfig config) : config_(config) {}

  const DfsConfig& config() const { return config_; }

  // Stores (or overwrites) `path`. Sleeps to model replicated write cost.
  // May fail with kUnavailable when a fault hook injects a storage failure.
  Status Put(const std::string& path, DfsObject object);

  // Fetches `path`, sleeping to model the read. NotFound if missing; may
  // fail with kUnavailable under injected storage faults.
  Result<DfsObject> Get(const std::string& path) const;

  // Metadata lookup: size + stored checksum, no bandwidth charge and no
  // fault-hook consultation (models a cheap namenode query).
  Result<DfsObjectStat> Stat(const std::string& path) const;

  bool Exists(const std::string& path) const;
  Status Delete(const std::string& path);

  // Deletes every object whose path starts with `prefix`; returns the count.
  size_t DeletePrefix(const std::string& prefix);

  std::vector<std::string> List(const std::string& prefix) const;

  // Fault-injection hook: scrambles the stored checksum of every object whose
  // path starts with `prefix`, modelling silent bit rot that checksum
  // verification must catch. Returns the number of objects corrupted.
  size_t CorruptMatching(const std::string& prefix);

  // Current logical bytes stored (before replication).
  uint64_t TotalBytes() const;
  // Peak logical bytes ever stored; drives the storage-cost model.
  uint64_t PeakBytes() const;
  uint64_t NumObjects() const;

  // Aggregate bytes pushed through Put / pulled through Get since creation.
  uint64_t BytesWritten() const { return bytes_written_.load(); }
  uint64_t BytesRead() const { return bytes_read_.load(); }

  // Monthly storage cost at peak occupancy, including replication.
  double MonthlyStorageCost() const;

  // Test hook: disable the modelled sleeps (unit tests shouldn't wait).
  void set_model_latency(bool enabled) { model_latency_ = enabled; }

  // At most one hook; install before running jobs, clear with nullptr. The
  // hook must outlive every operation it observes.
  void SetFaultHook(DfsFaultHook* hook) { fault_hook_.store(hook, std::memory_order_release); }

 private:
  void ChargeWrite(uint64_t bytes, double slow_factor) const;
  void ChargeRead(uint64_t bytes, double slow_factor) const;

  DfsConfig config_;
  mutable Mutex mutex_{"Dfs::mutex_"};
  std::unordered_map<std::string, DfsObject> objects_ GUARDED_BY(mutex_);
  uint64_t total_bytes_ GUARDED_BY(mutex_) = 0;
  uint64_t peak_bytes_ GUARDED_BY(mutex_) = 0;
  mutable std::atomic<uint64_t> bytes_written_{0};
  mutable std::atomic<uint64_t> bytes_read_{0};
  // Toggled by tests via set_model_latency, read on every charge path
  // without the lock — atomic so a mid-run toggle is a benign race, not UB.
  std::atomic<bool> model_latency_{true};
  std::atomic<DfsFaultHook*> fault_hook_{nullptr};
};

// Helper to wrap a vector<T> as a DfsObject (shares ownership).
template <typename T>
DfsObject MakeDfsObject(std::shared_ptr<const std::vector<T>> vec) {
  DfsObject obj;
  obj.size_bytes = vec->size() * sizeof(T);
  obj.data = std::shared_ptr<const void>(vec, vec.get());
  return obj;
}

}  // namespace flint

#endif  // SRC_DFS_DFS_H_
