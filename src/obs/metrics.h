// Process-wide metrics registry (ISSUE 6): one namespace for every counter
// Flint maintains, replacing the per-subsystem silos (EngineCounters,
// FaultToleranceManager::Stats, DFS retry counts, fusion counters,
// BlockManager shard accounting, NodeManager lease history, MutexStats).
//
// Two kinds of instruments coexist:
//
//   - Native instruments (Counter / Gauge / Histogram) created on demand by
//     name. Counters and histograms stripe their cells across cache-line-
//     padded atomics so concurrent writers on different threads do not
//     false-share; reads sum the stripes. These are for *new* metrics
//     (shuffle_reregistered, dfs retry counts, selector sanitization, ...).
//
//   - Collectors: callbacks that adapt an existing subsystem's own counters
//     into the registry namespace at Snapshot() time. Subsystems keep their
//     hot-path atomics exactly as they are (EngineCounters stays an array of
//     relaxed atomics); the collector only runs when somebody asks for a
//     snapshot. Register with a ScopedCollector member so the callback is
//     unhooked before the subsystem dies.
//
// Snapshot() merges both into a sorted sample list; FormatPrometheusText()
// renders the Prometheus text exposition format for scraping or file export.
//
// Naming convention: flint_<subsystem>_<what>[_<unit>], e.g.
// flint_engine_tasks_run, flint_ft_delta_seconds, flint_block_cache_hits.

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace flint {

namespace obs_internal {
// Stable small per-thread index used to pick a stripe. Threads are assigned
// round-robin on first use; the modulo by the stripe count spreads them.
size_t ThreadStripe();

// Portable atomic double accumulation (CAS loop; std::atomic<double>::
// fetch_add is C++20 but not universally lock-free on older toolchains).
inline void AtomicAddDouble(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}
}  // namespace obs_internal

// Monotonic counter. Increment is wait-free: one relaxed fetch_add on the
// calling thread's stripe.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    cells_[obs_internal::ThreadStripe() % kStripes].value.fetch_add(n,
                                                                    std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& c : cells_) {
      total += c.value.load(std::memory_order_relaxed);
    }
    return total;
  }
  void Reset() {
    for (Cell& c : cells_) {
      c.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  static constexpr size_t kStripes = 8;
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  std::array<Cell, kStripes> cells_{};
};

// Last-write-wins scalar (plus Add for accumulating doubles).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) { obs_internal::AtomicAddDouble(value_, delta); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds; an
// implicit +inf bucket catches the rest. Observe is wait-free on the calling
// thread's stripe.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  // counts() has bounds().size() + 1 entries (last = overflow bucket).
  std::vector<uint64_t> Counts() const;
  uint64_t TotalCount() const;
  double Sum() const;
  void Reset();

  // Exponential default buckets for second-valued latencies: 1ms .. ~65s.
  static std::vector<double> DefaultLatencyBounds();

 private:
  static constexpr size_t kStripes = 8;
  struct alignas(64) Stripe {
    std::vector<std::atomic<uint64_t>> buckets;
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };
  std::vector<double> bounds_;
  std::array<Stripe, kStripes> stripes_;
};

enum class MetricType { kCounter, kGauge };

struct MetricSample {
  std::string name;
  MetricType type = MetricType::kCounter;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<uint64_t> counts;  // bounds.size() + 1 entries
  uint64_t total_count = 0;
  double sum = 0.0;
};

struct MetricsSnapshot {
  std::vector<MetricSample> samples;  // sorted by name
  std::vector<HistogramSnapshot> histograms;

  bool Has(const std::string& name) const;
  double Value(const std::string& name, double missing = 0.0) const;
  std::string FormatPrometheusText() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry();

  // The process-wide registry every subsystem reports into.
  static MetricsRegistry& Global();

  // Creates or fetches the named instrument. Returned pointers stay valid for
  // the registry's lifetime (ResetForTest zeroes values, never frees). A name
  // registered as one kind must not be reused as another.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  // `bounds` applies only on first creation.
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds);

  // Snapshot-time adapters for pre-existing subsystem counters. The callback
  // appends fully-named samples; it runs without the registry lock held, so
  // it may take its subsystem's own locks freely.
  using CollectorFn = std::function<void(std::vector<MetricSample>&)>;
  uint64_t RegisterCollector(CollectorFn fn);
  void UnregisterCollector(uint64_t id);

  MetricsSnapshot Snapshot() const;
  std::string FormatPrometheusText() const { return Snapshot().FormatPrometheusText(); }

  // Zeroes every native instrument (pointers stay valid) and leaves
  // collectors untouched; for test isolation.
  void ResetForTest();

 private:
  mutable Mutex mutex_{"MetricsRegistry::mutex_"};
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms_ GUARDED_BY(mutex_);
  std::unordered_map<uint64_t, CollectorFn> collectors_ GUARDED_BY(mutex_);
  uint64_t next_collector_id_ GUARDED_BY(mutex_) = 1;
};

// RAII collector registration: unhooks in the destructor, so a subsystem can
// hold one as its last member and never leave a dangling callback behind.
class ScopedCollector {
 public:
  ScopedCollector() = default;
  ScopedCollector(MetricsRegistry* registry, MetricsRegistry::CollectorFn fn)
      : registry_(registry), id_(registry->RegisterCollector(std::move(fn))) {}
  ~ScopedCollector() { Release(); }

  ScopedCollector(ScopedCollector&& other) noexcept
      : registry_(other.registry_), id_(other.id_) {
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  ScopedCollector& operator=(ScopedCollector&& other) noexcept {
    if (this != &other) {
      Release();
      registry_ = other.registry_;
      id_ = other.id_;
      other.registry_ = nullptr;
      other.id_ = 0;
    }
    return *this;
  }
  ScopedCollector(const ScopedCollector&) = delete;
  ScopedCollector& operator=(const ScopedCollector&) = delete;

 private:
  void Release() {
    if (registry_ != nullptr) {
      registry_->UnregisterCollector(id_);
      registry_ = nullptr;
    }
  }
  MetricsRegistry* registry_ = nullptr;
  uint64_t id_ = 0;
};

}  // namespace flint

#endif  // SRC_OBS_METRICS_H_
