#include "src/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

namespace flint {

namespace {

// Small dense per-thread id for the "tid" field; assigned on first record.
uint32_t ThreadTraceId() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendNumber(std::string& out, double v) {
  char buf[64];
  if (!std::isfinite(v)) {
    // JSON has no Infinity/NaN; stringify so the export always parses.
    out += '"';
    std::snprintf(buf, sizeof(buf), "%g", v);
    out += buf;
    out += '"';
    return;
  }
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  out += buf;
}

// Microseconds with nanosecond precision, the unit Chrome's "ts"/"dur" use.
void AppendMicros(std::string& out, uint64_t ns) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

}  // namespace

Tracer::Tracer(size_t capacity) : epoch_(WallClock::now()) {
  ResizeLocked(capacity);
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::ResizeLocked(size_t capacity) {
  const size_t per_stripe = std::max<size_t>(1, capacity / kNumStripes);
  for (Stripe& s : stripes_) {
    MutexLock lock(&s.mutex);
    s.ring.assign(per_stripe, TraceEvent{});
    s.next = 0;
    s.filled = 0;
    s.recorded = 0;
  }
}

void Tracer::Configure(const ObsConfig& config) {
  SetEnabled(false);  // quiesce while resizing
  ResizeLocked(config.trace_capacity);
  SetEnabled(config.tracing);
}

uint64_t Tracer::NowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(WallClock::now() - epoch_)
          .count());
}

void Tracer::Record(TraceEvent event) {
  event.tid = ThreadTraceId();
  event.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  Stripe& s = stripes_[event.tid % kNumStripes];
  MutexLock lock(&s.mutex);
  s.ring[s.next] = std::move(event);
  s.next = (s.next + 1) % s.ring.size();
  s.filled = std::min(s.filled + 1, s.ring.size());
  ++s.recorded;
}

void Tracer::RecordInstant(const char* name, const char* category,
                           std::initializer_list<TraceArg> args, std::string detail) {
  if (!enabled()) {
    return;
  }
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.phase = TracePhase::kInstant;
  event.ts_ns = NowNs();
  for (const TraceArg& a : args) {
    if (event.num_args < TraceEvent::kMaxArgs) {
      event.args[event.num_args++] = a;
    }
  }
  event.detail = std::move(detail);
  Record(std::move(event));
}

void Tracer::RecordComplete(const char* name, const char* category, uint64_t start_ns,
                            uint64_t dur_ns, std::initializer_list<TraceArg> args,
                            std::string detail) {
  if (!enabled()) {
    return;
  }
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.phase = TracePhase::kComplete;
  event.ts_ns = start_ns;
  event.dur_ns = dur_ns;
  for (const TraceArg& a : args) {
    if (event.num_args < TraceEvent::kMaxArgs) {
      event.args[event.num_args++] = a;
    }
  }
  event.detail = std::move(detail);
  Record(std::move(event));
}

void Tracer::RecordSpanEvent(TraceEvent event) {
  if (!enabled()) {
    return;
  }
  Record(std::move(event));
}

Tracer::Stats Tracer::GetStats() const {
  Stats stats;
  for (const Stripe& s : stripes_) {
    MutexLock lock(&s.mutex);
    stats.recorded += s.recorded;
    stats.buffered += s.filled;
  }
  stats.dropped = stats.recorded - stats.buffered;
  return stats;
}

std::vector<TraceEvent> Tracer::Drain() const {
  std::vector<TraceEvent> events;
  for (const Stripe& s : stripes_) {
    MutexLock lock(&s.mutex);
    const size_t cap = s.ring.size();
    // Oldest retained event sits at `next` once the stripe has wrapped.
    const size_t start = s.filled == cap ? s.next : 0;
    for (size_t i = 0; i < s.filled; ++i) {
      events.push_back(s.ring[(start + i) % cap]);
    }
  }
  std::sort(events.begin(), events.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.ts_ns != b.ts_ns) {
      return a.ts_ns < b.ts_ns;
    }
    return a.seq < b.seq;
  });
  return events;
}

size_t Tracer::CountEvents(const std::string& name) const {
  size_t count = 0;
  for (const TraceEvent& e : Drain()) {
    if (name == e.name) {
      ++count;
    }
  }
  return count;
}

std::string Tracer::ExportJson() const {
  const std::vector<TraceEvent> events = Drain();
  std::string out;
  out.reserve(events.size() * 128 + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"name\":\"";
    AppendEscaped(out, e.name);
    out += "\",\"cat\":\"";
    AppendEscaped(out, e.category);
    out += "\",\"ph\":\"";
    out += e.phase == TracePhase::kComplete ? 'X' : 'i';
    out += "\",\"ts\":";
    AppendMicros(out, e.ts_ns);
    if (e.phase == TracePhase::kComplete) {
      out += ",\"dur\":";
      AppendMicros(out, e.dur_ns);
    } else {
      out += ",\"s\":\"g\"";  // global-scope instant: full-height line in the UI
    }
    out += ",\"pid\":1,\"tid\":";
    AppendNumber(out, e.tid);
    if (e.num_args > 0 || !e.detail.empty()) {
      out += ",\"args\":{";
      for (int i = 0; i < e.num_args; ++i) {
        if (i > 0) {
          out += ',';
        }
        out += '"';
        AppendEscaped(out, e.args[i].key);
        out += "\":";
        AppendNumber(out, e.args[i].value);
      }
      if (!e.detail.empty()) {
        if (e.num_args > 0) {
          out += ',';
        }
        out += "\"detail\":\"";
        AppendEscaped(out, e.detail);
        out += '"';
      }
      out += '}';
    }
    out += '}';
  }
  out += "]}";
  return out;
}

void Tracer::Clear() {
  for (Stripe& s : stripes_) {
    MutexLock lock(&s.mutex);
    s.next = 0;
    s.filled = 0;
    s.recorded = 0;
  }
}

}  // namespace flint
