#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

namespace flint {

namespace obs_internal {

size_t ThreadStripe() {
  static std::atomic<size_t> next{0};
  thread_local const size_t stripe = next.fetch_add(1, std::memory_order_relaxed);
  return stripe;
}

namespace {

// Prometheus sample values: integers render without a fractional part so
// counters stay exact; everything else uses shortest-round-trip-ish %g.
std::string FormatValue(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else if (std::isinf(v)) {
    return v > 0 ? "+Inf" : "-Inf";
  } else {
    std::snprintf(buf, sizeof(buf), "%g", v);
  }
  return buf;
}

}  // namespace
}  // namespace obs_internal

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  for (Stripe& s : stripes_) {
    s.buckets = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
  }
}

void Histogram::Observe(double value) {
  Stripe& s = stripes_[obs_internal::ThreadStripe() % kStripes];
  const size_t bucket =
      std::upper_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  s.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  obs_internal::AtomicAddDouble(s.sum, value);
}

std::vector<uint64_t> Histogram::Counts() const {
  std::vector<uint64_t> counts(bounds_.size() + 1, 0);
  for (const Stripe& s : stripes_) {
    for (size_t i = 0; i < counts.size(); ++i) {
      counts[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

uint64_t Histogram::TotalCount() const {
  uint64_t total = 0;
  for (const Stripe& s : stripes_) {
    total += s.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const Stripe& s : stripes_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::Reset() {
  for (Stripe& s : stripes_) {
    for (std::atomic<uint64_t>& b : s.buckets) {
      b.store(0, std::memory_order_relaxed);
    }
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
  }
}

std::vector<double> Histogram::DefaultLatencyBounds() {
  // 1ms doubling up through ~65s: covers model-time checkpoint writes and
  // wall-time DFS retries alike.
  std::vector<double> bounds;
  for (double b = 0.001; b < 100.0; b *= 2.0) {
    bounds.push_back(b);
  }
  return bounds;
}

bool MetricsSnapshot::Has(const std::string& name) const {
  for (const MetricSample& s : samples) {
    if (s.name == name) {
      return true;
    }
  }
  return false;
}

double MetricsSnapshot::Value(const std::string& name, double missing) const {
  for (const MetricSample& s : samples) {
    if (s.name == name) {
      return s.value;
    }
  }
  return missing;
}

std::string MetricsSnapshot::FormatPrometheusText() const {
  std::string out;
  out.reserve(samples.size() * 48);
  for (const MetricSample& s : samples) {
    out += "# TYPE ";
    out += s.name;
    out += s.type == MetricType::kCounter ? " counter\n" : " gauge\n";
    out += s.name;
    out += ' ';
    out += obs_internal::FormatValue(s.value);
    out += '\n';
  }
  for (const HistogramSnapshot& h : histograms) {
    out += "# TYPE ";
    out += h.name;
    out += " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      out += h.name;
      out += "_bucket{le=\"";
      out += i < h.bounds.size() ? obs_internal::FormatValue(h.bounds[i]) : "+Inf";
      out += "\"} ";
      out += obs_internal::FormatValue(static_cast<double>(cumulative));
      out += '\n';
    }
    out += h.name;
    out += "_sum ";
    out += obs_internal::FormatValue(h.sum);
    out += '\n';
    out += h.name;
    out += "_count ";
    out += obs_internal::FormatValue(static_cast<double>(h.total_count));
    out += '\n';
  }
  return out;
}

MetricsRegistry::MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  MutexLock lock(&mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return slot.get();
}

uint64_t MetricsRegistry::RegisterCollector(CollectorFn fn) {
  MutexLock lock(&mutex_);
  const uint64_t id = next_collector_id_++;
  collectors_[id] = std::move(fn);
  return id;
}

void MetricsRegistry::UnregisterCollector(uint64_t id) {
  MutexLock lock(&mutex_);
  collectors_.erase(id);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::vector<CollectorFn> collectors;
  {
    MutexLock lock(&mutex_);
    for (const auto& [name, counter] : counters_) {
      snap.samples.push_back({name, MetricType::kCounter,
                              static_cast<double>(counter->Value())});
    }
    for (const auto& [name, gauge] : gauges_) {
      snap.samples.push_back({name, MetricType::kGauge, gauge->Value()});
    }
    for (const auto& [name, histogram] : histograms_) {
      HistogramSnapshot h;
      h.name = name;
      h.bounds = histogram->bounds();
      h.counts = histogram->Counts();
      h.total_count = histogram->TotalCount();
      h.sum = histogram->Sum();
      snap.histograms.push_back(std::move(h));
    }
    collectors.reserve(collectors_.size());
    for (const auto& [id, fn] : collectors_) {
      collectors.push_back(fn);
    }
  }
  // Collectors run without the registry lock so they can take their own
  // subsystem locks (and call GetCounter) without ordering constraints.
  for (const CollectorFn& fn : collectors) {
    fn(snap.samples);
  }
  std::sort(snap.samples.begin(), snap.samples.end(),
            [](const MetricSample& a, const MetricSample& b) { return a.name < b.name; });
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return snap;
}

void MetricsRegistry::ResetForTest() {
  MutexLock lock(&mutex_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

}  // namespace flint
