// Structured event tracer (ISSUE 6): a bounded, lock-striped ring buffer of
// timestamped instants and spans, exportable as Chrome trace_event JSON
// (open in chrome://tracing or https://ui.perfetto.dev).
//
// Design constraints, in order:
//
//   1. Zero cost when off. Every emission site guards on a single relaxed
//      atomic load (Tracer::enabled(), or the TraceSpan constructor doing the
//      same); no strings are built, no locks touched, no clock read.
//   2. Bounded memory. Events land in a fixed ring; when a stripe wraps, the
//      oldest events in that stripe are overwritten and counted as dropped.
//      A runaway storm can never OOM the process through its own telemetry.
//   3. Cheap when on. The buffer is striped by thread: each recording thread
//      locks only its stripe's mutex (a leaf lock — nothing is acquired
//      under it), so executor threads don't serialize on one tracer lock.
//
// Event names and categories are `const char*` string literals by contract —
// the ring stores the pointers, not copies. Up to kMaxArgs numeric args plus
// one optional string arg ("detail") ride along per event; Chrome's trace
// viewer shows them in the "args" pane.
//
// ExportJson() drains a consistent copy (stripe by stripe), sorts by
// timestamp, and renders the JSON Array Format wrapped in an object:
//   {"displayTimeUnit":"ms","traceEvents":[{"name":...,"ph":"X"|"i",...}]}

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/common/units.h"

namespace flint {

// Toggle + sizing for the observability layer, applied via
// Tracer::Global().Configure(). Tracing defaults to off; the registry is
// always live (it is passive until snapshotted).
struct ObsConfig {
  bool tracing = false;
  // Total event capacity across all stripes; oldest events are overwritten
  // once a stripe fills.
  size_t trace_capacity = 1 << 16;
};

// One numeric key/value attached to an event.
struct TraceArg {
  const char* key = "";
  double value = 0.0;
};

enum class TracePhase : uint8_t {
  kInstant,   // ph "i": a point in time (revocation, checkpoint, selection)
  kComplete,  // ph "X": a span with a duration (stage, task)
};

struct TraceEvent {
  const char* name = "";
  const char* category = "";
  TracePhase phase = TracePhase::kInstant;
  uint64_t ts_ns = 0;   // nanoseconds since the tracer epoch
  uint64_t dur_ns = 0;  // spans only
  uint32_t tid = 0;     // small per-thread id
  uint64_t seq = 0;     // global record order, breaks timestamp ties
  static constexpr int kMaxArgs = 6;
  std::array<TraceArg, kMaxArgs> args{};
  int num_args = 0;
  std::string detail;  // optional string arg, rendered as args.detail
};

class Tracer {
 public:
  explicit Tracer(size_t capacity = ObsConfig{}.trace_capacity);

  // The process-wide tracer all subsystems record into.
  static Tracer& Global();

  // Applies the toggle and (re)sizes the ring. Resizing clears buffered
  // events; call before the run, not during.
  void Configure(const ObsConfig& config);
  void SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Nanoseconds since the tracer epoch (process start, steady clock).
  uint64_t NowNs() const;

  // Both record calls are no-ops when tracing is off. `name`/`category` must
  // be string literals (pointers are retained).
  void RecordInstant(const char* name, const char* category,
                     std::initializer_list<TraceArg> args = {}, std::string detail = {});
  void RecordComplete(const char* name, const char* category, uint64_t start_ns,
                      uint64_t dur_ns, std::initializer_list<TraceArg> args = {},
                      std::string detail = {});
  // Records a pre-built span event (used by TraceSpan); fills tid/seq.
  void RecordSpanEvent(TraceEvent event);

  struct Stats {
    uint64_t recorded = 0;  // total events ever accepted
    uint64_t dropped = 0;   // overwritten by ring wraparound
    size_t buffered = 0;    // events currently retained
  };
  Stats GetStats() const;

  // Copies out the retained events, oldest first (timestamp, then seq).
  std::vector<TraceEvent> Drain() const;
  // Retained events with this name (test + report helper).
  size_t CountEvents(const std::string& name) const;

  // Chrome trace_event JSON of the retained events.
  std::string ExportJson() const;

  void Clear();

 private:
  static constexpr size_t kNumStripes = 8;
  struct Stripe {
    mutable Mutex mutex{"Tracer::stripe_"};
    std::vector<TraceEvent> ring GUARDED_BY(mutex);
    size_t next GUARDED_BY(mutex) = 0;   // ring index of the next write
    size_t filled GUARDED_BY(mutex) = 0; // events retained (<= ring.size())
    uint64_t recorded GUARDED_BY(mutex) = 0;
  };

  void Record(TraceEvent event);
  void ResizeLocked(size_t capacity);

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_seq_{0};
  const WallTime epoch_;
  std::array<Stripe, kNumStripes> stripes_;
};

inline bool TracingEnabled() { return Tracer::Global().enabled(); }

// Convenience: configure the global tracer from an ObsConfig.
inline void ConfigureObservability(const ObsConfig& config) {
  Tracer::Global().Configure(config);
}

// RAII span: captures the start time at construction, records a kComplete
// event at destruction. When tracing is off at construction the span is
// inert (one relaxed load, nothing else).
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* category)
      : active_(Tracer::Global().enabled()), name_(name), category_(category) {
    if (active_) {
      start_ns_ = Tracer::Global().NowNs();
    }
  }
  ~TraceSpan() {
    if (active_) {
      Tracer& tracer = Tracer::Global();
      const uint64_t end_ns = tracer.NowNs();
      TraceEvent event;
      event.name = name_;
      event.category = category_;
      event.phase = TracePhase::kComplete;
      event.ts_ns = start_ns_;
      event.dur_ns = end_ns > start_ns_ ? end_ns - start_ns_ : 0;
      event.args = args_;
      event.num_args = num_args_;
      event.detail = std::move(detail_);
      tracer.RecordSpanEvent(std::move(event));
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return active_; }
  void AddArg(const char* key, double value) {
    if (active_ && num_args_ < TraceEvent::kMaxArgs) {
      args_[num_args_++] = {key, value};
    }
  }
  void SetDetail(std::string detail) {
    if (active_) {
      detail_ = std::move(detail);
    }
  }

 private:
  const bool active_;
  const char* name_;
  const char* category_;
  uint64_t start_ns_ = 0;
  std::array<TraceArg, TraceEvent::kMaxArgs> args_{};
  int num_args_ = 0;
  std::string detail_;
};

}  // namespace flint

#endif  // SRC_OBS_TRACE_H_
