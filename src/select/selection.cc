#include "src/select/selection.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "src/common/stats.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace flint {

namespace {

// Sort key for ranking evaluations by expected unit cost. Two degenerate
// shapes must rank LAST instead of entering the comparator raw:
//   - non-finite costs (an empty stats window can surface NaN/inf through
//     the factor*price arithmetic) — NaN breaks std::sort's strict weak
//     ordering, which is UB;
//   - spot markets with no usable window data (mttf<=0 or avg_price<=0):
//     the policy guards turn those into expected_unit_cost == 0, which would
//     wrongly *win* the ranking with a free cost.
// On-demand is exempt from the second rule (its price is authoritative).
double RankCost(const MarketEvaluation& ev) {
  if (!std::isfinite(ev.expected_unit_cost)) {
    return std::numeric_limits<double>::infinity();
  }
  if (ev.id != kOnDemandMarket && (ev.mttf_hours <= 0.0 || ev.avg_price <= 0.0)) {
    return std::numeric_limits<double>::infinity();
  }
  return ev.expected_unit_cost;
}

}  // namespace

double ServerSelector::BidFor(MarketId id) const {
  if (id == kOnDemandMarket) {
    return marketplace_->on_demand_price();
  }
  return config_.bid_multiple * marketplace_->market(id).on_demand_price();
}

bool ServerSelector::Admissible(MarketId id, SimTime now) const {
  if (id == kOnDemandMarket) {
    return true;
  }
  // Skip markets that are currently spiking (instantaneous price far above
  // the recent average) or outright unavailable at our bid.
  if (!marketplace_->PriceNearAverage(id, now, config_.history_window,
                                      config_.price_threshold)) {
    return false;
  }
  return marketplace_->market(id).Available(now, BidFor(id));
}

void ServerSelector::RecordObservedThroughput(MarketId id, double ratio) {
  if (!std::isfinite(ratio) || ratio <= 0.0) {
    return;
  }
  const double clamped = std::min(ratio, 1.0);
  MutexLock lock(&link_mutex_);
  auto [it, inserted] = link_ewma_.try_emplace(id, clamped);
  if (!inserted) {
    it->second =
        (1.0 - config_.link_ewma_alpha) * it->second + config_.link_ewma_alpha * clamped;
  }
}

double ServerSelector::ObservedThroughput(MarketId id) const {
  ReaderMutexLock lock(&link_mutex_);
  auto it = link_ewma_.find(id);
  return it == link_ewma_.end() ? 1.0 : it->second;
}

MarketEvaluation ServerSelector::Evaluate(MarketId id, SimTime now, const JobProfile& job) const {
  MarketEvaluation ev;
  ev.id = id;
  const BidStats stats =
      marketplace_->WindowStats(id, now, config_.history_window, BidFor(id));
  ev.mttf_hours = stats.mttf_hours;
  ev.avg_price = stats.avg_price;
  ev.expected_factor = ExpectedRuntimeFactor(job.delta_hours, job.rd_hours, ev.mttf_hours, 1);
  ev.link_throughput = std::clamp(ObservedThroughput(id), 0.01, 1.0);
  // A market observed delivering half its modelled bandwidth needs roughly
  // twice the wall clock per unit of shuffle-bound work, so its effective
  // unit cost doubles. Unobserved markets divide by 1 (no penalty).
  ev.expected_unit_cost = ev.expected_factor * ev.avg_price / ev.link_throughput;
  return ev;
}

std::vector<MarketEvaluation> ServerSelector::EvaluateMarkets(
    SimTime now, const JobProfile& job, const std::unordered_set<MarketId>& exclude) const {
  std::vector<MarketEvaluation> out;
  for (MarketId id = 0; id < static_cast<MarketId>(marketplace_->num_markets()); ++id) {
    if (exclude.count(id) > 0 || !Admissible(id, now)) {
      continue;
    }
    out.push_back(Evaluate(id, now, job));
  }
  // The on-demand pool participates as a market with infinite MTTF (Sec 3.1.2).
  out.push_back(Evaluate(kOnDemandMarket, now, job));
  uint64_t degenerate = 0;
  for (const MarketEvaluation& ev : out) {
    if (!std::isfinite(RankCost(ev))) {
      ++degenerate;
    }
  }
  if (degenerate > 0) {
    MetricsRegistry::Global()
        .GetCounter("flint_select_degenerate_evaluations")
        ->Increment(degenerate);
  }
  std::sort(out.begin(), out.end(), [](const MarketEvaluation& a, const MarketEvaluation& b) {
    const double ca = RankCost(a);
    const double cb = RankCost(b);
    if (ca != cb) {
      return ca < cb;
    }
    return a.id < b.id;  // deterministic tie-break
  });
  if (TracingEnabled() && !out.empty()) {
    // Ranked list as "market:cost" pairs so a trace shows what the policy saw.
    std::string ranking;
    for (size_t i = 0; i < out.size() && i < 8; ++i) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%s%d:%.4g", i > 0 ? " " : "", out[i].id,
                    out[i].expected_unit_cost);
      ranking += buf;
    }
    Tracer::Global().RecordInstant(
        "market_selection", "market",
        {{"candidates", static_cast<double>(out.size())},
         {"best_market", static_cast<double>(out.front().id)},
         {"best_unit_cost", out.front().expected_unit_cost},
         {"best_mttf_hours", out.front().mttf_hours},
         {"degenerate", static_cast<double>(degenerate)}},
        std::move(ranking));
  }
  return out;
}

Result<MarketEvaluation> ServerSelector::SelectBatch(
    SimTime now, const JobProfile& job, const std::unordered_set<MarketId>& exclude) const {
  std::vector<MarketEvaluation> evs = EvaluateMarkets(now, job, exclude);
  if (evs.empty()) {
    return Unavailable("no admissible market");
  }
  return evs.front();
}

Result<MarketEvaluation> ServerSelector::SelectCheapest(
    SimTime now, const JobProfile& job, const std::unordered_set<MarketId>& exclude) const {
  std::vector<MarketEvaluation> evs = EvaluateMarkets(now, job, exclude);
  MarketEvaluation* best = nullptr;
  for (auto& ev : evs) {
    if (ev.id == kOnDemandMarket) {
      continue;  // SpotFleet picks among spot pools
    }
    if (best == nullptr || ev.avg_price < best->avg_price) {
      best = &ev;
    }
  }
  if (best == nullptr) {
    return Unavailable("no admissible spot market");
  }
  return *best;
}

Result<MarketEvaluation> ServerSelector::SelectLeastVolatile(
    SimTime now, const JobProfile& job, const std::unordered_set<MarketId>& exclude) const {
  std::vector<MarketEvaluation> evs = EvaluateMarkets(now, job, exclude);
  MarketEvaluation* best = nullptr;
  for (auto& ev : evs) {
    if (ev.id == kOnDemandMarket) {
      continue;
    }
    if (best == nullptr || ev.mttf_hours > best->mttf_hours) {
      best = &ev;
    }
  }
  if (best == nullptr) {
    return Unavailable("no admissible spot market");
  }
  return *best;
}

std::vector<MarketId> ServerSelector::UncorrelatedSet(size_t max_size) const {
  const size_t n = marketplace_->num_markets();
  std::vector<MarketId> all(n);
  for (size_t i = 0; i < n; ++i) {
    all[i] = static_cast<MarketId>(i);
  }
  if (n <= 2 || max_size >= n) {
    if (all.size() > max_size) {
      all.resize(max_size);
    }
    return all;
  }
  const auto corr = marketplace_->CorrelationMatrix();
  auto abs_corr = [&](MarketId a, MarketId b) {
    return std::fabs(corr[static_cast<size_t>(a)][static_cast<size_t>(b)]);
  };
  // Seed with the least-correlated pair, then greedily add the market whose
  // maximum correlation to the current set is smallest.
  MarketId s0 = 0;
  MarketId s1 = 1;
  double best_pair = abs_corr(s0, s1);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double c = abs_corr(static_cast<MarketId>(i), static_cast<MarketId>(j));
      if (c < best_pair) {
        best_pair = c;
        s0 = static_cast<MarketId>(i);
        s1 = static_cast<MarketId>(j);
      }
    }
  }
  std::vector<MarketId> set = {s0, s1};
  std::unordered_set<MarketId> in_set = {s0, s1};
  while (set.size() < max_size) {
    MarketId best = kOnDemandMarket;
    double best_max = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) {
      const MarketId cand = static_cast<MarketId>(i);
      if (in_set.count(cand) > 0) {
        continue;
      }
      double max_c = 0.0;
      for (MarketId m : set) {
        max_c = std::max(max_c, abs_corr(cand, m));
      }
      if (max_c < best_max) {
        best_max = max_c;
        best = cand;
      }
    }
    if (best == kOnDemandMarket || best_max > config_.correlation_threshold) {
      break;
    }
    set.push_back(best);
    in_set.insert(best);
  }
  return set;
}

MixEvaluation ServerSelector::EvaluateMix(const std::vector<MarketId>& markets, SimTime now,
                                          const JobProfile& job) const {
  MixEvaluation mix;
  mix.markets = markets;
  std::vector<double> mttfs;
  double price_sum = 0.0;
  for (MarketId id : markets) {
    const BidStats stats =
        marketplace_->WindowStats(id, now, config_.history_window, BidFor(id));
    mttfs.push_back(stats.mttf_hours);
    price_sum += stats.avg_price;
  }
  const int m = static_cast<int>(markets.size());
  mix.aggregate_mttf_hours = AggregateMttf(mttfs);
  mix.expected_factor =
      ExpectedRuntimeFactor(job.delta_hours, job.rd_hours, mix.aggregate_mttf_hours, m);
  mix.expected_unit_cost =
      mix.expected_factor * (m > 0 ? price_sum / static_cast<double>(m) : 0.0);
  mix.runtime_variance =
      RuntimeVariancePerUnitTime(job.delta_hours, job.rd_hours, mix.aggregate_mttf_hours, m);
  return mix;
}

Result<MixEvaluation> ServerSelector::SelectInteractive(
    SimTime now, const JobProfile& job, const std::unordered_set<MarketId>& exclude) const {
  // 1. Candidate set L of mutually uncorrelated markets, filtered.
  std::vector<MarketId> candidates;
  for (MarketId id : UncorrelatedSet(config_.max_candidate_set)) {
    if (exclude.count(id) == 0 && Admissible(id, now)) {
      candidates.push_back(id);
    }
  }
  if (candidates.empty()) {
    MixEvaluation od = EvaluateMix({kOnDemandMarket}, now, job);
    return od;
  }
  // 2. Sort candidates by expected unit cost (batch criterion). Evaluate
  // walks the full price history, so compute each cost exactly once instead
  // of inside the comparator (which re-evaluates O(n log n) times).
  // RankCost keeps NaN/degenerate costs out of the pair comparator too.
  std::vector<std::pair<double, MarketId>> ranked;
  ranked.reserve(candidates.size());
  for (MarketId id : candidates) {
    ranked.emplace_back(RankCost(Evaluate(id, now, job)), id);
  }
  std::sort(ranked.begin(), ranked.end());
  for (size_t i = 0; i < ranked.size(); ++i) {
    candidates[i] = ranked[i].second;
  }
  const double on_demand_cost = marketplace_->on_demand_price();

  // 3. Greedily add markets while the variance decreases.
  std::vector<MarketId> chosen = {candidates.front()};
  MixEvaluation best = EvaluateMix(chosen, now, job);
  for (size_t i = 1;
       i < candidates.size() && chosen.size() < static_cast<size_t>(config_.max_markets_in_mix);
       ++i) {
    std::vector<MarketId> trial = chosen;
    trial.push_back(candidates[i]);
    MixEvaluation trial_mix = EvaluateMix(trial, now, job);
    if (trial_mix.runtime_variance >= best.runtime_variance) {
      break;  // adding this market no longer reduces variance
    }
    if (trial_mix.expected_unit_cost > on_demand_cost) {
      break;  // never exceed the on-demand cost (Sec 3.2.2)
    }
    chosen = std::move(trial);
    best = std::move(trial_mix);
  }
  return best;
}

Result<MarketEvaluation> ServerSelector::SelectReplacement(
    SelectionPolicyKind policy, SimTime now, const JobProfile& job,
    const std::unordered_set<MarketId>& exclude) const {
  switch (policy) {
    case SelectionPolicyKind::kFlintBatch:
      return SelectBatch(now, job, exclude);
    case SelectionPolicyKind::kFlintInteractive: {
      // Replace from the lowest-cost admissible *unused* market in L.
      for (MarketId id : UncorrelatedSet(config_.max_candidate_set)) {
        if (exclude.count(id) == 0 && Admissible(id, now)) {
          return Evaluate(id, now, job);
        }
      }
      return Evaluate(kOnDemandMarket, now, job);
    }
    case SelectionPolicyKind::kSpotFleetCheapest:
      return SelectCheapest(now, job, exclude);
    case SelectionPolicyKind::kSpotFleetLeastVolatile:
      return SelectLeastVolatile(now, job, exclude);
    case SelectionPolicyKind::kOnDemand:
      return Evaluate(kOnDemandMarket, now, job);
  }
  return Internal("unknown selection policy");
}

}  // namespace flint
