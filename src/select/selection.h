// Transient-server selection policies (paper Sec 3.1.2, 3.2.2):
//
//   Flint-batch:       one homogeneous market minimizing E[C_k] = E[T_k]*p_k.
//   Flint-interactive: a mix of mutually-uncorrelated markets, grown greedily
//                      while the variance of running time decreases and the
//                      expected cost stays below on-demand.
//   SpotFleet-cheapest / least-volatile: application-agnostic baselines that
//                      pick by price or by MTTF alone.
//   Restoration:       replace revoked servers from the next-best market,
//                      excluding the revoked market and any market whose
//                      instantaneous price is far above its recent average.
//   Bidding:           bid the on-demand price (Sec 3.2.2 "Bidding Policy");
//                      the multiple is configurable for the Fig 11b sweep.
//
// All statistics come from the Marketplace over a recent window (the node
// manager "monitors the real-time spot price ... and maintains each market's
// historical average spot price and revocation rate over a recent time
// window, e.g., the past week").

#ifndef SRC_SELECT_SELECTION_H_
#define SRC_SELECT_SELECTION_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/checkpoint/checkpoint_policy.h"
#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/common/units.h"
#include "src/market/marketplace.h"

namespace flint {

enum class SelectionPolicyKind {
  kFlintBatch,
  kFlintInteractive,
  kSpotFleetCheapest,
  kSpotFleetLeastVolatile,
  kOnDemand,
};

struct SelectionConfig {
  double bid_multiple = 1.0;  // bid = multiple * on-demand price
  SimDuration history_window = Hours(24.0 * 7);
  // Instantaneous-risk filter: skip markets whose current price is more than
  // this fraction above the recent average.
  double price_threshold = 0.10;
  // Candidate set L construction for the interactive policy.
  size_t max_candidate_set = 10;
  double correlation_threshold = 0.4;
  int max_markets_in_mix = 8;
  // Weight of the newest observed link-throughput sample in the per-market
  // EWMA (RecordObservedThroughput).
  double link_ewma_alpha = 0.3;
};

// Application profile the cost model needs, in model hours.
struct JobProfile {
  double delta_hours = Minutes(2);  // time to checkpoint the frontier
  double rd_hours = Minutes(2);     // replacement-server acquisition delay
};

struct MarketEvaluation {
  MarketId id = kOnDemandMarket;
  double mttf_hours = 0.0;
  double avg_price = 0.0;
  double expected_factor = 1.0;    // E[T]/T from Eq. 1
  double expected_unit_cost = 0.0; // factor * avg price / link (Eq. 2 per unit T)
  double link_throughput = 1.0;    // observed link EWMA folded into the cost
};

struct MixEvaluation {
  std::vector<MarketId> markets;
  double aggregate_mttf_hours = 0.0;
  double expected_factor = 1.0;     // Eq. 4
  double expected_unit_cost = 0.0;
  double runtime_variance = 0.0;    // per unit running time
};

class ServerSelector {
 public:
  ServerSelector(const Marketplace* marketplace, SelectionConfig config)
      : marketplace_(marketplace), config_(config) {}

  const SelectionConfig& config() const { return config_; }
  double BidFor(MarketId id) const;

  // Folds one observed link-throughput sample (observed bytes/s over the
  // modelled capacity, clamped to (0, 1]) into `id`'s EWMA. The node manager
  // reports these from link-classified fetch samples, so a market whose
  // nodes keep serving shuffle data through sick NICs looks expensive to
  // EvaluateMarkets even when its price and MTTF are pristine.
  void RecordObservedThroughput(MarketId id, double ratio);
  // Current link EWMA for `id`; 1.0 when no sample has been observed.
  double ObservedThroughput(MarketId id) const;

  // Evaluates every spot market (excluding `exclude` and currently spiking /
  // unavailable ones) plus the on-demand pool, sorted by expected unit cost.
  std::vector<MarketEvaluation> EvaluateMarkets(
      SimTime now, const JobProfile& job,
      const std::unordered_set<MarketId>& exclude = {}) const;

  // Flint-batch: the single market with minimum expected cost (may be
  // on-demand if every spot market is worse).
  Result<MarketEvaluation> SelectBatch(SimTime now, const JobProfile& job,
                                       const std::unordered_set<MarketId>& exclude = {}) const;

  // Flint-interactive: variance-reducing market mix.
  Result<MixEvaluation> SelectInteractive(SimTime now, const JobProfile& job,
                                          const std::unordered_set<MarketId>& exclude = {}) const;

  // Baselines.
  Result<MarketEvaluation> SelectCheapest(SimTime now, const JobProfile& job,
                                          const std::unordered_set<MarketId>& exclude = {}) const;
  Result<MarketEvaluation> SelectLeastVolatile(
      SimTime now, const JobProfile& job,
      const std::unordered_set<MarketId>& exclude = {}) const;

  // Restoration: next-best market under `policy`, never the excluded ones.
  Result<MarketEvaluation> SelectReplacement(
      SelectionPolicyKind policy, SimTime now, const JobProfile& job,
      const std::unordered_set<MarketId>& exclude) const;

  // Greedy mutually-uncorrelated candidate set L (Sec 3.2.2).
  std::vector<MarketId> UncorrelatedSet(size_t max_size) const;

  // Evaluates a specific mix of markets (Eq. 3 + Eq. 4 + variance).
  MixEvaluation EvaluateMix(const std::vector<MarketId>& markets, SimTime now,
                            const JobProfile& job) const;

 private:
  MarketEvaluation Evaluate(MarketId id, SimTime now, const JobProfile& job) const;
  bool Admissible(MarketId id, SimTime now) const;

  const Marketplace* marketplace_;
  SelectionConfig config_;
  // Per-market observed link-throughput EWMA. Mutable state on an otherwise
  // read-only evaluator; leaf lock (never held while calling out).
  mutable Mutex link_mutex_{"ServerSelector::link_mutex_"};
  std::unordered_map<MarketId, double> link_ewma_ GUARDED_BY(link_mutex_);
};

}  // namespace flint

#endif  // SRC_SELECT_SELECTION_H_
