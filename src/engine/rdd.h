// The lineage core: Rdd (an immutable, partitioned, lazily computed dataset),
// its dependencies (narrow one-to-one or shuffle), and the checkpoint state
// machine Flint's fault-tolerance manager drives.

#ifndef SRC_ENGINE_RDD_H_
#define SRC_ENGINE_RDD_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/engine/fusion.h"
#include "src/engine/partition.h"

namespace flint {

class FlintContext;
class TaskContext;
class Rdd;
using RddPtr = std::shared_ptr<Rdd>;

// Builds the map-side bucketing sink of a shuffle: a BucketTerminal whose
// sink splits one map partition's record stream into `num_buckets`
// reduce-side buckets. `expected_rows` is a pre-sizing hint (the map
// partition's row count when known, 0 otherwise).
using BucketTerminalFactory =
    std::function<BucketTerminal(int num_buckets, size_t expected_rows)>;

struct ShuffleInfo {
  int shuffle_id = -1;
  int num_map_partitions = 0;
  int num_reduce_partitions = 0;
  // Sink factory plus a driver that streams an already materialized map
  // partition through such a sink (the unfused path). Fused and unfused
  // execution push the same rows in the same order into sinks from the same
  // factory, so their buckets are bit-identical by construction.
  BucketTerminalFactory make_bucket_sink;
  std::function<void(const PartitionData& parent, FusionSink& sink)> drive_rows;
  // The RDD whose partitions feed the map side.
  std::weak_ptr<Rdd> map_side;
};

enum class DepType { kNarrowOneToOne, kShuffle };

struct Dependency {
  DepType type = DepType::kNarrowOneToOne;
  RddPtr parent;
  std::shared_ptr<ShuffleInfo> shuffle;  // set iff type == kShuffle
};

// Checkpoint lifecycle: kNone -> kMarked (FT manager decided to checkpoint)
// -> kSaved (every partition durably in the DFS with a committed manifest;
// lineage truncated here). A verified restore that finds the checkpoint
// missing or corrupt demotes back to kNone (ResetCheckpoint) and recovery
// falls back to lineage recomputation.
enum class CheckpointState { kNone = 0, kMarked = 1, kSaved = 2 };

class Rdd : public std::enable_shared_from_this<Rdd> {
 public:
  Rdd(FlintContext* ctx, std::string name, int num_partitions, std::vector<Dependency> deps);
  virtual ~Rdd();

  Rdd(const Rdd&) = delete;
  Rdd& operator=(const Rdd&) = delete;

  // Computes partition `index` from parents, fetching inputs through `tc`.
  // May fail with kDataLoss (missing shuffle input), kUnavailable (node
  // revoked mid-task), or any error from the source.
  virtual Result<PartitionPtr> Compute(int index, TaskContext& tc) const = 0;

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  int num_partitions() const { return num_partitions_; }
  const std::vector<Dependency>& deps() const { return deps_; }
  FlintContext* context() const { return ctx_; }

  // True if any dependency is a shuffle; such RDDs get the paper's boosted
  // checkpoint frequency (tau / #shuffled-from partitions).
  bool is_shuffle_output() const;

  // Caching hint (Spark's persist()): computed partitions are kept in the
  // block manager. Source and shuffle RDDs benefit most.
  bool should_cache() const { return cache_.load(std::memory_order_relaxed); }
  void set_cache(bool v) { cache_.store(v, std::memory_order_relaxed); }

  // Record-streaming fusion surface (see fusion.h). Null for operators that
  // cannot stream (sources, shuffle consumers, vector-level ops). Set once on
  // the driver thread immediately after construction, before the RDD can
  // reach an executor, so no synchronization is needed on the pointer.
  const FusionOps* fusion_ops() const { return fusion_ops_.get(); }
  void set_fusion_ops(std::shared_ptr<const FusionOps> ops) { fusion_ops_ = std::move(ops); }

  // Number of live RDDs depending on this one (narrow or shuffle). A child
  // increments its parents' counts at construction and decrements them at
  // destruction. Fusion refuses to stream *through* an RDD with more than one
  // live consumer: eliding its output would recompute it once per consumer.
  int consumer_count() const { return consumers_.load(std::memory_order_acquire); }

  CheckpointState checkpoint_state() const { return state_.load(std::memory_order_acquire); }
  // kNone -> kMarked. Returns false if already marked/saved.
  bool MarkForCheckpoint();
  // kMarked -> kSaved. Must only be called once the manifest has landed in
  // the DFS: kSaved is the signal recovery trusts.
  void SetCheckpointSaved();
  // Any state -> kNone: the checkpoint proved unusable (torn, corrupt, or
  // GC'd mid-restore) or its writes were abandoned; the RDD may be re-marked
  // later by the fault-tolerance manager.
  void ResetCheckpoint();
  std::string CheckpointDir() const;
  std::string CheckpointPath(int partition) const;
  // Commit record written last; see src/dfs/manifest.h.
  std::string ManifestPath() const;

 private:
  FlintContext* ctx_;
  int id_;
  std::string name_;
  int num_partitions_;
  std::vector<Dependency> deps_;
  std::shared_ptr<const FusionOps> fusion_ops_;
  std::atomic<bool> cache_{false};
  std::atomic<CheckpointState> state_{CheckpointState::kNone};
  std::atomic<int> consumers_{0};
};

// Walks narrow dependencies transitively and returns the set of shuffle
// dependencies directly feeding `rdd`'s stage (classic Spark stage cut).
std::vector<std::shared_ptr<ShuffleInfo>> CollectDirectShuffleDeps(const RddPtr& rdd);

}  // namespace flint

#endif  // SRC_ENGINE_RDD_H_
