// Additional typed transformations and actions layered over typed_rdd.h:
// Union, Distinct, Sample, SortBy, Zip-with-index, CoGroup, and the Take /
// First actions. Kept in a separate header so the core stays small; include
// this for the full Spark-like surface.

#ifndef SRC_ENGINE_TYPED_RDD_OPS_H_
#define SRC_ENGINE_TYPED_RDD_OPS_H_

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "src/common/rng.h"
#include "src/engine/typed_rdd.h"

namespace flint {

// Concatenates two RDDs of the same type. Partitions are the union of both
// parents' partitions (narrow: partition i of the result maps to one parent
// partition).
template <typename T>
TypedRdd<T> Union(const TypedRdd<T>& left, const TypedRdd<T>& right,
                  std::string name = "union") {
  FlintContext* ctx = left.ctx();
  RddPtr lp = left.raw();
  RddPtr rp = right.raw();
  const int ln = lp->num_partitions();
  const int total = ln + rp->num_partitions();
  RddPtr out = ctx->CreateRdd(
      std::move(name), total,
      {Dependency{DepType::kNarrowOneToOne, lp, nullptr},
       Dependency{DepType::kNarrowOneToOne, rp, nullptr}},
      [lp, rp, ln](int i, TaskContext& tc) -> Result<PartitionPtr> {
        if (i < ln) {
          return tc.GetPartition(lp, i);
        }
        return tc.GetPartition(rp, i - ln);
      });
  return TypedRdd<T>(ctx, std::move(out));
}

// Removes duplicates via a shuffle (hash-partition by value, dedupe on the
// reduce side). Requires std::hash-able, ordered T.
template <typename T>
TypedRdd<T> Distinct(const TypedRdd<T>& parent, int num_reduce, std::string name = "distinct") {
  auto keyed = parent.Map([](const T& t) { return std::make_pair(t, 0); }, name + "-key");
  auto reduced = ReduceByKey(keyed, num_reduce, [](int a, int) { return a; }, name);
  return reduced.Map([](const std::pair<T, int>& kv) { return kv.first; }, name + "-unkey");
}

// Bernoulli sample with the given fraction; deterministic in (seed, partition).
template <typename T>
TypedRdd<T> Sample(const TypedRdd<T>& parent, double fraction, uint64_t seed,
                   std::string name = "sample") {
  RddPtr p = parent.raw();
  RddPtr out = parent.ctx()->CreateRdd(
      std::move(name), p->num_partitions(),
      {Dependency{DepType::kNarrowOneToOne, p, nullptr}},
      [p, fraction, seed](int i, TaskContext& tc) -> Result<PartitionPtr> {
        FLINT_ASSIGN_OR_RETURN(PartitionPtr in, tc.GetPartition(p, i));
        Rng rng(seed * 2654435761ULL + static_cast<uint64_t>(i));
        std::vector<T> rows;
        for (const auto& r : Rows<T>(*in)) {
          if (rng.Bernoulli(fraction)) {
            rows.push_back(r);
          }
        }
        return MakePartition(std::move(rows));
      });
  return TypedRdd<T>(parent.ctx(), std::move(out));
}

// Globally sorts by `key_fn` via a single-reducer shuffle followed by a
// per-range split. For the data sizes this engine targets, a one-pass total
// sort (range partition by sampled splitters) is overkill; we shuffle
// everything to `num_output` partitions by key-range using driver-free
// quantile estimation on the map side hash — implemented here as the simple
// and correct variant: one sort partition, then re-split round-robin.
template <typename T, typename KeyFn>
TypedRdd<T> SortBy(const TypedRdd<T>& parent, KeyFn key_fn, std::string name = "sortBy") {
  // Shuffle all rows into one bucket, sort there.
  auto keyed = parent.Map([](const T& t) { return std::make_pair(0, t); }, name + "-key");
  auto grouped = GroupByKey(keyed, /*num_reduce=*/1, name + "-gather");
  RddPtr g = grouped.raw();
  RddPtr out = parent.ctx()->CreateRdd(
      name, 1, {Dependency{DepType::kNarrowOneToOne, g, nullptr}},
      [g, key_fn](int i, TaskContext& tc) -> Result<PartitionPtr> {
        FLINT_ASSIGN_OR_RETURN(PartitionPtr in, tc.GetPartition(g, i));
        std::vector<T> rows;
        const auto& groups = Rows<std::pair<int, std::vector<T>>>(*in);
        for (const auto& [k, vs] : groups) {
          rows.insert(rows.end(), vs.begin(), vs.end());
        }
        std::sort(rows.begin(), rows.end(),
                  [&key_fn](const T& a, const T& b) { return key_fn(a) < key_fn(b); });
        return MakePartition(std::move(rows));
      });
  return TypedRdd<T>(parent.ctx(), std::move(out));
}

// CoGroup: for each key, the values from both sides. The building block for
// outer joins.
template <typename K, typename V, typename W>
PairRdd<K, std::pair<std::vector<V>, std::vector<W>>> CoGroup(const PairRdd<K, V>& left,
                                                              const PairRdd<K, W>& right,
                                                              int num_reduce,
                                                              std::string name = "cogroup") {
  FlintContext* ctx = left.ctx();
  auto left_info = rdd_internal::MakeShuffle<K, V>(ctx, left.raw(), num_reduce,
                                                   rdd_internal::MakePlainBucketer<K, V>());
  auto right_info = rdd_internal::MakeShuffle<K, W>(ctx, right.raw(), num_reduce,
                                                    rdd_internal::MakePlainBucketer<K, W>());
  using Out = std::pair<K, std::pair<std::vector<V>, std::vector<W>>>;
  RddPtr out = ctx->CreateRdd(
      std::move(name), num_reduce,
      {Dependency{DepType::kShuffle, left.raw(), left_info},
       Dependency{DepType::kShuffle, right.raw(), right_info}},
      [left_info, right_info](int j, TaskContext& tc) -> Result<PartitionPtr> {
        FLINT_ASSIGN_OR_RETURN(std::vector<PartitionPtr> lbuckets,
                               tc.FetchShuffle(left_info->shuffle_id, j));
        FLINT_ASSIGN_OR_RETURN(std::vector<PartitionPtr> rbuckets,
                               tc.FetchShuffle(right_info->shuffle_id, j));
        std::unordered_map<K, std::pair<std::vector<V>, std::vector<W>>, KeyHasher<K>> acc;
        for (const auto& b : lbuckets) {
          for (const auto& kv : Rows<std::pair<K, V>>(*b)) {
            acc[kv.first].first.push_back(kv.second);
          }
        }
        for (const auto& b : rbuckets) {
          for (const auto& kw : Rows<std::pair<K, W>>(*b)) {
            acc[kw.first].second.push_back(kw.second);
          }
        }
        std::vector<Out> rows;
        rows.reserve(acc.size());
        for (auto& [k, vw] : acc) {
          rows.emplace_back(k, std::move(vw));
        }
        std::sort(rows.begin(), rows.end(),
                  [](const Out& a, const Out& b) { return a.first < b.first; });
        return MakePartition(std::move(rows));
      });
  return PairRdd<K, std::pair<std::vector<V>, std::vector<W>>>(ctx, std::move(out));
}

// Left outer join built on CoGroup: right side values become optional.
template <typename K, typename V, typename W>
PairRdd<K, std::pair<V, std::optional<W>>> LeftOuterJoin(const PairRdd<K, V>& left,
                                                         const PairRdd<K, W>& right,
                                                         int num_reduce,
                                                         std::string name = "leftOuterJoin") {
  auto cg = CoGroup(left, right, num_reduce, name + "-cogroup");
  using In = std::pair<K, std::pair<std::vector<V>, std::vector<W>>>;
  using Out = std::pair<K, std::pair<V, std::optional<W>>>;
  return cg.FlatMap(
      [](const In& row) {
        std::vector<Out> out;
        for (const V& v : row.second.first) {
          if (row.second.second.empty()) {
            out.emplace_back(row.first, std::make_pair(v, std::optional<W>()));
          } else {
            for (const W& w : row.second.second) {
              out.emplace_back(row.first, std::make_pair(v, std::optional<W>(w)));
            }
          }
        }
        return out;
      },
      name);
}

// Take: the first n records in partition order (materializes everything; the
// engine targets MB-scale partitions, so no incremental evaluation).
template <typename T>
Result<std::vector<T>> Take(const TypedRdd<T>& rdd, size_t n) {
  FLINT_ASSIGN_OR_RETURN(std::vector<T> all, rdd.Collect());
  if (all.size() > n) {
    all.resize(n);
  }
  return all;
}

template <typename T>
Result<T> First(const TypedRdd<T>& rdd) {
  FLINT_ASSIGN_OR_RETURN(std::vector<T> one, Take(rdd, 1));
  if (one.empty()) {
    return FailedPrecondition("First on empty RDD");
  }
  return one.front();
}

// Keys / Values projections.
template <typename K, typename V>
TypedRdd<K> Keys(const PairRdd<K, V>& rdd, std::string name = "keys") {
  return rdd.Map([](const std::pair<K, V>& kv) { return kv.first; }, std::move(name));
}

template <typename K, typename V>
TypedRdd<V> Values(const PairRdd<K, V>& rdd, std::string name = "values") {
  return rdd.Map([](const std::pair<K, V>& kv) { return kv.second; }, std::move(name));
}

}  // namespace flint

#endif  // SRC_ENGINE_TYPED_RDD_OPS_H_
