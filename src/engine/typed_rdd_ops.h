// Additional typed transformations and actions layered over typed_rdd.h:
// Union, Distinct, Sample, SortBy, Zip-with-index, CoGroup, and the Take /
// First actions. Kept in a separate header so the core stays small; include
// this for the full Spark-like surface.

#ifndef SRC_ENGINE_TYPED_RDD_OPS_H_
#define SRC_ENGINE_TYPED_RDD_OPS_H_

#include <algorithm>
#include <optional>

#include "src/common/rng.h"
#include "src/engine/typed_rdd.h"

namespace flint {

namespace rdd_internal {

// Range-partitioning bucket sink for SortBy: upper_bound over the quantile
// splitters routes each row, preserving arrival order within a bucket (the
// reduce side's stable_sort relies on that order for tie stability). Unlike
// the hash-bucket sinks, buckets are NOT key-sorted at the map side — the
// reduce side sorts whole rows once anyway.
template <typename T, typename KeyFn, typename K>
class RangeBucketSink final : public TypedSink<T> {
 public:
  RangeBucketSink(int num_buckets, size_t expected_rows, KeyFn key_fn,
                  std::shared_ptr<std::vector<K>> splitters)
      : key_fn_(std::move(key_fn)), splitters_(std::move(splitters)),
        buckets_(static_cast<size_t>(num_buckets)) {
    for (auto& b : buckets_) {
      b.reserve(expected_rows / buckets_.size() + 1);
    }
  }

  void Push(const T* rec, size_t n) override {
    rows_in_ += n;
    for (size_t i = 0; i < n; ++i) {
      size_t idx = static_cast<size_t>(std::upper_bound(splitters_->begin(), splitters_->end(),
                                                        key_fn_(rec[i])) -
                                       splitters_->begin());
      if (idx >= buckets_.size()) {
        idx = buckets_.size() - 1;
      }
      buckets_[idx].push_back(rec[i]);
    }
  }

  std::vector<PartitionPtr> Finish() {
    std::vector<PartitionPtr> out;
    out.reserve(buckets_.size());
    for (auto& b : buckets_) {
      out.push_back(MakePartition(std::move(b)));
    }
    return out;
  }

  uint64_t rows_in() const { return rows_in_; }

 private:
  KeyFn key_fn_;
  std::shared_ptr<std::vector<K>> splitters_;
  std::vector<std::vector<T>> buckets_;
  uint64_t rows_in_ = 0;
};

}  // namespace rdd_internal

// Concatenates two RDDs of the same type. Partitions are the union of both
// parents' partitions (narrow: partition i of the result maps to one parent
// partition).
template <typename T>
TypedRdd<T> Union(const TypedRdd<T>& left, const TypedRdd<T>& right,
                  std::string name = "union") {
  FlintContext* ctx = left.ctx();
  RddPtr lp = left.raw();
  RddPtr rp = right.raw();
  const int ln = lp->num_partitions();
  const int total = ln + rp->num_partitions();
  RddPtr out = ctx->CreateRdd(
      std::move(name), total,
      {Dependency{DepType::kNarrowOneToOne, lp, nullptr},
       Dependency{DepType::kNarrowOneToOne, rp, nullptr}},
      [lp, rp, ln](int i, TaskContext& tc) -> Result<PartitionPtr> {
        if (i < ln) {
          return tc.GetPartition(lp, i);
        }
        return tc.GetPartition(rp, i - ln);
      });
  return TypedRdd<T>(ctx, std::move(out));
}

// Removes duplicates via a shuffle (hash-partition by value, dedupe on the
// reduce side). Requires std::hash-able, ordered T.
template <typename T>
TypedRdd<T> Distinct(const TypedRdd<T>& parent, int num_reduce, std::string name = "distinct") {
  auto keyed = parent.Map([](const T& t) { return std::make_pair(t, 0); }, name + "-key");
  auto reduced = ReduceByKey(keyed, num_reduce, [](int a, int) { return a; }, name);
  return reduced.Map([](const std::pair<T, int>& kv) { return kv.first; }, name + "-unkey");
}

// Bernoulli sample with the given fraction; deterministic in (seed, partition).
template <typename T>
TypedRdd<T> Sample(const TypedRdd<T>& parent, double fraction, uint64_t seed,
                   std::string name = "sample") {
  RddPtr p = parent.raw();
  RddPtr out = parent.ctx()->CreateRdd(
      std::move(name), p->num_partitions(),
      {Dependency{DepType::kNarrowOneToOne, p, nullptr}},
      [p, fraction, seed](int i, TaskContext& tc) -> Result<PartitionPtr> {
        FLINT_ASSIGN_OR_RETURN(PartitionPtr in, tc.GetPartition(p, i));
        Rng rng(seed * 2654435761ULL + static_cast<uint64_t>(i));
        std::vector<T> rows;
        for (const auto& r : Rows<T>(*in)) {
          if (rng.Bernoulli(fraction)) {
            rows.push_back(r);
          }
        }
        return MakePartition(std::move(rows));
      });
  out->set_fusion_ops(fusion_internal::MakeSampleFusionOps<T>(fraction, seed));
  return TypedRdd<T>(parent.ctx(), std::move(out));
}

// Globally sorts by `key_fn` into `num_output` range partitions (0 = inherit
// the parent's partition count), Spark RangePartitioner-style:
//
//   1. An eager sample job takes up to 32 evenly spaced keys per parent
//      partition and the driver picks num_output-1 quantile splitters.
//   2. One shuffle range-partitions every row by upper_bound over the
//      splitters, so partition j holds keys in (s_{j-1}, s_j] and equal keys
//      never straddle a boundary.
//   3. Each reduce partition concatenates its buckets (map-partition order)
//      and stable_sorts by key.
//
// The result read in partition order is globally sorted, and — because the
// bucket concatenation order and stable_sort preserve the (map partition,
// row index) order of ties — bit-identical across num_output choices. Should
// the sample job fail (e.g. the cluster is mid-storm), the splitter set
// degrades to empty: everything lands in partition 0, which is the old
// single-reducer behaviour, still correct.
template <typename T, typename KeyFn>
TypedRdd<T> SortBy(const TypedRdd<T>& parent, KeyFn key_fn, int num_output = 0,
                   std::string name = "sortBy") {
  using K = std::decay_t<std::invoke_result_t<KeyFn, const T&>>;
  FlintContext* ctx = parent.ctx();
  if (num_output <= 0) {
    num_output = parent.num_partitions();
  }
  auto splitters = std::make_shared<std::vector<K>>();
  if (num_output > 1) {
    auto sample = parent.MapPartitions(
        [key_fn](const std::vector<T>& rows) {
          std::vector<K> keys;
          const size_t take = std::min<size_t>(rows.size(), 32);
          keys.reserve(take);
          for (size_t i = 0; i < take; ++i) {
            keys.push_back(key_fn(rows[i * rows.size() / take]));
          }
          return keys;
        },
        name + "-sample");
    auto sampled = sample.Collect();
    if (sampled.ok() && !sampled->empty()) {
      std::sort(sampled->begin(), sampled->end());
      splitters->reserve(static_cast<size_t>(num_output) - 1);
      for (int b = 1; b < num_output; ++b) {
        splitters->push_back(
            (*sampled)[static_cast<size_t>(b) * sampled->size() / static_cast<size_t>(num_output)]);
      }
    }
  }
  BucketTerminalFactory factory = [key_fn, splitters](int num_buckets, size_t expected_rows) {
    auto sink = std::make_unique<rdd_internal::RangeBucketSink<T, KeyFn, K>>(
        num_buckets, expected_rows, key_fn, splitters);
    auto* raw = sink.get();
    BucketTerminal t;
    t.sink = std::move(sink);
    t.finish = [raw] { return raw->Finish(); };
    t.rows_in = [raw] { return raw->rows_in(); };
    return t;
  };
  auto info = rdd_internal::MakeShuffle(ctx, parent.raw(), num_output, std::move(factory),
                                        rdd_internal::MakeRowDrive<T>());
  RddPtr out = ctx->CreateRdd(
      std::move(name), num_output, {Dependency{DepType::kShuffle, parent.raw(), info}},
      [info, key_fn](int j, TaskContext& tc) -> Result<PartitionPtr> {
        FLINT_ASSIGN_OR_RETURN(std::vector<PartitionPtr> buckets,
                               tc.FetchShuffle(info->shuffle_id, j));
        size_t total = 0;
        for (const auto& b : buckets) {
          total += b->NumRecords();
        }
        std::vector<T> rows;
        rows.reserve(total);
        for (const auto& b : buckets) {
          const auto& br = Rows<T>(*b);
          rows.insert(rows.end(), br.begin(), br.end());
        }
        std::stable_sort(rows.begin(), rows.end(),
                         [key_fn](const T& a, const T& b) { return key_fn(a) < key_fn(b); });
        return MakePartition(std::move(rows));
      });
  return TypedRdd<T>(ctx, std::move(out));
}

// CoGroup: for each key, the values from both sides. The building block for
// outer joins.
template <typename K, typename V, typename W>
PairRdd<K, std::pair<std::vector<V>, std::vector<W>>> CoGroup(const PairRdd<K, V>& left,
                                                              const PairRdd<K, W>& right,
                                                              int num_reduce,
                                                              std::string name = "cogroup") {
  FlintContext* ctx = left.ctx();
  auto left_info = rdd_internal::MakeShuffle(ctx, left.raw(), num_reduce,
                                             rdd_internal::MakePlainBucketFactory<K, V>(),
                                             rdd_internal::MakeRowDrive<std::pair<K, V>>());
  auto right_info = rdd_internal::MakeShuffle(ctx, right.raw(), num_reduce,
                                              rdd_internal::MakePlainBucketFactory<K, W>(),
                                              rdd_internal::MakeRowDrive<std::pair<K, W>>());
  using Out = std::pair<K, std::pair<std::vector<V>, std::vector<W>>>;
  RddPtr out = ctx->CreateRdd(
      std::move(name), num_reduce,
      {Dependency{DepType::kShuffle, left.raw(), left_info},
       Dependency{DepType::kShuffle, right.raw(), right_info}},
      [left_info, right_info](int j, TaskContext& tc) -> Result<PartitionPtr> {
        FLINT_ASSIGN_OR_RETURN(std::vector<PartitionPtr> lbuckets,
                               tc.FetchShuffle(left_info->shuffle_id, j));
        FLINT_ASSIGN_OR_RETURN(std::vector<PartitionPtr> rbuckets,
                               tc.FetchShuffle(right_info->shuffle_id, j));
        // Merge each side's key-sorted buckets into grouped runs, then
        // stitch the two sorted group lists together with one sweep.
        std::vector<std::pair<K, std::vector<V>>> lg =
            rdd_internal::MergeGroupBuckets<K, V>(lbuckets);
        std::vector<std::pair<K, std::vector<W>>> rg =
            rdd_internal::MergeGroupBuckets<K, W>(rbuckets);
        std::vector<Out> rows;
        rows.reserve(lg.size() + rg.size());
        size_t li = 0;
        size_t ri = 0;
        while (li < lg.size() || ri < rg.size()) {
          if (ri >= rg.size() || (li < lg.size() && lg[li].first < rg[ri].first)) {
            rows.emplace_back(lg[li].first,
                              std::make_pair(std::move(lg[li].second), std::vector<W>{}));
            ++li;
          } else if (li >= lg.size() || rg[ri].first < lg[li].first) {
            rows.emplace_back(rg[ri].first,
                              std::make_pair(std::vector<V>{}, std::move(rg[ri].second)));
            ++ri;
          } else {
            rows.emplace_back(lg[li].first, std::make_pair(std::move(lg[li].second),
                                                           std::move(rg[ri].second)));
            ++li;
            ++ri;
          }
        }
        return MakePartition(std::move(rows));
      });
  return PairRdd<K, std::pair<std::vector<V>, std::vector<W>>>(ctx, std::move(out));
}

// Left outer join built on CoGroup: right side values become optional.
template <typename K, typename V, typename W>
PairRdd<K, std::pair<V, std::optional<W>>> LeftOuterJoin(const PairRdd<K, V>& left,
                                                         const PairRdd<K, W>& right,
                                                         int num_reduce,
                                                         std::string name = "leftOuterJoin") {
  auto cg = CoGroup(left, right, num_reduce, name + "-cogroup");
  using In = std::pair<K, std::pair<std::vector<V>, std::vector<W>>>;
  using Out = std::pair<K, std::pair<V, std::optional<W>>>;
  return cg.FlatMap(
      [](const In& row) {
        std::vector<Out> out;
        for (const V& v : row.second.first) {
          if (row.second.second.empty()) {
            out.emplace_back(row.first, std::make_pair(v, std::optional<W>()));
          } else {
            for (const W& w : row.second.second) {
              out.emplace_back(row.first, std::make_pair(v, std::optional<W>(w)));
            }
          }
        }
        return out;
      },
      name);
}

// Take: the first n records in partition order. Materializes partitions
// incrementally — the first batch is one partition, each miss grows the
// next batch 4x (Spark's scale-up heuristic) — and stops as soon as n
// records are gathered, so Take(small) on a wide RDD never computes the
// tail partitions.
template <typename T>
Result<std::vector<T>> Take(const TypedRdd<T>& rdd, size_t n) {
  std::vector<T> out;
  if (n == 0) {
    return out;
  }
  const int total = rdd.num_partitions();
  int next = 0;
  int batch = 1;
  while (next < total && out.size() < n) {
    std::vector<int> want;
    want.reserve(static_cast<size_t>(batch));
    for (int p = next; p < total && static_cast<int>(want.size()) < batch; ++p) {
      want.push_back(p);
    }
    next += static_cast<int>(want.size());
    batch *= 4;
    FLINT_ASSIGN_OR_RETURN(std::vector<PartitionPtr> parts,
                           rdd.ctx()->MaterializePartitions(rdd.raw(), want));
    for (const auto& part : parts) {
      const auto& rows = Rows<T>(*part);
      for (const T& r : rows) {
        out.push_back(r);
        if (out.size() == n) {
          return out;
        }
      }
    }
  }
  return out;
}

template <typename T>
Result<T> First(const TypedRdd<T>& rdd) {
  FLINT_ASSIGN_OR_RETURN(std::vector<T> one, Take(rdd, 1));
  if (one.empty()) {
    return FailedPrecondition("First on empty RDD");
  }
  return one.front();
}

// Keys / Values projections.
template <typename K, typename V>
TypedRdd<K> Keys(const PairRdd<K, V>& rdd, std::string name = "keys") {
  return rdd.Map([](const std::pair<K, V>& kv) { return kv.first; }, std::move(name));
}

template <typename K, typename V>
TypedRdd<V> Values(const PairRdd<K, V>& rdd, std::string name = "values") {
  return rdd.Map([](const std::pair<K, V>& kv) { return kv.second; }, std::move(name));
}

}  // namespace flint

#endif  // SRC_ENGINE_TYPED_RDD_OPS_H_
