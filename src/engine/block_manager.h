// Per-node RDD cache, mirroring Spark's block manager: bounded memory budget,
// LRU eviction, optional spill to node-local disk (lost on revocation, like
// EC2 instance storage). One BlockManager exists per live node; the
// cluster-wide index of which node caches which partition lives in
// FlintContext's BlockRegistry.
//
// The cache is striped into `num_shards` independently locked shards (each
// with budget/num_shards of the memory budget and its own LRU list) so
// concurrent executor threads touching different blocks do not serialize on
// one mutex; GetMutexStats() on "BlockManager::shard_mutex_" shows the
// contention. num_shards = 1 restores the single-lock, single-LRU behaviour.

#ifndef SRC_ENGINE_BLOCK_MANAGER_H_
#define SRC_ENGINE_BLOCK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/common/units.h"
#include "src/engine/partition.h"

namespace flint {

struct BlockKey {
  int rdd_id = -1;
  int partition = -1;
  bool operator==(const BlockKey& o) const {
    return rdd_id == o.rdd_id && partition == o.partition;
  }
};

struct BlockKeyHash {
  size_t operator()(const BlockKey& k) const {
    // splitmix64 finalizer over both ints. rdd_id and partition are small
    // sequential values; a multiplicative combine clusters them badly across
    // both hash-table buckets and cache shards, so mix all 64 bits.
    uint64_t x = (static_cast<uint64_t>(static_cast<uint32_t>(k.rdd_id)) << 32) |
                 static_cast<uint64_t>(static_cast<uint32_t>(k.partition));
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

// What to do when the memory budget is exceeded (Spark storage levels).
enum class EvictionMode {
  kDrop,   // MEMORY_ONLY: evicted partitions are recomputed on next access
  kSpill,  // MEMORY_AND_DISK: evicted partitions move to node-local disk
};

struct BlockManagerConfig {
  uint64_t memory_budget_bytes = 256 * kMiB;
  EvictionMode eviction = EvictionMode::kDrop;
  // Node-local disk bandwidth for spill reads/writes (models SSD instance
  // storage). Reads from spilled blocks sleep size/bandwidth.
  double disk_bandwidth_bytes_per_s = 400.0 * kMiB;
  bool model_latency = true;
  // Lock striping (clamped to >= 1). Each shard owns budget/num_shards bytes
  // and evicts independently, so the aggregate memory_used() never exceeds
  // the total budget but a single shard may evict while others have room.
  int num_shards = 8;
};

struct BlockEviction {
  BlockKey key;
  bool spilled = false;  // false: dropped entirely
};

class BlockManager {
 public:
  explicit BlockManager(BlockManagerConfig config);

  // Inserts a block, evicting LRU blocks of its shard if needed. Returns the
  // evictions performed so the caller can update the cluster-wide registry.
  // Blocks larger than the shard budget are not cached at all (the caller
  // sees a consistent "not stored" signal via *stored = false).
  std::vector<BlockEviction> Put(const BlockKey& key, PartitionPtr data, bool* stored);

  // Fetches a block from memory, or from local spill (paying the modelled
  // disk read and promoting it back to memory). nullptr if absent.
  PartitionPtr Get(const BlockKey& key);

  bool Contains(const BlockKey& key) const;
  void Erase(const BlockKey& key);
  void Clear();

  // Aggregates across shards; each is a consistent per-shard snapshot.
  uint64_t memory_used() const;
  uint64_t spill_used() const;
  size_t num_memory_blocks() const;
  size_t num_spill_blocks() const;
  size_t num_shards() const { return shards_.size(); }

  // Lifetime cache-traffic counters, exported as flint_block_* through the
  // metrics registry (aggregated over nodes by FlintContext's collector).
  struct CacheCounters {
    uint64_t hits = 0;       // Get served from memory
    uint64_t spill_hits = 0; // Get served from local spill
    uint64_t misses = 0;     // Get found nothing
    uint64_t evictions = 0;  // blocks pushed out of memory (dropped or spilled)
    uint64_t spills = 0;     // evictions that went to local disk
  };
  CacheCounters GetCacheCounters() const {
    CacheCounters c;
    c.hits = hits_.load(std::memory_order_relaxed);
    c.spill_hits = spill_hits_.load(std::memory_order_relaxed);
    c.misses = misses_.load(std::memory_order_relaxed);
    c.evictions = evictions_.load(std::memory_order_relaxed);
    c.spills = spills_.load(std::memory_order_relaxed);
    return c;
  }

 private:
  struct Entry {
    PartitionPtr data;
    uint64_t size = 0;
    std::list<BlockKey>::iterator lru_it;
  };

  struct Shard {
    mutable Mutex mutex{"BlockManager::shard_mutex_"};
    std::unordered_map<BlockKey, Entry, BlockKeyHash> memory GUARDED_BY(mutex);
    std::unordered_map<BlockKey, PartitionPtr, BlockKeyHash> spill GUARDED_BY(mutex);
    std::list<BlockKey> lru GUARDED_BY(mutex);  // front = most recent
    uint64_t memory_used GUARDED_BY(mutex) = 0;
    uint64_t spill_used GUARDED_BY(mutex) = 0;
  };

  Shard& ShardFor(const BlockKey& key) const {
    return *shards_[BlockKeyHash()(key) % shards_.size()];
  }

  // Evicts from `shard` until `needed` bytes fit its budget.
  void EvictShardLocked(Shard& shard, uint64_t needed, std::vector<BlockEviction>* evictions)
      REQUIRES(shard.mutex);
  void ChargeDisk(uint64_t bytes) const;

  BlockManagerConfig config_;
  uint64_t shard_budget_bytes_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> spill_hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> spills_{0};
};

}  // namespace flint

#endif  // SRC_ENGINE_BLOCK_MANAGER_H_
