// Per-node RDD cache, mirroring Spark's block manager: bounded memory budget,
// LRU eviction, optional spill to node-local disk (lost on revocation, like
// EC2 instance storage). One BlockManager exists per live node; the
// cluster-wide index of which node caches which partition lives in
// FlintContext's BlockRegistry.

#ifndef SRC_ENGINE_BLOCK_MANAGER_H_
#define SRC_ENGINE_BLOCK_MANAGER_H_

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/common/units.h"
#include "src/engine/partition.h"

namespace flint {

struct BlockKey {
  int rdd_id = -1;
  int partition = -1;
  bool operator==(const BlockKey& o) const {
    return rdd_id == o.rdd_id && partition == o.partition;
  }
};

struct BlockKeyHash {
  size_t operator()(const BlockKey& k) const {
    return std::hash<int>()(k.rdd_id) * 1000003u + std::hash<int>()(k.partition);
  }
};

// What to do when the memory budget is exceeded (Spark storage levels).
enum class EvictionMode {
  kDrop,   // MEMORY_ONLY: evicted partitions are recomputed on next access
  kSpill,  // MEMORY_AND_DISK: evicted partitions move to node-local disk
};

struct BlockManagerConfig {
  uint64_t memory_budget_bytes = 256 * kMiB;
  EvictionMode eviction = EvictionMode::kDrop;
  // Node-local disk bandwidth for spill reads/writes (models SSD instance
  // storage). Reads from spilled blocks sleep size/bandwidth.
  double disk_bandwidth_bytes_per_s = 400.0 * kMiB;
  bool model_latency = true;
};

struct BlockEviction {
  BlockKey key;
  bool spilled = false;  // false: dropped entirely
};

class BlockManager {
 public:
  explicit BlockManager(BlockManagerConfig config) : config_(config) {}

  // Inserts a block, evicting LRU blocks if needed. Returns the evictions
  // performed so the caller can update the cluster-wide registry. Blocks
  // larger than the whole budget are not cached at all (key is returned as a
  // drop so callers see a consistent "not stored" signal via found=false).
  std::vector<BlockEviction> Put(const BlockKey& key, PartitionPtr data, bool* stored);

  // Fetches a block from memory, or from local spill (paying the modelled
  // disk read and promoting it back to memory). nullptr if absent.
  PartitionPtr Get(const BlockKey& key);

  bool Contains(const BlockKey& key) const;
  void Erase(const BlockKey& key);
  void Clear();

  uint64_t memory_used() const;
  uint64_t spill_used() const;
  size_t num_memory_blocks() const;
  size_t num_spill_blocks() const;

 private:
  struct Entry {
    PartitionPtr data;
    uint64_t size = 0;
    std::list<BlockKey>::iterator lru_it;
  };

  // Evicts until `needed` bytes fit.
  void EvictLocked(uint64_t needed, std::vector<BlockEviction>* evictions) REQUIRES(mutex_);
  void ChargeDisk(uint64_t bytes) const;

  BlockManagerConfig config_;
  mutable Mutex mutex_{"BlockManager::mutex_"};
  std::unordered_map<BlockKey, Entry, BlockKeyHash> memory_ GUARDED_BY(mutex_);
  std::unordered_map<BlockKey, PartitionPtr, BlockKeyHash> spill_ GUARDED_BY(mutex_);
  std::list<BlockKey> lru_ GUARDED_BY(mutex_);  // front = most recent
  uint64_t memory_used_ GUARDED_BY(mutex_) = 0;
  uint64_t spill_used_ GUARDED_BY(mutex_) = 0;
};

}  // namespace flint

#endif  // SRC_ENGINE_BLOCK_MANAGER_H_
