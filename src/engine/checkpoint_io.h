// Checksumming glue between the engine's type-erased partitions and the
// DFS checkpoint store. Partitions live in memory (no byte serialization
// layer), so the fingerprint covers the observable object identity: payload
// size, record count, and the (rdd, partition) coordinates. The writer
// stamps it on the DfsObject and into the manifest; verified restores
// recompute it from the fetched object and compare all three, catching
// injected bit rot (stored checksum scrambled), torn writes (size mismatch),
// and path aliasing (wrong partition behind a path).

#ifndef SRC_ENGINE_CHECKPOINT_IO_H_
#define SRC_ENGINE_CHECKPOINT_IO_H_

#include <cstdint>

#include "src/common/crc32.h"
#include "src/engine/partition.h"

namespace flint {

inline uint64_t PartitionFingerprint(const PartitionData& data, int rdd_id, int partition) {
  const uint64_t fields[4] = {data.SizeBytes(), data.NumRecords(),
                              static_cast<uint64_t>(rdd_id), static_cast<uint64_t>(partition)};
  return Crc32(fields, sizeof(fields));
}

}  // namespace flint

#endif  // SRC_ENGINE_CHECKPOINT_IO_H_
