#include "src/engine/task_context.h"

#include <chrono>

#include "src/common/log.h"

namespace flint {

Result<PartitionPtr> TaskContext::GetPartition(const RddPtr& rdd, int partition) {
  if (Cancelled()) {
    return Unavailable("node revoked");
  }
  if (partition < 0 || partition >= rdd->num_partitions()) {
    return InvalidArgument("partition " + std::to_string(partition) + " out of range for rdd " +
                           rdd->name());
  }
  EngineCounters& counters = ctx_->counters();

  // 1. Cluster cache.
  const BlockKey key{rdd->id(), partition};
  if (PartitionPtr cached = ctx_->LookupBlock(key, node_id()); cached != nullptr) {
    counters.cache_hits.fetch_add(1, std::memory_order_relaxed);
    return cached;
  }
  counters.cache_misses.fetch_add(1, std::memory_order_relaxed);

  // 2. Saved checkpoint in the DFS. The restore is verified (manifest +
  // per-partition checksum); a missing or corrupt checkpoint demotes the RDD
  // back to kNone inside RestoreFromCheckpoint and we fall through to
  // lineage recomputation below.
  if (rdd->checkpoint_state() == CheckpointState::kSaved) {
    auto restored = ctx_->RestoreFromCheckpoint(rdd, partition);
    if (restored.ok()) {
      PartitionPtr data = std::move(restored).value();
      if (rdd->should_cache()) {
        ctx_->StoreBlock(key, node_id(), data);
      }
      return data;
    }
  }

  // 3. Recompute from lineage.
  const auto t0 = WallClock::now();
  Result<PartitionPtr> computed = rdd->Compute(partition, *this);
  if (!computed.ok()) {
    return computed.status();
  }
  const double seconds = WallDuration(WallClock::now() - t0).count();
  if (Cancelled()) {
    return Unavailable("node revoked during compute");
  }
  ctx_->NotifyPartitionComputed(rdd, partition, seconds);

  PartitionPtr data = std::move(computed).value();
  if (rdd->should_cache()) {
    ctx_->StoreBlock(key, node_id(), data);
  }
  if (rdd->checkpoint_state() == CheckpointState::kMarked &&
      !ctx_->dfs().Exists(rdd->CheckpointPath(partition))) {
    // Partition-level checkpoint write at task completion (paper Sec 4). The
    // paper spawns an asynchronous checkpoint task; since those tasks
    // "consume CPU and I/O resources that proportionally degrade the
    // performance of other tasks", we charge the DFS transfer inline, which
    // models the same resource consumption deterministically.
    (void)ctx_->WriteCheckpointData(rdd, partition, data);
  }
  return data;
}

Result<std::vector<PartitionPtr>> TaskContext::FetchShuffle(int shuffle_id, int reduce_part) {
  if (Cancelled()) {
    return Unavailable("node revoked");
  }
  auto fetched = ctx_->shuffles().Fetch(shuffle_id, reduce_part);
  if (!fetched.ok() && fetched.status().code() == StatusCode::kDataLoss) {
    failed_shuffle_ = shuffle_id;
  }
  return fetched;
}

}  // namespace flint
