#include "src/engine/task_context.h"

#include <chrono>
#include <vector>

#include "src/common/log.h"
#include "src/engine/fusion.h"

// flint-lint: allow-file(det-wallclock) compute timing feeds metrics and the health scorer, never partition contents

namespace flint {

namespace {

// True if `rdd` can be elided as an intermediate of a fused chain: a
// streaming operator over exactly one narrow parent whose output nothing
// else needs — not cached, not checkpoint-marked, and no other live
// consumer. (A cached/marked/shared intermediate must be materialized on its
// own so the cache, the checkpoint writer, or the other consumer sees it.)
bool FusableIntermediate(const RddPtr& rdd) {
  return rdd->fusion_ops() != nullptr && rdd->deps().size() == 1 &&
         rdd->deps()[0].type == DepType::kNarrowOneToOne && rdd->deps()[0].parent != nullptr &&
         !rdd->should_cache() && rdd->checkpoint_state() == CheckpointState::kNone &&
         rdd->consumer_count() <= 1;
}

}  // namespace

Result<PartitionPtr> TaskContext::GetPartition(const RddPtr& rdd, int partition) {
  if (Cancelled()) {
    return Unavailable("node revoked");
  }
  if (partition < 0 || partition >= rdd->num_partitions()) {
    return InvalidArgument("partition " + std::to_string(partition) + " out of range for rdd " +
                           rdd->name());
  }
  EngineCounters& counters = ctx_->counters();

  // 1. Cluster cache.
  const BlockKey key{rdd->id(), partition};
  if (PartitionPtr cached = ctx_->LookupBlock(key, node_id()); cached != nullptr) {
    counters.cache_hits.fetch_add(1, std::memory_order_relaxed);
    return cached;
  }
  counters.cache_misses.fetch_add(1, std::memory_order_relaxed);

  // 2. Saved checkpoint in the DFS. The restore is verified (manifest +
  // per-partition checksum); a missing or corrupt checkpoint demotes the RDD
  // back to kNone inside RestoreFromCheckpoint and we fall through to
  // lineage recomputation below.
  if (rdd->checkpoint_state() == CheckpointState::kSaved) {
    auto restored = ctx_->RestoreFromCheckpoint(rdd, partition);
    if (restored.ok()) {
      PartitionPtr data = std::move(restored).value();
      if (rdd->should_cache()) {
        ctx_->StoreBlock(key, node_id(), data);
      }
      return data;
    }
  }

  // 3. Recompute from lineage (fused when the chain allows it).
  const auto t0 = WallClock::now();
  Result<PartitionPtr> computed = ComputeFromLineage(rdd, partition);
  if (!computed.ok()) {
    return computed.status();
  }
  const double seconds = WallDuration(WallClock::now() - t0).count();
  if (Cancelled()) {
    return Unavailable("node revoked during compute");
  }
  ctx_->NotifyPartitionComputed(rdd, partition, seconds);

  PartitionPtr data = std::move(computed).value();
  if (rdd->should_cache()) {
    ctx_->StoreBlock(key, node_id(), data);
  }
  if (rdd->checkpoint_state() == CheckpointState::kMarked &&
      !ctx_->dfs().Exists(rdd->CheckpointPath(partition))) {
    // Partition-level checkpoint write at task completion (paper Sec 4). The
    // paper spawns an asynchronous checkpoint task; since those tasks
    // "consume CPU and I/O resources that proportionally degrade the
    // performance of other tasks", we charge the DFS transfer inline, which
    // models the same resource consumption deterministically.
    (void)ctx_->WriteCheckpointData(rdd, partition, data);
  }
  return data;
}

Result<PartitionPtr> TaskContext::ComputeFromLineage(const RddPtr& rdd, int partition) {
  // The chain head itself must be a streaming operator over one narrow
  // parent; its own cache/checkpoint/consumer state is irrelevant (the head's
  // output IS materialized — GetPartition handles storing it).
  if (!ctx_->config().operator_fusion || rdd->fusion_ops() == nullptr ||
      rdd->deps().size() != 1 || rdd->deps()[0].type != DepType::kNarrowOneToOne ||
      rdd->deps()[0].parent == nullptr) {
    return rdd->Compute(partition, *this);
  }
  // chain[0] = head; extend downward through transparent intermediates until
  // a barrier: a source, shuffle consumer, cached/marked RDD, or one with
  // another live consumer.
  std::vector<RddPtr> chain{rdd};
  RddPtr barrier = rdd->deps()[0].parent;
  while (FusableIntermediate(barrier)) {
    chain.push_back(barrier);
    barrier = barrier->deps()[0].parent;
  }
  if (chain.size() == 1) {
    return rdd->Compute(partition, *this);  // nothing to elide
  }

  // Materialize the barrier input through the regular path (cluster cache,
  // checkpoint restore, recursive lineage — possibly another fused chain
  // below the barrier), then stream it through the composed operators.
  FLINT_ASSIGN_OR_RETURN(PartitionPtr input, GetPartition(barrier, partition));

  // Sinks compose top-down: the head's adapter feeds the terminal, each
  // deeper operator's adapter feeds the one above, and the bottom operator
  // drives the barrier rows through the whole stack (and issues the single
  // Flush sweep).
  FusionTerminal terminal = chain.front()->fusion_ops()->make_terminal();
  FusionSink* down = terminal.sink.get();
  std::vector<std::unique_ptr<FusionSink>> adapters;
  adapters.reserve(chain.size() - 1);
  for (size_t i = 0; i + 1 < chain.size(); ++i) {
    adapters.push_back(chain[i]->fusion_ops()->adapt(partition, *down));
    down = adapters.back().get();
  }
  chain.back()->fusion_ops()->drive(partition, *input, *down);

  EngineCounters& counters = ctx_->counters();
  counters.fused_chains.fetch_add(1, std::memory_order_relaxed);
  counters.fused_operators_elided.fetch_add(chain.size() - 1, std::memory_order_relaxed);
  return terminal.finish();
}

Result<std::vector<PartitionPtr>> TaskContext::ComputeShuffleBuckets(const RddPtr& map_rdd,
                                                                     int partition,
                                                                     const ShuffleInfo& info) {
  if (Cancelled()) {
    return Unavailable("node revoked");
  }
  if (info.make_bucket_sink == nullptr || info.drive_rows == nullptr) {
    return Internal("shuffle " + std::to_string(info.shuffle_id) + " has no bucket sink");
  }
  EngineCounters& counters = ctx_->counters();

  // Fused path: the map RDD qualifies as an elidable streaming intermediate
  // (same predicate as narrow-chain fusion — its sole consumer is the
  // shuffle, and neither the cache nor the checkpoint writer needs its
  // output), so the chain above it drives records straight into the bucket
  // sink and the map-side partition is never built.
  if (ctx_->config().operator_fusion && ctx_->config().shuffle_fusion &&
      FusableIntermediate(map_rdd)) {
    std::vector<RddPtr> chain{map_rdd};
    RddPtr barrier = map_rdd->deps()[0].parent;
    while (FusableIntermediate(barrier)) {
      chain.push_back(barrier);
      barrier = barrier->deps()[0].parent;
    }
    FLINT_ASSIGN_OR_RETURN(PartitionPtr input, GetPartition(barrier, partition));

    const auto t0 = WallClock::now();
    BucketTerminal terminal =
        info.make_bucket_sink(info.num_reduce_partitions, input->NumRecords());
    FusionSink* down = terminal.sink.get();
    std::vector<std::unique_ptr<FusionSink>> adapters;
    adapters.reserve(chain.size() - 1);
    for (size_t i = 0; i + 1 < chain.size(); ++i) {
      adapters.push_back(chain[i]->fusion_ops()->adapt(partition, *down));
      down = adapters.back().get();
    }
    chain.back()->fusion_ops()->drive(partition, *input, *down);
    const double seconds = WallDuration(WallClock::now() - t0).count();
    if (Cancelled()) {
      return Unavailable("node revoked during compute");
    }
    // The map RDD still "computed" this partition as far as the rest of the
    // engine is concerned (recompute counters, FT-manager checkpoint
    // signals); only the materialization was elided.
    ctx_->NotifyPartitionComputed(map_rdd, partition, seconds);
    counters.shuffle_fused_bucket_chains.fetch_add(1, std::memory_order_relaxed);
    counters.shuffle_rows_bucketed_fused.fetch_add(terminal.rows_in(),
                                                   std::memory_order_relaxed);
    counters.fused_operators_elided.fetch_add(chain.size() - 1, std::memory_order_relaxed);
    return terminal.finish();
  }

  // Unfused fallback: materialize (cache -> checkpoint -> lineage) and
  // stream the rows through the same bucket sink.
  FLINT_ASSIGN_OR_RETURN(PartitionPtr input, GetPartition(map_rdd, partition));
  BucketTerminal terminal =
      info.make_bucket_sink(info.num_reduce_partitions, input->NumRecords());
  info.drive_rows(*input, *terminal.sink);
  if (Cancelled()) {
    return Unavailable("node revoked during compute");
  }
  counters.shuffle_rows_bucketed_unfused.fetch_add(terminal.rows_in(),
                                                   std::memory_order_relaxed);
  return terminal.finish();
}

Result<std::vector<PartitionPtr>> TaskContext::FetchShuffle(int shuffle_id, int reduce_part) {
  if (Cancelled()) {
    return Unavailable("node revoked");
  }
  auto fetched = ctx_->shuffles().Fetch(shuffle_id, reduce_part);
  if (!fetched.ok() && fetched.status().code() == StatusCode::kDataLoss) {
    failed_shuffle_ = shuffle_id;
  }
  return fetched;
}

}  // namespace flint
