#include "src/engine/task_context.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "src/common/log.h"
#include "src/engine/fusion.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

// flint-lint: allow-file(det-wallclock) compute timing feeds metrics and the health scorer, never partition contents

namespace flint {

namespace {

// True if `rdd` can be elided as an intermediate of a fused chain: a
// streaming operator over exactly one narrow parent whose output nothing
// else needs — not cached, not checkpoint-marked, and no other live
// consumer. (A cached/marked/shared intermediate must be materialized on its
// own so the cache, the checkpoint writer, or the other consumer sees it.)
bool FusableIntermediate(const RddPtr& rdd) {
  return rdd->fusion_ops() != nullptr && rdd->deps().size() == 1 &&
         rdd->deps()[0].type == DepType::kNarrowOneToOne && rdd->deps()[0].parent != nullptr &&
         !rdd->should_cache() && rdd->checkpoint_state() == CheckpointState::kNone &&
         rdd->consumer_count() <= 1;
}

}  // namespace

Result<PartitionPtr> TaskContext::GetPartition(const RddPtr& rdd, int partition) {
  if (Cancelled()) {
    return Unavailable("node revoked");
  }
  if (partition < 0 || partition >= rdd->num_partitions()) {
    return InvalidArgument("partition " + std::to_string(partition) + " out of range for rdd " +
                           rdd->name());
  }
  EngineCounters& counters = ctx_->counters();

  // 1. Cluster cache.
  const BlockKey key{rdd->id(), partition};
  if (PartitionPtr cached = ctx_->LookupBlock(key, node_id()); cached != nullptr) {
    counters.cache_hits.fetch_add(1, std::memory_order_relaxed);
    return cached;
  }
  counters.cache_misses.fetch_add(1, std::memory_order_relaxed);

  // 2. Saved checkpoint in the DFS. The restore is verified (manifest +
  // per-partition checksum); a missing or corrupt checkpoint demotes the RDD
  // back to kNone inside RestoreFromCheckpoint and we fall through to
  // lineage recomputation below.
  if (rdd->checkpoint_state() == CheckpointState::kSaved) {
    auto restored = ctx_->RestoreFromCheckpoint(rdd, partition);
    if (restored.ok()) {
      PartitionPtr data = std::move(restored).value();
      if (rdd->should_cache()) {
        ctx_->StoreBlock(key, node_id(), data);
      }
      return data;
    }
  }

  // 3. Recompute from lineage (fused when the chain allows it).
  const auto t0 = WallClock::now();
  Result<PartitionPtr> computed = ComputeFromLineage(rdd, partition);
  if (!computed.ok()) {
    return computed.status();
  }
  const double seconds = WallDuration(WallClock::now() - t0).count();
  if (Cancelled()) {
    return Unavailable("node revoked during compute");
  }
  ctx_->NotifyPartitionComputed(rdd, partition, seconds);

  PartitionPtr data = std::move(computed).value();
  if (rdd->should_cache()) {
    ctx_->StoreBlock(key, node_id(), data);
  }
  if (rdd->checkpoint_state() == CheckpointState::kMarked &&
      !ctx_->dfs().Exists(rdd->CheckpointPath(partition))) {
    // Partition-level checkpoint write at task completion (paper Sec 4). The
    // paper spawns an asynchronous checkpoint task; since those tasks
    // "consume CPU and I/O resources that proportionally degrade the
    // performance of other tasks", we charge the DFS transfer inline, which
    // models the same resource consumption deterministically.
    (void)ctx_->WriteCheckpointData(rdd, partition, data);
  }
  return data;
}

Result<PartitionPtr> TaskContext::ComputeFromLineage(const RddPtr& rdd, int partition) {
  // The chain head itself must be a streaming operator over one narrow
  // parent; its own cache/checkpoint/consumer state is irrelevant (the head's
  // output IS materialized — GetPartition handles storing it).
  if (!ctx_->config().operator_fusion || rdd->fusion_ops() == nullptr ||
      rdd->deps().size() != 1 || rdd->deps()[0].type != DepType::kNarrowOneToOne ||
      rdd->deps()[0].parent == nullptr) {
    return rdd->Compute(partition, *this);
  }
  // chain[0] = head; extend downward through transparent intermediates until
  // a barrier: a source, shuffle consumer, cached/marked RDD, or one with
  // another live consumer.
  std::vector<RddPtr> chain{rdd};
  RddPtr barrier = rdd->deps()[0].parent;
  while (FusableIntermediate(barrier)) {
    chain.push_back(barrier);
    barrier = barrier->deps()[0].parent;
  }
  if (chain.size() == 1) {
    return rdd->Compute(partition, *this);  // nothing to elide
  }

  // Materialize the barrier input through the regular path (cluster cache,
  // checkpoint restore, recursive lineage — possibly another fused chain
  // below the barrier), then stream it through the composed operators.
  FLINT_ASSIGN_OR_RETURN(PartitionPtr input, GetPartition(barrier, partition));

  // Sinks compose top-down: the head's adapter feeds the terminal, each
  // deeper operator's adapter feeds the one above, and the bottom operator
  // drives the barrier rows through the whole stack (and issues the single
  // Flush sweep).
  FusionTerminal terminal = chain.front()->fusion_ops()->make_terminal();
  FusionSink* down = terminal.sink.get();
  std::vector<std::unique_ptr<FusionSink>> adapters;
  adapters.reserve(chain.size() - 1);
  for (size_t i = 0; i + 1 < chain.size(); ++i) {
    adapters.push_back(chain[i]->fusion_ops()->adapt(partition, *down));
    down = adapters.back().get();
  }
  chain.back()->fusion_ops()->drive(partition, *input, *down);

  EngineCounters& counters = ctx_->counters();
  counters.fused_chains.fetch_add(1, std::memory_order_relaxed);
  counters.fused_operators_elided.fetch_add(chain.size() - 1, std::memory_order_relaxed);
  return terminal.finish();
}

Result<std::vector<PartitionPtr>> TaskContext::ComputeShuffleBuckets(const RddPtr& map_rdd,
                                                                     int partition,
                                                                     const ShuffleInfo& info) {
  if (Cancelled()) {
    return Unavailable("node revoked");
  }
  if (info.make_bucket_sink == nullptr || info.drive_rows == nullptr) {
    return Internal("shuffle " + std::to_string(info.shuffle_id) + " has no bucket sink");
  }
  EngineCounters& counters = ctx_->counters();

  // Fused path: the map RDD qualifies as an elidable streaming intermediate
  // (same predicate as narrow-chain fusion — its sole consumer is the
  // shuffle, and neither the cache nor the checkpoint writer needs its
  // output), so the chain above it drives records straight into the bucket
  // sink and the map-side partition is never built.
  if (ctx_->config().operator_fusion && ctx_->config().shuffle_fusion &&
      FusableIntermediate(map_rdd)) {
    std::vector<RddPtr> chain{map_rdd};
    RddPtr barrier = map_rdd->deps()[0].parent;
    while (FusableIntermediate(barrier)) {
      chain.push_back(barrier);
      barrier = barrier->deps()[0].parent;
    }
    FLINT_ASSIGN_OR_RETURN(PartitionPtr input, GetPartition(barrier, partition));

    const auto t0 = WallClock::now();
    BucketTerminal terminal =
        info.make_bucket_sink(info.num_reduce_partitions, input->NumRecords());
    FusionSink* down = terminal.sink.get();
    std::vector<std::unique_ptr<FusionSink>> adapters;
    adapters.reserve(chain.size() - 1);
    for (size_t i = 0; i + 1 < chain.size(); ++i) {
      adapters.push_back(chain[i]->fusion_ops()->adapt(partition, *down));
      down = adapters.back().get();
    }
    chain.back()->fusion_ops()->drive(partition, *input, *down);
    const double seconds = WallDuration(WallClock::now() - t0).count();
    if (Cancelled()) {
      return Unavailable("node revoked during compute");
    }
    // The map RDD still "computed" this partition as far as the rest of the
    // engine is concerned (recompute counters, FT-manager checkpoint
    // signals); only the materialization was elided.
    ctx_->NotifyPartitionComputed(map_rdd, partition, seconds);
    counters.shuffle_fused_bucket_chains.fetch_add(1, std::memory_order_relaxed);
    counters.shuffle_rows_bucketed_fused.fetch_add(terminal.rows_in(),
                                                   std::memory_order_relaxed);
    counters.fused_operators_elided.fetch_add(chain.size() - 1, std::memory_order_relaxed);
    return terminal.finish();
  }

  // Unfused fallback: materialize (cache -> checkpoint -> lineage) and
  // stream the rows through the same bucket sink.
  FLINT_ASSIGN_OR_RETURN(PartitionPtr input, GetPartition(map_rdd, partition));
  BucketTerminal terminal =
      info.make_bucket_sink(info.num_reduce_partitions, input->NumRecords());
  info.drive_rows(*input, *terminal.sink);
  if (Cancelled()) {
    return Unavailable("node revoked during compute");
  }
  counters.shuffle_rows_bucketed_unfused.fetch_add(terminal.rows_in(),
                                                   std::memory_order_relaxed);
  return terminal.finish();
}

namespace {

Histogram* FetchSecondsHistogram() {
  static Histogram* h = MetricsRegistry::Global().GetHistogram(
      "flint_net_fetch_seconds", Histogram::DefaultLatencyBounds());
  return h;
}

}  // namespace

double TaskContext::FetchTimeoutSeconds() const {
  const EngineConfig& cfg = ctx_->config();
  if (cfg.fetch_timeout_multiplier <= 0.0) {
    return 0.0;
  }
  const double p95 = ctx_->StageP95Seconds();
  if (p95 <= 0.0) {
    return 0.0;  // no stage quantile armed yet; nothing sane to derive from
  }
  return std::max(cfg.fetch_timeout_min_seconds, cfg.fetch_timeout_multiplier * p95);
}

Status TaskContext::ChargeLinkTransfer(NodeId producer, uint64_t bytes, double slow_factor,
                                       double timeout_seconds, int shuffle_id, int reduce_part) {
  const EngineConfig& cfg = ctx_->config();
  EngineCounters& counters = ctx_->counters();
  std::shared_ptr<NodeState> producer_state = ctx_->GetNodeState(producer);
  double capacity = producer_state != nullptr
                        ? producer_state->link_bandwidth_bytes_per_s.load(std::memory_order_relaxed)
                        : cfg.default_link_bandwidth_bytes_per_s;
  if (capacity <= 0.0) {
    capacity = cfg.default_link_bandwidth_bytes_per_s;
  }
  const double factor = std::max(1.0, slow_factor);
  const double effective = capacity > 0.0 ? capacity / factor : 0.0;
  counters.net_fetches.fetch_add(1, std::memory_order_relaxed);
  counters.net_fetch_bytes.fetch_add(bytes, std::memory_order_relaxed);
  // The throughput this pull observes over the producer's link; folded into
  // the link EWMA whether or not the wait itself is modelled, so market
  // costing sees degraded links even in fast test runs.
  if (effective > 0.0) {
    ctx_->RecordLinkThroughput(producer, effective);
  }
  const double transfer_s =
      (cfg.model_latency && effective > 0.0) ? static_cast<double>(bytes) / effective : 0.0;
  const bool timed_out = timeout_seconds > 0.0 && transfer_s > timeout_seconds;
  // A timed-out pull still waits out the timeout (the consumer cannot know
  // the transfer is doomed until the deadline passes), then abandons it.
  const double wait_s = timed_out ? timeout_seconds : transfer_s;
  if (wait_s > 0.0) {
    const auto t0 = WallClock::now();
    while (true) {
      if (Cancelled()) {
        return Unavailable("cancelled during shuffle fetch");
      }
      const double elapsed = WallDuration(WallClock::now() - t0).count();
      if (elapsed >= wait_s) {
        break;
      }
      std::this_thread::sleep_for(WallDuration(std::min(0.001, wait_s - elapsed)));
    }
    counters.net_fetch_wait_nanos.fetch_add(static_cast<int64_t>(wait_s * 1e9),
                                            std::memory_order_relaxed);
  }
  FetchSecondsHistogram()->Observe(wait_s);
  const double ratio = capacity > 0.0 ? std::clamp(effective / capacity, 0.0, 1.0) : 0.0;
  if (!timed_out) {
    // Degraded but within budget: report the observed ratio as a healthy
    // sample so health scoring and market costing see the slow link even in
    // runs with timeouts disarmed. Full-speed pulls stay silent — flooding
    // observers with ratio-1.0 samples would just dilute real signal.
    if (ratio < 0.999) {
      ctx_->NotifyLinkSample(producer, ratio, /*slow=*/false);
    }
    return Status::Ok();
  }
  // Classified link-slow: this producer's NIC, not its CPU, is the problem.
  // Feed the health scorer so a network-sick node quarantines too.
  counters.net_fetches_slow.fetch_add(1, std::memory_order_relaxed);
  Tracer::Global().RecordInstant("shuffle_fetch_slow", "net",
                                 {{"producer", static_cast<double>(producer)},
                                  {"consumer", static_cast<double>(node_id())},
                                  {"shuffle", static_cast<double>(shuffle_id)},
                                  {"reduce_part", static_cast<double>(reduce_part)},
                                  {"bytes", static_cast<double>(bytes)},
                                  {"timeout_s", timeout_seconds},
                                  {"transfer_s", transfer_s}});
  ctx_->NotifyLinkSample(producer, ratio, /*slow=*/true);
  return DeadlineExceeded("shuffle " + std::to_string(shuffle_id) + " fetch from node " +
                          std::to_string(producer) + " blew the " +
                          std::to_string(timeout_seconds) + "s fetch timeout");
}

Result<std::vector<PartitionPtr>> TaskContext::FetchShuffle(int shuffle_id, int reduce_part) {
  if (Cancelled()) {
    return Unavailable("node revoked");
  }
  const EngineConfig& cfg = ctx_->config();
  EngineCounters& counters = ctx_->counters();
  const int max_tries = 1 + std::max(0, cfg.fetch_retry_limit);
  NodeId slow_producer = -1;
  Status last_timeout;
  for (int attempt = 0; attempt < max_tries; ++attempt) {
    if (attempt > 0) {
      // Exponential backoff before the retry: the slow-link window may lapse,
      // or a recovery round may land the outputs somewhere healthier.
      counters.net_fetch_retries.fetch_add(1, std::memory_order_relaxed);
      Tracer::Global().RecordInstant("fetch_retry", "net",
                                     {{"shuffle", static_cast<double>(shuffle_id)},
                                      {"reduce_part", static_cast<double>(reduce_part)},
                                      {"attempt", static_cast<double>(attempt)},
                                      {"producer", static_cast<double>(slow_producer)}});
      const double backoff =
          cfg.fetch_retry_backoff_seconds * static_cast<double>(1 << std::min(attempt - 1, 10));
      const auto t0 = WallClock::now();
      while (backoff > 0.0) {
        if (Cancelled()) {
          return Unavailable("cancelled during fetch backoff");
        }
        const double elapsed = WallDuration(WallClock::now() - t0).count();
        if (elapsed >= backoff) {
          break;
        }
        std::this_thread::sleep_for(WallDuration(std::min(0.001, backoff - elapsed)));
      }
    }
    auto fetched = ctx_->shuffles().FetchDetailed(shuffle_id, reduce_part);
    if (!fetched.ok()) {
      if (fetched.status().code() == StatusCode::kDataLoss) {
        failed_shuffle_ = shuffle_id;
      }
      return fetched.status();
    }
    const double timeout = FetchTimeoutSeconds();
    Status pull = Status::Ok();
    std::vector<PartitionPtr> buckets;
    buckets.reserve(fetched->size());
    for (auto& fb : *fetched) {
      const uint64_t bytes = fb.bucket != nullptr ? fb.bucket->SizeBytes() : 0;
      // Local buckets never cross the network; only remote pulls are charged
      // against the producer's link (and visible to the fetch probe).
      if (fb.node >= 0 && fb.node != node_id()) {
        ShuffleFetchInfo finfo;
        finfo.node = node_id();
        finfo.producer = fb.node;
        finfo.shuffle_id = shuffle_id;
        finfo.reduce_part = reduce_part;
        finfo.bytes = bytes;
        const FetchFaultDirective directive = ctx_->FireFetchProbe(finfo);
        if (!directive.fail.ok()) {
          pull = directive.fail;
          slow_producer = fb.node;
          break;
        }
        pull = ChargeLinkTransfer(fb.node, bytes, directive.slow_factor, timeout, shuffle_id,
                                  reduce_part);
        if (!pull.ok()) {
          slow_producer = fb.node;
          break;
        }
      }
      buckets.push_back(std::move(fb.bucket));
    }
    if (pull.ok()) {
      return buckets;
    }
    if (pull.code() == StatusCode::kUnavailable) {
      return pull;  // cancelled mid-transfer; this attempt is dead anyway
    }
    last_timeout = pull;
  }
  // Retry budget exhausted against a persistently slow link: drop the slow
  // producer's outputs so the scheduler's FetchFailed recovery recomputes
  // them on a healthy node instead of refetching into the same black hole.
  size_t dropped = 0;
  if (slow_producer >= 0) {
    dropped = ctx_->shuffles().DropNodeOutputs(shuffle_id, slow_producer);
  }
  counters.net_fetch_recomputes.fetch_add(1, std::memory_order_relaxed);
  failed_shuffle_ = shuffle_id;
  return DataLoss("shuffle " + std::to_string(shuffle_id) + " fetch from node " +
                  std::to_string(slow_producer) + " gave up after " +
                  std::to_string(max_tries) + " attempt(s); dropped " + std::to_string(dropped) +
                  " output(s) for recompute: " + last_timeout.ToString());
}

}  // namespace flint
