#include "src/engine/dag_scheduler.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <numeric>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "src/common/log.h"
#include "src/common/mutex.h"
#include "src/common/stats.h"
#include "src/common/thread_annotations.h"
#include "src/engine/context.h"
#include "src/engine/task_context.h"
#include "src/obs/trace.h"

// flint-lint: allow-file(det-wallclock) deadlines, backoff, and service-time quantiles are wall-clock by design; task payloads never read the clock

namespace flint {

// Collects task outcomes from executor threads back to the scheduler.
// Defined at namespace scope (not anonymous) so StageLoopSpec callbacks in
// the header can name it by forward declaration. Held through shared_ptr by
// the stage loop AND every in-flight task lambda: the loop may return (a
// watchdog timeout, a fatal error, or a win whose cancelled loser is still
// draining) while attempts are still running, and their final Push must land
// in live memory.
class OutcomeQueue {
 public:
  void Push(DagScheduler::TaskOutcome outcome) {
    MutexLock lock(&mutex_);
    queue_.push_back(std::move(outcome));
    cv_.NotifyOne();
  }

  // Waits up to `timeout` for an outcome; nullopt when none arrived in time
  // (the stage loop's tick for deadline scans and the watchdog).
  std::optional<DagScheduler::TaskOutcome> PopWithTimeout(WallDuration timeout) {
    const WallTime deadline =
        WallClock::now() + std::chrono::duration_cast<WallClock::duration>(timeout);
    MutexLock lock(&mutex_);
    while (queue_.empty()) {
      if (WallClock::now() >= deadline) {
        return std::nullopt;
      }
      cv_.WaitUntil(mutex_, deadline);
    }
    DagScheduler::TaskOutcome outcome = std::move(queue_.front());
    queue_.pop_front();
    return outcome;
  }

 private:
  Mutex mutex_{"OutcomeQueue::mutex_"};
  CondVar cv_;
  std::deque<DagScheduler::TaskOutcome> queue_ GUARDED_BY(mutex_);
};

namespace {

// Backoff for progress-free rounds (tasks racing a revocation wave): keeps
// the stage loop off the CPU without adding meaningful latency to the first
// few retries.
WallDuration StallBackoff(int stalled_rounds) {
  const int exponent = std::min(stalled_rounds, 8);  // caps at ~12.8 ms
  return WallDuration(50e-6 * static_cast<double>(1 << exponent));
}

WallClock::duration ToClockDuration(double seconds) {
  return std::chrono::duration_cast<WallClock::duration>(WallDuration(seconds));
}

// Enforces the pre-compute part of a fault directive: a hang parks the
// attempt until its cancellation token fires (the cooperative model — a hung
// executor thread is still a thread, it just never finishes its task), and
// an injected failure aborts the attempt immediately. Returns false with
// *status set when the attempt must not proceed to compute.
bool RunFaultPreamble(TaskContext& tc, const TaskFaultDirective& directive, Status* status) {
  if (directive.hang) {
    while (!tc.Cancelled()) {
      std::this_thread::sleep_for(WallDuration(200e-6));
    }
    *status = Unavailable("task attempt cancelled while hung");
    return false;
  }
  if (!directive.fail.ok()) {
    *status = directive.fail;
    return false;
  }
  return true;
}

// Enforces kSlowNode after the real compute: stretches the attempt's elapsed
// time by (slow_factor - 1), polling cancellation so a speculative winner
// can reap the straggler early. Returns false when cancelled mid-stretch.
bool StretchCompute(TaskContext& tc, const TaskFaultDirective& directive, WallTime t0) {
  if (directive.slow_factor <= 1.0) {
    return true;
  }
  const double elapsed = WallDuration(WallClock::now() - t0).count();
  const WallTime until =
      WallClock::now() + ToClockDuration(elapsed * (directive.slow_factor - 1.0));
  while (WallClock::now() < until) {
    if (tc.Cancelled()) {
      return false;
    }
    std::this_thread::sleep_for(
        std::min(WallDuration(1e-3), WallDuration(until - WallClock::now())));
  }
  return true;
}

// A zero-score node still deserves a trickle: total starvation would freeze
// its EWMA (no completions, no samples), making recovery impossible.
// Quarantine — not the weight floor — is the mechanism that benches a node.
constexpr double kMinPickWeight = 0.05;

// Stamps `stamp` with the current steady-clock tick at executor entry.
void StampExecStart(const ExecStartStamp& stamp) {
  stamp->store(WallClock::now().time_since_epoch().count(), std::memory_order_release);
}

// Reads an executor stamp back as a WallTime; nullopt while still queued.
std::optional<WallTime> ReadExecStart(const ExecStartStamp& stamp) {
  const int64_t ticks = stamp->load(std::memory_order_acquire);
  if (ticks == 0) {
    return std::nullopt;
  }
  return WallTime(WallClock::duration(ticks));
}

}  // namespace

size_t SwrrPick(const std::vector<double>& weights, std::vector<double>& credits) {
  double total = 0.0;
  size_t best = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    credits[i] += weights[i];
    total += weights[i];
    if (credits[i] > credits[best]) {
      best = i;
    }
  }
  credits[best] -= total;
  return best;
}

std::shared_ptr<NodeState> DagScheduler::PickNode(const RddPtr& rdd, int partition,
                                                  NodeId exclude) {
  auto live = ctx_->SchedulableNodeStates();
  if (exclude >= 0) {
    std::erase_if(live, [exclude](const std::shared_ptr<NodeState>& node) {
      return node->info.node_id == exclude;
    });
  }
  if (live.empty()) {
    // Whole cluster revoked or draining (or the only survivor is the node a
    // speculative duplicate must avoid). Parking belongs to the stage loop
    // (which counts it separately from convergence attempts), not here.
    return nullptr;
  }
  // Locality: prefer a node already caching this partition.
  const BlockKey key{rdd->id(), partition};
  for (const auto& node : live) {
    if (node->blocks->Contains(key)) {
      return node;
    }
  }
  // Health-weighted smooth round-robin over the id-sorted schedulable set:
  // every node earns credit proportional to its EWMA health score, the
  // richest node wins and repays the total. At uniform health this is exact
  // round-robin (identical interleave to the old counter), while a node at
  // score 0.5 draws half the work of its healthy peers — degraded-but-
  // unbenched nodes shed load without the cliff of quarantine. Credits live
  // on NodeState (scheduler thread is the only writer, serialized by
  // job_mutex_), so proportions hold across stages.
  std::vector<double> weights(live.size());
  std::vector<double> credits(live.size());
  for (size_t i = 0; i < live.size(); ++i) {
    weights[i] = std::max(live[i]->health_score.load(std::memory_order_relaxed),
                          kMinPickWeight);
    credits[i] = live[i]->swrr_credit.load(std::memory_order_relaxed);
  }
  const size_t pick = SwrrPick(weights, credits);
  for (size_t i = 0; i < live.size(); ++i) {
    live[i]->swrr_credit.store(credits[i], std::memory_order_relaxed);
  }
  live[pick]->tasks_picked.fetch_add(1, std::memory_order_relaxed);
  return live[pick];
}

Status DagScheduler::EnsureShuffleDeps(const RddPtr& rdd, int depth) {
  if (depth > kMaxRecoveryDepth) {
    return Internal("stage recursion too deep (cyclic lineage?)");
  }
  for (const auto& shuffle : CollectDirectShuffleDeps(rdd)) {
    FLINT_RETURN_IF_ERROR(RunShuffleStage(shuffle, depth + 1));
  }
  return Status::Ok();
}

Status DagScheduler::RecoverShuffle(int shuffle_id, int depth) {
  std::shared_ptr<ShuffleInfo> shuffle = ctx_->LookupShuffle(shuffle_id);
  if (shuffle == nullptr) {
    return Internal("fetch failure references unknown shuffle " + std::to_string(shuffle_id));
  }
  return RunShuffleStage(shuffle, depth);
}

Status DagScheduler::RunStageLoop(const StageLoopSpec& spec) {
  const SpeculationConfig& spec_cfg = ctx_->config().speculation;
  EngineCounters& counters = ctx_->counters();

  // One launched attempt, keyed by attempt id until its outcome is consumed.
  struct AttemptState {
    int slot = -1;
    std::shared_ptr<NodeState> node;
    WallTime submitted{};
    // Written by the executor the moment the attempt leaves the queue and
    // begins running; 0 while queued. Deadlines and service times prefer
    // this over queue-position inference.
    ExecStartStamp exec_start;
    CancelToken cancel;
    bool speculative = false;
    // The deadline already fired for this attempt (duplicate launched or at
    // least attempted); never fires twice.
    bool deadline_missed = false;
  };
  // Per-slot attempt bookkeeping, persistent across dispatch sweeps.
  struct SlotState {
    int attempts_started = 0;
    int failures = 0;  // budgeted failures (not node deaths, not cancellations)
    int outstanding = 0;
    WallTime next_eligible{};  // retry backoff gate
    bool done = false;
  };
  std::unordered_map<uint64_t, AttemptState> attempts;
  std::unordered_map<int, SlotState> slots;
  uint64_t next_attempt_id = 1;
  // Last successful completion per node (first submission time until then).
  // An attempt's deadline runs from max(its submission, this mark): a node
  // that is steadily draining its queue never looks expired just because the
  // queue is deep, while a slow or hung node indicts everything it holds —
  // without this gate, queue wait on healthy nodes triggers a speculation
  // storm that floods the cluster with duplicates.
  std::unordered_map<NodeId, WallTime> node_progress;

  // Streaming quantiles over winning-attempt service times: completion minus
  // max(submission, the node's previous completion), i.e. the slice of wall
  // clock the task actually occupied its node, not its wait in queue. P50
  // drives the speculation deadline once `quorum` wins have been observed;
  // P95 rides along for telemetry.
  P2Quantile p50(0.5);
  P2Quantile p95(0.95);
  // Cross-stage carry-over: until the in-stage estimate reaches quorum,
  // deadlines may arm from the previous stage's P50 (carried_p50_), so short
  // stages — fewer tasks than the quorum — still get straggler protection.
  const bool seed_available = spec_cfg.enabled && spec_cfg.seed_from_previous_stage &&
                              carried_count_ >= static_cast<size_t>(spec_cfg.quorum);
  bool seed_counted = false;
  // The fetch-timeout quantiles mirror deadline arming: carried values stand
  // in until the live estimate reaches quorum; with neither, timeouts stay
  // disarmed (published 0) rather than trusting a stale stage's shape.
  ctx_->PublishStageQuantiles(seed_available ? carried_p50_ : 0.0,
                              seed_available ? carried_p95_ : 0.0);

  auto outcomes = std::make_shared<OutcomeQueue>();

  const WallTime stage_start = WallClock::now();
  const bool watchdog_on = spec_cfg.stage_watchdog_seconds > 0.0;
  const WallTime stage_deadline =
      watchdog_on ? stage_start + ToClockDuration(spec_cfg.stage_watchdog_seconds)
                  : WallTime::max();

  // Every exit path cancels whatever is still in flight: losing speculative
  // duplicates, hung attempts, and watchdog-abandoned tasks must all observe
  // their token and release their executor thread.
  auto cancel_outstanding = [&attempts, &counters] {
    for (auto& [id, attempt] : attempts) {
      if (!attempt.cancel->exchange(true, std::memory_order_acq_rel)) {
        counters.tasks_cancelled.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  int stalled_rounds = 0;
  for (;;) {
    if (spec.complete()) {
      cancel_outstanding();
      // Carry this stage's service-time distribution into the next stage's
      // deadline seeding. Only successful stages publish: a failed stage's
      // times are suspect.
      if (p50.count() > 0) {
        carried_p50_ = p50.value();
        carried_p95_ = p95.value();
        carried_count_ = p50.count();
      }
      return Status::Ok();
    }
    if (stalled_rounds > spec.max_stalled_rounds) {
      cancel_outstanding();
      return Internal(std::string(spec.what) + " failed to converge");
    }
    ctx_->FireProbe(EnginePoint::kSchedulerRound);
    if (Status prep = spec.prepare(); !prep.ok()) {
      cancel_outstanding();
      return prep;
    }

    // Dispatch sweep: one fresh attempt per missing slot with none
    // outstanding (slots being speculated already have theirs).
    size_t submitted = 0;
    bool saw_backoff = false;
    WallTime earliest_retry = WallTime::max();
    const WallTime sweep_now = WallClock::now();
    for (int slot : spec.missing()) {
      SlotState& st = slots[slot];
      // A previously finished slot can regress when its output died with a
      // revoked node (shuffle map outputs); clear the win so it recomputes.
      if (st.done) {
        st.done = false;
      }
      if (st.outstanding > 0) {
        continue;
      }
      if (sweep_now < st.next_eligible) {
        saw_backoff = true;
        earliest_retry = std::min(earliest_retry, st.next_eligible);
        continue;
      }
      std::shared_ptr<NodeState> node = spec.pick(slot, /*exclude=*/-1);
      if (node == nullptr) {
        break;  // nothing schedulable; park below if nothing is in flight
      }
      CancelToken cancel = MakeCancelToken();
      auto exec_start = std::make_shared<std::atomic<int64_t>>(0);
      const uint64_t attempt_id = next_attempt_id++;
      if (!spec.submit(slot, node, cancel, attempt_id, st.attempts_started, exec_start,
                       outcomes)) {
        continue;  // pool closed under us; the slot is re-examined next sweep
      }
      counters.tasks_run.fetch_add(1, std::memory_order_relaxed);
      AttemptState attempt;
      attempt.slot = slot;
      attempt.node = node;
      attempt.submitted = WallClock::now();
      attempt.exec_start = std::move(exec_start);
      attempt.cancel = std::move(cancel);
      node_progress.emplace(node->info.node_id, attempt.submitted);
      attempts.emplace(attempt_id, std::move(attempt));
      ++st.outstanding;
      ++st.attempts_started;
      ++submitted;
    }
    counters.stage_rounds.fetch_add(1, std::memory_order_relaxed);

    if (submitted == 0 && attempts.empty()) {
      if (saw_backoff) {
        // Every missing slot is inside its retry backoff window.
        const WallTime now = WallClock::now();
        if (earliest_retry > now) {
          std::this_thread::sleep_for(
              std::min(WallDuration(earliest_retry - now), WallDuration(0.05)));
        }
        continue;
      }
      // Every executor pool rejected the sweep's submissions: the whole
      // cluster was revoked (or started draining) between PickNode and
      // Submit. Park until the node manager supplies a replacement — this is
      // an acquisition wait, not a convergence attempt.
      counters.stage_parks.fetch_add(1, std::memory_order_relaxed);
      ctx_->WaitForLiveNode();
      continue;
    }

    // Collect: consume outcomes while enforcing speculation deadlines and
    // the stage watchdog. Leaves the inner loop whenever a slot needs a
    // fresh submission (failure, revocation) or a shuffle must recover.
    bool progress = false;
    bool need_redispatch = false;
    int recovery_shuffle = -1;
    Status fatal;
    while (!attempts.empty() && !need_redispatch && recovery_shuffle < 0 && fatal.ok()) {
      const WallTime now = WallClock::now();
      if (watchdog_on && now >= stage_deadline) {
        // Name the oldest outstanding attempt: with a hang that is the
        // wedged task the operator needs to see.
        int oldest_slot = -1;
        NodeId oldest_node = -1;
        WallTime oldest_time = WallTime::max();
        for (const auto& [id, attempt] : attempts) {
          if (attempt.submitted < oldest_time) {
            oldest_time = attempt.submitted;
            oldest_slot = attempt.slot;
            oldest_node = attempt.node->info.node_id;
          }
        }
        counters.stage_watchdog_timeouts.fetch_add(1, std::memory_order_relaxed);
        Tracer::Global().RecordInstant("stage_watchdog_timeout", "scheduler",
                                       {{"slot", static_cast<double>(oldest_slot)},
                                        {"node", static_cast<double>(oldest_node)}});
        cancel_outstanding();
        return DeadlineExceeded(
            std::string(spec.what) + " exceeded its watchdog of " +
            std::to_string(spec_cfg.stage_watchdog_seconds) +
            "s; oldest outstanding attempt is task " + std::to_string(oldest_slot) +
            " on node " + std::to_string(oldest_node));
      }

      WallTime wake = watchdog_on ? stage_deadline : now + ToClockDuration(1.0);
      const bool live_quorum =
          spec_cfg.enabled && static_cast<int>(p50.count()) >= spec_cfg.quorum;
      const bool deadlines_armed = live_quorum || seed_available;
      if (deadlines_armed && !live_quorum && !seed_counted) {
        seed_counted = true;
        counters.stage_quantile_seeded.fetch_add(1, std::memory_order_relaxed);
        Tracer::Global().RecordInstant("stage_deadline_seeded", "scheduler",
                                       {{"carried_p50_seconds", carried_p50_},
                                        {"carried_count", static_cast<double>(carried_count_)}});
      }
      if (deadlines_armed) {
        // The live in-stage P50 takes over as soon as it reaches quorum;
        // before that, the carried estimate stands in.
        const double p50_estimate = live_quorum ? p50.value() : carried_p50_;
        const double deadline_s = std::max(spec_cfg.min_deadline_seconds,
                                           spec_cfg.spec_multiplier * p50_estimate);
        const WallClock::duration deadline_dur = ToClockDuration(deadline_s);
        // An attempt's clock starts when its executor actually dequeued it
        // (the exec_start stamp). Until that stamp lands the attempt is
        // still queued, so fall back to the later of its submission and its
        // node's last completed task (see node_progress above) — queue depth
        // on a healthy node must not read as expiry, while a slow or hung
        // node still indicts everything it holds.
        auto effective_start = [&node_progress](const AttemptState& a) {
          if (const std::optional<WallTime> started = ReadExecStart(a.exec_start)) {
            return *started;
          }
          const auto it = node_progress.find(a.node->info.node_id);
          return it == node_progress.end() ? a.submitted : std::max(a.submitted, it->second);
        };
        // Expired attempts first (ids snapshot: launching a duplicate
        // mutates `attempts`). Ids are assigned monotonically, so sorting
        // restores launch order from the map's hash order and keeps
        // speculation (hence placement, hence recompute interleaving)
        // replayable.
        std::vector<uint64_t> expired;
        for (const auto& [id, attempt] : attempts) {
          if (!attempt.deadline_missed && now >= effective_start(attempt) + deadline_dur) {
            expired.push_back(id);
          }
        }
        std::sort(expired.begin(), expired.end());
        for (uint64_t id : expired) {
          AttemptState& missed = attempts[id];
          missed.deadline_missed = true;
          const int slot = missed.slot;
          const NodeId from_node = missed.node->info.node_id;
          counters.task_deadline_misses.fetch_add(1, std::memory_order_relaxed);
          ctx_->NotifyTaskDeadlineMiss(from_node);
          SlotState& st = slots[slot];
          if (st.done || st.outstanding >= 2) {
            continue;  // already won, or already speculated
          }
          std::shared_ptr<NodeState> other = spec.pick(slot, from_node);
          if (other == nullptr) {
            continue;  // nowhere else to run; the original may yet finish
          }
          CancelToken cancel = MakeCancelToken();
          auto dup_start = std::make_shared<std::atomic<int64_t>>(0);
          const uint64_t dup_id = next_attempt_id++;
          if (!spec.submit(slot, other, cancel, dup_id, st.attempts_started, dup_start,
                           outcomes)) {
            continue;
          }
          counters.tasks_run.fetch_add(1, std::memory_order_relaxed);
          counters.tasks_speculated.fetch_add(1, std::memory_order_relaxed);
          Tracer::Global().RecordInstant(
              "task_speculated", "scheduler",
              {{"slot", static_cast<double>(slot)},
               {"from_node", static_cast<double>(from_node)},
               {"to_node", static_cast<double>(other->info.node_id)},
               {"deadline_seconds", deadline_s}});
          AttemptState dup;
          dup.slot = slot;
          dup.node = std::move(other);
          dup.submitted = WallClock::now();
          dup.exec_start = std::move(dup_start);
          dup.cancel = std::move(cancel);
          dup.speculative = true;
          node_progress.emplace(dup.node->info.node_id, dup.submitted);
          attempts.emplace(dup_id, std::move(dup));
          ++st.outstanding;
          ++st.attempts_started;
        }
        for (const auto& [id, attempt] : attempts) {
          if (!attempt.deadline_missed) {
            wake = std::min(wake, effective_start(attempt) + deadline_dur);
          }
        }
      }

      const WallDuration tick = std::clamp(WallDuration(wake - WallClock::now()),
                                           WallDuration(100e-6), WallDuration(1.0));
      std::optional<TaskOutcome> popped = outcomes->PopWithTimeout(tick);
      if (!popped.has_value()) {
        continue;  // tick expired; rescan deadlines / watchdog
      }
      TaskOutcome outcome = std::move(*popped);
      auto it = attempts.find(outcome.attempt_id);
      if (it == attempts.end()) {
        continue;  // unknown attempt; nothing to account
      }
      AttemptState attempt = std::move(it->second);
      attempts.erase(it);
      SlotState& st = slots[attempt.slot];
      --st.outstanding;
      const WallTime finished = WallClock::now();
      // Service time, not queue-inclusive latency (see the quantile comment).
      // The executor's own stamp is exact; an attempt that somehow finished
      // without stamping falls back to the node-progress inference.
      WallTime started = attempt.submitted;
      if (const std::optional<WallTime> exec_started = ReadExecStart(attempt.exec_start)) {
        started = std::max(started, *exec_started);
        // The stamp can land a hair before `submitted` is recorded (the task
        // may begin before Submit returns); clamp so the sum never regresses.
        counters.task_queue_wait_nanos.fetch_add(
            std::max<int64_t>(0, std::chrono::duration_cast<std::chrono::nanoseconds>(
                                     *exec_started - attempt.submitted)
                                     .count()),
            std::memory_order_relaxed);
      } else if (const auto pit = node_progress.find(attempt.node->info.node_id);
                 pit != node_progress.end()) {
        started = std::max(started, pit->second);
      }
      const double seconds = WallDuration(finished - started).count();
      const bool was_cancelled = attempt.cancel->load(std::memory_order_acquire);
      const NodeId node_id = attempt.node->info.node_id;

      if (outcome.status.ok()) {
        node_progress[node_id] = finished;
        if (st.done) {
          // Duplicate success: its sibling already won. Computation is
          // deterministic so the results are bit-identical; nothing to
          // reconcile, but the node did finish a task — report it healthy.
          ctx_->NotifyTaskAttemptFinished(node_id, seconds, true);
          continue;
        }
        st.done = true;
        p50.Add(seconds);
        p95.Add(seconds);
        // Once the in-stage estimate reaches quorum it also drives the
        // shuffle-fetch timeout (TaskContext::FetchTimeoutSeconds).
        if (spec_cfg.enabled && static_cast<int>(p50.count()) >= spec_cfg.quorum) {
          ctx_->PublishStageQuantiles(p50.value(), p95.value());
        }
        ctx_->NotifyTaskAttemptFinished(node_id, seconds, true);
        if (attempt.speculative) {
          counters.speculative_wins.fetch_add(1, std::memory_order_relaxed);
        }
        // First success wins: reap the slower sibling(s).
        for (auto& [sibling_id, sibling] : attempts) {
          if (sibling.slot == attempt.slot &&
              !sibling.cancel->exchange(true, std::memory_order_acq_rel)) {
            counters.tasks_cancelled.fetch_add(1, std::memory_order_relaxed);
          }
        }
        progress = spec.on_success(std::move(outcome)) || progress;
        continue;
      }

      counters.task_failures.fetch_add(1, std::memory_order_relaxed);
      if (was_cancelled || st.done) {
        continue;  // reaped loser (or stale attempt of a finished slot)
      }
      if (outcome.status.code() == StatusCode::kDataLoss && outcome.failed_shuffle >= 0) {
        // A shuffle input vanished with a revoked node; not this node's
        // fault and not a budget charge.
        recovery_shuffle = outcome.failed_shuffle;
        continue;
      }
      const bool node_died = attempt.node->revoked.load(std::memory_order_acquire) ||
                             attempt.node->draining.load(std::memory_order_acquire);
      if (outcome.status.code() == StatusCode::kUnavailable && node_died) {
        // Died with its node: a free re-dispatch on a survivor. No health
        // penalty — the node is gone, there is nothing left to score.
        need_redispatch = true;
        continue;
      }
      // A genuine attempt failure (flaky node, poisoned input, user-code
      // error): penalize the node, charge the slot's budget, back off.
      ctx_->NotifyTaskAttemptFinished(node_id, seconds, false);
      ++st.failures;
      if (st.failures >= spec_cfg.max_attempts_per_task) {
        fatal = Status(outcome.status.code(),
                       outcome.status.message() + " (" + std::string(spec.what) + " task " +
                           std::to_string(attempt.slot) + " failed " +
                           std::to_string(st.failures) + " attempt(s))");
        continue;
      }
      counters.task_retries.fetch_add(1, std::memory_order_relaxed);
      const double backoff = spec_cfg.retry_backoff_seconds *
                             static_cast<double>(1 << std::min(st.failures - 1, 10));
      st.next_eligible = WallClock::now() + ToClockDuration(backoff);
      need_redispatch = true;
    }

    if (!fatal.ok()) {
      cancel_outstanding();
      return fatal;
    }
    if (recovery_shuffle >= 0) {
      if (Status rec = RecoverShuffle(recovery_shuffle, spec.recovery_depth); !rec.ok()) {
        cancel_outstanding();
        return rec;
      }
      progress = true;  // the producing stage was re-run; not a stall
    }
    if (progress) {
      stalled_rounds = 0;
    } else {
      ++stalled_rounds;
      std::this_thread::sleep_for(StallBackoff(stalled_rounds));
    }
  }
}

Status DagScheduler::RunShuffleStage(const std::shared_ptr<ShuffleInfo>& shuffle, int depth) {
  if (depth > kMaxRecoveryDepth) {
    return Internal("stage recursion too deep");
  }
  RddPtr map_rdd = shuffle->map_side.lock();
  if (map_rdd == nullptr) {
    return Internal("map-side RDD of shuffle " + std::to_string(shuffle->shuffle_id) +
                    " no longer exists");
  }
  ShuffleManager& shuffles = ctx_->shuffles();

  TraceSpan stage_span("shuffle_stage", "stage");
  stage_span.AddArg("shuffle", shuffle->shuffle_id);
  stage_span.AddArg("maps", shuffle->num_map_partitions);
  stage_span.AddArg("reduces", shuffle->num_reduce_partitions);
  stage_span.AddArg("depth", depth);

  StageLoopSpec spec;
  spec.what = "shuffle stage";
  spec.max_stalled_rounds = 4 * kMaxRecoveryDepth;
  spec.recovery_depth = depth + 1;
  spec.complete = [&shuffles, &shuffle] {
    return shuffles.MissingMaps(shuffle->shuffle_id).empty();
  };
  // The map tasks themselves read lineage; make sure *their* shuffle inputs
  // exist before every dispatch sweep.
  spec.prepare = [this, &map_rdd, depth] { return EnsureShuffleDeps(map_rdd, depth + 1); };
  spec.missing = [this, &shuffles, &shuffle] {
    ctx_->FireProbe(EnginePoint::kBeforeShuffleMapDispatch);
    return shuffles.MissingMaps(shuffle->shuffle_id);
  };
  spec.pick = [this, &map_rdd](int slot, NodeId exclude) {
    return PickNode(map_rdd, slot, exclude);
  };
  spec.submit = [this, &shuffle, &map_rdd](int m, const std::shared_ptr<NodeState>& node,
                                           const CancelToken& cancel, uint64_t attempt_id,
                                           int attempt_number, const ExecStartStamp& exec_start,
                                           const std::shared_ptr<OutcomeQueue>& outcomes) {
    const int shuffle_id = shuffle->shuffle_id;
    return node->pool->Submit([this, node, map_rdd, m, shuffle_id, shuffle,
                               cancel, attempt_id, attempt_number, exec_start, outcomes] {
      StampExecStart(exec_start);
      ctx_->FireProbe(EnginePoint::kShuffleMapTaskRun);
      TraceSpan task_span("shuffle_map_task", "task");
      task_span.AddArg("shuffle", shuffle_id);
      task_span.AddArg("map", m);
      task_span.AddArg("node", node->info.node_id);
      task_span.AddArg("attempt", attempt_number);
      TaskContext tc(ctx_, node, cancel);
      TaskOutcome outcome;
      outcome.attempt_id = attempt_id;
      outcome.index = m;
      TaskRunInfo info;
      info.node = node->info.node_id;
      info.shuffle_id = shuffle_id;
      info.partition = m;
      info.attempt = attempt_number;
      const TaskFaultDirective directive = ctx_->FireTaskProbe(info);
      const WallTime t0 = WallClock::now();
      if (!RunFaultPreamble(tc, directive, &outcome.status)) {
        outcomes->Push(std::move(outcome));
        return;
      }
      Result<std::vector<PartitionPtr>> buckets = tc.ComputeShuffleBuckets(map_rdd, m, *shuffle);
      if (!buckets.ok()) {
        outcome.status = buckets.status();
        outcome.failed_shuffle = tc.failed_shuffle();
        outcomes->Push(std::move(outcome));
        return;
      }
      if (!StretchCompute(tc, directive, t0) || tc.Cancelled()) {
        outcome.status = Unavailable("task attempt cancelled during shuffle write");
        outcomes->Push(std::move(outcome));
        return;
      }
      ctx_->shuffles().RegisterMapOutput(shuffle_id, m, tc.node_id(), std::move(buckets).value());
      ctx_->FireProbe(EnginePoint::kShuffleMapTaskDone);
      outcome.status = Status::Ok();
      outcomes->Push(std::move(outcome));
    });
  };
  // A successful map task registered a previously missing output.
  spec.on_success = [](TaskOutcome&&) { return true; };
  return RunStageLoop(spec);
}

Result<std::vector<PartitionPtr>> DagScheduler::Materialize(const RddPtr& rdd) {
  if (rdd == nullptr) {
    return InvalidArgument("null rdd");
  }
  std::vector<int> all(static_cast<size_t>(rdd->num_partitions()));
  std::iota(all.begin(), all.end(), 0);
  return MaterializePartitions(rdd, all);
}

Result<std::vector<PartitionPtr>> DagScheduler::MaterializePartitions(
    const RddPtr& rdd, const std::vector<int>& partitions) {
  if (rdd == nullptr) {
    return InvalidArgument("null rdd");
  }
  std::unordered_set<int> seen;
  for (int p : partitions) {
    if (p < 0 || p >= rdd->num_partitions()) {
      return InvalidArgument("partition " + std::to_string(p) + " out of range for rdd " +
                             rdd->name());
    }
    if (!seen.insert(p).second) {
      return InvalidArgument("duplicate partition " + std::to_string(p) + " requested for rdd " +
                             rdd->name());
    }
  }
  FLINT_RETURN_IF_ERROR(EnsureShuffleDeps(rdd, 0));

  TraceSpan stage_span("result_stage", "stage");
  stage_span.AddArg("rdd", rdd->id());
  stage_span.AddArg("partitions", static_cast<double>(partitions.size()));

  // Outcome indices are slots into `partitions`, not partition numbers, so
  // the result vector mirrors the request order.
  const size_t n = partitions.size();
  std::vector<PartitionPtr> results(n);
  std::vector<bool> done(n, false);
  size_t remaining = n;

  StageLoopSpec spec;
  spec.what = "result stage";
  spec.max_stalled_rounds = 8 * kMaxRecoveryDepth;
  spec.recovery_depth = 0;
  spec.complete = [&remaining] { return remaining == 0; };
  spec.prepare = [] { return Status::Ok(); };  // deps ensured above; losses recover below
  spec.missing = [&done, n] {
    std::vector<int> missing;
    for (size_t s = 0; s < n; ++s) {
      if (!done[s]) {
        missing.push_back(static_cast<int>(s));
      }
    }
    return missing;
  };
  spec.pick = [this, &rdd, &partitions](int slot, NodeId exclude) {
    return PickNode(rdd, partitions[static_cast<size_t>(slot)], exclude);
  };
  spec.submit = [this, &rdd, &partitions](int slot, const std::shared_ptr<NodeState>& node,
                                          const CancelToken& cancel, uint64_t attempt_id,
                                          int attempt_number, const ExecStartStamp& exec_start,
                                          const std::shared_ptr<OutcomeQueue>& outcomes) {
    const int p = partitions[static_cast<size_t>(slot)];
    return node->pool->Submit([this, node, rdd, slot, p, cancel, attempt_id, attempt_number,
                               exec_start, outcomes] {
      StampExecStart(exec_start);
      TraceSpan task_span("task", "task");
      task_span.AddArg("rdd", rdd->id());
      task_span.AddArg("partition", p);
      task_span.AddArg("node", node->info.node_id);
      task_span.AddArg("attempt", attempt_number);
      TaskContext tc(ctx_, node, cancel);
      TaskOutcome outcome;
      outcome.attempt_id = attempt_id;
      outcome.index = slot;
      TaskRunInfo info;
      info.node = node->info.node_id;
      info.rdd_id = rdd->id();
      info.partition = p;
      info.attempt = attempt_number;
      const TaskFaultDirective directive = ctx_->FireTaskProbe(info);
      const WallTime t0 = WallClock::now();
      if (!RunFaultPreamble(tc, directive, &outcome.status)) {
        outcomes->Push(std::move(outcome));
        return;
      }
      Result<PartitionPtr> data = tc.GetPartition(rdd, p);
      if (data.ok()) {
        if (!StretchCompute(tc, directive, t0)) {
          outcome.status = Unavailable("task attempt cancelled mid-compute");
        } else {
          outcome.status = Status::Ok();
          outcome.data = std::move(data).value();
        }
      } else {
        outcome.status = data.status();
        outcome.failed_shuffle = tc.failed_shuffle();
      }
      outcomes->Push(std::move(outcome));
    });
  };
  spec.on_success = [&results, &done, &remaining](TaskOutcome&& outcome) {
    const size_t idx = static_cast<size_t>(outcome.index);
    if (done[idx]) {
      return false;  // duplicate completion (re-dispatch raced a slow task)
    }
    done[idx] = true;
    results[idx] = std::move(outcome.data);
    --remaining;
    return true;
  };
  FLINT_RETURN_IF_ERROR(RunStageLoop(spec));
  return results;
}

}  // namespace flint
