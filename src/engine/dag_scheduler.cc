#include "src/engine/dag_scheduler.h"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <unordered_set>

#include "src/common/log.h"
#include "src/engine/context.h"
#include "src/engine/task_context.h"

namespace flint {

namespace {

// Collects task outcomes from executor threads back to the scheduler.
class OutcomeQueue {
 public:
  void Push(DagScheduler::TaskOutcome outcome);
  DagScheduler::TaskOutcome Pop();

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<DagScheduler::TaskOutcome> queue_;
};

}  // namespace

// OutcomeQueue is declared in an anonymous namespace but needs TaskOutcome
// public; give the scheduler a friend-free path by defining methods here.
void OutcomeQueue::Push(DagScheduler::TaskOutcome outcome) {
  // Notify while holding the lock: the scheduler destroys this queue as soon
  // as it has popped the final outcome, so the notify must complete before
  // the popper can observe the push.
  std::lock_guard<std::mutex> lock(mutex_);
  queue_.push_back(std::move(outcome));
  cv_.notify_one();
}

DagScheduler::TaskOutcome OutcomeQueue::Pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return !queue_.empty(); });
  DagScheduler::TaskOutcome outcome = std::move(queue_.front());
  queue_.pop_front();
  return outcome;
}

std::shared_ptr<NodeState> DagScheduler::PickNode(const RddPtr& rdd, int partition) {
  for (;;) {
    auto live = ctx_->LiveNodeStates();
    if (live.empty()) {
      // Whole cluster revoked: park until the node manager replaces servers.
      ctx_->WaitForLiveNode();
      continue;
    }
    // Locality: prefer a node already caching this partition.
    const BlockKey key{rdd->id(), partition};
    for (const auto& node : live) {
      if (node->blocks->Contains(key)) {
        return node;
      }
    }
    const size_t pick =
        static_cast<size_t>(ctx_->round_robin_.fetch_add(1, std::memory_order_relaxed)) %
        live.size();
    return live[pick];
  }
}

Status DagScheduler::EnsureShuffleDeps(const RddPtr& rdd, int depth) {
  if (depth > kMaxRecoveryDepth) {
    return Internal("stage recursion too deep (cyclic lineage?)");
  }
  for (const auto& shuffle : CollectDirectShuffleDeps(rdd)) {
    FLINT_RETURN_IF_ERROR(RunShuffleStage(shuffle, depth + 1));
  }
  return Status::Ok();
}

Status DagScheduler::RecoverShuffle(int shuffle_id, int depth) {
  std::shared_ptr<ShuffleInfo> shuffle = ctx_->LookupShuffle(shuffle_id);
  if (shuffle == nullptr) {
    return Internal("fetch failure references unknown shuffle " + std::to_string(shuffle_id));
  }
  return RunShuffleStage(shuffle, depth);
}

Status DagScheduler::RunShuffleStage(const std::shared_ptr<ShuffleInfo>& shuffle, int depth) {
  if (depth > kMaxRecoveryDepth) {
    return Internal("stage recursion too deep");
  }
  RddPtr map_rdd = shuffle->map_side.lock();
  if (map_rdd == nullptr) {
    return Internal("map-side RDD of shuffle " + std::to_string(shuffle->shuffle_id) +
                    " no longer exists");
  }
  ShuffleManager& shuffles = ctx_->shuffles();

  for (int attempt = 0;; ++attempt) {
    std::vector<int> missing = shuffles.MissingMaps(shuffle->shuffle_id);
    if (missing.empty()) {
      return Status::Ok();
    }
    if (attempt > 4 * kMaxRecoveryDepth) {
      return Internal("shuffle stage failed to converge");
    }
    // The map tasks themselves read lineage below; make sure *their* shuffle
    // inputs exist before dispatching.
    FLINT_RETURN_IF_ERROR(EnsureShuffleDeps(map_rdd, depth + 1));

    OutcomeQueue outcomes;
    size_t in_flight = 0;
    for (int m : missing) {
      std::shared_ptr<NodeState> node = PickNode(map_rdd, m);
      const int shuffle_id = shuffle->shuffle_id;
      const int num_buckets = shuffle->num_reduce_partitions;
      ShuffleBucketer bucketer = shuffle->bucketer;
      ctx_->counters().tasks_run.fetch_add(1, std::memory_order_relaxed);
      const bool queued = node->pool->Submit([this, node, map_rdd, m, shuffle_id, num_buckets,
                                              bucketer, &outcomes] {
        TaskContext tc(ctx_, node);
        TaskOutcome outcome;
        outcome.index = m;
        Result<PartitionPtr> input = tc.GetPartition(map_rdd, m);
        if (!input.ok()) {
          outcome.status = input.status();
          outcome.failed_shuffle = tc.failed_shuffle();
          outcomes.Push(std::move(outcome));
          return;
        }
        std::vector<PartitionPtr> buckets = bucketer(*input.value(), num_buckets);
        if (tc.Cancelled()) {
          outcome.status = Unavailable("node revoked during shuffle write");
          outcomes.Push(std::move(outcome));
          return;
        }
        ctx_->shuffles().RegisterMapOutput(shuffle_id, m, tc.node_id(), std::move(buckets));
        outcome.status = Status::Ok();
        outcomes.Push(std::move(outcome));
      });
      if (queued) {
        ++in_flight;
      }
    }

    bool need_recovery = false;
    int recovery_shuffle = -1;
    Status fatal;
    for (size_t i = 0; i < in_flight; ++i) {
      TaskOutcome outcome = outcomes.Pop();
      if (outcome.status.ok()) {
        continue;
      }
      ctx_->counters().task_failures.fetch_add(1, std::memory_order_relaxed);
      switch (outcome.status.code()) {
        case StatusCode::kUnavailable:
          break;  // next attempt re-dispatches
        case StatusCode::kDataLoss:
          need_recovery = true;
          recovery_shuffle = outcome.failed_shuffle;
          break;
        default:
          if (fatal.ok()) {
            fatal = outcome.status;
          }
          break;
      }
    }
    if (!fatal.ok()) {
      return fatal;
    }
    if (need_recovery && recovery_shuffle >= 0) {
      FLINT_RETURN_IF_ERROR(RecoverShuffle(recovery_shuffle, depth + 1));
    }
  }
}

Result<std::vector<PartitionPtr>> DagScheduler::Materialize(const RddPtr& rdd) {
  if (rdd == nullptr) {
    return InvalidArgument("null rdd");
  }
  FLINT_RETURN_IF_ERROR(EnsureShuffleDeps(rdd, 0));

  const int n = rdd->num_partitions();
  std::vector<PartitionPtr> results(static_cast<size_t>(n));
  std::vector<bool> done(static_cast<size_t>(n), false);
  int remaining = n;

  for (int attempt = 0; remaining > 0; ++attempt) {
    if (attempt > 8 * kMaxRecoveryDepth) {
      return Internal("result stage failed to converge");
    }
    OutcomeQueue outcomes;
    size_t in_flight = 0;
    for (int p = 0; p < n; ++p) {
      if (done[static_cast<size_t>(p)]) {
        continue;
      }
      std::shared_ptr<NodeState> node = PickNode(rdd, p);
      ctx_->counters().tasks_run.fetch_add(1, std::memory_order_relaxed);
      const bool queued = node->pool->Submit([this, node, rdd, p, &outcomes] {
        TaskContext tc(ctx_, node);
        TaskOutcome outcome;
        outcome.index = p;
        Result<PartitionPtr> data = tc.GetPartition(rdd, p);
        if (data.ok()) {
          outcome.status = Status::Ok();
          outcome.data = std::move(data).value();
        } else {
          outcome.status = data.status();
          outcome.failed_shuffle = tc.failed_shuffle();
        }
        outcomes.Push(std::move(outcome));
      });
      if (queued) {
        ++in_flight;
      }
    }
    if (in_flight == 0) {
      // Every pool rejected (all nodes revoked between PickNode and Submit).
      ctx_->WaitForLiveNode();
      continue;
    }

    bool need_recovery = false;
    int recovery_shuffle = -1;
    Status fatal;
    for (size_t i = 0; i < in_flight; ++i) {
      TaskOutcome outcome = outcomes.Pop();
      if (outcome.status.ok()) {
        if (!done[static_cast<size_t>(outcome.index)]) {
          done[static_cast<size_t>(outcome.index)] = true;
          results[static_cast<size_t>(outcome.index)] = std::move(outcome.data);
          --remaining;
        }
        continue;
      }
      ctx_->counters().task_failures.fetch_add(1, std::memory_order_relaxed);
      switch (outcome.status.code()) {
        case StatusCode::kUnavailable:
          break;
        case StatusCode::kDataLoss:
          need_recovery = true;
          recovery_shuffle = outcome.failed_shuffle;
          break;
        default:
          if (fatal.ok()) {
            fatal = outcome.status;
          }
          break;
      }
    }
    if (!fatal.ok()) {
      return fatal;
    }
    if (need_recovery && recovery_shuffle >= 0) {
      FLINT_RETURN_IF_ERROR(RecoverShuffle(recovery_shuffle, 0));
    }
  }
  return results;
}

}  // namespace flint
