#include "src/engine/dag_scheduler.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <string>
#include <thread>
#include <unordered_set>

#include "src/common/log.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/engine/context.h"
#include "src/engine/task_context.h"
#include "src/obs/trace.h"

namespace flint {

// Collects task outcomes from executor threads back to the scheduler.
// Defined at namespace scope (not anonymous) so StageLoopSpec callbacks in
// the header can name it by forward declaration.
class OutcomeQueue {
 public:
  void Push(DagScheduler::TaskOutcome outcome) {
    // Notify while holding the lock: the scheduler destroys this queue as
    // soon as it has popped the final outcome, so the notify must complete
    // before the popper can observe the push.
    MutexLock lock(&mutex_);
    queue_.push_back(std::move(outcome));
    cv_.NotifyOne();
  }

  DagScheduler::TaskOutcome Pop() {
    MutexLock lock(&mutex_);
    while (queue_.empty()) {
      cv_.Wait(mutex_);
    }
    DagScheduler::TaskOutcome outcome = std::move(queue_.front());
    queue_.pop_front();
    return outcome;
  }

 private:
  Mutex mutex_{"OutcomeQueue::mutex_"};
  CondVar cv_;
  std::deque<DagScheduler::TaskOutcome> queue_ GUARDED_BY(mutex_);
};

namespace {

// Backoff for progress-free rounds (tasks racing a revocation wave): keeps
// the stage loop off the CPU without adding meaningful latency to the first
// few retries.
WallDuration StallBackoff(int stalled_rounds) {
  const int exponent = std::min(stalled_rounds, 8);  // caps at ~12.8 ms
  return WallDuration(50e-6 * static_cast<double>(1 << exponent));
}

}  // namespace

std::shared_ptr<NodeState> DagScheduler::PickNode(const RddPtr& rdd, int partition) {
  auto live = ctx_->SchedulableNodeStates();
  if (live.empty()) {
    // Whole cluster revoked or draining. Parking belongs to the stage loop
    // (which counts it separately from convergence attempts), not here.
    return nullptr;
  }
  // Locality: prefer a node already caching this partition.
  const BlockKey key{rdd->id(), partition};
  for (const auto& node : live) {
    if (node->blocks->Contains(key)) {
      return node;
    }
  }
  const size_t pick =
      static_cast<size_t>(ctx_->round_robin_.fetch_add(1, std::memory_order_relaxed)) %
      live.size();
  return live[pick];
}

Status DagScheduler::EnsureShuffleDeps(const RddPtr& rdd, int depth) {
  if (depth > kMaxRecoveryDepth) {
    return Internal("stage recursion too deep (cyclic lineage?)");
  }
  for (const auto& shuffle : CollectDirectShuffleDeps(rdd)) {
    FLINT_RETURN_IF_ERROR(RunShuffleStage(shuffle, depth + 1));
  }
  return Status::Ok();
}

Status DagScheduler::RecoverShuffle(int shuffle_id, int depth) {
  std::shared_ptr<ShuffleInfo> shuffle = ctx_->LookupShuffle(shuffle_id);
  if (shuffle == nullptr) {
    return Internal("fetch failure references unknown shuffle " + std::to_string(shuffle_id));
  }
  return RunShuffleStage(shuffle, depth);
}

Status DagScheduler::RunStageLoop(const StageLoopSpec& spec) {
  int stalled_rounds = 0;
  for (;;) {
    if (spec.complete()) {
      return Status::Ok();
    }
    if (stalled_rounds > spec.max_stalled_rounds) {
      return Internal(std::string(spec.what) + " failed to converge");
    }
    ctx_->FireProbe(EnginePoint::kSchedulerRound);
    FLINT_RETURN_IF_ERROR(spec.prepare());

    OutcomeQueue outcomes;
    const size_t in_flight = spec.dispatch(outcomes);
    ctx_->counters().stage_rounds.fetch_add(1, std::memory_order_relaxed);
    if (in_flight == 0) {
      // Every executor pool rejected the round's submissions: the whole
      // cluster was revoked (or started draining) between PickNode and
      // Submit. Park until the node manager supplies a replacement — this is
      // an acquisition wait, not a convergence attempt.
      ctx_->counters().stage_parks.fetch_add(1, std::memory_order_relaxed);
      ctx_->WaitForLiveNode();
      continue;
    }

    bool progress = false;
    bool need_recovery = false;
    int recovery_shuffle = -1;
    Status fatal;
    for (size_t i = 0; i < in_flight; ++i) {
      TaskOutcome outcome = outcomes.Pop();
      if (outcome.status.ok()) {
        progress = spec.on_success(std::move(outcome)) || progress;
        continue;
      }
      ctx_->counters().task_failures.fetch_add(1, std::memory_order_relaxed);
      switch (outcome.status.code()) {
        case StatusCode::kUnavailable:
          break;  // next round re-dispatches
        case StatusCode::kDataLoss:
          need_recovery = true;
          recovery_shuffle = outcome.failed_shuffle;
          break;
        default:
          if (fatal.ok()) {
            fatal = outcome.status;
          }
          break;
      }
    }
    if (!fatal.ok()) {
      return fatal;
    }
    if (need_recovery && recovery_shuffle >= 0) {
      FLINT_RETURN_IF_ERROR(RecoverShuffle(recovery_shuffle, spec.recovery_depth));
      progress = true;  // the producing stage was re-run; not a stall
    }
    if (progress) {
      stalled_rounds = 0;
    } else {
      ++stalled_rounds;
      std::this_thread::sleep_for(StallBackoff(stalled_rounds));
    }
  }
}

Status DagScheduler::RunShuffleStage(const std::shared_ptr<ShuffleInfo>& shuffle, int depth) {
  if (depth > kMaxRecoveryDepth) {
    return Internal("stage recursion too deep");
  }
  RddPtr map_rdd = shuffle->map_side.lock();
  if (map_rdd == nullptr) {
    return Internal("map-side RDD of shuffle " + std::to_string(shuffle->shuffle_id) +
                    " no longer exists");
  }
  ShuffleManager& shuffles = ctx_->shuffles();

  TraceSpan stage_span("shuffle_stage", "stage");
  stage_span.AddArg("shuffle", shuffle->shuffle_id);
  stage_span.AddArg("maps", shuffle->num_map_partitions);
  stage_span.AddArg("reduces", shuffle->num_reduce_partitions);
  stage_span.AddArg("depth", depth);

  StageLoopSpec spec;
  spec.what = "shuffle stage";
  spec.max_stalled_rounds = 4 * kMaxRecoveryDepth;
  spec.recovery_depth = depth + 1;
  spec.complete = [&shuffles, &shuffle] {
    return shuffles.MissingMaps(shuffle->shuffle_id).empty();
  };
  // The map tasks themselves read lineage; make sure *their* shuffle inputs
  // exist before every dispatch round.
  spec.prepare = [this, &map_rdd, depth] { return EnsureShuffleDeps(map_rdd, depth + 1); };
  spec.dispatch = [this, &shuffles, &shuffle, &map_rdd](OutcomeQueue& outcomes) {
    ctx_->FireProbe(EnginePoint::kBeforeShuffleMapDispatch);
    size_t in_flight = 0;
    for (int m : shuffles.MissingMaps(shuffle->shuffle_id)) {
      std::shared_ptr<NodeState> node = PickNode(map_rdd, m);
      if (node == nullptr) {
        break;  // nothing schedulable; the stage loop parks on WaitForLiveNode
      }
      const int shuffle_id = shuffle->shuffle_id;
      const int num_buckets = shuffle->num_reduce_partitions;
      ShuffleBucketer bucketer = shuffle->bucketer;
      ctx_->counters().tasks_run.fetch_add(1, std::memory_order_relaxed);
      const bool queued = node->pool->Submit([this, node, map_rdd, m, shuffle_id, num_buckets,
                                              bucketer, &outcomes] {
        ctx_->FireProbe(EnginePoint::kShuffleMapTaskRun);
        TraceSpan task_span("shuffle_map_task", "task");
        task_span.AddArg("shuffle", shuffle_id);
        task_span.AddArg("map", m);
        task_span.AddArg("node", node->info.node_id);
        TaskContext tc(ctx_, node);
        TaskOutcome outcome;
        outcome.index = m;
        Result<PartitionPtr> input = tc.GetPartition(map_rdd, m);
        if (!input.ok()) {
          outcome.status = input.status();
          outcome.failed_shuffle = tc.failed_shuffle();
          outcomes.Push(std::move(outcome));
          return;
        }
        std::vector<PartitionPtr> buckets = bucketer(*input.value(), num_buckets);
        if (tc.Cancelled()) {
          outcome.status = Unavailable("node revoked during shuffle write");
          outcomes.Push(std::move(outcome));
          return;
        }
        ctx_->shuffles().RegisterMapOutput(shuffle_id, m, tc.node_id(), std::move(buckets));
        ctx_->FireProbe(EnginePoint::kShuffleMapTaskDone);
        outcome.status = Status::Ok();
        outcomes.Push(std::move(outcome));
      });
      if (queued) {
        ++in_flight;
      }
    }
    return in_flight;
  };
  // A successful map task registered a previously missing output.
  spec.on_success = [](TaskOutcome&&) { return true; };
  return RunStageLoop(spec);
}

Result<std::vector<PartitionPtr>> DagScheduler::Materialize(const RddPtr& rdd) {
  if (rdd == nullptr) {
    return InvalidArgument("null rdd");
  }
  std::vector<int> all(static_cast<size_t>(rdd->num_partitions()));
  std::iota(all.begin(), all.end(), 0);
  return MaterializePartitions(rdd, all);
}

Result<std::vector<PartitionPtr>> DagScheduler::MaterializePartitions(
    const RddPtr& rdd, const std::vector<int>& partitions) {
  if (rdd == nullptr) {
    return InvalidArgument("null rdd");
  }
  std::unordered_set<int> seen;
  for (int p : partitions) {
    if (p < 0 || p >= rdd->num_partitions()) {
      return InvalidArgument("partition " + std::to_string(p) + " out of range for rdd " +
                             rdd->name());
    }
    if (!seen.insert(p).second) {
      return InvalidArgument("duplicate partition " + std::to_string(p) + " requested for rdd " +
                             rdd->name());
    }
  }
  FLINT_RETURN_IF_ERROR(EnsureShuffleDeps(rdd, 0));

  TraceSpan stage_span("result_stage", "stage");
  stage_span.AddArg("rdd", rdd->id());
  stage_span.AddArg("partitions", static_cast<double>(partitions.size()));

  // Outcome indices are slots into `partitions`, not partition numbers, so
  // the result vector mirrors the request order.
  const size_t n = partitions.size();
  std::vector<PartitionPtr> results(n);
  std::vector<bool> done(n, false);
  size_t remaining = n;

  StageLoopSpec spec;
  spec.what = "result stage";
  spec.max_stalled_rounds = 8 * kMaxRecoveryDepth;
  spec.recovery_depth = 0;
  spec.complete = [&remaining] { return remaining == 0; };
  spec.prepare = [] { return Status::Ok(); };  // deps ensured above; losses recover below
  spec.dispatch = [this, &rdd, &partitions, &done, n](OutcomeQueue& outcomes) {
    size_t in_flight = 0;
    for (size_t s = 0; s < n; ++s) {
      if (done[s]) {
        continue;
      }
      const int p = partitions[s];
      std::shared_ptr<NodeState> node = PickNode(rdd, p);
      if (node == nullptr) {
        break;  // nothing schedulable; the stage loop parks on WaitForLiveNode
      }
      ctx_->counters().tasks_run.fetch_add(1, std::memory_order_relaxed);
      const bool queued = node->pool->Submit([this, node, rdd, s, p, &outcomes] {
        TraceSpan task_span("task", "task");
        task_span.AddArg("rdd", rdd->id());
        task_span.AddArg("partition", p);
        task_span.AddArg("node", node->info.node_id);
        TaskContext tc(ctx_, node);
        TaskOutcome outcome;
        outcome.index = static_cast<int>(s);
        Result<PartitionPtr> data = tc.GetPartition(rdd, p);
        if (data.ok()) {
          outcome.status = Status::Ok();
          outcome.data = std::move(data).value();
        } else {
          outcome.status = data.status();
          outcome.failed_shuffle = tc.failed_shuffle();
        }
        outcomes.Push(std::move(outcome));
      });
      if (queued) {
        ++in_flight;
      }
    }
    return in_flight;
  };
  spec.on_success = [&results, &done, &remaining](TaskOutcome&& outcome) {
    const size_t idx = static_cast<size_t>(outcome.index);
    if (done[idx]) {
      return false;  // duplicate completion (re-dispatch raced a slow task)
    }
    done[idx] = true;
    results[idx] = std::move(outcome.data);
    --remaining;
    return true;
  };
  FLINT_RETURN_IF_ERROR(RunStageLoop(spec));
  return results;
}

}  // namespace flint
