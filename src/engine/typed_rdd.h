// The typed, Spark-like public API. TypedRdd<T> wraps a type-erased Rdd with
// the record type; transformations build LambdaRdd closures, so the engine
// core stays non-templated. PairRdd<K, V> (an alias) additionally supports
// the shuffle transformations (ReduceByKey, GroupByKey, Join).
//
// Closures run on executor threads and must be pure functions of their
// inputs: RDDs are immutable and may be recomputed at any time after a
// revocation, so a side-effecting closure would observe duplicated work.

#ifndef SRC_ENGINE_TYPED_RDD_H_
#define SRC_ENGINE_TYPED_RDD_H_

#include <algorithm>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/engine/context.h"
#include "src/engine/fusion.h"
#include "src/engine/hashing.h"
#include "src/engine/task_context.h"

namespace flint {

template <typename T>
class TypedRdd {
 public:
  using value_type = T;

  TypedRdd() = default;
  TypedRdd(FlintContext* ctx, RddPtr rdd) : ctx_(ctx), rdd_(std::move(rdd)) {}

  FlintContext* ctx() const { return ctx_; }
  const RddPtr& raw() const { return rdd_; }
  bool valid() const { return rdd_ != nullptr; }
  int num_partitions() const { return rdd_->num_partitions(); }
  const std::string& name() const { return rdd_->name(); }

  // Requests caching of computed partitions (Spark's persist()). Returns
  // *this for chaining.
  TypedRdd<T>& Cache() {
    rdd_->set_cache(true);
    return *this;
  }

  // Spark's unpersist(): drops cached partitions cluster-wide. No-op on a
  // default-constructed handle.
  void Unpersist() {
    if (ctx_ != nullptr && rdd_ != nullptr) {
      ctx_->UnpersistRdd(rdd_);
    }
  }

  // --- narrow transformations ---

  template <typename F>
  auto Map(F fn, std::string name = "map") const {
    using U = std::decay_t<std::invoke_result_t<F, const T&>>;
    RddPtr parent = rdd_;
    RddPtr out = ctx_->CreateRdd(
        std::move(name), parent->num_partitions(),
        {Dependency{DepType::kNarrowOneToOne, parent, nullptr}},
        [parent, fn](int i, TaskContext& tc) -> Result<PartitionPtr> {
          FLINT_ASSIGN_OR_RETURN(PartitionPtr in, tc.GetPartition(parent, i));
          const auto& rows = Rows<T>(*in);
          std::vector<U> result;
          result.reserve(rows.size());
          for (const auto& r : rows) {
            result.push_back(fn(r));
          }
          return MakePartition(std::move(result));
        });
    out->set_fusion_ops(fusion_internal::MakeMapFusionOps<T, U>(fn));
    return TypedRdd<U>(ctx_, std::move(out));
  }

  template <typename F>
  TypedRdd<T> Filter(F pred, std::string name = "filter") const {
    RddPtr parent = rdd_;
    RddPtr out = ctx_->CreateRdd(
        std::move(name), parent->num_partitions(),
        {Dependency{DepType::kNarrowOneToOne, parent, nullptr}},
        [parent, pred](int i, TaskContext& tc) -> Result<PartitionPtr> {
          FLINT_ASSIGN_OR_RETURN(PartitionPtr in, tc.GetPartition(parent, i));
          std::vector<T> result;
          for (const auto& r : Rows<T>(*in)) {
            if (pred(r)) {
              result.push_back(r);
            }
          }
          return MakePartition(std::move(result));
        });
    out->set_fusion_ops(fusion_internal::MakeFilterFusionOps<T>(pred));
    return TypedRdd<T>(ctx_, std::move(out));
  }

  // fn: const std::vector<T>& -> std::vector<U>, applied per partition.
  template <typename F>
  auto MapPartitions(F fn, std::string name = "mapPartitions") const {
    using Vec = std::decay_t<std::invoke_result_t<F, const std::vector<T>&>>;
    using U = typename Vec::value_type;
    RddPtr parent = rdd_;
    RddPtr out = ctx_->CreateRdd(
        std::move(name), parent->num_partitions(),
        {Dependency{DepType::kNarrowOneToOne, parent, nullptr}},
        [parent, fn](int i, TaskContext& tc) -> Result<PartitionPtr> {
          FLINT_ASSIGN_OR_RETURN(PartitionPtr in, tc.GetPartition(parent, i));
          return MakePartition(fn(Rows<T>(*in)));
        });
    return TypedRdd<U>(ctx_, std::move(out));
  }

  // fn: const T& -> std::vector<U>; results are concatenated.
  template <typename F>
  auto FlatMap(F fn, std::string name = "flatMap") const {
    using Vec = std::decay_t<std::invoke_result_t<F, const T&>>;
    using U = typename Vec::value_type;
    RddPtr parent = rdd_;
    RddPtr out = ctx_->CreateRdd(
        std::move(name), parent->num_partitions(),
        {Dependency{DepType::kNarrowOneToOne, parent, nullptr}},
        [parent, fn](int i, TaskContext& tc) -> Result<PartitionPtr> {
          FLINT_ASSIGN_OR_RETURN(PartitionPtr in, tc.GetPartition(parent, i));
          std::vector<U> result;
          for (const auto& r : Rows<T>(*in)) {
            Vec part = fn(r);
            result.insert(result.end(), std::make_move_iterator(part.begin()),
                          std::make_move_iterator(part.end()));
          }
          return MakePartition(std::move(result));
        });
    out->set_fusion_ops(fusion_internal::MakeFlatMapFusionOps<T, U>(fn));
    return TypedRdd<U>(ctx_, std::move(out));
  }

  // --- actions (run a job) ---

  Result<std::vector<T>> Collect() const {
    FLINT_ASSIGN_OR_RETURN(std::vector<PartitionPtr> parts, ctx_->Materialize(rdd_));
    size_t total = 0;
    for (const auto& p : parts) {
      total += p->NumRecords();
    }
    std::vector<T> out;
    out.reserve(total);
    for (const auto& p : parts) {
      const auto& rows = Rows<T>(*p);
      out.insert(out.end(), rows.begin(), rows.end());
    }
    return out;
  }

  Result<uint64_t> Count() const {
    FLINT_ASSIGN_OR_RETURN(std::vector<PartitionPtr> parts, ctx_->Materialize(rdd_));
    uint64_t n = 0;
    for (const auto& p : parts) {
      n += p->NumRecords();
    }
    return n;
  }

  // `fn` must be associative: each partition folds to at most one partial
  // value on its executor, and the driver folds the partials in partition
  // order — so only associativity (not commutativity) is required, and the
  // result matches a left fold over the concatenated partitions exactly.
  template <typename F>
  Result<T> Reduce(F fn) const {
    RddPtr parent = rdd_;
    RddPtr partial = ctx_->CreateRdd(
        "reduce-partial", parent->num_partitions(),
        {Dependency{DepType::kNarrowOneToOne, parent, nullptr}},
        [parent, fn](int i, TaskContext& tc) -> Result<PartitionPtr> {
          FLINT_ASSIGN_OR_RETURN(PartitionPtr in, tc.GetPartition(parent, i));
          const auto& rows = Rows<T>(*in);
          std::vector<T> out;
          if (!rows.empty()) {
            T acc = rows.front();
            for (size_t j = 1; j < rows.size(); ++j) {
              acc = fn(acc, rows[j]);
            }
            out.push_back(std::move(acc));
          }
          return MakePartition(std::move(out));
        });
    partial->set_fusion_ops(fusion_internal::MakeFoldFusionOps<T, F>(fn));
    FLINT_ASSIGN_OR_RETURN(std::vector<T> partials,
                           TypedRdd<T>(ctx_, std::move(partial)).Collect());
    if (partials.empty()) {
      return FailedPrecondition("Reduce on empty RDD");
    }
    T acc = std::move(partials.front());
    for (size_t i = 1; i < partials.size(); ++i) {
      acc = fn(acc, partials[i]);
    }
    return acc;
  }

  // Forces computation (and caching/checkpoint writes) without collecting.
  Status Materialize() const { return ctx_->Materialize(rdd_).status(); }

 private:
  FlintContext* ctx_ = nullptr;
  RddPtr rdd_;
};

template <typename K, typename V>
using PairRdd = TypedRdd<std::pair<K, V>>;

// --- sources ---

// Splits driver-resident data into `num_partitions` partitions. Recomputation
// re-reads from the (simulated) origin store, paying the origin bandwidth.
template <typename T>
TypedRdd<T> Parallelize(FlintContext* ctx, std::vector<T> data, int num_partitions,
                        std::string name = "parallelize") {
  auto shared = std::make_shared<const std::vector<T>>(std::move(data));
  RddPtr out = ctx->CreateRdd(
      std::move(name), num_partitions, {},
      [shared, num_partitions](int i, TaskContext& tc) -> Result<PartitionPtr> {
        const size_t n = shared->size();
        const size_t begin = n * static_cast<size_t>(i) / static_cast<size_t>(num_partitions);
        const size_t end = n * (static_cast<size_t>(i) + 1) / static_cast<size_t>(num_partitions);
        std::vector<T> rows(shared->begin() + static_cast<ptrdiff_t>(begin),
                            shared->begin() + static_cast<ptrdiff_t>(end));
        PartitionPtr part = MakePartition(std::move(rows));
        tc.context().ChargeOriginRead(part->SizeBytes());
        return part;
      });
  return TypedRdd<T>(ctx, std::move(out));
}

// Deterministically generates partition i via `fn(i)`. Used by the synthetic
// workload generators; recomputation pays the origin-read model like a real
// re-fetch + deserialize would.
template <typename F>
auto Generate(FlintContext* ctx, int num_partitions, F fn, std::string name = "generate") {
  using Vec = std::decay_t<std::invoke_result_t<F, int>>;
  using T = typename Vec::value_type;
  RddPtr out = ctx->CreateRdd(std::move(name), num_partitions, {},
                              [fn](int i, TaskContext& tc) -> Result<PartitionPtr> {
                                PartitionPtr part = MakePartition(fn(i));
                                tc.context().ChargeOriginRead(part->SizeBytes());
                                return part;
                              });
  return TypedRdd<T>(ctx, std::move(out));
}

// --- shuffle transformations ---

namespace rdd_internal {

// Plain hash-partition of pair rows into buckets, no combining.
template <typename K, typename V>
ShuffleBucketer MakePlainBucketer() {
  return [](const PartitionData& p, int num_buckets) {
    const auto& rows = Rows<std::pair<K, V>>(p);
    std::vector<std::vector<std::pair<K, V>>> buckets(static_cast<size_t>(num_buckets));
    // A uniform hash puts ~rows/buckets records in each bucket; reserving
    // that up front avoids the per-bucket reallocation churn.
    const size_t expect = rows.size() / static_cast<size_t>(num_buckets) + 1;
    for (auto& b : buckets) {
      b.reserve(expect);
    }
    for (const auto& kv : rows) {
      buckets[HashOf(kv.first) % static_cast<size_t>(num_buckets)].push_back(kv);
    }
    std::vector<PartitionPtr> out;
    out.reserve(buckets.size());
    for (auto& b : buckets) {
      out.push_back(MakePartition(std::move(b)));
    }
    return out;
  };
}

inline std::shared_ptr<ShuffleInfo> MakeShuffle(FlintContext* ctx, const RddPtr& map_side,
                                                int num_reduce, ShuffleBucketer bucketer) {
  auto info = std::make_shared<ShuffleInfo>();
  info->shuffle_id = ctx->NextShuffleId();
  info->num_map_partitions = map_side->num_partitions();
  info->num_reduce_partitions = num_reduce;
  info->bucketer = std::move(bucketer);
  info->map_side = map_side;
  ctx->RegisterShuffleInfo(info);
  return info;
}

}  // namespace rdd_internal

// Aggregates values per key with `combine` (associative, commutative).
// Map-side combining happens in the bucketer, like Spark's aggregator.
// Output rows are sorted by key for deterministic results.
template <typename K, typename V, typename Combine>
PairRdd<K, V> ReduceByKey(const PairRdd<K, V>& parent, int num_reduce, Combine combine,
                          std::string name = "reduceByKey") {
  FlintContext* ctx = parent.ctx();
  ShuffleBucketer bucketer = [combine](const PartitionData& p, int num_buckets) {
    std::vector<std::unordered_map<K, V, KeyHasher<K>>> maps(static_cast<size_t>(num_buckets));
    for (const auto& kv : Rows<std::pair<K, V>>(p)) {
      auto& m = maps[HashOf(kv.first) % static_cast<size_t>(num_buckets)];
      auto [it, inserted] = m.try_emplace(kv.first, kv.second);
      if (!inserted) {
        it->second = combine(it->second, kv.second);
      }
    }
    std::vector<PartitionPtr> out;
    out.reserve(maps.size());
    for (auto& m : maps) {
      std::vector<std::pair<K, V>> rows(m.begin(), m.end());
      out.push_back(MakePartition(std::move(rows)));
    }
    return out;
  };
  auto info = rdd_internal::MakeShuffle(ctx, parent.raw(), num_reduce, std::move(bucketer));
  RddPtr out = ctx->CreateRdd(
      std::move(name), num_reduce, {Dependency{DepType::kShuffle, parent.raw(), info}},
      [info, combine](int j, TaskContext& tc) -> Result<PartitionPtr> {
        FLINT_ASSIGN_OR_RETURN(std::vector<PartitionPtr> buckets,
                               tc.FetchShuffle(info->shuffle_id, j));
        std::unordered_map<K, V, KeyHasher<K>> acc;
        for (const auto& b : buckets) {
          for (const auto& kv : Rows<std::pair<K, V>>(*b)) {
            auto [it, inserted] = acc.try_emplace(kv.first, kv.second);
            if (!inserted) {
              it->second = combine(it->second, kv.second);
            }
          }
        }
        std::vector<std::pair<K, V>> rows(acc.begin(), acc.end());
        std::sort(rows.begin(), rows.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        return MakePartition(std::move(rows));
      });
  return PairRdd<K, V>(ctx, std::move(out));
}

// Groups values per key. Output rows sorted by key; value order follows map
// partition order (deterministic given deterministic inputs).
template <typename K, typename V>
PairRdd<K, std::vector<V>> GroupByKey(const PairRdd<K, V>& parent, int num_reduce,
                                      std::string name = "groupByKey") {
  FlintContext* ctx = parent.ctx();
  auto info = rdd_internal::MakeShuffle(ctx, parent.raw(), num_reduce,
                                              rdd_internal::MakePlainBucketer<K, V>());
  RddPtr out = ctx->CreateRdd(
      std::move(name), num_reduce, {Dependency{DepType::kShuffle, parent.raw(), info}},
      [info](int j, TaskContext& tc) -> Result<PartitionPtr> {
        FLINT_ASSIGN_OR_RETURN(std::vector<PartitionPtr> buckets,
                               tc.FetchShuffle(info->shuffle_id, j));
        std::unordered_map<K, std::vector<V>, KeyHasher<K>> acc;
        for (const auto& b : buckets) {
          for (const auto& kv : Rows<std::pair<K, V>>(*b)) {
            acc[kv.first].push_back(kv.second);
          }
        }
        std::vector<std::pair<K, std::vector<V>>> rows;
        rows.reserve(acc.size());
        for (auto& [k, vs] : acc) {
          rows.emplace_back(k, std::move(vs));
        }
        std::sort(rows.begin(), rows.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        return MakePartition(std::move(rows));
      });
  return PairRdd<K, std::vector<V>>(ctx, std::move(out));
}

// Inner hash join. Both sides are shuffled by key into `num_reduce`
// partitions; the reduce side builds a hash table from the left input.
template <typename K, typename V, typename W>
PairRdd<K, std::pair<V, W>> Join(const PairRdd<K, V>& left, const PairRdd<K, W>& right,
                                 int num_reduce, std::string name = "join") {
  FlintContext* ctx = left.ctx();
  auto left_info = rdd_internal::MakeShuffle(ctx, left.raw(), num_reduce,
                                                   rdd_internal::MakePlainBucketer<K, V>());
  auto right_info = rdd_internal::MakeShuffle(ctx, right.raw(), num_reduce,
                                                    rdd_internal::MakePlainBucketer<K, W>());
  RddPtr out = ctx->CreateRdd(
      std::move(name), num_reduce,
      {Dependency{DepType::kShuffle, left.raw(), left_info},
       Dependency{DepType::kShuffle, right.raw(), right_info}},
      [left_info, right_info](int j, TaskContext& tc) -> Result<PartitionPtr> {
        FLINT_ASSIGN_OR_RETURN(std::vector<PartitionPtr> lbuckets,
                               tc.FetchShuffle(left_info->shuffle_id, j));
        FLINT_ASSIGN_OR_RETURN(std::vector<PartitionPtr> rbuckets,
                               tc.FetchShuffle(right_info->shuffle_id, j));
        std::unordered_map<K, std::vector<V>, KeyHasher<K>> table;
        for (const auto& b : lbuckets) {
          for (const auto& kv : Rows<std::pair<K, V>>(*b)) {
            table[kv.first].push_back(kv.second);
          }
        }
        std::vector<std::pair<K, std::pair<V, W>>> rows;
        for (const auto& b : rbuckets) {
          for (const auto& kw : Rows<std::pair<K, W>>(*b)) {
            auto it = table.find(kw.first);
            if (it == table.end()) {
              continue;
            }
            for (const auto& v : it->second) {
              rows.emplace_back(kw.first, std::make_pair(v, kw.second));
            }
          }
        }
        std::sort(rows.begin(), rows.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        return MakePartition(std::move(rows));
      });
  return PairRdd<K, std::pair<V, W>>(ctx, std::move(out));
}

// Convenience: map only the values of a pair RDD.
template <typename K, typename V, typename F>
auto MapValues(const PairRdd<K, V>& parent, F fn, std::string name = "mapValues") {
  using W = std::decay_t<std::invoke_result_t<F, const V&>>;
  return parent.Map([fn](const std::pair<K, V>& kv) { return std::make_pair(kv.first, fn(kv.second)); },
                    std::move(name));
}

}  // namespace flint

#endif  // SRC_ENGINE_TYPED_RDD_H_
