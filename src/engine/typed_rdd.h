// The typed, Spark-like public API. TypedRdd<T> wraps a type-erased Rdd with
// the record type; transformations build LambdaRdd closures, so the engine
// core stays non-templated. PairRdd<K, V> (an alias) additionally supports
// the shuffle transformations (ReduceByKey, GroupByKey, Join).
//
// Closures run on executor threads and must be pure functions of their
// inputs: RDDs are immutable and may be recomputed at any time after a
// revocation, so a side-effecting closure would observe duplicated work.

#ifndef SRC_ENGINE_TYPED_RDD_H_
#define SRC_ENGINE_TYPED_RDD_H_

#include <algorithm>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/flat_hash.h"
#include "src/common/status.h"
#include "src/engine/context.h"
#include "src/engine/fusion.h"
#include "src/engine/hashing.h"
#include "src/engine/task_context.h"

namespace flint {

template <typename T>
class TypedRdd {
 public:
  using value_type = T;

  TypedRdd() = default;
  TypedRdd(FlintContext* ctx, RddPtr rdd) : ctx_(ctx), rdd_(std::move(rdd)) {}

  FlintContext* ctx() const { return ctx_; }
  const RddPtr& raw() const { return rdd_; }
  bool valid() const { return rdd_ != nullptr; }
  int num_partitions() const { return rdd_->num_partitions(); }
  const std::string& name() const { return rdd_->name(); }

  // Requests caching of computed partitions (Spark's persist()). Returns
  // *this for chaining.
  TypedRdd<T>& Cache() {
    rdd_->set_cache(true);
    return *this;
  }

  // Spark's unpersist(): drops cached partitions cluster-wide. No-op on a
  // default-constructed handle.
  void Unpersist() {
    if (ctx_ != nullptr && rdd_ != nullptr) {
      ctx_->UnpersistRdd(rdd_);
    }
  }

  // --- narrow transformations ---

  template <typename F>
  auto Map(F fn, std::string name = "map") const {
    using U = std::decay_t<std::invoke_result_t<F, const T&>>;
    RddPtr parent = rdd_;
    RddPtr out = ctx_->CreateRdd(
        std::move(name), parent->num_partitions(),
        {Dependency{DepType::kNarrowOneToOne, parent, nullptr}},
        [parent, fn](int i, TaskContext& tc) -> Result<PartitionPtr> {
          FLINT_ASSIGN_OR_RETURN(PartitionPtr in, tc.GetPartition(parent, i));
          const auto& rows = Rows<T>(*in);
          std::vector<U> result;
          result.reserve(rows.size());
          for (const auto& r : rows) {
            result.push_back(fn(r));
          }
          return MakePartition(std::move(result));
        });
    out->set_fusion_ops(fusion_internal::MakeMapFusionOps<T, U>(fn));
    return TypedRdd<U>(ctx_, std::move(out));
  }

  template <typename F>
  TypedRdd<T> Filter(F pred, std::string name = "filter") const {
    RddPtr parent = rdd_;
    RddPtr out = ctx_->CreateRdd(
        std::move(name), parent->num_partitions(),
        {Dependency{DepType::kNarrowOneToOne, parent, nullptr}},
        [parent, pred](int i, TaskContext& tc) -> Result<PartitionPtr> {
          FLINT_ASSIGN_OR_RETURN(PartitionPtr in, tc.GetPartition(parent, i));
          std::vector<T> result;
          for (const auto& r : Rows<T>(*in)) {
            if (pred(r)) {
              result.push_back(r);
            }
          }
          return MakePartition(std::move(result));
        });
    out->set_fusion_ops(fusion_internal::MakeFilterFusionOps<T>(pred));
    return TypedRdd<T>(ctx_, std::move(out));
  }

  // fn: const std::vector<T>& -> std::vector<U>, applied per partition.
  template <typename F>
  auto MapPartitions(F fn, std::string name = "mapPartitions") const {
    using Vec = std::decay_t<std::invoke_result_t<F, const std::vector<T>&>>;
    using U = typename Vec::value_type;
    RddPtr parent = rdd_;
    RddPtr out = ctx_->CreateRdd(
        std::move(name), parent->num_partitions(),
        {Dependency{DepType::kNarrowOneToOne, parent, nullptr}},
        [parent, fn](int i, TaskContext& tc) -> Result<PartitionPtr> {
          FLINT_ASSIGN_OR_RETURN(PartitionPtr in, tc.GetPartition(parent, i));
          return MakePartition(fn(Rows<T>(*in)));
        });
    return TypedRdd<U>(ctx_, std::move(out));
  }

  // fn: const T& -> std::vector<U>; results are concatenated.
  template <typename F>
  auto FlatMap(F fn, std::string name = "flatMap") const {
    using Vec = std::decay_t<std::invoke_result_t<F, const T&>>;
    using U = typename Vec::value_type;
    RddPtr parent = rdd_;
    RddPtr out = ctx_->CreateRdd(
        std::move(name), parent->num_partitions(),
        {Dependency{DepType::kNarrowOneToOne, parent, nullptr}},
        [parent, fn](int i, TaskContext& tc) -> Result<PartitionPtr> {
          FLINT_ASSIGN_OR_RETURN(PartitionPtr in, tc.GetPartition(parent, i));
          std::vector<U> result;
          for (const auto& r : Rows<T>(*in)) {
            Vec part = fn(r);
            result.insert(result.end(), std::make_move_iterator(part.begin()),
                          std::make_move_iterator(part.end()));
          }
          return MakePartition(std::move(result));
        });
    out->set_fusion_ops(fusion_internal::MakeFlatMapFusionOps<T, U>(fn));
    return TypedRdd<U>(ctx_, std::move(out));
  }

  // --- actions (run a job) ---

  Result<std::vector<T>> Collect() const {
    FLINT_ASSIGN_OR_RETURN(std::vector<PartitionPtr> parts, ctx_->Materialize(rdd_));
    size_t total = 0;
    for (const auto& p : parts) {
      total += p->NumRecords();
    }
    std::vector<T> out;
    out.reserve(total);
    for (const auto& p : parts) {
      const auto& rows = Rows<T>(*p);
      out.insert(out.end(), rows.begin(), rows.end());
    }
    return out;
  }

  Result<uint64_t> Count() const {
    FLINT_ASSIGN_OR_RETURN(std::vector<PartitionPtr> parts, ctx_->Materialize(rdd_));
    uint64_t n = 0;
    for (const auto& p : parts) {
      n += p->NumRecords();
    }
    return n;
  }

  // `fn` must be associative: each partition folds to at most one partial
  // value on its executor, and the driver folds the partials in partition
  // order — so only associativity (not commutativity) is required, and the
  // result matches a left fold over the concatenated partitions exactly.
  template <typename F>
  Result<T> Reduce(F fn) const {
    RddPtr parent = rdd_;
    RddPtr partial = ctx_->CreateRdd(
        "reduce-partial", parent->num_partitions(),
        {Dependency{DepType::kNarrowOneToOne, parent, nullptr}},
        [parent, fn](int i, TaskContext& tc) -> Result<PartitionPtr> {
          FLINT_ASSIGN_OR_RETURN(PartitionPtr in, tc.GetPartition(parent, i));
          const auto& rows = Rows<T>(*in);
          std::vector<T> out;
          if (!rows.empty()) {
            T acc = rows.front();
            for (size_t j = 1; j < rows.size(); ++j) {
              acc = fn(acc, rows[j]);
            }
            out.push_back(std::move(acc));
          }
          return MakePartition(std::move(out));
        });
    partial->set_fusion_ops(fusion_internal::MakeFoldFusionOps<T, F>(fn));
    FLINT_ASSIGN_OR_RETURN(std::vector<T> partials,
                           TypedRdd<T>(ctx_, std::move(partial)).Collect());
    if (partials.empty()) {
      return FailedPrecondition("Reduce on empty RDD");
    }
    T acc = std::move(partials.front());
    for (size_t i = 1; i < partials.size(); ++i) {
      acc = fn(acc, partials[i]);
    }
    return acc;
  }

  // Forces computation (and caching/checkpoint writes) without collecting.
  Status Materialize() const { return ctx_->Materialize(rdd_).status(); }

 private:
  FlintContext* ctx_ = nullptr;
  RddPtr rdd_;
};

template <typename K, typename V>
using PairRdd = TypedRdd<std::pair<K, V>>;

// --- sources ---

// Splits driver-resident data into `num_partitions` partitions. Recomputation
// re-reads from the (simulated) origin store, paying the origin bandwidth.
template <typename T>
TypedRdd<T> Parallelize(FlintContext* ctx, std::vector<T> data, int num_partitions,
                        std::string name = "parallelize") {
  auto shared = std::make_shared<const std::vector<T>>(std::move(data));
  RddPtr out = ctx->CreateRdd(
      std::move(name), num_partitions, {},
      [shared, num_partitions](int i, TaskContext& tc) -> Result<PartitionPtr> {
        const size_t n = shared->size();
        const size_t begin = n * static_cast<size_t>(i) / static_cast<size_t>(num_partitions);
        const size_t end = n * (static_cast<size_t>(i) + 1) / static_cast<size_t>(num_partitions);
        std::vector<T> rows(shared->begin() + static_cast<ptrdiff_t>(begin),
                            shared->begin() + static_cast<ptrdiff_t>(end));
        PartitionPtr part = MakePartition(std::move(rows));
        tc.context().ChargeOriginRead(part->SizeBytes());
        return part;
      });
  return TypedRdd<T>(ctx, std::move(out));
}

// Deterministically generates partition i via `fn(i)`. Used by the synthetic
// workload generators; recomputation pays the origin-read model like a real
// re-fetch + deserialize would.
template <typename F>
auto Generate(FlintContext* ctx, int num_partitions, F fn, std::string name = "generate") {
  using Vec = std::decay_t<std::invoke_result_t<F, int>>;
  using T = typename Vec::value_type;
  RddPtr out = ctx->CreateRdd(std::move(name), num_partitions, {},
                              [fn](int i, TaskContext& tc) -> Result<PartitionPtr> {
                                PartitionPtr part = MakePartition(fn(i));
                                tc.context().ChargeOriginRead(part->SizeBytes());
                                return part;
                              });
  return TypedRdd<T>(ctx, std::move(out));
}

// --- shuffle transformations ---
//
// The map side of every shuffle is a bucket *sink* (see BucketTerminal in
// fusion.h): the narrow chain above the shuffle can stream records straight
// into the reduce-side buckets without ever materializing the map-side
// partition (TaskContext::ComputeShuffleBuckets). Every sink emits its
// buckets key-sorted, which the reduce side exploits with a k-way
// merge + combine instead of rebuilding a hash table. Both the map-side
// combiner and the hash-rebuild fallback use FlatHashMap (flat_hash.h),
// whose insertion-order iteration keeps every path deterministic.

namespace rdd_internal {

// Streams an already materialized partition of `Row`s through a bucket sink
// in fusion-sized spans — the unfused half of the shared bucketing surface.
template <typename Row>
std::function<void(const PartitionData&, FusionSink&)> MakeRowDrive() {
  return [](const PartitionData& p, FusionSink& sink) {
    TypedSink<Row>& in = SinkAs<Row>(sink);
    const std::vector<Row>& rows = Rows<Row>(p);
    for (size_t off = 0; off < rows.size(); off += kFusionBatchRows) {
      in.Push(rows.data() + off, std::min(kFusionBatchRows, rows.size() - off));
    }
    sink.Flush();
  };
}

// Plain hash-partition of pair rows into buckets, no combining. Finish()
// stable-sorts each bucket by key: per-key row order stays (arrival order),
// i.e. (map partition, row index), while the sorted-bucket invariant enables
// the reduce-side merge.
// Bucket-index fast path: for power-of-two bucket counts (the common case)
// `h & (n-1)` equals `h % n`, sparing the hot loops a hardware division per
// row. Zero means "no mask, divide".
inline size_t BucketMaskFor(size_t n) { return (n & (n - 1)) == 0 ? n - 1 : 0; }

template <typename K, typename V>
class PlainBucketSink final : public TypedSink<std::pair<K, V>> {
 public:
  PlainBucketSink(int num_buckets, size_t expected_rows)
      : buckets_(static_cast<size_t>(num_buckets)),
        bucket_mask_(BucketMaskFor(buckets_.size())) {
    // A uniform hash puts ~rows/buckets records in each bucket; reserving
    // that up front avoids the per-bucket reallocation churn.
    const size_t expect = expected_rows / buckets_.size() + 1;
    for (auto& b : buckets_) {
      b.reserve(expect);
    }
  }

  void Push(const std::pair<K, V>* rec, size_t n) override {
    rows_in_ += n;
    auto* const buckets = buckets_.data();
    const size_t num_buckets = buckets_.size();
    const size_t mask = bucket_mask_;
    for (size_t i = 0; i < n; ++i) {
      const size_t h = HashOf(rec[i].first);
      buckets[mask != 0 ? (h & mask) : (h % num_buckets)].push_back(rec[i]);
    }
  }

  std::vector<PartitionPtr> Finish() {
    std::vector<PartitionPtr> out;
    out.reserve(buckets_.size());
    for (auto& b : buckets_) {
      std::stable_sort(b.begin(), b.end(),
                       [](const auto& a, const auto& c) { return a.first < c.first; });
      out.push_back(MakePartition(std::move(b)));
    }
    return out;
  }

  uint64_t rows_in() const { return rows_in_; }

 private:
  std::vector<std::vector<std::pair<K, V>>> buckets_;
  const size_t bucket_mask_;
  uint64_t rows_in_ = 0;
};

// Map-side combining bucket sink (Spark's aggregator): per-bucket flat hash
// maps fold values in arrival order, Finish() sorts each bucket's unique
// keys. Combine-hit tallies flush into the engine counters once per sink.
template <typename K, typename V, typename Combine>
class CombineBucketSink final : public TypedSink<std::pair<K, V>> {
 public:
  CombineBucketSink(int num_buckets, size_t expected_rows, Combine combine,
                    EngineCounters* counters)
      : combine_(std::move(combine)), counters_(counters),
        maps_(static_cast<size_t>(num_buckets)),
        bucket_mask_(BucketMaskFor(maps_.size())) {
    // The combiner holds unique keys, not rows; low-cardinality aggregations
    // (the common case) would waste a table sized for rows/buckets on a
    // handful of keys, so cap the pre-size and let growth cover the rest.
    const size_t expect = std::min<size_t>(expected_rows / maps_.size() + 1, 1024);
    for (auto& m : maps_) {
      m.Reserve(expect);
    }
  }

  void Push(const std::pair<K, V>* rec, size_t n) override {
    rows_in_ += n;
    // Hot loop: hash once per row (the bucket index and the map probe share
    // it) and keep the hit count in a register, not a member store per row.
    auto* const maps = maps_.data();
    const size_t num_buckets = maps_.size();
    const size_t mask = bucket_mask_;
    uint64_t hits = 0;
    for (size_t i = 0; i < n; ++i) {
      const size_t h = HashOf(rec[i].first);
      auto [slot, inserted] = maps[mask != 0 ? (h & mask) : (h % num_buckets)]
                                  .FindOrEmplaceHashed(h, rec[i].first, rec[i].second);
      if (!inserted) {
        *slot = combine_(*slot, rec[i].second);
        ++hits;
      }
    }
    combine_hits_ += hits;
  }

  std::vector<PartitionPtr> Finish() {
    counters_->shuffle_combine_hits.fetch_add(combine_hits_, std::memory_order_relaxed);
    std::vector<PartitionPtr> out;
    out.reserve(maps_.size());
    for (auto& m : maps_) {
      std::vector<std::pair<K, V>> rows = m.TakeEntries();
      // Keys are unique within a bucket, so the plain by-key sort is total.
      std::sort(rows.begin(), rows.end(),
                [](const auto& a, const auto& c) { return a.first < c.first; });
      out.push_back(MakePartition(std::move(rows)));
    }
    return out;
  }

  uint64_t rows_in() const { return rows_in_; }

 private:
  Combine combine_;
  EngineCounters* counters_;
  std::vector<FlatHashMap<K, V, KeyHasher<K>>> maps_;
  const size_t bucket_mask_;
  uint64_t rows_in_ = 0;
  uint64_t combine_hits_ = 0;
};

template <typename K, typename V>
BucketTerminalFactory MakePlainBucketFactory() {
  return [](int num_buckets, size_t expected_rows) {
    auto sink = std::make_unique<PlainBucketSink<K, V>>(num_buckets, expected_rows);
    PlainBucketSink<K, V>* raw = sink.get();
    BucketTerminal t;
    t.sink = std::move(sink);
    t.finish = [raw] { return raw->Finish(); };
    t.rows_in = [raw] { return raw->rows_in(); };
    return t;
  };
}

template <typename K, typename V, typename Combine>
BucketTerminalFactory MakeCombineBucketFactory(Combine combine, EngineCounters* counters) {
  return [combine, counters](int num_buckets, size_t expected_rows) {
    auto sink = std::make_unique<CombineBucketSink<K, V, Combine>>(num_buckets, expected_rows,
                                                                   combine, counters);
    CombineBucketSink<K, V, Combine>* raw = sink.get();
    BucketTerminal t;
    t.sink = std::move(sink);
    t.finish = [raw] { return raw->Finish(); };
    t.rows_in = [raw] { return raw->rows_in(); };
    return t;
  };
}

// K-way merge + combine over key-sorted buckets whose keys are unique per
// bucket (CombineBucketSink output). Values combine across buckets in bucket
// index order — exactly the order the hash-rebuild fallback applies them in,
// so both reduce paths are bit-identical even for non-commutative (but
// associative) combines. Output is key-sorted by construction.
template <typename K, typename V, typename Combine>
std::vector<std::pair<K, V>> MergeCombineBuckets(const std::vector<PartitionPtr>& buckets,
                                                 const Combine& combine) {
  struct Cursor {
    const std::vector<std::pair<K, V>>* rows;
    size_t pos = 0;
  };
  std::vector<Cursor> cur;
  cur.reserve(buckets.size());
  size_t largest = 0;
  for (const auto& b : buckets) {
    const auto& rows = Rows<std::pair<K, V>>(*b);
    largest = std::max(largest, rows.size());
    if (!rows.empty()) {
      cur.push_back(Cursor{&rows});
    }
  }
  std::vector<std::pair<K, V>> out;
  // Distinct keys are at least the largest bucket's count (keys unique per
  // bucket); start there and let growth cover key sets disjoint per bucket.
  out.reserve(largest);
  while (true) {
    const K* min_key = nullptr;
    for (const Cursor& c : cur) {
      if (c.pos < c.rows->size()) {
        const K& k = (*c.rows)[c.pos].first;
        if (min_key == nullptr || k < *min_key) {
          min_key = &k;
        }
      }
    }
    if (min_key == nullptr) {
      return out;
    }
    bool first = true;
    for (Cursor& c : cur) {
      if (c.pos < c.rows->size() && (*c.rows)[c.pos].first == *min_key) {
        if (first) {
          out.push_back((*c.rows)[c.pos]);
          first = false;
        } else {
          out.back().second = combine(out.back().second, (*c.rows)[c.pos].second);
        }
        ++c.pos;
      }
    }
  }
}

// K-way merge + group over key-sorted buckets (PlainBucketSink output; keys
// may repeat within a bucket as a contiguous run). Per-key value order is
// (bucket index, row order within bucket) = (map partition, original row
// index), matching both the hash fallback and the pre-merge semantics.
template <typename K, typename V>
std::vector<std::pair<K, std::vector<V>>> MergeGroupBuckets(
    const std::vector<PartitionPtr>& buckets) {
  struct Cursor {
    const std::vector<std::pair<K, V>>* rows;
    size_t pos = 0;
  };
  std::vector<Cursor> cur;
  cur.reserve(buckets.size());
  for (const auto& b : buckets) {
    const auto& rows = Rows<std::pair<K, V>>(*b);
    if (!rows.empty()) {
      cur.push_back(Cursor{&rows});
    }
  }
  std::vector<std::pair<K, std::vector<V>>> out;
  while (true) {
    const K* min_key = nullptr;
    for (const Cursor& c : cur) {
      if (c.pos < c.rows->size()) {
        const K& k = (*c.rows)[c.pos].first;
        if (min_key == nullptr || k < *min_key) {
          min_key = &k;
        }
      }
    }
    if (min_key == nullptr) {
      return out;
    }
    // Two passes over the (cache-hot) runs: size the value vector exactly,
    // then fill it.
    size_t count = 0;
    for (const Cursor& c : cur) {
      size_t p = c.pos;
      while (p < c.rows->size() && (*c.rows)[p].first == *min_key) {
        ++count;
        ++p;
      }
    }
    std::vector<V> vals;
    vals.reserve(count);
    for (Cursor& c : cur) {
      while (c.pos < c.rows->size() && (*c.rows)[c.pos].first == *min_key) {
        vals.push_back((*c.rows)[c.pos].second);
        ++c.pos;
      }
    }
    out.emplace_back(*min_key, std::move(vals));
  }
}

inline std::shared_ptr<ShuffleInfo> MakeShuffle(
    FlintContext* ctx, const RddPtr& map_side, int num_reduce, BucketTerminalFactory factory,
    std::function<void(const PartitionData&, FusionSink&)> drive_rows) {
  auto info = std::make_shared<ShuffleInfo>();
  info->shuffle_id = ctx->NextShuffleId();
  info->num_map_partitions = map_side->num_partitions();
  info->num_reduce_partitions = num_reduce;
  info->make_bucket_sink = std::move(factory);
  info->drive_rows = std::move(drive_rows);
  info->map_side = map_side;
  ctx->RegisterShuffleInfo(info);
  return info;
}

}  // namespace rdd_internal

// Aggregates values per key with `combine` (associative; commutativity not
// required — values fold in (map partition, row) order on the map side and
// bucket-index order across buckets on the reduce side, deterministically).
// Map-side combining happens in the bucket sink, like Spark's aggregator.
// Output rows are sorted by key for deterministic results.
template <typename K, typename V, typename Combine>
PairRdd<K, V> ReduceByKey(const PairRdd<K, V>& parent, int num_reduce, Combine combine,
                          std::string name = "reduceByKey") {
  FlintContext* ctx = parent.ctx();
  auto info = rdd_internal::MakeShuffle(
      ctx, parent.raw(), num_reduce,
      rdd_internal::MakeCombineBucketFactory<K, V>(combine, &ctx->counters()),
      rdd_internal::MakeRowDrive<std::pair<K, V>>());
  RddPtr out = ctx->CreateRdd(
      std::move(name), num_reduce, {Dependency{DepType::kShuffle, parent.raw(), info}},
      [info, combine](int j, TaskContext& tc) -> Result<PartitionPtr> {
        FLINT_ASSIGN_OR_RETURN(std::vector<PartitionPtr> buckets,
                               tc.FetchShuffle(info->shuffle_id, j));
        EngineCounters& counters = tc.context().counters();
        if (tc.context().config().shuffle_merge_reduce) {
          counters.shuffle_merge_reduces.fetch_add(1, std::memory_order_relaxed);
          return MakePartition(rdd_internal::MergeCombineBuckets<K, V>(buckets, combine));
        }
        // Hash-rebuild fallback: combine in bucket order (matching the
        // merge), then sort the unique keys.
        counters.shuffle_hash_reduces.fetch_add(1, std::memory_order_relaxed);
        FlatHashMap<K, V, KeyHasher<K>> acc;
        size_t largest = 0;
        for (const auto& b : buckets) {
          largest = std::max(largest, static_cast<size_t>(b->NumRecords()));
        }
        acc.Reserve(largest);
        for (const auto& b : buckets) {
          for (const auto& kv : Rows<std::pair<K, V>>(*b)) {
            auto [slot, inserted] = acc.FindOrEmplace(kv.first, kv.second);
            if (!inserted) {
              *slot = combine(*slot, kv.second);
            }
          }
        }
        std::vector<std::pair<K, V>> rows = acc.TakeEntries();
        std::sort(rows.begin(), rows.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        return MakePartition(std::move(rows));
      });
  return PairRdd<K, V>(ctx, std::move(out));
}

// Groups values per key. Output rows sorted by key; value order follows map
// partition order (deterministic given deterministic inputs).
template <typename K, typename V>
PairRdd<K, std::vector<V>> GroupByKey(const PairRdd<K, V>& parent, int num_reduce,
                                      std::string name = "groupByKey") {
  FlintContext* ctx = parent.ctx();
  auto info = rdd_internal::MakeShuffle(ctx, parent.raw(), num_reduce,
                                        rdd_internal::MakePlainBucketFactory<K, V>(),
                                        rdd_internal::MakeRowDrive<std::pair<K, V>>());
  RddPtr out = ctx->CreateRdd(
      std::move(name), num_reduce, {Dependency{DepType::kShuffle, parent.raw(), info}},
      [info](int j, TaskContext& tc) -> Result<PartitionPtr> {
        FLINT_ASSIGN_OR_RETURN(std::vector<PartitionPtr> buckets,
                               tc.FetchShuffle(info->shuffle_id, j));
        EngineCounters& counters = tc.context().counters();
        if (tc.context().config().shuffle_merge_reduce) {
          counters.shuffle_merge_reduces.fetch_add(1, std::memory_order_relaxed);
          return MakePartition(rdd_internal::MergeGroupBuckets<K, V>(buckets));
        }
        counters.shuffle_hash_reduces.fetch_add(1, std::memory_order_relaxed);
        FlatHashMap<K, std::vector<V>, KeyHasher<K>> acc;
        for (const auto& b : buckets) {
          for (const auto& kv : Rows<std::pair<K, V>>(*b)) {
            acc[kv.first].push_back(kv.second);
          }
        }
        std::vector<std::pair<K, std::vector<V>>> rows = acc.TakeEntries();
        std::sort(rows.begin(), rows.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        return MakePartition(std::move(rows));
      });
  return PairRdd<K, std::vector<V>>(ctx, std::move(out));
}

// Inner join. Both sides are shuffled by key into `num_reduce` partitions;
// the reduce side merge-joins the key-sorted buckets (or, with merge-reduce
// off, builds a flat hash table from the left input). Output is key-sorted;
// per key, rows follow (right row order, left row order) — identical on
// both reduce paths.
template <typename K, typename V, typename W>
PairRdd<K, std::pair<V, W>> Join(const PairRdd<K, V>& left, const PairRdd<K, W>& right,
                                 int num_reduce, std::string name = "join") {
  FlintContext* ctx = left.ctx();
  auto left_info = rdd_internal::MakeShuffle(ctx, left.raw(), num_reduce,
                                             rdd_internal::MakePlainBucketFactory<K, V>(),
                                             rdd_internal::MakeRowDrive<std::pair<K, V>>());
  auto right_info = rdd_internal::MakeShuffle(ctx, right.raw(), num_reduce,
                                              rdd_internal::MakePlainBucketFactory<K, W>(),
                                              rdd_internal::MakeRowDrive<std::pair<K, W>>());
  RddPtr out = ctx->CreateRdd(
      std::move(name), num_reduce,
      {Dependency{DepType::kShuffle, left.raw(), left_info},
       Dependency{DepType::kShuffle, right.raw(), right_info}},
      [left_info, right_info](int j, TaskContext& tc) -> Result<PartitionPtr> {
        FLINT_ASSIGN_OR_RETURN(std::vector<PartitionPtr> lbuckets,
                               tc.FetchShuffle(left_info->shuffle_id, j));
        FLINT_ASSIGN_OR_RETURN(std::vector<PartitionPtr> rbuckets,
                               tc.FetchShuffle(right_info->shuffle_id, j));
        EngineCounters& counters = tc.context().counters();
        std::vector<std::pair<K, std::pair<V, W>>> rows;
        if (tc.context().config().shuffle_merge_reduce) {
          counters.shuffle_merge_reduces.fetch_add(1, std::memory_order_relaxed);
          std::vector<std::pair<K, std::vector<V>>> lg =
              rdd_internal::MergeGroupBuckets<K, V>(lbuckets);
          std::vector<std::pair<K, std::vector<W>>> rg =
              rdd_internal::MergeGroupBuckets<K, W>(rbuckets);
          // Two-pointer sweep over the sorted groups: size the output
          // exactly, then emit.
          size_t total = 0;
          for (size_t li = 0, ri = 0; li < lg.size() && ri < rg.size();) {
            if (lg[li].first < rg[ri].first) {
              ++li;
            } else if (rg[ri].first < lg[li].first) {
              ++ri;
            } else {
              total += lg[li].second.size() * rg[ri].second.size();
              ++li;
              ++ri;
            }
          }
          rows.reserve(total);
          for (size_t li = 0, ri = 0; li < lg.size() && ri < rg.size();) {
            if (lg[li].first < rg[ri].first) {
              ++li;
            } else if (rg[ri].first < lg[li].first) {
              ++ri;
            } else {
              for (const W& w : rg[ri].second) {
                for (const V& v : lg[li].second) {
                  rows.emplace_back(lg[li].first, std::make_pair(v, w));
                }
              }
              ++li;
              ++ri;
            }
          }
          return MakePartition(std::move(rows));
        }
        counters.shuffle_hash_reduces.fetch_add(1, std::memory_order_relaxed);
        FlatHashMap<K, std::vector<V>, KeyHasher<K>> table;
        for (const auto& b : lbuckets) {
          for (const auto& kv : Rows<std::pair<K, V>>(*b)) {
            table[kv.first].push_back(kv.second);
          }
        }
        // Count matches first so the output vector is built in one
        // allocation, then emit and stable-sort (per-key emission order must
        // survive the sort to match the merge path).
        size_t total = 0;
        for (const auto& b : rbuckets) {
          for (const auto& kw : Rows<std::pair<K, W>>(*b)) {
            if (const std::vector<V>* vs = table.Find(kw.first)) {
              total += vs->size();
            }
          }
        }
        rows.reserve(total);
        for (const auto& b : rbuckets) {
          for (const auto& kw : Rows<std::pair<K, W>>(*b)) {
            if (const std::vector<V>* vs = table.Find(kw.first)) {
              for (const V& v : *vs) {
                rows.emplace_back(kw.first, std::make_pair(v, kw.second));
              }
            }
          }
        }
        std::stable_sort(rows.begin(), rows.end(),
                         [](const auto& a, const auto& b) { return a.first < b.first; });
        return MakePartition(std::move(rows));
      });
  return PairRdd<K, std::pair<V, W>>(ctx, std::move(out));
}

// Convenience: map only the values of a pair RDD.
template <typename K, typename V, typename F>
auto MapValues(const PairRdd<K, V>& parent, F fn, std::string name = "mapValues") {
  return parent.Map(
      [fn](const std::pair<K, V>& kv) { return std::make_pair(kv.first, fn(kv.second)); },
      std::move(name));
}

}  // namespace flint

#endif  // SRC_ENGINE_TYPED_RDD_H_
