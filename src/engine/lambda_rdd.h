// The single concrete Rdd used by the typed API: its Compute delegates to a
// closure built by the templated transformation constructors in typed_rdd.h.
// This keeps the engine core (scheduler, block/shuffle managers) entirely
// non-templated.

#ifndef SRC_ENGINE_LAMBDA_RDD_H_
#define SRC_ENGINE_LAMBDA_RDD_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/engine/rdd.h"

namespace flint {

class LambdaRdd final : public Rdd {
 public:
  using ComputeFn = std::function<Result<PartitionPtr>(int index, TaskContext& tc)>;

  LambdaRdd(FlintContext* ctx, std::string name, int num_partitions,
            std::vector<Dependency> deps, ComputeFn fn)
      : Rdd(ctx, std::move(name), num_partitions, std::move(deps)), fn_(std::move(fn)) {}

  Result<PartitionPtr> Compute(int index, TaskContext& tc) const override {
    return fn_(index, tc);
  }

 private:
  ComputeFn fn_;
};

}  // namespace flint

#endif  // SRC_ENGINE_LAMBDA_RDD_H_
