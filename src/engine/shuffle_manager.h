// Shuffle output storage plus the map-output tracker. Map tasks register the
// reduce-side buckets they produced on their node; reduce-side computations
// fetch all buckets for their partition. Buckets live on the producing node's
// (simulated) local storage and vanish when that node is revoked — the
// consuming task then fails with kDataLoss and the scheduler re-runs the
// missing map tasks, exactly like Spark's FetchFailed path.

#ifndef SRC_ENGINE_SHUFFLE_MANAGER_H_
#define SRC_ENGINE_SHUFFLE_MANAGER_H_

#include <atomic>
#include <unordered_map>
#include <vector>

#include "src/cluster/cluster_manager.h"
#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/engine/partition.h"

namespace flint {

class ShuffleManager {
 public:
  // Declares a shuffle with M map partitions and R reduce partitions.
  void RegisterShuffle(int shuffle_id, int num_maps, int num_reduces);

  // Registers the buckets produced by map partition `map_part` on `node`.
  // `buckets` has one entry per reduce partition.
  void RegisterMapOutput(int shuffle_id, int map_part, NodeId node,
                         std::vector<PartitionPtr> buckets);

  // Map partitions whose output is currently missing (never produced, or
  // produced on a node that has since been revoked). Empty => complete.
  std::vector<int> MissingMaps(int shuffle_id) const;
  bool IsComplete(int shuffle_id) const;

  // Gathers bucket `reduce_part` from every map output. Fails with kDataLoss
  // if any map output is missing. A registered 0-map shuffle yields an empty
  // bucket list (complete by definition).
  Result<std::vector<PartitionPtr>> Fetch(int shuffle_id, int reduce_part) const;

  // One producer's contribution to a reduce partition: the bucket plus the
  // node whose link the transfer is charged against.
  struct FetchedBucket {
    NodeId node = -1;
    PartitionPtr bucket;
  };
  // Like Fetch, but keeps each bucket paired with its producing node so the
  // consumer can charge transfer time per link (TaskContext::FetchShuffle).
  Result<std::vector<FetchedBucket>> FetchDetailed(int shuffle_id, int reduce_part) const;

  // Drops every output of `shuffle_id` stored on `node`, as if the node's
  // local shuffle storage vanished. The fetch path uses this to force the
  // scheduler's recompute fallback when a producer's link is persistently
  // too slow to serve its buckets. Returns the number of outputs dropped.
  size_t DropNodeOutputs(int shuffle_id, NodeId node);

  // Fetch calls that failed because outputs were missing (the consumer has
  // to wait for a re-run); exported as flint_shuffle_fetch_waits.
  uint64_t FetchWaits() const { return fetch_waits_.load(std::memory_order_relaxed); }

  // Map outputs registered (re-registrations after a revocation included)
  // and their cumulative bucket bytes; exported as
  // flint_shuffle_map_outputs / flint_shuffle_registered_bytes.
  uint64_t MapOutputsRegistered() const {
    return map_outputs_registered_.load(std::memory_order_relaxed);
  }
  uint64_t RegisteredBytes() const {
    return registered_bytes_.load(std::memory_order_relaxed);
  }

  // Number of registered shuffles currently tracked.
  size_t NumShuffles() const;

  // Drops every bucket stored on `node`.
  void OnNodeRevoked(NodeId node);

  // Total bytes of live shuffle output (for diagnostics and memory models).
  uint64_t TotalBytes() const;

  // Bytes of the `last_n` most recently registered shuffles — the "live"
  // shuffle state a systems-level snapshot must persist (older shuffles'
  // outputs are dead weight kept only for potential recovery).
  uint64_t RecentShuffleBytes(int last_n) const;

  // Removes all state for a shuffle (job teardown).
  void RemoveShuffle(int shuffle_id);

 private:
  struct MapOutput {
    NodeId node = -1;
    bool present = false;
    std::vector<PartitionPtr> buckets;
  };
  struct ShuffleState {
    // Explicit registration flag: outputs.empty() is NOT a usable sentinel
    // because a 0-map shuffle legitimately has no outputs.
    bool registered = false;
    int num_maps = 0;
    int num_reduces = 0;
    std::vector<MapOutput> outputs;  // indexed by map partition
  };

  mutable Mutex mutex_{"ShuffleManager::mutex_"};
  std::unordered_map<int, ShuffleState> shuffles_ GUARDED_BY(mutex_);
  mutable std::atomic<uint64_t> fetch_waits_{0};
  std::atomic<uint64_t> map_outputs_registered_{0};
  std::atomic<uint64_t> registered_bytes_{0};
};

}  // namespace flint

#endif  // SRC_ENGINE_SHUFFLE_MANAGER_H_
