// Observation points the engine exposes to Flint's policy layers. The
// fault-tolerance manager (checkpoint/) and the node manager (select/, core/)
// subscribe here rather than being compiled into the engine.

#ifndef SRC_ENGINE_OBSERVER_H_
#define SRC_ENGINE_OBSERVER_H_

#include "src/cluster/cluster_manager.h"
#include "src/engine/rdd.h"

namespace flint {

// Precise execution points the engine exposes to a fault-injection probe
// (src/inject/). The probe is called synchronously on the thread reaching
// the point, so scripted faults (e.g. revoke every node) land exactly there
// and the engine observes the loss deterministically.
enum class EnginePoint {
  kSchedulerRound,            // top of every stage retry round
  kBeforeShuffleMapDispatch,  // shuffle stage: about to submit a round of map tasks
  kShuffleMapTaskRun,         // executor: a shuffle map task started
  kShuffleMapTaskDone,        // executor: a map output was registered
  kCheckpointWrite,           // a checkpoint write is about to reach the DFS
  kDfsPut,                    // storage: a Put is about to execute (via DfsFaultHook)
  kDfsGet,                    // storage: a Get is about to execute (via DfsFaultHook)
};
inline constexpr size_t kEnginePointCount = 7;

// Implemented by the fault injector. May be called concurrently from the
// scheduler, executor, and checkpoint threads; must be thread-safe and must
// not call back into the engine context (cluster-level operations are fine).
class EngineProbe {
 public:
  virtual ~EngineProbe() = default;
  virtual void AtPoint(EnginePoint point) = 0;
};

// All callbacks may fire on executor or timer threads; implementations must
// be thread-safe and quick.
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;

  virtual void OnRddCreated(const RddPtr& rdd) { (void)rdd; }
  // Every partition of `rdd` has been computed at least once.
  virtual void OnRddMaterialized(const RddPtr& rdd) { (void)rdd; }
  // One partition finished computing (compute_seconds excludes input fetch).
  virtual void OnPartitionComputed(const RddPtr& rdd, int partition, double compute_seconds) {
    (void)rdd;
    (void)partition;
    (void)compute_seconds;
  }
  // A checkpoint write for (rdd, partition) completed durably.
  virtual void OnCheckpointWritten(const RddPtr& rdd, int partition, uint64_t bytes,
                                   double write_seconds) {
    (void)rdd;
    (void)partition;
    (void)bytes;
    (void)write_seconds;
  }
  // A checkpoint write for (rdd, partition) exhausted its retry budget and
  // was abandoned. The fault-tolerance manager uses a run of these to enter
  // degraded mode instead of wedging on a dead store.
  virtual void OnCheckpointWriteFailed(const RddPtr& rdd, int partition, const Status& status) {
    (void)rdd;
    (void)partition;
    (void)status;
  }
  virtual void OnNodeAdded(const NodeInfo& node) { (void)node; }
  virtual void OnNodeWarning(const NodeInfo& node) { (void)node; }
  virtual void OnNodeRevoked(const NodeInfo& node) { (void)node; }

 protected:
  EngineObserver() = default;
};

}  // namespace flint

#endif  // SRC_ENGINE_OBSERVER_H_
