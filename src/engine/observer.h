// Observation points the engine exposes to Flint's policy layers. The
// fault-tolerance manager (checkpoint/) and the node manager (select/, core/)
// subscribe here rather than being compiled into the engine.

#ifndef SRC_ENGINE_OBSERVER_H_
#define SRC_ENGINE_OBSERVER_H_

#include "src/cluster/cluster_manager.h"
#include "src/engine/rdd.h"

namespace flint {

// Precise execution points the engine exposes to a fault-injection probe
// (src/inject/). The probe is called synchronously on the thread reaching
// the point, so scripted faults (e.g. revoke every node) land exactly there
// and the engine observes the loss deterministically.
enum class EnginePoint {
  kSchedulerRound,            // top of every stage retry round
  kBeforeShuffleMapDispatch,  // shuffle stage: about to submit a round of map tasks
  kShuffleMapTaskRun,         // executor: a shuffle map task started
  kShuffleMapTaskDone,        // executor: a map output was registered
  kCheckpointWrite,           // a checkpoint write is about to reach the DFS
  kDfsPut,                    // storage: a Put is about to execute (via DfsFaultHook)
  kDfsGet,                    // storage: a Get is about to execute (via DfsFaultHook)
  kTaskRun,                   // executor: any task attempt started (via OnTaskRun)
  kShuffleFetch,              // reduce side: about to pull one producer's bucket
};
inline constexpr size_t kEnginePointCount = 9;

// Identity of one task attempt, handed to the probe as it starts executing.
struct TaskRunInfo {
  NodeId node = -1;
  int rdd_id = -1;     // result-stage tasks; -1 for shuffle map tasks
  int shuffle_id = -1; // shuffle map tasks; -1 for result-stage tasks
  int partition = -1;  // partition (result) or map partition (shuffle)
  int attempt = 0;     // 0 = first attempt, >0 = retry or speculative duplicate
};

// What the probe wants done to the attempt that just started. The engine
// enforces the directive cooperatively: a hang parks the attempt until its
// cancellation token fires, a slowdown stretches the attempt's compute time,
// and a failure aborts the attempt with the given status. All three model
// degraded-but-alive nodes (throttled I/O, contended cores, hung executors)
// as opposed to the binary revocation faults.
struct TaskFaultDirective {
  double slow_factor = 1.0;  // stretch compute by this factor (>= 1)
  bool hang = false;         // never complete; park until cancelled
  Status fail;               // when non-OK, fail the attempt with this status
};

// Identity of one shuffle-fetch pull: `node` is the consuming (reduce-side)
// node, `producer` the node whose map output is being pulled over its link.
struct ShuffleFetchInfo {
  NodeId node = -1;      // consumer running the reduce-side task
  NodeId producer = -1;  // node whose link the transfer is charged against
  int shuffle_id = -1;
  int reduce_part = -1;
  uint64_t bytes = 0;    // transfer size for this producer's bucket
};

// What the probe wants done to the fetch that is about to run. A slow link
// divides the producing node's modelled bandwidth, and a failure aborts the
// pull with the given status (forcing the retry/recompute fallback path).
struct FetchFaultDirective {
  double slow_factor = 1.0;  // divide the producer's link bandwidth (>= 1)
  Status fail;               // when non-OK, fail this pull with this status
};

// Implemented by the fault injector. May be called concurrently from the
// scheduler, executor, and checkpoint threads; must be thread-safe and must
// not call back into the engine context (cluster-level operations are fine).
class EngineProbe {
 public:
  virtual ~EngineProbe() = default;
  virtual void AtPoint(EnginePoint point) = 0;
  // Called as a task attempt starts; counts as a kTaskRun arrival for plan
  // triggers. The default directive is benign.
  virtual TaskFaultDirective OnTaskRun(const TaskRunInfo& info) {
    (void)info;
    return TaskFaultDirective{};
  }
  // Called as a reduce-side task pulls one producer's bucket; counts as a
  // kShuffleFetch arrival for plan triggers. The default directive is benign.
  virtual FetchFaultDirective OnShuffleFetch(const ShuffleFetchInfo& info) {
    (void)info;
    return FetchFaultDirective{};
  }
};

// All callbacks may fire on executor or timer threads; implementations must
// be thread-safe and quick.
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;

  virtual void OnRddCreated(const RddPtr& rdd) { (void)rdd; }
  // Every partition of `rdd` has been computed at least once.
  virtual void OnRddMaterialized(const RddPtr& rdd) { (void)rdd; }
  // One partition finished computing (compute_seconds excludes input fetch).
  virtual void OnPartitionComputed(const RddPtr& rdd, int partition, double compute_seconds) {
    (void)rdd;
    (void)partition;
    (void)compute_seconds;
  }
  // A checkpoint write for (rdd, partition) completed durably.
  virtual void OnCheckpointWritten(const RddPtr& rdd, int partition, uint64_t bytes,
                                   double write_seconds) {
    (void)rdd;
    (void)partition;
    (void)bytes;
    (void)write_seconds;
  }
  // A checkpoint write for (rdd, partition) exhausted its retry budget and
  // was abandoned. The fault-tolerance manager uses a run of these to enter
  // degraded mode instead of wedging on a dead store.
  virtual void OnCheckpointWriteFailed(const RddPtr& rdd, int partition, const Status& status) {
    (void)rdd;
    (void)partition;
    (void)status;
  }
  virtual void OnNodeAdded(const NodeInfo& node) { (void)node; }
  virtual void OnNodeWarning(const NodeInfo& node) { (void)node; }
  virtual void OnNodeRevoked(const NodeInfo& node) { (void)node; }

  // --- straggler telemetry (feeds the node-health scorer) ---
  // One task attempt finished on `node`. `success` is true only for attempts
  // that produced a usable result; cancelled speculative losers and attempts
  // that died with their node are not reported.
  virtual void OnTaskAttemptFinished(NodeId node, double seconds, bool success) {
    (void)node;
    (void)seconds;
    (void)success;
  }
  // An attempt on `node` blew through its speculation deadline (the scheduler
  // launched, or tried to launch, a duplicate elsewhere).
  virtual void OnTaskDeadlineMiss(NodeId node) { (void)node; }
  // A shuffle pull over `node`'s link was classified. `throughput_ratio` is
  // observed bytes/s over the node's modelled capacity (clamped to [0,1]);
  // `slow` marks pulls that blew the fetch timeout. Feeds the same health
  // EWMA as compute samples so a network-sick node quarantines too.
  virtual void OnLinkSample(NodeId node, double throughput_ratio, bool slow) {
    (void)node;
    (void)throughput_ratio;
    (void)slow;
  }

 protected:
  EngineObserver() = default;
};

}  // namespace flint

#endif  // SRC_ENGINE_OBSERVER_H_
