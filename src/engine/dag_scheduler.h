// DAG scheduler: cuts the lineage graph into stages at shuffle boundaries,
// runs shuffle-map stages bottom-up, then the result stage, and handles the
// failure classes transient servers produce:
//   - kUnavailable (node revoked): the task's node died mid-flight -> a free
//     re-dispatch on a surviving node;
//   - kDataLoss: a shuffle input vanished with a revoked node -> re-run the
//     producing map stage (recursively), then retry;
//   - everything else: retried with exponential backoff up to the per-task
//     attempt budget, then surfaced as the stage's Status;
//   - stragglers (slow, hung, or flaky nodes): per-task deadlines derived
//     from streaming runtime quantiles launch speculative duplicate attempts
//     on a different node; the first success wins and losers are cancelled
//     cooperatively (SpeculationConfig in context.h).
// When every node is gone (the paper's whole-cluster revocation in batch
// mode), the scheduler parks until the node manager supplies replacements.
// A configurable stage watchdog bounds every stage's wall-clock time so a
// cluster-wide hang becomes a clean kDeadlineExceeded instead of a wedge.

#ifndef SRC_ENGINE_DAG_SCHEDULER_H_
#define SRC_ENGINE_DAG_SCHEDULER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/engine/rdd.h"
#include "src/engine/task_context.h"

namespace flint {

class FlintContext;
struct NodeState;
class OutcomeQueue;  // defined in dag_scheduler.cc

// Stamped by the executor at the moment an attempt actually begins running
// (steady-clock ticks since epoch; 0 = still queued). Shared between the
// stage loop and the task lambda so deadlines measure execution time, not
// queue wait.
using ExecStartStamp = std::shared_ptr<std::atomic<int64_t>>;

// Smooth weighted round-robin (nginx-style): adds each weight to its credit,
// picks the highest credit (first on ties), and charges the winner the total
// weight. With equal weights this is exact round-robin;
// with unequal weights each index is chosen in proportion to its weight,
// evenly interleaved. `credits` is updated in place. Exposed for unit tests;
// PickNode persists credits on NodeState.
size_t SwrrPick(const std::vector<double>& weights, std::vector<double>& credits);

class DagScheduler {
 public:
  explicit DagScheduler(FlintContext* ctx) : ctx_(ctx) {}

  // Computes all partitions of `rdd`, in order. Serialized by the caller.
  Result<std::vector<PartitionPtr>> Materialize(const RddPtr& rdd);

  // Computes only the listed partitions (each in range, no duplicates),
  // returning them in the order given. Materialize delegates here with the
  // full 0..n-1 range; Take drives it incrementally.
  Result<std::vector<PartitionPtr>> MaterializePartitions(const RddPtr& rdd,
                                                          const std::vector<int>& partitions);

  // Outcome of one dispatched task attempt (public so the completion queue
  // in the implementation file can carry it).
  struct TaskOutcome {
    uint64_t attempt_id = 0;      // which attempt produced this outcome
    int index = -1;               // partition (result stage) or map partition
    Status status;                // outcome
    int failed_shuffle = -1;      // set when status is kDataLoss
    PartitionPtr data;            // result-stage payload
  };

 private:
  // Both stage kinds (shuffle-map and result) run through one retry loop so
  // their park/retry/speculation behaviour cannot drift. Each cycle submits
  // one attempt for every missing slot that has none outstanding, parks on
  // WaitForLiveNode when the cluster has nothing schedulable, then consumes
  // outcomes while enforcing per-attempt speculation deadlines and the
  // stage watchdog. Stage kinds plug in via the callbacks; slot ids are
  // stable within one RunStageLoop call (map partition for shuffle stages,
  // request index for result stages).
  struct StageLoopSpec {
    const char* what = "stage";  // stage kind for error messages and traces
    int max_stalled_rounds = 0;  // progress-free dispatch rounds before giving up
    int recovery_depth = 0;      // recursion depth for RecoverShuffle
    std::function<bool()> complete;
    std::function<Status()> prepare;  // runs before each dispatch sweep
    // Slots still missing a usable result, in dispatch order.
    std::function<std::vector<int>()> missing;
    // Node choice for `slot`, skipping `exclude` (speculative duplicates must
    // land elsewhere; -1 excludes nothing). nullptr = nothing schedulable.
    std::function<std::shared_ptr<NodeState>(int slot, NodeId exclude)> pick;
    // Submits one attempt; false if the node's pool rejected it. The task
    // must stamp `exec_start` the moment it begins executing and push exactly
    // one TaskOutcome carrying `attempt_id` to `outcomes`.
    std::function<bool(int slot, const std::shared_ptr<NodeState>& node,
                       const CancelToken& cancel, uint64_t attempt_id, int attempt_number,
                       const ExecStartStamp& exec_start,
                       const std::shared_ptr<OutcomeQueue>& outcomes)>
        submit;
    // Consumes one winning outcome; returns true if it made new progress.
    std::function<bool(TaskOutcome&&)> on_success;
  };
  Status RunStageLoop(const StageLoopSpec& spec);

  // Runs all shuffle-map stages `rdd` transitively needs.
  Status EnsureShuffleDeps(const RddPtr& rdd, int depth);
  // Brings one shuffle to completion (all map outputs registered).
  Status RunShuffleStage(const std::shared_ptr<ShuffleInfo>& shuffle, int depth);
  // Re-runs the producing stage of a shuffle after a fetch failure.
  Status RecoverShuffle(int shuffle_id, int depth);

  // Picks an execution node for (rdd, partition) among nodes accepting new
  // tasks, preferring cache locality and skipping `exclude`. Returns nullptr
  // when no such node exists — the caller's stage loop parks, never this
  // function.
  std::shared_ptr<NodeState> PickNode(const RddPtr& rdd, int partition, NodeId exclude = -1);

  FlintContext* ctx_;
  static constexpr int kMaxRecoveryDepth = 64;

  // Service-time distribution of the most recently completed stage
  // (SpeculationConfig::seed_from_previous_stage): a new stage arms its
  // speculation deadlines from this before its own quantile reaches quorum.
  // Only touched by the scheduler thread (jobs are serialized by
  // FlintContext::job_mutex_; nested stage loops run on the same thread).
  double carried_p50_ = 0.0;
  double carried_p95_ = 0.0;
  size_t carried_count_ = 0;
};

}  // namespace flint

#endif  // SRC_ENGINE_DAG_SCHEDULER_H_
