// DAG scheduler: cuts the lineage graph into stages at shuffle boundaries,
// runs shuffle-map stages bottom-up, then the result stage, and handles the
// two failure classes transient servers produce:
//   - kUnavailable: the task's node was revoked mid-flight -> re-dispatch;
//   - kDataLoss:    a shuffle input vanished with a revoked node -> re-run
//                   the producing map stage (recursively), then retry.
// When every node is gone (the paper's whole-cluster revocation in batch
// mode), the scheduler parks until the node manager supplies replacements.

#ifndef SRC_ENGINE_DAG_SCHEDULER_H_
#define SRC_ENGINE_DAG_SCHEDULER_H_

#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/engine/rdd.h"

namespace flint {

class FlintContext;
struct NodeState;

class DagScheduler {
 public:
  explicit DagScheduler(FlintContext* ctx) : ctx_(ctx) {}

  // Computes all partitions of `rdd`, in order. Serialized by the caller.
  Result<std::vector<PartitionPtr>> Materialize(const RddPtr& rdd);

  // Outcome of one dispatched task (public so the completion queue in the
  // implementation file can carry it).
  struct TaskOutcome {
    int index = -1;               // partition (result stage) or map partition
    Status status;                // outcome
    int failed_shuffle = -1;      // set when status is kDataLoss
    PartitionPtr data;            // result-stage payload
  };

 private:

  // Runs all shuffle-map stages `rdd` transitively needs.
  Status EnsureShuffleDeps(const RddPtr& rdd, int depth);
  // Brings one shuffle to completion (all map outputs registered).
  Status RunShuffleStage(const std::shared_ptr<ShuffleInfo>& shuffle, int depth);
  // Re-runs the producing stage of a shuffle after a fetch failure.
  Status RecoverShuffle(int shuffle_id, int depth);

  // Picks an execution node for (rdd, partition), preferring cache locality;
  // blocks while the cluster is empty. Returns nullptr only on shutdown.
  std::shared_ptr<NodeState> PickNode(const RddPtr& rdd, int partition);

  FlintContext* ctx_;
  static constexpr int kMaxRecoveryDepth = 64;
};

}  // namespace flint

#endif  // SRC_ENGINE_DAG_SCHEDULER_H_
