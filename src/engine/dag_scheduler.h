// DAG scheduler: cuts the lineage graph into stages at shuffle boundaries,
// runs shuffle-map stages bottom-up, then the result stage, and handles the
// two failure classes transient servers produce:
//   - kUnavailable: the task's node was revoked mid-flight -> re-dispatch;
//   - kDataLoss:    a shuffle input vanished with a revoked node -> re-run
//                   the producing map stage (recursively), then retry.
// When every node is gone (the paper's whole-cluster revocation in batch
// mode), the scheduler parks until the node manager supplies replacements.

#ifndef SRC_ENGINE_DAG_SCHEDULER_H_
#define SRC_ENGINE_DAG_SCHEDULER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/engine/rdd.h"

namespace flint {

class FlintContext;
struct NodeState;
class OutcomeQueue;  // defined in dag_scheduler.cc

class DagScheduler {
 public:
  explicit DagScheduler(FlintContext* ctx) : ctx_(ctx) {}

  // Computes all partitions of `rdd`, in order. Serialized by the caller.
  Result<std::vector<PartitionPtr>> Materialize(const RddPtr& rdd);

  // Computes only the listed partitions (each in range, no duplicates),
  // returning them in the order given. Materialize delegates here with the
  // full 0..n-1 range; Take drives it incrementally.
  Result<std::vector<PartitionPtr>> MaterializePartitions(const RddPtr& rdd,
                                                          const std::vector<int>& partitions);

  // Outcome of one dispatched task (public so the completion queue in the
  // implementation file can carry it).
  struct TaskOutcome {
    int index = -1;               // partition (result stage) or map partition
    Status status;                // outcome
    int failed_shuffle = -1;      // set when status is kDataLoss
    PartitionPtr data;            // result-stage payload
  };

 private:
  // Both stage kinds (shuffle-map and result) run through one retry loop so
  // their park/retry/backoff behaviour cannot drift: each round dispatches
  // whatever work is still missing, parks on WaitForLiveNode when every
  // submission was rejected (the whole cluster revoked or draining between
  // PickNode and Submit — the revocation-storm case), classifies outcomes
  // (kUnavailable -> re-dispatch, kDataLoss -> recover the producing
  // shuffle, anything else -> fatal), and gives up only after
  // `max_stalled_rounds` consecutive rounds without progress. Parked rounds
  // never count against convergence, and progress-free rounds back off
  // exponentially so the loop cannot busy-spin.
  struct StageLoopSpec {
    const char* what = "stage";  // stage kind for the non-convergence error
    int max_stalled_rounds = 0;  // progress-free dispatch rounds before giving up
    int recovery_depth = 0;      // recursion depth for RecoverShuffle
    std::function<bool()> complete;
    std::function<Status()> prepare;                // runs before each dispatch round
    std::function<size_t(OutcomeQueue&)> dispatch;  // submits missing work
    // Consumes one successful outcome; returns true if it made new progress.
    std::function<bool(TaskOutcome&&)> on_success;
  };
  Status RunStageLoop(const StageLoopSpec& spec);

  // Runs all shuffle-map stages `rdd` transitively needs.
  Status EnsureShuffleDeps(const RddPtr& rdd, int depth);
  // Brings one shuffle to completion (all map outputs registered).
  Status RunShuffleStage(const std::shared_ptr<ShuffleInfo>& shuffle, int depth);
  // Re-runs the producing stage of a shuffle after a fetch failure.
  Status RecoverShuffle(int shuffle_id, int depth);

  // Picks an execution node for (rdd, partition) among nodes accepting new
  // tasks, preferring cache locality. Returns nullptr when no such node
  // exists — the caller's stage loop parks, never this function.
  std::shared_ptr<NodeState> PickNode(const RddPtr& rdd, int partition);

  FlintContext* ctx_;
  static constexpr int kMaxRecoveryDepth = 64;
};

}  // namespace flint

#endif  // SRC_ENGINE_DAG_SCHEDULER_H_
