// Per-record memory accounting for partitions. The block manager's budgets
// and the checkpoint-size estimator both rely on RecordBytes(); types with
// out-of-line storage overload it here.

#ifndef SRC_ENGINE_RECORD_SIZE_H_
#define SRC_ENGINE_RECORD_SIZE_H_

#include <cstdint>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace flint {

template <typename T>
uint64_t RecordBytes(const T&) {
  return sizeof(T);
}

inline uint64_t RecordBytes(const std::string& s) { return sizeof(std::string) + s.capacity(); }

template <typename T>
uint64_t RecordBytes(const std::vector<T>& v) {
  uint64_t total = sizeof(std::vector<T>);
  for (const auto& x : v) {
    total += RecordBytes(x);
  }
  return total;
}

template <typename A, typename B>
uint64_t RecordBytes(const std::pair<A, B>& p) {
  return RecordBytes(p.first) + RecordBytes(p.second);
}

template <typename... Ts>
uint64_t RecordBytes(const std::tuple<Ts...>& t) {
  uint64_t total = 0;
  std::apply([&](const auto&... xs) { ((total += RecordBytes(xs)), ...); }, t);
  return total;
}

}  // namespace flint

#endif  // SRC_ENGINE_RECORD_SIZE_H_
