// TaskContext: the per-task handle through which RDD computations fetch their
// inputs. It implements the full materialization order Spark uses: cluster
// cache, then saved checkpoint, then recursive recomputation from lineage.

#ifndef SRC_ENGINE_TASK_CONTEXT_H_
#define SRC_ENGINE_TASK_CONTEXT_H_

#include <atomic>
#include <memory>

#include "src/common/status.h"
#include "src/engine/context.h"
#include "src/engine/rdd.h"

namespace flint {

// Attempt-scoped cancellation flag. The scheduler hands one to every task
// attempt it launches; cancelling the token (losing speculative duplicate,
// watchdog abort) asks the attempt to stop at its next Cancelled() poll.
using CancelToken = std::shared_ptr<std::atomic<bool>>;

inline CancelToken MakeCancelToken() { return std::make_shared<std::atomic<bool>>(false); }

class TaskContext {
 public:
  TaskContext(FlintContext* ctx, std::shared_ptr<NodeState> node,
              CancelToken cancel = nullptr)
      : ctx_(ctx), node_(std::move(node)), cancel_(std::move(cancel)) {}

  // Materializes (rdd, partition): cache -> checkpoint -> recursive compute.
  // On success the partition is cached if the RDD requests caching, and an
  // asynchronous checkpoint write is enqueued if the RDD is marked.
  Result<PartitionPtr> GetPartition(const RddPtr& rdd, int partition);

  // Gathers all map-output buckets of `shuffle_id` for `reduce_part`,
  // charging each remote bucket's transfer time against the PRODUCING node's
  // link (bytes / (capacity / injected slow_factor)) when latency modelling
  // is on. A pull whose modelled transfer would blow the fetch timeout
  // (derived from the stage's P2 quantiles, see EngineConfig) is abandoned,
  // classified link-slow (feeding the producer's health EWMA), and retried
  // with exponential backoff; an exhausted retry budget drops the slow
  // producer's outputs and returns kDataLoss so the scheduler recomputes
  // them on a healthy node. On kDataLoss, failed_shuffle() reports which
  // shuffle must be re-run.
  Result<std::vector<PartitionPtr>> FetchShuffle(int shuffle_id, int reduce_part);

  // Runs the map side of one shuffle task: produces the reduce-side buckets
  // of (map_rdd, partition) through `info`'s bucket sink. When the map RDD
  // is a streaming operator nothing else needs (uncached, unmarked, sole
  // consumer is the shuffle) and shuffle fusion is on, the narrow chain
  // above it streams directly into the sink and the map-side partition is
  // never materialized; otherwise the partition materializes through
  // GetPartition and its rows are driven through the same sink. Both paths
  // push identical rows in identical order, so the buckets are
  // bit-identical by construction.
  Result<std::vector<PartitionPtr>> ComputeShuffleBuckets(const RddPtr& map_rdd, int partition,
                                                          const ShuffleInfo& info);

  // True once this task's node has been revoked or its attempt cancelled
  // (speculative loser, watchdog abort); computations poll this at partition
  // boundaries and abort with kUnavailable.
  bool Cancelled() const {
    return node_->revoked.load(std::memory_order_acquire) ||
           (cancel_ != nullptr && cancel_->load(std::memory_order_acquire));
  }

  FlintContext& context() { return *ctx_; }
  NodeId node_id() const { return node_->info.node_id; }
  const std::shared_ptr<NodeState>& node() const { return node_; }
  int failed_shuffle() const { return failed_shuffle_; }

 private:
  FlintContext* ctx_;
  std::shared_ptr<NodeState> node_;
  CancelToken cancel_;
  int failed_shuffle_ = -1;

  // Per-fetch timeout in seconds: max(fetch_timeout_min_seconds,
  // fetch_timeout_multiplier x stage P95). 0 = no timeout (quantiles not
  // armed yet, or timeouts disabled).
  double FetchTimeoutSeconds() const;

  // Charges one remote bucket transfer against `producer`'s link. Returns
  // kDeadlineExceeded when the modelled transfer blows `timeout_seconds`
  // (after waiting out the timeout), kUnavailable when cancelled
  // mid-transfer, OK otherwise.
  Status ChargeLinkTransfer(NodeId producer, uint64_t bytes, double slow_factor,
                            double timeout_seconds, int shuffle_id, int reduce_part);

  // Step 3 of GetPartition: recompute (rdd, partition) from lineage. When
  // `rdd` heads a chain of streaming one-to-one operators whose intermediates
  // are uncached, unmarked, and single-consumer, the whole chain runs as one
  // fused task streaming records through composed sinks (fusion.h); otherwise
  // falls back to rdd->Compute. Fusion breaks at cache, checkpoint, shuffle,
  // and multi-consumer boundaries, where the regular materialization order
  // (cache -> checkpoint -> recursion) takes over for the barrier input.
  Result<PartitionPtr> ComputeFromLineage(const RddPtr& rdd, int partition);
};

}  // namespace flint

#endif  // SRC_ENGINE_TASK_CONTEXT_H_
