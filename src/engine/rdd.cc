#include "src/engine/rdd.h"

#include <unordered_set>

#include "src/dfs/manifest.h"
#include "src/engine/context.h"

namespace flint {

Rdd::Rdd(FlintContext* ctx, std::string name, int num_partitions, std::vector<Dependency> deps)
    : ctx_(ctx),
      id_(ctx->NextRddId()),
      name_(std::move(name)),
      num_partitions_(num_partitions),
      deps_(std::move(deps)) {
  for (const auto& dep : deps_) {
    if (dep.parent != nullptr) {
      dep.parent->consumers_.fetch_add(1, std::memory_order_acq_rel);
    }
  }
}

Rdd::~Rdd() {
  for (const auto& dep : deps_) {
    if (dep.parent != nullptr) {
      dep.parent->consumers_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
}

bool Rdd::is_shuffle_output() const {
  for (const auto& dep : deps_) {
    if (dep.type == DepType::kShuffle) {
      return true;
    }
  }
  return false;
}

bool Rdd::MarkForCheckpoint() {
  CheckpointState expected = CheckpointState::kNone;
  return state_.compare_exchange_strong(expected, CheckpointState::kMarked,
                                        std::memory_order_acq_rel);
}

void Rdd::SetCheckpointSaved() {
  state_.store(CheckpointState::kSaved, std::memory_order_release);
}

void Rdd::ResetCheckpoint() { state_.store(CheckpointState::kNone, std::memory_order_release); }

std::string Rdd::CheckpointDir() const { return "ckpt/rdd_" + std::to_string(id_) + "/"; }

std::string Rdd::CheckpointPath(int partition) const {
  return CheckpointDir() + "part_" + std::to_string(partition);
}

std::string Rdd::ManifestPath() const { return ManifestPathFor(CheckpointDir()); }

namespace {

void CollectShuffleDepsRec(const RddPtr& rdd, std::unordered_set<int>& seen_rdds,
                           std::vector<std::shared_ptr<ShuffleInfo>>& out) {
  if (rdd == nullptr || !seen_rdds.insert(rdd->id()).second) {
    return;
  }
  // Lineage is truncated at saved checkpoints and at RDDs whose partitions
  // are all available in the cluster cache: nothing below them is computed.
  FlintContext* ctx = rdd->context();
  for (const auto& dep : rdd->deps()) {
    if (dep.type == DepType::kShuffle) {
      out.push_back(dep.shuffle);
    } else if (dep.parent != nullptr) {
      if (dep.parent->checkpoint_state() == CheckpointState::kSaved ||
          ctx->AllPartitionsAvailable(dep.parent)) {
        continue;
      }
      CollectShuffleDepsRec(dep.parent, seen_rdds, out);
    }
  }
}

}  // namespace

std::vector<std::shared_ptr<ShuffleInfo>> CollectDirectShuffleDeps(const RddPtr& rdd) {
  std::vector<std::shared_ptr<ShuffleInfo>> out;
  std::unordered_set<int> seen;
  if (rdd == nullptr) {
    return out;
  }
  if (rdd->checkpoint_state() == CheckpointState::kSaved ||
      rdd->context()->AllPartitionsAvailable(rdd)) {
    return out;
  }
  CollectShuffleDepsRec(rdd, seen, out);
  return out;
}

}  // namespace flint
