// Narrow-chain operator fusion: the record-streaming execution surface.
//
// A chain of kNarrowOneToOne operators (Map -> Map -> Filter ...) whose
// intermediate RDDs are neither cached, checkpoint-marked, nor multiply
// referenced does not need to materialize a VectorPartition per level: every
// level pays a full vector build plus a RecordBytes sizing pass plus the
// GetPartition bookkeeping, only for the next level to iterate it once and
// throw it away. Instead, TaskContext runs the whole chain as one fused task
// that streams the barrier input through the composed closures into a single
// output vector (see TaskContext::ComputeFromLineage and DESIGN.md
// "Execution hot path").
//
// Execution is batched, not tuple-at-a-time: records flow through
// TypedSink<T>::Push(const T*, size_t) in spans of kFusionBatchRows, so the
// virtual dispatch is paid once per batch while the per-record loops inline
// (the operator's functor is a template parameter of its sink) and the
// intermediate batch buffers stay cache-resident — a Volcano-style
// record-at-a-time Push was measurably slower than the materializing path it
// replaced. Each sink reuses one batch buffer for the whole partition, which
// is the memory the fusion elides: O(batch) per operator instead of O(rows).
//
// The engine core is type-erased, so fusion is too: each streaming operator
// attaches a FusionOps to its Rdd whose type knowledge lives inside
// std::function closures built by the typed API (typed_rdd.h), exactly like
// the Compute closures. The chain is torn down with exactly one Flush sweep
// so buffering operators (per-partition folds) can emit their pending
// output.

#ifndef SRC_ENGINE_FUSION_H_
#define SRC_ENGINE_FUSION_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/engine/partition.h"

namespace flint {

// Rows per Push batch. Large enough to amortize the per-batch virtual call
// to nothing, small enough that a stage's buffer (2048 * sizeof(record))
// stays in L1/L2 for typical record types.
inline constexpr size_t kFusionBatchRows = 2048;

// Type-erased record consumer. Concrete sinks are TypedSink<T>s; FusionSink
// exists so chains of differing record types compose behind one pointer.
class FusionSink {
 public:
  virtual ~FusionSink() = default;

  // End-of-stream. Operators that buffer (FoldSink) push their pending
  // output downstream here, then forward the Flush; pass-through operators
  // just forward it. Exactly one Flush traverses a fused chain, initiated by
  // the bottom operator's drive after the last input batch.
  virtual void Flush() {}
};

template <typename T>
class TypedSink : public FusionSink {
 public:
  // Consumes a batch of records. The span is only valid for the duration of
  // the call (it typically aliases the upstream sink's reused buffer).
  virtual void Push(const T* rec, size_t n) = 0;
};

// Debug-checked downcast, mirroring Rows<T>: the typed API guarantees the
// sink types line up, a mismatch is a programming error.
template <typename T>
TypedSink<T>& SinkAs(FusionSink& sink) {
  assert(dynamic_cast<TypedSink<T>*>(&sink) != nullptr && "fusion sink type mismatch");
  return static_cast<TypedSink<T>&>(sink);
}

// Collects the chain's final output rows; Finish() moves them into the
// task's result partition.
template <typename T>
class CollectTerminal final : public TypedSink<T> {
 public:
  void Push(const T* rec, size_t n) override { rows_.insert(rows_.end(), rec, rec + n); }
  PartitionPtr Finish() { return MakePartition(std::move(rows_)); }

 private:
  std::vector<T> rows_;
};

// Non-templated handle to a chain's terminal: the type-erased executor holds
// the sink and calls finish() once the stream has been flushed.
struct FusionTerminal {
  std::unique_ptr<FusionSink> sink;
  std::function<PartitionPtr()> finish;
};

// Terminal of a chain that feeds a shuffle (the wide-stage analogue of
// FusionTerminal): the sink consumes the map-side record stream and finish()
// emits the reduce-side buckets directly, so the map output partition is
// never materialized. Built by a ShuffleInfo's bucket-sink factory
// (typed_rdd.h); consumed by TaskContext::ComputeShuffleBuckets.
struct BucketTerminal {
  std::unique_ptr<FusionSink> sink;
  std::function<std::vector<PartitionPtr>()> finish;
  // Rows the sink consumed; read after the single Flush sweep (feeds the
  // flint_shuffle_rows_bucketed_* counters).
  std::function<uint64_t()> rows_in;
};

// The per-operator fusion surface, attached to an Rdd via set_fusion_ops().
// All three closures carry the operator's record types internally.
struct FusionOps {
  // Bottom of a chain: stream every record of `input` (the materialized
  // barrier partition) through this operator into `sink`, then Flush. The
  // partition index is passed for operators whose behaviour depends on it
  // (Sample's per-partition RNG seed).
  std::function<void(int index, const PartitionData& input, FusionSink& sink)> drive;
  // Middle/top of a chain: wrap `sink` (which consumes this operator's
  // outputs) into a sink consuming this operator's inputs.
  std::function<std::unique_ptr<FusionSink>(int index, FusionSink& sink)> adapt;
  // A terminal collecting this operator's output type.
  std::function<FusionTerminal()> make_terminal;
};

namespace fusion_internal {

template <typename In, typename Out, typename F>
class MapSink final : public TypedSink<In> {
 public:
  MapSink(F fn, TypedSink<Out>& down) : fn_(std::move(fn)), down_(down) {}
  void Push(const In* rec, size_t n) override {
    // resize + indexed writes keeps the loop vectorizable; fall back to
    // push_back for output types without a default constructor.
    if constexpr (std::is_default_constructible_v<Out>) {
      buffer_.resize(n);
      for (size_t i = 0; i < n; ++i) {
        buffer_[i] = fn_(rec[i]);
      }
    } else {
      buffer_.clear();
      buffer_.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        buffer_.push_back(fn_(rec[i]));
      }
    }
    down_.Push(buffer_.data(), buffer_.size());
  }
  void Flush() override { down_.Flush(); }

 private:
  F fn_;
  std::vector<Out> buffer_;
  TypedSink<Out>& down_;
};

template <typename T, typename F>
class FilterSink final : public TypedSink<T> {
 public:
  FilterSink(F pred, TypedSink<T>& down) : pred_(std::move(pred)), down_(down) {}
  void Push(const T* rec, size_t n) override {
    buffer_.clear();
    buffer_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (pred_(rec[i])) {
        buffer_.push_back(rec[i]);
      }
    }
    down_.Push(buffer_.data(), buffer_.size());
  }
  void Flush() override { down_.Flush(); }

 private:
  F pred_;
  std::vector<T> buffer_;
  TypedSink<T>& down_;
};

// F: const In& -> std::vector<Out>. Output batches can exceed
// kFusionBatchRows (one downstream Push per input batch, however much it
// exploded); that only grows this stage's buffer, not any partition.
template <typename In, typename Out, typename F>
class FlatMapSink final : public TypedSink<In> {
 public:
  FlatMapSink(F fn, TypedSink<Out>& down) : fn_(std::move(fn)), down_(down) {}
  void Push(const In* rec, size_t n) override {
    buffer_.clear();
    for (size_t i = 0; i < n; ++i) {
      for (Out& out : fn_(rec[i])) {
        buffer_.push_back(std::move(out));
      }
    }
    down_.Push(buffer_.data(), buffer_.size());
  }
  void Flush() override { down_.Flush(); }

 private:
  F fn_;
  std::vector<Out> buffer_;
  TypedSink<Out>& down_;
};

// Bernoulli sampling; the RNG is seeded from (seed, partition) and consumed
// in record order exactly like the unfused Sample closure, so fused and
// unfused runs are bit-identical.
template <typename T>
class SampleSink final : public TypedSink<T> {
 public:
  SampleSink(double fraction, uint64_t seed, int index, TypedSink<T>& down)
      : fraction_(fraction), rng_(seed * 2654435761ULL + static_cast<uint64_t>(index)),
        down_(down) {}
  void Push(const T* rec, size_t n) override {
    buffer_.clear();
    for (size_t i = 0; i < n; ++i) {
      if (rng_.Bernoulli(fraction_)) {
        buffer_.push_back(rec[i]);
      }
    }
    down_.Push(buffer_.data(), buffer_.size());
  }
  void Flush() override { down_.Flush(); }

 private:
  double fraction_;
  Rng rng_;
  std::vector<T> buffer_;
  TypedSink<T>& down_;
};

// Per-partition fold (the pushed-down Reduce): buffers the running
// accumulator and emits it (at most one record) on Flush. The fold is a
// strict left fold in record order, so non-commutative (but associative)
// functions see exactly the order the unfused path would.
template <typename T, typename F>
class FoldSink final : public TypedSink<T> {
 public:
  FoldSink(F fn, TypedSink<T>& down) : fn_(std::move(fn)), down_(down) {}
  void Push(const T* rec, size_t n) override {
    size_t i = 0;
    if (!acc_.has_value() && n > 0) {
      acc_.emplace(rec[0]);
      i = 1;
    }
    for (; i < n; ++i) {
      acc_ = fn_(*acc_, rec[i]);
    }
  }
  void Flush() override {
    if (acc_.has_value()) {
      down_.Push(&*acc_, 1);
    }
    down_.Flush();
  }

 private:
  F fn_;
  std::optional<T> acc_;
  TypedSink<T>& down_;
};

// drive is the same for every operator kind: wrap the downstream sink in this
// operator's own adapter, stream the barrier partition through it in
// kFusionBatchRows spans, Flush.
template <typename In>
std::function<void(int, const PartitionData&, FusionSink&)> MakeDrive(
    std::function<std::unique_ptr<FusionSink>(int, FusionSink&)> adapt) {
  return [adapt = std::move(adapt)](int index, const PartitionData& input, FusionSink& sink) {
    std::unique_ptr<FusionSink> op = adapt(index, sink);
    TypedSink<In>& in = SinkAs<In>(*op);
    const std::vector<In>& rows = Rows<In>(input);
    for (size_t off = 0; off < rows.size(); off += kFusionBatchRows) {
      in.Push(rows.data() + off, std::min(kFusionBatchRows, rows.size() - off));
    }
    op->Flush();
  };
}

template <typename Out>
std::function<FusionTerminal()> MakeCollectTerminalFactory() {
  return [] {
    auto term = std::make_unique<CollectTerminal<Out>>();
    CollectTerminal<Out>* raw = term.get();
    FusionTerminal t;
    t.sink = std::move(term);
    t.finish = [raw] { return raw->Finish(); };
    return t;
  };
}

template <typename In, typename Out, typename F>
std::shared_ptr<const FusionOps> MakeMapFusionOps(F fn) {
  auto ops = std::make_shared<FusionOps>();
  ops->adapt = [fn](int, FusionSink& sink) -> std::unique_ptr<FusionSink> {
    return std::make_unique<MapSink<In, Out, F>>(fn, SinkAs<Out>(sink));
  };
  ops->drive = MakeDrive<In>(ops->adapt);
  ops->make_terminal = MakeCollectTerminalFactory<Out>();
  return ops;
}

template <typename T, typename F>
std::shared_ptr<const FusionOps> MakeFilterFusionOps(F pred) {
  auto ops = std::make_shared<FusionOps>();
  ops->adapt = [pred](int, FusionSink& sink) -> std::unique_ptr<FusionSink> {
    return std::make_unique<FilterSink<T, F>>(pred, SinkAs<T>(sink));
  };
  ops->drive = MakeDrive<T>(ops->adapt);
  ops->make_terminal = MakeCollectTerminalFactory<T>();
  return ops;
}

template <typename In, typename Out, typename F>
std::shared_ptr<const FusionOps> MakeFlatMapFusionOps(F fn) {
  auto ops = std::make_shared<FusionOps>();
  ops->adapt = [fn](int, FusionSink& sink) -> std::unique_ptr<FusionSink> {
    return std::make_unique<FlatMapSink<In, Out, F>>(fn, SinkAs<Out>(sink));
  };
  ops->drive = MakeDrive<In>(ops->adapt);
  ops->make_terminal = MakeCollectTerminalFactory<Out>();
  return ops;
}

template <typename T>
std::shared_ptr<const FusionOps> MakeSampleFusionOps(double fraction, uint64_t seed) {
  auto ops = std::make_shared<FusionOps>();
  ops->adapt = [fraction, seed](int index, FusionSink& sink) -> std::unique_ptr<FusionSink> {
    return std::make_unique<SampleSink<T>>(fraction, seed, index, SinkAs<T>(sink));
  };
  ops->drive = MakeDrive<T>(ops->adapt);
  ops->make_terminal = MakeCollectTerminalFactory<T>();
  return ops;
}

template <typename T, typename F>
std::shared_ptr<const FusionOps> MakeFoldFusionOps(F fn) {
  auto ops = std::make_shared<FusionOps>();
  ops->adapt = [fn](int, FusionSink& sink) -> std::unique_ptr<FusionSink> {
    return std::make_unique<FoldSink<T, F>>(fn, SinkAs<T>(sink));
  };
  ops->drive = MakeDrive<T>(ops->adapt);
  ops->make_terminal = MakeCollectTerminalFactory<T>();
  return ops;
}

}  // namespace fusion_internal
}  // namespace flint

#endif  // SRC_ENGINE_FUSION_H_
