#include "src/engine/block_manager.h"

#include <algorithm>
#include <thread>

#include "src/common/units.h"

namespace flint {

BlockManager::BlockManager(BlockManagerConfig config) : config_(config) {
  const size_t n = static_cast<size_t>(std::max(1, config_.num_shards));
  shard_budget_bytes_ = config_.memory_budget_bytes / n;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void BlockManager::ChargeDisk(uint64_t bytes) const {
  if (!config_.model_latency || config_.disk_bandwidth_bytes_per_s <= 0.0) {
    return;
  }
  std::this_thread::sleep_for(
      WallDuration(static_cast<double>(bytes) / config_.disk_bandwidth_bytes_per_s));
}

std::vector<BlockEviction> BlockManager::Put(const BlockKey& key, PartitionPtr data,
                                             bool* stored) {
  std::vector<BlockEviction> evictions;
  const uint64_t size = data->SizeBytes();
  uint64_t spill_bytes = 0;
  Shard& shard = ShardFor(key);
  {
    MutexLock lock(&shard.mutex);
    if (size > shard_budget_bytes_) {
      if (stored != nullptr) {
        *stored = false;
      }
      return evictions;
    }
    auto it = shard.memory.find(key);
    if (it != shard.memory.end()) {
      // Refresh existing entry.
      shard.lru.erase(it->second.lru_it);
      shard.lru.push_front(key);
      it->second.lru_it = shard.lru.begin();
      it->second.data = std::move(data);
      if (stored != nullptr) {
        *stored = true;
      }
      return evictions;
    }
    EvictShardLocked(shard, size, &evictions);
    shard.lru.push_front(key);
    Entry entry;
    entry.data = std::move(data);
    entry.size = size;
    entry.lru_it = shard.lru.begin();
    shard.memory.emplace(key, std::move(entry));
    shard.memory_used += size;
    auto sit = shard.spill.find(key);
    if (sit != shard.spill.end()) {
      shard.spill_used -= sit->second->SizeBytes();
      shard.spill.erase(sit);
    }
    if (stored != nullptr) {
      *stored = true;
    }
    for (const auto& ev : evictions) {
      if (ev.spilled) {
        auto evit = shard.spill.find(ev.key);
        if (evit != shard.spill.end()) {
          spill_bytes += evit->second->SizeBytes();
        }
      }
    }
  }
  // Spill writes are charged outside the lock.
  if (spill_bytes > 0) {
    ChargeDisk(spill_bytes);
  }
  return evictions;
}

void BlockManager::EvictShardLocked(Shard& shard, uint64_t needed,
                                    std::vector<BlockEviction>* evictions) {
  while (shard.memory_used + needed > shard_budget_bytes_ && !shard.lru.empty()) {
    const BlockKey victim = shard.lru.back();
    shard.lru.pop_back();
    auto it = shard.memory.find(victim);
    if (it == shard.memory.end()) {
      continue;
    }
    shard.memory_used -= it->second.size;
    BlockEviction ev;
    ev.key = victim;
    if (config_.eviction == EvictionMode::kSpill) {
      ev.spilled = true;
      shard.spill_used += it->second.size;
      shard.spill[victim] = std::move(it->second.data);
    }
    shard.memory.erase(it);
    evictions->push_back(ev);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (ev.spilled) {
      spills_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

PartitionPtr BlockManager::Get(const BlockKey& key) {
  PartitionPtr from_spill;
  Shard& shard = ShardFor(key);
  {
    MutexLock lock(&shard.mutex);
    auto it = shard.memory.find(key);
    if (it != shard.memory.end()) {
      shard.lru.erase(it->second.lru_it);
      shard.lru.push_front(key);
      it->second.lru_it = shard.lru.begin();
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second.data;
    }
    auto sit = shard.spill.find(key);
    if (sit == shard.spill.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    from_spill = sit->second;
    spill_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  // Pay the disk read; then promote back into memory (may evict others).
  // Put() removes the spill copy with correct accounting when it stores.
  ChargeDisk(from_spill->SizeBytes());
  Put(key, from_spill, nullptr);
  return from_spill;
}

bool BlockManager::Contains(const BlockKey& key) const {
  Shard& shard = ShardFor(key);
  ReaderMutexLock lock(&shard.mutex);
  return shard.memory.count(key) > 0 || shard.spill.count(key) > 0;
}

void BlockManager::Erase(const BlockKey& key) {
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mutex);
  auto it = shard.memory.find(key);
  if (it != shard.memory.end()) {
    shard.memory_used -= it->second.size;
    shard.lru.erase(it->second.lru_it);
    shard.memory.erase(it);
  }
  auto sit = shard.spill.find(key);
  if (sit != shard.spill.end()) {
    shard.spill_used -= sit->second->SizeBytes();
    shard.spill.erase(sit);
  }
}

void BlockManager::Clear() {
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mutex);
    shard->memory.clear();
    shard->spill.clear();
    shard->lru.clear();
    shard->memory_used = 0;
    shard->spill_used = 0;
  }
}

uint64_t BlockManager::memory_used() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    ReaderMutexLock lock(&shard->mutex);
    total += shard->memory_used;
  }
  return total;
}

uint64_t BlockManager::spill_used() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    ReaderMutexLock lock(&shard->mutex);
    total += shard->spill_used;
  }
  return total;
}

size_t BlockManager::num_memory_blocks() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    ReaderMutexLock lock(&shard->mutex);
    total += shard->memory.size();
  }
  return total;
}

size_t BlockManager::num_spill_blocks() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    ReaderMutexLock lock(&shard->mutex);
    total += shard->spill.size();
  }
  return total;
}

}  // namespace flint
