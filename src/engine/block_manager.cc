#include "src/engine/block_manager.h"

#include <thread>

#include "src/common/units.h"

namespace flint {

void BlockManager::ChargeDisk(uint64_t bytes) const {
  if (!config_.model_latency || config_.disk_bandwidth_bytes_per_s <= 0.0) {
    return;
  }
  std::this_thread::sleep_for(
      WallDuration(static_cast<double>(bytes) / config_.disk_bandwidth_bytes_per_s));
}

std::vector<BlockEviction> BlockManager::Put(const BlockKey& key, PartitionPtr data,
                                             bool* stored) {
  std::vector<BlockEviction> evictions;
  const uint64_t size = data->SizeBytes();
  uint64_t spill_bytes = 0;
  {
    MutexLock lock(&mutex_);
    if (size > config_.memory_budget_bytes) {
      if (stored != nullptr) {
        *stored = false;
      }
      return evictions;
    }
    auto it = memory_.find(key);
    if (it != memory_.end()) {
      // Refresh existing entry.
      lru_.erase(it->second.lru_it);
      lru_.push_front(key);
      it->second.lru_it = lru_.begin();
      it->second.data = std::move(data);
      if (stored != nullptr) {
        *stored = true;
      }
      return evictions;
    }
    EvictLocked(size, &evictions);
    lru_.push_front(key);
    Entry entry;
    entry.data = std::move(data);
    entry.size = size;
    entry.lru_it = lru_.begin();
    memory_.emplace(key, std::move(entry));
    memory_used_ += size;
    auto sit = spill_.find(key);
    if (sit != spill_.end()) {
      spill_used_ -= sit->second->SizeBytes();
      spill_.erase(sit);
    }
    if (stored != nullptr) {
      *stored = true;
    }
    for (const auto& ev : evictions) {
      if (ev.spilled) {
        auto sit = spill_.find(ev.key);
        if (sit != spill_.end()) {
          spill_bytes += sit->second->SizeBytes();
        }
      }
    }
  }
  // Spill writes are charged outside the lock.
  if (spill_bytes > 0) {
    ChargeDisk(spill_bytes);
  }
  return evictions;
}

void BlockManager::EvictLocked(uint64_t needed, std::vector<BlockEviction>* evictions) {
  while (memory_used_ + needed > config_.memory_budget_bytes && !lru_.empty()) {
    const BlockKey victim = lru_.back();
    lru_.pop_back();
    auto it = memory_.find(victim);
    if (it == memory_.end()) {
      continue;
    }
    memory_used_ -= it->second.size;
    BlockEviction ev;
    ev.key = victim;
    if (config_.eviction == EvictionMode::kSpill) {
      ev.spilled = true;
      spill_used_ += it->second.size;
      spill_[victim] = std::move(it->second.data);
    }
    memory_.erase(it);
    evictions->push_back(ev);
  }
}

PartitionPtr BlockManager::Get(const BlockKey& key) {
  PartitionPtr from_spill;
  {
    MutexLock lock(&mutex_);
    auto it = memory_.find(key);
    if (it != memory_.end()) {
      lru_.erase(it->second.lru_it);
      lru_.push_front(key);
      it->second.lru_it = lru_.begin();
      return it->second.data;
    }
    auto sit = spill_.find(key);
    if (sit == spill_.end()) {
      return nullptr;
    }
    from_spill = sit->second;
  }
  // Pay the disk read; then promote back into memory (may evict others).
  // Put() removes the spill copy with correct accounting when it stores.
  ChargeDisk(from_spill->SizeBytes());
  Put(key, from_spill, nullptr);
  return from_spill;
}

bool BlockManager::Contains(const BlockKey& key) const {
  ReaderMutexLock lock(&mutex_);
  return memory_.count(key) > 0 || spill_.count(key) > 0;
}

void BlockManager::Erase(const BlockKey& key) {
  MutexLock lock(&mutex_);
  auto it = memory_.find(key);
  if (it != memory_.end()) {
    memory_used_ -= it->second.size;
    lru_.erase(it->second.lru_it);
    memory_.erase(it);
  }
  auto sit = spill_.find(key);
  if (sit != spill_.end()) {
    spill_used_ -= sit->second->SizeBytes();
    spill_.erase(sit);
  }
}

void BlockManager::Clear() {
  MutexLock lock(&mutex_);
  memory_.clear();
  spill_.clear();
  lru_.clear();
  memory_used_ = 0;
  spill_used_ = 0;
}

uint64_t BlockManager::memory_used() const {
  ReaderMutexLock lock(&mutex_);
  return memory_used_;
}

uint64_t BlockManager::spill_used() const {
  ReaderMutexLock lock(&mutex_);
  return spill_used_;
}

size_t BlockManager::num_memory_blocks() const {
  ReaderMutexLock lock(&mutex_);
  return memory_.size();
}

size_t BlockManager::num_spill_blocks() const {
  ReaderMutexLock lock(&mutex_);
  return spill_.size();
}

}  // namespace flint
