// Type-erased partition data. An RDD partition is an immutable vector of
// records wrapped behind PartitionData so that the block manager, shuffle
// manager, DFS, and scheduler can handle partitions of any record type.

#ifndef SRC_ENGINE_PARTITION_H_
#define SRC_ENGINE_PARTITION_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/engine/record_size.h"

namespace flint {

class PartitionData {
 public:
  virtual ~PartitionData() = default;
  virtual uint64_t SizeBytes() const = 0;
  virtual uint64_t NumRecords() const = 0;
};

using PartitionPtr = std::shared_ptr<const PartitionData>;

template <typename T>
class VectorPartition final : public PartitionData {
 public:
  explicit VectorPartition(std::vector<T> rows) : rows_(std::move(rows)) {
    size_bytes_ = sizeof(*this);
    for (const auto& r : rows_) {
      size_bytes_ += RecordBytes(r);
    }
  }

  const std::vector<T>& rows() const { return rows_; }
  uint64_t SizeBytes() const override { return size_bytes_; }
  uint64_t NumRecords() const override { return rows_.size(); }

 private:
  std::vector<T> rows_;
  uint64_t size_bytes_ = 0;
};

template <typename T>
PartitionPtr MakePartition(std::vector<T> rows) {
  return std::make_shared<VectorPartition<T>>(std::move(rows));
}

// Typed view over a type-erased partition. The caller must know T; a mismatch
// is a programming error caught in debug builds.
template <typename T>
const std::vector<T>& Rows(const PartitionData& p) {
  assert(dynamic_cast<const VectorPartition<T>*>(&p) != nullptr && "partition type mismatch");
  return static_cast<const VectorPartition<T>&>(p).rows();
}

template <typename T>
const std::vector<T>& Rows(const PartitionPtr& p) {
  return Rows<T>(*p);
}

}  // namespace flint

#endif  // SRC_ENGINE_PARTITION_H_
