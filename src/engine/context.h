// FlintContext: the engine's driver-side hub. It owns per-node execution
// state (block manager + executor pool), the cluster-wide block registry, the
// shuffle manager, RDD/shuffle registries, counters, and the DAG scheduler.
// It subscribes to the ClusterManager for node lifecycle and fans events out
// to registered EngineObservers (fault-tolerance manager, node manager).

#ifndef SRC_ENGINE_CONTEXT_H_
#define SRC_ENGINE_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/cluster/cluster_manager.h"
#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/common/thread_pool.h"
#include "src/dfs/dfs.h"
#include "src/dfs/manifest.h"
#include "src/dfs/retry.h"
#include "src/engine/block_manager.h"
#include "src/engine/observer.h"
#include "src/engine/rdd.h"
#include "src/engine/shuffle_manager.h"
#include "src/obs/metrics.h"

namespace flint {

class TaskContext;
class DagScheduler;

// Straggler mitigation (DESIGN.md "Straggler mitigation"). The scheduler
// tracks per-stage task-runtime quantiles; once `quorum` attempts of a stage
// have finished, every outstanding attempt gets a deadline of
// max(min_deadline_seconds, spec_multiplier x stage P50). An attempt past
// its deadline gets a speculative duplicate on a different node; first
// success wins and the loser is cancelled cooperatively. Failed attempts are
// retried with exponential backoff up to max_attempts_per_task before the
// stage surfaces the last error, and the stage watchdog bounds the whole
// loop so a hung cluster turns into a clean kDeadlineExceeded.
struct SpeculationConfig {
  bool enabled = true;
  // Completed attempts of the stage required before deadlines arm (the
  // quantile estimate is noise below this).
  int quorum = 3;
  double spec_multiplier = 3.0;     // deadline = spec_multiplier x stage P50
  double min_deadline_seconds = 0.2;  // deadline floor for very short stages
  // Attempts per task slot (including the first) before the stage gives up
  // and surfaces the last failure. Revocation-killed attempts do not count.
  int max_attempts_per_task = 4;
  double retry_backoff_seconds = 0.05;  // doubles per prior failure
  // Hard bound on one stage's wall-clock time, watchdog for hung tasks that
  // speculation cannot save (e.g. every replica hangs). <= 0 disables.
  double stage_watchdog_seconds = 120.0;
  // Seed a new stage's service-time estimate from the previous stage's
  // distribution: deadlines arm immediately (using the carried P50) instead
  // of waiting for `quorum` in-stage completions, so short stages — fewer
  // tasks than the quorum — still get straggler protection. The live
  // in-stage estimate takes over once it reaches quorum.
  bool seed_from_previous_stage = true;
};

struct EngineConfig {
  BlockManagerConfig block_defaults;
  // Cross-node cache reads pay bytes/bandwidth (cluster network).
  double remote_fetch_bandwidth_bytes_per_s = 512.0 * kMiB;
  // Recomputing a source partition re-reads origin data (the paper's S3
  // re-fetch + re-partition + deserialize path, Sec 5.4). Source RDD computes
  // pay bytes/bandwidth on top of generation compute.
  double origin_read_bandwidth_bytes_per_s = 48.0 * kMiB;
  bool model_latency = true;
  // Narrow-chain operator fusion (see fusion.h / DESIGN.md "Execution hot
  // path"): chains of streaming one-to-one operators execute as one task
  // without materializing intermediate partitions. Off switches every task
  // back to per-level Compute, which benchmarks and differential tests use.
  bool operator_fusion = true;
  // Wide-stage pipelining (DESIGN.md "Execution hot path"): shuffle map
  // tasks stream their narrow chain straight into the bucket sinks, eliding
  // the map-side partition. Requires operator_fusion; off falls back to
  // materialize-then-bucket (same sinks, bit-identical buckets).
  bool shuffle_fusion = true;
  // Reduce side consumes key-sorted buckets with a k-way merge + combine
  // instead of rebuilding a hash table. Off switches to the flat-hash
  // rebuild (differential-testing fallback; outputs are bit-identical).
  bool shuffle_merge_reduce = true;
  // Backoff/deadline applied to every checkpoint Put (partition objects and
  // manifests) and to verified restore reads. Transient DFS failures retry
  // inside this budget; exhausting it abandons the write (the FT manager's
  // degraded-mode trigger) or falls the restore back to lineage.
  DfsRetryPolicy checkpoint_retry;
  SpeculationConfig speculation;
  // --- network plane (DESIGN.md "Network plane") ---
  // Default per-node NIC capacity. Every NodeState starts here; tests model
  // heterogeneous fleets via FlintContext::SetNodeLinkBandwidth. Shuffle
  // pulls charge bytes / (capacity / slow_factor) against the PRODUCING
  // node's link when model_latency is on, so a congested NIC inflates
  // reduce-side service times the same way slow compute does.
  double default_link_bandwidth_bytes_per_s = 512.0 * kMiB;
  // EWMA weight for a node's observed fetch throughput (link_throughput_ewma).
  double link_ewma_alpha = 0.3;
  // Per-fetch timeout = max(fetch_timeout_min_seconds,
  // fetch_timeout_multiplier x current stage P95 service time). No stage
  // quantile yet (or multiplier <= 0) means no timeout. A pull past the
  // timeout is abandoned mid-transfer, classified link-slow (feeding the
  // producer's health EWMA), and retried with exponential backoff; an
  // exhausted retry budget drops the producer's outputs and falls back to
  // lineage recomputation on a healthy node.
  double fetch_timeout_multiplier = 4.0;
  double fetch_timeout_min_seconds = 0.05;
  int fetch_retry_limit = 2;                  // retries after the first timed-out pull
  double fetch_retry_backoff_seconds = 0.01;  // doubles per retry
};

// Monotonic counters for experiment reporting. All fields are cumulative
// since context creation.
struct EngineCounters {
  std::atomic<uint64_t> tasks_run{0};
  std::atomic<uint64_t> task_failures{0};
  std::atomic<uint64_t> partitions_computed{0};
  std::atomic<uint64_t> partitions_recomputed{0};  // computed more than once
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  std::atomic<uint64_t> checkpoint_writes{0};
  std::atomic<uint64_t> checkpoint_bytes{0};
  std::atomic<uint64_t> checkpoint_reads{0};
  // Storage-fault accounting (checkpoint path):
  std::atomic<uint64_t> write_retries{0};     // checkpoint Put attempts beyond the first
  std::atomic<uint64_t> writes_abandoned{0};  // checkpoint Puts that exhausted the retry budget
  std::atomic<uint64_t> restores_fallen_back{0};  // restores demoted to lineage recomputation
  std::atomic<uint64_t> checkpoints_quarantined{0};  // corrupt/torn checkpoint dirs deleted
  std::atomic<int64_t> compute_nanos{0};
  std::atomic<int64_t> acquisition_wait_nanos{0};  // scheduler stalls with zero live nodes
  std::atomic<uint64_t> stage_rounds{0};  // dispatch rounds across all stage loops
  std::atomic<uint64_t> stage_parks{0};   // rounds where every submission was rejected
  // Operator-fusion accounting (narrow-chain streaming, see fusion.h):
  std::atomic<uint64_t> fused_chains{0};             // fused chain executions
  std::atomic<uint64_t> fused_operators_elided{0};   // intermediate partitions not built
  // Shuffle data-plane accounting (wide-stage pipelining, see
  // TaskContext::ComputeShuffleBuckets and the bucket sinks in typed_rdd.h):
  std::atomic<uint64_t> shuffle_rows_bucketed_fused{0};    // rows streamed into buckets
  std::atomic<uint64_t> shuffle_rows_bucketed_unfused{0};  // rows bucketed after materializing
  std::atomic<uint64_t> shuffle_fused_bucket_chains{0};    // map tasks that elided their output
  std::atomic<uint64_t> shuffle_combine_hits{0};   // map-side rows absorbed by the combiner
  std::atomic<uint64_t> shuffle_merge_reduces{0};  // reduce tasks served by k-way merge
  std::atomic<uint64_t> shuffle_hash_reduces{0};   // reduce tasks served by hash rebuild
  // Stages whose speculation deadlines armed from the previous stage's
  // carried quantile before reaching in-stage quorum.
  std::atomic<uint64_t> stage_quantile_seeded{0};
  // Straggler-mitigation accounting (see SpeculationConfig):
  std::atomic<uint64_t> tasks_speculated{0};        // duplicate attempts launched
  std::atomic<uint64_t> speculative_wins{0};        // duplicates that beat the original
  std::atomic<uint64_t> task_deadline_misses{0};    // attempts that blew their deadline
  std::atomic<uint64_t> task_retries{0};            // failed attempts re-submitted
  std::atomic<uint64_t> tasks_cancelled{0};         // attempt cancellations issued
  std::atomic<uint64_t> stage_watchdog_timeouts{0};  // stages aborted by the watchdog
  // Executor-queue wait: execution-start stamp minus submission, summed over
  // attempts whose stamp was seen. Deadline clocks exclude this slack.
  std::atomic<int64_t> task_queue_wait_nanos{0};
  // Network-plane accounting (the hardened shuffle-fetch path, see
  // TaskContext::FetchShuffle):
  std::atomic<uint64_t> net_fetches{0};           // per-producer pulls charged
  std::atomic<uint64_t> net_fetch_bytes{0};       // bytes pulled over node links
  std::atomic<uint64_t> net_fetches_slow{0};      // pulls that blew the fetch timeout
  std::atomic<uint64_t> net_fetch_retries{0};     // timed-out pulls retried with backoff
  std::atomic<uint64_t> net_fetch_recomputes{0};  // fetches that fell back to recompute
  std::atomic<int64_t> net_fetch_wait_nanos{0};   // modelled transfer time charged
};

// Engine-side state of one node. Retired (revoked) nodes are kept until
// context destruction so in-flight tasks can finish failing gracefully.
struct NodeState {
  NodeInfo info;
  std::unique_ptr<BlockManager> blocks;
  std::unique_ptr<ThreadPool> pool;
  std::atomic<bool> revoked{false};
  // Set on the revocation warning: the node keeps executing (and serving its
  // cache) until revocation, but its pool stops accepting new tasks.
  std::atomic<bool> draining{false};
  // Set by the node-health scorer: the node is alive and keeps its cache,
  // but the scheduler stops placing new attempts on it until the score
  // recovers. Unlike draining, quarantine is reversible.
  std::atomic<bool> quarantined{false};
  // EWMA health score pushed by the NodeManager's scorer (1 = healthy,
  // 0 = failing every attempt). Weights PickNode's smooth weighted
  // round-robin so a degraded-but-unbenched node draws proportionally fewer
  // tasks. Plain store/load; single-writer (the scorer).
  std::atomic<double> health_score{1.0};
  // Smooth-weighted-round-robin credit for PickNode. Only the scheduler
  // thread (serialized by job_mutex_) mutates it; atomic so readers
  // (metrics, tests) need no lock.
  std::atomic<double> swrr_credit{0.0};
  // Round-robin dispatches routed here by PickNode (locality picks not
  // included). Exposed for placement tests and telemetry.
  std::atomic<uint64_t> tasks_picked{0};
  // --- network plane ---
  // Modelled NIC capacity (bytes/s). Initialized from
  // EngineConfig::default_link_bandwidth_bytes_per_s; tests override per
  // node via SetNodeLinkBandwidth to model heterogeneous fleets.
  std::atomic<double> link_bandwidth_bytes_per_s{512.0 * 1024.0 * 1024.0};
  // EWMA of observed fetch throughput over this node's link (bytes/s); 0
  // until the first pull completes. Folded by reduce-side tasks with a CAS
  // loop, read by telemetry and market costing.
  std::atomic<double> link_throughput_ewma{0.0};
};

class FlintContext : public ClusterListener {
 public:
  FlintContext(ClusterManager* cluster, Dfs* dfs, EngineConfig config);
  ~FlintContext() override;

  FlintContext(const FlintContext&) = delete;
  FlintContext& operator=(const FlintContext&) = delete;

  ClusterManager& cluster() { return *cluster_; }
  Dfs& dfs() { return *dfs_; }
  ShuffleManager& shuffles() { return shuffle_mgr_; }
  const EngineConfig& config() const { return config_; }
  EngineCounters& counters() { return counters_; }

  // --- RDD registry ---
  RddPtr CreateRdd(std::string name, int num_partitions, std::vector<Dependency> deps,
                   std::function<Result<PartitionPtr>(int, TaskContext&)> fn);
  int NextShuffleId();
  void RegisterShuffleInfo(const std::shared_ptr<ShuffleInfo>& info);
  std::shared_ptr<ShuffleInfo> LookupShuffle(int shuffle_id) const;
  int NextRddId();

  // --- observers ---
  void AddObserver(EngineObserver* observer);
  void RemoveObserver(EngineObserver* observer);

  // --- job execution ---
  // Computes every partition of `rdd` (running all required shuffle stages),
  // returning them in partition order. Thread-safe; jobs are serialized.
  Result<std::vector<PartitionPtr>> Materialize(const RddPtr& rdd);

  // Computes only the listed partitions of `rdd` (each in range, no
  // duplicates), returning them in the order given. Powers incremental
  // actions like Take that stop before materializing the whole RDD.
  Result<std::vector<PartitionPtr>> MaterializePartitions(const RddPtr& rdd,
                                                          const std::vector<int>& partitions);

  // --- block registry (cluster-wide cache index) ---
  // Looks the block up anywhere in the cluster; charges a remote-fetch delay
  // when served from a node other than `local`. Returns nullptr on miss.
  PartitionPtr LookupBlock(const BlockKey& key, NodeId local);
  // Stores the block on `node`, updating the registry (including evictions).
  void StoreBlock(const BlockKey& key, NodeId node, PartitionPtr data);
  bool BlockAvailable(const BlockKey& key) const;
  // Snapshot of every cached block and one node holding it (for the
  // systems-level checkpointing baseline, which persists the whole cache).
  std::vector<std::pair<BlockKey, NodeId>> BlockRegistrySnapshot() const;
  // Spark's unpersist(): clears the caching hint and drops every cached
  // partition of `rdd` cluster-wide. Future accesses recompute from lineage.
  void UnpersistRdd(const RddPtr& rdd);
  // True if every partition of `rdd` is either cached somewhere or the RDD's
  // checkpoint is saved — i.e. lineage below it need not be computed.
  bool AllPartitionsAvailable(const RddPtr& rdd) const;

  // --- node access for the scheduler / checkpointing ---
  std::vector<std::shared_ptr<NodeState>> LiveNodeStates() const;
  // Live nodes that also accept new tasks (not draining under a revocation
  // warning, not quarantined by the health scorer). The scheduler dispatches
  // only to these.
  std::vector<std::shared_ptr<NodeState>> SchedulableNodeStates() const;
  std::shared_ptr<NodeState> GetNodeState(NodeId id) const;
  // Marks `id` quarantined (excluded from scheduling) or lifts the mark.
  // Refuses to quarantine the last schedulable node — something must keep
  // accepting tasks — and returns whether the change was applied.
  bool SetNodeQuarantined(NodeId id, bool quarantined);
  // Publishes the health scorer's EWMA score for `id` (clamped to [0, 1])
  // onto its NodeState so placement can weight by it. Unknown ids are
  // ignored (the node raced a revocation).
  void SetNodeHealthScore(NodeId id, double score);
  // Overrides `id`'s modelled NIC capacity (bytes/s). Unknown ids are
  // ignored. Tests use this to model heterogeneous fleets.
  void SetNodeLinkBandwidth(NodeId id, double bytes_per_s);
  // Folds one observed fetch throughput sample (bytes/s) into `node`'s
  // link_throughput_ewma with EngineConfig::link_ewma_alpha.
  void RecordLinkThroughput(NodeId node, double bytes_per_s);
  // Blocks until at least one live node accepts new tasks; accumulates
  // acquisition wait.
  void WaitForLiveNode();
  // Blocks until every executor pool (live and retired) is idle. Observers
  // must call this before unregistering so no in-flight task can reach them.
  void DrainExecutors();

  // Asynchronously ensures (rdd, partition) is durably checkpointed: computes
  // the partition if necessary on some executor, writes it to the DFS, and
  // fires OnCheckpointWritten. Used by the fault-tolerance manager.
  Status EnqueueCheckpointWrite(const RddPtr& rdd, int partition);

  // Fast path used at task completion: the computed partition is in hand, so
  // the async write needs no recomputation.
  Status EnqueueCheckpointWriteWithData(const RddPtr& rdd, int partition, PartitionPtr data);

  // Synchronous variant used on the revocation-warning path.
  Status WriteCheckpointNow(const RddPtr& rdd, int partition, TaskContext& tc);
  // Writes `data` (checksummed, with retry/backoff) and fires
  // OnCheckpointWritten on success or OnCheckpointWriteFailed once the retry
  // budget is exhausted. Racing writers of the same partition are serialized
  // through an in-flight claim: exactly one writer performs the Put, the
  // rest return OK immediately (so bytes_written and the delta estimate see
  // each partition once).
  Status WriteCheckpointData(const RddPtr& rdd, int partition, PartitionPtr data);

  // Atomic-commit step: verifies every partition object recorded for `rdd`
  // against the store (presence, size, checksum) and writes the manifest
  // last, with retry. Only after this succeeds may the RDD be declared
  // kSaved. Fails with kFailedPrecondition if not all partitions were
  // written, kDataLoss if verification finds a mismatch, or the Put error if
  // the manifest cannot land.
  Status CommitCheckpointManifest(const RddPtr& rdd);

  // Deletes `rdd`'s checkpoint directory (bad or partial state), drops the
  // write records, demotes the RDD to kNone, and counts the quarantine. Used
  // when restore finds corruption or a commit/stalled checkpoint is
  // abandoned. Safe to call concurrently with restores: readers see clean
  // NotFound and fall back to lineage.
  void QuarantineCheckpoint(const RddPtr& rdd, const std::string& reason);

  // Verified restore of one partition from a kSaved checkpoint: manifest
  // lookup, checksum/size validation, retry on transient read failures. On
  // any validation failure the checkpoint is demoted (and quarantined if
  // corrupt) and an error returns so the caller recomputes from lineage;
  // restores_fallen_back counts those demotions.
  Result<PartitionPtr> RestoreFromCheckpoint(const RddPtr& rdd, int partition);

  // --- event plumbing (called from TaskContext / scheduler) ---
  void NotifyPartitionComputed(const RddPtr& rdd, int partition, double seconds);
  void ChargeOriginRead(uint64_t bytes) const;
  // Straggler telemetry fan-out to observers (node-health scorer).
  void NotifyTaskAttemptFinished(NodeId node, double seconds, bool success);
  void NotifyTaskDeadlineMiss(NodeId node);
  // Link telemetry fan-out: a shuffle pull over `node`'s link was classified
  // (ratio = observed bytes/s over modelled capacity, clamped to [0, 1];
  // slow = the pull blew the fetch timeout). Feeds the health scorer.
  void NotifyLinkSample(NodeId node, double throughput_ratio, bool slow);

  // --- stage service-time quantiles (published by the stage loop) ---
  // The running stage's live (or carried) P50/P95 service times in seconds;
  // 0 until a stage first arms. Fetch timeouts derive from the P95.
  void PublishStageQuantiles(double p50_seconds, double p95_seconds) {
    stage_p50_seconds_.store(p50_seconds, std::memory_order_relaxed);
    stage_p95_seconds_.store(p95_seconds, std::memory_order_relaxed);
  }
  double StageP50Seconds() const { return stage_p50_seconds_.load(std::memory_order_relaxed); }
  double StageP95Seconds() const { return stage_p95_seconds_.load(std::memory_order_relaxed); }

  // --- fault-injection probe (src/inject/) ---
  // At most one probe; set before running jobs, clear with nullptr. The
  // probe must outlive every job it observes.
  void SetProbe(EngineProbe* probe) { probe_.store(probe, std::memory_order_release); }
  void FireProbe(EnginePoint point) {
    if (EngineProbe* probe = probe_.load(std::memory_order_acquire)) {
      probe->AtPoint(point);
    }
  }
  // Announces a starting task attempt to the probe and returns its fault
  // directive (benign when no probe is installed).
  TaskFaultDirective FireTaskProbe(const TaskRunInfo& info) {
    if (EngineProbe* probe = probe_.load(std::memory_order_acquire)) {
      return probe->OnTaskRun(info);
    }
    return TaskFaultDirective{};
  }
  // Announces one producer pull of a shuffle fetch to the probe and returns
  // its fault directive (benign when no probe is installed).
  FetchFaultDirective FireFetchProbe(const ShuffleFetchInfo& info) {
    if (EngineProbe* probe = probe_.load(std::memory_order_acquire)) {
      return probe->OnShuffleFetch(info);
    }
    return FetchFaultDirective{};
  }

  // ClusterListener:
  void OnNodeAdded(const NodeInfo& node) override;
  void OnNodeWarning(const NodeInfo& node) override;
  void OnNodeRevoked(const NodeInfo& node) override;

 private:
  friend class DagScheduler;

  std::vector<EngineObserver*> ObserversSnapshot() const;

  // True when some live node accepts new tasks (not revoked, not draining).
  bool HasSchedulableNodeLocked() const REQUIRES(nodes_mutex_);

  // In-flight claim for one checkpoint path; at most one writer holds it.
  bool ClaimCheckpointWrite(const std::string& path);
  void ReleaseCheckpointWrite(const std::string& path);
  bool CheckpointWriteInFlight(const std::string& path) const;

  ClusterManager* cluster_;
  Dfs* dfs_;
  EngineConfig config_;
  ShuffleManager shuffle_mgr_;
  EngineCounters counters_;

  mutable Mutex nodes_mutex_{"FlintContext::nodes_mutex_"};
  CondVar node_added_cv_;
  std::unordered_map<NodeId, std::shared_ptr<NodeState>> nodes_ GUARDED_BY(nodes_mutex_);  // live
  std::vector<std::shared_ptr<NodeState>> retired_ GUARDED_BY(nodes_mutex_);

  mutable Mutex registry_mutex_{"FlintContext::registry_mutex_"};
  std::unordered_map<BlockKey, std::vector<NodeId>, BlockKeyHash> block_locations_
      GUARDED_BY(registry_mutex_);

  mutable Mutex rdd_mutex_{"FlintContext::rdd_mutex_"};
  std::atomic<int> next_rdd_id_{0};
  std::atomic<int> next_shuffle_id_{0};
  std::unordered_map<int, std::weak_ptr<ShuffleInfo>> shuffle_infos_ GUARDED_BY(rdd_mutex_);
  // Partitions computed at least once, per RDD; drives OnRddMaterialized and
  // the recompute counter.
  std::unordered_map<int, std::unordered_map<int, int>> computed_counts_ GUARDED_BY(rdd_mutex_);
  std::unordered_map<int, std::weak_ptr<Rdd>> rdds_ GUARDED_BY(rdd_mutex_);
  std::unordered_set<int> materialized_fired_ GUARDED_BY(rdd_mutex_);

  mutable Mutex observers_mutex_{"FlintContext::observers_mutex_"};
  std::vector<EngineObserver*> observers_ GUARDED_BY(observers_mutex_);

  Mutex job_mutex_{"FlintContext::job_mutex_"};  // one job at a time
  std::unique_ptr<DagScheduler> scheduler_;
  std::atomic<int> round_robin_{0};
  std::atomic<EngineProbe*> probe_{nullptr};

  // Running stage's service-time quantiles (seconds); see
  // PublishStageQuantiles. Written by the scheduler thread, read by
  // reduce-side tasks deriving fetch timeouts.
  std::atomic<double> stage_p50_seconds_{0.0};
  std::atomic<double> stage_p95_seconds_{0.0};

  // Checkpoint write tracking: in-flight path claims (prevents double
  // writes) and the per-RDD metadata of durably written partitions, consumed
  // by CommitCheckpointManifest.
  mutable Mutex ckpt_mutex_{"FlintContext::ckpt_mutex_"};
  std::unordered_set<std::string> ckpt_inflight_ GUARDED_BY(ckpt_mutex_);
  std::unordered_map<int, std::unordered_map<int, CheckpointPartitionMeta>> ckpt_written_
      GUARDED_BY(ckpt_mutex_);

  // Exports EngineCounters + block/shuffle aggregates into the global
  // MetricsRegistry. Declared last so it unhooks before any state it reads
  // is torn down.
  ScopedCollector metrics_collector_;
};

}  // namespace flint

#endif  // SRC_ENGINE_CONTEXT_H_
