#include "src/engine/shuffle_manager.h"

#include <string>

#include "src/common/log.h"
#include "src/obs/metrics.h"

namespace flint {

void ShuffleManager::RegisterShuffle(int shuffle_id, int num_maps, int num_reduces) {
  // Registration is tracked with an explicit flag, not outputs.empty():
  // a zero-map shuffle has no outputs forever, and using emptiness as the
  // sentinel let every repeat call re-initialize it — a concurrent or repeat
  // registration could silently overwrite num_reduces.
  bool conflicting = false;
  {
    MutexLock lock(&mutex_);
    auto& state = shuffles_[shuffle_id];
    if (!state.registered) {
      state.registered = true;
      state.num_maps = num_maps;
      state.num_reduces = num_reduces;
      state.outputs.resize(static_cast<size_t>(num_maps));
    } else if (state.num_maps != num_maps || state.num_reduces != num_reduces) {
      // First registration wins: resizing under a different shape would
      // orphan outputs that map tasks already registered.
      conflicting = true;
    }
  }
  if (conflicting) {
    MetricsRegistry::Global().GetCounter("flint_shuffle_reregistered")->Increment();
    FLINT_WLOG() << "shuffle " << shuffle_id
                 << " re-registered with a different shape; keeping first "
                    "registration (maps=" << num_maps << " reduces=" << num_reduces
                 << " ignored)";
  }
}

void ShuffleManager::RegisterMapOutput(int shuffle_id, int map_part, NodeId node,
                                       std::vector<PartitionPtr> buckets) {
  MutexLock lock(&mutex_);
  auto it = shuffles_.find(shuffle_id);
  if (it == shuffles_.end() || map_part < 0 ||
      static_cast<size_t>(map_part) >= it->second.outputs.size()) {
    return;
  }
  MapOutput& out = it->second.outputs[static_cast<size_t>(map_part)];
  out.node = node;
  out.present = true;
  out.buckets = std::move(buckets);
  map_outputs_registered_.fetch_add(1, std::memory_order_relaxed);
  uint64_t bytes = 0;
  for (const auto& b : out.buckets) {
    if (b != nullptr) {
      bytes += b->SizeBytes();
    }
  }
  registered_bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

std::vector<int> ShuffleManager::MissingMaps(int shuffle_id) const {
  ReaderMutexLock lock(&mutex_);
  std::vector<int> missing;
  auto it = shuffles_.find(shuffle_id);
  if (it == shuffles_.end()) {
    return missing;
  }
  for (int m = 0; m < it->second.num_maps; ++m) {
    if (!it->second.outputs[static_cast<size_t>(m)].present) {
      missing.push_back(m);
    }
  }
  return missing;
}

bool ShuffleManager::IsComplete(int shuffle_id) const {
  ReaderMutexLock lock(&mutex_);
  auto it = shuffles_.find(shuffle_id);
  if (it == shuffles_.end()) {
    return false;
  }
  for (const auto& out : it->second.outputs) {
    if (!out.present) {
      return false;
    }
  }
  return true;
}

Result<std::vector<PartitionPtr>> ShuffleManager::Fetch(int shuffle_id, int reduce_part) const {
  auto detailed = FetchDetailed(shuffle_id, reduce_part);
  if (!detailed.ok()) {
    return detailed.status();
  }
  std::vector<PartitionPtr> buckets;
  buckets.reserve(detailed->size());
  for (auto& fb : *detailed) {
    buckets.push_back(std::move(fb.bucket));
  }
  return buckets;
}

Result<std::vector<ShuffleManager::FetchedBucket>> ShuffleManager::FetchDetailed(
    int shuffle_id, int reduce_part) const {
  ReaderMutexLock lock(&mutex_);
  auto it = shuffles_.find(shuffle_id);
  if (it == shuffles_.end()) {
    fetch_waits_.fetch_add(1, std::memory_order_relaxed);
    return DataLoss("unknown shuffle " + std::to_string(shuffle_id));
  }
  // A registered 0-map shuffle is complete by definition; Fetch returns an
  // empty bucket list rather than an error.
  std::vector<FetchedBucket> buckets;
  buckets.reserve(it->second.outputs.size());
  for (const auto& out : it->second.outputs) {
    if (!out.present) {
      fetch_waits_.fetch_add(1, std::memory_order_relaxed);
      return DataLoss("missing map output for shuffle " + std::to_string(shuffle_id));
    }
    if (reduce_part < 0 || static_cast<size_t>(reduce_part) >= out.buckets.size()) {
      return Internal("bad reduce partition " + std::to_string(reduce_part));
    }
    buckets.push_back(FetchedBucket{out.node, out.buckets[static_cast<size_t>(reduce_part)]});
  }
  return buckets;
}

size_t ShuffleManager::DropNodeOutputs(int shuffle_id, NodeId node) {
  MutexLock lock(&mutex_);
  auto it = shuffles_.find(shuffle_id);
  if (it == shuffles_.end()) {
    return 0;
  }
  size_t dropped = 0;
  for (auto& out : it->second.outputs) {
    if (out.present && out.node == node) {
      out.present = false;
      out.buckets.clear();
      ++dropped;
    }
  }
  return dropped;
}

void ShuffleManager::OnNodeRevoked(NodeId node) {
  MutexLock lock(&mutex_);
  for (auto& [id, state] : shuffles_) {
    for (auto& out : state.outputs) {
      if (out.present && out.node == node) {
        out.present = false;
        out.buckets.clear();
      }
    }
  }
}

uint64_t ShuffleManager::TotalBytes() const {
  ReaderMutexLock lock(&mutex_);
  uint64_t total = 0;
  for (const auto& [id, state] : shuffles_) {
    for (const auto& out : state.outputs) {
      for (const auto& b : out.buckets) {
        if (b != nullptr) {
          total += b->SizeBytes();
        }
      }
    }
  }
  return total;
}

uint64_t ShuffleManager::RecentShuffleBytes(int last_n) const {
  ReaderMutexLock lock(&mutex_);
  std::vector<int> ids;
  ids.reserve(shuffles_.size());
  for (const auto& [id, state] : shuffles_) {
    ids.push_back(id);
  }
  std::sort(ids.rbegin(), ids.rend());
  if (static_cast<size_t>(last_n) < ids.size()) {
    ids.resize(static_cast<size_t>(last_n));
  }
  uint64_t total = 0;
  for (int id : ids) {
    for (const auto& out : shuffles_.at(id).outputs) {
      for (const auto& b : out.buckets) {
        if (b != nullptr) {
          total += b->SizeBytes();
        }
      }
    }
  }
  return total;
}

size_t ShuffleManager::NumShuffles() const {
  ReaderMutexLock lock(&mutex_);
  return shuffles_.size();
}

void ShuffleManager::RemoveShuffle(int shuffle_id) {
  MutexLock lock(&mutex_);
  shuffles_.erase(shuffle_id);
}

}  // namespace flint
