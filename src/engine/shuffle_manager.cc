#include "src/engine/shuffle_manager.h"

#include <string>

namespace flint {

void ShuffleManager::RegisterShuffle(int shuffle_id, int num_maps, int num_reduces) {
  MutexLock lock(&mutex_);
  auto& state = shuffles_[shuffle_id];
  if (state.outputs.empty()) {
    state.num_maps = num_maps;
    state.num_reduces = num_reduces;
    state.outputs.resize(static_cast<size_t>(num_maps));
  }
}

void ShuffleManager::RegisterMapOutput(int shuffle_id, int map_part, NodeId node,
                                       std::vector<PartitionPtr> buckets) {
  MutexLock lock(&mutex_);
  auto it = shuffles_.find(shuffle_id);
  if (it == shuffles_.end() || map_part < 0 ||
      static_cast<size_t>(map_part) >= it->second.outputs.size()) {
    return;
  }
  MapOutput& out = it->second.outputs[static_cast<size_t>(map_part)];
  out.node = node;
  out.present = true;
  out.buckets = std::move(buckets);
}

std::vector<int> ShuffleManager::MissingMaps(int shuffle_id) const {
  ReaderMutexLock lock(&mutex_);
  std::vector<int> missing;
  auto it = shuffles_.find(shuffle_id);
  if (it == shuffles_.end()) {
    return missing;
  }
  for (int m = 0; m < it->second.num_maps; ++m) {
    if (!it->second.outputs[static_cast<size_t>(m)].present) {
      missing.push_back(m);
    }
  }
  return missing;
}

bool ShuffleManager::IsComplete(int shuffle_id) const {
  ReaderMutexLock lock(&mutex_);
  auto it = shuffles_.find(shuffle_id);
  if (it == shuffles_.end()) {
    return false;
  }
  for (const auto& out : it->second.outputs) {
    if (!out.present) {
      return false;
    }
  }
  return true;
}

Result<std::vector<PartitionPtr>> ShuffleManager::Fetch(int shuffle_id, int reduce_part) const {
  ReaderMutexLock lock(&mutex_);
  auto it = shuffles_.find(shuffle_id);
  if (it == shuffles_.end()) {
    return DataLoss("unknown shuffle " + std::to_string(shuffle_id));
  }
  std::vector<PartitionPtr> buckets;
  buckets.reserve(it->second.outputs.size());
  for (const auto& out : it->second.outputs) {
    if (!out.present) {
      return DataLoss("missing map output for shuffle " + std::to_string(shuffle_id));
    }
    if (reduce_part < 0 || static_cast<size_t>(reduce_part) >= out.buckets.size()) {
      return Internal("bad reduce partition " + std::to_string(reduce_part));
    }
    buckets.push_back(out.buckets[static_cast<size_t>(reduce_part)]);
  }
  return buckets;
}

void ShuffleManager::OnNodeRevoked(NodeId node) {
  MutexLock lock(&mutex_);
  for (auto& [id, state] : shuffles_) {
    for (auto& out : state.outputs) {
      if (out.present && out.node == node) {
        out.present = false;
        out.buckets.clear();
      }
    }
  }
}

uint64_t ShuffleManager::TotalBytes() const {
  ReaderMutexLock lock(&mutex_);
  uint64_t total = 0;
  for (const auto& [id, state] : shuffles_) {
    for (const auto& out : state.outputs) {
      for (const auto& b : out.buckets) {
        if (b != nullptr) {
          total += b->SizeBytes();
        }
      }
    }
  }
  return total;
}

uint64_t ShuffleManager::RecentShuffleBytes(int last_n) const {
  ReaderMutexLock lock(&mutex_);
  std::vector<int> ids;
  ids.reserve(shuffles_.size());
  for (const auto& [id, state] : shuffles_) {
    ids.push_back(id);
  }
  std::sort(ids.rbegin(), ids.rend());
  if (static_cast<size_t>(last_n) < ids.size()) {
    ids.resize(static_cast<size_t>(last_n));
  }
  uint64_t total = 0;
  for (int id : ids) {
    for (const auto& out : shuffles_.at(id).outputs) {
      for (const auto& b : out.buckets) {
        if (b != nullptr) {
          total += b->SizeBytes();
        }
      }
    }
  }
  return total;
}

void ShuffleManager::RemoveShuffle(int shuffle_id) {
  MutexLock lock(&mutex_);
  shuffles_.erase(shuffle_id);
}

}  // namespace flint
