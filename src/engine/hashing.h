// Hashing for shuffle keys. std::hash lacks pair/tuple support; HashOf is the
// single customization point the shuffle bucketers use.

#ifndef SRC_ENGINE_HASHING_H_
#define SRC_ENGINE_HASHING_H_

#include <cstddef>
#include <functional>
#include <string>
#include <tuple>
#include <utility>

namespace flint {

inline size_t HashCombine(size_t a, size_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

template <typename T>
size_t HashOf(const T& v) {
  return std::hash<T>{}(v);
}

template <typename A, typename B>
size_t HashOf(const std::pair<A, B>& p) {
  return HashCombine(HashOf(p.first), HashOf(p.second));
}

template <typename... Ts>
size_t HashOf(const std::tuple<Ts...>& t) {
  size_t h = 0;
  std::apply([&](const auto&... xs) { ((h = HashCombine(h, HashOf(xs))), ...); }, t);
  return h;
}

// Functor form for unordered containers keyed by shuffle keys.
template <typename K>
struct KeyHasher {
  size_t operator()(const K& k) const { return HashOf(k); }
};

}  // namespace flint

#endif  // SRC_ENGINE_HASHING_H_
