#include "src/engine/context.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "src/common/log.h"
#include "src/engine/checkpoint_io.h"
#include "src/engine/dag_scheduler.h"
#include "src/engine/lambda_rdd.h"
#include "src/engine/task_context.h"
#include "src/obs/trace.h"

// flint-lint: allow-file(det-wallclock) acquisition-wait accounting and liveness-wait deadlines; no partition data derives from the clock

namespace flint {

namespace {

// Exports EngineCounters + aggregated BlockManager/ShuffleManager counters
// into the registry namespace. Runs only at Snapshot() time.
void AppendCounter(std::vector<MetricSample>& out, const char* name, uint64_t v) {
  out.push_back({name, MetricType::kCounter, static_cast<double>(v)});
}

void AppendGauge(std::vector<MetricSample>& out, const char* name, double v) {
  out.push_back({name, MetricType::kGauge, v});
}

// nodes_ is an unordered map, so any snapshot handed to the scheduler must be
// re-ordered: PickNode walks these vectors, and placement (hence recompute
// interleaving) has to replay identically run over run.
void SortNodesById(std::vector<std::shared_ptr<NodeState>>& nodes) {
  std::sort(nodes.begin(), nodes.end(),
            [](const std::shared_ptr<NodeState>& a, const std::shared_ptr<NodeState>& b) {
              return a->info.node_id < b->info.node_id;
            });
}

}  // namespace

FlintContext::FlintContext(ClusterManager* cluster, Dfs* dfs, EngineConfig config)
    : cluster_(cluster), dfs_(dfs), config_(config) {
  scheduler_ = std::make_unique<DagScheduler>(this);
  cluster_->SetListener(this);
  metrics_collector_ = ScopedCollector(
      &MetricsRegistry::Global(), [this](std::vector<MetricSample>& out) {
        const EngineCounters& c = counters_;
        AppendCounter(out, "flint_engine_tasks_run", c.tasks_run.load());
        AppendCounter(out, "flint_engine_task_failures", c.task_failures.load());
        AppendCounter(out, "flint_engine_partitions_computed", c.partitions_computed.load());
        AppendCounter(out, "flint_engine_partitions_recomputed",
                      c.partitions_recomputed.load());
        AppendCounter(out, "flint_engine_cache_hits", c.cache_hits.load());
        AppendCounter(out, "flint_engine_cache_misses", c.cache_misses.load());
        AppendCounter(out, "flint_engine_checkpoint_writes", c.checkpoint_writes.load());
        AppendCounter(out, "flint_engine_checkpoint_bytes", c.checkpoint_bytes.load());
        AppendCounter(out, "flint_engine_checkpoint_reads", c.checkpoint_reads.load());
        AppendCounter(out, "flint_dfs_write_retries", c.write_retries.load());
        AppendCounter(out, "flint_dfs_writes_abandoned", c.writes_abandoned.load());
        AppendCounter(out, "flint_engine_restores_fallen_back",
                      c.restores_fallen_back.load());
        AppendCounter(out, "flint_engine_checkpoints_quarantined",
                      c.checkpoints_quarantined.load());
        AppendCounter(out, "flint_engine_stage_rounds", c.stage_rounds.load());
        AppendCounter(out, "flint_engine_stage_parks", c.stage_parks.load());
        AppendCounter(out, "flint_fusion_fused_chains", c.fused_chains.load());
        AppendCounter(out, "flint_fusion_operators_elided",
                      c.fused_operators_elided.load());
        AppendCounter(out, "flint_shuffle_rows_bucketed_fused",
                      c.shuffle_rows_bucketed_fused.load());
        AppendCounter(out, "flint_shuffle_rows_bucketed_unfused",
                      c.shuffle_rows_bucketed_unfused.load());
        AppendCounter(out, "flint_shuffle_fused_bucket_chains",
                      c.shuffle_fused_bucket_chains.load());
        AppendCounter(out, "flint_shuffle_combine_hits", c.shuffle_combine_hits.load());
        AppendCounter(out, "flint_shuffle_merge_reduces", c.shuffle_merge_reduces.load());
        AppendCounter(out, "flint_shuffle_hash_reduces", c.shuffle_hash_reduces.load());
        AppendCounter(out, "flint_engine_stage_quantile_seeded",
                      c.stage_quantile_seeded.load());
        AppendCounter(out, "flint_engine_tasks_speculated", c.tasks_speculated.load());
        AppendCounter(out, "flint_engine_speculative_wins", c.speculative_wins.load());
        AppendCounter(out, "flint_engine_task_deadline_misses",
                      c.task_deadline_misses.load());
        AppendCounter(out, "flint_engine_task_retries", c.task_retries.load());
        AppendCounter(out, "flint_engine_tasks_cancelled", c.tasks_cancelled.load());
        AppendCounter(out, "flint_engine_stage_watchdog_timeouts",
                      c.stage_watchdog_timeouts.load());
        AppendGauge(out, "flint_engine_compute_seconds",
                    static_cast<double>(c.compute_nanos.load()) * 1e-9);
        AppendGauge(out, "flint_engine_acquisition_wait_seconds",
                    static_cast<double>(c.acquisition_wait_nanos.load()) * 1e-9);
        AppendGauge(out, "flint_engine_task_queue_wait_seconds",
                    static_cast<double>(c.task_queue_wait_nanos.load()) * 1e-9);
        AppendCounter(out, "flint_net_fetches", c.net_fetches.load());
        AppendCounter(out, "flint_net_fetch_bytes", c.net_fetch_bytes.load());
        AppendCounter(out, "flint_net_fetches_slow", c.net_fetches_slow.load());
        AppendCounter(out, "flint_net_fetch_retries", c.net_fetch_retries.load());
        AppendCounter(out, "flint_net_fetch_recomputes", c.net_fetch_recomputes.load());
        AppendGauge(out, "flint_net_fetch_wait_seconds",
                    static_cast<double>(c.net_fetch_wait_nanos.load()) * 1e-9);

        // BlockManager cache traffic, aggregated over live + retired nodes
        // (a revoked node's history still happened).
        BlockManager::CacheCounters blocks;
        uint64_t memory_used = 0;
        uint64_t spill_used = 0;
        std::vector<std::shared_ptr<NodeState>> all;
        {
          MutexLock lock(&nodes_mutex_);
          for (const auto& [id, node] : nodes_) {
            // flint-lint: allow(det-unordered-iter) aggregated into order-independent integer counters
            all.push_back(node);
          }
          for (const auto& node : retired_) {
            all.push_back(node);
          }
        }
        for (const auto& node : all) {
          const BlockManager::CacheCounters nc = node->blocks->GetCacheCounters();
          blocks.hits += nc.hits;
          blocks.spill_hits += nc.spill_hits;
          blocks.misses += nc.misses;
          blocks.evictions += nc.evictions;
          blocks.spills += nc.spills;
          memory_used += node->blocks->memory_used();
          spill_used += node->blocks->spill_used();
        }
        AppendCounter(out, "flint_block_hits", blocks.hits);
        AppendCounter(out, "flint_block_spill_hits", blocks.spill_hits);
        AppendCounter(out, "flint_block_misses", blocks.misses);
        AppendCounter(out, "flint_block_evictions", blocks.evictions);
        AppendCounter(out, "flint_block_spills", blocks.spills);
        AppendGauge(out, "flint_block_memory_used_bytes",
                    static_cast<double>(memory_used));
        AppendGauge(out, "flint_block_spill_used_bytes", static_cast<double>(spill_used));

        AppendCounter(out, "flint_shuffle_fetch_waits", shuffle_mgr_.FetchWaits());
        AppendCounter(out, "flint_shuffle_map_outputs", shuffle_mgr_.MapOutputsRegistered());
        AppendCounter(out, "flint_shuffle_registered_bytes", shuffle_mgr_.RegisteredBytes());
        AppendGauge(out, "flint_shuffle_live_shuffles",
                    static_cast<double>(shuffle_mgr_.NumShuffles()));
        AppendGauge(out, "flint_shuffle_total_bytes",
                    static_cast<double>(shuffle_mgr_.TotalBytes()));
      });
}

FlintContext::~FlintContext() {
  // Stop receiving lifecycle events, then let node pools drain. Pools are
  // waited on outside nodes_mutex_ because in-flight tasks take that lock.
  cluster_->DrainEvents();
  std::vector<std::shared_ptr<NodeState>> all;
  {
    MutexLock lock(&nodes_mutex_);
    for (auto& [id, node] : nodes_) {
      // flint-lint: allow(det-unordered-iter) every pool is Wait()ed on; join order is irrelevant
      all.push_back(node);
    }
    for (auto& node : retired_) {
      all.push_back(node);
    }
  }
  for (auto& node : all) {
    node->pool->Wait();
  }
}

int FlintContext::NextRddId() { return next_rdd_id_.fetch_add(1, std::memory_order_relaxed); }

int FlintContext::NextShuffleId() {
  return next_shuffle_id_.fetch_add(1, std::memory_order_relaxed);
}

RddPtr FlintContext::CreateRdd(std::string name, int num_partitions,
                               std::vector<Dependency> deps,
                               std::function<Result<PartitionPtr>(int, TaskContext&)> fn) {
  auto rdd = std::make_shared<LambdaRdd>(this, std::move(name), num_partitions, std::move(deps),
                                         std::move(fn));
  {
    MutexLock lock(&rdd_mutex_);
    rdds_[rdd->id()] = rdd;
  }
  for (EngineObserver* obs : ObserversSnapshot()) {
    obs->OnRddCreated(rdd);
  }
  return rdd;
}

void FlintContext::RegisterShuffleInfo(const std::shared_ptr<ShuffleInfo>& info) {
  {
    MutexLock lock(&rdd_mutex_);
    shuffle_infos_[info->shuffle_id] = info;
  }
  shuffle_mgr_.RegisterShuffle(info->shuffle_id, info->num_map_partitions,
                               info->num_reduce_partitions);
}

std::shared_ptr<ShuffleInfo> FlintContext::LookupShuffle(int shuffle_id) const {
  ReaderMutexLock lock(&rdd_mutex_);
  auto it = shuffle_infos_.find(shuffle_id);
  if (it == shuffle_infos_.end()) {
    return nullptr;
  }
  return it->second.lock();
}

void FlintContext::AddObserver(EngineObserver* observer) {
  MutexLock lock(&observers_mutex_);
  observers_.push_back(observer);
}

void FlintContext::RemoveObserver(EngineObserver* observer) {
  MutexLock lock(&observers_mutex_);
  std::erase(observers_, observer);
}

std::vector<EngineObserver*> FlintContext::ObserversSnapshot() const {
  ReaderMutexLock lock(&observers_mutex_);
  return observers_;
}

Result<std::vector<PartitionPtr>> FlintContext::Materialize(const RddPtr& rdd) {
  MutexLock job_lock(&job_mutex_);
  return scheduler_->Materialize(rdd);
}

Result<std::vector<PartitionPtr>> FlintContext::MaterializePartitions(
    const RddPtr& rdd, const std::vector<int>& partitions) {
  MutexLock job_lock(&job_mutex_);
  return scheduler_->MaterializePartitions(rdd, partitions);
}

// --- block registry ---

PartitionPtr FlintContext::LookupBlock(const BlockKey& key, NodeId local) {
  std::vector<NodeId> locations;
  {
    MutexLock lock(&registry_mutex_);
    auto it = block_locations_.find(key);
    if (it == block_locations_.end()) {
      return nullptr;
    }
    locations = it->second;
  }
  // Prefer the local replica.
  for (int pass = 0; pass < 2; ++pass) {
    for (NodeId n : locations) {
      const bool is_local = (n == local);
      if ((pass == 0) != is_local) {
        continue;
      }
      std::shared_ptr<NodeState> node = GetNodeState(n);
      if (node == nullptr || node->revoked.load(std::memory_order_acquire)) {
        continue;
      }
      if (PartitionPtr data = node->blocks->Get(key); data != nullptr) {
        if (!is_local && config_.model_latency &&
            config_.remote_fetch_bandwidth_bytes_per_s > 0.0) {
          std::this_thread::sleep_for(WallDuration(static_cast<double>(data->SizeBytes()) /
                                                   config_.remote_fetch_bandwidth_bytes_per_s));
        }
        return data;
      }
      // Stale location (evicted): clean it up.
      MutexLock lock(&registry_mutex_);
      auto it = block_locations_.find(key);
      if (it != block_locations_.end()) {
        std::erase(it->second, n);
        if (it->second.empty()) {
          block_locations_.erase(it);
        }
      }
    }
  }
  return nullptr;
}

void FlintContext::StoreBlock(const BlockKey& key, NodeId node_id, PartitionPtr data) {
  std::shared_ptr<NodeState> node = GetNodeState(node_id);
  if (node == nullptr || node->revoked.load(std::memory_order_acquire)) {
    return;
  }
  bool stored = false;
  std::vector<BlockEviction> evictions = node->blocks->Put(key, std::move(data), &stored);
  MutexLock lock(&registry_mutex_);
  for (const auto& ev : evictions) {
    if (!ev.spilled) {
      auto it = block_locations_.find(ev.key);
      if (it != block_locations_.end()) {
        std::erase(it->second, node_id);
        if (it->second.empty()) {
          block_locations_.erase(it);
        }
      }
    }
    // Spilled blocks stay addressable on this node.
  }
  if (stored) {
    auto& locations = block_locations_[key];
    bool present = false;
    for (NodeId n : locations) {
      if (n == node_id) {
        present = true;
        break;
      }
    }
    if (!present) {
      locations.push_back(node_id);
    }
  }
}

bool FlintContext::BlockAvailable(const BlockKey& key) const {
  ReaderMutexLock lock(&registry_mutex_);
  auto it = block_locations_.find(key);
  return it != block_locations_.end() && !it->second.empty();
}

std::vector<std::pair<BlockKey, NodeId>> FlintContext::BlockRegistrySnapshot() const {
  ReaderMutexLock lock(&registry_mutex_);
  std::vector<std::pair<BlockKey, NodeId>> out;
  out.reserve(block_locations_.size());
  for (const auto& [key, nodes] : block_locations_) {
    if (!nodes.empty()) {
      out.emplace_back(key, nodes.front());
    }
  }
  // block_locations_ is an unordered map; give callers (checkpoint sweeps,
  // restore planning) a stable order so their behaviour replays identically.
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return std::tie(a.first.rdd_id, a.first.partition) <
           std::tie(b.first.rdd_id, b.first.partition);
  });
  return out;
}

void FlintContext::UnpersistRdd(const RddPtr& rdd) {
  if (rdd == nullptr) {
    return;
  }
  rdd->set_cache(false);
  std::vector<std::shared_ptr<NodeState>> nodes = LiveNodeStates();
  for (int p = 0; p < rdd->num_partitions(); ++p) {
    const BlockKey key{rdd->id(), p};
    for (const auto& node : nodes) {
      node->blocks->Erase(key);
    }
    MutexLock lock(&registry_mutex_);
    block_locations_.erase(key);
  }
}

bool FlintContext::AllPartitionsAvailable(const RddPtr& rdd) const {
  if (rdd->checkpoint_state() == CheckpointState::kSaved) {
    return true;
  }
  for (int p = 0; p < rdd->num_partitions(); ++p) {
    if (!BlockAvailable(BlockKey{rdd->id(), p})) {
      return false;
    }
  }
  return rdd->num_partitions() > 0;
}

// --- nodes ---

std::vector<std::shared_ptr<NodeState>> FlintContext::LiveNodeStates() const {
  ReaderMutexLock lock(&nodes_mutex_);
  std::vector<std::shared_ptr<NodeState>> out;
  out.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) {
    if (!node->revoked.load(std::memory_order_acquire)) {
      out.push_back(node);
    }
  }
  SortNodesById(out);
  return out;
}

std::vector<std::shared_ptr<NodeState>> FlintContext::SchedulableNodeStates() const {
  ReaderMutexLock lock(&nodes_mutex_);
  std::vector<std::shared_ptr<NodeState>> out;
  out.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) {
    if (!node->revoked.load(std::memory_order_acquire) &&
        !node->draining.load(std::memory_order_acquire) &&
        !node->quarantined.load(std::memory_order_acquire)) {
      out.push_back(node);
    }
  }
  SortNodesById(out);
  return out;
}

bool FlintContext::SetNodeQuarantined(NodeId id, bool quarantined) {
  std::shared_ptr<NodeState> node;
  {
    MutexLock lock(&nodes_mutex_);
    auto it = nodes_.find(id);
    if (it == nodes_.end()) {
      return false;
    }
    node = it->second;
    if (quarantined) {
      if (node->quarantined.load(std::memory_order_acquire)) {
        return false;
      }
      // Never quarantine the last schedulable node: a cluster where nothing
      // accepts tasks wedges every stage loop. Better to keep dispatching to
      // a slow node than to no node.
      node->quarantined.store(true, std::memory_order_release);
      if (!HasSchedulableNodeLocked()) {
        node->quarantined.store(false, std::memory_order_release);
        return false;
      }
      return true;
    }
    if (!node->quarantined.load(std::memory_order_acquire)) {
      return false;
    }
    node->quarantined.store(false, std::memory_order_release);
  }
  // A node rejoined the schedulable set; wake any parked stage loop.
  node_added_cv_.NotifyAll();
  return true;
}

void FlintContext::SetNodeHealthScore(NodeId id, double score) {
  std::shared_ptr<NodeState> node;
  {
    ReaderMutexLock lock(&nodes_mutex_);
    auto it = nodes_.find(id);
    if (it == nodes_.end()) {
      return;
    }
    node = it->second;
  }
  node->health_score.store(std::clamp(score, 0.0, 1.0), std::memory_order_relaxed);
}

void FlintContext::SetNodeLinkBandwidth(NodeId id, double bytes_per_s) {
  std::shared_ptr<NodeState> node = GetNodeState(id);
  if (node == nullptr || bytes_per_s <= 0.0) {
    return;
  }
  node->link_bandwidth_bytes_per_s.store(bytes_per_s, std::memory_order_relaxed);
}

void FlintContext::RecordLinkThroughput(NodeId id, double bytes_per_s) {
  std::shared_ptr<NodeState> node = GetNodeState(id);
  if (node == nullptr || bytes_per_s <= 0.0) {
    return;
  }
  const double alpha = config_.link_ewma_alpha;
  double prev = node->link_throughput_ewma.load(std::memory_order_relaxed);
  double next;
  do {
    next = prev <= 0.0 ? bytes_per_s : (1.0 - alpha) * prev + alpha * bytes_per_s;
  } while (!node->link_throughput_ewma.compare_exchange_weak(prev, next,
                                                             std::memory_order_relaxed));
}

std::shared_ptr<NodeState> FlintContext::GetNodeState(NodeId id) const {
  ReaderMutexLock lock(&nodes_mutex_);
  auto it = nodes_.find(id);
  if (it != nodes_.end()) {
    return it->second;
  }
  for (const auto& node : retired_) {
    if (node->info.node_id == id) {
      return node;
    }
  }
  return nullptr;
}

void FlintContext::DrainExecutors() {
  std::vector<std::shared_ptr<NodeState>> all;
  {
    MutexLock lock(&nodes_mutex_);
    for (auto& [id, node] : nodes_) {
      // flint-lint: allow(det-unordered-iter) every pool is Wait()ed on; join order is irrelevant
      all.push_back(node);
    }
    for (auto& node : retired_) {
      all.push_back(node);
    }
  }
  for (auto& node : all) {
    node->pool->Wait();
  }
}

bool FlintContext::HasSchedulableNodeLocked() const {
  for (const auto& [id, node] : nodes_) {
    if (!node->revoked.load(std::memory_order_acquire) &&
        !node->draining.load(std::memory_order_acquire) &&
        !node->quarantined.load(std::memory_order_acquire)) {
      return true;
    }
  }
  return false;
}

void FlintContext::WaitForLiveNode() {
  const auto t0 = WallClock::now();
  {
    MutexLock lock(&nodes_mutex_);
    // A node that is merely draining (revocation warning) cannot take new
    // tasks, so waiting on it would spin; require a schedulable node.
    while (!HasSchedulableNodeLocked()) {
      node_added_cv_.Wait(nodes_mutex_);
    }
  }
  counters_.acquisition_wait_nanos.fetch_add(
      std::chrono::duration_cast<std::chrono::nanoseconds>(WallClock::now() - t0).count(),
      std::memory_order_relaxed);
}

// --- checkpoint plumbing ---

bool FlintContext::ClaimCheckpointWrite(const std::string& path) {
  MutexLock lock(&ckpt_mutex_);
  return ckpt_inflight_.insert(path).second;
}

void FlintContext::ReleaseCheckpointWrite(const std::string& path) {
  MutexLock lock(&ckpt_mutex_);
  ckpt_inflight_.erase(path);
}

bool FlintContext::CheckpointWriteInFlight(const std::string& path) const {
  ReaderMutexLock lock(&ckpt_mutex_);
  return ckpt_inflight_.count(path) > 0;
}

Status FlintContext::WriteCheckpointData(const RddPtr& rdd, int partition, PartitionPtr data) {
  FireProbe(EnginePoint::kCheckpointWrite);
  const std::string path = rdd->CheckpointPath(partition);
  // Atomic claim: exactly one writer proceeds per path. A loser returns OK —
  // the holder either lands the write (and notifies) or fails it (and the
  // FT manager's pending sweep re-enqueues the partition later).
  if (!ClaimCheckpointWrite(path)) {
    return Status::Ok();
  }
  if (dfs_->Exists(path)) {
    ReleaseCheckpointWrite(path);
    return Status::Ok();
  }
  const auto t0 = WallClock::now();
  DfsObject obj;
  obj.size_bytes = data->SizeBytes();
  obj.crc32 = PartitionFingerprint(*data, rdd->id(), partition);
  obj.data = std::static_pointer_cast<const void>(data);
  DfsRetryStats retry_stats;
  Status st = PutWithRetry(*dfs_, path, obj, config_.checkpoint_retry, &retry_stats);
  if (retry_stats.attempts > 1) {
    counters_.write_retries.fetch_add(static_cast<uint64_t>(retry_stats.attempts - 1),
                                      std::memory_order_relaxed);
  }
  if (!st.ok()) {
    counters_.writes_abandoned.fetch_add(1, std::memory_order_relaxed);
    ReleaseCheckpointWrite(path);
    FLINT_WLOG() << "checkpoint write abandoned after " << retry_stats.attempts
                 << " attempt(s): " << path << ": " << st.ToString();
    for (EngineObserver* obs : ObserversSnapshot()) {
      obs->OnCheckpointWriteFailed(rdd, partition, st);
    }
    return st;
  }
  {
    MutexLock lock(&ckpt_mutex_);
    ckpt_written_[rdd->id()][partition] = CheckpointPartitionMeta{obj.size_bytes, obj.crc32};
  }
  ReleaseCheckpointWrite(path);
  const double seconds = WallDuration(WallClock::now() - t0).count();
  counters_.checkpoint_writes.fetch_add(1, std::memory_order_relaxed);
  counters_.checkpoint_bytes.fetch_add(data->SizeBytes(), std::memory_order_relaxed);
  for (EngineObserver* obs : ObserversSnapshot()) {
    obs->OnCheckpointWritten(rdd, partition, data->SizeBytes(), seconds);
  }
  return Status::Ok();
}

Status FlintContext::WriteCheckpointNow(const RddPtr& rdd, int partition, TaskContext& tc) {
  const std::string path = rdd->CheckpointPath(partition);
  // Cheap pre-checks before the expensive materialization; the write itself
  // is race-free regardless (WriteCheckpointData claims the path), these
  // just avoid recomputing a partition another writer is already handling.
  if (dfs_->Exists(path) || CheckpointWriteInFlight(path)) {
    return Status::Ok();
  }
  FLINT_ASSIGN_OR_RETURN(PartitionPtr data, tc.GetPartition(rdd, partition));
  return WriteCheckpointData(rdd, partition, std::move(data));
}

Status FlintContext::CommitCheckpointManifest(const RddPtr& rdd) {
  const int num_partitions = rdd->num_partitions();
  auto manifest = std::make_shared<CheckpointManifest>();
  manifest->rdd_id = rdd->id();
  manifest->partitions.resize(static_cast<size_t>(num_partitions));
  {
    MutexLock lock(&ckpt_mutex_);
    auto it = ckpt_written_.find(rdd->id());
    if (it == ckpt_written_.end() || static_cast<int>(it->second.size()) != num_partitions) {
      return FailedPrecondition("checkpoint for rdd " + std::to_string(rdd->id()) +
                                " is incomplete; cannot commit manifest");
    }
    for (const auto& [partition, meta] : it->second) {
      manifest->partitions[static_cast<size_t>(partition)] = meta;
    }
  }
  // Verify-before-commit: every partition object must still be present and
  // byte-identical (by size + checksum) to what the writer recorded. A
  // mismatch here means the store corrupted data between write and commit —
  // the manifest must not bless it.
  for (int p = 0; p < num_partitions; ++p) {
    const CheckpointPartitionMeta& meta = manifest->partitions[static_cast<size_t>(p)];
    auto stat = dfs_->Stat(rdd->CheckpointPath(p));
    if (!stat.ok()) {
      return DataLoss("checkpoint partition " + std::to_string(p) + " of rdd " +
                      std::to_string(rdd->id()) + " vanished before commit: " +
                      stat.status().ToString());
    }
    if (stat->size_bytes != meta.size_bytes || stat->crc32 != meta.crc32) {
      return DataLoss("checkpoint partition " + std::to_string(p) + " of rdd " +
                      std::to_string(rdd->id()) + " failed verification before commit");
    }
  }
  DfsRetryStats retry_stats;
  Status st =
      PutWithRetry(*dfs_, rdd->ManifestPath(), MakeManifestObject(std::move(manifest)),
                   config_.checkpoint_retry, &retry_stats);
  if (retry_stats.attempts > 1) {
    counters_.write_retries.fetch_add(static_cast<uint64_t>(retry_stats.attempts - 1),
                                      std::memory_order_relaxed);
  }
  if (!st.ok()) {
    counters_.writes_abandoned.fetch_add(1, std::memory_order_relaxed);
    return st;
  }
  MutexLock lock(&ckpt_mutex_);
  ckpt_written_.erase(rdd->id());
  return Status::Ok();
}

void FlintContext::QuarantineCheckpoint(const RddPtr& rdd, const std::string& reason) {
  rdd->ResetCheckpoint();
  const size_t removed = dfs_->DeletePrefix(rdd->CheckpointDir());
  counters_.checkpoints_quarantined.fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock lock(&ckpt_mutex_);
    ckpt_written_.erase(rdd->id());
  }
  FLINT_WLOG() << "checkpoint quarantined: rdd " << rdd->id() << " (" << reason << "), "
               << removed << " object(s) deleted; recovery falls back to lineage";
}

Result<PartitionPtr> FlintContext::RestoreFromCheckpoint(const RddPtr& rdd, int partition) {
  auto manifest_r = ReadManifest(*dfs_, rdd->ManifestPath(), config_.checkpoint_retry);
  if (!manifest_r.ok()) {
    counters_.restores_fallen_back.fetch_add(1, std::memory_order_relaxed);
    if (manifest_r.status().code() == StatusCode::kNotFound) {
      // Torn checkpoint (manifest never landed) or GC'd underneath us: the
      // checkpoint simply does not exist. Demote quietly; nothing useful to
      // quarantine.
      rdd->ResetCheckpoint();
      FLINT_WLOG() << "checkpoint for rdd " << rdd->id()
                   << " has no manifest; falling back to lineage";
    } else {
      QuarantineCheckpoint(rdd, "manifest unreadable: " + manifest_r.status().ToString());
    }
    return manifest_r.status();
  }
  const ManifestPtr& manifest = *manifest_r;
  if (manifest->rdd_id != rdd->id() ||
      static_cast<int>(manifest->partitions.size()) != rdd->num_partitions() ||
      partition >= static_cast<int>(manifest->partitions.size())) {
    counters_.restores_fallen_back.fetch_add(1, std::memory_order_relaxed);
    QuarantineCheckpoint(rdd, "manifest does not describe this RDD");
    return DataLoss("checkpoint manifest mismatch for rdd " + std::to_string(rdd->id()));
  }
  const CheckpointPartitionMeta& meta = manifest->partitions[static_cast<size_t>(partition)];
  auto obj_r = GetWithRetry(*dfs_, rdd->CheckpointPath(partition), config_.checkpoint_retry);
  if (!obj_r.ok()) {
    counters_.restores_fallen_back.fetch_add(1, std::memory_order_relaxed);
    if (obj_r.status().code() == StatusCode::kNotFound) {
      // Clean miss (GC raced the restore): demote and recompute.
      rdd->ResetCheckpoint();
      FLINT_WLOG() << "checkpoint partition " << partition << " of rdd " << rdd->id()
                   << " missing; falling back to lineage";
    } else {
      QuarantineCheckpoint(rdd, "partition " + std::to_string(partition) +
                                    " unreadable: " + obj_r.status().ToString());
    }
    return obj_r.status();
  }
  const DfsObject& obj = *obj_r;
  PartitionPtr data = std::static_pointer_cast<const PartitionData>(obj.data);
  const bool matches_manifest = obj.size_bytes == meta.size_bytes && obj.crc32 == meta.crc32;
  const bool matches_content =
      data != nullptr && obj.crc32 == PartitionFingerprint(*data, rdd->id(), partition);
  if (!matches_manifest || !matches_content) {
    counters_.restores_fallen_back.fetch_add(1, std::memory_order_relaxed);
    QuarantineCheckpoint(rdd, "partition " + std::to_string(partition) +
                                  " failed checksum verification");
    return DataLoss("corrupt checkpoint partition " + std::to_string(partition) + " of rdd " +
                    std::to_string(rdd->id()));
  }
  counters_.checkpoint_reads.fetch_add(1, std::memory_order_relaxed);
  return data;
}

Status FlintContext::EnqueueCheckpointWriteWithData(const RddPtr& rdd, int partition,
                                                    PartitionPtr data) {
  auto live = SchedulableNodeStates();
  if (live.empty()) {
    return Unavailable("no live node for checkpoint write");
  }
  const size_t pick = static_cast<size_t>(round_robin_.fetch_add(1, std::memory_order_relaxed)) %
                      live.size();
  std::shared_ptr<NodeState> node = live[pick];
  const bool queued = node->pool->Submit([this, rdd, partition, data = std::move(data)] {
    if (dfs_->Exists(rdd->CheckpointPath(partition))) {
      return;
    }
    Status st = WriteCheckpointData(rdd, partition, data);
    if (!st.ok()) {
      FLINT_WLOG() << "checkpoint write failed: " << st.ToString();
    }
  });
  if (!queued) {
    return Unavailable("node pool shutting down");
  }
  return Status::Ok();
}

Status FlintContext::EnqueueCheckpointWrite(const RddPtr& rdd, int partition) {
  // Pick any schedulable node's executor; checkpoint tasks consume the same
  // CPU/IO the paper's checkpointing tasks do.
  auto live = SchedulableNodeStates();
  if (live.empty()) {
    return Unavailable("no live node for checkpoint write");
  }
  const size_t pick = static_cast<size_t>(round_robin_.fetch_add(1, std::memory_order_relaxed)) %
                      live.size();
  std::shared_ptr<NodeState> node = live[pick];
  const bool queued = node->pool->Submit([this, rdd, partition, node] {
    TaskContext tc(this, node);
    Status st = WriteCheckpointNow(rdd, partition, tc);
    if (!st.ok() && st.code() != StatusCode::kUnavailable) {
      FLINT_WLOG() << "checkpoint write failed: " << st.ToString();
    }
  });
  if (!queued) {
    return Unavailable("node pool shutting down");
  }
  return Status::Ok();
}

void FlintContext::NotifyPartitionComputed(const RddPtr& rdd, int partition, double seconds) {
  counters_.partitions_computed.fetch_add(1, std::memory_order_relaxed);
  counters_.compute_nanos.fetch_add(static_cast<int64_t>(seconds * 1e9),
                                    std::memory_order_relaxed);
  bool first_full_materialization = false;
  {
    MutexLock lock(&rdd_mutex_);
    auto& counts = computed_counts_[rdd->id()];
    int& c = counts[partition];
    ++c;
    if (c > 1) {
      counters_.partitions_recomputed.fetch_add(1, std::memory_order_relaxed);
      Tracer::Global().RecordInstant("recompute", "engine",
                                     {{"rdd", static_cast<double>(rdd->id())},
                                      {"partition", static_cast<double>(partition)},
                                      {"times_computed", static_cast<double>(c)}});
    }
    if (static_cast<int>(counts.size()) == rdd->num_partitions() &&
        materialized_fired_.insert(rdd->id()).second) {
      first_full_materialization = true;
    }
  }
  for (EngineObserver* obs : ObserversSnapshot()) {
    obs->OnPartitionComputed(rdd, partition, seconds);
    if (first_full_materialization) {
      obs->OnRddMaterialized(rdd);
    }
  }
}

void FlintContext::NotifyTaskAttemptFinished(NodeId node, double seconds, bool success) {
  for (EngineObserver* obs : ObserversSnapshot()) {
    obs->OnTaskAttemptFinished(node, seconds, success);
  }
}

void FlintContext::NotifyTaskDeadlineMiss(NodeId node) {
  for (EngineObserver* obs : ObserversSnapshot()) {
    obs->OnTaskDeadlineMiss(node);
  }
}

void FlintContext::NotifyLinkSample(NodeId node, double throughput_ratio, bool slow) {
  for (EngineObserver* obs : ObserversSnapshot()) {
    obs->OnLinkSample(node, throughput_ratio, slow);
  }
}

void FlintContext::ChargeOriginRead(uint64_t bytes) const {
  if (!config_.model_latency || config_.origin_read_bandwidth_bytes_per_s <= 0.0) {
    return;
  }
  std::this_thread::sleep_for(
      WallDuration(static_cast<double>(bytes) / config_.origin_read_bandwidth_bytes_per_s));
}

// --- ClusterListener ---

void FlintContext::OnNodeAdded(const NodeInfo& info) {
  auto node = std::make_shared<NodeState>();
  node->info = info;
  BlockManagerConfig bm = config_.block_defaults;
  bm.memory_budget_bytes = info.memory_budget_bytes;
  node->blocks = std::make_unique<BlockManager>(bm);
  node->pool = std::make_unique<ThreadPool>(static_cast<size_t>(info.executor_threads));
  if (config_.default_link_bandwidth_bytes_per_s > 0.0) {
    node->link_bandwidth_bytes_per_s.store(config_.default_link_bandwidth_bytes_per_s,
                                           std::memory_order_relaxed);
  }
  {
    MutexLock lock(&nodes_mutex_);
    nodes_[info.node_id] = std::move(node);
  }
  node_added_cv_.NotifyAll();
  Tracer::Global().RecordInstant("node_added", "cluster",
                                 {{"node", static_cast<double>(info.node_id)},
                                  {"market", static_cast<double>(info.market)}});
  for (EngineObserver* obs : ObserversSnapshot()) {
    obs->OnNodeAdded(info);
  }
}

void FlintContext::OnNodeWarning(const NodeInfo& info) {
  // The warned node keeps executing its queued tasks (and serving its cache)
  // until the revocation lands, but must not take new work — the scheduler
  // would otherwise keep dispatching to a server that is about to vanish.
  std::shared_ptr<NodeState> node;
  {
    MutexLock lock(&nodes_mutex_);
    auto it = nodes_.find(info.node_id);
    if (it != nodes_.end()) {
      node = it->second;
    }
  }
  if (node != nullptr) {
    node->draining.store(true, std::memory_order_release);
    node->pool->Close();
  }
  Tracer::Global().RecordInstant("revocation_warning", "cluster",
                                 {{"node", static_cast<double>(info.node_id)},
                                  {"market", static_cast<double>(info.market)}});
  for (EngineObserver* obs : ObserversSnapshot()) {
    obs->OnNodeWarning(info);
  }
}

void FlintContext::OnNodeRevoked(const NodeInfo& info) {
  std::shared_ptr<NodeState> node;
  {
    MutexLock lock(&nodes_mutex_);
    auto it = nodes_.find(info.node_id);
    if (it != nodes_.end()) {
      node = it->second;
      nodes_.erase(it);
      retired_.push_back(node);
    }
  }
  if (node != nullptr) {
    node->revoked.store(true, std::memory_order_release);
    node->draining.store(true, std::memory_order_release);
    node->pool->Close();  // a no-warning revocation never passed through drain
    node->blocks->Clear();
  }
  // Remove the node from the block registry and shuffle outputs: its memory
  // and local disk are gone.
  {
    MutexLock lock(&registry_mutex_);
    for (auto it = block_locations_.begin(); it != block_locations_.end();) {
      std::erase(it->second, info.node_id);
      if (it->second.empty()) {
        it = block_locations_.erase(it);
      } else {
        ++it;
      }
    }
  }
  shuffle_mgr_.OnNodeRevoked(info.node_id);
  Tracer::Global().RecordInstant("revocation", "cluster",
                                 {{"node", static_cast<double>(info.node_id)},
                                  {"market", static_cast<double>(info.market)}});
  for (EngineObserver* obs : ObserversSnapshot()) {
    obs->OnNodeRevoked(info);
  }
}

}  // namespace flint
