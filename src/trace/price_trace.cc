#include "src/trace/price_trace.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>

#include "src/common/stats.h"

namespace flint {

size_t PriceTrace::IndexAt(SimTime t) const {
  if (prices_.empty()) {
    return 0;
  }
  if (t < 0) {
    t = 0;
  }
  const auto idx = static_cast<size_t>(t / step_);
  return idx % prices_.size();
}

double PriceTrace::PriceAt(SimTime t) const {
  if (prices_.empty()) {
    return 0.0;
  }
  return prices_[IndexAt(t)];
}

BidStats ComputeBidStats(const PriceTrace& trace, double bid) {
  BidStats stats;
  stats.bid = bid;
  if (trace.empty()) {
    return stats;
  }
  const auto& prices = trace.prices();
  const double step = trace.step();

  double held_time = 0.0;
  double held_price_time = 0.0;  // integral of price over held time
  double current_run = 0.0;
  for (double p : prices) {
    if (p <= bid) {
      current_run += step;
      held_time += step;
      held_price_time += p * step;
    } else if (current_run > 0.0) {
      stats.run_lengths_hours.push_back(current_run);
      current_run = 0.0;
    }
  }
  if (current_run > 0.0) {
    stats.run_lengths_hours.push_back(current_run);
  }

  stats.availability = held_time / trace.duration();
  stats.avg_price = held_time > 0.0 ? held_price_time / held_time : 0.0;
  if (stats.run_lengths_hours.size() <= 1 && stats.availability >= 1.0) {
    // Never revoked anywhere in the trace.
    stats.mttf_hours = std::numeric_limits<double>::infinity();
  } else if (stats.run_lengths_hours.empty()) {
    stats.mttf_hours = 0.0;
  } else {
    stats.mttf_hours = Mean(stats.run_lengths_hours);
  }
  return stats;
}

double TraceCorrelation(const PriceTrace& a, const PriceTrace& b) {
  return PearsonCorrelation(a.prices(), b.prices());
}

namespace {

// Applies a spike process onto a base-price series. Spikes arrive as a
// Poisson process; each spike raises the price to height*on_demand for an
// exponentially distributed duration.
void ApplySpikes(const SyntheticTraceParams& params, Rng& rng, std::vector<double>& prices) {
  const size_t n = prices.size();
  const double step = params.step;
  const double horizon = step * static_cast<double>(n);
  double t = 0.0;
  if (params.spikes_per_hour <= 0.0) {
    return;
  }
  for (;;) {
    t += rng.Exponential(1.0 / params.spikes_per_hour);
    if (t >= horizon) {
      return;
    }
    double height = rng.Pareto(params.spike_height_min, params.spike_height_alpha);
    height = std::min(height, 10.0);  // EC2 caps bids (and effective spikes) at 10x on-demand
    const double spike_price = height * params.on_demand_price;
    const double dur = std::max(step, rng.Exponential(params.spike_duration_mean));
    const auto begin = static_cast<size_t>(t / step);
    const auto end = std::min(n, begin + static_cast<size_t>(std::ceil(dur / step)));
    for (size_t i = begin; i < end; ++i) {
      prices[i] = std::max(prices[i], spike_price);
    }
    t += dur;
  }
}

std::vector<double> BasePrices(const SyntheticTraceParams& params, Rng& rng) {
  const auto n = static_cast<size_t>(std::llround(params.duration / params.step));
  std::vector<double> prices(n);
  const double base = params.base_price_fraction * params.on_demand_price;
  for (auto& p : prices) {
    const double jitter = 1.0 + params.base_noise_fraction * rng.Normal();
    p = std::max(0.001, base * jitter);
  }
  return prices;
}

}  // namespace

PriceTrace GenerateSyntheticTrace(const SyntheticTraceParams& params) {
  Rng rng(params.seed);
  std::vector<double> prices = BasePrices(params, rng);
  ApplySpikes(params, rng, prices);
  return PriceTrace(params.step, std::move(prices));
}

std::vector<PriceTrace> GenerateMarketTraces(
    const SyntheticTraceParams& params, size_t count,
    const std::vector<std::pair<size_t, size_t>>& correlated_pairs) {
  Rng root(params.seed);
  std::vector<PriceTrace> traces;
  traces.reserve(count);
  std::vector<std::vector<double>> series;
  series.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Rng rng = root.Fork();
    std::vector<double> prices = BasePrices(params, rng);
    ApplySpikes(params, rng, prices);
    series.push_back(std::move(prices));
  }
  // Correlated pairs share one extra spike process, injected into both, so
  // their prices co-move during those episodes.
  for (const auto& [a, b] : correlated_pairs) {
    if (a >= count || b >= count) {
      continue;
    }
    Rng shared = root.Fork();
    std::vector<double> shared_spikes(series[a].size(),
                                      params.base_price_fraction * params.on_demand_price);
    SyntheticTraceParams boosted = params;
    boosted.spikes_per_hour = params.spikes_per_hour * 2.0;
    ApplySpikes(boosted, shared, shared_spikes);
    for (size_t i = 0; i < series[a].size() && i < series[b].size(); ++i) {
      series[a][i] = std::max(series[a][i], shared_spikes[i]);
      series[b][i] = std::max(series[b][i], shared_spikes[i]);
    }
  }
  for (auto& s : series) {
    traces.emplace_back(params.step, std::move(s));
  }
  return traces;
}

Status SaveTraceCsv(const PriceTrace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Internal("cannot open " + path + " for writing");
  }
  out.precision(17);  // round-trip doubles exactly
  out << "step_hours," << trace.step() << "\n";
  for (double p : trace.prices()) {
    out << p << "\n";
  }
  if (!out) {
    return Internal("write failed for " + path);
  }
  return Status::Ok();
}

Result<PriceTrace> LoadTraceCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFound("cannot open " + path);
  }
  std::string header;
  if (!std::getline(in, header)) {
    return InvalidArgument("empty trace file " + path);
  }
  const auto comma = header.find(',');
  if (comma == std::string::npos || header.substr(0, comma) != "step_hours") {
    return InvalidArgument("bad trace header in " + path);
  }
  double step = 0.0;
  try {
    step = std::stod(header.substr(comma + 1));
  } catch (...) {
    return InvalidArgument("bad step value in " + path);
  }
  if (step <= 0.0) {
    return InvalidArgument("non-positive step in " + path);
  }
  std::vector<double> prices;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    try {
      prices.push_back(std::stod(line));
    } catch (...) {
      return InvalidArgument("bad price line in " + path);
    }
  }
  return PriceTrace(step, std::move(prices));
}

}  // namespace flint
