#include "src/trace/market_catalog.h"

#include <algorithm>
#include <cmath>

namespace flint {

SyntheticTraceParams ParamsForVolatility(MarketVolatility volatility, double on_demand_price,
                                         uint64_t seed) {
  SyntheticTraceParams params;
  params.on_demand_price = on_demand_price;
  params.seed = seed;
  // Steady-state prices fall as volatility rises: volatile pools are cheap
  // precisely because demand avoids them. This is the tension Flint's batch
  // policy navigates (cheapest != safest).
  switch (volatility) {
    case MarketVolatility::kCalm:
      params.spikes_per_hour = 1.0 / 700.0;
      params.base_price_fraction = 0.22;
      break;
    case MarketVolatility::kModerate:
      params.spikes_per_hour = 1.0 / 100.0;
      params.base_price_fraction = 0.16;
      break;
    case MarketVolatility::kVolatile:
      params.spikes_per_hour = 1.0 / 19.0;
      params.base_price_fraction = 0.12;
      params.spike_duration_mean = Minutes(45);
      break;
    case MarketVolatility::kExtreme:
      params.spikes_per_hour = 1.0 / 2.0;
      params.base_price_fraction = 0.10;
      params.spike_duration_mean = Minutes(20);
      break;
  }
  return params;
}

std::vector<MarketDesc> Fig2SpotMarkets(uint64_t seed) {
  std::vector<MarketDesc> out;
  const double od = 0.35;  // r3.large-era on-demand price
  struct Preset {
    const char* name;
    MarketVolatility volatility;
  };
  const Preset presets[] = {
      {"us-west-2c", MarketVolatility::kCalm},
      {"eu-west-1c", MarketVolatility::kModerate},
      {"sa-east-1a", MarketVolatility::kVolatile},
  };
  uint64_t s = seed;
  for (const auto& preset : presets) {
    MarketDesc desc;
    desc.name = preset.name;
    desc.on_demand_price = od;
    desc.trace = GenerateSyntheticTrace(ParamsForVolatility(preset.volatility, od, ++s));
    out.push_back(std::move(desc));
  }
  return out;
}

std::vector<MarketDesc> Fig2GceMarkets(uint64_t seed) {
  std::vector<MarketDesc> out;
  struct Preset {
    const char* name;
    double od_price;
    double preemptible_price;
    double mttf;
  };
  // MTTFs from Fig 2b: f1-micro 21.68 h, n1-standard-1 20.26 h,
  // n1-highmem-2 22.92 h. Preemptible prices ~30% of on-demand.
  const Preset presets[] = {
      {"f1-micro", 0.008, 0.0035, 21.68},
      {"n1-standard-1", 0.050, 0.015, 20.26},
      {"n1-highmem-2", 0.126, 0.035, 22.92},
  };
  (void)seed;
  for (const auto& preset : presets) {
    MarketDesc desc;
    desc.name = preset.name;
    desc.on_demand_price = preset.od_price;
    desc.fixed_price = true;
    desc.fixed_price_value = preset.preemptible_price;
    desc.fixed_mttf_hours = preset.mttf;
    desc.max_lifetime_hours = 24.0;
    out.push_back(std::move(desc));
  }
  return out;
}

std::vector<MarketDesc> RegionMarkets(size_t count, uint64_t seed) {
  std::vector<MarketDesc> out;
  out.reserve(count);
  Rng rng(seed);
  // Mixed volatility: mostly calm/moderate pools with a volatile tail, like
  // an EC2 region where MTTFs at the on-demand bid span 18-700 h.
  for (size_t i = 0; i < count; ++i) {
    MarketVolatility volatility;
    const double u = rng.NextDouble();
    if (u < 0.35) {
      volatility = MarketVolatility::kCalm;
    } else if (u < 0.8) {
      volatility = MarketVolatility::kModerate;
    } else {
      volatility = MarketVolatility::kVolatile;
    }
    // One instance type across pools (like the paper's r3 fleet): identical
    // on-demand price, so cost differences come from spot dynamics alone.
    const double od = 0.35;
    MarketDesc desc;
    desc.name = "market-" + std::to_string(i);
    desc.on_demand_price = od;
    desc.trace = GenerateSyntheticTrace(ParamsForVolatility(volatility, od, rng.NextU64()));
    out.push_back(std::move(desc));
  }
  // Correlate a handful of pairs, mirroring Fig 4 where most but not all
  // pairs are uncorrelated.
  if (count >= 6) {
    std::vector<std::pair<size_t, size_t>> pairs = {{0, 3}, {1, 5}};
    // Re-generate those pairs with a shared component. Reuse the generator's
    // correlated-pair machinery over the existing params of pair members.
    for (const auto& [a, b] : pairs) {
      SyntheticTraceParams params = ParamsForVolatility(MarketVolatility::kModerate,
                                                        out[a].on_demand_price, seed ^ (a * 1315423911ULL + b));
      auto traces = GenerateMarketTraces(params, 2, {{0, 1}});
      out[a].trace = std::move(traces[0]);
      out[b].trace = std::move(traces[1]);
    }
  }
  return out;
}

double SampleGceLifetime(Rng& rng, double mean_hours) {
  // Lifetime concentrated near the 24 h cap with an exponential "early
  // preemption" tail: TTF = 24 - Exp(24 - mean), clamped to [0.25, 24].
  const double early = rng.Exponential(std::max(0.5, 24.0 - mean_hours));
  return std::clamp(24.0 - early, 0.25, 24.0);
}

}  // namespace flint
