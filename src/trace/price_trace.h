// Spot-price traces: a fixed-step series of market prices for one spot pool.
//
// The paper's policies consume three statistics of a trace at a given bid:
//   - MTTF(bid): mean length of continuous availability runs (price <= bid),
//   - average price paid while running,
//   - pairwise price correlation between markets (Fig 4).
// This module provides the trace representation, those statistics, and a
// synthetic generator calibrated to the paper's description of EC2 spot
// prices: long quiescent periods at a low base price punctuated by sharp,
// short spikes that exceed even 10x the on-demand price ("peaky" behaviour,
// Section 5.5 / Fig 11b), with spikes uncorrelated across most market pairs.

#ifndef SRC_TRACE_PRICE_TRACE_H_
#define SRC_TRACE_PRICE_TRACE_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/units.h"

namespace flint {

// A price series sampled at a fixed step. Prices are in $/hour.
class PriceTrace {
 public:
  PriceTrace() = default;
  PriceTrace(SimDuration step_hours, std::vector<double> prices)
      : step_(step_hours), prices_(std::move(prices)) {}

  SimDuration step() const { return step_; }
  size_t size() const { return prices_.size(); }
  bool empty() const { return prices_.empty(); }
  SimDuration duration() const { return step_ * static_cast<double>(prices_.size()); }
  const std::vector<double>& prices() const { return prices_; }

  // Price in effect at absolute time t (hours). Times beyond the trace wrap
  // around, so a finite trace can drive an arbitrarily long simulation.
  double PriceAt(SimTime t) const;

  // Index of the sample covering time t (with wraparound).
  size_t IndexAt(SimTime t) const;

 private:
  SimDuration step_ = Minutes(5);
  std::vector<double> prices_;
};

// Statistics of a trace evaluated at a bid price.
struct BidStats {
  double bid = 0.0;
  // Mean time-to-failure: mean length of maximal runs with price <= bid.
  // Infinity when the price never exceeds the bid anywhere in the trace.
  double mttf_hours = 0.0;
  // Time-weighted average price over periods when the server is held
  // (price <= bid). This is what EC2 bills (spot price, not the bid).
  double avg_price = 0.0;
  // Fraction of trace time the server would be held.
  double availability = 0.0;
  // Lengths of each individual availability run, in hours (for ECDFs, Fig 2).
  std::vector<double> run_lengths_hours;
};

// Computes BidStats by scanning the trace once.
BidStats ComputeBidStats(const PriceTrace& trace, double bid);

// Pearson correlation of two price traces (truncated to common length).
double TraceCorrelation(const PriceTrace& a, const PriceTrace& b);

// Parameters of the synthetic peaky-price generator. Defaults approximate a
// moderately volatile EC2 market bid at the on-demand price.
struct SyntheticTraceParams {
  SimDuration step = Minutes(5);
  SimDuration duration = Hours(24.0 * 180);  // six months, like the paper's Jan-Jun 2015 traces
  double on_demand_price = 0.35;             // $/hr (r3.large-era pricing)
  double base_price_fraction = 0.2;          // steady-state spot price as fraction of on-demand
  double base_noise_fraction = 0.03;         // multiplicative jitter around the base price
  double spikes_per_hour = 1.0 / 100.0;      // spike arrival rate -> MTTF ~ 100 h at on-demand bid
  double spike_height_min = 1.2;             // spike peak, in multiples of on-demand (min)
  double spike_height_alpha = 1.5;           // Pareto shape for spike peaks (cap: 10x on-demand)
  SimDuration spike_duration_mean = Minutes(30);
  uint64_t seed = 1;
};

// Generates one synthetic trace.
PriceTrace GenerateSyntheticTrace(const SyntheticTraceParams& params);

// Generates `count` traces with independent spike processes (uncorrelated
// markets). `correlated_pairs` lists index pairs that should instead share
// (part of) their spike process, producing the few correlated squares seen in
// Fig 4.
std::vector<PriceTrace> GenerateMarketTraces(
    const SyntheticTraceParams& params, size_t count,
    const std::vector<std::pair<size_t, size_t>>& correlated_pairs = {});

// CSV persistence: one header line "step_hours,<step>" then one price per
// line. Round-trips through LoadTraceCsv.
Status SaveTraceCsv(const PriceTrace& trace, const std::string& path);
Result<PriceTrace> LoadTraceCsv(const std::string& path);

}  // namespace flint

#endif  // SRC_TRACE_PRICE_TRACE_H_
