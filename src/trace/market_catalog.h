// Catalogs of market descriptors used across the simulator, plus presets that
// approximate the concrete markets the paper measures:
//   - Fig 2a EC2 spot pools: us-west-2c (MTTF ~701 h), eu-west-1c (~101 h),
//     sa-east-1a (~19 h) at a bid equal to the on-demand price;
//   - Fig 2b GCE preemptible types: MTTF ~20-23 h, hard 24 h lifetime cap;
//   - Fig 11b instance types: m1.xlarge, m3.2xlarge, m2.2xlarge.

#ifndef SRC_TRACE_MARKET_CATALOG_H_
#define SRC_TRACE_MARKET_CATALOG_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/trace/price_trace.h"

namespace flint {

// Static description of one spot pool ("market"): identity, on-demand
// reference price, and its price trace.
struct MarketDesc {
  std::string name;
  double on_demand_price = 0.0;  // $/hr for the equivalent on-demand server
  PriceTrace trace;
  // GCE-style fixed-price transient pool: price is constant, revocations
  // follow the preemptible lifetime model instead of price crossings.
  bool fixed_price = false;
  double fixed_price_value = 0.0;
  double fixed_mttf_hours = 0.0;    // for fixed-price pools
  double max_lifetime_hours = 0.0;  // 24 for GCE; 0 = unlimited
};

// Volatility classes for preset generation.
enum class MarketVolatility {
  kCalm,      // MTTF ~700 h at on-demand bid (us-west-2c-like)
  kModerate,  // MTTF ~100 h (eu-west-1c-like)
  kVolatile,  // MTTF ~19 h (sa-east-1a-like)
  kExtreme,   // MTTF ~1-5 h (synthetic stress regime, Fig 6c)
};

SyntheticTraceParams ParamsForVolatility(MarketVolatility volatility, double on_demand_price,
                                         uint64_t seed);

// The three EC2 pools from Fig 2a.
std::vector<MarketDesc> Fig2SpotMarkets(uint64_t seed);

// The three GCE preemptible types from Fig 2b (fixed price, ~24 h lifetime).
std::vector<MarketDesc> Fig2GceMarkets(uint64_t seed);

// A pool of `count` markets of mixed volatility with a few correlated pairs,
// approximating one EC2 region's markets (Figs 4, 9, 11a).
std::vector<MarketDesc> RegionMarkets(size_t count, uint64_t seed);

// Samples time-to-failure draws for a GCE preemptible VM: revocation is
// guaranteed within 24 h; empirically most instances survive close to the
// cap, giving MTTFs of ~20-23 h (Fig 2b).
double SampleGceLifetime(Rng& rng, double mean_hours = 21.5);

}  // namespace flint

#endif  // SRC_TRACE_MARKET_CATALOG_H_
