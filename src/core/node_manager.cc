#include "src/core/node_manager.h"

#include <algorithm>

#include "src/common/log.h"
#include "src/common/stats.h"
#include "src/obs/trace.h"

// flint-lint: allow-file(det-wallclock) the engine->sim time mapping and lease accounting are wall-clock by definition

namespace flint {

NodeHealthLedger& NodeHealthLedger::Global() {
  static NodeHealthLedger* ledger = new NodeHealthLedger();
  return *ledger;
}

void NodeHealthLedger::Record(NodeId node, const NodeHealth& health) {
  MutexLock lock(&mutex_);
  health_[node] = health;
}

bool NodeHealthLedger::Lookup(NodeId node, NodeHealth* out) const {
  ReaderMutexLock lock(&mutex_);
  auto it = health_.find(node);
  if (it == health_.end()) {
    return false;
  }
  *out = it->second;
  return true;
}

void NodeHealthLedger::Forget(NodeId node) {
  MutexLock lock(&mutex_);
  health_.erase(node);
}

void NodeHealthLedger::Reset() {
  MutexLock lock(&mutex_);
  health_.clear();
}

NodeManager::NodeManager(FlintContext* ctx, Marketplace* marketplace, FaultToleranceManager* ft,
                         NodeManagerConfig config)
    : ctx_(ctx),
      marketplace_(marketplace),
      ft_(ft),
      config_(std::move(config)),
      selector_(marketplace, config_.selection),
      engine_start_(WallClock::now()) {
  ctx_->AddObserver(this);
  metrics_collector_ = ScopedCollector(
      &MetricsRegistry::Global(), [this](std::vector<MetricSample>& out) {
        auto counter = [&out](const char* name, uint64_t v) {
          out.push_back({name, MetricType::kCounter, static_cast<double>(v)});
        };
        counter("flint_node_acquisitions", acquisitions_.load(std::memory_order_relaxed));
        counter("flint_node_on_demand_fallbacks",
                od_fallbacks_.load(std::memory_order_relaxed));
        counter("flint_node_replacements", replacements_.load(std::memory_order_relaxed));
        counter("flint_node_warnings", warnings_seen_.load(std::memory_order_relaxed));
        counter("flint_node_revocations", revocations_seen_.load(std::memory_order_relaxed));
        counter("flint_node_quarantines", quarantines_.load(std::memory_order_relaxed));
        counter("flint_node_unquarantines", unquarantines_.load(std::memory_order_relaxed));
        bool started = false;
        {
          ReaderMutexLock lock(&mutex_);
          started = started_;
          if (!health_.empty()) {
            double min_score = 1.0;
            int quarantined_now = 0;
            // min/int-count are order-independent, so hash order is safe here.
            for (const auto& [id, h] : health_) {
              min_score = std::min(min_score, h.score);
              if (h.quarantined) {
                ++quarantined_now;
              }
            }
            out.push_back({"flint_node_health_min", MetricType::kGauge, min_score});
            out.push_back({"flint_node_quarantined_now", MetricType::kGauge,
                           static_cast<double>(quarantined_now)});
          }
        }
        if (started) {
          out.push_back({"flint_node_total_cost", MetricType::kGauge, TotalCost()});
          out.push_back({"flint_node_on_demand_equivalent_cost", MetricType::kGauge,
                         OnDemandEquivalentCost()});
        }
      });
}

NodeManager::~NodeManager() {
  ctx_->RemoveObserver(this);
  timers_.Drain();
}

SimTime NodeManager::Now() const {
  const double elapsed_s = WallDuration(WallClock::now() - engine_start_.load()).count();
  return config_.sim_start + ctx_->cluster().time_config().FromEngineSeconds(elapsed_s);
}

Result<std::vector<MarketId>> NodeManager::InitialMarkets() {
  const SimTime now = Now();
  std::vector<MarketId> per_node(static_cast<size_t>(config_.cluster_size), kOnDemandMarket);
  switch (config_.policy) {
    case SelectionPolicyKind::kFlintBatch: {
      FLINT_ASSIGN_OR_RETURN(MarketEvaluation ev, selector_.SelectBatch(now, config_.job));
      std::fill(per_node.begin(), per_node.end(), ev.id);
      return per_node;
    }
    case SelectionPolicyKind::kFlintInteractive: {
      FLINT_ASSIGN_OR_RETURN(MixEvaluation mix, selector_.SelectInteractive(now, config_.job));
      for (size_t i = 0; i < per_node.size(); ++i) {
        per_node[i] = mix.markets[i % mix.markets.size()];
      }
      return per_node;
    }
    case SelectionPolicyKind::kSpotFleetCheapest: {
      FLINT_ASSIGN_OR_RETURN(MarketEvaluation ev, selector_.SelectCheapest(now, config_.job));
      std::fill(per_node.begin(), per_node.end(), ev.id);
      return per_node;
    }
    case SelectionPolicyKind::kSpotFleetLeastVolatile: {
      FLINT_ASSIGN_OR_RETURN(MarketEvaluation ev,
                             selector_.SelectLeastVolatile(now, config_.job));
      std::fill(per_node.begin(), per_node.end(), ev.id);
      return per_node;
    }
    case SelectionPolicyKind::kOnDemand:
      return per_node;
  }
  return Internal("unknown policy");
}

Status NodeManager::Start() {
  {
    MutexLock lock(&mutex_);
    if (started_) {
      return FailedPrecondition("node manager already started");
    }
    started_ = true;
    engine_start_.store(WallClock::now());
  }
  FLINT_ASSIGN_OR_RETURN(std::vector<MarketId> markets, InitialMarkets());
  const SimTime now = Now();
  for (MarketId market : markets) {
    Result<Lease> lease = marketplace_->Acquire(market, selector_.BidFor(market), now);
    if (!lease.ok()) {
      // Spot request refused (price moved): fall back to on-demand.
      od_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      lease = marketplace_->Acquire(kOnDemandMarket, marketplace_->on_demand_price(), now);
    }
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
    const NodeId id = ctx_->cluster().AddNode(lease->market, config_.node_memory_bytes,
                                              config_.executor_threads);
    Tracer::Global().RecordInstant("node_acquired", "market",
                                   {{"node", static_cast<double>(id)},
                                    {"market", static_cast<double>(lease->market)},
                                    {"bid", lease->bid}});
    {
      MutexLock lock(&mutex_);
      leases_[id] = LeaseRecord{*lease, true, 0.0};
    }
    if (config_.market_driven_revocations && std::isfinite(lease->revocation)) {
      ScheduleMarketRevocation(id, lease->revocation);
    }
  }
  UpdateFtMttf();
  return Status::Ok();
}

void NodeManager::ScheduleMarketRevocation(NodeId node, SimTime revocation_time) {
  const TimeConfig& tc = ctx_->cluster().time_config();
  const SimTime warn_at = revocation_time - tc.revocation_warning;
  const double delay_s = std::max(0.0, tc.ToEngineSeconds(warn_at - Now()));
  timers_.ScheduleAfter(WallDuration(delay_s), [this, node] {
    ctx_->cluster().Revoke({node}, /*with_warning=*/true);
  });
}

void NodeManager::UpdateFtMttf() {
  if (ft_ == nullptr) {
    return;
  }
  // Aggregate MTTF of the distinct markets currently in use (Eq. 3).
  std::vector<double> mttfs;
  {
    MutexLock lock(&mutex_);
    std::unordered_set<MarketId> seen;
    for (const auto& [id, rec] : leases_) {
      if (!rec.open || !seen.insert(rec.lease.market).second) {
        continue;
      }
      mttfs.push_back(marketplace_
                          ->WindowStats(rec.lease.market, Now(), config_.selection.history_window,
                                        rec.lease.bid)
                          .mttf_hours);
    }
  }
  // leases_ iterates in hash order; AggregateMttf folds doubles, so sort the
  // samples to keep τ (and everything checkpointing derives from it)
  // bit-identical across runs.
  std::sort(mttfs.begin(), mttfs.end());
  ft_->SetMttf(AggregateMttf(mttfs));
}

void NodeManager::OnNodeWarning(const NodeInfo& node) {
  // Immediate market re-selection on the 2-minute warning (Sec 4): request
  // the replacement before the node is even gone.
  warnings_seen_.fetch_add(1, std::memory_order_relaxed);
  MarketId revoked_market = node.market;
  {
    MutexLock lock(&mutex_);
    if (!warned_.insert(node.node_id).second) {
      return;  // replacement already requested for this node
    }
    auto it = leases_.find(node.node_id);
    if (it != leases_.end()) {
      revoked_market = it->second.lease.market;
    }
    if (revoked_market != kOnDemandMarket) {
      recently_revoked_[revoked_market] = Now();
    }
  }
  ProvisionReplacement(revoked_market);
}

void NodeManager::PruneRevokedLocked(SimTime now) {
  for (auto it = recently_revoked_.begin(); it != recently_revoked_.end();) {
    if (now - it->second > config_.revocation_exclusion_cooldown) {
      it = recently_revoked_.erase(it);
    } else {
      ++it;
    }
  }
}

void NodeManager::ProvisionReplacement(MarketId revoked_market) {
  replacements_.fetch_add(1, std::memory_order_relaxed);
  const SimTime now = Now();
  std::unordered_set<MarketId> exclude;
  {
    MutexLock lock(&mutex_);
    PruneRevokedLocked(now);
    for (const auto& [market, since] : recently_revoked_) {
      exclude.insert(market);
    }
  }
  if (revoked_market != kOnDemandMarket) {
    exclude.insert(revoked_market);
  }
  Result<MarketEvaluation> choice =
      selector_.SelectReplacement(config_.policy, now, config_.job, exclude);
  MarketId market = choice.ok() ? choice->id : kOnDemandMarket;
  Result<Lease> lease = marketplace_->Acquire(market, selector_.BidFor(market), now);
  if (!lease.ok()) {
    od_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    lease = marketplace_->Acquire(kOnDemandMarket, marketplace_->on_demand_price(), now);
  }
  acquisitions_.fetch_add(1, std::memory_order_relaxed);
  const NodeId id = ctx_->cluster().AddNodeAfterDelay(lease->market, config_.node_memory_bytes,
                                                      config_.executor_threads);
  Tracer::Global().RecordInstant("node_acquired", "market",
                                 {{"node", static_cast<double>(id)},
                                  {"market", static_cast<double>(lease->market)},
                                  {"bid", lease->bid},
                                  {"replacement", 1.0}});
  {
    MutexLock lock(&mutex_);
    leases_[id] = LeaseRecord{*lease, true, 0.0};
    if (revoked_market != kOnDemandMarket) {
      // When this node joins, only the market it restores is re-admitted.
      replacement_for_[id] = revoked_market;
    }
  }
  if (config_.market_driven_revocations && std::isfinite(lease->revocation)) {
    ScheduleMarketRevocation(id, lease->revocation);
  }
  UpdateFtMttf();
}

double NodeManager::CloseLeaseCost(LeaseRecord& rec, SimTime end) {
  rec.open = false;
  rec.end = end;
  return marketplace_->Cost(rec.lease, end);
}

void NodeManager::OnNodeRevoked(const NodeInfo& node) {
  revocations_seen_.fetch_add(1, std::memory_order_relaxed);
  bool need_replacement = false;
  {
    MutexLock lock(&mutex_);
    auto it = leases_.find(node.node_id);
    if (it != leases_.end() && it->second.open) {
      closed_cost_ += CloseLeaseCost(it->second, Now());
    }
    // Revocation without a warning (e.g. scripted hard kill): the warning
    // path never requested a replacement, so do it now.
    need_replacement = warned_.insert(node.node_id).second;
    // The node is gone but its record isn't: park the final health in the
    // process-wide ledger so a re-acquired id inherits its history instead
    // of starting back at a perfect score.
    auto hit = health_.find(node.node_id);
    if (hit != health_.end()) {
      NodeHealthLedger::Global().Record(node.node_id, hit->second);
      health_.erase(hit);
    }
  }
  if (need_replacement) {
    ProvisionReplacement(node.market);
  }
}

void NodeManager::OnNodeAdded(const NodeInfo& node) {
  // A replacement joining restores exactly the market it was provisioned
  // for — a storm elsewhere must not re-admit every excluded market at once.
  MutexLock lock(&mutex_);
  auto it = replacement_for_.find(node.node_id);
  if (it != replacement_for_.end()) {
    recently_revoked_.erase(it->second);
    replacement_for_.erase(it);
  }
  PruneRevokedLocked(Now());
}

void NodeManager::OnTaskAttemptFinished(NodeId node, double seconds, bool success) {
  if (!config_.health.enabled) {
    return;
  }
  double sample = 0.0;
  if (success) {
    MutexLock lock(&mutex_);
    // Relative-runtime sample: a node matching the cluster mean scores ~1, a
    // node k times slower scores ~1/k. The first sample (no mean yet) and
    // instantaneous runtimes count as healthy.
    sample = (seconds <= 0.0 || runtime_stats_.count() == 0)
                 ? 1.0
                 : std::clamp(runtime_stats_.mean() / seconds, 0.0, 1.0);
    runtime_stats_.Add(seconds);
  }
  AddHealthSample(node, sample);
}

void NodeManager::OnTaskDeadlineMiss(NodeId node) {
  if (!config_.health.enabled) {
    return;
  }
  AddHealthSample(node, 0.0);
}

void NodeManager::OnLinkSample(NodeId node, double throughput_ratio, bool slow) {
  if (!config_.health.enabled) {
    return;
  }
  // A link-slow fetch indicts the producing node the same way a deadline
  // miss does: its NIC, not its CPU, is the bottleneck, but scheduling onto
  // it hurts just the same. Healthy samples fold in the observed ratio so a
  // merely-degraded link drags the score proportionally.
  const double sample = slow ? 0.0 : std::clamp(throughput_ratio, 0.0, 1.0);
  // Charge the observed throughput against the node's market so selection
  // sees the degradation: a market full of sick links prices itself out.
  {
    MarketId market = kOnDemandMarket;
    bool known = false;
    {
      ReaderMutexLock lock(&mutex_);
      auto it = leases_.find(node);
      if (it != leases_.end()) {
        market = it->second.lease.market;
        known = true;
      }
    }
    if (known) {
      selector_.RecordObservedThroughput(market, std::clamp(throughput_ratio, 0.01, 1.0));
    }
  }
  const bool was_quarantined = Quarantined(node);
  AddHealthSample(node, sample);
  if (slow && !was_quarantined && Quarantined(node)) {
    Tracer::Global().RecordInstant("link_quarantine", "net",
                                   {{"node", static_cast<double>(node)},
                                    {"score", HealthScore(node)}});
  }
}

NodeHealth& NodeManager::HealthLocked(NodeId node) {
  auto [it, inserted] = health_.try_emplace(node);
  if (inserted) {
    // First touch in this manager's lifetime: inherit whatever a previous
    // life (earlier manager, earlier lease of the same id) recorded.
    NodeHealthLedger::Global().Lookup(node, &it->second);
  }
  return it->second;
}

void NodeManager::AddHealthSample(NodeId node, double sample) {
  const NodeHealthConfig& hc = config_.health;
  bool want_quarantine = false;
  double score = 1.0;
  {
    MutexLock lock(&mutex_);
    NodeHealth& h = HealthLocked(node);
    h.score = (1.0 - hc.ewma_alpha) * h.score + hc.ewma_alpha * sample;
    ++h.samples;
    score = h.score;
    if (!h.quarantined && h.samples >= hc.min_samples && h.score < hc.quarantine_threshold) {
      h.quarantined = true;  // tentative until the context accepts it
      want_quarantine = true;
    }
    NodeHealthLedger::Global().Record(node, h);
  }
  // Publish every sample so PickNode's weighting tracks degradation long
  // before (and after) the quarantine threshold.
  ctx_->SetNodeHealthScore(node, score);
  if (want_quarantine) {
    ApplyQuarantine(node, score);
  }
}

void NodeManager::ApplyQuarantine(NodeId node, double score) {
  if (ctx_->SetNodeQuarantined(node, true)) {
    quarantines_.fetch_add(1, std::memory_order_relaxed);
    FLINT_ILOG() << "node " << node << " quarantined (health score " << score << ")";
    Tracer::Global().RecordInstant("node_quarantined", "cluster",
                                   {{"node", static_cast<double>(node)}, {"score", score}});
    timers_.ScheduleAfter(WallDuration(config_.health.decay_interval_seconds),
                          [this, node] { DecayHealth(node); });
    return;
  }
  // Refused: this is the last schedulable node. Roll the mark back and lift
  // the score to the threshold so the next bad sample retries instead of
  // hammering the context on every completion.
  double lifted = config_.health.quarantine_threshold;
  {
    MutexLock lock(&mutex_);
    auto it = health_.find(node);
    if (it != health_.end()) {
      it->second.quarantined = false;
      it->second.score = std::max(it->second.score, config_.health.quarantine_threshold);
      lifted = it->second.score;
      NodeHealthLedger::Global().Record(node, it->second);
    }
  }
  ctx_->SetNodeHealthScore(node, lifted);
}

void NodeManager::DecayHealth(NodeId node) {
  const NodeHealthConfig& hc = config_.health;
  bool recovered = false;
  double score = 1.0;
  {
    MutexLock lock(&mutex_);
    auto it = health_.find(node);
    if (it == health_.end() || !it->second.quarantined) {
      return;  // revoked or already lifted
    }
    NodeHealth& h = it->second;
    h.score += hc.decay_rate * (1.0 - h.score);
    score = h.score;
    if (h.score >= hc.recover_threshold) {
      h.quarantined = false;
      // Require a fresh run of bad samples before re-quarantining.
      h.samples = 0;
      recovered = true;
    }
    NodeHealthLedger::Global().Record(node, h);
  }
  ctx_->SetNodeHealthScore(node, score);
  if (recovered) {
    ctx_->SetNodeQuarantined(node, false);
    unquarantines_.fetch_add(1, std::memory_order_relaxed);
    FLINT_ILOG() << "node " << node << " recovered from quarantine (health score " << score
                 << ")";
    Tracer::Global().RecordInstant("node_unquarantined", "cluster",
                                   {{"node", static_cast<double>(node)}, {"score", score}});
  } else {
    timers_.ScheduleAfter(WallDuration(hc.decay_interval_seconds),
                          [this, node] { DecayHealth(node); });
  }
}

double NodeManager::HealthScore(NodeId node) const {
  {
    ReaderMutexLock lock(&mutex_);
    auto it = health_.find(node);
    if (it != health_.end()) {
      return it->second.score;
    }
  }
  // Not yet touched in this manager's lifetime: report the ledger's view so
  // a re-acquired flaky node reads as suspect before its first new sample.
  NodeHealth prior;
  return NodeHealthLedger::Global().Lookup(node, &prior) ? prior.score : 1.0;
}

bool NodeManager::Quarantined(NodeId node) const {
  {
    ReaderMutexLock lock(&mutex_);
    auto it = health_.find(node);
    if (it != health_.end()) {
      return it->second.quarantined;
    }
  }
  NodeHealth prior;
  return NodeHealthLedger::Global().Lookup(node, &prior) && prior.quarantined;
}

double NodeManager::TotalCost() const {
  ReaderMutexLock lock(&mutex_);
  const SimTime now = Now();
  // Fold per-lease costs in node-id order: leases_ iterates in hash order
  // and float addition is not associative, so an unsorted sum's low bits
  // would differ run to run.
  std::vector<std::pair<NodeId, double>> open_costs;
  open_costs.reserve(leases_.size());
  for (const auto& [id, rec] : leases_) {
    if (rec.open) {
      open_costs.emplace_back(id, marketplace_->Cost(rec.lease, now));
    }
  }
  std::sort(open_costs.begin(), open_costs.end());
  double total = closed_cost_;
  for (const auto& [id, c] : open_costs) {
    total += c;
  }
  return total;
}

double NodeManager::OnDemandEquivalentCost() const {
  ReaderMutexLock lock(&mutex_);
  // On-demand bills whole hours per server, like the spot side. Same
  // sorted-fold as TotalCost for run-to-run bit-identical sums.
  const SimTime now = Now();
  std::vector<std::pair<NodeId, double>> costs;
  costs.reserve(leases_.size());
  for (const auto& [id, rec] : leases_) {
    const double hours = rec.open ? std::max(0.0, now - rec.lease.start)
                                  : std::max(0.0, rec.end - rec.lease.start);
    costs.emplace_back(id, std::ceil(hours - 1e-9) * marketplace_->on_demand_price());
  }
  std::sort(costs.begin(), costs.end());
  double cost = 0.0;
  for (const auto& [id, c] : costs) {
    cost += c;
  }
  return cost;
}

std::vector<MarketId> NodeManager::ExcludedMarkets() const {
  ReaderMutexLock lock(&mutex_);
  std::vector<MarketId> out;
  out.reserve(recently_revoked_.size());
  for (const auto& [market, since] : recently_revoked_) {
    out.push_back(market);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<MarketId> NodeManager::ActiveMarkets() const {
  ReaderMutexLock lock(&mutex_);
  std::unordered_set<MarketId> seen;
  std::vector<MarketId> out;
  for (const auto& [id, rec] : leases_) {
    if (rec.open && seen.insert(rec.lease.market).second) {
      out.push_back(rec.lease.market);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace flint
