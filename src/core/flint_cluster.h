// FlintCluster: the managed-service facade (paper Sec 2.3) that wires every
// subsystem together: marketplace (spot pools), cluster manager (node
// lifecycle), DFS (checkpoint store), engine context, fault-tolerance
// manager, and node manager. Most examples and benches only need this class.

#ifndef SRC_CORE_FLINT_CLUSTER_H_
#define SRC_CORE_FLINT_CLUSTER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/checkpoint/ft_manager.h"
#include "src/cluster/cluster_manager.h"
#include "src/core/node_manager.h"
#include "src/dfs/dfs.h"
#include "src/engine/context.h"
#include "src/market/marketplace.h"

namespace flint {

struct FlintOptions {
  // Markets. If empty, RegionMarkets(16, seed) is generated.
  std::vector<MarketDesc> markets;
  double on_demand_price = 0.35;
  uint64_t seed = 42;

  TimeConfig time;
  EngineConfig engine;
  DfsConfig dfs;
  CheckpointConfig checkpoint;
  NodeManagerConfig nodes;
};

// End-to-end result of one measured job.
struct JobReport {
  Status status;
  double wall_seconds = 0.0;
  double cost_dollars = 0.0;             // accrued over the job
  double on_demand_cost_dollars = 0.0;   // same node-hours at on-demand price
  uint64_t tasks_run = 0;
  uint64_t task_failures = 0;
  uint64_t partitions_recomputed = 0;
  uint64_t checkpoint_writes = 0;
  uint64_t checkpoint_bytes = 0;
  double acquisition_wait_seconds = 0.0;
};

class FlintCluster {
 public:
  explicit FlintCluster(FlintOptions options);
  ~FlintCluster();

  FlintCluster(const FlintCluster&) = delete;
  FlintCluster& operator=(const FlintCluster&) = delete;

  // Provisions the initial nodes and starts the checkpoint signal thread.
  Status Start();

  FlintContext& ctx() { return *ctx_; }
  ClusterManager& cluster() { return *cluster_; }
  Marketplace& marketplace() { return *marketplace_; }
  Dfs& dfs() { return *dfs_; }
  FaultToleranceManager& ft() { return *ft_; }
  NodeManager& nodes() { return *node_manager_; }
  const FlintOptions& options() const { return options_; }

  // Runs `job` against the context and reports wall time, cost, and engine
  // counter deltas for just that job.
  JobReport RunMeasured(const std::function<Status(FlintContext&)>& job);

 private:
  FlintOptions options_;
  std::unique_ptr<Marketplace> marketplace_;
  std::unique_ptr<ClusterManager> cluster_;
  std::unique_ptr<Dfs> dfs_;
  std::unique_ptr<FlintContext> ctx_;
  std::unique_ptr<FaultToleranceManager> ft_;
  std::unique_ptr<NodeManager> node_manager_;
};

}  // namespace flint

#endif  // SRC_CORE_FLINT_CLUSTER_H_
