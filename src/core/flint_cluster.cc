#include "src/core/flint_cluster.h"

#include "src/trace/market_catalog.h"

// flint-lint: allow-file(det-wallclock) job wall-time is report telemetry; it never feeds partition data

namespace flint {

FlintCluster::FlintCluster(FlintOptions options) : options_(std::move(options)) {
  if (options_.markets.empty()) {
    options_.markets = RegionMarkets(16, options_.seed);
  }
  marketplace_ = std::make_unique<Marketplace>(options_.markets, options_.on_demand_price,
                                               options_.seed ^ 0x5eedULL);
  cluster_ = std::make_unique<ClusterManager>(options_.time);
  dfs_ = std::make_unique<Dfs>(options_.dfs);
  ctx_ = std::make_unique<FlintContext>(cluster_.get(), dfs_.get(), options_.engine);
  CheckpointConfig ckpt = options_.checkpoint;
  ckpt.time = options_.time;
  ft_ = std::make_unique<FaultToleranceManager>(ctx_.get(), ckpt);
  node_manager_ = std::make_unique<NodeManager>(ctx_.get(), marketplace_.get(), ft_.get(),
                                                options_.nodes);
}

FlintCluster::~FlintCluster() {
  ft_->Stop();
  cluster_->DrainEvents();
}

Status FlintCluster::Start() {
  FLINT_RETURN_IF_ERROR(node_manager_->Start());
  ft_->Start();
  return Status::Ok();
}

JobReport FlintCluster::RunMeasured(const std::function<Status(FlintContext&)>& job) {
  JobReport report;
  EngineCounters& c = ctx_->counters();
  const uint64_t tasks0 = c.tasks_run.load();
  const uint64_t fail0 = c.task_failures.load();
  const uint64_t rec0 = c.partitions_recomputed.load();
  const uint64_t ckw0 = c.checkpoint_writes.load();
  const uint64_t ckb0 = c.checkpoint_bytes.load();
  const int64_t acq0 = c.acquisition_wait_nanos.load();
  const double cost0 = node_manager_->TotalCost();
  const double od0 = node_manager_->OnDemandEquivalentCost();

  const auto t0 = WallClock::now();
  report.status = job(*ctx_);
  report.wall_seconds = WallDuration(WallClock::now() - t0).count();

  report.tasks_run = c.tasks_run.load() - tasks0;
  report.task_failures = c.task_failures.load() - fail0;
  report.partitions_recomputed = c.partitions_recomputed.load() - rec0;
  report.checkpoint_writes = c.checkpoint_writes.load() - ckw0;
  report.checkpoint_bytes = c.checkpoint_bytes.load() - ckb0;
  report.acquisition_wait_seconds =
      static_cast<double>(c.acquisition_wait_nanos.load() - acq0) * 1e-9;
  report.cost_dollars = node_manager_->TotalCost() - cost0;
  report.on_demand_cost_dollars = node_manager_->OnDemandEquivalentCost() - od0;
  return report;
}

}  // namespace flint
