// The node manager (paper Sec 4, Fig 5): provisions a cluster of N transient
// servers using a server-selection policy, monitors market state, replaces
// revoked servers (restoration policy), keeps the fault-tolerance manager's
// cluster MTTF estimate current, and bills every lease.
//
// It bridges the two time planes: engine wall time advances the simulated
// market clock at TimeConfig::seconds_per_model_hour. With
// market_driven_revocations, leases' trace-determined revocation times are
// scheduled onto the cluster as warnings + revocations; benches that need
// scripted faults leave it off and call ClusterManager::Revoke directly.

#ifndef SRC_CORE_NODE_MANAGER_H_
#define SRC_CORE_NODE_MANAGER_H_

#include <atomic>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/checkpoint/ft_manager.h"
#include "src/cluster/timer_queue.h"
#include "src/common/mutex.h"
#include "src/common/stats.h"
#include "src/common/thread_annotations.h"
#include "src/engine/context.h"
#include "src/engine/observer.h"
#include "src/market/marketplace.h"
#include "src/select/selection.h"

namespace flint {

// Node-health scoring (DESIGN.md "Straggler mitigation"). Every finished
// task attempt updates an EWMA health score per node: a success contributes
// its runtime relative to the cluster mean (a node 8x slower than its peers
// scores ~0.125), a failure or deadline miss contributes 0. Nodes whose
// score sinks below quarantine_threshold (after min_samples) are excluded
// from scheduling — a reversible drain — and recover by timer-driven decay
// back toward 1.0, rejoining once the score passes recover_threshold.
struct NodeHealthConfig {
  bool enabled = true;
  double ewma_alpha = 0.3;            // weight of the newest sample
  double quarantine_threshold = 0.35; // quarantine below this score
  double recover_threshold = 0.7;     // un-quarantine once decay reaches this
  int min_samples = 4;                // samples before quarantine can trigger
  double decay_interval_seconds = 0.25;  // quarantined-score recovery tick
  double decay_rate = 0.15;           // score += rate * (1 - score) per tick
};

// One node's EWMA health state (see NodeHealthConfig).
struct NodeHealth {
  double score = 1.0;
  int samples = 0;
  bool quarantined = false;
};

// Process-wide health ledger keyed by node id. Health history must outlive
// any one NodeManager: a transient node whose link or CPU proved sick stays
// suspect when a later manager (or a later job in the same process)
// re-acquires the same node id, instead of starting back at a perfect score
// and burning another min_samples' worth of slow tasks to rediscover it.
class NodeHealthLedger {
 public:
  static NodeHealthLedger& Global();

  // Records `node`'s current health (write-through from NodeManager).
  void Record(NodeId node, const NodeHealth& health);
  // Copies the recorded health for `node` into `out`; false if never seen.
  bool Lookup(NodeId node, NodeHealth* out) const;
  // Drops one node's history / all history (test isolation).
  void Forget(NodeId node);
  void Reset();

 private:
  mutable Mutex mutex_{"NodeHealthLedger::mutex_"};
  std::unordered_map<NodeId, NodeHealth> health_ GUARDED_BY(mutex_);
};

struct NodeManagerConfig {
  int cluster_size = 10;
  uint64_t node_memory_bytes = 64 * kMiB;
  int executor_threads = 1;
  SelectionPolicyKind policy = SelectionPolicyKind::kFlintBatch;
  SelectionConfig selection;
  JobProfile job;
  // Drive revocations from the market traces (demo / end-to-end runs).
  // Benches with scripted fault plans keep this false.
  bool market_driven_revocations = false;
  // Simulated epoch at which the cluster starts; defaults to one window in so
  // "recent history" exists.
  SimTime sim_start = Hours(24.0 * 7);
  // A market revoked recently is excluded from restoration until its own
  // replacement joins, or this much simulated time passes, whichever comes
  // first (a storm elsewhere must not re-admit a market still in turmoil).
  SimDuration revocation_exclusion_cooldown = Hours(1.0);
  NodeHealthConfig health;
};

class NodeManager : public EngineObserver {
 public:
  NodeManager(FlintContext* ctx, Marketplace* marketplace, FaultToleranceManager* ft,
              NodeManagerConfig config);
  ~NodeManager() override;

  NodeManager(const NodeManager&) = delete;
  NodeManager& operator=(const NodeManager&) = delete;

  // Runs the initial selection policy and provisions cluster_size nodes.
  Status Start();

  // Current simulated market time.
  SimTime Now() const;

  // Total cost accrued so far across all leases (closed + open-to-now).
  double TotalCost() const;
  // What the same node-hours would have cost on on-demand servers.
  double OnDemandEquivalentCost() const;

  // Markets currently in use (distinct, live nodes).
  std::vector<MarketId> ActiveMarkets() const;
  // Markets currently excluded from restoration (sorted); observability for
  // dashboards and tests.
  std::vector<MarketId> ExcludedMarkets() const;
  const ServerSelector& selector() const { return selector_; }

  // Current EWMA health score of `node` (1.0 when unknown) and whether the
  // health scorer holds it in quarantine.
  double HealthScore(NodeId node) const;
  bool Quarantined(NodeId node) const;

  // EngineObserver:
  void OnNodeWarning(const NodeInfo& node) override;
  void OnNodeRevoked(const NodeInfo& node) override;
  void OnNodeAdded(const NodeInfo& node) override;
  void OnTaskAttemptFinished(NodeId node, double seconds, bool success) override;
  void OnTaskDeadlineMiss(NodeId node) override;
  void OnLinkSample(NodeId node, double throughput_ratio, bool slow) override;

 private:
  struct LeaseRecord {
    Lease lease;
    bool open = true;
    SimTime end = 0.0;
  };
  // Picks markets for the initial cluster per the policy. Returns one entry
  // per node (round-robin across the mix for interactive).
  Result<std::vector<MarketId>> InitialMarkets();
  // Acquires a lease and registers a node joining after the acquisition
  // delay. Falls back to on-demand if the market refuses.
  void ProvisionReplacement(MarketId preferred);
  void UpdateFtMttf();
  // Drops exclusion entries older than the cooldown.
  void PruneRevokedLocked(SimTime now) REQUIRES(mutex_);
  void ScheduleMarketRevocation(NodeId node, SimTime revocation_time);
  // Mutates a LeaseRecord living inside leases_.
  double CloseLeaseCost(LeaseRecord& rec, SimTime end) REQUIRES(mutex_);
  // Folds one health sample (1.0 = healthy, 0.0 = failure/miss) into the
  // node's EWMA and quarantines it when the score sinks below threshold.
  void AddHealthSample(NodeId node, double sample);
  // This manager's view of `node`'s health, seeded from the process-wide
  // ledger on first touch so prior-life history carries over.
  NodeHealth& HealthLocked(NodeId node) REQUIRES(mutex_);
  // Actually excludes `node` from scheduling (outside mutex_: the context's
  // node lock orders after ours) and arms the recovery decay timer. Rolls
  // the mark back if the context refuses (last schedulable node).
  void ApplyQuarantine(NodeId node, double score);
  // Timer tick: decays a quarantined node's score toward 1.0 and lifts the
  // quarantine once it crosses the recovery threshold.
  void DecayHealth(NodeId node);

  FlintContext* ctx_;
  Marketplace* marketplace_;
  FaultToleranceManager* ft_;
  NodeManagerConfig config_;
  ServerSelector selector_;

  mutable Mutex mutex_{"NodeManager::mutex_"};
  // Atomic, not mutex_-guarded: Now() is called while mutex_ is already held
  // (cost accounting) as well as lock-free from the timer thread.
  std::atomic<WallTime> engine_start_;
  bool started_ GUARDED_BY(mutex_) = false;
  std::unordered_map<NodeId, LeaseRecord> leases_ GUARDED_BY(mutex_);
  std::unordered_set<NodeId> warned_ GUARDED_BY(mutex_);  // replacement already requested
  // Markets excluded from restoration, keyed by when the exclusion started.
  // An entry clears when that market's replacement lands (replacement_for_)
  // or lazily once the configured cooldown elapses.
  std::unordered_map<MarketId, SimTime> recently_revoked_ GUARDED_BY(mutex_);
  // Pending replacement node -> the market whose revocation it restores.
  std::unordered_map<NodeId, MarketId> replacement_for_ GUARDED_BY(mutex_);
  double closed_cost_ GUARDED_BY(mutex_) = 0.0;
  // Per-node health scores plus the cluster-wide successful-runtime mean the
  // relative-runtime samples are measured against.
  std::unordered_map<NodeId, NodeHealth> health_ GUARDED_BY(mutex_);
  RunningStats runtime_stats_ GUARDED_BY(mutex_);

  // Lease-lifecycle accounting, exported as flint_node_* metrics.
  std::atomic<uint64_t> acquisitions_{0};       // leases acquired (initial + replacement)
  std::atomic<uint64_t> od_fallbacks_{0};       // spot refusals that fell back to on-demand
  std::atomic<uint64_t> replacements_{0};       // replacement provisions requested
  std::atomic<uint64_t> warnings_seen_{0};      // revocation warnings observed
  std::atomic<uint64_t> revocations_seen_{0};   // revocations observed
  std::atomic<uint64_t> quarantines_{0};        // health quarantines imposed
  std::atomic<uint64_t> unquarantines_{0};      // health quarantines lifted

  TimerQueue timers_;

  // Exports the counters above plus cost gauges; declared last so it unhooks
  // before the state it reads is torn down.
  ScopedCollector metrics_collector_;
};

}  // namespace flint

#endif  // SRC_CORE_NODE_MANAGER_H_
