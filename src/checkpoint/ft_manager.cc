#include "src/checkpoint/ft_manager.h"

#include <algorithm>
#include <deque>

#include "src/common/log.h"
#include "src/obs/trace.h"

namespace flint {

FaultToleranceManager::FaultToleranceManager(FlintContext* ctx, CheckpointConfig config)
    : ctx_(ctx),
      config_(config),
      mttf_hours_(config.mttf_hours),
      delta_seconds_(config.initial_delta_seconds),
      last_shuffle_checkpoint_(WallClock::now()) {
  ctx_->AddObserver(this);
  metrics_collector_ = ScopedCollector(
      &MetricsRegistry::Global(), [this](std::vector<MetricSample>& out) {
        Stats stats;
        double delta = 0.0;
        double tau = 0.0;
        double mttf = 0.0;
        bool degraded = false;
        {
          ReaderMutexLock lock(&mutex_);
          stats = stats_;
          delta = delta_seconds_;
          tau = TauSecondsLocked();
          mttf = mttf_hours_;
          degraded = degraded_;
        }
        auto counter = [&out](const char* name, uint64_t v) {
          out.push_back({name, MetricType::kCounter, static_cast<double>(v)});
        };
        counter("flint_ft_rdds_checkpointed", stats.rdds_checkpointed);
        counter("flint_ft_partitions_written", stats.partitions_written);
        counter("flint_ft_bytes_written", stats.bytes_written);
        counter("flint_ft_gc_deleted_rdds", stats.gc_deleted_rdds);
        counter("flint_ft_signals_fired", stats.signals_fired);
        counter("flint_ft_signals_expired", stats.signals_expired);
        counter("flint_ft_writes_failed", stats.writes_failed);
        counter("flint_ft_pending_requeued", stats.pending_requeued);
        counter("flint_ft_pending_expired", stats.pending_expired);
        counter("flint_ft_signals_suspended", stats.signals_suspended);
        counter("flint_ft_degraded_entered", stats.degraded_entered);
        counter("flint_ft_degraded_recovered", stats.degraded_recovered);
        out.push_back({"flint_ft_delta_seconds", MetricType::kGauge, delta});
        out.push_back({"flint_ft_tau_seconds", MetricType::kGauge, tau});
        out.push_back({"flint_ft_mttf_hours", MetricType::kGauge, mttf});
        out.push_back({"flint_ft_degraded", MetricType::kGauge, degraded ? 1.0 : 0.0});
      });
}

FaultToleranceManager::~FaultToleranceManager() {
  Stop();
  // In-flight asynchronous checkpoint writes notify observers; drain them
  // before unregistering so none can reach a destroyed manager.
  ctx_->DrainExecutors();
  ctx_->RemoveObserver(this);
}

void FaultToleranceManager::Start() {
  if (config_.policy == CheckpointPolicyKind::kNone) {
    return;
  }
  MutexLock lock(&thread_mutex_);
  if (running_) {
    return;
  }
  running_ = true;
  stop_requested_ = false;
  signal_thread_ = std::thread([this] { SignalLoop(); });
}

void FaultToleranceManager::Stop() {
  {
    MutexLock lock(&thread_mutex_);
    if (!running_) {
      return;
    }
    stop_requested_ = true;
  }
  thread_cv_.NotifyAll();
  signal_thread_.join();
  {
    MutexLock lock(&thread_mutex_);
    running_ = false;
  }
}

void FaultToleranceManager::SetMttf(double mttf_hours) {
  {
    MutexLock lock(&mutex_);
    mttf_hours_ = mttf_hours;
  }
  thread_cv_.NotifyAll();  // re-evaluate tau promptly
}

double FaultToleranceManager::mttf_hours() const {
  ReaderMutexLock lock(&mutex_);
  return mttf_hours_;
}

double FaultToleranceManager::CurrentDeltaSeconds() const {
  ReaderMutexLock lock(&mutex_);
  return delta_seconds_;
}

double FaultToleranceManager::TauSecondsLocked() const {
  if (config_.policy == CheckpointPolicyKind::kFixedInterval) {
    return config_.fixed_interval_seconds;
  }
  const double mttf_engine_s = config_.time.ToEngineSeconds(mttf_hours_);
  const double tau = OptimalCheckpointInterval(delta_seconds_, mttf_engine_s);
  if (config_.policy == CheckpointPolicyKind::kSystemsLevel) {
    return tau / static_cast<double>(std::max(1, config_.sys_frequency_divisor));
  }
  return tau;
}

double FaultToleranceManager::CurrentTauSeconds() const {
  ReaderMutexLock lock(&mutex_);
  return TauSecondsLocked();
}

void FaultToleranceManager::SignalLoop() {
  // Hand-over-hand on thread_mutex_ (dropped around each round); balanced
  // Lock()/Unlock() on every path for the thread-safety analysis. Holding
  // thread_mutex_ while CurrentTauSeconds takes mutex_ establishes the
  // thread_mutex_ -> mutex_ lock order documented in the header.
  thread_mutex_.Lock();
  bool first_round = true;
  for (;;) {
    double tau = CurrentTauSeconds();
    // Cap the sleep so Stop() and MTTF updates are honored promptly even
    // when tau is huge/infinite. The first round fires early: Flint
    // checkpoints in advance "so there is always some checkpoint" (Sec 2.3),
    // rather than leaving the initial tau-long window unprotected.
    double sleep_s = std::isfinite(tau) ? std::min(tau, 30.0) : 1.0;
    if (first_round && std::isfinite(tau)) {
      sleep_s = std::min(sleep_s, std::max(0.2, tau / 4.0));
    }
    const WallTime deadline =
        WallClock::now() + std::chrono::duration_cast<WallClock::duration>(WallDuration(sleep_s));
    while (!stop_requested_ && WallClock::now() < deadline) {
      // Timeout vs. notify is irrelevant: the loop re-checks both conditions.
      (void)thread_cv_.WaitUntil(thread_mutex_, deadline);
    }
    if (stop_requested_) {
      thread_mutex_.Unlock();
      return;
    }
    if (std::isfinite(tau)) {
      first_round = false;
      thread_mutex_.Unlock();
      FireCheckpointRound();
      thread_mutex_.Lock();
    }
  }
}

void FaultToleranceManager::FireCheckpointRound() {
  SweepPendingNow();
  {
    MutexLock lock(&mutex_);
    ++stats_.signals_fired;
  }
  if (TracingEnabled()) {
    double delta = 0.0;
    double tau = 0.0;
    {
      ReaderMutexLock lock(&mutex_);
      delta = delta_seconds_;
      tau = TauSecondsLocked();
    }
    Tracer::Global().RecordInstant("checkpoint_round", "checkpoint",
                                   {{"delta_s", delta}, {"tau_s", tau}});
  }
  // Degraded mode: the store has swallowed the retry budget of several
  // writes in a row. Signalling more checkpoints would only queue more
  // doomed work, so probe cheaply and skip the round until the probe lands.
  bool probe_needed = false;
  {
    MutexLock lock(&mutex_);
    probe_needed = degraded_;
  }
  if (probe_needed) {
    if (ProbeStore()) {
      bool recovered = false;
      {
        MutexLock lock(&mutex_);
        if (degraded_) {
          degraded_ = false;
          consecutive_write_failures_ = 0;
          ++stats_.degraded_recovered;
          recovered = true;
        }
      }
      if (recovered) {
        FLINT_ILOG() << "DFS probe succeeded: leaving degraded mode, resuming checkpoints";
      }
    } else {
      {
        MutexLock lock(&mutex_);
        ++stats_.signals_suspended;
      }
      FLINT_ILOG() << "degraded: checkpoint signal suspended (store still failing probes)";
      return;
    }
  }
  if (config_.policy == CheckpointPolicyKind::kSystemsLevel) {
    SystemsLevelSnapshot();
    return;
  }
  // Policy 1: checkpoint RDDs at the current frontier of the lineage graph.
  // Cached frontier RDDs are written immediately (from cache); additionally
  // the next RDD *generated* is marked so its partitions checkpoint as tasks
  // finish computing them (Sec 4).
  std::vector<RddPtr> to_checkpoint;
  {
    MutexLock lock(&mutex_);
    if (signal_pending_) {
      // The previous round's signal was never consumed (no RDD was generated
      // all interval). Count it as expired instead of letting it silently
      // carry over — the re-arm below refreshes the expiry window.
      ++stats_.signals_expired;
    }
    signal_pending_ = true;
    signal_fired_at_ = WallClock::now();
    const double tau = TauSecondsLocked();
    signal_expiry_seconds_ = std::isfinite(tau)
                                 ? config_.signal_expiry_factor * tau
                                 : std::numeric_limits<double>::infinity();
    for (const auto& [id, rdd] : frontier_) {
      if (rdd->checkpoint_state() == CheckpointState::kNone && rdd->should_cache()) {
        to_checkpoint.push_back(rdd);
      }
    }
    for (const auto& [id, rdd] : cached_sources_) {
      if (rdd->checkpoint_state() == CheckpointState::kNone && rdd->should_cache()) {
        to_checkpoint.push_back(rdd);
      }
    }
  }
  for (const RddPtr& rdd : to_checkpoint) {
    CheckpointRddNow(rdd);
  }
}

void FaultToleranceManager::MarkRdd(const RddPtr& rdd, bool enqueue_writes) {
  if (rdd == nullptr || !rdd->MarkForCheckpoint()) {
    return;
  }
  {
    MutexLock lock(&mutex_);
    PendingCheckpoint pending;
    pending.rdd = rdd;
    for (int p = 0; p < rdd->num_partitions(); ++p) {
      pending.remaining.insert(p);
    }
    pending.started = WallClock::now();
    pending.last_progress = pending.started;
    pending_[rdd->id()] = std::move(pending);
  }
  FLINT_ILOG() << "checkpoint marked: rdd " << rdd->id() << " (" << rdd->name() << ")";
  if (!enqueue_writes) {
    // Partitions will be written as tasks finish computing them.
    return;
  }
  for (int p = 0; p < rdd->num_partitions(); ++p) {
    Status st = ctx_->EnqueueCheckpointWrite(rdd, p);
    if (!st.ok()) {
      FLINT_WLOG() << "checkpoint enqueue failed: " << st.ToString();
    }
  }
}

void FaultToleranceManager::CheckpointRddNow(const RddPtr& rdd) {
  MarkRdd(rdd, /*enqueue_writes=*/true);
}

void FaultToleranceManager::SystemsLevelSnapshot() {
  // Persist the entire RDD cache plus per-node executor state (shuffle
  // buffers), modelling a distributed whole-memory snapshot.
  const auto blocks = ctx_->BlockRegistrySnapshot();
  uint64_t epoch = 0;
  {
    MutexLock lock(&mutex_);
    epoch = ++sys_epoch_;
  }
  for (const auto& [key, node_id] : blocks) {
    auto node = ctx_->GetNodeState(node_id);
    if (node == nullptr || node->revoked.load(std::memory_order_acquire)) {
      continue;
    }
    // Best-effort: a rejected Submit is a node that started draining
    // mid-snapshot; its blocks are re-covered by the next epoch.
    (void)node->pool->Submit([this, key, node, epoch] {
      PartitionPtr data = node->blocks->Get(key);
      if (data == nullptr) {
        return;
      }
      DfsObject obj;
      obj.size_bytes = data->SizeBytes();
      obj.data = std::static_pointer_cast<const void>(data);
      const std::string path = "sys/epoch_" + std::to_string(epoch) + "/rdd_" +
                               std::to_string(key.rdd_id) + "_p" + std::to_string(key.partition);
      // Best-effort snapshot write: a failed epoch blob is superseded by the
      // next epoch; the RDD checkpoint path handles durability separately.
      (void)ctx_->dfs().Put(path, std::move(obj));
    });
  }
  // Shuffle buffers of the live (recent) shuffles are part of worker memory
  // and must be persisted too; one blob per node carries its share.
  const uint64_t shuffle_bytes = ctx_->shuffles().RecentShuffleBytes(3);
  auto live = ctx_->LiveNodeStates();
  if (shuffle_bytes > 0 && !live.empty()) {
    const uint64_t share = shuffle_bytes / live.size();
    for (const auto& node : live) {
      // A pool that closed (revocation warning) just skips its shuffle blob.
      (void)node->pool->Submit([this, node, share, epoch] {
        DfsObject obj;
        obj.size_bytes = share;
        obj.data = std::shared_ptr<const void>(
            new uint8_t(0), [](const void* p) { delete static_cast<const uint8_t*>(p); });
        const std::string path = "sys/epoch_" + std::to_string(epoch) + "/shuffle_node_" +
                                 std::to_string(node->info.node_id);
        // Best-effort: shuffle blobs exist only to charge snapshot bytes.
        (void)ctx_->dfs().Put(path, std::move(obj));
      });
    }
  }
  // Keep only the latest epoch (continuous snapshotting reuses space).
  if (epoch > 1) {
    ctx_->dfs().DeletePrefix("sys/epoch_" + std::to_string(epoch - 1) + "/");
  }
}

void FaultToleranceManager::PruneAncestorsLocked(const RddPtr& rdd) {
  std::deque<const Rdd*> queue;
  queue.push_back(rdd.get());
  std::unordered_set<int> visited;
  while (!queue.empty()) {
    const Rdd* cur = queue.front();
    queue.pop_front();
    for (const auto& dep : cur->deps()) {
      if (dep.parent == nullptr || !visited.insert(dep.parent->id()).second) {
        continue;
      }
      frontier_.erase(dep.parent->id());
      queue.push_back(dep.parent.get());
    }
  }
}

void FaultToleranceManager::OnRddCreated(const RddPtr& rdd) {
  if (config_.policy == CheckpointPolicyKind::kNone ||
      config_.policy == CheckpointPolicyKind::kSystemsLevel) {
    return;
  }
  // Sources carry no computation worth protecting; skip them.
  if (rdd->deps().empty()) {
    return;
  }
  bool mark = false;
  {
    MutexLock lock(&mutex_);
    if (degraded_) {
      // The store is rejecting writes; marking would only queue doomed work.
      // Pending signals stay armed (their expiry handles staleness).
      return;
    }
    if (signal_pending_) {
      signal_pending_ = false;
      const double age = WallDuration(WallClock::now() - signal_fired_at_).count();
      if (age <= signal_expiry_seconds_) {
        // "After signaling, each new RDD generated at the frontier of its
        // lineage graph is marked for checkpointing."
        mark = true;
      } else {
        // Stale: the signal outlived the interval it was fired for (idle
        // lull, long revocation stall). Marking this unrelated RDD now would
        // double-checkpoint the next interval; drop it and fall through to
        // the regular shuffle-boost policy.
        ++stats_.signals_expired;
      }
    }
    if (!mark && config_.policy == CheckpointPolicyKind::kFlint && config_.shuffle_boost &&
        rdd->is_shuffle_output()) {
      // Shuffle RDDs checkpoint at tau / #map-partitions (Sec 3.1.1): wide
      // dependencies make their recomputation disproportionately expensive.
      int num_maps = 1;
      for (const auto& dep : rdd->deps()) {
        if (dep.type == DepType::kShuffle && dep.shuffle != nullptr) {
          num_maps = std::max(num_maps, dep.shuffle->num_map_partitions);
        }
      }
      const double tau = TauSecondsLocked();
      const double boost_interval = std::isfinite(tau)
                                        ? tau / static_cast<double>(num_maps)
                                        : std::numeric_limits<double>::infinity();
      const double since = WallDuration(WallClock::now() - last_shuffle_checkpoint_).count();
      if (since >= boost_interval) {
        last_shuffle_checkpoint_ = WallClock::now();
        mark = true;
      }
    }
  }
  if (mark) {
    // Partitions checkpoint as tasks finish computing them; no extra
    // recomputation is spawned.
    MarkRdd(rdd, /*enqueue_writes=*/false);
  }
}

void FaultToleranceManager::OnRddMaterialized(const RddPtr& rdd) {
  if (config_.policy == CheckpointPolicyKind::kNone ||
      config_.policy == CheckpointPolicyKind::kSystemsLevel) {
    return;
  }
  MutexLock lock(&mutex_);
  PruneAncestorsLocked(rdd);
  frontier_[rdd->id()] = rdd;
  if (rdd->deps().empty() && rdd->should_cache()) {
    cached_sources_[rdd->id()] = rdd;
  }
}

void FaultToleranceManager::OnCheckpointWritten(const RddPtr& rdd, int partition, uint64_t bytes,
                                                double write_seconds) {
  (void)write_seconds;
  RddPtr completed;
  WallTime started{};
  bool recovered = false;
  {
    MutexLock lock(&mutex_);
    stats_.partitions_written += 1;
    stats_.bytes_written += bytes;
    // Any successful write proves the store is taking data again.
    consecutive_write_failures_ = 0;
    if (degraded_) {
      degraded_ = false;
      ++stats_.degraded_recovered;
      recovered = true;
    }
    auto it = pending_.find(rdd->id());
    if (it != pending_.end()) {
      it->second.remaining.erase(partition);  // idempotent under racing writers
      it->second.last_progress = WallClock::now();
      if (it->second.remaining.empty()) {
        completed = it->second.rdd;
        started = it->second.started;
        pending_.erase(it);
      }
    }
  }
  if (recovered) {
    FLINT_ILOG() << "checkpoint write succeeded: leaving degraded mode";
  }
  if (completed == nullptr) {
    return;
  }
  // Every partition is durable; commit the manifest (written last, after
  // re-verifying each partition's size and checksum against the store). Only
  // a landed manifest makes the checkpoint visible to recovery.
  Status st = ctx_->CommitCheckpointManifest(completed);
  if (!st.ok()) {
    FLINT_WLOG() << "manifest commit failed for rdd " << completed->id() << ": " << st.ToString();
    ctx_->QuarantineCheckpoint(completed, "manifest commit failed: " + st.ToString());
    return;
  }
  // Measure effective delta for this round, retry and commit time included —
  // a slow store genuinely raises the cost of a checkpoint, and tau should
  // stretch accordingly.
  const double measured = WallDuration(WallClock::now() - started).count();
  double delta_ewma = 0.0;
  double tau = 0.0;
  {
    MutexLock lock(&mutex_);
    delta_seconds_ = config_.delta_ewma_alpha * measured +
                     (1.0 - config_.delta_ewma_alpha) * delta_seconds_;
    stats_.rdds_checkpointed += 1;
    delta_ewma = delta_seconds_;
    tau = TauSecondsLocked();
  }
  // The metric is always on (checkpoint completion is cold); the trace
  // instant is a no-op unless tracing is enabled.
  MetricsRegistry::Global()
      .GetHistogram("flint_ft_delta_sample_seconds", Histogram::DefaultLatencyBounds())
      ->Observe(measured);
  Tracer::Global().RecordInstant("checkpoint", "checkpoint",
                                 {{"rdd", static_cast<double>(completed->id())},
                                  {"delta_sample_s", measured},
                                  {"delta_ewma_s", delta_ewma},
                                  {"tau_s", tau}});
  completed->SetCheckpointSaved();
  FLINT_ILOG() << "checkpoint saved: rdd " << completed->id() << " (manifest committed)";
  thread_cv_.NotifyAll();  // tau may have changed with delta
  if (config_.gc_enabled) {
    GarbageCollectAncestors(completed);
  }
}

void FaultToleranceManager::OnCheckpointWriteFailed(const RddPtr& rdd, int partition,
                                                    const Status& status) {
  (void)partition;
  bool entered = false;
  {
    MutexLock lock(&mutex_);
    ++stats_.writes_failed;
    ++consecutive_write_failures_;
    auto it = pending_.find(rdd->id());
    if (it != pending_.end()) {
      // A failure is still progress in the sweep's sense: the writer is
      // alive, the store is not. Re-enqueueing now would burn retry budget
      // against a store that already rejected a full backoff cycle.
      it->second.last_progress = WallClock::now();
    }
    if (!degraded_ && config_.degraded_after_failures > 0 &&
        consecutive_write_failures_ >= config_.degraded_after_failures) {
      degraded_ = true;
      ++stats_.degraded_entered;
      entered = true;
    }
  }
  if (entered) {
    FLINT_WLOG() << "entering degraded mode after " << config_.degraded_after_failures
                 << " consecutive abandoned writes (last: " << status.ToString()
                 << "); checkpoint signals suspended";
  }
}

void FaultToleranceManager::SweepPendingNow() {
  struct Requeue {
    RddPtr rdd;
    std::vector<int> partitions;
  };
  std::vector<Requeue> requeue;
  std::vector<RddPtr> expired;
  const WallTime now = WallClock::now();
  {
    MutexLock lock(&mutex_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      PendingCheckpoint& p = it->second;
      const double quiet_s = WallDuration(now - p.last_progress).count();
      if (p.remaining.empty() || quiet_s < config_.pending_retry_seconds) {
        ++it;
        continue;
      }
      if (p.retries >= config_.pending_max_retries) {
        ++stats_.pending_expired;
        expired.push_back(p.rdd);
        it = pending_.erase(it);
        continue;
      }
      ++p.retries;
      ++stats_.pending_requeued;
      p.last_progress = now;
      requeue.push_back(Requeue{p.rdd, {p.remaining.begin(), p.remaining.end()}});
      ++it;
    }
  }
  for (const Requeue& r : requeue) {
    FLINT_WLOG() << "checkpoint stalled: re-enqueueing " << r.partitions.size()
                 << " partition(s) of rdd " << r.rdd->id();
    for (int part : r.partitions) {
      Status st = ctx_->EnqueueCheckpointWrite(r.rdd, part);
      if (!st.ok()) {
        FLINT_WLOG() << "checkpoint re-enqueue failed: " << st.ToString();
      }
    }
  }
  for (const RddPtr& rdd : expired) {
    ctx_->QuarantineCheckpoint(rdd, "pending checkpoint made no progress after " +
                                        std::to_string(config_.pending_max_retries) +
                                        " re-enqueues");
  }
}

bool FaultToleranceManager::ProbeStore() {
  DfsObject obj;
  obj.size_bytes = 1;
  obj.data = std::shared_ptr<const void>(
      new uint8_t(0), [](const void* p) { delete static_cast<const uint8_t*>(p); });
  return ctx_->dfs().Put("ckpt/.probe", std::move(obj)).ok();
}

bool FaultToleranceManager::degraded() const {
  ReaderMutexLock lock(&mutex_);
  return degraded_;
}

void FaultToleranceManager::GarbageCollectAncestors(const RddPtr& rdd) {
  // Checkpointing an RDD truncates its lineage; ancestor checkpoints become
  // unreachable and are deleted (Sec 4, "Checkpoint Garbage Collection").
  std::deque<const Rdd*> queue;
  queue.push_back(rdd.get());
  std::unordered_set<int> visited;
  uint64_t deleted = 0;
  while (!queue.empty()) {
    const Rdd* cur = queue.front();
    queue.pop_front();
    for (const auto& dep : cur->deps()) {
      if (dep.parent == nullptr || !visited.insert(dep.parent->id()).second) {
        continue;
      }
      // Cached RDDs are long-lived by programmer intent (e.g. PageRank's
      // adjacency lists feed every iteration); their checkpoints stay until
      // the cache hint is dropped. Everything else below a newer checkpoint
      // is unreachable.
      if (dep.parent->checkpoint_state() == CheckpointState::kSaved &&
          !dep.parent->should_cache()) {
        ctx_->dfs().DeletePrefix(dep.parent->CheckpointDir());
        ++deleted;
      }
      queue.push_back(dep.parent.get());
    }
  }
  if (deleted > 0) {
    MutexLock lock(&mutex_);
    stats_.gc_deleted_rdds += deleted;
  }
}

void FaultToleranceManager::OnNodeWarning(const NodeInfo& node) {
  // The warning path belongs to the node manager (market re-selection); the
  // FT manager just surfaces its current estimates via the getters.
  FLINT_ILOG() << "revocation warning for node " << node.node_id << " (delta="
               << CurrentDeltaSeconds() << "s tau=" << CurrentTauSeconds() << "s)";
}

FaultToleranceManager::Stats FaultToleranceManager::GetStats() const {
  ReaderMutexLock lock(&mutex_);
  return stats_;
}

}  // namespace flint
