// Checkpointing policies and the closed-form quantities from Sec 3.1:
//
//   tau_opt = sqrt(2 * delta * MTTF)                         (Daly's rule)
//   E[T_k]/T = 1 + delta/tau + (tau/2 + r_d)/MTTF_k          (Eq. 1)
//   E[C_k]  = E[T_k] * p_k                                   (Eq. 2)
//   MTTF(S) = 1 / sum_i (1/MTTF_i)                           (Eq. 3)
//   E[T(S)]/T = 1 + delta/tau + (tau/2 + r_d)/(m * MTTF(S))  (Eq. 4)
//
// These are shared by the fault-tolerance manager (engine plane), the server
// selection policies, and the long-horizon simulator.

#ifndef SRC_CHECKPOINT_CHECKPOINT_POLICY_H_
#define SRC_CHECKPOINT_CHECKPOINT_POLICY_H_

#include <cmath>
#include <limits>

namespace flint {

enum class CheckpointPolicyKind {
  kNone,          // pure lineage recomputation (unmodified-Spark baseline)
  kFlint,         // frontier RDDs every tau_opt, shuffle boost, dynamic delta
  kFixedInterval, // frontier RDDs at a fixed interval (ablation)
  kSystemsLevel,  // whole-cache distributed snapshot every tau_opt (baseline)
};

// Daly first-order optimum. Units cancel: pass delta and mttf in the same
// unit and tau comes back in it. Infinite MTTF -> infinite tau (never
// checkpoint); zero/negative delta treated as "free" -> checkpoint at a
// nominal small interval derived from MTTF.
inline double OptimalCheckpointInterval(double delta, double mttf) {
  if (!std::isfinite(mttf) || mttf <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  if (delta <= 0.0) {
    return std::sqrt(2.0 * 1e-6 * mttf);
  }
  return std::sqrt(2.0 * delta * mttf);
}

// Eq. 1/4 combined: expected running-time inflation factor for a job with
// checkpoint cost `delta`, replacement delay `rd`, running on servers with
// aggregate MTTF `mttf`, spread over `m` equal markets (m=1 is Eq. 1).
// A revocation loses 1/m of the servers, so the per-event recompute+redeploy
// charge scales by 1/m.
inline double ExpectedRuntimeFactor(double delta, double rd, double mttf, int m = 1) {
  if (!std::isfinite(mttf) || mttf <= 0.0) {
    return 1.0;  // on-demand: no checkpointing, no revocations
  }
  const double tau = OptimalCheckpointInterval(delta, mttf);
  return 1.0 + delta / tau +
         (tau / 2.0 + rd) / (mttf * static_cast<double>(std::max(1, m)));
}

// Variance of the running-time inflation (per unit of base running time T),
// modelling revocations as a Poisson process with rate 1/MTTF and per-event
// cost uniform on [0, tau]/m plus rd/m:
//   Var = (T/mttf) * E[cost^2],  E[cost^2] = var_c + c^2,
//   c = (tau/2 + rd)/m,  var_c = tau^2 / (12 m^2).
// The paper defines sigma^2 = E[T(S)^2] - E[T(S)]^2 without a closed form;
// this is the natural one under its own assumptions (revocations uniform in
// the checkpoint interval, independence across markets).
inline double RuntimeVariancePerUnitTime(double delta, double rd, double mttf, int m) {
  if (!std::isfinite(mttf) || mttf <= 0.0) {
    return 0.0;
  }
  const double tau = OptimalCheckpointInterval(delta, mttf);
  const double md = static_cast<double>(std::max(1, m));
  const double c = (tau / 2.0 + rd) / md;
  const double var_c = tau * tau / (12.0 * md * md);
  return (var_c + c * c) / mttf;
}

}  // namespace flint

#endif  // SRC_CHECKPOINT_CHECKPOINT_POLICY_H_
