// Flint's fault-tolerance manager (paper Sec 3.1.1, 4): subscribes to engine
// events, tracks the frontier of the lineage graph, signals a checkpoint
// every tau = sqrt(2*delta*MTTF), marks frontier RDDs, drives asynchronous
// partition-level checkpoint writes, maintains the dynamic delta estimate,
// boosts shuffle RDD checkpoint frequency to tau/#map-partitions, and
// garbage-collects checkpoints made unreachable by younger ones.
//
// It also implements the kFixedInterval ablation and the kSystemsLevel
// baseline (persist the entire RDD cache every interval), and the kNone
// baseline (do nothing), selected by CheckpointConfig::policy.

#ifndef SRC_CHECKPOINT_FT_MANAGER_H_
#define SRC_CHECKPOINT_FT_MANAGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/checkpoint/checkpoint_policy.h"
#include "src/cluster/time_config.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/common/units.h"
#include "src/engine/context.h"
#include "src/engine/observer.h"
#include "src/obs/metrics.h"

namespace flint {

struct CheckpointConfig {
  CheckpointPolicyKind policy = CheckpointPolicyKind::kFlint;
  // Aggregate cluster MTTF in model hours. Updated by the node manager when
  // markets change (SetMttf); this initial value seeds tau.
  double mttf_hours = 100.0;
  TimeConfig time;
  // Conservative initial delta before any write has been measured: assume the
  // whole cluster memory must be written (Sec 3.1.2). Expressed directly in
  // engine seconds; refined online by an EWMA of measured round times.
  double initial_delta_seconds = 0.25;
  double delta_ewma_alpha = 0.5;
  // kFixedInterval ablation.
  double fixed_interval_seconds = 2.0;
  bool shuffle_boost = true;
  bool gc_enabled = true;
  // A fired checkpoint signal is only valid for this fraction of the tau in
  // effect when it fired: if no RDD is generated within that window the
  // signal expires instead of marking some much-later, unrelated RDD.
  double signal_expiry_factor = 1.0;
  // kSystemsLevel snapshots at tau / this divisor, matching the effective
  // frequency of Flint's shuffle-boosted checkpoints (the paper compares the
  // two approaches "using the same checkpointing frequency").
  int sys_frequency_divisor = 20;
  // Degraded mode: after this many consecutive abandoned checkpoint writes
  // (each already retried with backoff by the engine) the manager stops
  // signalling new checkpoints and instead probes the store with a 1-byte
  // write each round, resuming once a probe or any real write succeeds.
  // <= 0 disables degraded mode.
  int degraded_after_failures = 3;
  // Pending sweep: a marked RDD whose asynchronous writes have made no
  // progress (no completion and no failure report) for this long is
  // re-enqueued — its writer likely died with a revoked node — up to
  // pending_max_retries times, after which the partial checkpoint is
  // quarantined and the mark dropped.
  double pending_retry_seconds = 0.5;
  int pending_max_retries = 2;
};

class FaultToleranceManager : public EngineObserver {
 public:
  FaultToleranceManager(FlintContext* ctx, CheckpointConfig config);
  ~FaultToleranceManager() override;

  FaultToleranceManager(const FaultToleranceManager&) = delete;
  FaultToleranceManager& operator=(const FaultToleranceManager&) = delete;

  // Starts the periodic checkpoint signal thread (no-op for kNone).
  void Start();
  // Stops the thread; pending async writes still complete via the engine.
  void Stop();

  // Node manager pushes MTTF updates as the market mix changes.
  void SetMttf(double mttf_hours);
  double mttf_hours() const;

  // Current adaptive quantities (engine seconds).
  double CurrentDeltaSeconds() const;
  double CurrentTauSeconds() const;

  // Explicitly checkpoints one RDD now (all partitions, asynchronously).
  // Also used by tests and by the interactive layer for eager persistence.
  void CheckpointRddNow(const RddPtr& rdd);

  // Fires one checkpoint round: sweeps stalled pending checkpoints, probes
  // the store when degraded, then marks current frontier RDDs (Flint/fixed)
  // or snapshots the whole cache (systems-level). The signal thread calls
  // this every tau; public so tests can drive rounds deterministically.
  void FireCheckpointRound();

  // Re-enqueues writes for pending checkpoints that have stalled (writer died
  // without reporting success or failure) and quarantines entries that
  // exhausted pending_max_retries. Runs at the start of every signal round;
  // public so tests can drive the sweep deterministically.
  void SweepPendingNow();

  // True while checkpoint signalling is suspended because the DFS keeps
  // rejecting writes (see CheckpointConfig::degraded_after_failures).
  bool degraded() const;

  struct Stats {
    uint64_t rdds_checkpointed = 0;
    uint64_t partitions_written = 0;
    uint64_t bytes_written = 0;
    uint64_t gc_deleted_rdds = 0;
    uint64_t signals_fired = 0;
    // Signals that aged out before any RDD consumed them (see
    // CheckpointConfig::signal_expiry_factor).
    uint64_t signals_expired = 0;
    // Checkpoint partition writes abandoned after the engine exhausted its
    // retry budget.
    uint64_t writes_failed = 0;
    // Pending-sweep outcomes: stalled entries re-enqueued / given up on.
    uint64_t pending_requeued = 0;
    uint64_t pending_expired = 0;
    // Signal rounds skipped while degraded (store failing probes).
    uint64_t signals_suspended = 0;
    uint64_t degraded_entered = 0;
    uint64_t degraded_recovered = 0;
  };
  Stats GetStats() const;

  // EngineObserver:
  void OnRddCreated(const RddPtr& rdd) override;
  void OnRddMaterialized(const RddPtr& rdd) override;
  void OnCheckpointWritten(const RddPtr& rdd, int partition, uint64_t bytes,
                           double write_seconds) override;
  void OnCheckpointWriteFailed(const RddPtr& rdd, int partition, const Status& status) override;
  void OnNodeWarning(const NodeInfo& node) override;

 private:
  struct PendingCheckpoint {
    RddPtr rdd;
    std::unordered_set<int> remaining;  // partitions not yet durably written
    WallTime started;
    // Last time any write for this RDD completed or failed; the sweep
    // re-enqueues entries quiet for longer than pending_retry_seconds.
    WallTime last_progress;
    int retries = 0;
  };

  void SignalLoop();
  // Marks `rdd` for checkpointing and tracks completion. With enqueue_writes,
  // writes are scheduled immediately (from cache or by recomputation);
  // otherwise partitions are written as tasks finish computing them.
  void MarkRdd(const RddPtr& rdd, bool enqueue_writes);
  void SystemsLevelSnapshot();
  // 1-byte write through the normal DFS path (fault hooks included); used to
  // cheaply test whether the store has healed while degraded.
  bool ProbeStore();
  // Removes ancestors of `rdd` from the frontier set.
  void PruneAncestorsLocked(const RddPtr& rdd) REQUIRES(mutex_);
  void GarbageCollectAncestors(const RddPtr& rdd);
  double TauSecondsLocked() const REQUIRES_SHARED(mutex_);

  FlintContext* ctx_;
  CheckpointConfig config_;

  // Lock order: thread_mutex_ before mutex_ (SignalLoop holds thread_mutex_
  // while reading tau). Never acquire thread_mutex_ while holding mutex_.
  mutable Mutex mutex_{"FaultToleranceManager::mutex_"};
  double mttf_hours_ GUARDED_BY(mutex_);
  double delta_seconds_ GUARDED_BY(mutex_);
  // Frontier: materialized RDDs with no materialized descendant.
  std::unordered_map<int, RddPtr> frontier_ GUARDED_BY(mutex_);
  // Cached source RDDs (no dependencies): the managed service persists them
  // into the DFS on the first signal, bounding origin re-reads after large
  // revocations (the paper's HDFS holds the input dataset durably).
  std::unordered_map<int, RddPtr> cached_sources_ GUARDED_BY(mutex_);
  std::unordered_map<int, PendingCheckpoint> pending_ GUARDED_BY(mutex_);  // keyed by rdd id
  // Set by the periodic signal; the next RDD generated at the frontier of
  // its lineage graph is marked for checkpointing (paper Sec 3.1.1). The
  // signal expires signal_expiry_seconds_ after signal_fired_at_ so a quiet
  // interval cannot bank a stale mark for a far-future RDD.
  bool signal_pending_ GUARDED_BY(mutex_) = false;
  WallTime signal_fired_at_ GUARDED_BY(mutex_){};
  double signal_expiry_seconds_ GUARDED_BY(mutex_) = 0.0;
  // Degraded mode state (see CheckpointConfig::degraded_after_failures).
  bool degraded_ GUARDED_BY(mutex_) = false;
  int consecutive_write_failures_ GUARDED_BY(mutex_) = 0;
  WallTime last_shuffle_checkpoint_ GUARDED_BY(mutex_);
  uint64_t sys_epoch_ GUARDED_BY(mutex_) = 0;
  Stats stats_ GUARDED_BY(mutex_);

  Mutex thread_mutex_{"FaultToleranceManager::thread_mutex_"};
  CondVar thread_cv_;
  bool running_ GUARDED_BY(thread_mutex_) = false;
  bool stop_requested_ GUARDED_BY(thread_mutex_) = false;
  std::thread signal_thread_;

  // Exports Stats + the live delta/tau/mttf estimates as flint_ft_* metrics.
  // Declared last so it unhooks before the state it reads is torn down.
  ScopedCollector metrics_collector_;
};

}  // namespace flint

#endif  // SRC_CHECKPOINT_FT_MANAGER_H_
