#include "src/cluster/cluster_manager.h"

#include <cassert>

#include "src/common/log.h"

namespace flint {

ClusterManager::ClusterManager(TimeConfig time_config) : time_config_(time_config) {}

ClusterManager::~ClusterManager() = default;

void ClusterManager::SetListener(ClusterListener* listener) {
  MutexLock lock(&mutex_);
  assert(live_.empty() && "listener must be set before nodes exist");
  listener_ = listener;
}

NodeId ClusterManager::AddNode(MarketId market, uint64_t memory_budget_bytes,
                               int executor_threads) {
  NodeInfo info;
  ClusterListener* listener = nullptr;
  {
    MutexLock lock(&mutex_);
    info.node_id = next_node_id_++;
    info.market = market;
    info.memory_budget_bytes = memory_budget_bytes;
    info.executor_threads = executor_threads;
    live_[info.node_id] = info;
    listener = listener_;
  }
  FLINT_ILOG() << "node " << info.node_id << " added (market " << market << ")";
  if (listener != nullptr) {
    listener->OnNodeAdded(info);
  }
  return info.node_id;
}

NodeId ClusterManager::AddNodeAfterDelay(MarketId market, uint64_t memory_budget_bytes,
                                         int executor_threads) {
  NodeId reserved;
  {
    MutexLock lock(&mutex_);
    reserved = next_node_id_++;
  }
  const double delay_s = time_config_.ToEngineSeconds(time_config_.acquisition_delay);
  timers_.ScheduleAfter(WallDuration(delay_s), [this, reserved, market, memory_budget_bytes,
                                                executor_threads] {
    NodeInfo info;
    ClusterListener* listener = nullptr;
    {
      MutexLock lock(&mutex_);
      info.node_id = reserved;
      info.market = market;
      info.memory_budget_bytes = memory_budget_bytes;
      info.executor_threads = executor_threads;
      live_[info.node_id] = info;
      listener = listener_;
    }
    FLINT_ILOG() << "replacement node " << info.node_id << " joined (market " << market << ")";
    if (listener != nullptr) {
      listener->OnNodeAdded(info);
    }
  });
  return reserved;
}

void ClusterManager::Revoke(const std::vector<NodeId>& nodes, bool with_warning) {
  for (NodeId node : nodes) {
    NodeInfo info;
    ClusterListener* listener = nullptr;
    {
      MutexLock lock(&mutex_);
      auto it = live_.find(node);
      if (it == live_.end()) {
        continue;
      }
      info = it->second;
      listener = listener_;
    }
    if (with_warning) {
      if (listener != nullptr) {
        listener->OnNodeWarning(info);
      }
      const double warn_s = time_config_.ToEngineSeconds(time_config_.revocation_warning);
      timers_.ScheduleAfter(WallDuration(warn_s), [this, node] { FinishRevocation(node); });
    } else {
      FinishRevocation(node);
    }
  }
}

void ClusterManager::RevokeMarket(MarketId market, bool with_warning) {
  std::vector<NodeId> victims;
  {
    MutexLock lock(&mutex_);
    for (const auto& [id, info] : live_) {
      if (info.market == market) {
        victims.push_back(id);
      }
    }
  }
  Revoke(victims, with_warning);
}

void ClusterManager::FinishRevocation(NodeId node) {
  NodeInfo info;
  ClusterListener* listener = nullptr;
  {
    MutexLock lock(&mutex_);
    auto it = live_.find(node);
    if (it == live_.end()) {
      return;
    }
    info = it->second;
    live_.erase(it);
    listener = listener_;
  }
  FLINT_ILOG() << "node " << node << " revoked";
  if (listener != nullptr) {
    listener->OnNodeRevoked(info);
  }
}

std::vector<NodeInfo> ClusterManager::LiveNodes() const {
  ReaderMutexLock lock(&mutex_);
  std::vector<NodeInfo> out;
  out.reserve(live_.size());
  for (const auto& [id, info] : live_) {
    out.push_back(info);
  }
  return out;
}

size_t ClusterManager::NumLiveNodes() const {
  ReaderMutexLock lock(&mutex_);
  return live_.size();
}

bool ClusterManager::IsLive(NodeId node) const {
  ReaderMutexLock lock(&mutex_);
  return live_.count(node) > 0;
}

void ClusterManager::DrainEvents() { timers_.Drain(); }

}  // namespace flint
