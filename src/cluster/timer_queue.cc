#include "src/cluster/timer_queue.h"

#include <utility>
#include <vector>

namespace flint {

TimerQueue::TimerQueue() : thread_([this] { Loop(); }) {}

TimerQueue::~TimerQueue() {
  {
    MutexLock lock(&mutex_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  thread_.join();
}

uint64_t TimerQueue::ScheduleAfter(WallDuration delay, std::function<void()> fn) {
  const WallTime deadline =
      WallClock::now() + std::chrono::duration_cast<WallClock::duration>(delay);
  uint64_t id;
  {
    MutexLock lock(&mutex_);
    id = next_id_++;
    pending_.emplace(std::make_pair(deadline, id), std::move(fn));
  }
  cv_.NotifyAll();
  return id;
}

bool TimerQueue::Cancel(uint64_t id) {
  MutexLock lock(&mutex_);
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->first.second == id) {
      pending_.erase(it);
      drained_.NotifyAll();
      return true;
    }
  }
  return false;
}

void TimerQueue::Drain() {
  MutexLock lock(&mutex_);
  while (!(pending_.empty() && firing_ == 0)) {
    drained_.Wait(mutex_);
  }
}

void TimerQueue::Loop() {
  // Hand-over-hand: the lock is dropped around each callback so callbacks may
  // schedule/cancel timers. Bare Lock()/Unlock() stays balanced on every path
  // for the thread-safety analysis.
  mutex_.Lock();
  for (;;) {
    if (shutdown_) {
      mutex_.Unlock();
      return;
    }
    if (pending_.empty()) {
      cv_.Wait(mutex_);
      continue;
    }
    const WallTime next_deadline = pending_.begin()->first.first;
    if (WallClock::now() < next_deadline) {
      // Timeout vs. notify is irrelevant: the loop re-examines pending_.
      (void)cv_.WaitUntil(mutex_, next_deadline);
      continue;
    }
    auto it = pending_.begin();
    std::function<void()> fn = std::move(it->second);
    pending_.erase(it);
    ++firing_;
    mutex_.Unlock();
    fn();
    mutex_.Lock();
    --firing_;
    if (pending_.empty() && firing_ == 0) {
      drained_.NotifyAll();
    }
  }
}

}  // namespace flint
