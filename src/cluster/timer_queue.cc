#include "src/cluster/timer_queue.h"

#include <utility>
#include <vector>

namespace flint {

TimerQueue::TimerQueue() : thread_([this] { Loop(); }) {}

TimerQueue::~TimerQueue() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

uint64_t TimerQueue::ScheduleAfter(WallDuration delay, std::function<void()> fn) {
  const WallTime deadline =
      WallClock::now() + std::chrono::duration_cast<WallClock::duration>(delay);
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = next_id_++;
    pending_.emplace(std::make_pair(deadline, id), std::move(fn));
  }
  cv_.notify_all();
  return id;
}

bool TimerQueue::Cancel(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->first.second == id) {
      pending_.erase(it);
      drained_.notify_all();
      return true;
    }
  }
  return false;
}

void TimerQueue::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_.wait(lock, [this] { return pending_.empty() && firing_ == 0; });
}

void TimerQueue::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (shutdown_) {
      return;
    }
    if (pending_.empty()) {
      cv_.wait(lock, [this] { return shutdown_ || !pending_.empty(); });
      continue;
    }
    const WallTime next_deadline = pending_.begin()->first.first;
    if (WallClock::now() < next_deadline) {
      cv_.wait_until(lock, next_deadline);
      continue;
    }
    auto it = pending_.begin();
    std::function<void()> fn = std::move(it->second);
    pending_.erase(it);
    ++firing_;
    lock.unlock();
    fn();
    lock.lock();
    --firing_;
    if (pending_.empty() && firing_ == 0) {
      drained_.notify_all();
    }
  }
}

}  // namespace flint
