// A single-threaded timer service: schedule callbacks at absolute wall-clock
// deadlines. Used by the cluster manager to deliver revocation warnings,
// revocations, and delayed node acquisitions without spawning a thread per
// event.

#ifndef SRC_CLUSTER_TIMER_QUEUE_H_
#define SRC_CLUSTER_TIMER_QUEUE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <thread>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/common/units.h"

namespace flint {

class TimerQueue {
 public:
  TimerQueue();
  ~TimerQueue();

  TimerQueue(const TimerQueue&) = delete;
  TimerQueue& operator=(const TimerQueue&) = delete;

  // Runs `fn` once `delay` has elapsed. Returns an id usable with Cancel.
  uint64_t ScheduleAfter(WallDuration delay, std::function<void()> fn);

  // Best-effort cancel; returns true if the callback had not fired yet.
  bool Cancel(uint64_t id);

  // Blocks until all currently scheduled callbacks have fired or been
  // cancelled. New callbacks scheduled while draining are also waited on.
  void Drain();

 private:
  void Loop();

  Mutex mutex_{"TimerQueue::mutex_"};
  CondVar cv_;
  CondVar drained_;
  // Keyed by (deadline, id) for stable ordering of same-deadline events.
  std::map<std::pair<WallTime, uint64_t>, std::function<void()>> pending_ GUARDED_BY(mutex_);
  uint64_t next_id_ GUARDED_BY(mutex_) = 1;
  size_t firing_ GUARDED_BY(mutex_) = 0;
  bool shutdown_ GUARDED_BY(mutex_) = false;
  std::thread thread_;
};

}  // namespace flint

#endif  // SRC_CLUSTER_TIMER_QUEUE_H_
