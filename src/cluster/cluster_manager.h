// Node lifecycle for the engine plane: membership, revocation warnings and
// revocations (delivered on the timer thread), and delayed acquisition of
// replacement nodes. The engine registers a ClusterListener and owns all
// per-node execution state (block manager, executors); this module only owns
// identity and lifecycle, so it has no dependency on the engine.

#ifndef SRC_CLUSTER_CLUSTER_MANAGER_H_
#define SRC_CLUSTER_CLUSTER_MANAGER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/cluster/time_config.h"
#include "src/cluster/timer_queue.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/common/units.h"
#include "src/market/marketplace.h"

namespace flint {

using NodeId = int;

// Static description of one cluster node.
struct NodeInfo {
  NodeId node_id = -1;
  MarketId market = kOnDemandMarket;
  uint64_t memory_budget_bytes = 256 * kMiB;
  int executor_threads = 1;
};

// Lifecycle callbacks. Invoked on the timer thread (or the caller's thread
// for immediate additions); implementations must be thread-safe and must not
// block for long.
class ClusterListener {
 public:
  virtual ~ClusterListener() = default;
  virtual void OnNodeAdded(const NodeInfo& node) = 0;
  // Revocation warning (EC2's 2-minute notice). The node keeps running until
  // OnNodeRevoked.
  virtual void OnNodeWarning(const NodeInfo& node) = 0;
  virtual void OnNodeRevoked(const NodeInfo& node) = 0;
};

class ClusterManager {
 public:
  explicit ClusterManager(TimeConfig time_config);
  ~ClusterManager();

  ClusterManager(const ClusterManager&) = delete;
  ClusterManager& operator=(const ClusterManager&) = delete;

  // At most one listener; must be set before nodes are added.
  void SetListener(ClusterListener* listener);

  const TimeConfig& time_config() const { return time_config_; }

  // Immediately adds a node (initial provisioning). Returns its id.
  NodeId AddNode(MarketId market, uint64_t memory_budget_bytes, int executor_threads = 1);

  // Adds a node after the model acquisition delay (replacement provisioning).
  // Returns the id the node will have.
  NodeId AddNodeAfterDelay(MarketId market, uint64_t memory_budget_bytes,
                           int executor_threads = 1);

  // Delivers a warning to each node now and revokes them one model warning
  // period later. Nodes already gone are ignored.
  void Revoke(const std::vector<NodeId>& nodes, bool with_warning = true);

  // Revokes every live node acquired from `market` (the paper's batch-mode
  // scenario: a price spike kills the whole homogeneous cluster).
  void RevokeMarket(MarketId market, bool with_warning = true);

  // Snapshot of currently live (not yet revoked) nodes. Nodes under warning
  // are still included — they keep executing until revocation.
  std::vector<NodeInfo> LiveNodes() const;
  size_t NumLiveNodes() const;
  bool IsLive(NodeId node) const;

  // Blocks until all scheduled lifecycle events have been delivered.
  void DrainEvents();

 private:
  void FinishRevocation(NodeId node);

  TimeConfig time_config_;
  mutable Mutex mutex_{"ClusterManager::mutex_"};
  ClusterListener* listener_ GUARDED_BY(mutex_) = nullptr;
  std::unordered_map<NodeId, NodeInfo> live_ GUARDED_BY(mutex_);
  NodeId next_node_id_ GUARDED_BY(mutex_) = 0;
  TimerQueue timers_;
};

}  // namespace flint

#endif  // SRC_CLUSTER_CLUSTER_MANAGER_H_
