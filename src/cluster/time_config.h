// Mapping between the paper's model time (hours) and engine-plane real time.
//
// Engine experiments run real computations on MB-scale data, so model-time
// quantities (MTTFs of tens of hours, 2-minute revocation warnings and
// acquisition delays) are scaled down by one knob: seconds_per_model_hour.
// With the default of 6.0, one model hour lasts six real seconds, a 2-minute
// warning lasts 200 ms, and an MTTF of 50 h maps to a 300 s horizon —
// commensurate with workload runtimes of a few seconds, preserving the
// paper's ratios.

#ifndef SRC_CLUSTER_TIME_CONFIG_H_
#define SRC_CLUSTER_TIME_CONFIG_H_

#include "src/common/units.h"

namespace flint {

struct TimeConfig {
  double seconds_per_model_hour = 6.0;
  // EC2 gives a two-minute revocation warning; GCE gives 30 s.
  SimDuration revocation_warning = Minutes(2);
  // Replacement-server acquisition delay ("typically two minutes", Sec 3.1.2).
  SimDuration acquisition_delay = Minutes(2);

  double ToEngineSeconds(SimDuration model_hours) const {
    return model_hours * seconds_per_model_hour;
  }
  SimDuration FromEngineSeconds(double seconds) const {
    return seconds / seconds_per_model_hour;
  }
};

}  // namespace flint

#endif  // SRC_CLUSTER_TIME_CONFIG_H_
