// A single spot pool: replays its price trace, answers revocation queries for
// a given bid, and bills held servers the way EC2 does (hourly, at the spot
// price in effect at the start of each hour). Fixed-price (GCE preemptible)
// pools instead sample revocations from the preemptible lifetime model.

#ifndef SRC_MARKET_SPOT_MARKET_H_
#define SRC_MARKET_SPOT_MARKET_H_

#include <limits>
#include <string>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/trace/market_catalog.h"
#include "src/trace/price_trace.h"

namespace flint {

inline constexpr double kInfiniteTime = std::numeric_limits<double>::infinity();

class SpotMarket {
 public:
  explicit SpotMarket(MarketDesc desc) : desc_(std::move(desc)) {}

  const std::string& name() const { return desc_.name; }
  double on_demand_price() const { return desc_.on_demand_price; }
  bool fixed_price() const { return desc_.fixed_price; }
  const MarketDesc& desc() const { return desc_; }

  // Spot price at absolute time t.
  double PriceAt(SimTime t) const;

  // Whether a request at time t with the given bid would be granted.
  bool Available(SimTime t, double bid) const { return PriceAt(t) <= bid; }

  // First time >= t at which a server bid at `bid` is revoked. For trace
  // markets this is the first price crossing above the bid; for fixed-price
  // pools a lifetime is sampled from `rng`. Returns kInfiniteTime if the
  // price never crosses the bid in the (wrapped) trace.
  SimTime NextRevocation(SimTime t, double bid, Rng& rng) const;

  // First time >= t at which the market becomes available at `bid` (price
  // drops back to <= bid). Returns kInfiniteTime if never.
  SimTime NextAvailability(SimTime t, double bid) const;

  // Cost of holding one server on [start, end) with EC2-style hourly billing:
  // each (possibly partial) hour is billed at the spot price in effect at the
  // start of that hour. EC2 does not charge the final partial hour when the
  // *provider* revokes; `revoked` selects that behaviour.
  double BillServer(SimTime start, SimTime end, bool revoked) const;

  // Trace statistics at a bid over the whole trace.
  BidStats StatsAtBid(double bid) const;

  // Statistics over the window [end - window, end), the "recent price
  // history" the node manager monitors. Window is clamped to the trace.
  BidStats StatsInWindow(SimTime end, SimDuration window, double bid) const;

 private:
  MarketDesc desc_;
};

}  // namespace flint

#endif  // SRC_MARKET_SPOT_MARKET_H_
