#include "src/market/marketplace.h"

#include <cmath>

namespace flint {

Marketplace::Marketplace(std::vector<MarketDesc> markets, double on_demand_price, uint64_t seed)
    : on_demand_price_(on_demand_price), rng_(seed) {
  markets_.reserve(markets.size());
  for (auto& desc : markets) {
    markets_.emplace_back(std::move(desc));
  }
}

Result<Lease> Marketplace::Acquire(MarketId id, double bid, SimTime t) {
  Lease lease;
  lease.start = t;
  if (id == kOnDemandMarket) {
    lease.market = kOnDemandMarket;
    lease.bid = on_demand_price_;
    lease.revocation = kInfiniteTime;
    return lease;
  }
  if (id < 0 || static_cast<size_t>(id) >= markets_.size()) {
    return InvalidArgument("no such market id " + std::to_string(id));
  }
  if (bid > MaxBid()) {
    return InvalidArgument("bid exceeds 10x on-demand cap");
  }
  const SpotMarket& m = markets_[static_cast<size_t>(id)];
  if (!m.fixed_price() && !m.Available(t, bid)) {
    return Unavailable("spot price above bid in " + m.name());
  }
  lease.market = id;
  lease.bid = bid;
  lease.revocation = m.NextRevocation(t, bid, rng_);
  return lease;
}

double Marketplace::Cost(const Lease& lease, SimTime end) const {
  if (lease.market == kOnDemandMarket) {
    // On-demand: hourly billing at the flat on-demand price.
    const double held = std::max(0.0, end - lease.start);
    return std::ceil(held - 1e-9) * on_demand_price_;
  }
  const SpotMarket& m = markets_[static_cast<size_t>(lease.market)];
  const bool revoked = end >= lease.revocation;
  return m.BillServer(lease.start, std::min(end, lease.revocation), revoked);
}

BidStats Marketplace::Stats(MarketId id, double bid) const {
  if (id == kOnDemandMarket) {
    BidStats stats;
    stats.bid = bid;
    stats.mttf_hours = kInfiniteTime;
    stats.avg_price = on_demand_price_;
    stats.availability = 1.0;
    return stats;
  }
  return markets_.at(static_cast<size_t>(id)).StatsAtBid(bid);
}

BidStats Marketplace::WindowStats(MarketId id, SimTime now, SimDuration window, double bid) const {
  if (id == kOnDemandMarket) {
    return Stats(id, bid);
  }
  return markets_.at(static_cast<size_t>(id)).StatsInWindow(now, window, bid);
}

std::vector<std::vector<double>> Marketplace::CorrelationMatrix() const {
  const size_t n = markets_.size();
  std::vector<std::vector<double>> matrix(n, std::vector<double>(n, 1.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double c = 0.0;
      if (!markets_[i].fixed_price() && !markets_[j].fixed_price()) {
        c = TraceCorrelation(markets_[i].desc().trace, markets_[j].desc().trace);
      }
      matrix[i][j] = c;
      matrix[j][i] = c;
    }
  }
  return matrix;
}

bool Marketplace::PriceNearAverage(MarketId id, SimTime now, SimDuration window,
                                   double threshold) const {
  if (id == kOnDemandMarket) {
    return true;
  }
  const SpotMarket& m = markets_.at(static_cast<size_t>(id));
  const BidStats stats = m.StatsInWindow(now, window, MaxBid());
  if (stats.avg_price <= 0.0) {
    return false;
  }
  return m.PriceAt(now) <= stats.avg_price * (1.0 + threshold);
}

}  // namespace flint
