// The marketplace aggregates every spot pool plus the on-demand pool (modeled,
// per the paper, as a market with a stable price and zero revocation
// probability). It is the single interface the node manager and the
// long-horizon simulator use to query prices, MTTFs, correlations, and to
// acquire/bill servers.

#ifndef SRC_MARKET_MARKETPLACE_H_
#define SRC_MARKET_MARKETPLACE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/units.h"
#include "src/market/spot_market.h"

namespace flint {

// Index of a market within a Marketplace. kOnDemandMarket designates the
// non-revocable on-demand pool.
using MarketId = int;
inline constexpr MarketId kOnDemandMarket = -1;

// One acquired server lease.
struct Lease {
  MarketId market = kOnDemandMarket;
  double bid = 0.0;
  SimTime start = 0.0;
  SimTime revocation = kInfiniteTime;  // provider-chosen revocation time
};

class Marketplace {
 public:
  // `on_demand_price` is the price of the reference on-demand server type the
  // cluster would otherwise use.
  Marketplace(std::vector<MarketDesc> markets, double on_demand_price, uint64_t seed);

  size_t num_markets() const { return markets_.size(); }
  double on_demand_price() const { return on_demand_price_; }
  const SpotMarket& market(MarketId id) const { return markets_.at(static_cast<size_t>(id)); }

  // EC2 policy: bids are capped at 10x the on-demand price.
  double MaxBid() const { return 10.0 * on_demand_price_; }

  // Acquires one server from `id` at time t with the given bid. On-demand
  // acquisitions always succeed and never get revoked. Spot acquisitions fail
  // with kUnavailable if the current price exceeds the bid.
  Result<Lease> Acquire(MarketId id, double bid, SimTime t);

  // Cost of a lease held until `end` (end <= lease.revocation). The final
  // partial hour is free when the lease ended because of a revocation.
  double Cost(const Lease& lease, SimTime end) const;

  // Whole-trace statistics at a bid.
  BidStats Stats(MarketId id, double bid) const;

  // Recent-window statistics (the node manager monitors "the past week").
  BidStats WindowStats(MarketId id, SimTime now, SimDuration window, double bid) const;

  // Pairwise price-correlation matrix over all spot markets (Fig 4).
  std::vector<std::vector<double>> CorrelationMatrix() const;

  // Instantaneous-risk filter from the restoration policy: true if the
  // current price is within `threshold` (fractional, e.g. 0.10) of the
  // recent-window average price — i.e. the market is not currently spiking.
  bool PriceNearAverage(MarketId id, SimTime now, SimDuration window, double threshold) const;

 private:
  std::vector<SpotMarket> markets_;
  double on_demand_price_;
  Rng rng_;
};

}  // namespace flint

#endif  // SRC_MARKET_MARKETPLACE_H_
