#include "src/market/spot_market.h"

#include <algorithm>
#include <cmath>

namespace flint {

double SpotMarket::PriceAt(SimTime t) const {
  if (desc_.fixed_price) {
    return desc_.fixed_price_value;
  }
  return desc_.trace.PriceAt(t);
}

SimTime SpotMarket::NextRevocation(SimTime t, double bid, Rng& rng) const {
  if (desc_.fixed_price) {
    double life = desc_.fixed_mttf_hours > 0.0
                      ? SampleGceLifetime(rng, desc_.fixed_mttf_hours)
                      : rng.Exponential(24.0);
    if (desc_.max_lifetime_hours > 0.0) {
      life = std::min(life, desc_.max_lifetime_hours);
    }
    return t + life;
  }
  const PriceTrace& trace = desc_.trace;
  if (trace.empty()) {
    return kInfiniteTime;
  }
  const double step = trace.step();
  const size_t n = trace.size();
  size_t idx = trace.IndexAt(t);
  // Scan at most one full trace length; the trace wraps, so if no sample
  // exceeds the bid the server is never revoked.
  for (size_t scanned = 0; scanned < n; ++scanned) {
    const size_t i = (idx + scanned) % n;
    if (trace.prices()[i] > bid) {
      const double sample_start =
          std::floor(t / step) * step + static_cast<double>(scanned) * step;
      return std::max(t, sample_start);
    }
  }
  return kInfiniteTime;
}

SimTime SpotMarket::NextAvailability(SimTime t, double bid) const {
  if (desc_.fixed_price) {
    return t;  // fixed-price pools always grant requests
  }
  const PriceTrace& trace = desc_.trace;
  if (trace.empty()) {
    return kInfiniteTime;
  }
  const double step = trace.step();
  const size_t n = trace.size();
  size_t idx = trace.IndexAt(t);
  for (size_t scanned = 0; scanned < n; ++scanned) {
    const size_t i = (idx + scanned) % n;
    if (trace.prices()[i] <= bid) {
      const double sample_start =
          std::floor(t / step) * step + static_cast<double>(scanned) * step;
      return std::max(t, sample_start);
    }
  }
  return kInfiniteTime;
}

double SpotMarket::BillServer(SimTime start, SimTime end, bool revoked) const {
  if (end <= start) {
    return 0.0;
  }
  double cost = 0.0;
  double t = start;
  while (t < end) {
    const double hour_end = std::min(t + 1.0, end);
    const bool final_partial = hour_end >= end && (end - t) < 1.0;
    if (!(revoked && final_partial)) {
      cost += PriceAt(t);  // full-hour billing at the price in effect at hour start
    }
    t += 1.0;
  }
  return cost;
}

BidStats SpotMarket::StatsAtBid(double bid) const {
  if (desc_.fixed_price) {
    BidStats stats;
    stats.bid = bid;
    stats.mttf_hours = desc_.fixed_mttf_hours > 0.0 ? desc_.fixed_mttf_hours : 24.0;
    stats.avg_price = desc_.fixed_price_value;
    stats.availability = 1.0;
    return stats;
  }
  return ComputeBidStats(desc_.trace, bid);
}

BidStats SpotMarket::StatsInWindow(SimTime end, SimDuration window, double bid) const {
  if (desc_.fixed_price) {
    return StatsAtBid(bid);
  }
  const PriceTrace& trace = desc_.trace;
  if (trace.empty() || window <= 0.0) {
    return StatsAtBid(bid);
  }
  const double step = trace.step();
  const auto count = std::min<size_t>(trace.size(), static_cast<size_t>(window / step));
  if (count == 0) {
    return StatsAtBid(bid);
  }
  std::vector<double> slice(count);
  const size_t n = trace.size();
  // Window ends at `end` (exclusive), wrapping backwards through the trace.
  const size_t end_idx = trace.IndexAt(end);
  for (size_t k = 0; k < count; ++k) {
    const size_t i = (end_idx + n - count + k) % n;
    slice[k] = trace.prices()[i];
  }
  return ComputeBidStats(PriceTrace(step, std::move(slice)), bid);
}

}  // namespace flint
