#include "src/inject/fault_plan.h"

namespace flint {

FaultEvent RevokeAllAt(EnginePoint at, int after_hits, bool with_warning, int replacements,
                       double delay_seconds) {
  FaultEvent event;
  event.at = at;
  event.after_hits = after_hits;
  event.action = FaultActionKind::kRevokeAll;
  event.with_warning = with_warning;
  event.replacement_count = replacements;
  event.replacement_delay_seconds = delay_seconds;
  return event;
}

FaultEvent RevokeCountAt(EnginePoint at, int after_hits, int count, bool with_warning,
                         double delay_seconds) {
  FaultEvent event;
  event.at = at;
  event.after_hits = after_hits;
  event.action = FaultActionKind::kRevokeCount;
  event.count = count;
  event.with_warning = with_warning;
  event.replacement_count = count;
  event.replacement_delay_seconds = delay_seconds;
  return event;
}

}  // namespace flint
