#include "src/inject/fault_plan.h"

namespace flint {

FaultEvent RevokeAllAt(EnginePoint at, int after_hits, bool with_warning, int replacements,
                       double delay_seconds) {
  FaultEvent event;
  event.at = at;
  event.after_hits = after_hits;
  event.action = FaultActionKind::kRevokeAll;
  event.with_warning = with_warning;
  event.replacement_count = replacements;
  event.replacement_delay_seconds = delay_seconds;
  return event;
}

FaultEvent RevokeCountAt(EnginePoint at, int after_hits, int count, bool with_warning,
                         double delay_seconds) {
  FaultEvent event;
  event.at = at;
  event.after_hits = after_hits;
  event.action = FaultActionKind::kRevokeCount;
  event.count = count;
  event.with_warning = with_warning;
  event.replacement_count = count;
  event.replacement_delay_seconds = delay_seconds;
  return event;
}

namespace {

FaultEvent StorageEvent(EnginePoint at, int after_hits, FaultActionKind action,
                        std::string prefix) {
  FaultEvent event;
  event.at = at;
  event.after_hits = after_hits;
  event.action = action;
  event.path_prefix = std::move(prefix);
  return event;
}

}  // namespace

FaultEvent FailWritesAt(EnginePoint at, int after_hits, std::string prefix, int count) {
  FaultEvent event = StorageEvent(at, after_hits, FaultActionKind::kFailWrites, std::move(prefix));
  event.count = count;
  return event;
}

FaultEvent FailReadsAt(EnginePoint at, int after_hits, std::string prefix, int count) {
  FaultEvent event = StorageEvent(at, after_hits, FaultActionKind::kFailReads, std::move(prefix));
  event.count = count;
  return event;
}

FaultEvent CorruptObjectAt(EnginePoint at, int after_hits, std::string prefix) {
  return StorageEvent(at, after_hits, FaultActionKind::kCorruptObject, std::move(prefix));
}

FaultEvent DfsOutageAt(EnginePoint at, int after_hits, std::string prefix,
                       double duration_seconds) {
  FaultEvent event = StorageEvent(at, after_hits, FaultActionKind::kDfsOutage, std::move(prefix));
  event.duration_seconds = duration_seconds;
  return event;
}

FaultEvent DfsSlowAt(EnginePoint at, int after_hits, std::string prefix, double duration_seconds,
                     double slow_factor) {
  FaultEvent event = StorageEvent(at, after_hits, FaultActionKind::kDfsSlow, std::move(prefix));
  event.duration_seconds = duration_seconds;
  event.slow_factor = slow_factor;
  return event;
}

FaultEvent SlowNodeAt(EnginePoint at, int after_hits, int node_ordinal, double slow_factor,
                      double duration_seconds) {
  FaultEvent event;
  event.at = at;
  event.after_hits = after_hits;
  event.action = FaultActionKind::kSlowNode;
  event.node_ordinal = node_ordinal;
  event.slow_factor = slow_factor;
  event.duration_seconds = duration_seconds;
  return event;
}

FaultEvent SlowLinkAt(EnginePoint at, int after_hits, int node_ordinal, double slow_factor,
                      double duration_seconds) {
  FaultEvent event;
  event.at = at;
  event.after_hits = after_hits;
  event.action = FaultActionKind::kSlowLink;
  event.node_ordinal = node_ordinal;
  event.slow_factor = slow_factor;
  event.duration_seconds = duration_seconds;
  return event;
}

FaultEvent HangTaskAt(EnginePoint at, int after_hits, int node_ordinal, int count) {
  FaultEvent event;
  event.at = at;
  event.after_hits = after_hits;
  event.action = FaultActionKind::kHangTask;
  event.node_ordinal = node_ordinal;
  event.count = count;
  return event;
}

FaultEvent FlakyNodeAt(EnginePoint at, int after_hits, int node_ordinal, double probability,
                       double duration_seconds) {
  FaultEvent event;
  event.at = at;
  event.after_hits = after_hits;
  event.action = FaultActionKind::kFlakyNode;
  event.node_ordinal = node_ordinal;
  event.probability = probability;
  event.duration_seconds = duration_seconds;
  return event;
}

}  // namespace flint
