#include "src/inject/fault_injector.h"

#include <algorithm>

#include "src/common/log.h"

namespace flint {

namespace {

size_t PointIndex(EnginePoint point) { return static_cast<size_t>(point); }

bool MatchesPrefix(const std::string& path, const std::string& prefix) {
  return prefix.empty() || path.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

FaultInjector::FaultInjector(ClusterManager* cluster, FaultPlan plan, Dfs* dfs)
    : cluster_(cluster),
      plan_(std::move(plan)),
      dfs_(dfs),
      fired_(plan_.events.size(), false),
      rng_(plan_.seed) {
  if (dfs_ != nullptr) {
    dfs_->SetFaultHook(this);
  }
}

FaultInjector::~FaultInjector() {
  if (dfs_ != nullptr) {
    dfs_->SetFaultHook(nullptr);
  }
  // Replacement timers capture `this`; settle them before members go away.
  timers_.Drain();
}

void FaultInjector::AtPoint(EnginePoint point) {
  std::vector<size_t> due;
  {
    MutexLock lock(&mutex_);
    ++stats_.points_observed;
    const int hit = hits_[PointIndex(point)]++;
    for (size_t i = 0; i < plan_.events.size(); ++i) {
      if (!fired_[i] && plan_.events[i].at == point && plan_.events[i].after_hits == hit) {
        fired_[i] = true;
        ++stats_.events_fired;
        due.push_back(i);
      }
    }
  }
  // Execute outside the lock: revocations fan out through cluster listeners
  // and may re-enter AtPoint from other points.
  for (size_t i : due) {
    Fire(plan_.events[i]);
  }
}

void FaultInjector::Fire(const FaultEvent& event) {
  std::vector<NodeId> victims;
  switch (event.action) {
    case FaultActionKind::kRevokeAll:
      for (const NodeInfo& info : cluster_->LiveNodes()) {
        victims.push_back(info.node_id);
      }
      break;
    case FaultActionKind::kRevokeCount:
      for (const NodeInfo& info : cluster_->LiveNodes()) {
        victims.push_back(info.node_id);
      }
      // Lowest ids first, so "k of m" is deterministic regardless of the
      // membership map's iteration order.
      std::sort(victims.begin(), victims.end());
      if (static_cast<size_t>(event.count) < victims.size()) {
        victims.resize(static_cast<size_t>(event.count));
      }
      break;
    case FaultActionKind::kRevokeMarket:
      for (const NodeInfo& info : cluster_->LiveNodes()) {
        if (info.market == event.market) {
          victims.push_back(info.node_id);
        }
      }
      break;
    case FaultActionKind::kAddNodes:
      for (int i = 0; i < event.count; ++i) {
        cluster_->AddNode(event.market, event.replacement_memory_bytes,
                          event.replacement_executor_threads);
      }
      return;
    case FaultActionKind::kFailWrites: {
      FLINT_ILOG() << "fault injection: failing next " << event.count << " write(s) matching '"
                   << event.path_prefix << "'";
      MutexLock lock(&mutex_);
      write_fails_.push_back(PrefixBudget{event.path_prefix, event.count});
      return;
    }
    case FaultActionKind::kFailReads: {
      FLINT_ILOG() << "fault injection: failing next " << event.count << " read(s) matching '"
                   << event.path_prefix << "'";
      MutexLock lock(&mutex_);
      read_fails_.push_back(PrefixBudget{event.path_prefix, event.count});
      return;
    }
    case FaultActionKind::kCorruptObject: {
      size_t corrupted = 0;
      if (dfs_ != nullptr) {
        corrupted = dfs_->CorruptMatching(event.path_prefix);
      }
      FLINT_ILOG() << "fault injection: corrupted " << corrupted << " object(s) matching '"
                   << event.path_prefix << "'";
      MutexLock lock(&mutex_);
      stats_.objects_corrupted += corrupted;
      return;
    }
    case FaultActionKind::kDfsOutage: {
      FLINT_ILOG() << "fault injection: DFS outage for " << event.duration_seconds
                   << "s on paths matching '" << event.path_prefix << "'";
      MutexLock lock(&mutex_);
      outages_.push_back(
          FaultWindow{event.path_prefix,
                      WallClock::now() + std::chrono::duration_cast<WallClock::duration>(
                                             WallDuration(event.duration_seconds)),
                      1.0});
      return;
    }
    case FaultActionKind::kDfsSlow: {
      FLINT_ILOG() << "fault injection: DFS " << event.slow_factor << "x slowdown for "
                   << event.duration_seconds << "s on paths matching '" << event.path_prefix
                   << "'";
      MutexLock lock(&mutex_);
      slowdowns_.push_back(
          FaultWindow{event.path_prefix,
                      WallClock::now() + std::chrono::duration_cast<WallClock::duration>(
                                             WallDuration(event.duration_seconds)),
                      event.slow_factor});
      return;
    }
    case FaultActionKind::kSlowNode: {
      const NodeId victim = ResolveVictim(event.node_ordinal);
      FLINT_ILOG() << "fault injection: node " << victim << " compute " << event.slow_factor
                   << "x slower for " << event.duration_seconds << "s";
      NodeWindow window;
      window.node = victim;
      window.until = WallClock::now() + std::chrono::duration_cast<WallClock::duration>(
                                            WallDuration(event.duration_seconds));
      window.slow_factor = event.slow_factor;
      MutexLock lock(&mutex_);
      slow_nodes_.push_back(window);
      return;
    }
    case FaultActionKind::kSlowLink: {
      const NodeId victim = ResolveVictim(event.node_ordinal);
      FLINT_ILOG() << "fault injection: node " << victim << " link " << event.slow_factor
                   << "x slower for " << event.duration_seconds << "s";
      NodeWindow window;
      window.node = victim;
      window.until = WallClock::now() + std::chrono::duration_cast<WallClock::duration>(
                                            WallDuration(event.duration_seconds));
      window.slow_factor = event.slow_factor;
      MutexLock lock(&mutex_);
      slow_links_.push_back(window);
      return;
    }
    case FaultActionKind::kHangTask: {
      const NodeId victim = ResolveVictim(event.node_ordinal);
      FLINT_ILOG() << "fault injection: hanging next " << event.count << " task attempt(s)"
                   << (victim >= 0 ? " on node " + std::to_string(victim) : " on any node");
      MutexLock lock(&mutex_);
      hang_budgets_.push_back(HangBudget{victim, event.count});
      return;
    }
    case FaultActionKind::kFlakyNode: {
      const NodeId victim = ResolveVictim(event.node_ordinal);
      FLINT_ILOG() << "fault injection: node " << victim << " attempts fail with p="
                   << event.probability << " for " << event.duration_seconds << "s";
      NodeWindow window;
      window.node = victim;
      window.until = WallClock::now() + std::chrono::duration_cast<WallClock::duration>(
                                            WallDuration(event.duration_seconds));
      window.probability = event.probability;
      MutexLock lock(&mutex_);
      flaky_nodes_.push_back(window);
      return;
    }
  }
  std::sort(victims.begin(), victims.end());
  if (!victims.empty()) {
    FLINT_ILOG() << "fault injection: revoking " << victims.size() << " node(s)"
                 << (event.with_warning ? " with warning" : "");
    cluster_->Revoke(victims, event.with_warning);
    MutexLock lock(&mutex_);
    stats_.nodes_revoked += victims.size();
  }
  if (event.replacement_count > 0) {
    {
      MutexLock lock(&mutex_);
      stats_.replacements_scheduled += static_cast<uint64_t>(event.replacement_count);
    }
    timers_.ScheduleAfter(WallDuration(event.replacement_delay_seconds), [this, event] {
      for (int i = 0; i < event.replacement_count; ++i) {
        cluster_->AddNode(event.market, event.replacement_memory_bytes,
                          event.replacement_executor_threads);
      }
    });
  }
}

NodeId FaultInjector::ResolveVictim(int ordinal) const {
  if (ordinal < 0) {
    return -1;
  }
  std::vector<NodeId> ids;
  for (const NodeInfo& info : cluster_->LiveNodes()) {
    ids.push_back(info.node_id);
  }
  std::sort(ids.begin(), ids.end());
  if (static_cast<size_t>(ordinal) >= ids.size()) {
    return -1;
  }
  return ids[static_cast<size_t>(ordinal)];
}

TaskFaultDirective FaultInjector::OnTaskRun(const TaskRunInfo& info) {
  // Probe first, as with OnPut/OnGet: an event armed at hit N must affect
  // attempt N itself.
  AtPoint(EnginePoint::kTaskRun);
  const WallTime now = WallClock::now();
  TaskFaultDirective directive;
  MutexLock lock(&mutex_);
  for (HangBudget& budget : hang_budgets_) {
    if (budget.remaining > 0 && (budget.node < 0 || budget.node == info.node)) {
      --budget.remaining;
      ++stats_.tasks_hung_injected;
      directive.hang = true;
      return directive;
    }
  }
  for (const NodeWindow& flaky : flaky_nodes_) {
    if (now < flaky.until && (flaky.node < 0 || flaky.node == info.node) &&
        rng_.Bernoulli(flaky.probability)) {
      ++stats_.tasks_failed_injected;
      directive.fail =
          Unavailable("injected flaky-node failure on node " + std::to_string(info.node));
      return directive;
    }
  }
  for (const NodeWindow& slow : slow_nodes_) {
    if (now < slow.until && (slow.node < 0 || slow.node == info.node)) {
      directive.slow_factor *= slow.slow_factor;
    }
  }
  if (directive.slow_factor != 1.0) {
    ++stats_.tasks_slowed;
  }
  return directive;
}

FetchFaultDirective FaultInjector::OnShuffleFetch(const ShuffleFetchInfo& info) {
  // Probe first, as with OnTaskRun: an event armed at hit N must affect
  // pull N itself.
  AtPoint(EnginePoint::kShuffleFetch);
  const WallTime now = WallClock::now();
  FetchFaultDirective directive;
  MutexLock lock(&mutex_);
  for (const NodeWindow& slow : slow_links_) {
    if (now < slow.until && (slow.node < 0 || slow.node == info.producer)) {
      directive.slow_factor *= slow.slow_factor;
    }
  }
  if (directive.slow_factor != 1.0) {
    ++stats_.fetches_slowed;
  }
  return directive;
}

DfsFaultVerdict FaultInjector::OnPut(const std::string& path) {
  // Probe first: an event armed at hit N must affect operation N itself
  // ("fail the very first checkpoint write" needs no warm-up op).
  AtPoint(EnginePoint::kDfsPut);
  return Evaluate(path, /*is_write=*/true);
}

DfsFaultVerdict FaultInjector::OnGet(const std::string& path) {
  AtPoint(EnginePoint::kDfsGet);
  return Evaluate(path, /*is_write=*/false);
}

DfsFaultVerdict FaultInjector::Evaluate(const std::string& path, bool is_write) {
  const WallTime now = WallClock::now();
  MutexLock lock(&mutex_);
  for (const FaultWindow& outage : outages_) {
    if (now < outage.until && MatchesPrefix(path, outage.prefix)) {
      if (is_write) {
        ++stats_.writes_failed_injected;
      } else {
        ++stats_.reads_failed_injected;
      }
      DfsFaultVerdict verdict;
      verdict.status = Unavailable("injected DFS outage: " + path);
      return verdict;
    }
  }
  std::vector<PrefixBudget>& budgets = is_write ? write_fails_ : read_fails_;
  for (PrefixBudget& budget : budgets) {
    if (budget.remaining > 0 && MatchesPrefix(path, budget.prefix)) {
      --budget.remaining;
      if (is_write) {
        ++stats_.writes_failed_injected;
      } else {
        ++stats_.reads_failed_injected;
      }
      DfsFaultVerdict verdict;
      verdict.status =
          Unavailable(std::string("injected ") + (is_write ? "write" : "read") + " failure: " + path);
      return verdict;
    }
  }
  DfsFaultVerdict verdict;
  for (const FaultWindow& slow : slowdowns_) {
    if (now < slow.until && MatchesPrefix(path, slow.prefix)) {
      verdict.slow_factor *= slow.slow_factor;
    }
  }
  if (verdict.slow_factor != 1.0) {
    ++stats_.ops_slowed;
  }
  return verdict;
}

FaultInjector::Stats FaultInjector::GetStats() const {
  MutexLock lock(&mutex_);
  return stats_;
}

int FaultInjector::HitCount(EnginePoint point) const {
  MutexLock lock(&mutex_);
  return hits_[PointIndex(point)];
}

bool FaultInjector::AllEventsFired() const {
  MutexLock lock(&mutex_);
  return std::all_of(fired_.begin(), fired_.end(), [](bool f) { return f; });
}

void FaultInjector::Drain() { timers_.Drain(); }

}  // namespace flint
