#include "src/inject/fault_injector.h"

#include <algorithm>

#include "src/common/log.h"

namespace flint {

namespace {

size_t PointIndex(EnginePoint point) { return static_cast<size_t>(point); }

}  // namespace

FaultInjector::FaultInjector(ClusterManager* cluster, FaultPlan plan)
    : cluster_(cluster), plan_(std::move(plan)), fired_(plan_.events.size(), false) {}

FaultInjector::~FaultInjector() {
  // Replacement timers capture `this`; settle them before members go away.
  timers_.Drain();
}

void FaultInjector::AtPoint(EnginePoint point) {
  std::vector<size_t> due;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.points_observed;
    const int hit = hits_[PointIndex(point)]++;
    for (size_t i = 0; i < plan_.events.size(); ++i) {
      if (!fired_[i] && plan_.events[i].at == point && plan_.events[i].after_hits == hit) {
        fired_[i] = true;
        ++stats_.events_fired;
        due.push_back(i);
      }
    }
  }
  // Execute outside the lock: revocations fan out through cluster listeners
  // and may re-enter AtPoint from other points.
  for (size_t i : due) {
    Fire(plan_.events[i]);
  }
}

void FaultInjector::Fire(const FaultEvent& event) {
  std::vector<NodeId> victims;
  switch (event.action) {
    case FaultActionKind::kRevokeAll:
      for (const NodeInfo& info : cluster_->LiveNodes()) {
        victims.push_back(info.node_id);
      }
      break;
    case FaultActionKind::kRevokeCount:
      for (const NodeInfo& info : cluster_->LiveNodes()) {
        victims.push_back(info.node_id);
      }
      // Lowest ids first, so "k of m" is deterministic regardless of the
      // membership map's iteration order.
      std::sort(victims.begin(), victims.end());
      if (static_cast<size_t>(event.count) < victims.size()) {
        victims.resize(static_cast<size_t>(event.count));
      }
      break;
    case FaultActionKind::kRevokeMarket:
      for (const NodeInfo& info : cluster_->LiveNodes()) {
        if (info.market == event.market) {
          victims.push_back(info.node_id);
        }
      }
      break;
    case FaultActionKind::kAddNodes:
      for (int i = 0; i < event.count; ++i) {
        cluster_->AddNode(event.market, event.replacement_memory_bytes,
                          event.replacement_executor_threads);
      }
      return;
  }
  std::sort(victims.begin(), victims.end());
  if (!victims.empty()) {
    FLINT_ILOG() << "fault injection: revoking " << victims.size() << " node(s)"
                 << (event.with_warning ? " with warning" : "");
    cluster_->Revoke(victims, event.with_warning);
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.nodes_revoked += victims.size();
  }
  if (event.replacement_count > 0) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.replacements_scheduled += static_cast<uint64_t>(event.replacement_count);
    }
    timers_.ScheduleAfter(WallDuration(event.replacement_delay_seconds), [this, event] {
      for (int i = 0; i < event.replacement_count; ++i) {
        cluster_->AddNode(event.market, event.replacement_memory_bytes,
                          event.replacement_executor_threads);
      }
    });
  }
}

FaultInjector::Stats FaultInjector::GetStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

int FaultInjector::HitCount(EnginePoint point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_[PointIndex(point)];
}

bool FaultInjector::AllEventsFired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::all_of(fired_.begin(), fired_.end(), [](bool f) { return f; });
}

void FaultInjector::Drain() { timers_.Drain(); }

}  // namespace flint
