// Executes a FaultPlan against a live cluster. The injector implements
// EngineProbe: install it with FlintContext::SetProbe and every scripted
// event fires synchronously on the engine thread that reaches its trigger
// point, revoking nodes through the ordinary ClusterManager machinery — so
// the engine, node manager, and fault-tolerance manager observe the loss
// exactly as they would from a real market revocation, at a deterministic
// point in the job's execution.

#ifndef SRC_INJECT_FAULT_INJECTOR_H_
#define SRC_INJECT_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/cluster/cluster_manager.h"
#include "src/cluster/timer_queue.h"
#include "src/engine/observer.h"
#include "src/inject/fault_plan.h"

namespace flint {

class FaultInjector : public EngineProbe {
 public:
  FaultInjector(ClusterManager* cluster, FaultPlan plan);
  ~FaultInjector() override;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // EngineProbe. Thread-safe; events execute outside the internal lock.
  void AtPoint(EnginePoint point) override;

  struct Stats {
    uint64_t points_observed = 0;
    uint64_t events_fired = 0;
    uint64_t nodes_revoked = 0;
    uint64_t replacements_scheduled = 0;
  };
  Stats GetStats() const;
  int HitCount(EnginePoint point) const;
  bool AllEventsFired() const;

  // Blocks until every scheduled replacement has joined the cluster.
  void Drain();

 private:
  void Fire(const FaultEvent& event);

  ClusterManager* cluster_;
  FaultPlan plan_;

  mutable std::mutex mutex_;
  std::array<int, kEnginePointCount> hits_{};
  std::vector<bool> fired_;
  Stats stats_;

  TimerQueue timers_;  // delayed replacement arrivals
};

}  // namespace flint

#endif  // SRC_INJECT_FAULT_INJECTOR_H_
