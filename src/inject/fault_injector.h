// Executes a FaultPlan against a live cluster. The injector implements
// EngineProbe: install it with FlintContext::SetProbe and every scripted
// event fires synchronously on the engine thread that reaches its trigger
// point, revoking nodes through the ordinary ClusterManager machinery — so
// the engine, node manager, and fault-tolerance manager observe the loss
// exactly as they would from a real market revocation, at a deterministic
// point in the job's execution.
//
// When constructed with a Dfs, the injector also implements DfsFaultHook:
// it installs itself via Dfs::SetFaultHook, counts every Put/Get as a
// kDfsPut/kDfsGet probe arrival (so plans can trigger on "the Nth
// checkpoint write"), and enforces armed storage faults — failed writes or
// reads by prefix, outage windows, slow-I/O windows, and checksum
// corruption of stored objects. An event armed at hit N affects operation
// N itself: AtPoint runs before the verdict is evaluated.
//
// Straggler faults (kSlowNode / kHangTask / kFlakyNode) follow the same
// model at the kTaskRun probe: OnTaskRun counts the attempt as a kTaskRun
// arrival (so a plan can trigger on "the Nth task attempt"), then checks
// armed per-node windows and budgets and returns a TaskFaultDirective the
// scheduler enforces cooperatively. Victim nodes are resolved at fire time
// by ordinal over the sorted live-node ids, and kFlakyNode coin flips come
// from an Rng seeded by FaultPlan::seed — two runs of the same plan with
// the same seed inject identical faults.

#ifndef SRC_INJECT_FAULT_INJECTOR_H_
#define SRC_INJECT_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/cluster/cluster_manager.h"
#include "src/cluster/timer_queue.h"
#include "src/common/mutex.h"
#include "src/common/rng.h"
#include "src/common/thread_annotations.h"
#include "src/common/units.h"
#include "src/dfs/dfs.h"
#include "src/engine/observer.h"
#include "src/inject/fault_plan.h"

namespace flint {

class FaultInjector : public EngineProbe, public DfsFaultHook {
 public:
  // `dfs` may be null when the plan contains no storage actions; when set,
  // the injector installs itself as the store's fault hook and uninstalls
  // on destruction.
  FaultInjector(ClusterManager* cluster, FaultPlan plan, Dfs* dfs = nullptr);
  ~FaultInjector() override;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // EngineProbe. Thread-safe; events execute outside the internal lock.
  void AtPoint(EnginePoint point) override;

  // Counts the attempt as a kTaskRun arrival, then evaluates armed
  // straggler faults against the attempt's node.
  TaskFaultDirective OnTaskRun(const TaskRunInfo& info) override;

  // Counts the pull as a kShuffleFetch arrival, then evaluates armed
  // kSlowLink windows against the producing node.
  FetchFaultDirective OnShuffleFetch(const ShuffleFetchInfo& info) override;

  // DfsFaultHook. Counts the operation as a kDfsPut/kDfsGet arrival, then
  // evaluates armed storage faults against `path`.
  DfsFaultVerdict OnPut(const std::string& path) override;
  DfsFaultVerdict OnGet(const std::string& path) override;

  struct Stats {
    uint64_t points_observed = 0;
    uint64_t events_fired = 0;
    uint64_t nodes_revoked = 0;
    uint64_t replacements_scheduled = 0;
    // Storage faults enforced.
    uint64_t writes_failed_injected = 0;
    uint64_t reads_failed_injected = 0;
    uint64_t objects_corrupted = 0;
    uint64_t ops_slowed = 0;
    // Straggler faults enforced.
    uint64_t tasks_slowed = 0;
    uint64_t tasks_hung_injected = 0;
    uint64_t tasks_failed_injected = 0;
    // Network faults enforced (kSlowLink pulls whose bandwidth was divided).
    uint64_t fetches_slowed = 0;
  };
  Stats GetStats() const;
  int HitCount(EnginePoint point) const;
  bool AllEventsFired() const;

  // Blocks until every scheduled replacement has joined the cluster.
  void Drain();

 private:
  // Remaining-budget fault ("fail the next N ops matching prefix").
  struct PrefixBudget {
    std::string prefix;
    int remaining = 0;
  };
  // Time-bounded fault window (outage or slow I/O).
  struct FaultWindow {
    std::string prefix;
    WallTime until{};
    double slow_factor = 1.0;  // kDfsSlow only
  };
  // Time-bounded per-node straggler window (kSlowNode / kFlakyNode). A
  // node id of -1 matches attempts on every node.
  struct NodeWindow {
    NodeId node = -1;
    WallTime until{};
    double slow_factor = 1.0;   // kSlowNode compute multiplier
    double probability = 0.0;   // kFlakyNode per-attempt failure probability
  };
  // Remaining-budget hang fault ("the next N attempts on `node` hang").
  struct HangBudget {
    NodeId node = -1;  // -1: whichever attempts arrive next, anywhere
    int remaining = 0;
  };

  void Fire(const FaultEvent& event);
  DfsFaultVerdict Evaluate(const std::string& path, bool is_write);
  // Live node with the `ordinal`-th lowest id, or -1 (any node) when the
  // ordinal is negative or out of range.
  NodeId ResolveVictim(int ordinal) const;

  ClusterManager* cluster_;
  FaultPlan plan_;
  Dfs* dfs_;

  mutable Mutex mutex_{"FaultInjector::mutex_"};
  std::array<int, kEnginePointCount> hits_ GUARDED_BY(mutex_){};
  std::vector<bool> fired_ GUARDED_BY(mutex_);
  Stats stats_ GUARDED_BY(mutex_);
  // Armed storage faults; evaluated under mutex_ by OnPut/OnGet.
  std::vector<PrefixBudget> write_fails_ GUARDED_BY(mutex_);
  std::vector<PrefixBudget> read_fails_ GUARDED_BY(mutex_);
  std::vector<FaultWindow> outages_ GUARDED_BY(mutex_);
  std::vector<FaultWindow> slowdowns_ GUARDED_BY(mutex_);
  // Armed straggler faults; evaluated under mutex_ by OnTaskRun.
  std::vector<NodeWindow> slow_nodes_ GUARDED_BY(mutex_);
  std::vector<NodeWindow> flaky_nodes_ GUARDED_BY(mutex_);
  // Armed network faults; evaluated under mutex_ by OnShuffleFetch against
  // the producing node's link.
  std::vector<NodeWindow> slow_links_ GUARDED_BY(mutex_);
  std::vector<HangBudget> hang_budgets_ GUARDED_BY(mutex_);
  Rng rng_ GUARDED_BY(mutex_);  // kFlakyNode coin flips, seeded by the plan

  TimerQueue timers_;  // delayed replacement arrivals
};

}  // namespace flint

#endif  // SRC_INJECT_FAULT_INJECTOR_H_
