// Scripted fault plans for deterministic revocation-storm testing.
//
// A FaultPlan is a list of FaultEvents, each bound to a precise EnginePoint
// (src/engine/observer.h) and an arrival count at that point: "on the Nth
// time the engine reaches X, do Y". Actions cover the storm shapes the paper
// measures (Sec 5.3, Fig 7/8): revoke the whole cluster, revoke k of m
// nodes, revoke a whole market, with or without the provider warning, with
// replacements arriving after a configurable delay (the restoration policy's
// acquisition delay) or never — plus storage faults (failed writes/reads,
// silent corruption, outage windows, slow I/O) so storm tests can compose
// node and DFS failures in one deterministic script.
//
// Plans are plain data so tests can table-drive storm scenarios; the
// FaultInjector (fault_injector.h) executes them.

#ifndef SRC_INJECT_FAULT_PLAN_H_
#define SRC_INJECT_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cluster/cluster_manager.h"
#include "src/common/units.h"
#include "src/engine/observer.h"

namespace flint {

enum class FaultActionKind {
  kRevokeAll,     // revoke every live node
  kRevokeCount,   // revoke up to `count` live nodes (lowest node ids first)
  kRevokeMarket,  // revoke every live node acquired from `market`
  kAddNodes,      // add `count` nodes without revoking anything
  // Storage actions (require a Dfs wired into the FaultInjector):
  kFailWrites,     // fail the next `count` Puts whose path starts with path_prefix
  kFailReads,      // fail the next `count` Gets whose path starts with path_prefix
  kCorruptObject,  // scramble the stored checksum of objects matching path_prefix
  kDfsOutage,      // all Puts/Gets matching path_prefix fail for duration_seconds
  kDfsSlow,        // transfers matching path_prefix take slow_factor x longer
                   // for duration_seconds
  // Straggler actions (enforced at the kTaskRun probe via OnTaskRun): nodes
  // that degrade without dying — the gray failures Eq. 1's running-time model
  // ignores but real transient fleets produce.
  kSlowNode,   // compute on the victim node takes slow_factor x longer for
               // duration_seconds
  kHangTask,   // the next `count` task attempts (on the victim node, or
               // anywhere when node_ordinal < 0) never complete until cancelled
  kFlakyNode,  // task attempts on the victim node fail with `probability`
               // for duration_seconds
  // Network action (enforced at the kShuffleFetch probe via OnShuffleFetch):
  // the victim's NIC degrades — every shuffle pull FROM that node divides the
  // link bandwidth by slow_factor for duration_seconds. Compute is untouched.
  kSlowLink,
};

struct FaultEvent {
  EnginePoint at = EnginePoint::kSchedulerRound;
  // Fires on the (after_hits + 1)-th arrival at `at`. Each event is
  // one-shot; script repeated storms with one event per occurrence.
  int after_hits = 0;

  FaultActionKind action = FaultActionKind::kRevokeAll;
  int count = 0;             // kRevokeCount / kAddNodes / kFailWrites / kFailReads
  MarketId market = 0;       // kRevokeMarket victim; market of added nodes
  bool with_warning = false; // deliver the revocation warning first

  // Storage-action parameters. The empty prefix matches every path.
  std::string path_prefix;
  double duration_seconds = 0.0;  // kDfsOutage / kDfsSlow / straggler window length
  double slow_factor = 1.0;       // kDfsSlow / kSlowNode time multiplier

  // Straggler-action parameters. The victim is the live node with the
  // node_ordinal-th lowest id when the event fires (deterministic regardless
  // of membership-map iteration order); -1 targets every node (kHangTask:
  // whichever attempts arrive next, anywhere).
  int node_ordinal = 0;
  double probability = 0.0;  // kFlakyNode per-attempt failure probability

  // Replacement nodes brought up this many engine seconds after the event
  // fires. Zero replacements models a storm that leaves the cluster empty
  // until some later event repopulates it.
  int replacement_count = 0;
  double replacement_delay_seconds = 0.0;
  uint64_t replacement_memory_bytes = 64 * kMiB;
  int replacement_executor_threads = 1;
};

struct FaultPlan {
  std::vector<FaultEvent> events;
  // Seeds the injector's own randomness (kFlakyNode coin flips). Two runs of
  // the same plan with the same seed make identical decisions.
  uint64_t seed = 42;
};

// Convenience constructors for the common storm shapes.

// Revoke every live node when `at` is reached for the (after_hits+1)-th
// time; `replacements` nodes join `delay_seconds` later.
FaultEvent RevokeAllAt(EnginePoint at, int after_hits, bool with_warning, int replacements,
                       double delay_seconds);

// Revoke `count` nodes (lowest ids first) at the trigger; one replacement
// per victim joins `delay_seconds` later.
FaultEvent RevokeCountAt(EnginePoint at, int after_hits, int count, bool with_warning,
                         double delay_seconds);

// Fail the next `count` DFS writes (reads) whose path starts with `prefix`,
// beginning with the operation that trips the trigger itself when `at` is
// kDfsPut (kDfsGet).
FaultEvent FailWritesAt(EnginePoint at, int after_hits, std::string prefix, int count);
FaultEvent FailReadsAt(EnginePoint at, int after_hits, std::string prefix, int count);

// Scramble the stored checksum of every object matching `prefix` (silent bit
// rot; verified readers detect it, unverified readers serve bad data).
FaultEvent CorruptObjectAt(EnginePoint at, int after_hits, std::string prefix);

// Every DFS operation matching `prefix` fails for `duration_seconds` after
// the trigger (a full store outage when prefix is empty).
FaultEvent DfsOutageAt(EnginePoint at, int after_hits, std::string prefix,
                       double duration_seconds);

// Transfers matching `prefix` take `slow_factor` times longer for
// `duration_seconds` (degraded store, still available).
FaultEvent DfsSlowAt(EnginePoint at, int after_hits, std::string prefix, double duration_seconds,
                     double slow_factor);

// Compute on the node with the `node_ordinal`-th lowest live id takes
// `slow_factor` times longer for `duration_seconds` (contended cores,
// throttled I/O — the node is degraded, not dead).
FaultEvent SlowNodeAt(EnginePoint at, int after_hits, int node_ordinal, double slow_factor,
                      double duration_seconds);

// Shuffle pulls from the node with the `node_ordinal`-th lowest live id run
// over a link `slow_factor` times slower for `duration_seconds` (congested
// NIC, oversubscribed rack uplink — the node computes fine, its network is
// sick). Arm it at kShuffleFetch to trigger on the Nth pull, or at
// kSchedulerRound to degrade the link before any fetch happens.
FaultEvent SlowLinkAt(EnginePoint at, int after_hits, int node_ordinal, double slow_factor,
                      double duration_seconds);

// The next `count` task attempts on the victim node (`node_ordinal` < 0: on
// any node) hang until their attempt is cancelled.
FaultEvent HangTaskAt(EnginePoint at, int after_hits, int node_ordinal, int count);

// Task attempts on the victim node fail with `probability` for
// `duration_seconds` (flapping executor; results are never corrupted, the
// attempt just errors).
FaultEvent FlakyNodeAt(EnginePoint at, int after_hits, int node_ordinal, double probability,
                       double duration_seconds);

}  // namespace flint

#endif  // SRC_INJECT_FAULT_PLAN_H_
