// PageRank over a synthetic power-law web graph (standing in for the paper's
// 2 GB LiveJournal graph). The Spark-idiomatic implementation: adjacency
// lists cached, per-iteration Join + FlatMap + ReduceByKey — one shuffle-heavy
// job creating many RDDs, which is why the paper uses it to stress the
// checkpointing policy.

#ifndef SRC_WORKLOADS_PAGERANK_H_
#define SRC_WORKLOADS_PAGERANK_H_

#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/engine/typed_rdd.h"

namespace flint {

struct PageRankParams {
  int num_vertices = 2000;
  int edges_per_vertex = 8;
  int partitions = 10;
  int iterations = 5;
  double damping = 0.85;
  uint64_t seed = 1;
};

struct PageRankResult {
  // Top vertices by rank, descending.
  std::vector<std::pair<int, double>> top;
  double rank_sum = 0.0;
  int iterations = 0;
};

// Generates the edge list as an RDD (deterministic in params.seed).
PairRdd<int, int> PageRankEdges(FlintContext& ctx, const PageRankParams& params);

// Runs the full workload: build graph, iterate, collect top `top_n` ranks.
Result<PageRankResult> RunPageRank(FlintContext& ctx, const PageRankParams& params,
                                   int top_n = 10);

}  // namespace flint

#endif  // SRC_WORKLOADS_PAGERANK_H_
