#include "src/workloads/als.h"

#include <cmath>

#include "src/common/rng.h"
#include "src/workloads/linalg.h"

namespace flint {

namespace {

using Factor = std::vector<double>;

std::vector<Factor> RandomFactors(int count, int rank, uint64_t seed) {
  Rng rng(seed);
  std::vector<Factor> out(static_cast<size_t>(count));
  for (auto& f : out) {
    f.resize(static_cast<size_t>(rank));
    for (double& x : f) {
      x = rng.Uniform(0.0, 1.0 / std::sqrt(static_cast<double>(rank)));
    }
  }
  return out;
}

double Dot(const Factor& a, const Factor& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    s += a[i] * b[i];
  }
  return s;
}

// Solves the ridge normal equations for one entity given its ratings against
// the other side's (fixed) factors: (F^T F + lambda*n*I) x = F^T r.
Factor SolveEntity(const std::vector<std::pair<int, double>>& ratings,
                   const std::vector<Factor>& other, int rank, double lambda) {
  std::vector<double> ata(static_cast<size_t>(rank) * static_cast<size_t>(rank), 0.0);
  std::vector<double> atb(static_cast<size_t>(rank), 0.0);
  for (const auto& [j, r] : ratings) {
    const Factor& f = other[static_cast<size_t>(j)];
    for (int a = 0; a < rank; ++a) {
      atb[static_cast<size_t>(a)] += f[static_cast<size_t>(a)] * r;
      for (int b = 0; b < rank; ++b) {
        ata[static_cast<size_t>(a) * rank + b] +=
            f[static_cast<size_t>(a)] * f[static_cast<size_t>(b)];
      }
    }
  }
  const double reg = lambda * static_cast<double>(ratings.size());
  for (int a = 0; a < rank; ++a) {
    ata[static_cast<size_t>(a) * rank + a] += reg + 1e-9;
  }
  Factor x;
  if (!CholeskySolve(std::move(ata), std::move(atb), rank, &x)) {
    x.assign(static_cast<size_t>(rank), 0.0);
  }
  return x;
}

}  // namespace

TypedRdd<AlsRating> AlsRatings(FlintContext& ctx, const AlsParams& params) {
  const int users = params.num_users;
  const int items = params.num_items;
  const int per_user = params.ratings_per_user;
  const int parts = params.partitions;
  const int rank = params.rank;
  const uint64_t seed = params.seed;
  return Generate(
      &ctx, parts,
      [users, items, per_user, parts, rank, seed](int part) {
        // Ground-truth low-rank model + noise, so ALS has signal to recover.
        const std::vector<Factor> u_true = RandomFactors(users, rank, seed ^ 0xaaULL);
        const std::vector<Factor> i_true = RandomFactors(items, rank, seed ^ 0xbbULL);
        Rng rng(seed * 6364136223846793005ULL + static_cast<uint64_t>(part));
        const int begin = static_cast<int>(static_cast<int64_t>(users) * part / parts);
        const int end = static_cast<int>(static_cast<int64_t>(users) * (part + 1) / parts);
        std::vector<AlsRating> ratings;
        ratings.reserve(static_cast<size_t>(end - begin) * static_cast<size_t>(per_user));
        for (int u = begin; u < end; ++u) {
          for (int k = 0; k < per_user; ++k) {
            AlsRating r;
            r.user = u;
            r.item = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(items)));
            r.rating = Dot(u_true[static_cast<size_t>(u)], i_true[static_cast<size_t>(r.item)]) +
                       rng.Normal(0.0, 0.02);
            ratings.push_back(r);
          }
        }
        return ratings;
      },
      "als-ratings");
}

Result<AlsResult> RunAls(FlintContext& ctx, const AlsParams& params) {
  if (params.num_users <= 0 || params.num_items <= 0 || params.rank <= 0) {
    return InvalidArgument("bad ALS params");
  }
  TypedRdd<AlsRating> ratings = AlsRatings(ctx, params);
  ratings.Cache();

  std::vector<Factor> user_factors =
      RandomFactors(params.num_users, params.rank, params.seed ^ 0x11ULL);
  std::vector<Factor> item_factors =
      RandomFactors(params.num_items, params.rank, params.seed ^ 0x22ULL);

  const int rank = params.rank;
  const double lambda = params.lambda;
  AlsResult result;

  for (int iter = 0; iter < params.iterations; ++iter) {
    // --- user step: group ratings by user, solve against item factors ---
    auto by_user = GroupByKey(
        ratings.Map([](const AlsRating& r) {
          return std::make_pair(r.user, std::make_pair(r.item, r.rating));
        }),
        params.partitions, "als-by-user-" + std::to_string(iter));
    {
      auto items_shared = std::make_shared<const std::vector<Factor>>(item_factors);
      auto solved = MapValues(
          by_user,
          [items_shared, rank, lambda](const std::vector<std::pair<int, double>>& rs) {
            return SolveEntity(rs, *items_shared, rank, lambda);
          },
          "als-solve-users-" + std::to_string(iter));
      FLINT_ASSIGN_OR_RETURN(auto rows, solved.Collect());
      for (auto& [u, f] : rows) {
        user_factors[static_cast<size_t>(u)] = std::move(f);
      }
    }
    // --- item step: group ratings by item, solve against user factors ---
    auto by_item = GroupByKey(
        ratings.Map([](const AlsRating& r) {
          return std::make_pair(r.item, std::make_pair(r.user, r.rating));
        }),
        params.partitions, "als-by-item-" + std::to_string(iter));
    {
      auto users_shared = std::make_shared<const std::vector<Factor>>(user_factors);
      auto solved = MapValues(
          by_item,
          [users_shared, rank, lambda](const std::vector<std::pair<int, double>>& rs) {
            return SolveEntity(rs, *users_shared, rank, lambda);
          },
          "als-solve-items-" + std::to_string(iter));
      FLINT_ASSIGN_OR_RETURN(auto rows, solved.Collect());
      for (auto& [i, f] : rows) {
        item_factors[static_cast<size_t>(i)] = std::move(f);
      }
    }
    result.iterations = iter + 1;
  }

  // Training RMSE.
  auto uf = std::make_shared<const std::vector<Factor>>(user_factors);
  auto itf = std::make_shared<const std::vector<Factor>>(item_factors);
  auto errs = ratings.Map([uf, itf](const AlsRating& r) {
    const double pred =
        Dot((*uf)[static_cast<size_t>(r.user)], (*itf)[static_cast<size_t>(r.item)]);
    const double e = pred - r.rating;
    return e * e;
  });
  FLINT_ASSIGN_OR_RETURN(uint64_t n, ratings.Count());
  FLINT_ASSIGN_OR_RETURN(double sse, errs.Reduce([](double a, double b) { return a + b; }));
  result.rmse = n > 0 ? std::sqrt(sse / static_cast<double>(n)) : 0.0;
  return result;
}

}  // namespace flint
