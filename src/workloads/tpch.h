// TPC-H mini: Spark-as-an-in-memory-database, the paper's interactive BIDI
// workload. Synthetic dbgen-style generators populate lineitem / orders /
// customer RDDs that are de-serialized, re-partitioned, and persisted in
// memory once (TpchDatabase::Load); queries then execute against the cached
// RDDs, so the latency of a query after a revocation is dominated by
// recomputing lost partitions — exactly the effect Fig 9 measures.
//
// Queries implemented (with the paper's "short" and "medium" classes):
//   Q6  — filtered scan + global aggregate (no shuffle)       [short]
//   Q1  — scan + group-by aggregate (one shuffle)             [short/medium]
//   Q3  — 3-way join + group-by + top-N (shuffle/join heavy)  [medium]
//   Q10 — returned-item revenue by customer, top-N            [medium]
//   Q12 — shipping-priority counts by line status for a year  [short/medium]
//   Q18 — large-quantity orders (group + filter + join)       [medium]

#ifndef SRC_WORKLOADS_TPCH_H_
#define SRC_WORKLOADS_TPCH_H_

#include <tuple>
#include <vector>

#include "src/common/status.h"
#include "src/engine/typed_rdd.h"

namespace flint {

// Dates are integer day numbers; the generator spreads them over ~2 years.
inline constexpr int kTpchMaxDate = 730;

struct LineItem {
  int order_key = 0;
  int line_number = 0;
  double quantity = 0.0;
  double extended_price = 0.0;
  double discount = 0.0;  // [0, 0.1]
  double tax = 0.0;
  int return_flag = 0;  // 0=N, 1=R, 2=A
  int line_status = 0;  // 0=O, 1=F
  int ship_date = 0;
};

struct Order {
  int order_key = 0;
  int cust_key = 0;
  int order_date = 0;
  int ship_priority = 0;
  double total_price = 0.0;
};

struct Customer {
  int cust_key = 0;
  int mkt_segment = 0;  // [0, 5)
};

struct TpchParams {
  int num_customers = 300;
  int num_orders = 2000;
  int max_lines_per_order = 5;
  int partitions = 10;
  uint64_t seed = 21;
};

struct Q1Row {
  int return_flag = 0;
  int line_status = 0;
  double sum_qty = 0.0;
  double sum_base_price = 0.0;
  double sum_disc_price = 0.0;
  double sum_charge = 0.0;
  int64_t count = 0;
};

struct Q3Row {
  int order_key = 0;
  double revenue = 0.0;
  int order_date = 0;
  int ship_priority = 0;
};

struct Q10Row {
  int cust_key = 0;
  double revenue = 0.0;  // lost revenue from returned items
  int64_t returned_lines = 0;
};

struct Q12Row {
  int ship_priority = 0;        // orders.ship_priority bucket
  int64_t high_line_count = 0;  // line_status == F (urgent-handled)
  int64_t low_line_count = 0;   // line_status == O
};

struct Q18Row {
  int order_key = 0;
  int cust_key = 0;
  double total_price = 0.0;
  double sum_quantity = 0.0;
};

class TpchDatabase {
 public:
  // Generates, re-partitions, and persists the three tables in cluster
  // memory; the load itself is a set of jobs (counts force materialization).
  static Result<TpchDatabase> Load(FlintContext& ctx, const TpchParams& params);

  // Q1: pricing summary report for lineitems shipped before `cutoff_date`.
  Result<std::vector<Q1Row>> RunQ1(int cutoff_date = kTpchMaxDate - 90) const;

  // Q3: top-`top_n` unshipped orders by revenue for one market segment.
  Result<std::vector<Q3Row>> RunQ3(int segment = 1, int date = kTpchMaxDate / 2,
                                   int top_n = 10) const;

  // Q6: forecast revenue change: sum(extprice * disc) over a filtered scan.
  Result<double> RunQ6(int year_start = 0, int year_end = 365, double disc_mid = 0.05,
                       double qty_max = 24.0) const;

  // Q10: top-`top_n` customers by revenue lost to returned items shipped in
  // [date_start, date_start + 90).
  Result<std::vector<Q10Row>> RunQ10(int date_start = kTpchMaxDate / 3, int top_n = 20) const;

  // Q12: per ship-priority bucket, counts of urgent (line_status F) and
  // other (O) lineitems shipped within [year_start, year_start + 365).
  Result<std::vector<Q12Row>> RunQ12(int year_start = 0) const;

  // Q18: orders whose total lineitem quantity exceeds `qty_threshold`,
  // sorted by total price, top-`top_n`.
  Result<std::vector<Q18Row>> RunQ18(double qty_threshold = 100.0, int top_n = 20) const;

  const TypedRdd<LineItem>& lineitem() const { return lineitem_; }
  const TypedRdd<Order>& orders() const { return orders_; }
  const TypedRdd<Customer>& customer() const { return customer_; }
  uint64_t num_lineitems() const { return num_lineitems_; }

 private:
  TpchDatabase() = default;

  FlintContext* ctx_ = nullptr;
  TpchParams params_;
  TypedRdd<LineItem> lineitem_;
  TypedRdd<Order> orders_;
  TypedRdd<Customer> customer_;
  uint64_t num_lineitems_ = 0;
};

}  // namespace flint

#endif  // SRC_WORKLOADS_TPCH_H_
