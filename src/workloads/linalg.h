// Tiny dense linear algebra for the ALS workload: k x k symmetric positive
// definite solves via Cholesky. k is the ALS rank (small, typically 8), so
// this stays simple and allocation-light.

#ifndef SRC_WORKLOADS_LINALG_H_
#define SRC_WORKLOADS_LINALG_H_

#include <cmath>
#include <vector>

namespace flint {

// Solves A x = b in place for symmetric positive definite A (row-major k*k).
// Returns false if the factorization breaks down (A not SPD).
inline bool CholeskySolve(std::vector<double> a, std::vector<double> b, int k,
                          std::vector<double>* x) {
  // Factor A = L L^T.
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j <= i; ++j) {
      double sum = a[static_cast<size_t>(i) * k + j];
      for (int p = 0; p < j; ++p) {
        sum -= a[static_cast<size_t>(i) * k + p] * a[static_cast<size_t>(j) * k + p];
      }
      if (i == j) {
        if (sum <= 0.0) {
          return false;
        }
        a[static_cast<size_t>(i) * k + j] = std::sqrt(sum);
      } else {
        a[static_cast<size_t>(i) * k + j] = sum / a[static_cast<size_t>(j) * k + j];
      }
    }
  }
  // Forward substitution: L y = b.
  for (int i = 0; i < k; ++i) {
    double sum = b[static_cast<size_t>(i)];
    for (int p = 0; p < i; ++p) {
      sum -= a[static_cast<size_t>(i) * k + p] * b[static_cast<size_t>(p)];
    }
    b[static_cast<size_t>(i)] = sum / a[static_cast<size_t>(i) * k + i];
  }
  // Back substitution: L^T x = y.
  x->assign(static_cast<size_t>(k), 0.0);
  for (int i = k - 1; i >= 0; --i) {
    double sum = b[static_cast<size_t>(i)];
    for (int p = i + 1; p < k; ++p) {
      sum -= a[static_cast<size_t>(p) * k + i] * (*x)[static_cast<size_t>(p)];
    }
    (*x)[static_cast<size_t>(i)] = sum / a[static_cast<size_t>(i) * k + i];
  }
  return true;
}

}  // namespace flint

#endif  // SRC_WORKLOADS_LINALG_H_
