// Alternating Least Squares matrix factorization over a synthetic low-rank
// ratings matrix (standing in for the paper's 10 GB MovieLensALS run). Each
// iteration alternates two GroupByKey shuffles (ratings by user, then by
// item) with per-entity ridge-regression solves — the most shuffle-intensive
// of the three batch workloads, matching the paper's characterization.

#ifndef SRC_WORKLOADS_ALS_H_
#define SRC_WORKLOADS_ALS_H_

#include <vector>

#include "src/common/status.h"
#include "src/engine/typed_rdd.h"

namespace flint {

struct AlsParams {
  int num_users = 400;
  int num_items = 200;
  int ratings_per_user = 20;
  int rank = 8;
  int iterations = 4;
  double lambda = 0.1;  // ridge regularization
  int partitions = 10;
  uint64_t seed = 11;
};

struct AlsRating {
  int user = 0;
  int item = 0;
  double rating = 0.0;
};

struct AlsResult {
  double rmse = 0.0;  // training RMSE after the final iteration
  int iterations = 0;
};

// The cached ratings RDD.
TypedRdd<AlsRating> AlsRatings(FlintContext& ctx, const AlsParams& params);

Result<AlsResult> RunAls(FlintContext& ctx, const AlsParams& params);

}  // namespace flint

#endif  // SRC_WORKLOADS_ALS_H_
