// KMeans clustering over a synthetic Gaussian-mixture dataset (standing in
// for the paper's 16 GB mllib.DenseKMeans run): compute-intensive narrow maps
// plus one small shuffle per iteration. Centroids are driver-resident between
// iterations, mirroring Spark's broadcast.

#ifndef SRC_WORKLOADS_KMEANS_H_
#define SRC_WORKLOADS_KMEANS_H_

#include <array>
#include <vector>

#include "src/common/status.h"
#include "src/engine/typed_rdd.h"

namespace flint {

inline constexpr int kKMeansDims = 8;
using KMeansPoint = std::array<double, kKMeansDims>;

struct KMeansParams {
  int num_points = 20000;
  int k = 8;
  int partitions = 10;
  int iterations = 5;
  double cluster_stddev = 0.15;
  uint64_t seed = 7;
};

struct KMeansResult {
  std::vector<KMeansPoint> centroids;
  double inertia = 0.0;  // sum of squared distances to assigned centroids
  int iterations = 0;
};

// The cached input points RDD.
TypedRdd<KMeansPoint> KMeansPoints(FlintContext& ctx, const KMeansParams& params);

Result<KMeansResult> RunKMeans(FlintContext& ctx, const KMeansParams& params);

}  // namespace flint

#endif  // SRC_WORKLOADS_KMEANS_H_
