#include "src/workloads/tpch.h"

#include <algorithm>

#include "src/common/rng.h"

namespace flint {

namespace {

// Order keys are dealt round-robin to partitions so joins spread evenly.
int OrdersInPartition(int num_orders, int parts, int part) {
  return static_cast<int>(static_cast<int64_t>(num_orders) * (part + 1) / parts) -
         static_cast<int>(static_cast<int64_t>(num_orders) * part / parts);
}

}  // namespace

Result<TpchDatabase> TpchDatabase::Load(FlintContext& ctx, const TpchParams& params) {
  if (params.num_customers <= 0 || params.num_orders <= 0 || params.partitions <= 0) {
    return InvalidArgument("bad TPC-H params");
  }
  TpchDatabase db;
  db.ctx_ = &ctx;
  db.params_ = params;

  const int parts = params.partitions;
  const int orders = params.num_orders;
  const int customers = params.num_customers;
  const int max_lines = params.max_lines_per_order;
  const uint64_t seed = params.seed;

  db.customer_ = Generate(
      &ctx, parts,
      [customers, parts, seed](int part) {
        Rng rng(seed ^ (0x10001ULL * (static_cast<uint64_t>(part) + 1)));
        const int begin = static_cast<int>(static_cast<int64_t>(customers) * part / parts);
        const int end = static_cast<int>(static_cast<int64_t>(customers) * (part + 1) / parts);
        std::vector<Customer> rows;
        rows.reserve(static_cast<size_t>(end - begin));
        for (int c = begin; c < end; ++c) {
          Customer row;
          row.cust_key = c;
          row.mkt_segment = static_cast<int>(rng.UniformInt(5));
          rows.push_back(row);
        }
        return rows;
      },
      "tpch-customer");

  db.orders_ = Generate(
      &ctx, parts,
      [orders, customers, parts, seed](int part) {
        Rng rng(seed ^ (0x20002ULL * (static_cast<uint64_t>(part) + 1)));
        const int begin = static_cast<int>(static_cast<int64_t>(orders) * part / parts);
        const int end = static_cast<int>(static_cast<int64_t>(orders) * (part + 1) / parts);
        std::vector<Order> rows;
        rows.reserve(static_cast<size_t>(end - begin));
        for (int o = begin; o < end; ++o) {
          Order row;
          row.order_key = o;
          row.cust_key = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(customers)));
          row.order_date = static_cast<int>(rng.UniformInt(kTpchMaxDate));
          row.ship_priority = static_cast<int>(rng.UniformInt(2));
          row.total_price = rng.Uniform(1000.0, 100000.0);
          rows.push_back(row);
        }
        return rows;
      },
      "tpch-orders");

  db.lineitem_ = Generate(
      &ctx, parts,
      [orders, max_lines, parts, seed](int part) {
        Rng rng(seed ^ (0x30003ULL * (static_cast<uint64_t>(part) + 1)));
        const int begin = static_cast<int>(static_cast<int64_t>(orders) * part / parts);
        const int end = static_cast<int>(static_cast<int64_t>(orders) * (part + 1) / parts);
        std::vector<LineItem> rows;
        rows.reserve(static_cast<size_t>(end - begin) * static_cast<size_t>(max_lines) / 2);
        for (int o = begin; o < end; ++o) {
          const int nlines = 1 + static_cast<int>(rng.UniformInt(static_cast<uint64_t>(max_lines)));
          for (int l = 0; l < nlines; ++l) {
            LineItem row;
            row.order_key = o;
            row.line_number = l;
            row.quantity = 1.0 + static_cast<double>(rng.UniformInt(50));
            row.extended_price = rng.Uniform(100.0, 50000.0);
            row.discount = 0.01 * static_cast<double>(rng.UniformInt(11));
            row.tax = 0.01 * static_cast<double>(rng.UniformInt(9));
            row.return_flag = static_cast<int>(rng.UniformInt(3));
            row.line_status = static_cast<int>(rng.UniformInt(2));
            row.ship_date = static_cast<int>(rng.UniformInt(kTpchMaxDate));
            rows.push_back(row);
          }
        }
        return rows;
      },
      "tpch-lineitem");

  // Persist in memory and force materialization (the paper: "de-serializes
  // and re-partitions the raw files ... then persists them in memory").
  db.customer_.Cache();
  db.orders_.Cache();
  db.lineitem_.Cache();
  FLINT_RETURN_IF_ERROR(db.customer_.Materialize());
  FLINT_RETURN_IF_ERROR(db.orders_.Materialize());
  FLINT_ASSIGN_OR_RETURN(db.num_lineitems_, db.lineitem_.Count());
  return db;
}

Result<std::vector<Q1Row>> TpchDatabase::RunQ1(int cutoff_date) const {
  auto grouped = ReduceByKey(
      lineitem_
          .Filter([cutoff_date](const LineItem& l) { return l.ship_date <= cutoff_date; },
                  "q1-filter")
          .Map(
              [](const LineItem& l) {
                Q1Row agg;
                agg.return_flag = l.return_flag;
                agg.line_status = l.line_status;
                agg.sum_qty = l.quantity;
                agg.sum_base_price = l.extended_price;
                agg.sum_disc_price = l.extended_price * (1.0 - l.discount);
                agg.sum_charge = l.extended_price * (1.0 - l.discount) * (1.0 + l.tax);
                agg.count = 1;
                return std::make_pair(l.return_flag * 2 + l.line_status, agg);
              },
              "q1-project"),
      params_.partitions,
      [](const Q1Row& a, const Q1Row& b) {
        Q1Row out = a;
        out.sum_qty += b.sum_qty;
        out.sum_base_price += b.sum_base_price;
        out.sum_disc_price += b.sum_disc_price;
        out.sum_charge += b.sum_charge;
        out.count += b.count;
        return out;
      },
      "q1-groupby");
  FLINT_ASSIGN_OR_RETURN(auto rows, grouped.Collect());
  std::vector<Q1Row> out;
  out.reserve(rows.size());
  for (auto& [key, agg] : rows) {
    out.push_back(agg);
  }
  std::sort(out.begin(), out.end(), [](const Q1Row& a, const Q1Row& b) {
    return std::tie(a.return_flag, a.line_status) < std::tie(b.return_flag, b.line_status);
  });
  return out;
}

Result<std::vector<Q3Row>> TpchDatabase::RunQ3(int segment, int date, int top_n) const {
  // customer(segment) |><| orders(before date) keyed by custkey
  auto cust_keyed = customer_
                        .Filter([segment](const Customer& c) { return c.mkt_segment == segment; },
                                "q3-cust-filter")
                        .Map([](const Customer& c) { return std::make_pair(c.cust_key, 1); },
                             "q3-cust-key");
  auto orders_keyed =
      orders_
          .Filter([date](const Order& o) { return o.order_date < date; }, "q3-ord-filter")
          .Map([](const Order& o) { return std::make_pair(o.cust_key, o); }, "q3-ord-key");
  auto co = Join(cust_keyed, orders_keyed, params_.partitions, "q3-cust-ord");
  // Re-key by order for the lineitem join.
  auto co_by_order = co.Map(
      [](const std::pair<int, std::pair<int, Order>>& row) {
        const Order& o = row.second.second;
        return std::make_pair(o.order_key, std::make_pair(o.order_date, o.ship_priority));
      },
      "q3-rekey");
  auto line_keyed =
      lineitem_
          .Filter([date](const LineItem& l) { return l.ship_date > date; }, "q3-line-filter")
          .Map(
              [](const LineItem& l) {
                return std::make_pair(l.order_key, l.extended_price * (1.0 - l.discount));
              },
              "q3-line-key");
  auto col = Join(co_by_order, line_keyed, params_.partitions, "q3-ord-line");
  // Group by order, summing revenue.
  auto revenue = ReduceByKey(
      col.Map(
          [](const std::pair<int, std::pair<std::pair<int, int>, double>>& row) {
            Q3Row r;
            r.order_key = row.first;
            r.order_date = row.second.first.first;
            r.ship_priority = row.second.first.second;
            r.revenue = row.second.second;
            return std::make_pair(row.first, r);
          },
          "q3-project"),
      params_.partitions,
      [](const Q3Row& a, const Q3Row& b) {
        Q3Row out = a;
        out.revenue += b.revenue;
        return out;
      },
      "q3-groupby");
  FLINT_ASSIGN_OR_RETURN(auto rows, revenue.Collect());
  std::vector<Q3Row> out;
  out.reserve(rows.size());
  for (auto& [key, r] : rows) {
    out.push_back(r);
  }
  std::sort(out.begin(), out.end(), [](const Q3Row& a, const Q3Row& b) {
    if (a.revenue != b.revenue) {
      return a.revenue > b.revenue;
    }
    return a.order_key < b.order_key;
  });
  if (static_cast<int>(out.size()) > top_n) {
    out.resize(static_cast<size_t>(top_n));
  }
  return out;
}

Result<std::vector<Q10Row>> TpchDatabase::RunQ10(int date_start, int top_n) const {
  // Returned items shipped in the window, keyed by order.
  auto returned = lineitem_
                      .Filter(
                          [date_start](const LineItem& l) {
                            return l.return_flag == 1 && l.ship_date >= date_start &&
                                   l.ship_date < date_start + 90;
                          },
                          "q10-filter")
                      .Map(
                          [](const LineItem& l) {
                            return std::make_pair(
                                l.order_key,
                                std::make_pair(l.extended_price * (1.0 - l.discount), int64_t{1}));
                          },
                          "q10-project");
  auto orders_keyed = orders_.Map(
      [](const Order& o) { return std::make_pair(o.order_key, o.cust_key); }, "q10-ord-key");
  auto joined = Join(returned, orders_keyed, params_.partitions, "q10-join");
  // Re-key by customer and aggregate lost revenue.
  auto by_customer = ReduceByKey(
      joined.Map(
          [](const std::pair<int, std::pair<std::pair<double, int64_t>, int>>& row) {
            Q10Row r;
            r.cust_key = row.second.second;
            r.revenue = row.second.first.first;
            r.returned_lines = row.second.first.second;
            return std::make_pair(r.cust_key, r);
          },
          "q10-rekey"),
      params_.partitions,
      [](const Q10Row& a, const Q10Row& b) {
        Q10Row out = a;
        out.revenue += b.revenue;
        out.returned_lines += b.returned_lines;
        return out;
      },
      "q10-groupby");
  FLINT_ASSIGN_OR_RETURN(auto rows, by_customer.Collect());
  std::vector<Q10Row> out;
  out.reserve(rows.size());
  for (auto& [k, r] : rows) {
    out.push_back(r);
  }
  std::sort(out.begin(), out.end(), [](const Q10Row& a, const Q10Row& b) {
    if (a.revenue != b.revenue) {
      return a.revenue > b.revenue;
    }
    return a.cust_key < b.cust_key;
  });
  if (static_cast<int>(out.size()) > top_n) {
    out.resize(static_cast<size_t>(top_n));
  }
  return out;
}

Result<std::vector<Q12Row>> TpchDatabase::RunQ12(int year_start) const {
  auto line_keyed = lineitem_
                        .Filter(
                            [year_start](const LineItem& l) {
                              return l.ship_date >= year_start && l.ship_date < year_start + 365;
                            },
                            "q12-filter")
                        .Map(
                            [](const LineItem& l) {
                              return std::make_pair(l.order_key, l.line_status);
                            },
                            "q12-project");
  auto orders_keyed = orders_.Map(
      [](const Order& o) { return std::make_pair(o.order_key, o.ship_priority); }, "q12-ord");
  auto joined = Join(line_keyed, orders_keyed, params_.partitions, "q12-join");
  auto counted = ReduceByKey(
      joined.Map(
          [](const std::pair<int, std::pair<int, int>>& row) {
            Q12Row r;
            r.ship_priority = row.second.second;
            r.high_line_count = row.second.first == 1 ? 1 : 0;
            r.low_line_count = row.second.first == 0 ? 1 : 0;
            return std::make_pair(r.ship_priority, r);
          },
          "q12-rekey"),
      params_.partitions,
      [](const Q12Row& a, const Q12Row& b) {
        Q12Row out = a;
        out.high_line_count += b.high_line_count;
        out.low_line_count += b.low_line_count;
        return out;
      },
      "q12-groupby");
  FLINT_ASSIGN_OR_RETURN(auto rows, counted.Collect());
  std::vector<Q12Row> out;
  out.reserve(rows.size());
  for (auto& [k, r] : rows) {
    out.push_back(r);
  }
  std::sort(out.begin(), out.end(),
            [](const Q12Row& a, const Q12Row& b) { return a.ship_priority < b.ship_priority; });
  return out;
}

Result<std::vector<Q18Row>> TpchDatabase::RunQ18(double qty_threshold, int top_n) const {
  // Total quantity per order; keep the big ones.
  auto qty = ReduceByKey(
      lineitem_.Map([](const LineItem& l) { return std::make_pair(l.order_key, l.quantity); },
                    "q18-project"),
      params_.partitions, [](double a, double b) { return a + b; }, "q18-sumqty");
  auto big = qty.Filter(
      [qty_threshold](const std::pair<int, double>& kv) { return kv.second > qty_threshold; },
      "q18-filter");
  auto orders_keyed = orders_.Map(
      [](const Order& o) {
        return std::make_pair(o.order_key, std::make_pair(o.cust_key, o.total_price));
      },
      "q18-ord");
  auto joined = Join(big, orders_keyed, params_.partitions, "q18-join");
  FLINT_ASSIGN_OR_RETURN(auto rows, joined.Collect());
  std::vector<Q18Row> out;
  out.reserve(rows.size());
  for (const auto& [order_key, payload] : rows) {
    Q18Row r;
    r.order_key = order_key;
    r.sum_quantity = payload.first;
    r.cust_key = payload.second.first;
    r.total_price = payload.second.second;
    out.push_back(r);
  }
  std::sort(out.begin(), out.end(), [](const Q18Row& a, const Q18Row& b) {
    if (a.total_price != b.total_price) {
      return a.total_price > b.total_price;
    }
    return a.order_key < b.order_key;
  });
  if (static_cast<int>(out.size()) > top_n) {
    out.resize(static_cast<size_t>(top_n));
  }
  return out;
}

Result<double> TpchDatabase::RunQ6(int year_start, int year_end, double disc_mid,
                                   double qty_max) const {
  auto revenue = lineitem_
                     .Filter(
                         [=](const LineItem& l) {
                           return l.ship_date >= year_start && l.ship_date < year_end &&
                                  l.discount >= disc_mid - 0.011 &&
                                  l.discount <= disc_mid + 0.011 && l.quantity < qty_max;
                         },
                         "q6-filter")
                     .Map([](const LineItem& l) { return l.extended_price * l.discount; },
                          "q6-project");
  FLINT_ASSIGN_OR_RETURN(uint64_t n, revenue.Count());
  if (n == 0) {
    return 0.0;
  }
  return revenue.Reduce([](double a, double b) { return a + b; });
}

}  // namespace flint
