#include "src/workloads/pagerank.h"

#include <algorithm>

#include "src/common/rng.h"

namespace flint {

PairRdd<int, int> PageRankEdges(FlintContext& ctx, const PageRankParams& params) {
  const int n = params.num_vertices;
  const int d = params.edges_per_vertex;
  const int parts = params.partitions;
  const uint64_t seed = params.seed;
  return Generate(
      &ctx, parts,
      [n, d, parts, seed](int part) {
        // Vertices are range-partitioned; each emits d out-edges with a
        // preferential bias toward low vertex ids (power-law in-degree).
        Rng rng(seed * 1000003ULL + static_cast<uint64_t>(part));
        const int begin = static_cast<int>(static_cast<int64_t>(n) * part / parts);
        const int end = static_cast<int>(static_cast<int64_t>(n) * (part + 1) / parts);
        std::vector<std::pair<int, int>> edges;
        edges.reserve(static_cast<size_t>(end - begin) * static_cast<size_t>(d));
        for (int v = begin; v < end; ++v) {
          for (int e = 0; e < d; ++e) {
            // min of two uniform draws skews mass toward small ids.
            const int a = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
            const int b = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
            int dst = std::min(a, b);
            if (dst == v) {
              dst = (dst + 1) % n;
            }
            edges.emplace_back(v, dst);
          }
        }
        return edges;
      },
      "pagerank-edges");
}

Result<PageRankResult> RunPageRank(FlintContext& ctx, const PageRankParams& params, int top_n) {
  if (params.num_vertices <= 0 || params.partitions <= 0 || params.iterations <= 0) {
    return InvalidArgument("bad PageRank params");
  }
  PairRdd<int, int> edges = PageRankEdges(ctx, params);
  // Adjacency lists, cached: the large in-memory dataset the paper's BIDI
  // workloads keep resident.
  PairRdd<int, std::vector<int>> links = GroupByKey(edges, params.partitions, "pagerank-links");
  links.Cache();

  PairRdd<int, double> ranks =
      MapValues(links, [](const std::vector<int>&) { return 1.0; }, "pagerank-init");
  ranks.Cache();

  const double damping = params.damping;
  PairRdd<int, double> prev_ranks;
  for (int iter = 0; iter < params.iterations; ++iter) {
    auto joined = Join(links, ranks, params.partitions,
                       "pagerank-join-" + std::to_string(iter));
    auto contribs = joined.FlatMap(
        [](const std::pair<int, std::pair<std::vector<int>, double>>& row) {
          const std::vector<int>& out = row.second.first;
          const double rank = row.second.second;
          std::vector<std::pair<int, double>> cs;
          if (out.empty()) {
            return cs;
          }
          cs.reserve(out.size());
          const double share = rank / static_cast<double>(out.size());
          for (int dst : out) {
            cs.emplace_back(dst, share);
          }
          return cs;
        },
        "pagerank-contribs-" + std::to_string(iter));
    auto summed = ReduceByKey(contribs, params.partitions,
                              [](double a, double b) { return a + b; },
                              "pagerank-sum-" + std::to_string(iter));
    prev_ranks = ranks;
    ranks = MapValues(summed,
                      [damping](const double& s) { return (1.0 - damping) + damping * s; },
                      "pagerank-ranks-" + std::to_string(iter));
    ranks.Cache();
    // Materialize this iteration, then unpersist the previous generation —
    // the GraphX idiom that keeps only the live working set cached.
    FLINT_RETURN_IF_ERROR(ranks.Materialize());
    prev_ranks.Unpersist();
  }

  FLINT_ASSIGN_OR_RETURN(auto all, ranks.Collect());
  PageRankResult result;
  result.iterations = params.iterations;
  for (const auto& [v, r] : all) {
    result.rank_sum += r;
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) {
      return a.second > b.second;
    }
    return a.first < b.first;
  });
  const size_t keep = std::min(static_cast<size_t>(std::max(0, top_n)), all.size());
  result.top.assign(all.begin(), all.begin() + static_cast<ptrdiff_t>(keep));
  return result;
}

}  // namespace flint
