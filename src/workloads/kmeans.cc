#include "src/workloads/kmeans.h"

#include <cmath>
#include <limits>

#include "src/common/rng.h"

namespace flint {

namespace {

double SquaredDistance(const KMeansPoint& a, const KMeansPoint& b) {
  double s = 0.0;
  for (int d = 0; d < kKMeansDims; ++d) {
    const double diff = a[static_cast<size_t>(d)] - b[static_cast<size_t>(d)];
    s += diff * diff;
  }
  return s;
}

// True cluster centers: deterministic lattice-ish spread in the unit cube.
std::vector<KMeansPoint> TrueCenters(int k, uint64_t seed) {
  Rng rng(seed);
  std::vector<KMeansPoint> centers(static_cast<size_t>(k));
  for (auto& c : centers) {
    for (double& x : c) {
      x = rng.NextDouble();
    }
  }
  return centers;
}

// Per-cluster running sums shuffled to compute new centroids.
struct ClusterAgg {
  KMeansPoint sum{};
  int64_t count = 0;
  double sq_dist = 0.0;
};

ClusterAgg MergeAgg(const ClusterAgg& a, const ClusterAgg& b) {
  ClusterAgg out = a;
  for (int d = 0; d < kKMeansDims; ++d) {
    out.sum[static_cast<size_t>(d)] += b.sum[static_cast<size_t>(d)];
  }
  out.count += b.count;
  out.sq_dist += b.sq_dist;
  return out;
}

}  // namespace

TypedRdd<KMeansPoint> KMeansPoints(FlintContext& ctx, const KMeansParams& params) {
  const int n = params.num_points;
  const int parts = params.partitions;
  const int k = params.k;
  const double stddev = params.cluster_stddev;
  const uint64_t seed = params.seed;
  return Generate(
      &ctx, parts,
      [n, parts, k, stddev, seed](int part) {
        Rng rng(seed * 7919ULL + static_cast<uint64_t>(part));
        const std::vector<KMeansPoint> centers = TrueCenters(k, seed);
        const int begin = static_cast<int>(static_cast<int64_t>(n) * part / parts);
        const int end = static_cast<int>(static_cast<int64_t>(n) * (part + 1) / parts);
        std::vector<KMeansPoint> points;
        points.reserve(static_cast<size_t>(end - begin));
        for (int i = begin; i < end; ++i) {
          const auto c = rng.UniformInt(static_cast<uint64_t>(k));
          KMeansPoint p;
          for (int d = 0; d < kKMeansDims; ++d) {
            p[static_cast<size_t>(d)] =
                centers[c][static_cast<size_t>(d)] + rng.Normal(0.0, stddev);
          }
          points.push_back(p);
        }
        return points;
      },
      "kmeans-points");
}

Result<KMeansResult> RunKMeans(FlintContext& ctx, const KMeansParams& params) {
  if (params.num_points <= 0 || params.k <= 0 || params.iterations <= 0) {
    return InvalidArgument("bad KMeans params");
  }
  TypedRdd<KMeansPoint> points = KMeansPoints(ctx, params);
  points.Cache();

  // Initial centroids: the generator's true centers perturbed, so runs are
  // deterministic without a sampling pass.
  std::vector<KMeansPoint> centroids = TrueCenters(params.k, params.seed ^ 0xc0ffeeULL);

  KMeansResult result;
  for (int iter = 0; iter < params.iterations; ++iter) {
    auto shared = std::make_shared<const std::vector<KMeansPoint>>(centroids);
    // Assignment + per-partition partial aggregation (one pass, like mllib).
    auto partials = points.MapPartitions(
        [shared](const std::vector<KMeansPoint>& rows) {
          std::vector<std::pair<int, ClusterAgg>> aggs(shared->size());
          for (size_t c = 0; c < shared->size(); ++c) {
            aggs[c].first = static_cast<int>(c);
          }
          for (const auto& p : rows) {
            int best = 0;
            double best_d = std::numeric_limits<double>::infinity();
            for (size_t c = 0; c < shared->size(); ++c) {
              const double d = SquaredDistance(p, (*shared)[c]);
              if (d < best_d) {
                best_d = d;
                best = static_cast<int>(c);
              }
            }
            ClusterAgg& agg = aggs[static_cast<size_t>(best)].second;
            for (int d = 0; d < kKMeansDims; ++d) {
              agg.sum[static_cast<size_t>(d)] += p[static_cast<size_t>(d)];
            }
            agg.count += 1;
            agg.sq_dist += best_d;
          }
          return aggs;
        },
        "kmeans-assign-" + std::to_string(iter));
    auto reduced = ReduceByKey(partials, params.partitions, MergeAgg,
                               "kmeans-update-" + std::to_string(iter));
    FLINT_ASSIGN_OR_RETURN(auto rows, reduced.Collect());

    result.inertia = 0.0;
    for (const auto& [c, agg] : rows) {
      result.inertia += agg.sq_dist;
      if (agg.count > 0) {
        for (int d = 0; d < kKMeansDims; ++d) {
          centroids[static_cast<size_t>(c)][static_cast<size_t>(d)] =
              agg.sum[static_cast<size_t>(d)] / static_cast<double>(agg.count);
        }
      }
    }
    result.iterations = iter + 1;
  }
  result.centroids = centroids;
  return result;
}

}  // namespace flint
