# Empty compiler generated dependencies file for flint_tests.
# This may be replaced when dependencies are built.
