
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/checkpoint_test.cc" "tests/CMakeFiles/flint_tests.dir/checkpoint_test.cc.o" "gcc" "tests/CMakeFiles/flint_tests.dir/checkpoint_test.cc.o.d"
  "/root/repo/tests/cluster_dfs_test.cc" "tests/CMakeFiles/flint_tests.dir/cluster_dfs_test.cc.o" "gcc" "tests/CMakeFiles/flint_tests.dir/cluster_dfs_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/flint_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/flint_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/dfs_fault_test.cc" "tests/CMakeFiles/flint_tests.dir/dfs_fault_test.cc.o" "gcc" "tests/CMakeFiles/flint_tests.dir/dfs_fault_test.cc.o.d"
  "/root/repo/tests/engine_edge_test.cc" "tests/CMakeFiles/flint_tests.dir/engine_edge_test.cc.o" "gcc" "tests/CMakeFiles/flint_tests.dir/engine_edge_test.cc.o.d"
  "/root/repo/tests/engine_ops_test.cc" "tests/CMakeFiles/flint_tests.dir/engine_ops_test.cc.o" "gcc" "tests/CMakeFiles/flint_tests.dir/engine_ops_test.cc.o.d"
  "/root/repo/tests/engine_smoke_test.cc" "tests/CMakeFiles/flint_tests.dir/engine_smoke_test.cc.o" "gcc" "tests/CMakeFiles/flint_tests.dir/engine_smoke_test.cc.o.d"
  "/root/repo/tests/fault_injection_test.cc" "tests/CMakeFiles/flint_tests.dir/fault_injection_test.cc.o" "gcc" "tests/CMakeFiles/flint_tests.dir/fault_injection_test.cc.o.d"
  "/root/repo/tests/market_test.cc" "tests/CMakeFiles/flint_tests.dir/market_test.cc.o" "gcc" "tests/CMakeFiles/flint_tests.dir/market_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/flint_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/flint_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/select_test.cc" "tests/CMakeFiles/flint_tests.dir/select_test.cc.o" "gcc" "tests/CMakeFiles/flint_tests.dir/select_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/flint_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/flint_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/tpch_extended_test.cc" "tests/CMakeFiles/flint_tests.dir/tpch_extended_test.cc.o" "gcc" "tests/CMakeFiles/flint_tests.dir/tpch_extended_test.cc.o.d"
  "/root/repo/tests/trace_test.cc" "tests/CMakeFiles/flint_tests.dir/trace_test.cc.o" "gcc" "tests/CMakeFiles/flint_tests.dir/trace_test.cc.o.d"
  "/root/repo/tests/workloads_test.cc" "tests/CMakeFiles/flint_tests.dir/workloads_test.cc.o" "gcc" "tests/CMakeFiles/flint_tests.dir/workloads_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/core/CMakeFiles/flint_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/flint_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/workloads/CMakeFiles/flint_workloads.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/checkpoint/CMakeFiles/flint_checkpoint.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/select/CMakeFiles/flint_select.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/inject/CMakeFiles/flint_inject.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/engine/CMakeFiles/flint_engine.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/market/CMakeFiles/flint_market.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/trace/CMakeFiles/flint_trace.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/cluster/CMakeFiles/flint_cluster.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/dfs/CMakeFiles/flint_dfs.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/flint_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
