# Empty compiler generated dependencies file for flintctl.
# This may be replaced when dependencies are built.
