file(REMOVE_RECURSE
  "CMakeFiles/flintctl.dir/flintctl.cc.o"
  "CMakeFiles/flintctl.dir/flintctl.cc.o.d"
  "flintctl"
  "flintctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flintctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
