# Empty compiler generated dependencies file for fig10_cost_perf.
# This may be replaced when dependencies are built.
