file(REMOVE_RECURSE
  "CMakeFiles/fig10_cost_perf.dir/fig10_cost_perf.cc.o"
  "CMakeFiles/fig10_cost_perf.dir/fig10_cost_perf.cc.o.d"
  "fig10_cost_perf"
  "fig10_cost_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cost_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
