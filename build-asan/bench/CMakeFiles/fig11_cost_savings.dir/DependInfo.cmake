
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig11_cost_savings.cc" "bench/CMakeFiles/fig11_cost_savings.dir/fig11_cost_savings.cc.o" "gcc" "bench/CMakeFiles/fig11_cost_savings.dir/fig11_cost_savings.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/core/CMakeFiles/flint_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/flint_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/workloads/CMakeFiles/flint_workloads.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/checkpoint/CMakeFiles/flint_checkpoint.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/select/CMakeFiles/flint_select.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/engine/CMakeFiles/flint_engine.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/market/CMakeFiles/flint_market.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/trace/CMakeFiles/flint_trace.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/cluster/CMakeFiles/flint_cluster.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/dfs/CMakeFiles/flint_dfs.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/flint_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
