# Empty dependencies file for fig11_cost_savings.
# This may be replaced when dependencies are built.
