file(REMOVE_RECURSE
  "CMakeFiles/fig11_cost_savings.dir/fig11_cost_savings.cc.o"
  "CMakeFiles/fig11_cost_savings.dir/fig11_cost_savings.cc.o.d"
  "fig11_cost_savings"
  "fig11_cost_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_cost_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
