file(REMOVE_RECURSE
  "CMakeFiles/fig03_memory_pressure.dir/fig03_memory_pressure.cc.o"
  "CMakeFiles/fig03_memory_pressure.dir/fig03_memory_pressure.cc.o.d"
  "fig03_memory_pressure"
  "fig03_memory_pressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_memory_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
