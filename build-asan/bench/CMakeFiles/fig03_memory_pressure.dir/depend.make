# Empty dependencies file for fig03_memory_pressure.
# This may be replaced when dependencies are built.
