file(REMOVE_RECURSE
  "CMakeFiles/fig07_single_revocation.dir/fig07_single_revocation.cc.o"
  "CMakeFiles/fig07_single_revocation.dir/fig07_single_revocation.cc.o.d"
  "fig07_single_revocation"
  "fig07_single_revocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_single_revocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
