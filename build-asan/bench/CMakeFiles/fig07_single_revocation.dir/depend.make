# Empty dependencies file for fig07_single_revocation.
# This may be replaced when dependencies are built.
