file(REMOVE_RECURSE
  "CMakeFiles/fig06_checkpoint_tax.dir/fig06_checkpoint_tax.cc.o"
  "CMakeFiles/fig06_checkpoint_tax.dir/fig06_checkpoint_tax.cc.o.d"
  "fig06_checkpoint_tax"
  "fig06_checkpoint_tax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_checkpoint_tax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
