# Empty compiler generated dependencies file for fig06_checkpoint_tax.
# This may be replaced when dependencies are built.
