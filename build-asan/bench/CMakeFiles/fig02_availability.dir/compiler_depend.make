# Empty compiler generated dependencies file for fig02_availability.
# This may be replaced when dependencies are built.
