file(REMOVE_RECURSE
  "CMakeFiles/fig02_availability.dir/fig02_availability.cc.o"
  "CMakeFiles/fig02_availability.dir/fig02_availability.cc.o.d"
  "fig02_availability"
  "fig02_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
