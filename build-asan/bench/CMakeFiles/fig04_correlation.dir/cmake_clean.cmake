file(REMOVE_RECURSE
  "CMakeFiles/fig04_correlation.dir/fig04_correlation.cc.o"
  "CMakeFiles/fig04_correlation.dir/fig04_correlation.cc.o.d"
  "fig04_correlation"
  "fig04_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
