# Empty dependencies file for fig04_correlation.
# This may be replaced when dependencies are built.
