# Empty dependencies file for fig09_interactive.
# This may be replaced when dependencies are built.
