file(REMOVE_RECURSE
  "CMakeFiles/fig09_interactive.dir/fig09_interactive.cc.o"
  "CMakeFiles/fig09_interactive.dir/fig09_interactive.cc.o.d"
  "fig09_interactive"
  "fig09_interactive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_interactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
