file(REMOVE_RECURSE
  "CMakeFiles/fig08_failure_sweep.dir/fig08_failure_sweep.cc.o"
  "CMakeFiles/fig08_failure_sweep.dir/fig08_failure_sweep.cc.o.d"
  "fig08_failure_sweep"
  "fig08_failure_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_failure_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
