# Empty compiler generated dependencies file for fig08_failure_sweep.
# This may be replaced when dependencies are built.
