file(REMOVE_RECURSE
  "CMakeFiles/market_explorer.dir/market_explorer.cpp.o"
  "CMakeFiles/market_explorer.dir/market_explorer.cpp.o.d"
  "market_explorer"
  "market_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
