# Empty compiler generated dependencies file for market_explorer.
# This may be replaced when dependencies are built.
