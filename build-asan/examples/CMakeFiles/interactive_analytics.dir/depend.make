# Empty dependencies file for interactive_analytics.
# This may be replaced when dependencies are built.
