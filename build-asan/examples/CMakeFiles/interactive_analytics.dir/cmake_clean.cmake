file(REMOVE_RECURSE
  "CMakeFiles/interactive_analytics.dir/interactive_analytics.cpp.o"
  "CMakeFiles/interactive_analytics.dir/interactive_analytics.cpp.o.d"
  "interactive_analytics"
  "interactive_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
