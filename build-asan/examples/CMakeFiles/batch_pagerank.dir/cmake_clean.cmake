file(REMOVE_RECURSE
  "CMakeFiles/batch_pagerank.dir/batch_pagerank.cpp.o"
  "CMakeFiles/batch_pagerank.dir/batch_pagerank.cpp.o.d"
  "batch_pagerank"
  "batch_pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
