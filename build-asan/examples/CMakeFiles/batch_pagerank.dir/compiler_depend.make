# Empty compiler generated dependencies file for batch_pagerank.
# This may be replaced when dependencies are built.
