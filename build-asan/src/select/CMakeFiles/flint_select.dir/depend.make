# Empty dependencies file for flint_select.
# This may be replaced when dependencies are built.
