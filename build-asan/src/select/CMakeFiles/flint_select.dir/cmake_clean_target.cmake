file(REMOVE_RECURSE
  "libflint_select.a"
)
