file(REMOVE_RECURSE
  "CMakeFiles/flint_select.dir/selection.cc.o"
  "CMakeFiles/flint_select.dir/selection.cc.o.d"
  "libflint_select.a"
  "libflint_select.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flint_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
