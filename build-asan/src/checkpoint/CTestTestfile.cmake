# CMake generated Testfile for 
# Source directory: /root/repo/src/checkpoint
# Build directory: /root/repo/build-asan/src/checkpoint
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
