file(REMOVE_RECURSE
  "libflint_checkpoint.a"
)
