# Empty compiler generated dependencies file for flint_checkpoint.
# This may be replaced when dependencies are built.
