file(REMOVE_RECURSE
  "CMakeFiles/flint_checkpoint.dir/ft_manager.cc.o"
  "CMakeFiles/flint_checkpoint.dir/ft_manager.cc.o.d"
  "libflint_checkpoint.a"
  "libflint_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flint_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
