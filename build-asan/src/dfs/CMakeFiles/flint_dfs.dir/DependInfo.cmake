
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dfs/dfs.cc" "src/dfs/CMakeFiles/flint_dfs.dir/dfs.cc.o" "gcc" "src/dfs/CMakeFiles/flint_dfs.dir/dfs.cc.o.d"
  "/root/repo/src/dfs/manifest.cc" "src/dfs/CMakeFiles/flint_dfs.dir/manifest.cc.o" "gcc" "src/dfs/CMakeFiles/flint_dfs.dir/manifest.cc.o.d"
  "/root/repo/src/dfs/retry.cc" "src/dfs/CMakeFiles/flint_dfs.dir/retry.cc.o" "gcc" "src/dfs/CMakeFiles/flint_dfs.dir/retry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/flint_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
