# Empty compiler generated dependencies file for flint_dfs.
# This may be replaced when dependencies are built.
