file(REMOVE_RECURSE
  "libflint_dfs.a"
)
