file(REMOVE_RECURSE
  "CMakeFiles/flint_dfs.dir/dfs.cc.o"
  "CMakeFiles/flint_dfs.dir/dfs.cc.o.d"
  "CMakeFiles/flint_dfs.dir/manifest.cc.o"
  "CMakeFiles/flint_dfs.dir/manifest.cc.o.d"
  "CMakeFiles/flint_dfs.dir/retry.cc.o"
  "CMakeFiles/flint_dfs.dir/retry.cc.o.d"
  "libflint_dfs.a"
  "libflint_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flint_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
