file(REMOVE_RECURSE
  "libflint_trace.a"
)
