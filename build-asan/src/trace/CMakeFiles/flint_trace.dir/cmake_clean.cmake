file(REMOVE_RECURSE
  "CMakeFiles/flint_trace.dir/market_catalog.cc.o"
  "CMakeFiles/flint_trace.dir/market_catalog.cc.o.d"
  "CMakeFiles/flint_trace.dir/price_trace.cc.o"
  "CMakeFiles/flint_trace.dir/price_trace.cc.o.d"
  "libflint_trace.a"
  "libflint_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flint_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
