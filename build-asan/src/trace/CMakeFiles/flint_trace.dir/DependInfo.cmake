
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/market_catalog.cc" "src/trace/CMakeFiles/flint_trace.dir/market_catalog.cc.o" "gcc" "src/trace/CMakeFiles/flint_trace.dir/market_catalog.cc.o.d"
  "/root/repo/src/trace/price_trace.cc" "src/trace/CMakeFiles/flint_trace.dir/price_trace.cc.o" "gcc" "src/trace/CMakeFiles/flint_trace.dir/price_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/flint_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
