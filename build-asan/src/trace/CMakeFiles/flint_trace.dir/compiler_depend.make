# Empty compiler generated dependencies file for flint_trace.
# This may be replaced when dependencies are built.
