file(REMOVE_RECURSE
  "CMakeFiles/flint_engine.dir/block_manager.cc.o"
  "CMakeFiles/flint_engine.dir/block_manager.cc.o.d"
  "CMakeFiles/flint_engine.dir/context.cc.o"
  "CMakeFiles/flint_engine.dir/context.cc.o.d"
  "CMakeFiles/flint_engine.dir/dag_scheduler.cc.o"
  "CMakeFiles/flint_engine.dir/dag_scheduler.cc.o.d"
  "CMakeFiles/flint_engine.dir/rdd.cc.o"
  "CMakeFiles/flint_engine.dir/rdd.cc.o.d"
  "CMakeFiles/flint_engine.dir/shuffle_manager.cc.o"
  "CMakeFiles/flint_engine.dir/shuffle_manager.cc.o.d"
  "CMakeFiles/flint_engine.dir/task_context.cc.o"
  "CMakeFiles/flint_engine.dir/task_context.cc.o.d"
  "libflint_engine.a"
  "libflint_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flint_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
