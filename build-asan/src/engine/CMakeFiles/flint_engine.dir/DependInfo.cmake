
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/block_manager.cc" "src/engine/CMakeFiles/flint_engine.dir/block_manager.cc.o" "gcc" "src/engine/CMakeFiles/flint_engine.dir/block_manager.cc.o.d"
  "/root/repo/src/engine/context.cc" "src/engine/CMakeFiles/flint_engine.dir/context.cc.o" "gcc" "src/engine/CMakeFiles/flint_engine.dir/context.cc.o.d"
  "/root/repo/src/engine/dag_scheduler.cc" "src/engine/CMakeFiles/flint_engine.dir/dag_scheduler.cc.o" "gcc" "src/engine/CMakeFiles/flint_engine.dir/dag_scheduler.cc.o.d"
  "/root/repo/src/engine/rdd.cc" "src/engine/CMakeFiles/flint_engine.dir/rdd.cc.o" "gcc" "src/engine/CMakeFiles/flint_engine.dir/rdd.cc.o.d"
  "/root/repo/src/engine/shuffle_manager.cc" "src/engine/CMakeFiles/flint_engine.dir/shuffle_manager.cc.o" "gcc" "src/engine/CMakeFiles/flint_engine.dir/shuffle_manager.cc.o.d"
  "/root/repo/src/engine/task_context.cc" "src/engine/CMakeFiles/flint_engine.dir/task_context.cc.o" "gcc" "src/engine/CMakeFiles/flint_engine.dir/task_context.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/cluster/CMakeFiles/flint_cluster.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/dfs/CMakeFiles/flint_dfs.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/flint_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/market/CMakeFiles/flint_market.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/trace/CMakeFiles/flint_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
