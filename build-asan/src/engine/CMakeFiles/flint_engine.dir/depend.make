# Empty dependencies file for flint_engine.
# This may be replaced when dependencies are built.
