file(REMOVE_RECURSE
  "libflint_engine.a"
)
