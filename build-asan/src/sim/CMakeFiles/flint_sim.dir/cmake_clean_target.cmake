file(REMOVE_RECURSE
  "libflint_sim.a"
)
