file(REMOVE_RECURSE
  "CMakeFiles/flint_sim.dir/monte_carlo.cc.o"
  "CMakeFiles/flint_sim.dir/monte_carlo.cc.o.d"
  "CMakeFiles/flint_sim.dir/trace_sim.cc.o"
  "CMakeFiles/flint_sim.dir/trace_sim.cc.o.d"
  "libflint_sim.a"
  "libflint_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flint_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
