# Empty compiler generated dependencies file for flint_sim.
# This may be replaced when dependencies are built.
