file(REMOVE_RECURSE
  "libflint_inject.a"
)
