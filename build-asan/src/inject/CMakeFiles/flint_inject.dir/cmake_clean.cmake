file(REMOVE_RECURSE
  "CMakeFiles/flint_inject.dir/fault_injector.cc.o"
  "CMakeFiles/flint_inject.dir/fault_injector.cc.o.d"
  "CMakeFiles/flint_inject.dir/fault_plan.cc.o"
  "CMakeFiles/flint_inject.dir/fault_plan.cc.o.d"
  "libflint_inject.a"
  "libflint_inject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flint_inject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
