# Empty compiler generated dependencies file for flint_inject.
# This may be replaced when dependencies are built.
