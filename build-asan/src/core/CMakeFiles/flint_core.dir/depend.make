# Empty dependencies file for flint_core.
# This may be replaced when dependencies are built.
