file(REMOVE_RECURSE
  "libflint_core.a"
)
