file(REMOVE_RECURSE
  "CMakeFiles/flint_core.dir/flint_cluster.cc.o"
  "CMakeFiles/flint_core.dir/flint_cluster.cc.o.d"
  "CMakeFiles/flint_core.dir/node_manager.cc.o"
  "CMakeFiles/flint_core.dir/node_manager.cc.o.d"
  "libflint_core.a"
  "libflint_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flint_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
