# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-asan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("trace")
subdirs("market")
subdirs("cluster")
subdirs("dfs")
subdirs("engine")
subdirs("inject")
subdirs("checkpoint")
subdirs("select")
subdirs("core")
subdirs("workloads")
subdirs("sim")
