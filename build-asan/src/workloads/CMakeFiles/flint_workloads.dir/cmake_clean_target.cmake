file(REMOVE_RECURSE
  "libflint_workloads.a"
)
