file(REMOVE_RECURSE
  "CMakeFiles/flint_workloads.dir/als.cc.o"
  "CMakeFiles/flint_workloads.dir/als.cc.o.d"
  "CMakeFiles/flint_workloads.dir/kmeans.cc.o"
  "CMakeFiles/flint_workloads.dir/kmeans.cc.o.d"
  "CMakeFiles/flint_workloads.dir/pagerank.cc.o"
  "CMakeFiles/flint_workloads.dir/pagerank.cc.o.d"
  "CMakeFiles/flint_workloads.dir/tpch.cc.o"
  "CMakeFiles/flint_workloads.dir/tpch.cc.o.d"
  "libflint_workloads.a"
  "libflint_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flint_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
