# Empty dependencies file for flint_workloads.
# This may be replaced when dependencies are built.
