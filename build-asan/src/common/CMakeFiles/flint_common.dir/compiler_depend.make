# Empty compiler generated dependencies file for flint_common.
# This may be replaced when dependencies are built.
