file(REMOVE_RECURSE
  "CMakeFiles/flint_common.dir/crc32.cc.o"
  "CMakeFiles/flint_common.dir/crc32.cc.o.d"
  "CMakeFiles/flint_common.dir/log.cc.o"
  "CMakeFiles/flint_common.dir/log.cc.o.d"
  "CMakeFiles/flint_common.dir/stats.cc.o"
  "CMakeFiles/flint_common.dir/stats.cc.o.d"
  "CMakeFiles/flint_common.dir/status.cc.o"
  "CMakeFiles/flint_common.dir/status.cc.o.d"
  "CMakeFiles/flint_common.dir/thread_pool.cc.o"
  "CMakeFiles/flint_common.dir/thread_pool.cc.o.d"
  "libflint_common.a"
  "libflint_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flint_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
