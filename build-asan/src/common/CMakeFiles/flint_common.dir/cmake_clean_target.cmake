file(REMOVE_RECURSE
  "libflint_common.a"
)
