
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster_manager.cc" "src/cluster/CMakeFiles/flint_cluster.dir/cluster_manager.cc.o" "gcc" "src/cluster/CMakeFiles/flint_cluster.dir/cluster_manager.cc.o.d"
  "/root/repo/src/cluster/timer_queue.cc" "src/cluster/CMakeFiles/flint_cluster.dir/timer_queue.cc.o" "gcc" "src/cluster/CMakeFiles/flint_cluster.dir/timer_queue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/market/CMakeFiles/flint_market.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/flint_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/trace/CMakeFiles/flint_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
