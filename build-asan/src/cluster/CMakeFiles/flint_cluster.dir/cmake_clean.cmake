file(REMOVE_RECURSE
  "CMakeFiles/flint_cluster.dir/cluster_manager.cc.o"
  "CMakeFiles/flint_cluster.dir/cluster_manager.cc.o.d"
  "CMakeFiles/flint_cluster.dir/timer_queue.cc.o"
  "CMakeFiles/flint_cluster.dir/timer_queue.cc.o.d"
  "libflint_cluster.a"
  "libflint_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flint_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
