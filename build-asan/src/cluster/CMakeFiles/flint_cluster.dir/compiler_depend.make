# Empty compiler generated dependencies file for flint_cluster.
# This may be replaced when dependencies are built.
