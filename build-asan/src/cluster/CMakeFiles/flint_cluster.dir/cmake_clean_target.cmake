file(REMOVE_RECURSE
  "libflint_cluster.a"
)
