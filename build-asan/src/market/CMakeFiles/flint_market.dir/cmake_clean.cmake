file(REMOVE_RECURSE
  "CMakeFiles/flint_market.dir/marketplace.cc.o"
  "CMakeFiles/flint_market.dir/marketplace.cc.o.d"
  "CMakeFiles/flint_market.dir/spot_market.cc.o"
  "CMakeFiles/flint_market.dir/spot_market.cc.o.d"
  "libflint_market.a"
  "libflint_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flint_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
