file(REMOVE_RECURSE
  "libflint_market.a"
)
