
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/market/marketplace.cc" "src/market/CMakeFiles/flint_market.dir/marketplace.cc.o" "gcc" "src/market/CMakeFiles/flint_market.dir/marketplace.cc.o.d"
  "/root/repo/src/market/spot_market.cc" "src/market/CMakeFiles/flint_market.dir/spot_market.cc.o" "gcc" "src/market/CMakeFiles/flint_market.dir/spot_market.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/trace/CMakeFiles/flint_trace.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/flint_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
