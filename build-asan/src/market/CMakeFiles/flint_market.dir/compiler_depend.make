# Empty compiler generated dependencies file for flint_market.
# This may be replaced when dependencies are built.
