#!/usr/bin/env python3
"""Normalize and compare google-benchmark JSON output (stdlib only).

Usage:
  bench_baseline.py normalize <raw.json>
      Print a normalized baseline document to stdout: per-benchmark
      items/s and wall time in ns, rounded to 3 significant digits, with
      machine-specific context (host, date, CPU scaling) stripped so the
      committed BENCH_engine.json diffs only when performance moves.

  bench_baseline.py compare <baseline.json> <raw.json> [threshold]
      Compare a fresh run against the committed baseline. Prints one line
      per benchmark with the items/s ratio. Exits 2 if any benchmark's
      items/s dropped by more than `threshold` (default 0.25, i.e. 25%),
      0 otherwise. Intended for the warn-only --bench leg of check.sh.
"""

import json
import sys

# Headline pairs; normalize records their ratios so the acceptance bars
# (>= 1.5x for the narrow-chain fusion work, fused >= unfused for the
# shuffle pipelining work) are visible in the committed file.
FUSED = "BM_NarrowChainFused/1048576/real_time"
UNFUSED = "BM_NarrowChainUnfused/1048576/real_time"
SHUFFLE_FUSED = "BM_ReduceByKeyFused/65536/real_time"
SHUFFLE_UNFUSED = "BM_ReduceByKeyUnfused/65536/real_time"

_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def _sig3(x):
    return float(f"{x:.3g}")


def _load(path):
    with open(path) as f:
        return json.load(f)


def _iterations(raw):
    for b in raw.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) when repetitions are used.
        if b.get("run_type", "iteration") != "iteration":
            continue
        yield b


def normalize(raw):
    benchmarks = {}
    for b in _iterations(raw):
        entry = {"real_time_ns": _sig3(b["real_time"] * _NS.get(b.get("time_unit", "ns"), 1.0))}
        if "items_per_second" in b:
            entry["items_per_second"] = _sig3(b["items_per_second"])
        benchmarks[b["name"]] = entry
    doc = {"schema": 1, "benchmarks": benchmarks}
    derived = {}
    fused = benchmarks.get(FUSED, {}).get("items_per_second")
    unfused = benchmarks.get(UNFUSED, {}).get("items_per_second")
    if fused and unfused:
        derived["narrow_chain_fusion_speedup"] = _sig3(fused / unfused)
    sfused = benchmarks.get(SHUFFLE_FUSED, {}).get("items_per_second")
    sunfused = benchmarks.get(SHUFFLE_UNFUSED, {}).get("items_per_second")
    if sfused and sunfused:
        derived["shuffle_fusion_speedup"] = _sig3(sfused / sunfused)
    if derived:
        doc["derived"] = derived
    return doc


def compare(baseline, raw, threshold):
    current = normalize(raw)["benchmarks"]
    regressions = []
    for name, base in sorted(baseline.get("benchmarks", {}).items()):
        base_ips = base.get("items_per_second")
        cur_ips = current.get(name, {}).get("items_per_second")
        if not base_ips:
            continue
        if not cur_ips:
            print(f"  {name}: missing from current run")
            continue
        ratio = cur_ips / base_ips
        flag = ""
        if ratio < 1.0 - threshold:
            flag = f"  <-- regression (>{threshold:.0%} below baseline)"
            regressions.append(name)
        print(f"  {name}: {ratio:.2f}x baseline items/s{flag}")
    derived = normalize(raw).get("derived", {})
    speedup = derived.get("narrow_chain_fusion_speedup")
    if speedup is not None:
        print(f"  narrow-chain fusion speedup: {speedup:.2f}x")
    shuffle_speedup = derived.get("shuffle_fusion_speedup")
    if shuffle_speedup is not None:
        print(f"  shuffle fusion speedup: {shuffle_speedup:.2f}x")
    return regressions


def main(argv):
    if len(argv) >= 2 and argv[0] == "normalize":
        json.dump(normalize(_load(argv[1])), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
        return 0
    if len(argv) >= 3 and argv[0] == "compare":
        threshold = float(argv[3]) if len(argv) > 3 else 0.25
        regressions = compare(_load(argv[1]), _load(argv[2]), threshold)
        if regressions:
            print(f"{len(regressions)} benchmark(s) regressed beyond {threshold:.0%}")
            return 2
        return 0
    sys.stderr.write(__doc__)
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
