#!/usr/bin/env bash
# Runs the engine microbenchmarks (bench/micro_engine) in a Release build and
# maintains the committed performance baseline BENCH_engine.json.
#
#   tools/bench.sh              # run + rewrite BENCH_engine.json
#   tools/bench.sh --compare    # run + compare against BENCH_engine.json;
#                               # exit 2 on a >25% items/s regression
#
# The baseline is normalized (tools/bench_baseline.py): machine context is
# stripped and numbers are rounded to 3 significant digits, so the committed
# file only diffs when performance actually moves. Refresh it with a plain
# `tools/bench.sh` run after intentional performance changes.

set -uo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
MODE="${1:-}"
BASELINE="BENCH_engine.json"

if ! command -v python3 >/dev/null 2>&1; then
  echo "WARNING: python3 not found; cannot normalize benchmark output" >&2
  # A missing interpreter must not fail the warn-only check.sh leg.
  [[ "${MODE}" == "--compare" ]] && exit 0
  exit 1
fi

echo "== bench: Release build of micro_engine =="
cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release >/dev/null \
  && cmake --build build-bench -j "${JOBS}" --target micro_engine \
  || exit 1

RAW="$(mktemp)"
trap 'rm -f "${RAW}"' EXIT

echo "== bench: running micro_engine =="
./build-bench/bench/micro_engine \
  --benchmark_out="${RAW}" --benchmark_out_format=json || exit 1

if [[ "${MODE}" == "--compare" ]]; then
  if [[ ! -f "${BASELINE}" ]]; then
    echo "WARNING: ${BASELINE} missing; run tools/bench.sh to create it" >&2
    exit 0
  fi
  echo "== bench: comparing against ${BASELINE} =="
  python3 tools/bench_baseline.py compare "${BASELINE}" "${RAW}"
else
  python3 tools/bench_baseline.py normalize "${RAW}" > "${BASELINE}" || exit 1
  echo "wrote ${BASELINE}"
  # Show the run relative to itself, which also prints the fusion speedup.
  python3 tools/bench_baseline.py compare "${BASELINE}" "${RAW}" || true
fi
