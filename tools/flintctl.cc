// flintctl: command-line front end for the Flint managed service (the paper:
// "Users interact with Flint via the command-line to submit, monitor, and
// interact with their Spark programs"). Subcommands:
//
//   flintctl markets   [--count N] [--seed S]          inspect a spot region
//   flintctl simulate  [--policy P] [--trials N]       trace-driven cost sim
//   flintctl mc        [--mttf H] [--no-checkpoint]    fixed-MTTF Monte-Carlo
//   flintctl run       [--workload W] [--policy P] [--failures K]
//                                                      engine-plane run with
//                                                      optional fault injection
//   flintctl trace     [--out FILE] [--volatility V]   export a price trace
//
// Policies P: batch | interactive | cheapest | stable | ondemand.
// Workloads W: pagerank | kmeans | als | tpch.

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>

#include "src/core/flint_cluster.h"
#include "src/inject/fault_injector.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/select/selection.h"
#include "src/sim/monte_carlo.h"
#include "src/sim/trace_sim.h"
#include "src/trace/market_catalog.h"
#include "src/workloads/als.h"
#include "src/workloads/kmeans.h"
#include "src/workloads/pagerank.h"
#include "src/workloads/tpch.h"

namespace flint {
namespace {

// Minimal flag parser: --key value pairs after the subcommand.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) == 0) {
        values_[argv[i] + 2] = argv[i + 1];
      }
    }
    for (int i = first; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) == 0 &&
          (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0)) {
        flags_.insert(argv[i] + 2);
      }
    }
  }
  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  long GetInt(const std::string& key, long fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::strtol(it->second.c_str(), nullptr, 10);
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
  }
  bool Has(const std::string& flag) const { return flags_.count(flag) > 0; }
  // Whether the flag appeared at all, with or without a value.
  bool Given(const std::string& key) const {
    return values_.count(key) > 0 || flags_.count(key) > 0;
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> flags_;
};

SelectionPolicyKind ParsePolicy(const std::string& s) {
  if (s == "interactive") {
    return SelectionPolicyKind::kFlintInteractive;
  }
  if (s == "cheapest") {
    return SelectionPolicyKind::kSpotFleetCheapest;
  }
  if (s == "stable") {
    return SelectionPolicyKind::kSpotFleetLeastVolatile;
  }
  if (s == "ondemand") {
    return SelectionPolicyKind::kOnDemand;
  }
  return SelectionPolicyKind::kFlintBatch;
}

int CmdMarkets(const Args& args) {
  const auto count = static_cast<size_t>(args.GetInt("count", 16));
  const auto seed = static_cast<uint64_t>(args.GetInt("seed", 7));
  Marketplace mp(RegionMarkets(count, seed), 0.35, seed);
  ServerSelector selector(&mp, SelectionConfig{});
  JobProfile job;
  std::printf("%-12s %10s %10s %10s %12s\n", "market", "avg $/h", "MTTF(h)", "E[T]/T",
              "E[cost]/h");
  for (const auto& ev : selector.EvaluateMarkets(Hours(24.0 * 30), job)) {
    std::printf("%-12s %10.4f %10.1f %10.4f %12.4f\n",
                ev.id == kOnDemandMarket ? "on-demand" : mp.market(ev.id).name().c_str(),
                ev.avg_price, ev.mttf_hours, ev.expected_factor, ev.expected_unit_cost);
  }
  return 0;
}

int CmdSimulate(const Args& args) {
  const auto seed = static_cast<uint64_t>(args.GetInt("seed", 11));
  Marketplace mp(RegionMarkets(16, seed), 0.35, seed);
  TraceSimulator sim(&mp);
  StrategyConfig cfg;
  cfg.policy = ParsePolicy(args.Get("policy", "batch"));
  cfg.checkpointing = !args.Has("no-checkpoint");
  cfg.fee_fraction_of_on_demand = args.GetDouble("fee", 0.0);
  cfg.trials = static_cast<int>(args.GetInt("trials", 200));
  cfg.seed = seed;
  CanonicalJob job;
  job.base_hours = args.GetDouble("hours", job.base_hours);
  const StrategyResult r = sim.Run(job, cfg);
  std::printf("policy=%s checkpointing=%s trials=%d\n", args.Get("policy", "batch").c_str(),
              cfg.checkpointing ? "on" : "off", cfg.trials);
  std::printf("  normalized unit cost : %.3f (on-demand = 1.0)\n", r.normalized_unit_cost);
  std::printf("  runtime factor       : %.3f +- %.3f\n", r.mean_factor, r.factor_stddev);
  std::printf("  revocations per job  : %.2f across %.1f markets\n", r.mean_revocation_events,
              r.mean_markets_used);
  return 0;
}

int CmdMc(const Args& args) {
  CanonicalJob job;
  job.base_hours = args.GetDouble("hours", job.base_hours);
  McConfig cfg;
  cfg.mttf_hours = args.GetDouble("mttf", 20.0);
  cfg.checkpointing = !args.Has("no-checkpoint");
  cfg.num_markets = static_cast<int>(args.GetInt("markets", 1));
  cfg.trials = static_cast<int>(args.GetInt("trials", 4000));
  const McResult r = SimulateCanonicalJob(job, cfg);
  std::printf("MTTF %.1fh, m=%d, checkpointing %s:\n", cfg.mttf_hours, cfg.num_markets,
              cfg.checkpointing ? "on" : "off");
  std::printf("  mean runtime factor : %.4f (p95 %.4f)\n", r.mean_factor, r.p95_factor);
  std::printf("  mean revocations    : %.2f\n", r.mean_revocations);
  if (r.truncated_trials > 0) {
    std::printf("  truncated trials    : %d of %d hit the 200x horizon (factor stats "
                "exclude them)\n",
                r.truncated_trials, cfg.trials);
  }
  return 0;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

int CmdRun(const Args& args) {
  // Observability exports: --trace-out turns the tracer on for the run and
  // writes Chrome trace_event JSON (chrome://tracing / Perfetto);
  // --metrics-out writes a Prometheus text snapshot. Tracing stays off (and
  // zero-cost) unless requested.
  const std::string trace_out = args.Get("trace-out", "");
  const std::string metrics_out = args.Get("metrics-out", "");
  if (!trace_out.empty()) {
    ObsConfig obs;
    obs.tracing = true;
    obs.trace_capacity = static_cast<size_t>(args.GetInt("trace-capacity", 1 << 16));
    ConfigureObservability(obs);
  }
  FlintOptions options;
  options.nodes.cluster_size = static_cast<int>(args.GetInt("nodes", 10));
  options.nodes.policy = ParsePolicy(args.Get("policy", "batch"));
  options.checkpoint.policy =
      args.Has("no-checkpoint") ? CheckpointPolicyKind::kNone : CheckpointPolicyKind::kFlint;
  options.checkpoint.mttf_hours = args.GetDouble("mttf", 20.0);
  options.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  // Speculation floor: the default 200 ms is sized for real stages; demo
  // workloads with millisecond tasks tighten it so injected stragglers
  // actually trip deadlines (tools/check.sh obs-straggler leg).
  options.engine.speculation.min_deadline_seconds =
      args.GetDouble("spec-deadline", options.engine.speculation.min_deadline_seconds);
  // Modelled per-node NIC capacity in MiB/s. The default is fast enough that
  // demo transfers are microseconds; constrain it so injected link faults
  // (--slow-link) produce transfers long enough to trip the fetch timeout.
  if (args.Given("link-bandwidth")) {
    options.engine.default_link_bandwidth_bytes_per_s =
        args.GetDouble("link-bandwidth", 512.0) * 1024.0 * 1024.0;
  }
  // Every run prints its effective seed so any run — including one that used
  // the default — can be replayed exactly with --seed.
  std::printf("seed: %llu\n", static_cast<unsigned long long>(options.seed));
  FlintCluster cluster(options);
  if (Status st = cluster.Start(); !st.ok()) {
    std::fprintf(stderr, "start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const std::string workload = args.Get("workload", "pagerank");
  const uint64_t seed = options.seed;

  // Scripted straggler injection, replayable via the printed seed: the plan's
  // RNG (flaky coin flips) derives from it. Node pick is by ordinal over live
  // node ids at fire time.
  FaultPlan straggler_plan;
  straggler_plan.seed = seed;
  if (args.Given("slow-node")) {
    straggler_plan.events.push_back(
        SlowNodeAt(EnginePoint::kTaskRun, /*after_hits=*/0,
                   static_cast<int>(args.GetInt("slow-node", 0)),
                   args.GetDouble("slow-factor", 8.0), args.GetDouble("fault-secs", 30.0)));
  }
  if (args.Given("hang-tasks")) {
    straggler_plan.events.push_back(
        HangTaskAt(EnginePoint::kTaskRun, /*after_hits=*/0,
                   static_cast<int>(args.GetInt("hang-node", 0)),
                   static_cast<int>(args.GetInt("hang-tasks", 1))));
  }
  if (args.Given("flaky-node")) {
    straggler_plan.events.push_back(
        FlakyNodeAt(EnginePoint::kTaskRun, /*after_hits=*/0,
                    static_cast<int>(args.GetInt("flaky-node", 0)),
                    args.GetDouble("flaky-prob", 0.5), args.GetDouble("fault-secs", 30.0)));
  }
  if (args.Given("slow-link")) {
    // Armed at the first scheduler round so the window covers the whole run:
    // every fetch from the victim's link sees the degraded bandwidth.
    straggler_plan.events.push_back(
        SlowLinkAt(EnginePoint::kSchedulerRound, /*after_hits=*/0,
                   static_cast<int>(args.GetInt("slow-link", 0)),
                   args.GetDouble("link-factor", 4.0), args.GetDouble("fault-secs", 30.0)));
  }
  std::unique_ptr<FaultInjector> injector;
  if (!straggler_plan.events.empty()) {
    injector = std::make_unique<FaultInjector>(&cluster.cluster(), straggler_plan);
    cluster.ctx().SetProbe(injector.get());
  }
  const int failures = static_cast<int>(args.GetInt("failures", 0));
  std::thread chaos;
  if (failures > 0) {
    chaos = std::thread([&cluster, failures] {
      std::this_thread::sleep_for(std::chrono::milliseconds(800));
      std::vector<NodeId> victims;
      for (const auto& node : cluster.cluster().LiveNodes()) {
        if (static_cast<int>(victims.size()) < failures) {
          victims.push_back(node.node_id);
        }
      }
      cluster.cluster().Revoke(victims, /*with_warning=*/true);
    });
  }
  JobReport report = cluster.RunMeasured([&workload, seed](FlintContext& ctx) -> Status {
    if (workload == "kmeans") {
      KMeansParams p;
      p.num_points = 400000;
      p.partitions = 20;
      p.seed = seed;
      auto r = RunKMeans(ctx, p);
      if (r.ok()) {
        std::printf("kmeans inertia: %.3f\n", r->inertia);
      }
      return r.status();
    }
    if (workload == "als") {
      AlsParams p;
      p.num_users = 10000;
      p.num_items = 2000;
      p.partitions = 20;
      p.seed = seed;
      auto r = RunAls(ctx, p);
      if (r.ok()) {
        std::printf("als rmse: %.4f\n", r->rmse);
      }
      return r.status();
    }
    if (workload == "tpch") {
      TpchParams p;
      p.num_orders = 50000;
      p.num_customers = 2000;
      p.partitions = 20;
      p.seed = seed;
      auto db = TpchDatabase::Load(ctx, p);
      if (!db.ok()) {
        return db.status();
      }
      auto q1 = db->RunQ1();
      auto q3 = db->RunQ3();
      auto q10 = db->RunQ10();
      std::printf("tpch: q1 groups=%zu q3 rows=%zu q10 rows=%zu\n",
                  q1.ok() ? q1->size() : 0, q3.ok() ? q3->size() : 0,
                  q10.ok() ? q10->size() : 0);
      FLINT_RETURN_IF_ERROR(q1.status());
      FLINT_RETURN_IF_ERROR(q3.status());
      return q10.status();
    }
    PageRankParams p;
    p.num_vertices = 40000;
    p.edges_per_vertex = 15;
    p.partitions = 20;
    p.seed = seed;
    auto r = RunPageRank(ctx, p, 5);
    if (r.ok() && !r->top.empty()) {
      std::printf("pagerank top vertex: v%d (%.3f)\n", r->top[0].first, r->top[0].second);
    }
    return r.status();
  });
  if (injector != nullptr) {
    cluster.ctx().SetProbe(nullptr);
    injector->Drain();
    const FaultInjector::Stats fs = injector->GetStats();
    std::printf("injected: %llu slowed, %llu hung, %llu failed, %llu fetches slowed\n",
                static_cast<unsigned long long>(fs.tasks_slowed),
                static_cast<unsigned long long>(fs.tasks_hung_injected),
                static_cast<unsigned long long>(fs.tasks_failed_injected),
                static_cast<unsigned long long>(fs.fetches_slowed));
  }
  if (chaos.joinable()) {
    chaos.join();
    // The injected revocations trail their warnings by the model warning
    // window; let them (and the replacement churn) land so the export shows
    // the full storm, not just its leading edge.
    const double warning_s = options.time.ToEngineSeconds(options.time.revocation_warning);
    std::this_thread::sleep_for(std::chrono::milliseconds(
        static_cast<int>(warning_s * 1000.0) + 200));
    cluster.cluster().DrainEvents();
  }
  // Export while the cluster (and its metric collectors) is still alive; a
  // failed run's telemetry is exactly what you want to look at.
  if (!trace_out.empty()) {
    const Tracer::Stats stats = Tracer::Global().GetStats();
    if (WriteFile(trace_out, Tracer::Global().ExportJson())) {
      std::printf("trace: %llu events to %s (%llu dropped)\n",
                  static_cast<unsigned long long>(stats.buffered), trace_out.c_str(),
                  static_cast<unsigned long long>(stats.dropped));
    }
  }
  if (!metrics_out.empty()) {
    if (WriteFile(metrics_out, MetricsRegistry::Global().FormatPrometheusText())) {
      std::printf("metrics: snapshot to %s\n", metrics_out.c_str());
    }
  }
  if (!report.status.ok()) {
    std::fprintf(stderr, "job failed: %s\n", report.status.ToString().c_str());
    return 1;
  }
  std::printf(
      "wall %.2fs | tasks %llu (%llu failed) | recomputed %llu | checkpoints %llu (%.1f MiB)\n",
      report.wall_seconds, static_cast<unsigned long long>(report.tasks_run),
      static_cast<unsigned long long>(report.task_failures),
      static_cast<unsigned long long>(report.partitions_recomputed),
      static_cast<unsigned long long>(report.checkpoint_writes),
      static_cast<double>(report.checkpoint_bytes) / (1024.0 * 1024.0));
  std::printf("cluster bill: $%.4f spot vs $%.4f on-demand\n", cluster.nodes().TotalCost(),
              cluster.nodes().OnDemandEquivalentCost());
  return 0;
}

int CmdTrace(const Args& args) {
  MarketVolatility volatility = MarketVolatility::kModerate;
  const std::string v = args.Get("volatility", "moderate");
  if (v == "calm") {
    volatility = MarketVolatility::kCalm;
  } else if (v == "volatile") {
    volatility = MarketVolatility::kVolatile;
  } else if (v == "extreme") {
    volatility = MarketVolatility::kExtreme;
  }
  SyntheticTraceParams params =
      ParamsForVolatility(volatility, args.GetDouble("od", 0.35),
                          static_cast<uint64_t>(args.GetInt("seed", 1)));
  params.duration = Hours(24.0 * args.GetDouble("days", 30.0));
  const PriceTrace trace = GenerateSyntheticTrace(params);
  const std::string out = args.Get("out", "trace.csv");
  if (Status st = SaveTraceCsv(trace, out); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const BidStats stats = ComputeBidStats(trace, params.on_demand_price);
  std::printf("wrote %zu samples to %s (avg $%.4f/h, MTTF %.1fh at on-demand bid)\n",
              trace.size(), out.c_str(), stats.avg_price, stats.mttf_hours);
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: flintctl <markets|simulate|mc|run|trace> [--flags]\n"
               "  markets  --count N --seed S\n"
               "  simulate --policy batch|interactive|cheapest|stable|ondemand\n"
               "           --trials N --fee F [--no-checkpoint]\n"
               "  mc       --mttf H --markets M --trials N [--no-checkpoint]\n"
               "  run      --workload pagerank|kmeans|als|tpch --policy P\n"
               "           --nodes N --failures K --mttf H --seed S [--no-checkpoint]\n"
               "           --slow-node ORD --slow-factor F --fault-secs S\n"
               "           --hang-tasks K --hang-node ORD\n"
               "           --flaky-node ORD --flaky-prob P\n"
               "           --slow-link ORD --link-factor F --link-bandwidth MIBPS\n"
               "           --trace-out FILE --metrics-out FILE --trace-capacity N\n"
               "  trace    --out FILE --volatility calm|moderate|volatile|extreme\n"
               "           --days D --od PRICE --seed S\n");
  return 2;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string cmd = argv[1];
  const Args args(argc, argv, 2);
  if (cmd == "markets") {
    return CmdMarkets(args);
  }
  if (cmd == "simulate") {
    return CmdSimulate(args);
  }
  if (cmd == "mc") {
    return CmdMc(args);
  }
  if (cmd == "run") {
    return CmdRun(args);
  }
  if (cmd == "trace") {
    return CmdTrace(args);
  }
  return Usage();
}

}  // namespace
}  // namespace flint

int main(int argc, char** argv) { return flint::Main(argc, argv); }
